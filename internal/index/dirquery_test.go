package index

import (
	"fmt"
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// buildWorld indexes n random star regions and returns the tree, the
// geometry map and a reference region in the middle of the field.
func buildWorld(t testing.TB, n int, seed int64) (*RTree, map[string]geom.Region, geom.Region) {
	t.Helper()
	g := workload.New(seed)
	regions := map[string]geom.Region{}
	items := make([]Item, 0, n)
	side := 1
	for side*side < n {
		side++
	}
	for i := 0; i < n; i++ {
		cx := float64(i%side) * 12
		cy := float64(i/side) * 12
		r := geom.Rgn(g.StarPolygon(cx, cy, 1, 4, 8))
		id := fmt.Sprintf("r%04d", i)
		regions[id] = r
		items = append(items, Item{Box: r.BoundingBox(), ID: id})
	}
	tree, err := BulkLoad(items)
	if err != nil {
		t.Fatal(err)
	}
	mid := float64(side) * 12 / 2
	ref := workload.BoxRegion(mid-4, mid-4, mid+4, mid+4)
	return tree, regions, ref
}

// naiveSelect is the reference implementation: relation per candidate.
func naiveSelect(t testing.TB, regions map[string]geom.Region, ref geom.Region, allowed core.RelationSet) []string {
	t.Helper()
	var out []string
	for id, g := range regions {
		rel, err := core.ComputeCDR(g, ref)
		if err != nil {
			t.Fatal(err)
		}
		if allowed.Contains(rel) {
			out = append(out, id)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestDirectionalSelectMatchesNaive(t *testing.T) {
	tree, regions, ref := buildWorld(t, 100, 3)
	sets := []core.RelationSet{
		core.NewRelationSet(core.SW),
		core.NewRelationSet(core.N, core.NE, core.Rel(core.TileN, core.TileNE)),
		core.NewRelationSet(core.B),
		func() core.RelationSet { // everything with any north component
			var s core.RelationSet
			for _, r := range core.AllRelations() {
				if r.Has(core.TileN) || r.Has(core.TileNE) || r.Has(core.TileNW) {
					s.Add(r)
				}
			}
			return s
		}(),
	}
	for i, allowed := range sets {
		want := naiveSelect(t, regions, ref, allowed)
		got, err := DirectionalSelect(tree, regions, ref, allowed)
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("set %d: %d hits, want %d (%v vs %v)", i, len(got), len(want), got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("set %d: mismatch at %d: %v vs %v", i, j, got, want)
			}
		}
	}
}

func TestDirectionalSelectErrors(t *testing.T) {
	tree, regions, ref := buildWorld(t, 10, 5)
	if _, err := DirectionalSelect(tree, regions, ref, core.RelationSet{}); err == nil {
		t.Error("empty allowed set should fail")
	}
	line := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)))
	if _, err := DirectionalSelect(tree, regions, line, core.NewRelationSet(core.N)); err == nil {
		t.Error("degenerate reference should fail")
	}
	// Missing geometry for an indexed id: the ghost's box sits inside the
	// reference's bounding box so it survives the MBB stages and forces the
	// geometry lookup.
	bad := New()
	refBox := ref.BoundingBox()
	c := refBox.Center()
	bad.Insert(Item{Box: geom.Rect{MinX: c.X - 0.5, MinY: c.Y - 0.5, MaxX: c.X + 0.5, MaxY: c.Y + 0.5}, ID: "ghost"})
	if _, err := DirectionalSelect(bad, map[string]geom.Region{}, ref, core.NewRelationSet(core.B)); err == nil {
		t.Error("missing geometry should fail")
	}
}

func TestMBBRelationAgainstCore(t *testing.T) {
	ref := workload.BoxRegion(0, 0, 10, 6)
	grid, err := core.NewGrid(ref.BoundingBox())
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(17)
	for trial := 0; trial < 200; trial++ {
		r := geom.Rgn(g.StarPolygon(float64(trial%20)-5, float64(trial%13)-4, 0.5, 3, 7))
		mbbRel := mbbRelation(grid, r.BoundingBox())
		exact, err := core.ComputeCDR(r, ref)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Intersect(mbbRel) != exact {
			t.Fatalf("trial %d: exact %v ⊄ mbb %v", trial, exact, mbbRel)
		}
	}
}

func TestTileWindowsCoverMatches(t *testing.T) {
	ref := workload.BoxRegion(0, 0, 10, 6)
	grid, err := core.NewGrid(ref.BoundingBox())
	if err != nil {
		t.Fatal(err)
	}
	allowed := core.NewRelationSet(core.SW, core.Rel(core.TileS, core.TileSW))
	var tiles core.Relation
	for _, r := range allowed.Relations() {
		tiles = tiles.Union(r)
	}
	anyWindowHits := func(box geom.Rect) bool {
		for _, tile := range tiles.Tiles() {
			if tileRect(grid, tile).Intersects(box) {
				return true
			}
		}
		return false
	}
	// Some window must contain any box realising an allowed relation.
	sw := workload.BoxRegion(-5, -5, -1, -1)
	if !anyWindowHits(sw.BoundingBox()) {
		t.Error("tile windows miss a SW match")
	}
	// And all must exclude far-north boxes when no allowed relation has a
	// north tile.
	n := workload.BoxRegion(2, 100, 4, 102)
	if anyWindowHits(n.BoundingBox()) {
		t.Error("tile windows wrongly cover the north")
	}
	// Per-tile windows are tighter than the bounding box of their union:
	// {SW, S:SW} leaves the east side untouched even though a single
	// united window would span it.
	e := workload.BoxRegion(100, 2, 102, 4)
	if anyWindowHits(e.BoundingBox()) {
		t.Error("tile windows wrongly cover the east")
	}
}

// TestDirectionalSelectStatsPrunes asserts the acceptance property of the
// indexed plan: on a scatter world with a bounded constraint it visits
// strictly fewer candidates than the index holds, with results identical to
// the naive scan; a constraint covering all nine tiles degrades to an
// explicit full scan, still with identical results.
func TestDirectionalSelectStatsPrunes(t *testing.T) {
	tree, regions, ref := buildWorld(t, 200, 7)
	allowed := core.NewRelationSet(core.N, core.Rel(core.TileN, core.TileNE))
	got, st, err := DirectionalSelectStats(tree, regions, ref, allowed)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 200 {
		t.Fatalf("Total = %d, want 200", st.Total)
	}
	if st.Candidates >= st.Total {
		t.Errorf("window queries visited %d of %d candidates — no pruning", st.Candidates, st.Total)
	}
	if st.FullScan {
		t.Error("bounded constraint should not fall back to a full scan")
	}
	if st.MBBMatched > st.Candidates || st.Exact != st.MBBMatched || st.Matched != len(got) {
		t.Errorf("inconsistent stats: %+v with %d results", st, len(got))
	}
	want := naiveSelect(t, regions, ref, allowed)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("pruned results diverge: %v vs %v", got, want)
	}

	// All nine tiles → the window is the plane → full scan fallback.
	everything := core.NewRelationSet(core.RelationMask)
	got, st, err = DirectionalSelectStats(tree, regions, ref, everything)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullScan {
		t.Error("nine-tile constraint should report FullScan")
	}
	if st.Candidates != st.Total {
		t.Errorf("full scan visited %d of %d", st.Candidates, st.Total)
	}
	want = naiveSelect(t, regions, ref, everything)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("full-scan results diverge: %v vs %v", got, want)
	}
}

// TestFindRelatedMatchesCore checks the index-driven FindRelated against the
// core scan implementation on a scatter workload, including the degenerate
// candidate contract.
func TestFindRelatedMatchesCore(t *testing.T) {
	g := workload.New(41)
	scattered := g.Scatter(150, 8)
	candidates := make([]core.NamedRegion, len(scattered))
	for i, r := range scattered {
		candidates[i] = core.NamedRegion{Name: fmt.Sprintf("r%04d", i), Region: r}
	}
	ref := workload.BoxRegion(30, 30, 50, 50)
	for i, allowed := range []core.RelationSet{
		core.NewRelationSet(core.SW, core.Rel(core.TileS, core.TileSW)),
		core.NewRelationSet(core.B),
		core.NewRelationSet(core.NE, core.E, core.Rel(core.TileNE, core.TileE)),
	} {
		want, err := core.FindRelated(candidates, ref, allowed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FindRelated(candidates, ref, allowed)
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("set %d: indexed %v != scan %v", i, got, want)
		}
	}
	// A degenerate candidate errors with the wrapped sentinel, like the scan.
	bad := append([]core.NamedRegion{}, candidates...)
	bad = append(bad, core.NamedRegion{Name: "empty", Region: geom.Region{}})
	if _, err := FindRelated(bad, ref, core.NewRelationSet(core.B)); !errorsIsDegenerate(err) {
		t.Errorf("degenerate candidate: got %v, want wrapped ErrDegenerateRegion", err)
	}
}

func errorsIsDegenerate(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == core.ErrDegenerateRegion {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

func BenchmarkDirectionalSelect(b *testing.B) {
	tree, regions, ref := buildWorld(b, 2500, 11)
	allowed := core.NewRelationSet(core.SW, core.Rel(core.TileS, core.TileSW))
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DirectionalSelect(tree, regions, ref, allowed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, g := range regions {
				rel, err := core.ComputeCDR(g, ref)
				if err != nil {
					b.Fatal(err)
				}
				_ = allowed.Contains(rel)
			}
		}
	})
}

// TestDirectionalSelectRandomSetsProperty: for random allowed sets the
// indexed plan agrees with the naive scan.
func TestDirectionalSelectRandomSetsProperty(t *testing.T) {
	tree, regions, ref := buildWorld(t, 60, 21)
	rels := core.AllRelations()
	rng := func(seed, n int) int { return (seed*2654435761 + n) % len(rels) }
	for trial := 0; trial < 25; trial++ {
		var allowed core.RelationSet
		for k := 0; k < 1+trial%7; k++ {
			allowed.Add(rels[rng(trial, k*13+7)])
		}
		want := naiveSelect(t, regions, ref, allowed)
		got, err := DirectionalSelect(tree, regions, ref, allowed)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d (%v vs %v)", trial, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch %v vs %v", trial, got, want)
			}
		}
	}
}
