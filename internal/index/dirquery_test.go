package index

import (
	"fmt"
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// buildWorld indexes n random star regions and returns the tree, the
// geometry map and a reference region in the middle of the field.
func buildWorld(t testing.TB, n int, seed int64) (*RTree, map[string]geom.Region, geom.Region) {
	t.Helper()
	g := workload.New(seed)
	regions := map[string]geom.Region{}
	items := make([]Item, 0, n)
	side := 1
	for side*side < n {
		side++
	}
	for i := 0; i < n; i++ {
		cx := float64(i%side) * 12
		cy := float64(i/side) * 12
		r := geom.Rgn(g.StarPolygon(cx, cy, 1, 4, 8))
		id := fmt.Sprintf("r%04d", i)
		regions[id] = r
		items = append(items, Item{Box: r.BoundingBox(), ID: id})
	}
	tree, err := BulkLoad(items)
	if err != nil {
		t.Fatal(err)
	}
	mid := float64(side) * 12 / 2
	ref := workload.BoxRegion(mid-4, mid-4, mid+4, mid+4)
	return tree, regions, ref
}

// naiveSelect is the reference implementation: relation per candidate.
func naiveSelect(t testing.TB, regions map[string]geom.Region, ref geom.Region, allowed core.RelationSet) []string {
	t.Helper()
	var out []string
	for id, g := range regions {
		rel, err := core.ComputeCDR(g, ref)
		if err != nil {
			t.Fatal(err)
		}
		if allowed.Contains(rel) {
			out = append(out, id)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestDirectionalSelectMatchesNaive(t *testing.T) {
	tree, regions, ref := buildWorld(t, 100, 3)
	sets := []core.RelationSet{
		core.NewRelationSet(core.SW),
		core.NewRelationSet(core.N, core.NE, core.Rel(core.TileN, core.TileNE)),
		core.NewRelationSet(core.B),
		func() core.RelationSet { // everything with any north component
			var s core.RelationSet
			for _, r := range core.AllRelations() {
				if r.Has(core.TileN) || r.Has(core.TileNE) || r.Has(core.TileNW) {
					s.Add(r)
				}
			}
			return s
		}(),
	}
	for i, allowed := range sets {
		want := naiveSelect(t, regions, ref, allowed)
		got, err := DirectionalSelect(tree, regions, ref, allowed)
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("set %d: %d hits, want %d (%v vs %v)", i, len(got), len(want), got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("set %d: mismatch at %d: %v vs %v", i, j, got, want)
			}
		}
	}
}

func TestDirectionalSelectErrors(t *testing.T) {
	tree, regions, ref := buildWorld(t, 10, 5)
	if _, err := DirectionalSelect(tree, regions, ref, core.RelationSet{}); err == nil {
		t.Error("empty allowed set should fail")
	}
	line := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)))
	if _, err := DirectionalSelect(tree, regions, line, core.NewRelationSet(core.N)); err == nil {
		t.Error("degenerate reference should fail")
	}
	// Missing geometry for an indexed id: the ghost's box sits inside the
	// reference's bounding box so it survives the MBB stages and forces the
	// geometry lookup.
	bad := New()
	refBox := ref.BoundingBox()
	c := refBox.Center()
	bad.Insert(Item{Box: geom.Rect{MinX: c.X - 0.5, MinY: c.Y - 0.5, MaxX: c.X + 0.5, MaxY: c.Y + 0.5}, ID: "ghost"})
	if _, err := DirectionalSelect(bad, map[string]geom.Region{}, ref, core.NewRelationSet(core.B)); err == nil {
		t.Error("missing geometry should fail")
	}
}

func TestMBBRelationAgainstCore(t *testing.T) {
	ref := workload.BoxRegion(0, 0, 10, 6)
	grid, err := core.NewGrid(ref.BoundingBox())
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(17)
	for trial := 0; trial < 200; trial++ {
		r := geom.Rgn(g.StarPolygon(float64(trial%20)-5, float64(trial%13)-4, 0.5, 3, 7))
		mbbRel := mbbRelation(grid, r.BoundingBox())
		exact, err := core.ComputeCDR(r, ref)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Intersect(mbbRel) != exact {
			t.Fatalf("trial %d: exact %v ⊄ mbb %v", trial, exact, mbbRel)
		}
	}
}

func TestWindowOfRelationsCoversMatches(t *testing.T) {
	ref := workload.BoxRegion(0, 0, 10, 6)
	grid, err := core.NewGrid(ref.BoundingBox())
	if err != nil {
		t.Fatal(err)
	}
	allowed := core.NewRelationSet(core.SW, core.Rel(core.TileS, core.TileSW))
	w := windowOfRelations(grid, allowed)
	// The window must contain any box realising an allowed relation.
	sw := workload.BoxRegion(-5, -5, -1, -1)
	if !w.Intersects(sw.BoundingBox()) {
		t.Errorf("window %v misses a SW match", w)
	}
	// And must exclude far-north boxes when no allowed relation has a
	// north tile.
	n := workload.BoxRegion(2, 100, 4, 102)
	if w.Intersects(n.BoundingBox()) {
		t.Errorf("window %v wrongly covers the north", w)
	}
}

func BenchmarkDirectionalSelect(b *testing.B) {
	tree, regions, ref := buildWorld(b, 2500, 11)
	allowed := core.NewRelationSet(core.SW, core.Rel(core.TileS, core.TileSW))
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DirectionalSelect(tree, regions, ref, allowed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, g := range regions {
				rel, err := core.ComputeCDR(g, ref)
				if err != nil {
					b.Fatal(err)
				}
				_ = allowed.Contains(rel)
			}
		}
	})
}

// TestDirectionalSelectRandomSetsProperty: for random allowed sets the
// indexed plan agrees with the naive scan.
func TestDirectionalSelectRandomSetsProperty(t *testing.T) {
	tree, regions, ref := buildWorld(t, 60, 21)
	rels := core.AllRelations()
	rng := func(seed, n int) int { return (seed*2654435761 + n) % len(rels) }
	for trial := 0; trial < 25; trial++ {
		var allowed core.RelationSet
		for k := 0; k < 1+trial%7; k++ {
			allowed.Add(rels[rng(trial, k*13+7)])
		}
		want := naiveSelect(t, regions, ref, allowed)
		got, err := DirectionalSelect(tree, regions, ref, allowed)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d (%v vs %v)", trial, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch %v vs %v", trial, got, want)
			}
		}
	}
}
