package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// TestRTreeDeleteRandomized drives a tree through a long seeded
// insert/delete sequence, validating the structural invariants and search
// equivalence against a shadow map after every operation.
func TestRTreeDeleteRandomized(t *testing.T) {
	for _, seed := range []int64{1, 42, 20040314} {
		rng := rand.New(rand.NewSource(seed))
		tree := New()
		shadow := map[string]geom.Rect{}
		nextID := 0
		ops := 600
		if testing.Short() {
			ops = 150
		}
		randBox := func() geom.Rect {
			x := rng.Float64() * 100
			y := rng.Float64() * 100
			return geom.Rect{MinX: x, MinY: y, MaxX: x + 1 + rng.Float64()*20, MaxY: y + 1 + rng.Float64()*20}
		}
		for op := 0; op < ops; op++ {
			if rng.Intn(3) > 0 || len(shadow) == 0 { // bias towards inserts
				id := fmt.Sprintf("i%04d", nextID)
				nextID++
				box := randBox()
				if err := tree.Insert(Item{ID: id, Box: box}); err != nil {
					t.Fatal(err)
				}
				shadow[id] = box
			} else {
				// Delete a pseudo-random existing id.
				ids := make([]string, 0, len(shadow))
				for id := range shadow {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				id := ids[rng.Intn(len(ids))]
				if !tree.Delete(Item{ID: id, Box: shadow[id]}) {
					t.Fatalf("seed %d op %d: Delete(%s) not found", seed, op, id)
				}
				delete(shadow, id)
			}
			if tree.Len() != len(shadow) {
				t.Fatalf("seed %d op %d: Len = %d, shadow = %d", seed, op, tree.Len(), len(shadow))
			}
			if err := tree.checkInvariants(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			// Search equivalence on a random window.
			window := randBox()
			var got []string
			for _, it := range tree.Search(window, nil) {
				got = append(got, it.ID)
			}
			sort.Strings(got)
			var want []string
			for id, box := range shadow {
				if box.Intersects(window) {
					want = append(want, id)
				}
			}
			sort.Strings(want)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d op %d: search mismatch\n got %v\nwant %v", seed, op, got, want)
			}
		}
		// Drain to empty: the tree must survive total deletion.
		for id, box := range shadow {
			if !tree.Delete(Item{ID: id, Box: box}) {
				t.Fatalf("drain: Delete(%s) not found", id)
			}
			if err := tree.checkInvariants(); err != nil {
				t.Fatalf("drain: %v", err)
			}
		}
		if tree.Len() != 0 || len(tree.Search(geom.Rect{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}, nil)) != 0 {
			t.Fatal("tree not empty after draining")
		}
		// And remain usable afterwards.
		if err := tree.Insert(Item{ID: "again", Box: randBox()}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRTreeDeleteMisses: deleting absent items (wrong id, wrong box, empty
// box) leaves the tree untouched.
func TestRTreeDeleteMisses(t *testing.T) {
	tree := New()
	box := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if err := tree.Insert(Item{ID: "a", Box: box}); err != nil {
		t.Fatal(err)
	}
	if tree.Delete(Item{ID: "b", Box: box}) {
		t.Error("deleted wrong id")
	}
	if tree.Delete(Item{ID: "a", Box: geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}}) {
		t.Error("deleted wrong box")
	}
	if tree.Delete(Item{ID: "a", Box: geom.EmptyRect()}) {
		t.Error("deleted empty box")
	}
	if tree.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tree.Len())
	}
}

// liveWorkload builds named regions for Live tests.
func liveWorkload(seed int64, n int) []core.NamedRegion {
	g := workload.New(seed)
	out := make([]core.NamedRegion, n)
	for i, r := range g.Scatter(n, 8) {
		out[i] = core.NamedRegion{Name: fmt.Sprintf("r%03d", i), Region: r}
	}
	return out
}

// TestLiveMatchesBulkLoad drives a Live index through a seeded edit
// sequence and asserts, after every edit, that directional selection over
// the maintained tree equals selection over a freshly bulk-loaded one —
// and that the R-tree invariants hold throughout.
func TestLiveMatchesBulkLoad(t *testing.T) {
	regions := liveWorkload(20040314, 40)
	l, err := NewLive(regions)
	if err != nil {
		t.Fatal(err)
	}
	world := append([]core.NamedRegion(nil), regions...)
	spare := workload.New(99).Scatter(32, 8)
	rng := rand.New(rand.NewSource(5))
	ref := geom.Rgn(workload.Box(40, 40, 80, 80))
	allowed := core.NewRelationSet(core.N, core.NE, core.E, core.Rel(core.TileN, core.TileNE))

	check := func(op int) {
		t.Helper()
		if err := l.Tree().checkInvariants(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		got, err := l.Select(ref, allowed)
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		fresh, err := NewLive(world)
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		want, err := fresh.Select(ref, allowed)
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("op %d: live select %v != bulk select %v", op, got, want)
		}
	}
	check(-1)

	nextID := 1000
	for op := 0; op < 30; op++ {
		switch k := rng.Intn(4); {
		case k == 0 || len(world) < 3: // add
			id := fmt.Sprintf("r%04d", nextID)
			nextID++
			g := spare[rng.Intn(len(spare))]
			if err := l.Add(id, g); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			world = append(world, core.NamedRegion{Name: id, Region: g})
		case k == 1: // remove
			i := rng.Intn(len(world))
			if err := l.Remove(world[i].Name); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			world = append(world[:i], world[i+1:]...)
		case k == 2: // set geometry
			i := rng.Intn(len(world))
			g := spare[rng.Intn(len(spare))]
			if err := l.SetGeometry(world[i].Name, g); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			world[i].Region = g
		default: // rename
			i := rng.Intn(len(world))
			id := fmt.Sprintf("r%04d", nextID)
			nextID++
			if err := l.Rename(world[i].Name, id); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			world[i].Name = id
		}
		check(op)
	}
}

// TestLiveErrors covers the Live error surface.
func TestLiveErrors(t *testing.T) {
	l, err := NewLive(liveWorkload(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	box := geom.Rgn(workload.Box(0, 0, 4, 4))
	if err := l.Add("r000", box); err == nil {
		t.Error("duplicate Add should fail")
	}
	if err := l.Add("", box); err == nil {
		t.Error("empty-id Add should fail")
	}
	if err := l.Add("flat", geom.Region{}); err == nil {
		t.Error("empty-box Add should fail")
	}
	if err := l.Remove("ghost"); err == nil {
		t.Error("Remove of unknown id should fail")
	}
	if err := l.Rename("ghost", "x"); err == nil {
		t.Error("Rename of unknown id should fail")
	}
	if err := l.Rename("r000", "r001"); err == nil {
		t.Error("Rename onto existing id should fail")
	}
	if err := l.Rename("r000", "r000"); err != nil {
		t.Errorf("self-rename should be a no-op: %v", err)
	}
	if err := l.SetGeometry("ghost", box); err == nil {
		t.Error("SetGeometry of unknown id should fail")
	}
	if err := l.SetGeometry("r000", geom.Region{}); err == nil {
		t.Error("empty-box SetGeometry should fail")
	}
	if l.Len() != 5 {
		t.Fatalf("failed edits changed Len: %d", l.Len())
	}
	// Duplicate ids at construction.
	if _, err := NewLive([]core.NamedRegion{
		{Name: "a", Region: box}, {Name: "a", Region: box},
	}); err == nil {
		t.Error("duplicate construction ids should fail")
	}
}
