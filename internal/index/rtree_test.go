package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cardirect/internal/geom"
)

func boxAt(x, y, w, h float64) geom.Rect {
	return geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.Search(boxAt(0, 0, 100, 100), nil); len(got) != 0 {
		t.Errorf("search on empty tree = %v", got)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertAndSearch(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		x := float64(i%10) * 10
		y := float64(i/10) * 10
		if err := tr.Insert(Item{Box: boxAt(x, y, 5, 5), ID: fmt.Sprintf("r%03d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// A window covering exactly one cell.
	got := tr.Search(boxAt(21, 21, 2, 2), nil)
	if len(got) != 1 || got[0].ID != "r022" {
		t.Errorf("point-ish search = %v", got)
	}
	// A window covering a 2×2 block of cells (touching counts: closed
	// rectangles).
	got = tr.Search(boxAt(0, 0, 15, 15), nil)
	if len(got) != 4 {
		t.Errorf("block search returned %d items", len(got))
	}
	// A window outside everything.
	if got := tr.Search(boxAt(500, 500, 10, 10), nil); len(got) != 0 {
		t.Errorf("far search = %v", got)
	}
	if err := tr.Insert(Item{Box: geom.EmptyRect(), ID: "bad"}); err == nil {
		t.Error("empty box insert should fail")
	}
}

func TestBulkLoadMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{
			Box: boxAt(rng.Float64()*1000, rng.Float64()*1000, 1+rng.Float64()*20, 1+rng.Float64()*20),
			ID:  fmt.Sprintf("it%04d", i),
		}
	}
	bulk, err := BulkLoad(items)
	if err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != len(items) {
		t.Fatalf("bulk Len = %d", bulk.Len())
	}
	if err := bulk.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	incr := New()
	for _, it := range items {
		if err := incr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if err := incr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Both must agree with the linear scan on random windows.
	for trial := 0; trial < 200; trial++ {
		w := boxAt(rng.Float64()*900, rng.Float64()*900, rng.Float64()*150, rng.Float64()*150)
		want := map[string]bool{}
		for _, it := range items {
			if it.Box.Intersects(w) {
				want[it.ID] = true
			}
		}
		for name, tree := range map[string]*RTree{"bulk": bulk, "incr": incr} {
			got := tree.Search(w, nil)
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: %d hits, want %d", trial, name, len(got), len(want))
			}
			for _, it := range got {
				if !want[it.ID] {
					t.Fatalf("trial %d %s: spurious hit %s", trial, name, it.ID)
				}
			}
		}
	}
}

func TestBulkLoadEdgeCases(t *testing.T) {
	tr, err := BulkLoad(nil)
	if err != nil || tr.Len() != 0 {
		t.Fatalf("empty bulk load: %v, %d", err, tr.Len())
	}
	one, err := BulkLoad([]Item{{Box: boxAt(0, 0, 1, 1), ID: "x"}})
	if err != nil || one.Depth() != 1 {
		t.Fatalf("single-item bulk load: %v depth=%d", err, one.Depth())
	}
	if _, err := BulkLoad([]Item{{Box: geom.EmptyRect(), ID: "bad"}}); err == nil {
		t.Error("empty box should fail bulk load")
	}
}

func TestTreeGrowsInDepth(t *testing.T) {
	tr := New()
	for i := 0; i < maxEntries+1; i++ {
		tr.Insert(Item{Box: boxAt(float64(i)*10, 0, 5, 5), ID: fmt.Sprintf("%d", i)})
	}
	if tr.Depth() != 2 {
		t.Errorf("depth after first split = %d, want 2", tr.Depth())
	}
	for i := 0; i < 500; i++ {
		tr.Insert(Item{Box: boxAt(float64(i%50)*7, float64(i/50)*7, 3, 3), ID: fmt.Sprintf("g%d", i)})
	}
	if tr.Depth() < 3 {
		t.Errorf("depth after 500 inserts = %d", tr.Depth())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchAppendsToDst(t *testing.T) {
	tr := New()
	tr.Insert(Item{Box: boxAt(0, 0, 1, 1), ID: "a"})
	dst := make([]Item, 0, 8)
	dst = append(dst, Item{ID: "existing"})
	got := tr.Search(boxAt(0, 0, 2, 2), dst)
	ids := []string{got[0].ID, got[1].ID}
	sort.Strings(ids)
	if len(got) != 2 || ids[0] != "a" || ids[1] != "existing" {
		t.Errorf("append semantics broken: %v", got)
	}
}

func BenchmarkRTreeSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	items := make([]Item, 10000)
	for i := range items {
		items[i] = Item{
			Box: boxAt(rng.Float64()*1000, rng.Float64()*1000, 1+rng.Float64()*5, 1+rng.Float64()*5),
			ID:  fmt.Sprintf("it%05d", i),
		}
	}
	tr, err := BulkLoad(items)
	if err != nil {
		b.Fatal(err)
	}
	w := boxAt(400, 400, 50, 50)
	b.Run("rtree", func(b *testing.B) {
		var dst []Item
		for i := 0; i < b.N; i++ {
			dst = tr.Search(w, dst[:0])
		}
	})
	b.Run("scan", func(b *testing.B) {
		var dst []Item
		for i := 0; i < b.N; i++ {
			dst = dst[:0]
			for _, it := range items {
				if it.Box.Intersects(w) {
					dst = append(dst, it)
				}
			}
		}
	})
}
