// Package index provides an in-memory R-tree over region bounding boxes —
// the access method of the paper's reference [13] (Papadias, Theodoridis,
// Sellis & Egenhofer, "Topological Relations in the World of Minimum
// Bounding Rectangles") — and a directional selection operator built on it:
// MBB-level pruning for "find regions whose cardinal direction relation to
// a reference can match R", with the exact Compute-CDR algorithm refining
// the survivors. This is how a spatial database would execute the
// CARDIRECT query engine's relation conditions over large configurations.
package index

import (
	"fmt"
	"sort"

	"cardirect/internal/geom"
)

// maxEntries is the node fan-out; minEntries the fill guarantee after
// splits.
const (
	maxEntries = 8
	minEntries = maxEntries * 2 / 5
)

// Item is one indexed object: a bounding box and an opaque identifier.
type Item struct {
	Box geom.Rect
	ID  string
}

// RTree is an in-memory R-tree with quadratic-split insertion and
// sort-tile-recursive (STR) bulk loading.
type RTree struct {
	root *node
	size int
}

type node struct {
	leaf     bool
	box      geom.Rect
	items    []Item  // leaf payload
	children []*node // internal children
}

// New returns an empty tree.
func New() *RTree {
	return &RTree{root: &node{leaf: true, box: geom.EmptyRect()}}
}

// Len returns the number of indexed items.
func (t *RTree) Len() int { return t.size }

// Bounds returns the bounding box of everything indexed.
func (t *RTree) Bounds() geom.Rect { return t.root.box }

// Insert adds an item.
func (t *RTree) Insert(it Item) error {
	if it.Box.IsEmpty() {
		return fmt.Errorf("index: cannot insert an empty box")
	}
	t.insertRoot(it)
	t.size++
	return nil
}

// insertRoot runs the insertion descent from the root, growing the tree on
// a root split. Shared by Insert and Delete's orphan reinsertion (which must
// not touch size).
func (t *RTree) insertRoot(it Item) {
	n1, n2 := t.insert(t.root, it)
	if n2 != nil {
		// Root split: grow the tree.
		t.root = &node{
			leaf:     false,
			box:      n1.box.Union(n2.box),
			children: []*node{n1, n2},
		}
	}
}

// Delete removes the item matching it by ID and box, reporting whether it
// was found. It condenses the tree on the way back up: nodes falling below
// the minimum fill are dissolved and their surviving items reinserted, so
// the fill and balance invariants hold after arbitrary delete sequences —
// the property the maintained Live index relies on under edit traffic.
func (t *RTree) Delete(it Item) bool {
	if it.Box.IsEmpty() {
		return false
	}
	var orphans []Item
	if !deleteFromNode(t.root, it, &orphans) {
		return false
	}
	t.size--
	// Shrink the root: an internal root left with one child (or none, after
	// its last underfull child dissolved) loses a level.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true, box: geom.EmptyRect()}
	}
	if t.root.leaf && len(t.root.items) == 0 {
		t.root.box = geom.EmptyRect()
	}
	for _, o := range orphans {
		t.insertRoot(o)
	}
	return true
}

// deleteFromNode descends into subtrees whose box covers the item, removes
// it from its leaf, and condenses on the way back: an underfull child is cut
// out with its remaining items appended to orphans for reinsertion. Boxes
// along the path are recomputed exactly.
func deleteFromNode(n *node, it Item, orphans *[]Item) bool {
	if !n.box.Intersects(it.Box) {
		return false
	}
	if n.leaf {
		for i, x := range n.items {
			if x.ID == it.ID && x.Box == it.Box {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.box = geom.EmptyRect()
				for _, y := range n.items {
					n.box = n.box.Union(y.Box)
				}
				return true
			}
		}
		return false
	}
	for ci, c := range n.children {
		if !deleteFromNode(c, it, orphans) {
			continue
		}
		underfull := len(c.items) < minEntries
		if !c.leaf {
			underfull = len(c.children) < minEntries
		}
		if underfull {
			collectItems(c, orphans)
			n.children = append(n.children[:ci], n.children[ci+1:]...)
		}
		n.box = geom.EmptyRect()
		for _, cc := range n.children {
			n.box = n.box.Union(cc.box)
		}
		return true
	}
	return false
}

// collectItems gathers every item of a dissolved subtree.
func collectItems(n *node, dst *[]Item) {
	if n.leaf {
		*dst = append(*dst, n.items...)
		return
	}
	for _, c := range n.children {
		collectItems(c, dst)
	}
}

// insert descends to a leaf, splitting on overflow; it returns the
// (possibly new) node pair replacing n.
func (t *RTree) insert(n *node, it Item) (*node, *node) {
	n.box = n.box.Union(it.Box)
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > maxEntries {
			return splitLeaf(n)
		}
		return n, nil
	}
	best := chooseSubtree(n.children, it.Box)
	c1, c2 := t.insert(n.children[best], it)
	n.children[best] = c1
	if c2 != nil {
		n.children = append(n.children, c2)
		if len(n.children) > maxEntries {
			return splitInternal(n)
		}
	}
	return n, nil
}

// chooseSubtree picks the child needing the least area enlargement
// (ties: smaller area).
func chooseSubtree(children []*node, box geom.Rect) int {
	best := 0
	bestEnlarge := enlargement(children[0].box, box)
	bestArea := children[0].box.Area()
	for i := 1; i < len(children); i++ {
		e := enlargement(children[i].box, box)
		a := children[i].box.Area()
		if e < bestEnlarge || (e == bestEnlarge && a < bestArea) {
			best, bestEnlarge, bestArea = i, e, a
		}
	}
	return best
}

func enlargement(have, add geom.Rect) float64 {
	return have.Union(add).Area() - have.Area()
}

// splitLeaf performs a quadratic split of an overflowing leaf.
func splitLeaf(n *node) (*node, *node) {
	seedA, seedB := quadraticSeeds(len(n.items), func(i int) geom.Rect { return n.items[i].Box })
	a := &node{leaf: true, box: n.items[seedA].Box, items: []Item{n.items[seedA]}}
	b := &node{leaf: true, box: n.items[seedB].Box, items: []Item{n.items[seedB]}}
	rest := make([]Item, 0, len(n.items)-2)
	for i, it := range n.items {
		if i != seedA && i != seedB {
			rest = append(rest, it)
		}
	}
	for _, it := range rest {
		target := pickGroup(a.box, b.box, it.Box, len(a.items), len(b.items), len(rest))
		if target == 0 {
			a.items = append(a.items, it)
			a.box = a.box.Union(it.Box)
		} else {
			b.items = append(b.items, it)
			b.box = b.box.Union(it.Box)
		}
	}
	return a, b
}

// splitInternal performs a quadratic split of an overflowing internal node.
func splitInternal(n *node) (*node, *node) {
	seedA, seedB := quadraticSeeds(len(n.children), func(i int) geom.Rect { return n.children[i].box })
	a := &node{box: n.children[seedA].box, children: []*node{n.children[seedA]}}
	b := &node{box: n.children[seedB].box, children: []*node{n.children[seedB]}}
	rest := make([]*node, 0, len(n.children)-2)
	for i, c := range n.children {
		if i != seedA && i != seedB {
			rest = append(rest, c)
		}
	}
	for _, c := range rest {
		target := pickGroup(a.box, b.box, c.box, len(a.children), len(b.children), len(rest))
		if target == 0 {
			a.children = append(a.children, c)
			a.box = a.box.Union(c.box)
		} else {
			b.children = append(b.children, c)
			b.box = b.box.Union(c.box)
		}
	}
	return a, b
}

// quadraticSeeds picks the pair wasting the most area when grouped.
func quadraticSeeds(n int, boxOf func(int) geom.Rect) (int, int) {
	sa, sb := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := boxOf(i).Union(boxOf(j)).Area() - boxOf(i).Area() - boxOf(j).Area()
			if d > worst {
				worst, sa, sb = d, i, j
			}
		}
	}
	return sa, sb
}

// pickGroup assigns an entry during a quadratic split: prefer the group
// needing less enlargement, but honour the minimum fill guarantee.
func pickGroup(boxA, boxB, box geom.Rect, lenA, lenB, remaining int) int {
	if lenA+remaining <= minEntries {
		return 0
	}
	if lenB+remaining <= minEntries {
		return 1
	}
	ea := enlargement(boxA, box)
	eb := enlargement(boxB, box)
	switch {
	case ea < eb:
		return 0
	case eb < ea:
		return 1
	case boxA.Area() <= boxB.Area():
		return 0
	default:
		return 1
	}
}

// Search appends to dst the items whose boxes intersect the query window
// and returns the extended slice.
func (t *RTree) Search(window geom.Rect, dst []Item) []Item {
	return searchNode(t.root, window, dst)
}

func searchNode(n *node, window geom.Rect, dst []Item) []Item {
	if !n.box.Intersects(window) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Box.Intersects(window) {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = searchNode(c, window, dst)
	}
	return dst
}

// BulkLoad builds a tree from scratch with sort-tile-recursive packing —
// the right way to index a whole configuration at once.
func BulkLoad(items []Item) (*RTree, error) {
	for _, it := range items {
		if it.Box.IsEmpty() {
			return nil, fmt.Errorf("index: cannot bulk-load an empty box (id %q)", it.ID)
		}
	}
	t := &RTree{size: len(items)}
	if len(items) == 0 {
		t.root = &node{leaf: true, box: geom.EmptyRect()}
		return t, nil
	}
	// Leaf level: sort by x, tile into runs of size maxEntries*sliceCount,
	// sort each run by y, pack.
	leaves := packLeaves(items)
	level := leaves
	for len(level) > 1 {
		level = packInternal(level)
	}
	t.root = level[0]
	return t, nil
}

func packLeaves(items []Item) []*node {
	its := make([]Item, len(items))
	copy(its, items)
	sort.Slice(its, func(i, j int) bool { return center(its[i].Box).X < center(its[j].Box).X })
	sliceSize := stripSize(len(its))
	var leaves []*node
	for s := 0; s < len(its); s += sliceSize {
		e := s + sliceSize
		if e > len(its) {
			e = len(its)
		}
		strip := its[s:e]
		sort.Slice(strip, func(i, j int) bool { return center(strip[i].Box).Y < center(strip[j].Box).Y })
		for k := 0; k < len(strip); k += maxEntries {
			ke := k + maxEntries
			if ke > len(strip) {
				ke = len(strip)
			}
			n := &node{leaf: true, box: geom.EmptyRect()}
			n.items = append(n.items, strip[k:ke]...)
			for _, it := range n.items {
				n.box = n.box.Union(it.Box)
			}
			leaves = append(leaves, n)
		}
	}
	return leaves
}

func packInternal(level []*node) []*node {
	ns := make([]*node, len(level))
	copy(ns, level)
	sort.Slice(ns, func(i, j int) bool { return center(ns[i].box).X < center(ns[j].box).X })
	sliceSize := stripSize(len(ns))
	var out []*node
	for s := 0; s < len(ns); s += sliceSize {
		e := s + sliceSize
		if e > len(ns) {
			e = len(ns)
		}
		strip := ns[s:e]
		sort.Slice(strip, func(i, j int) bool { return center(strip[i].box).Y < center(strip[j].box).Y })
		for k := 0; k < len(strip); k += maxEntries {
			ke := k + maxEntries
			if ke > len(strip) {
				ke = len(strip)
			}
			n := &node{box: geom.EmptyRect()}
			n.children = append(n.children, strip[k:ke]...)
			for _, c := range n.children {
				n.box = n.box.Union(c.box)
			}
			out = append(out, n)
		}
	}
	return out
}

// stripSize is the STR vertical strip width: ceil(sqrt(ceil(n/M))) * M.
func stripSize(n int) int {
	pages := (n + maxEntries - 1) / maxEntries
	s := 1
	for s*s < pages {
		s++
	}
	return s * maxEntries
}

func center(r geom.Rect) geom.Point { return r.Center() }

// Depth returns the height of the tree (1 for a single leaf); useful for
// structural assertions in tests.
func (t *RTree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}

// checkInvariants walks the tree validating structural invariants; it
// returns an error describing the first violation. Exposed for tests.
func (t *RTree) checkInvariants() error {
	return checkNode(t.root, true)
}

func checkNode(n *node, isRoot bool) error {
	if n.leaf {
		box := geom.EmptyRect()
		for _, it := range n.items {
			box = box.Union(it.Box)
		}
		if len(n.items) > 0 && box != n.box {
			return fmt.Errorf("index: leaf box %v != union of items %v", n.box, box)
		}
		if !isRoot && len(n.items) == 0 {
			return fmt.Errorf("index: empty non-root leaf")
		}
		return nil
	}
	if len(n.children) == 0 {
		return fmt.Errorf("index: internal node with no children")
	}
	box := geom.EmptyRect()
	depths := map[int]bool{}
	for _, c := range n.children {
		box = box.Union(c.box)
		if err := checkNode(c, false); err != nil {
			return err
		}
		depths[subDepth(c)] = true
	}
	if box != n.box {
		return fmt.Errorf("index: internal box %v != union of children %v", n.box, box)
	}
	if len(depths) != 1 {
		return fmt.Errorf("index: unbalanced subtree depths")
	}
	return nil
}

func subDepth(n *node) int {
	d := 1
	for !n.leaf {
		n = n.children[0]
		d++
	}
	return d
}
