package index

import (
	"context"
	"fmt"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// Live is an R-tree kept in sync with an edited region set: where BulkLoad
// answers "index this configuration once", Live tracks the
// add/remove/rename/set-geometry deltas of an interactive session and keeps
// directional selection available between edits without rebuilding. It is
// the index-layer twin of core.RelationStore and, like it, single-writer.
type Live struct {
	tree  *RTree
	geoms map[string]geom.Region
	boxes map[string]geom.Rect // the box each id is indexed under
}

// NewLive bulk-loads a maintained index over the given regions. IDs must be
// unique and non-empty; every region must have a non-empty bounding box.
func NewLive(regions []core.NamedRegion) (*Live, error) {
	l := &Live{
		geoms: make(map[string]geom.Region, len(regions)),
		boxes: make(map[string]geom.Rect, len(regions)),
	}
	items := make([]Item, 0, len(regions))
	for _, r := range regions {
		if r.Name == "" {
			return nil, fmt.Errorf("index: empty region id")
		}
		if _, ok := l.geoms[r.Name]; ok {
			return nil, fmt.Errorf("index: duplicate region id %q", r.Name)
		}
		box := r.Region.BoundingBox()
		if box.IsEmpty() {
			return nil, fmt.Errorf("index: region %q has an empty bounding box", r.Name)
		}
		l.geoms[r.Name] = r.Region
		l.boxes[r.Name] = box
		items = append(items, Item{ID: r.Name, Box: box})
	}
	tree, err := BulkLoad(items)
	if err != nil {
		return nil, err
	}
	l.tree = tree
	return l, nil
}

// Len returns the number of indexed regions.
func (l *Live) Len() int { return l.tree.Len() }

// Has reports whether id is indexed.
func (l *Live) Has(id string) bool {
	_, ok := l.geoms[id]
	return ok
}

// Tree exposes the underlying R-tree for window queries and structural
// assertions; callers must not mutate it.
func (l *Live) Tree() *RTree { return l.tree }

// Add indexes a new region. The id must be unique and non-empty, the
// region's bounding box non-empty.
func (l *Live) Add(id string, g geom.Region) error {
	if id == "" {
		return fmt.Errorf("index: empty region id")
	}
	if _, ok := l.geoms[id]; ok {
		return fmt.Errorf("index: duplicate region id %q", id)
	}
	box := g.BoundingBox()
	if box.IsEmpty() {
		return fmt.Errorf("index: region %q has an empty bounding box", id)
	}
	if err := l.tree.Insert(Item{ID: id, Box: box}); err != nil {
		return err
	}
	l.geoms[id] = g
	l.boxes[id] = box
	return nil
}

// Remove drops a region from the index.
func (l *Live) Remove(id string) error {
	box, ok := l.boxes[id]
	if !ok {
		return fmt.Errorf("index: region %q not indexed", id)
	}
	if !l.tree.Delete(Item{ID: id, Box: box}) {
		return fmt.Errorf("index: region %q missing from tree (index corrupted)", id)
	}
	delete(l.geoms, id)
	delete(l.boxes, id)
	return nil
}

// Rename relabels a region in place: same box, new id.
func (l *Live) Rename(oldID, newID string) error {
	if newID == "" {
		return fmt.Errorf("index: empty region id")
	}
	if oldID == newID {
		return nil
	}
	box, ok := l.boxes[oldID]
	if !ok {
		return fmt.Errorf("index: region %q not indexed", oldID)
	}
	if _, ok := l.geoms[newID]; ok {
		return fmt.Errorf("index: duplicate region id %q", newID)
	}
	if !l.tree.Delete(Item{ID: oldID, Box: box}) {
		return fmt.Errorf("index: region %q missing from tree (index corrupted)", oldID)
	}
	if err := l.tree.Insert(Item{ID: newID, Box: box}); err != nil {
		return err
	}
	l.geoms[newID] = l.geoms[oldID]
	l.boxes[newID] = box
	delete(l.geoms, oldID)
	delete(l.boxes, oldID)
	return nil
}

// SetGeometry replaces a region's geometry, moving its index entry to the
// new bounding box.
func (l *Live) SetGeometry(id string, g geom.Region) error {
	oldBox, ok := l.boxes[id]
	if !ok {
		return fmt.Errorf("index: region %q not indexed", id)
	}
	box := g.BoundingBox()
	if box.IsEmpty() {
		return fmt.Errorf("index: region %q has an empty bounding box", id)
	}
	if !l.tree.Delete(Item{ID: id, Box: oldBox}) {
		return fmt.Errorf("index: region %q missing from tree (index corrupted)", id)
	}
	if err := l.tree.Insert(Item{ID: id, Box: box}); err != nil {
		return err
	}
	l.geoms[id] = g
	l.boxes[id] = box
	return nil
}

// Select runs the three-stage directional selection plan over the
// maintained index: window queries per constraint tile, MBB refinement,
// exact Compute-CDR refinement. Results are sorted ids.
func (l *Live) Select(reference geom.Region, allowed core.RelationSet) ([]string, error) {
	return DirectionalSelect(l.tree, l.geoms, reference, allowed)
}

// SelectStats is Select with instrumentation.
func (l *Live) SelectStats(reference geom.Region, allowed core.RelationSet) ([]string, SelectStats, error) {
	return DirectionalSelectStats(l.tree, l.geoms, reference, allowed)
}

// SelectStatsCtx is SelectStats honoring a context: cancellation aborts the
// selection at the next candidate refinement.
func (l *Live) SelectStatsCtx(ctx context.Context, reference geom.Region, allowed core.RelationSet) ([]string, SelectStats, error) {
	return DirectionalSelectStatsCtx(ctx, l.tree, l.geoms, reference, allowed)
}
