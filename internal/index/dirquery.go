package index

import (
	"context"
	"fmt"
	"math"
	"sort"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// SelectStats reports the work one directional selection performed; the
// tests and the E19 experiment use it to verify the R-tree actually prunes
// (Candidates < Total on bounded constraints) without changing results.
type SelectStats struct {
	Total      int  // items in the index
	Candidates int  // distinct items visited after the window queries
	MBBMatched int  // candidates surviving MBB-level refinement
	Exact      int  // exact Compute-CDR refinements performed
	Matched    int  // final result size
	FullScan   bool // constraint tiles cover the plane — window pruning impossible
}

// DirectionalSelect finds the regions whose cardinal direction relation to
// the reference region is a member of the allowed set, using a three-stage
// plan a spatial database would use:
//
//  1. R-tree window queries — one per tile mentioned by any allowed
//     relation ("north of b" → the half-plane strip above mbb(b)); a
//     matching region lies inside the union of its relation's tiles, so its
//     bounding box must intersect at least one queried window. Only when
//     the allowed tiles cover the whole plane does the plan fall back to a
//     full scan.
//  2. MBB refinement — the bounding-box relation over-approximates the
//     exact relation (exact tiles ⊆ MBB tiles), so a candidate survives
//     only when some allowed relation is a subset of its MBB relation;
//  3. exact refinement — Compute-CDR on the survivors through the
//     prepared-region engine.
//
// regions supplies the exact geometry by item id. Results are sorted ids.
// Every stage is sound (no false dismissals); the tests check equivalence
// with the naive scan.
func DirectionalSelect(
	tree *RTree,
	regions map[string]geom.Region,
	reference geom.Region,
	allowed core.RelationSet,
) ([]string, error) {
	out, _, err := DirectionalSelectStats(tree, regions, reference, allowed)
	return out, err
}

// DirectionalSelectStats is DirectionalSelect with instrumentation.
func DirectionalSelectStats(
	tree *RTree,
	regions map[string]geom.Region,
	reference geom.Region,
	allowed core.RelationSet,
) ([]string, SelectStats, error) {
	return DirectionalSelectStatsCtx(context.Background(), tree, regions, reference, allowed)
}

// DirectionalSelectStatsCtx is DirectionalSelectStats honoring a context:
// cancellation is observed once per candidate refinement (the expensive
// stage) and the context's error is returned verbatim for errors.Is.
func DirectionalSelectStatsCtx(
	ctx context.Context,
	tree *RTree,
	regions map[string]geom.Region,
	reference geom.Region,
	allowed core.RelationSet,
) ([]string, SelectStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var st SelectStats
	st.Total = tree.Len()
	if allowed.IsEmpty() {
		return nil, st, fmt.Errorf("index: empty allowed relation set")
	}
	grid, err := core.NewGrid(reference.BoundingBox())
	if err != nil {
		return nil, st, err
	}

	// Stage 1: one window query per constraint tile, deduplicated by id.
	var tiles core.Relation
	for _, r := range allowed.Relations() {
		tiles = tiles.Union(r)
	}
	candidates := searchTiles(tree, grid, tiles, &st)
	st.Candidates = len(candidates)
	allowedRels := allowed.Relations()

	var out []string
	sc := &core.Scratch{}
	for _, it := range candidates {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		// Stage 2: MBB-level pruning.
		mbbRel := mbbRelation(grid, it.Box)
		possible := false
		for _, r := range allowedRels {
			if r.Intersect(mbbRel) == r {
				possible = true
				break
			}
		}
		if !possible {
			continue
		}
		st.MBBMatched++
		// Stage 3: exact refinement through the prepared-region engine —
		// the reference grid is reused across survivors, the split buffer
		// is recycled, and box-separable survivors take the MBB fast path.
		g, ok := regions[it.ID]
		if !ok {
			return nil, st, fmt.Errorf("index: no geometry for indexed id %q", it.ID)
		}
		p, err := core.Prepare(it.ID, g)
		if err != nil {
			return nil, st, fmt.Errorf("index: refining %q: %w", it.ID, err)
		}
		st.Exact++
		if allowed.Contains(p.RelateGrid(grid, sc)) {
			out = append(out, it.ID)
		}
	}
	sort.Strings(out)
	st.Matched = len(out)
	return out, st, nil
}

// EstimateSelect runs only the cheap stages of the directional-selection
// plan — R-tree window queries and MBB refinement, never exact geometry —
// and returns the instrumentation (Exact and Matched stay zero). The query
// planner reads MBBMatched/Total off the result as a sound upper-bound
// selectivity estimate for a pinned-reference relation condition, paying a
// few window queries instead of the selection itself.
func EstimateSelect(tree *RTree, reference geom.Region, allowed core.RelationSet) (SelectStats, error) {
	var st SelectStats
	st.Total = tree.Len()
	if allowed.IsEmpty() {
		return st, fmt.Errorf("index: empty allowed relation set")
	}
	grid, err := core.NewGrid(reference.BoundingBox())
	if err != nil {
		return st, err
	}
	var tiles core.Relation
	for _, r := range allowed.Relations() {
		tiles = tiles.Union(r)
	}
	candidates := searchTiles(tree, grid, tiles, &st)
	st.Candidates = len(candidates)
	for _, it := range candidates {
		mbbRel := mbbRelation(grid, it.Box)
		for _, r := range allowed.Relations() {
			if r.Intersect(mbbRel) == r {
				st.MBBMatched++
				break
			}
		}
	}
	return st, nil
}

// FindRelated is the index-driven counterpart of core.FindRelated: it
// bulk-loads the candidates' bounding boxes into a transient R-tree and
// answers through DirectionalSelect, so on scatter-like inputs most
// candidates are dismissed by window queries without their geometry ever
// being touched. Results are identical to core.FindRelated (sorted names);
// a candidate with no usable geometry yields a wrapped
// core.ErrDegenerateRegion like the scan path does.
func FindRelated(candidates []core.NamedRegion, reference geom.Region, allowed core.RelationSet) ([]string, error) {
	return FindRelatedCtx(context.Background(), candidates, reference, allowed)
}

// FindRelatedCtx is FindRelated honoring a context: cancellation is observed
// once per candidate refinement, like DirectionalSelectStatsCtx.
func FindRelatedCtx(ctx context.Context, candidates []core.NamedRegion, reference geom.Region, allowed core.RelationSet) ([]string, error) {
	if allowed.IsEmpty() {
		return nil, fmt.Errorf("core: empty allowed relation set")
	}
	if len(reference) == 0 {
		return nil, fmt.Errorf("core: reference region is empty")
	}
	items := make([]Item, 0, len(candidates))
	regions := make(map[string]geom.Region, len(candidates))
	for _, c := range candidates {
		box := c.Region.BoundingBox()
		if box.IsEmpty() {
			// Preserve the scan path's contract: degenerate candidates are
			// an error, not a silent non-match. Prepare produces the
			// canonical wrapped sentinel.
			if _, err := core.Prepare(c.Name, c.Region); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: region %q has empty bounding box: %w", c.Name, core.ErrDegenerateRegion)
		}
		items = append(items, Item{Box: box, ID: c.Name})
		regions[c.Name] = c.Region
	}
	tree, err := BulkLoad(items)
	if err != nil {
		return nil, err
	}
	return DirectionalSelect(tree, regions, reference, allowed)
}

// searchTiles runs one R-tree window query per constraint tile,
// deduplicating items that fall in several windows (windows of adjacent
// tiles share their boundary lines). When the tiles cover all nine cells
// the union is the whole plane — no window can dismiss anything — so a
// single full traversal is used instead and FullScan is recorded.
func searchTiles(tree *RTree, g core.Grid, tiles core.Relation, st *SelectStats) []Item {
	if tiles == core.RelationMask {
		st.FullScan = true
		everything := geom.Rect{
			MinX: math.Inf(-1), MinY: math.Inf(-1),
			MaxX: math.Inf(1), MaxY: math.Inf(1),
		}
		return tree.Search(everything, nil)
	}
	var out []Item
	seen := make(map[string]bool)
	for _, t := range tiles.Tiles() {
		for _, it := range tree.Search(tileRect(g, t), nil) {
			if !seen[it.ID] {
				seen[it.ID] = true
				out = append(out, it)
			}
		}
	}
	return out
}

// tileRect returns a tile's extent, with ±Inf for unbounded sides.
func tileRect(g core.Grid, t core.Tile) geom.Rect {
	r := geom.Rect{MinX: math.Inf(-1), MinY: math.Inf(-1), MaxX: math.Inf(1), MaxY: math.Inf(1)}
	switch t.Col() {
	case 0:
		r.MaxX = g.M1
	case 1:
		r.MinX, r.MaxX = g.M1, g.M2
	case 2:
		r.MinX = g.M2
	}
	switch t.Row() {
	case 0:
		r.MaxY = g.L1
	case 1:
		r.MinY, r.MaxY = g.L1, g.L2
	case 2:
		r.MinY = g.L2
	}
	return r
}

// mbbRelation computes the tile relation of a bounding box against the
// grid: the tiles the box overlaps with positive area. It equals the exact
// relation of the box viewed as a region, and over-approximates the exact
// relation of anything inside the box.
func mbbRelation(g core.Grid, box geom.Rect) core.Relation {
	var rel core.Relation
	for _, t := range core.Tiles() {
		tr := tileRect(g, t)
		if math.Min(tr.MaxX, box.MaxX) > math.Max(tr.MinX, box.MinX) &&
			math.Min(tr.MaxY, box.MaxY) > math.Max(tr.MinY, box.MinY) {
			rel = rel.With(t)
		}
	}
	return rel
}
