package index

import (
	"fmt"
	"math"
	"sort"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// DirectionalSelect finds the regions whose cardinal direction relation to
// the reference region is a member of the allowed set, using a three-stage
// plan a spatial database would use:
//
//  1. R-tree window search — the allowed relations' tiles bound where a
//     matching region's bounding box can possibly lie;
//  2. MBB refinement — the bounding-box relation over-approximates the
//     exact relation (exact tiles ⊆ MBB tiles), so a candidate survives
//     only when some allowed relation is a subset of its MBB relation;
//  3. exact refinement — Compute-CDR on the survivors.
//
// regions supplies the exact geometry by item id. Results are sorted ids.
// Every stage is sound (no false dismissals); the tests check equivalence
// with the naive scan.
func DirectionalSelect(
	tree *RTree,
	regions map[string]geom.Region,
	reference geom.Region,
	allowed core.RelationSet,
) ([]string, error) {
	if allowed.IsEmpty() {
		return nil, fmt.Errorf("index: empty allowed relation set")
	}
	grid, err := core.NewGrid(reference.BoundingBox())
	if err != nil {
		return nil, err
	}

	// Stage 1: the window containing every tile mentioned by any allowed
	// relation. A matching region lies inside the union of its relation's
	// tiles, hence inside this window.
	window := windowOfRelations(grid, allowed)
	candidates := tree.Search(window, nil)
	allowedRels := allowed.Relations()

	var out []string
	sc := &core.Scratch{}
	for _, it := range candidates {
		// Stage 2: MBB-level pruning.
		mbbRel := mbbRelation(grid, it.Box)
		possible := false
		for _, r := range allowedRels {
			if r.Intersect(mbbRel) == r {
				possible = true
				break
			}
		}
		if !possible {
			continue
		}
		// Stage 3: exact refinement through the prepared-region engine —
		// the reference grid is reused across survivors, the split buffer
		// is recycled, and box-separable survivors take the MBB fast path.
		g, ok := regions[it.ID]
		if !ok {
			return nil, fmt.Errorf("index: no geometry for indexed id %q", it.ID)
		}
		p, err := core.Prepare(it.ID, g)
		if err != nil {
			return nil, fmt.Errorf("index: refining %q: %w", it.ID, err)
		}
		if allowed.Contains(p.RelateGrid(grid, sc)) {
			out = append(out, it.ID)
		}
	}
	sort.Strings(out)
	return out, nil
}

// windowOfRelations returns the bounding box of the union of every tile
// used by any relation in the set; unbounded tiles yield ±Inf sides.
func windowOfRelations(g core.Grid, allowed core.RelationSet) geom.Rect {
	var tiles core.Relation
	for _, r := range allowed.Relations() {
		tiles = tiles.Union(r)
	}
	w := geom.EmptyRect()
	for _, t := range tiles.Tiles() {
		w = w.Union(tileRect(g, t))
	}
	return w
}

// tileRect returns a tile's extent, with ±Inf for unbounded sides.
func tileRect(g core.Grid, t core.Tile) geom.Rect {
	r := geom.Rect{MinX: math.Inf(-1), MinY: math.Inf(-1), MaxX: math.Inf(1), MaxY: math.Inf(1)}
	switch t.Col() {
	case 0:
		r.MaxX = g.M1
	case 1:
		r.MinX, r.MaxX = g.M1, g.M2
	case 2:
		r.MinX = g.M2
	}
	switch t.Row() {
	case 0:
		r.MaxY = g.L1
	case 1:
		r.MinY, r.MaxY = g.L1, g.L2
	case 2:
		r.MinY = g.L2
	}
	return r
}

// mbbRelation computes the tile relation of a bounding box against the
// grid: the tiles the box overlaps with positive area. It equals the exact
// relation of the box viewed as a region, and over-approximates the exact
// relation of anything inside the box.
func mbbRelation(g core.Grid, box geom.Rect) core.Relation {
	var rel core.Relation
	for _, t := range core.Tiles() {
		tr := tileRect(g, t)
		if math.Min(tr.MaxX, box.MaxX) > math.Max(tr.MinX, box.MinX) &&
			math.Min(tr.MaxY, box.MaxY) > math.Max(tr.MinY, box.MinY) {
			rel = rel.With(t)
		}
	}
	return rel
}
