package topo

import (
	"math"

	"cardirect/internal/geom"
)

// MinDistance returns the minimum Euclidean distance between two regions:
// zero when they share area or touch, otherwise the smallest distance
// between their boundaries.
func MinDistance(a, b geom.Region) float64 {
	if BoundariesTouch(a, b) {
		return 0
	}
	// Containment without boundary contact also means distance zero.
	if containsAny(a, b) || containsAny(b, a) {
		return 0
	}
	best := math.Inf(1)
	for _, pa := range a {
		for i := 0; i < pa.NumEdges(); i++ {
			ea := pa.Edge(i)
			for _, pb := range b {
				for j := 0; j < pb.NumEdges(); j++ {
					if d := segmentDistance(ea, pb.Edge(j)); d < best {
						best = d
						if best == 0 {
							return 0
						}
					}
				}
			}
		}
	}
	return best
}

// containsAny reports whether any vertex of inner lies inside outer — with
// non-touching boundaries that implies the component is fully inside.
func containsAny(outer, inner geom.Region) bool {
	for _, p := range inner {
		if outer.Contains(p[0]) {
			return true
		}
	}
	return false
}

// segmentDistance returns the minimum distance between two segments.
func segmentDistance(s, u geom.Segment) float64 {
	if geom.SegmentsIntersect(s, u) {
		return 0
	}
	return math.Min(
		math.Min(pointSegmentDistance(s.A, u), pointSegmentDistance(s.B, u)),
		math.Min(pointSegmentDistance(u.A, s), pointSegmentDistance(u.B, s)),
	)
}

// pointSegmentDistance returns the distance from p to the closed segment s.
func pointSegmentDistance(p geom.Point, s geom.Segment) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(s.A.Add(d.Scale(t)))
}

// Distance is a qualitative distance relation in the style of Frank [3]:
// the continuous minimum distance quantised against a reference scale.
type Distance uint8

// The five distance classes.
const (
	DistTouch Distance = iota // distance zero (touching or overlapping)
	DistVeryClose
	DistClose
	DistMedium
	DistFar
)

var distNames = [...]string{"touch", "very-close", "close", "medium", "far"}

// String returns the class name.
func (d Distance) String() string {
	if int(d) < len(distNames) {
		return distNames[d]
	}
	return "Distance(?)"
}

// ClassifyDistance quantises MinDistance(a, b) against the diagonal of the
// reference region's bounding box (the natural scale of the configuration):
// touch (= 0), very-close (< ¼ diag), close (< ½), medium (< 1), far (≥ 1).
func ClassifyDistance(a, b geom.Region) Distance {
	d := MinDistance(a, b)
	if d == 0 {
		return DistTouch
	}
	box := b.BoundingBox()
	diag := math.Hypot(box.Width(), box.Height())
	if diag == 0 {
		return DistFar
	}
	switch r := d / diag; {
	case r < 0.25:
		return DistVeryClose
	case r < 0.5:
		return DistClose
	case r < 1:
		return DistMedium
	default:
		return DistFar
	}
}
