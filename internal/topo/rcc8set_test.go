package topo

import (
	"math/rand"
	"testing"
)

func TestRCC8SetBasics(t *testing.T) {
	s := RCC8Of(DC, TPP, NTPPi)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, r := range []RCC8{DC, TPP, NTPPi} {
		if !s.Has(r) {
			t.Errorf("missing %v", r)
		}
	}
	if s.Has(EQ) || s.Has(PO) {
		t.Error("spurious members")
	}
	if got := s.String(); got != "DC|TPP|NTPPi" {
		t.Errorf("String = %q", got)
	}
	back, err := ParseRCC8Set(s.String())
	if err != nil || back != s {
		t.Errorf("Parse round-trip: %v, %v", back, err)
	}
	if star, err := ParseRCC8Set("*"); err != nil || star != RCC8All {
		t.Errorf("Parse(*) = %v, %v", star, err)
	}
	if _, err := ParseRCC8Set("BOGUS"); err == nil {
		t.Error("Parse(BOGUS) succeeded")
	}
	if got := s.Converse(); got != RCC8Of(DC, TPPi, NTPP) {
		t.Errorf("Converse = %v", got)
	}
}

// TestRCC8ComposeIdentity: EQ is the identity of composition on both sides.
func TestRCC8ComposeIdentity(t *testing.T) {
	for r := DC; r <= NTPPi; r++ {
		if got := ComposeRCC8(EQ, r); got != RCC8Of(r) {
			t.Errorf("EQ∘%v = %v", r, got)
		}
		if got := ComposeRCC8(r, EQ); got != RCC8Of(r) {
			t.Errorf("%v∘EQ = %v", r, got)
		}
	}
}

// TestRCC8ComposeConverseLaw checks (R∘S)˘ = S˘∘R˘ over every base pair —
// a strong structural invariant that catches most transcription mistakes in
// the table.
func TestRCC8ComposeConverseLaw(t *testing.T) {
	for r1 := DC; r1 <= NTPPi; r1++ {
		for r2 := DC; r2 <= NTPPi; r2++ {
			lhs := ComposeRCC8(r1, r2).Converse()
			rhs := ComposeRCC8(r2.Converse(), r1.Converse())
			if lhs != rhs {
				t.Errorf("(%v∘%v)˘ = %v, want %v", r1, r2, lhs, rhs)
			}
		}
	}
}

// TestRCC8ComposeSound checks the table against concrete geometry: for
// random box triples, Classify(a,b) ∘ Classify(b,c) must contain
// Classify(a,c). This catches missing entries (which would make the joint
// consistency filter unsound); extra entries only weaken pruning.
func TestRCC8ComposeSound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randBox := func() [4]float64 {
		// Snap to a small integer lattice so EQ/TPP/EC configurations occur.
		x1 := float64(rng.Intn(5))
		y1 := float64(rng.Intn(5))
		return [4]float64{x1, y1, x1 + float64(1+rng.Intn(4)), y1 + float64(1+rng.Intn(4))}
	}
	for trial := 0; trial < 3000; trial++ {
		ba, bb, bc := randBox(), randBox(), randBox()
		a := bx(ba[0], ba[1], ba[2], ba[3])
		b := bx(bb[0], bb[1], bb[2], bb[3])
		c := bx(bc[0], bc[1], bc[2], bc[3])
		rab := Classify(a, b, 0)
		rbc := Classify(b, c, 0)
		rac := Classify(a, c, 0)
		if !ComposeRCC8(rab, rbc).Has(rac) {
			t.Fatalf("trial %d: %v∘%v = %v misses observed %v (a=%v b=%v c=%v)",
				trial, rab, rbc, ComposeRCC8(rab, rbc), rac, ba, bb, bc)
		}
	}
}

// TestRCC8NetPropagate: the NTPP chain a⊂b⊂c forces a NTPP c; adding
// a DC c on top is inconsistent and Propagate detects it.
func TestRCC8NetPropagate(t *testing.T) {
	net := NewRCC8Net(3)
	net.Set(0, 1, RCC8Of(NTPP))
	net.Set(1, 2, RCC8Of(NTPP))
	if !net.Propagate() {
		t.Fatal("consistent chain rejected")
	}
	if got := net.Get(0, 2); got != RCC8Of(NTPP) {
		t.Errorf("entailed (a,c) = %v, want NTPP", got)
	}
	if got := net.Get(2, 0); got != RCC8Of(NTPPi) {
		t.Errorf("entailed (c,a) = %v, want NTPPi", got)
	}

	bad := NewRCC8Net(3)
	bad.Set(0, 1, RCC8Of(NTPP))
	bad.Set(1, 2, RCC8Of(NTPP))
	bad.Set(0, 2, RCC8Of(DC))
	if bad.Propagate() {
		t.Error("inconsistent chain accepted")
	}
}
