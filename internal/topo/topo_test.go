package topo

import (
	"math"
	"math/rand"
	"testing"

	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

func bx(minX, minY, maxX, maxY float64) geom.Region {
	return workload.BoxRegion(minX, minY, maxX, maxY)
}

func TestIntersectionAreaBoxes(t *testing.T) {
	cases := []struct {
		a, b geom.Region
		want float64
	}{
		{bx(0, 0, 4, 4), bx(2, 2, 6, 6), 4},     // corner overlap
		{bx(0, 0, 4, 4), bx(10, 10, 12, 12), 0}, // disjoint
		{bx(0, 0, 4, 4), bx(4, 0, 8, 4), 0},     // edge-touching
		{bx(0, 0, 8, 8), bx(2, 2, 4, 4), 4},     // containment
		{bx(0, 0, 4, 4), bx(0, 0, 4, 4), 16},    // equal
		{bx(0, 0, 4, 4), bx(1, -2, 3, 6), 8},    // vertical band through
	}
	for i, c := range cases {
		got := IntersectionArea(c.a, c.b)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("case %d: area = %v, want %v", i, got, c.want)
		}
		// Symmetry.
		if got2 := IntersectionArea(c.b, c.a); math.Abs(got2-got) > 1e-9 {
			t.Errorf("case %d: asymmetric: %v vs %v", i, got, got2)
		}
	}
}

func TestIntersectionAreaTriangles(t *testing.T) {
	// Two triangles overlapping in a quadrilateral with a known area:
	// right triangle (0,0),(4,0),(0,4) and the box [1,1]×[2,2]… simpler:
	// triangle ∩ box computed analytically.
	tri := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(0, 4), geom.Pt(4, 0)))
	box := bx(1, 1, 2, 2)
	// Inside the triangle, the hypotenuse is x + y = 4; the whole box
	// satisfies x+y ≤ 4 except the corner above x+y=4? At (2,2): x+y=4 —
	// on the line. So box ⊆ triangle; intersection = box area = 1.
	if got := IntersectionArea(tri, box); math.Abs(got-1) > 1e-9 {
		t.Errorf("tri ∩ box = %v, want 1", got)
	}
	// Box sticking out: [3,3]×[1,2] has x+y ranging 4..5 → only the
	// triangle's boundary grazes it; area 0.
	out := bx(3, 1, 4, 2)
	if got := IntersectionArea(tri, out); got > 1e-9 {
		t.Errorf("grazing box area = %v, want 0", got)
	}
	// A genuinely cut box: [2,3]×[0,2]: region x∈[2,3], y∈[0,2], inside
	// triangle where y < 4−x → full strip for y ≤ 1 (at x=3) … integral:
	// ∫_{x=2}^{3} min(2, 4−x) dy dx = ∫ (4−x ≥ 2 ? 2 : 4−x) = at x∈[2,3]:
	// 4−x ∈ [1,2] → area = ∫_{2}^{3} (4−x) dx = [4x − x²/2] = (12−4.5)−(8−2) = 1.5.
	cut := bx(2, 0, 3, 2)
	if got := IntersectionArea(tri, cut); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("cut box area = %v, want 1.5", got)
	}
}

func TestIntersectionAreaMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := workload.New(12)
	for trial := 0; trial < 40; trial++ {
		a := geom.Rgn(g.StarPolygon(rng.Float64()*4, rng.Float64()*4, 1, 4, 3+rng.Intn(8)))
		b := geom.Rgn(g.StarPolygon(rng.Float64()*4, rng.Float64()*4, 1, 4, 3+rng.Intn(8)))
		got := IntersectionArea(a, b)
		// Monte-Carlo estimate over the bbox intersection.
		w := a.BoundingBox().Union(b.BoundingBox())
		const n = 60000
		hits := 0
		for i := 0; i < n; i++ {
			p := geom.Pt(w.MinX+rng.Float64()*w.Width(), w.MinY+rng.Float64()*w.Height())
			if a.Contains(p) && b.Contains(p) {
				hits++
			}
		}
		est := float64(hits) / n * w.Area()
		tol := 0.05*math.Max(got, est) + 0.05
		if math.Abs(got-est) > tol {
			t.Fatalf("trial %d: exact %v vs MC %v", trial, got, est)
		}
	}
}

func TestBoundariesTouch(t *testing.T) {
	if BoundariesTouch(bx(0, 0, 2, 2), bx(5, 5, 6, 6)) {
		t.Error("disjoint boxes touch")
	}
	if !BoundariesTouch(bx(0, 0, 2, 2), bx(2, 0, 4, 2)) {
		t.Error("edge-sharing boxes should touch")
	}
	if !BoundariesTouch(bx(0, 0, 2, 2), bx(2, 2, 4, 4)) {
		t.Error("corner-touching boxes should touch")
	}
	if !BoundariesTouch(bx(0, 0, 4, 4), bx(2, 2, 6, 6)) {
		t.Error("overlapping boxes' boundaries cross")
	}
	if BoundariesTouch(bx(0, 0, 8, 8), bx(2, 2, 4, 4)) {
		t.Error("strictly-contained box must not touch")
	}
}

func TestRCC8Classification(t *testing.T) {
	cases := []struct {
		a, b geom.Region
		want RCC8
	}{
		{bx(0, 0, 2, 2), bx(5, 5, 6, 6), DC},
		{bx(0, 0, 2, 2), bx(2, 0, 4, 2), EC},
		{bx(0, 0, 4, 4), bx(2, 2, 6, 6), PO},
		{bx(0, 0, 4, 4), bx(0, 0, 4, 4), EQ},
		{bx(2, 2, 4, 4), bx(0, 0, 8, 8), NTPP},
		{bx(0, 2, 2, 4), bx(0, 0, 8, 8), TPP}, // shares the west boundary
		{bx(0, 0, 8, 8), bx(2, 2, 4, 4), NTPPi},
		{bx(0, 0, 8, 8), bx(0, 2, 2, 4), TPPi},
	}
	for i, c := range cases {
		got := Classify(c.a, c.b, 0)
		if got != c.want {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
		// Converse coherence.
		back := Classify(c.b, c.a, 0)
		if back != c.want.Converse() {
			t.Errorf("case %d: converse %v, want %v", i, back, c.want.Converse())
		}
	}
}

func TestRCC8ConverseInvolution(t *testing.T) {
	for r := DC; r <= NTPPi; r++ {
		if r.Converse().Converse() != r {
			t.Errorf("converse not involutive for %v", r)
		}
		if r.String() == "RCC8(?)" {
			t.Errorf("missing name for %d", r)
		}
	}
}

func TestMinDistance(t *testing.T) {
	// Horizontal gap of 3.
	if got := MinDistance(bx(0, 0, 2, 2), bx(5, 0, 7, 2)); math.Abs(got-3) > 1e-12 {
		t.Errorf("gap distance = %v, want 3", got)
	}
	// Diagonal gap: closest corners (2,2)-(5,6) → 5.
	if got := MinDistance(bx(0, 0, 2, 2), bx(5, 6, 7, 8)); math.Abs(got-5) > 1e-12 {
		t.Errorf("diagonal distance = %v, want 5", got)
	}
	// Touching and overlapping → 0.
	if got := MinDistance(bx(0, 0, 2, 2), bx(2, 0, 4, 2)); got != 0 {
		t.Errorf("touching distance = %v", got)
	}
	if got := MinDistance(bx(0, 0, 4, 4), bx(2, 2, 6, 6)); got != 0 {
		t.Errorf("overlap distance = %v", got)
	}
	// Strict containment → 0 (no boundary contact).
	if got := MinDistance(bx(2, 2, 4, 4), bx(0, 0, 8, 8)); got != 0 {
		t.Errorf("containment distance = %v", got)
	}
}

func TestClassifyDistance(t *testing.T) {
	ref := bx(0, 0, 8, 6) // diag 10
	cases := []struct {
		a    geom.Region
		want Distance
	}{
		{bx(2, 2, 4, 4), DistTouch},
		{bx(9, 0, 10, 6), DistVeryClose}, // gap 1 < 2.5
		{bx(11, 0, 12, 6), DistClose},    // gap 3 ∈ [2.5, 5)
		{bx(14, 0, 15, 6), DistMedium},   // gap 6 ∈ [5, 10)
		{bx(30, 0, 31, 6), DistFar},      // gap 22 ≥ 10
	}
	for i, c := range cases {
		if got := ClassifyDistance(c.a, ref); got != c.want {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
	if DistTouch.String() != "touch" || DistFar.String() != "far" {
		t.Error("distance names wrong")
	}
}

// Property: intersection area is bounded by both areas, symmetric, and
// exact for self-intersection.
func TestIntersectionAreaProperties(t *testing.T) {
	g := workload.New(55)
	for trial := 0; trial < 60; trial++ {
		a := geom.Rgn(g.StarPolygon(float64(trial%7), float64(trial%5), 1, 3, 5+trial%6))
		b := geom.Rgn(g.StarPolygon(float64(trial%4)+1, float64(trial%6), 1, 3, 4+trial%7))
		ab := IntersectionArea(a, b)
		if ab < -1e-9 || ab > math.Min(a.Area(), b.Area())+1e-9 {
			t.Fatalf("trial %d: area %v out of bounds [0, %v]", trial, ab, math.Min(a.Area(), b.Area()))
		}
		self := IntersectionArea(a, a)
		if math.Abs(self-a.Area()) > 1e-9*math.Max(1, a.Area()) {
			t.Fatalf("trial %d: self-intersection %v != area %v", trial, self, a.Area())
		}
	}
}
