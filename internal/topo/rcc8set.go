package topo

import (
	"fmt"
	"strings"
)

// RCC8Set is a set of RCC-8 base relations (a general, possibly disjunctive
// topological relation) as an 8-bit mask — bit r set means base relation
// RCC8(r) is possible. It is the topological counterpart of
// core.RelationSet, and the substrate of the joint directional+topological
// consistency check (Li & Cohn's combined theory): path consistency over
// RCC8Set networks prunes the topological side while the cardinal-direction
// closure prunes the directional side, with the coupling rules in
// internal/reason translating between them.
type RCC8Set uint8

// RCC8All is the universal topological relation.
const RCC8All RCC8Set = 1<<8 - 1

// RCC8Of builds a set from base relations.
func RCC8Of(rs ...RCC8) RCC8Set {
	var s RCC8Set
	for _, r := range rs {
		s |= 1 << r
	}
	return s
}

// Has reports whether r is in the set.
func (s RCC8Set) Has(r RCC8) bool { return s&(1<<r) != 0 }

// IsEmpty reports whether the set has no base relations.
func (s RCC8Set) IsEmpty() bool { return s == 0 }

// Len returns the number of base relations in the set.
func (s RCC8Set) Len() int {
	n := 0
	for m := s; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Rels returns the members in declaration order.
func (s RCC8Set) Rels() []RCC8 {
	out := make([]RCC8, 0, s.Len())
	for r := DC; r <= NTPPi; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// Converse returns the set of converses.
func (s RCC8Set) Converse() RCC8Set {
	var out RCC8Set
	for _, r := range s.Rels() {
		out |= 1 << r.Converse()
	}
	return out
}

// String renders the set as a | -separated list of mnemonics.
func (s RCC8Set) String() string {
	if s == 0 {
		return "⊥"
	}
	if s == RCC8All {
		return "⊤"
	}
	parts := make([]string, 0, s.Len())
	for _, r := range s.Rels() {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, "|")
}

// ParseRCC8Set parses a | (or comma) separated list of RCC-8 mnemonics,
// case-insensitively; "*" or "⊤" denote the universal relation.
func ParseRCC8Set(str string) (RCC8Set, error) {
	str = strings.TrimSpace(str)
	if str == "*" || str == "⊤" {
		return RCC8All, nil
	}
	var s RCC8Set
	for _, part := range strings.FieldsFunc(str, func(r rune) bool { return r == '|' || r == ',' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		found := false
		for r := DC; r <= NTPPi; r++ {
			if strings.EqualFold(part, r.String()) {
				s |= 1 << r
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("topo: unknown RCC8 relation %q", part)
		}
	}
	if s == 0 {
		return 0, fmt.Errorf("topo: empty RCC8 relation set %q", str)
	}
	return s, nil
}

// rcc8CompTable[r1][r2] is the composition r1 ∘ r2: the possible relations
// between a and c given a r1 b and b r2 c. This is the classic RCC-8
// composition table (Randell, Cui & Cohn); the tests check the converse law
// ((R∘S)˘ = S˘∘R˘), EQ as identity, and soundness against topo.Classify on
// concrete region triples.
var rcc8CompTable = [8][8]RCC8Set{
	DC: {
		DC:    RCC8All,
		EC:    RCC8Of(DC, EC, PO, TPP, NTPP),
		PO:    RCC8Of(DC, EC, PO, TPP, NTPP),
		EQ:    RCC8Of(DC),
		TPP:   RCC8Of(DC, EC, PO, TPP, NTPP),
		NTPP:  RCC8Of(DC, EC, PO, TPP, NTPP),
		TPPi:  RCC8Of(DC),
		NTPPi: RCC8Of(DC),
	},
	EC: {
		DC:    RCC8Of(DC, EC, PO, TPPi, NTPPi),
		EC:    RCC8Of(DC, EC, PO, TPP, TPPi, EQ),
		PO:    RCC8Of(DC, EC, PO, TPP, NTPP),
		EQ:    RCC8Of(EC),
		TPP:   RCC8Of(EC, PO, TPP, NTPP),
		NTPP:  RCC8Of(PO, TPP, NTPP),
		TPPi:  RCC8Of(DC, EC),
		NTPPi: RCC8Of(DC),
	},
	PO: {
		DC:    RCC8Of(DC, EC, PO, TPPi, NTPPi),
		EC:    RCC8Of(DC, EC, PO, TPPi, NTPPi),
		PO:    RCC8All,
		EQ:    RCC8Of(PO),
		TPP:   RCC8Of(PO, TPP, NTPP),
		NTPP:  RCC8Of(PO, TPP, NTPP),
		TPPi:  RCC8Of(DC, EC, PO, TPPi, NTPPi),
		NTPPi: RCC8Of(DC, EC, PO, TPPi, NTPPi),
	},
	EQ: {
		DC:    RCC8Of(DC),
		EC:    RCC8Of(EC),
		PO:    RCC8Of(PO),
		EQ:    RCC8Of(EQ),
		TPP:   RCC8Of(TPP),
		NTPP:  RCC8Of(NTPP),
		TPPi:  RCC8Of(TPPi),
		NTPPi: RCC8Of(NTPPi),
	},
	TPP: {
		DC:    RCC8Of(DC),
		EC:    RCC8Of(DC, EC),
		PO:    RCC8Of(DC, EC, PO, TPP, NTPP),
		EQ:    RCC8Of(TPP),
		TPP:   RCC8Of(TPP, NTPP),
		NTPP:  RCC8Of(NTPP),
		TPPi:  RCC8Of(DC, EC, PO, TPP, TPPi, EQ),
		NTPPi: RCC8Of(DC, EC, PO, TPPi, NTPPi),
	},
	NTPP: {
		DC:    RCC8Of(DC),
		EC:    RCC8Of(DC),
		PO:    RCC8Of(DC, EC, PO, TPP, NTPP),
		EQ:    RCC8Of(NTPP),
		TPP:   RCC8Of(NTPP),
		NTPP:  RCC8Of(NTPP),
		TPPi:  RCC8Of(DC, EC, PO, TPP, NTPP),
		NTPPi: RCC8All,
	},
	TPPi: {
		DC:    RCC8Of(DC, EC, PO, TPPi, NTPPi),
		EC:    RCC8Of(EC, PO, TPPi, NTPPi),
		PO:    RCC8Of(PO, TPPi, NTPPi),
		EQ:    RCC8Of(TPPi),
		TPP:   RCC8Of(PO, TPP, TPPi, EQ),
		NTPP:  RCC8Of(PO, TPP, NTPP),
		TPPi:  RCC8Of(TPPi, NTPPi),
		NTPPi: RCC8Of(NTPPi),
	},
	NTPPi: {
		DC:    RCC8Of(DC, EC, PO, TPPi, NTPPi),
		EC:    RCC8Of(PO, TPPi, NTPPi),
		PO:    RCC8Of(PO, TPPi, NTPPi),
		EQ:    RCC8Of(NTPPi),
		TPP:   RCC8Of(PO, TPPi, NTPPi),
		NTPP:  RCC8Of(PO, TPP, NTPP, TPPi, NTPPi, EQ),
		TPPi:  RCC8Of(NTPPi),
		NTPPi: RCC8Of(NTPPi),
	},
}

// ComposeRCC8 returns r1 ∘ r2 for base relations.
func ComposeRCC8(r1, r2 RCC8) RCC8Set { return rcc8CompTable[r1][r2] }

// ComposeRCC8Sets returns the composition of two general relations: the
// union of base-pair compositions.
func ComposeRCC8Sets(s1, s2 RCC8Set) RCC8Set {
	var out RCC8Set
	for _, r1 := range s1.Rels() {
		for _, r2 := range s2.Rels() {
			out |= rcc8CompTable[r1][r2]
		}
	}
	return out
}

// RCC8Net is a topological constraint network: rel[i][j] is the RCC8Set
// allowed between regions i and j. The diagonal holds EQ; the matrix is
// kept converse-consistent by Set.
type RCC8Net struct {
	n   int
	rel []RCC8Set // n×n, row-major
}

// NewRCC8Net returns the unconstrained network over n regions.
func NewRCC8Net(n int) *RCC8Net {
	a := &RCC8Net{n: n, rel: make([]RCC8Set, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a.rel[i*n+j] = RCC8Of(EQ)
			} else {
				a.rel[i*n+j] = RCC8All
			}
		}
	}
	return a
}

// Len returns the number of regions.
func (a *RCC8Net) Len() int { return a.n }

// Get returns the current relation set between i and j.
func (a *RCC8Net) Get(i, j int) RCC8Set { return a.rel[i*a.n+j] }

// Set restricts the relation between i and j to s (and the converse edge to
// the converse set).
func (a *RCC8Net) Set(i, j int, s RCC8Set) {
	a.rel[i*a.n+j] &= s
	a.rel[j*a.n+i] &= s.Converse()
}

// Propagate runs path consistency to a fixpoint; it returns false when some
// edge becomes empty — the network is then certainly inconsistent. Like the
// directional Refine it is a sound filter, not a complete decision
// procedure for arbitrary RCC8Set networks.
func (a *RCC8Net) Propagate() bool {
	n := a.n
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				rij := a.rel[i*n+j]
				for k := 0; k < n; k++ {
					if k == i || k == j {
						continue
					}
					comp := ComposeRCC8Sets(a.rel[i*n+k], a.rel[k*n+j])
					nij := rij & comp
					if nij != rij {
						rij = nij
						changed = true
					}
					if rij == 0 {
						return false
					}
				}
				a.rel[i*n+j] = rij
				a.rel[j*n+i] = rij.Converse()
			}
		}
	}
	return true
}
