package topo

import "cardirect/internal/geom"

// RCC8 is one of the eight base relations of the Region Connection Calculus
// (equivalently Egenhofer's 9-intersection relations for regions), the
// topological vocabulary of the paper's reference [2].
type RCC8 uint8

// The eight base relations, a RCC8 b.
const (
	DC    RCC8 = iota // disconnected: no shared point
	EC                // externally connected: boundaries touch, interiors disjoint
	PO                // partial overlap
	EQ                // equal
	TPP               // a tangential proper part of b (boundaries touch)
	NTPP              // a non-tangential proper part of b
	TPPi              // b tangential proper part of a
	NTPPi             // b non-tangential proper part of a
)

var rcc8Names = [...]string{"DC", "EC", "PO", "EQ", "TPP", "NTPP", "TPPi", "NTPPi"}

// String returns the relation's RCC-8 mnemonic.
func (r RCC8) String() string {
	if int(r) < len(rcc8Names) {
		return rcc8Names[r]
	}
	return "RCC8(?)"
}

// Converse returns the relation of b with respect to a.
func (r RCC8) Converse() RCC8 {
	switch r {
	case TPP:
		return TPPi
	case NTPP:
		return NTPPi
	case TPPi:
		return TPP
	case NTPPi:
		return NTPP
	default:
		return r // DC, EC, PO, EQ are symmetric
	}
}

// Classify determines the RCC-8 relation between two valid REG* regions
// using the exact overlay area and boundary-contact tests. Area equalities
// are judged with a relative tolerance of relEps (pass 0 for the default
// 1e-9) — unavoidable when areas come from floating-point geometry.
func Classify(a, b geom.Region, relEps float64) RCC8 {
	if relEps <= 0 {
		relEps = 1e-9
	}
	areaA := a.Area()
	areaB := b.Area()
	inter := IntersectionArea(a, b)
	eps := relEps * max2(areaA, areaB)
	touch := BoundariesTouch(a, b)

	switch {
	case inter <= eps:
		if touch {
			return EC
		}
		return DC
	case approx(inter, areaA, eps) && approx(inter, areaB, eps):
		return EQ
	case approx(inter, areaA, eps): // a ⊆ b
		if touch {
			return TPP
		}
		return NTPP
	case approx(inter, areaB, eps): // b ⊆ a
		if touch {
			return TPPi
		}
		return NTPPi
	default:
		return PO
	}
}

func approx(x, y, eps float64) bool {
	d := x - y
	if d < 0 {
		d = -d
	}
	return d <= eps
}
