// Package topo implements the spatial relations the paper's future-work
// list (§5, item 2) proposes combining with cardinal directions:
// topological relations in the style of Egenhofer / RCC-8 (the paper's
// reference [2]) and qualitative distance relations in the style of Frank
// (reference [3]), both for the same REG* regions the direction algorithms
// operate on.
//
// The topological classification rests on an exact region-overlay area
// computed with a vertical-slab decomposition: the plane is cut at every
// vertex x-coordinate of both regions and at every proper edge-crossing
// x-coordinate, so inside one slab every boundary is a non-crossing linear
// function of x and each region's material is a stack of trapezoids;
// pairwise trapezoid intersection integrates exactly.
package topo

import (
	"sort"

	"cardirect/internal/geom"
)

// IntersectionArea returns the exact area of a ∩ b for two REG* regions
// (sets of simple polygons with disjoint interiors, as validated by
// geom.Region.Validate).
func IntersectionArea(a, b geom.Region) float64 {
	if !a.BoundingBox().Intersects(b.BoundingBox()) {
		return 0
	}
	xs := cutXs(a, b)
	var area float64
	for i := 0; i+1 < len(xs); i++ {
		x1, x2 := xs[i], xs[i+1]
		if x2 <= x1 {
			continue
		}
		sa := slabIntervals(a, x1, x2)
		sb := slabIntervals(b, x1, x2)
		if len(sa) == 0 || len(sb) == 0 {
			continue
		}
		w := x2 - x1
		for _, ia := range sa {
			for _, ib := range sb {
				// Overlap is linear in x within the slab; evaluate at both
				// ends and clamp (a crossing exactly on a slab boundary can
				// give a vanishing endpoint).
				o1 := min2(ia.hi1, ib.hi1) - max2(ia.lo1, ib.lo1)
				o2 := min2(ia.hi2, ib.hi2) - max2(ia.lo2, ib.lo2)
				if o1 < 0 {
					o1 = 0
				}
				if o2 < 0 {
					o2 = 0
				}
				if o1 > 0 || o2 > 0 {
					area += (o1 + o2) / 2 * w
				}
			}
		}
	}
	return area
}

// interval is one material band of a region within a slab: lo/hi at the
// slab's left (1) and right (2) boundaries; all four vary linearly between.
type interval struct {
	lo1, hi1, lo2, hi2 float64
}

// cutXs returns the sorted distinct slab boundaries: every vertex x of both
// regions plus every proper edge-crossing x between them.
func cutXs(a, b geom.Region) []float64 {
	var xs []float64
	for _, r := range []geom.Region{a, b} {
		for _, p := range r {
			for _, v := range p {
				xs = append(xs, v.X)
			}
		}
	}
	// Proper crossings between the two regions' boundaries.
	for _, pa := range a {
		for i := 0; i < pa.NumEdges(); i++ {
			ea := pa.Edge(i)
			for _, pb := range b {
				for j := 0; j < pb.NumEdges(); j++ {
					eb := pb.Edge(j)
					if x, ok := crossingX(ea, eb); ok {
						xs = append(xs, x)
					}
				}
			}
		}
	}
	sort.Float64s(xs)
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// crossingX returns the x-coordinate where the interiors of two segments
// properly cross, when they do.
func crossingX(s, u geom.Segment) (float64, bool) {
	r := s.B.Sub(s.A)
	d := u.B.Sub(u.A)
	denom := r.Cross(d)
	if denom == 0 {
		return 0, false // parallel or collinear: no transversal crossing
	}
	t := u.A.Sub(s.A).Cross(d) / denom
	w := u.A.Sub(s.A).Cross(r) / denom
	if t <= 0 || t >= 1 || w <= 0 || w >= 1 {
		return 0, false
	}
	return s.A.X + t*r.X, true
}

// slabIntervals returns the region's material bands within the slab
// [x1, x2], computed by the even–odd rule on the edges spanning the slab.
func slabIntervals(r geom.Region, x1, x2 float64) []interval {
	type crossing struct {
		y1, y2, ym float64
	}
	var cs []crossing
	for _, p := range r {
		for i := 0; i < p.NumEdges(); i++ {
			e := p.Edge(i)
			lo, hi := minmax2(e.A.X, e.B.X)
			if lo > x1 || hi < x2 || e.A.X == e.B.X {
				continue
			}
			t1 := (x1 - e.A.X) / (e.B.X - e.A.X)
			t2 := (x2 - e.A.X) / (e.B.X - e.A.X)
			y1 := e.A.Y + t1*(e.B.Y-e.A.Y)
			y2 := e.A.Y + t2*(e.B.Y-e.A.Y)
			cs = append(cs, crossing{y1: y1, y2: y2, ym: (y1 + y2) / 2})
		}
	}
	if len(cs) < 2 {
		return nil
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].ym < cs[j].ym })
	out := make([]interval, 0, len(cs)/2)
	for k := 0; k+1 < len(cs); k += 2 {
		out = append(out, interval{
			lo1: cs[k].y1, hi1: cs[k+1].y1,
			lo2: cs[k].y2, hi2: cs[k+1].y2,
		})
	}
	return out
}

// BoundariesTouch reports whether the boundaries of a and b share at least
// one point (including crossings and tangencies).
func BoundariesTouch(a, b geom.Region) bool {
	if !a.BoundingBox().Intersects(b.BoundingBox()) {
		return false
	}
	for _, pa := range a {
		for i := 0; i < pa.NumEdges(); i++ {
			ea := pa.Edge(i)
			for _, pb := range b {
				if !pa.BoundingBox().Intersects(pb.BoundingBox()) {
					continue
				}
				for j := 0; j < pb.NumEdges(); j++ {
					if geom.SegmentsIntersect(ea, pb.Edge(j)) {
						return true
					}
				}
			}
		}
	}
	return false
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minmax2(a, b float64) (float64, float64) {
	if a < b {
		return a, b
	}
	return b, a
}
