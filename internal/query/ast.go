package query

import (
	"fmt"
	"strings"

	"cardirect/internal/core"
)

// Query is a parsed conjunctive query: head variables and a conjunction of
// conditions over them.
type Query struct {
	Vars  []string
	Conds []Cond
}

// Cond is one conjunct of a query condition.
type Cond interface {
	fmt.Stringer
	// vars returns the variables the condition mentions.
	vars() []string
}

// BindCond pins a variable to a specific region id: x = attica.
type BindCond struct {
	Var      string
	RegionID string
}

func (c BindCond) String() string { return fmt.Sprintf("%s = %s", c.Var, c.RegionID) }
func (c BindCond) vars() []string { return []string{c.Var} }

// AttrCond filters on a thematic attribute: color(x) = red, or with Negated
// set, color(x) != red (an extension beyond the paper's positive-conjunctive
// language).
type AttrCond struct {
	Attr    string
	Var     string
	Value   string
	Negated bool
}

func (c AttrCond) String() string {
	op := "="
	if c.Negated {
		op = "!="
	}
	return fmt.Sprintf("%s(%s) %s %s", c.Attr, c.Var, op, c.Value)
}
func (c AttrCond) vars() []string { return []string{c.Var} }

// RelCond constrains the cardinal direction relation between two variables:
// x R y with R a possibly disjunctive relation; with Negated set the
// condition reads "not x R y" — the relation between the bindings is not a
// member of R (extension).
type RelCond struct {
	Left    string
	Rels    core.RelationSet
	Right   string
	Negated bool
}

func (c RelCond) String() string {
	if c.Negated {
		return fmt.Sprintf("not %s %v %s", c.Left, c.Rels, c.Right)
	}
	return fmt.Sprintf("%s %v %s", c.Left, c.Rels, c.Right)
}
func (c RelCond) vars() []string { return []string{c.Left, c.Right} }

// String renders the query back in concrete syntax.
func (q *Query) String() string {
	parts := make([]string, len(q.Conds))
	for i, c := range q.Conds {
		parts[i] = c.String()
	}
	return fmt.Sprintf("q(%s) :- %s", strings.Join(q.Vars, ", "), strings.Join(parts, ", "))
}

// PctCond is a quantitative condition over the cardinal direction matrix
// with percentages (the paper's §2 extension surfaced in the query
// language, beyond the paper's own grammar):
//
//	pct(x NE y) >= 50
//
// holds when at least half of x's area lies in the NE tile of y.
type PctCond struct {
	Left  string
	Tile  core.Tile
	Right string
	Op    string // ">=", "<=", ">", "<" or "="
	Value float64
}

func (c PctCond) String() string {
	return fmt.Sprintf("pct(%s %v %s) %s %g", c.Left, c.Tile, c.Right, c.Op, c.Value)
}
func (c PctCond) vars() []string { return []string{c.Left, c.Right} }
