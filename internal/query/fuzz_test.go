package query

import "testing"

// FuzzParse checks the query parser never panics, and that every accepted
// query roundtrips through its String rendering.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"q(x) :- x = attica",
		"q(a, b) :- color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b",
		"q(x, y) :- x {N, NW:N} y",
		"q(x, y) :- not x S y",
		"q(x) :- color(x) != red",
		"q(x, y) :- pct(x NE y) >= 50",
		"q(x, y) :- pct(x B y) = 100, x {N} y",
		"q(x, y) :- pct(x NE:E y) >= 50",
		"q() :-",
		"q(x :- x = a",
		"q(x) :- x $ y",
		"q(x,y) :- x S:S y",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", q.String(), s, err)
		}
		if q2.String() != q.String() {
			t.Fatalf("String not a fixpoint: %q vs %q", q.String(), q2.String())
		}
	})
}
