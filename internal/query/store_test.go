package query

import (
	"reflect"
	"testing"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// storeQueries is a mix of qualitative, quantitative and attribute queries
// exercising both Relation and Percent lookups.
var storeQueries = []string{
	"q(x, y) :- x {N, N:NE, NE, NW, N:NW} y",
	"q(x, y) :- x S y, color(x) = red",
	"q(x, y) :- pct(x B y) > 0",
	"q(x, y, z) :- x {W, W:NW, SW} y, y {S, S:SW, S:SE} z",
	"q(x, y) :- y = peloponnesos, x {N, NE, E} y",
}

// TestEvalWithStoreEquivalence: wiring a RelationStore into the evaluator
// must not change any query answer — it only changes where cached relations
// come from.
func TestEvalWithStoreEquivalence(t *testing.T) {
	img := config.Greece()
	store, err := trackStore(t, img)
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range storeQueries {
		plain, err := NewEvaluator(img)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.EvalString(qs)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		backed, err := NewEvaluator(img)
		if err != nil {
			t.Fatal(err)
		}
		backed.UseStore(store)
		got, err := backed.EvalString(qs)
		if err != nil {
			t.Fatalf("%s (store): %v", qs, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: store-backed answers differ\n got %v\nwant %v", qs, got, want)
		}
	}
}

// trackStore builds a Pct relation store over the image's regions.
func trackStore(t *testing.T, img *config.Image) (*core.RelationStore, error) {
	t.Helper()
	regions := make([]core.NamedRegion, len(img.Regions))
	for i := range img.Regions {
		regions[i] = core.NamedRegion{Name: img.Regions[i].ID, Region: img.Regions[i].Geometry()}
	}
	return core.NewRelationStore(regions, core.StoreOptions{Pct: true})
}

// TestEvalStoreSeesEdits: a store kept fresh by config.Track serves edited
// relations to a new evaluator without any recompute-by-query, and without
// consulting stale materialised Relation elements.
func TestEvalStoreSeesEdits(t *testing.T) {
	img := config.Greece()
	tr, err := config.Track(img, core.StoreOptions{Workers: 1, Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Materialise, then move attica far north-west: the document's Relation
	// list for other pairs is now stale-but-present, the store is fresh.
	if err := img.ComputeRelations(false); err != nil {
		t.Fatal(err)
	}
	g := img.FindRegion("attica").Geometry()
	moved := g.Translate(geom.Pt(-30, 30))
	if err := img.SetRegionGeometry("attica", moved); err != nil {
		t.Fatal(err)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}

	ev, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	ev.UseStore(tr.Store())
	rel, err := ev.Relation("attica", "peloponnesos")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ComputeCDR(moved, img.FindRegion("peloponnesos").Geometry())
	if err != nil {
		t.Fatal(err)
	}
	if rel != want {
		t.Errorf("store-backed relation = %v, want fresh %v", rel, want)
	}

	// The percent path serves from the store too.
	m, err := ev.Percent("attica", "peloponnesos")
	if err != nil {
		t.Fatal(err)
	}
	wantM, _, err := core.ComputeCDRPct(moved, img.FindRegion("peloponnesos").Geometry())
	if err != nil {
		t.Fatal(err)
	}
	if !m.ApproxEqual(wantM, 1e-9) {
		t.Error("store-backed percent matrix diverged from fresh computation")
	}
}

// TestEvalStorePartialCoverage: pairs outside the store fall back to the
// evaluator's own lazy computation.
func TestEvalStorePartialCoverage(t *testing.T) {
	img := config.Greece()
	// A store over a subset of the regions only.
	sub := []core.NamedRegion{
		{Name: "attica", Region: img.FindRegion("attica").Geometry()},
		{Name: "crete", Region: img.FindRegion("crete").Geometry()},
	}
	store, err := core.NewRelationStore(sub, core.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	ev.UseStore(store)
	// In-store pair.
	if _, err := ev.Relation("attica", "crete"); err != nil {
		t.Fatal(err)
	}
	// Out-of-store pair falls back to computation.
	rel, err := ev.Relation("macedonia", "crete")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ComputeCDR(img.FindRegion("macedonia").Geometry(), img.FindRegion("crete").Geometry())
	if err != nil {
		t.Fatal(err)
	}
	if rel != want {
		t.Errorf("fallback relation = %v, want %v", rel, want)
	}
	// Percent on a qualitative-only store falls back too.
	if _, err := ev.Percent("attica", "crete"); err != nil {
		t.Fatal(err)
	}
}
