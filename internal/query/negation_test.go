package query

import (
	"testing"

	"cardirect/internal/config"
)

func TestParseNegatedRelation(t *testing.T) {
	q, err := Parse("q(x, y) :- not x S y, color(x) = red")
	if err != nil {
		t.Fatal(err)
	}
	rc, ok := q.Conds[0].(RelCond)
	if !ok || !rc.Negated {
		t.Fatalf("cond = %#v", q.Conds[0])
	}
	if rc.Left != "x" || rc.Right != "y" {
		t.Errorf("vars = %s, %s", rc.Left, rc.Right)
	}
	// Roundtrip.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("roundtrip %q vs %q", q2.String(), q.String())
	}
}

func TestParseAttrNotEquals(t *testing.T) {
	q, err := Parse("q(x) :- color(x) != red")
	if err != nil {
		t.Fatal(err)
	}
	ac, ok := q.Conds[0].(AttrCond)
	if !ok || !ac.Negated {
		t.Fatalf("cond = %#v", q.Conds[0])
	}
	if q.String() != "q(x) :- color(x) != red" {
		t.Errorf("String = %q", q.String())
	}
}

func TestParseNegationErrors(t *testing.T) {
	bad := []string{
		"q(x, y) :- not x y",      // missing relation
		"q(x, y) :- not S y",      // "not" must be followed by a variable then a relation
		"q(x) :- color(x) !! red", // bad operator
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestEvalNegatedAttr(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalString("q(x) :- color(x) != blue, color(x) != red")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["x"] != "macedonia" {
		t.Errorf("non-blue non-red = %v, want just macedonia", got)
	}
}

func TestEvalNegatedRelation(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	// Red regions that do NOT surround pylos: everything red except
	// peloponnesos.
	got, err := e.EvalString(
		"q(x, y) :- color(x) = red, y = pylos, not x S:SW:W:NW:N:NE:E:SE y")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b["x"] == "peloponnesos" {
			t.Errorf("peloponnesos surrounds pylos and must be excluded: %v", got)
		}
	}
	if len(got) != 3 { // beotia, crete, sicily
		t.Errorf("answers = %v, want 3 red non-surrounders", got)
	}
	// Negation with identical bindings: a region is B of itself, so
	// "not x B y" with x = y = attica is empty…
	none, err := e.EvalString("q(x, y) :- x = attica, y = attica, not x B y")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("not x B x should fail for x=y: %v", none)
	}
	// …and "not x N y" holds.
	some, err := e.EvalString("q(x, y) :- x = attica, y = attica, not x N y")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 1 {
		t.Errorf("not x N x should hold for x=y: %v", some)
	}
}
