package query

import (
	"context"
	"errors"
	"testing"

	"cardirect/internal/config"
)

// TestEvalCtxCancelled: a cancelled context aborts the join before binding
// enumeration and surfaces context.Canceled; the ctx-free Eval stays live.
func TestEvalCtxCancelled(t *testing.T) {
	ev, err := NewEvaluator(config.Greece())
	if err != nil {
		t.Fatal(err)
	}
	const q = "q(x, y) :- x N:NE y"
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ev.EvalStringCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvalStringCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	// Sanity: the same query evaluates fine without cancellation, and
	// EvalCtx with a live context matches Eval.
	want, err := ev.EvalString(q)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.EvalCtx(context.Background(), parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("EvalCtx = %d bindings, Eval = %d", len(got), len(want))
	}
	for i := range got {
		for v, id := range got[i] {
			if want[i][v] != id {
				t.Fatalf("binding %d: %s = %s, want %s", i, v, id, want[i][v])
			}
		}
	}
}
