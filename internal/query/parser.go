package query

import (
	"fmt"
	"strconv"
	"strings"

	"cardirect/internal/core"
)

// Parse parses a query in the concrete syntax
//
//	q(x, y) :- color(x) = red, x S:SW y, y = attica
//
// and checks it: head variables must be distinct, every condition may only
// mention head variables, and relation conditions must use valid (possibly
// disjunctive) cardinal direction relations.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.check(); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("query: expected %v at offset %d, found %s", k, t.pos, describe(t))
	}
	return t, nil
}

// expectValue accepts the right-hand side of a binding or attribute
// condition: a plain identifier, or a $-parameter to be bound at execution
// time (see Evaluator.Prepare).
func (p *parser) expectValue() (token, error) {
	t := p.next()
	if t.kind != tokIdent && t.kind != tokParam {
		return t, fmt.Errorf("query: expected identifier or parameter at offset %d, found %s", t.pos, describe(t))
	}
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	// Head: name "(" var ("," var)* ")".
	if _, err := p.expect(tokIdent); err != nil {
		return nil, fmt.Errorf("query: missing query name: %w", err)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		q.Vars = append(q.Vars, v.text)
		t := p.next()
		if t.kind == tokRParen {
			break
		}
		if t.kind != tokComma {
			return nil, fmt.Errorf("query: expected ',' or ')' in head at offset %d, found %s", t.pos, describe(t))
		}
	}
	if _, err := p.expect(tokTurnstile); err != nil {
		return nil, err
	}
	// Conditions.
	for {
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		q.Conds = append(q.Conds, c)
		t := p.next()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokComma {
			return nil, fmt.Errorf("query: expected ',' between conditions at offset %d, found %s", t.pos, describe(t))
		}
	}
	return q, nil
}

func (p *parser) parseCond() (Cond, error) {
	first, err := p.expect(tokIdent)
	if err != nil {
		return nil, fmt.Errorf("query: missing condition: %w", err)
	}
	// Quantitative condition: pct "(" var tile var ")" cmp number.
	// "pct" is reserved in condition-leading position when followed by "(".
	if first.text == "pct" && p.peek().kind == tokLParen {
		return p.parsePctCond()
	}
	// Negated relation condition: "not" var relation var. "not" is a
	// reserved word in condition-leading position.
	if first.text == "not" && p.peek().kind == tokIdent {
		left, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		rels, err := p.parseRelationSet()
		if err != nil {
			return nil, err
		}
		right, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return RelCond{Left: left.text, Rels: rels, Right: right.text, Negated: true}, nil
	}
	switch p.peek().kind {
	case tokLParen:
		// Attribute condition: attr "(" var ")" ("=" | "!=") value.
		p.next()
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		neg := false
		switch op := p.next(); op.kind {
		case tokEquals:
		case tokNotEquals:
			neg = true
		default:
			return nil, fmt.Errorf("query: expected '=' or '!=' at offset %d, found %s", op.pos, describe(op))
		}
		val, err := p.expectValue()
		if err != nil {
			return nil, err
		}
		return AttrCond{Attr: first.text, Var: v.text, Value: val.text, Negated: neg}, nil
	case tokEquals:
		// Binding: var "=" (regionID | $param).
		p.next()
		val, err := p.expectValue()
		if err != nil {
			return nil, err
		}
		return BindCond{Var: first.text, RegionID: val.text}, nil
	case tokIdent, tokLBrace:
		// Relation condition: var relation var.
		rels, err := p.parseRelationSet()
		if err != nil {
			return nil, err
		}
		right, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return RelCond{Left: first.text, Rels: rels, Right: right.text}, nil
	default:
		t := p.peek()
		return nil, fmt.Errorf("query: cannot parse condition at offset %d near %s", t.pos, describe(t))
	}
}

// parsePctCond parses the tail of pct "(" var tile var ")" cmp number.
func (p *parser) parsePctCond() (Cond, error) {
	p.next() // consume "("
	left, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	tileTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	rel, err := core.ParseRelation(tileTok.text)
	if err != nil || !rel.SingleTile() {
		return nil, fmt.Errorf("query: pct needs a single tile at offset %d, got %q", tileTok.pos, tileTok.text)
	}
	right, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	opTok := p.next()
	var op string
	switch opTok.kind {
	case tokCmp:
		op = opTok.text
	case tokEquals:
		op = "="
	default:
		return nil, fmt.Errorf("query: expected a comparison after pct(…) at offset %d, found %s", opTok.pos, describe(opTok))
	}
	numTok, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseFloat(numTok.text, 64)
	if err != nil {
		return nil, fmt.Errorf("query: bad percentage %q: %w", numTok.text, err)
	}
	if v < 0 || v > 100 {
		return nil, fmt.Errorf("query: percentage %g out of [0, 100]", v)
	}
	return PctCond{Left: left.text, Tile: rel.Tiles()[0], Right: right.text, Op: op, Value: v}, nil
}

// parseRelationSet parses either a single relation "B:S:SW" or a disjunction
// "{N, NW:N}".
func (p *parser) parseRelationSet() (core.RelationSet, error) {
	if p.peek().kind == tokLBrace {
		p.next()
		var set core.RelationSet
		for {
			r, err := p.parseRelation()
			if err != nil {
				return set, err
			}
			set.Add(r)
			t := p.next()
			if t.kind == tokRBrace {
				return set, nil
			}
			if t.kind != tokComma {
				return set, fmt.Errorf("query: expected ',' or '}' in relation set at offset %d, found %s", t.pos, describe(t))
			}
		}
	}
	r, err := p.parseRelation()
	if err != nil {
		return core.RelationSet{}, err
	}
	return core.NewRelationSet(r), nil
}

// parseRelation parses tile (":" tile)*.
func (p *parser) parseRelation() (core.Relation, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return 0, err
	}
	parts := []string{t.text}
	for p.peek().kind == tokColon {
		p.next()
		t, err := p.expect(tokIdent)
		if err != nil {
			return 0, err
		}
		parts = append(parts, t.text)
	}
	r, err := core.ParseRelation(strings.Join(parts, ":"))
	if err != nil {
		return 0, fmt.Errorf("query: %w", err)
	}
	return r, nil
}

// check performs the semantic validation of a parsed query.
func (q *Query) check() error {
	if len(q.Vars) == 0 {
		return fmt.Errorf("query: head has no variables")
	}
	seen := map[string]bool{}
	for _, v := range q.Vars {
		if seen[v] {
			return fmt.Errorf("query: duplicate head variable %q", v)
		}
		seen[v] = true
	}
	if len(q.Conds) == 0 {
		return fmt.Errorf("query: no conditions")
	}
	for _, c := range q.Conds {
		for _, v := range c.vars() {
			if !seen[v] {
				return fmt.Errorf("query: condition %v uses unknown variable %q", c, v)
			}
		}
		switch cc := c.(type) {
		case RelCond:
			if cc.Left == cc.Right {
				return fmt.Errorf("query: relation condition %v relates a variable to itself", c)
			}
			if cc.Rels.IsEmpty() {
				return fmt.Errorf("query: relation condition %v has no relations", c)
			}
		case PctCond:
			if cc.Left == cc.Right {
				return fmt.Errorf("query: pct condition %v relates a variable to itself", c)
			}
		}
	}
	return nil
}
