package query

import (
	"testing"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
)

func TestParsePctCond(t *testing.T) {
	q, err := Parse("q(x, y) :- pct(x NE y) >= 50")
	if err != nil {
		t.Fatal(err)
	}
	pc, ok := q.Conds[0].(PctCond)
	if !ok {
		t.Fatalf("cond = %#v", q.Conds[0])
	}
	if pc.Tile != core.TileNE || pc.Op != ">=" || pc.Value != 50 {
		t.Errorf("parsed = %+v", pc)
	}
	// Roundtrip through String.
	q2, err := Parse(q.String())
	if err != nil || q2.String() != q.String() {
		t.Errorf("roundtrip %q: %v", q.String(), err)
	}
	// All operators parse.
	for _, op := range []string{">=", "<=", ">", "<", "="} {
		if _, err := Parse("q(x, y) :- pct(x B y) " + op + " 25.5"); err != nil {
			t.Errorf("op %q: %v", op, err)
		}
	}
}

func TestParsePctErrors(t *testing.T) {
	bad := []string{
		"q(x, y) :- pct(x NE:E y) >= 50", // multi-tile
		"q(x, y) :- pct(x Z y) >= 50",    // bad tile
		"q(x, y) :- pct(x NE y) >= 150",  // out of range
		"q(x, y) :- pct(x NE y) >= cat",  // non-number
		"q(x, y) :- pct(x NE y) 50",      // missing comparison
		"q(x) :- pct(x NE x) >= 50",      // self pair
		"q(x, y) :- pct(x NE) >= 50",     // missing var
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// pctImage builds a configuration where region "half" is exactly 50% NE and
// 50% E of "ref" (the paper's Fig. 1c shape).
func pctImage() *config.Image {
	img := &config.Image{Name: "pct"}
	ref := config.Region{ID: "ref", Color: "grey"}
	ref.SetGeometry(geom.Rgn(geom.Poly(
		geom.Pt(0, 6), geom.Pt(10, 6), geom.Pt(10, 0), geom.Pt(0, 0),
	)))
	half := config.Region{ID: "half", Color: "blue"}
	half.SetGeometry(geom.Rgn(geom.Poly(
		geom.Pt(12, 10), geom.Pt(14, 10), geom.Pt(14, 2), geom.Pt(12, 2),
	)))
	north := config.Region{ID: "north", Color: "blue"}
	north.SetGeometry(geom.Rgn(geom.Poly(
		geom.Pt(2, 9), geom.Pt(8, 9), geom.Pt(8, 7), geom.Pt(2, 7),
	)))
	img.Regions = append(img.Regions, ref, half, north)
	return img
}

func TestEvalPctConditions(t *testing.T) {
	e, err := NewEvaluator(pctImage())
	if err != nil {
		t.Fatal(err)
	}
	// Exactly 50% NE.
	got, err := e.EvalString("q(x, y) :- y = ref, pct(x NE y) = 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["x"] != "half" {
		t.Errorf("= 50: %v", got)
	}
	// ≥ 50 NE also matches only "half" ("north" has 100% N, 0% NE).
	got, err = e.EvalString("q(x, y) :- y = ref, pct(x NE y) >= 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["x"] != "half" {
		t.Errorf(">= 50: %v", got)
	}
	// > 50 matches nothing.
	got, err = e.EvalString("q(x, y) :- y = ref, pct(x NE y) > 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("> 50: %v", got)
	}
	// 100% N picks "north".
	got, err = e.EvalString("q(x, y) :- y = ref, pct(x N y) = 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["x"] != "north" {
		t.Errorf("N = 100: %v", got)
	}
	// < 1 in SW matches everything except ref itself (which is 100% B;
	// its SW share is 0) — and ref too, then. All three regions qualify.
	got, err = e.EvalString("q(x, y) :- y = ref, pct(x SW y) < 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("SW < 1: %v", got)
	}
	// Self pair: 100% B of itself.
	got, err = e.EvalString("q(x, y) :- x = ref, y = ref, pct(x B y) = 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("self B: %v", got)
	}
}

func TestEvalPctWithDirectionCondition(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 12 quantitative statement: Attica is mostly NE+E of the
	// Peloponnesos — its NE share alone is below 50 but above 30.
	got, err := e.EvalString(
		"q(x, y) :- x = attica, y = peloponnesos, x B:N:NE:E y, pct(x NE y) >= 30, pct(x NE y) < 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("combined qualitative+quantitative query: %v", got)
	}
}
