package query

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// planWorld is one differential-test configuration: an image, and (for the
// tracked flavours) the maintained store and live index behind it.
type planWorld struct {
	name string
	img  *config.Image
	tr   *config.Tracked
}

// buildPlanWorlds returns the three worlds the planner is differentially
// tested on: a scattered and a clustered synthetic configuration (tracked,
// so the planner's store probes and pushdown run against real maintained
// state) and the Greece fixture (untracked — the lazy-compute path).
func buildPlanWorlds(t *testing.T) []planWorld {
	t.Helper()
	g := workload.New(7)
	worlds := []planWorld{}
	for _, w := range []struct {
		name  string
		geoms []geom.Region
	}{
		{"scatter", g.Scatter(120, 8)},
		{"cluster", g.Cluster(120, 15, 8)},
	} {
		img := &config.Image{Name: w.name}
		for i, r := range w.geoms {
			id := fmt.Sprintf("w%04d", i)
			if err := img.AddRegion(id, id, fmt.Sprintf("c%d", i%5), r); err != nil {
				t.Fatal(err)
			}
		}
		tr, err := config.Track(img, core.StoreOptions{Workers: 1, Pct: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		worlds = append(worlds, planWorld{name: w.name, img: img, tr: tr})
	}
	worlds = append(worlds, planWorld{name: "greece", img: config.Greece()})
	return worlds
}

func (w planWorld) evaluator(t *testing.T, planner bool) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(w.img)
	if err != nil {
		t.Fatal(err)
	}
	if w.tr != nil {
		ev.UseStore(w.tr.Store())
		ev.UseIndex(w.tr.Index())
	}
	ev.SetPlanner(planner)
	return ev
}

// planDifferentialQueries covers every planner code path: pinned-reference
// pushdown (the old pre-filter case), pinned-primary pushdown (new),
// negated conditions, disjunctive relation sets, attribute and percentage
// conditions, self-referencing conditions, and multi-variable joins. %s is
// a region id of the world under test.
var planDifferentialQueries = []string{
	"q(x, y) :- x {N, N:NE, NE} y",
	"q(x, y) :- y = %s, x {N, N:NE, NE, E} y",
	"q(x, y) :- x = %s, x {S, S:SW, SW} y",
	"q(x, y) :- y = %s, not x {N, NE, E, SE, S} y",
	"q(x, y) :- x = %s, not x {N, NE, E} y",
	"q(x, y) :- y = %s, pct(x N y) >= 10",
	"q(x, y) :- y = %s, x {S, S:SW, SW, W} y, color(x) = c1",
	"q(x, y) :- x {B} y",
	"q(x) :- x B x",
	"q(x, y, z) :- pct(x SW y) >= 20, z {N, N:NE, NE} x, z {S, S:SW, SW} y, z = %s",
	"q(x, y, z) :- z = %s, x {N, N:NE, NE, NW, N:NW} z, y {S, S:SW, SW} z",
	"q(x, y) :- pct(x NE y) > 0, pct(x NE y) < 100",
}

// TestPlannerDifferential: for every world and query shape, the cost-based
// planner must produce bit-identical bindings to written-order evaluation.
// The planner is a pure optimisation — any divergence is a bug, not a
// different answer.
func TestPlannerDifferential(t *testing.T) {
	for _, w := range buildPlanWorlds(t) {
		t.Run(w.name, func(t *testing.T) {
			pin := w.img.Regions[len(w.img.Regions)/2].ID
			for _, tmpl := range planDifferentialQueries {
				qs := tmpl
				if len(qs) > 0 && containsVerb(qs) {
					qs = fmt.Sprintf(tmpl, pin)
				}
				want, werr := w.evaluator(t, false).EvalString(qs)
				got, gerr := w.evaluator(t, true).EvalString(qs)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s: error divergence: written=%v planner=%v", qs, werr, gerr)
				}
				if werr != nil {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: planner diverged: %d bindings vs %d", qs, len(got), len(want))
				}
			}
		})
	}
}

func containsVerb(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '%' && s[i+1] == 's' {
			return true
		}
	}
	return false
}

// TestPlannerOrdersAndPushes pins down the planner's observable decisions on
// the adversarial shape: the bound variable is moved to the front of the
// join order and both pinned-primary relation conditions are pushed into
// the candidate sets before the join.
func TestPlannerOrdersAndPushes(t *testing.T) {
	w := buildPlanWorlds(t)[0] // scatter, tracked
	pin := w.img.Regions[len(w.img.Regions)/2].ID
	ev := w.evaluator(t, true)
	qs := fmt.Sprintf("q(x, y, z) :- pct(x SW y) >= 20, z {N, N:NE, NE} x, z {S, S:SW, SW} y, z = %s", pin)
	res, err := ev.Run(nil, qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("planner on but Result.Plan is nil")
	}
	if len(res.Plan.Order) != 3 || res.Plan.Order[0] != "z" {
		t.Errorf("join order = %v, want z first", res.Plan.Order)
	}
	if len(res.Plan.Pushed) != 2 {
		t.Errorf("pushed = %v, want both relation conditions", res.Plan.Pushed)
	}
	if n := res.Plan.Candidates["z"]; n != 1 {
		t.Errorf("candidates[z] = %d, want 1", n)
	}
	if nx, total := res.Plan.Candidates["x"], len(w.img.Regions); nx == 0 || nx >= total {
		t.Errorf("candidates[x] = %d, want pruned below %d but nonzero", nx, total)
	}
}

// TestPlanCacheLifecycle drives the serve-layer usage pattern: one shared
// PlanCache across request-scoped evaluators, with a region edit between
// requests. The second identical request must hit; the post-edit request
// must replan (never serve the stale plan) and still answer correctly.
func TestPlanCacheLifecycle(t *testing.T) {
	w := buildPlanWorlds(t)[0]
	// Regions[10] sits near the world's north-east corner, so the populated
	// directions from it are south-westerly.
	pin := w.img.Regions[10].ID
	qs := fmt.Sprintf("q(x, y) :- y = %s, x {SW, SW:W, S, S:SE, SE, W} y", pin)
	cache := NewPlanCache(8)

	run := func() *Result {
		t.Helper()
		ev := w.evaluator(t, true)
		ev.SetPlanCache(cache)
		res, err := ev.Run(nil, qs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	if first.Cache != "miss" {
		t.Errorf("first run cache = %q, want miss", first.Cache)
	}
	if len(first.Bindings) == 0 {
		t.Fatal("pre-edit query is empty — the staleness checks below would be vacuous")
	}
	second := run()
	if second.Cache != "hit" {
		t.Errorf("second run cache = %q, want hit", second.Cache)
	}
	// Whitespace-insensitive keying: same query, different layout.
	ev := w.evaluator(t, true)
	ev.SetPlanCache(cache)
	res, err := ev.Run(nil, "q(x,   y) :-\n\ty = "+pin+", x {SW, SW:W, S, S:SE, SE, W} y", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "hit" {
		t.Errorf("reformatted query cache = %q, want hit", res.Cache)
	}
	if !reflect.DeepEqual(second.Bindings, first.Bindings) {
		t.Error("cached execution diverged from the cold one")
	}

	// Move the pinned region to the far south-west: the store generation
	// bumps, the cached plan goes stale, the next run must replan against
	// fresh state — and the answer itself flips (nothing is south-west of
	// the new south-westernmost region).
	genBefore := w.tr.Store().Generation()
	moved := w.img.FindRegion(pin).Geometry().Translate(geom.Pt(-500, -500))
	if err := w.tr.SetRegionGeometry(pin, moved); err != nil {
		t.Fatal(err)
	}
	if gen := w.tr.Store().Generation(); gen == genBefore {
		t.Fatal("edit did not bump the store generation")
	}
	third := run()
	if third.Cache != "replan" {
		t.Errorf("post-edit cache = %q, want replan", third.Cache)
	}
	if third.Generation == first.Generation {
		t.Error("post-edit result reports the pre-edit generation")
	}
	// The replanned answer must match written-order evaluation of the fresh
	// state — and, with the pinned region moved 500 units away, differ from
	// the pre-edit answer.
	fresh, err := w.evaluator(t, false).EvalString(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(third.Bindings, fresh) {
		t.Error("replanned bindings diverged from fresh written-order evaluation")
	}
	if reflect.DeepEqual(third.Bindings, first.Bindings) {
		t.Error("post-edit bindings identical to pre-edit — stale plan state served?")
	}
	fourth := run()
	if fourth.Cache != "hit" {
		t.Errorf("post-replan cache = %q, want hit", fourth.Cache)
	}
	st := cache.Stats()
	if st.Misses < 1 || st.Hits < 3 || st.Replans < 1 {
		t.Errorf("cache stats = %+v, want ≥1 miss, ≥3 hits, ≥1 replan", st)
	}
}

// TestPlanCacheLRU: the cache holds at most its capacity, evicting the
// least recently used plan.
func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	for i := 0; i < 4; i++ {
		c.put(&cacheEntry{key: fmt.Sprintf("k%d", i)})
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, _, ok := c.get("k0", 0); ok {
		t.Error("k0 should have been evicted")
	}
	if _, _, ok := c.get("k3", 0); !ok {
		t.Error("k3 should be resident")
	}
}

// TestPreparedQuery: parse-once/plan-once execution with $-parameters, and
// replanning when the store generation moves between executions.
func TestPreparedQuery(t *testing.T) {
	w := buildPlanWorlds(t)[0]
	ev := w.evaluator(t, true)
	p, err := ev.Prepare("q(x, y) :- y = $ref, x {N, N:NE, NE, E} y, color(x) = $c")
	if err != nil {
		t.Fatal(err)
	}
	pin := w.img.Regions[10].ID
	got, err := p.Eval(map[string]string{"ref": pin, "c": "c1"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.evaluator(t, false).EvalString(
		fmt.Sprintf("q(x, y) :- y = %s, x {N, N:NE, NE, E} y, color(x) = c1", pin))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("prepared bindings diverged: %d vs %d", len(got), len(want))
	}
	// Different parameters, same statement.
	other := w.img.Regions[40].ID
	got2, err := p.Eval(map[string]string{"ref": other, "c": "c2"})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := w.evaluator(t, false).EvalString(
		fmt.Sprintf("q(x, y) :- y = %s, x {N, N:NE, NE, E} y, color(x) = c2", other))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want2) {
		t.Errorf("re-parameterised bindings diverged: %d vs %d", len(got2), len(want2))
	}
	// Unbound parameter is an error, not a silent empty result.
	if _, err := p.Eval(map[string]string{"ref": pin}); err == nil {
		t.Error("missing parameter should error")
	}
	if info := p.Plan(); len(info.Order) != 2 {
		t.Errorf("prepared plan order = %v", info.Order)
	}
}

// TestPreparedQueryReplansOnEdit: a prepared statement held across a region
// edit rebuilds its plan (and drops cached execution state) instead of
// answering from the stale candidate sets.
func TestPreparedQueryReplansOnEdit(t *testing.T) {
	g := workload.New(11)
	img := &config.Image{Name: "prep-edit"}
	for i, r := range g.Scatter(60, 8) {
		id := fmt.Sprintf("w%04d", i)
		if err := img.AddRegion(id, id, "", r); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := config.Track(img, core.StoreOptions{Workers: 1, Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	pin := img.Regions[5].ID
	qs := fmt.Sprintf("q(x, y) :- y = %s, x {N, N:NE, NE, E, SE, S:SE, N:NE:E} y", pin)
	ev, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	ev.UseStore(tr.Store())
	ev.UseIndex(tr.Index())
	p, err := ev.Prepare(qs)
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Move the pinned region: every x-relation against it changes.
	moved := img.FindRegion(pin).Geometry().Translate(geom.Pt(400, -400))
	if err := tr.SetRegionGeometry(pin, moved); err != nil {
		t.Fatal(err)
	}
	// A fresh evaluator sees the new geometry; the prepared statement's
	// evaluator predates the edit but reads relations through the store, so
	// replanning is what keeps its pushed candidate sets honest.
	ev2, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	ev2.UseStore(tr.Store())
	want, err := ev2.EvalString(qs)
	if err != nil {
		t.Fatal(err)
	}
	after, err := p.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, want) {
		t.Errorf("post-edit prepared bindings diverged from fresh evaluation: %d vs %d", len(after), len(want))
	}
	if reflect.DeepEqual(after, before) && len(before) > 0 {
		t.Error("post-edit bindings identical to pre-edit — stale execution state served")
	}
}

// TestParseParams: $-parameters parse in bind and attribute positions and
// round-trip through String; a bare $ is rejected.
func TestParseParams(t *testing.T) {
	q, err := Parse("q(x) :- x = $start, color(x) = $c")
	if err != nil {
		t.Fatal(err)
	}
	if !q.hasParams() {
		t.Error("hasParams() = false")
	}
	if _, err := Parse("q(x) :- x = $"); err == nil {
		t.Error("bare $ should be a parse error")
	}
	if _, err := Parse("q(x) :- x $N y"); err == nil {
		t.Error("$ in relation position should be a parse error")
	}
	rq, err := q.resolve(map[string]string{"start": "attica", "c": "red"})
	if err != nil {
		t.Fatal(err)
	}
	if rq.Conds[0].(BindCond).RegionID != "attica" || rq.Conds[1].(AttrCond).Value != "red" {
		t.Errorf("resolve produced %v", rq.Conds)
	}
	if _, err := q.resolve(nil); err == nil {
		t.Error("resolving with no args should error")
	}
}

// TestIntersectSorted: the sorted-merge intersection against a brute-force
// reference on edge cases and random inputs.
func TestIntersectSorted(t *testing.T) {
	cases := [][2][]string{
		{nil, nil},
		{{"a"}, nil},
		{nil, {"a"}},
		{{"a", "b", "c"}, {"a", "b", "c"}},
		{{"a", "c", "e"}, {"b", "d", "f"}},
		{{"a", "b", "c", "d"}, {"b", "d"}},
		{{"b", "d"}, {"a", "b", "c", "d", "e"}},
	}
	ref := func(a, b []string) []string {
		in := map[string]bool{}
		for _, s := range b {
			in[s] = true
		}
		var out []string
		for _, s := range a {
			if in[s] {
				out = append(out, s)
			}
		}
		return out
	}
	for _, c := range cases {
		got := intersectSorted(c[0], c[1])
		want := ref(c[0], c[1])
		if !reflect.DeepEqual(got, want) {
			t.Errorf("intersectSorted(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

// BenchmarkIntersectSorted documents why the map-based intersection was
// replaced: the sorted merge allocates one output slice and nothing else.
// (The candidate lists it runs on are sorted by construction — buildCandidates
// iterates ids in sorted order.)
func BenchmarkIntersectSorted(b *testing.B) {
	a := make([]string, 1000)
	c := make([]string, 1000)
	for i := range a {
		a[i] = fmt.Sprintf("r%06d", i)
		c[i] = fmt.Sprintf("r%06d", i+500)
	}
	sort.Strings(a)
	sort.Strings(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := intersectSorted(a, c); len(out) != 500 {
			b.Fatalf("len = %d", len(out))
		}
	}
}

// FuzzPlannerDifferential: any parseable query over the Greece fixture must
// bind identically with the planner on and off, and error states must
// agree. Variable and condition counts are capped to keep the join small.
func FuzzPlannerDifferential(f *testing.F) {
	for _, seed := range []string{
		"q(x, y) :- x {N, N:NE, NE} y",
		"q(x, y) :- y = peloponnesos, x {N, NE, E} y",
		"q(x, y) :- x = attica, not x {S, SW} y",
		"q(x, y) :- pct(x B y) > 0, color(x) = red",
		"q(x, y, z) :- x {W, W:NW, SW} y, y {S, S:SW, S:SE} z, z = attica",
		"q(x) :- x B x",
		"q(x, y) :- pct(x NE y) >= 50, y = crete",
	} {
		f.Add(seed)
	}
	img := config.Greece()
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return
		}
		if len(q.Vars) > 3 || len(q.Conds) > 6 || q.hasParams() {
			return
		}
		mk := func(planner bool) *Evaluator {
			ev, err := NewEvaluator(img)
			if err != nil {
				t.Fatal(err)
			}
			ev.SetPlanner(planner)
			return ev
		}
		want, werr := mk(false).Eval(q)
		got, gerr := mk(true).Eval(q)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%q: error divergence: written=%v planner=%v", s, werr, gerr)
		}
		if werr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("%q: planner diverged: %v vs %v", s, got, want)
		}
	})
}
