package query

import (
	"context"
	"fmt"
	"math"
	"sort"

	"cardirect/internal/core"
	"cardirect/internal/index"
)

// This file implements the cost-based query planner. Written-order
// evaluation (evalWrittenOrder) binds variables and checks conditions in
// the order the user typed them, so a query leading with its percent
// condition pays the worst-case join even when a bind or relation condition
// would prune 99% of candidates. The planner instead:
//
//   - estimates per-condition selectivity — bindings pin to one region,
//     attribute filters are counted exactly against the configuration,
//     relation conditions with one side pinned are probed through the
//     relation store's cached row (core.RelationStore.CountRelated) or the
//     live R-tree (index.EstimateSelect), and percent conditions are
//     heuristically the most expensive and always scheduled last;
//   - orders variable binding smallest-candidate-set first, preferring
//     variables connected to already-ordered ones (joins over cross
//     products);
//   - schedules each relation/percent condition at the earliest join depth
//     where its variables are bound, most selective first, so failing
//     bindings are cut off as high in the search tree as possible;
//   - generalises the single-shot indexed pre-filter into pushdown: every
//     relation condition with one side pinned to a single region filters
//     the other side's candidate set before the join starts, through the
//     store row, the live R-tree, or pairwise lookups — including negated
//     and pinned-primary conditions the old pre-filter skipped.
//
// Plans depend only on the query text and the store generation, so they are
// cacheable (see PlanCache); the per-execution candidate state lives in
// execState.

// PlanInfo describes, for API consumers, how a query was (or will be)
// executed: the chosen variable binding order, the scheduled join
// conditions in check order, the conditions enforced by candidate pushdown
// before the join, and the candidate-set size per variable entering the
// join.
type PlanInfo struct {
	Order      []string       `json:"order"`
	Conds      []string       `json:"conds"`
	Pushed     []string       `json:"pushed,omitempty"`
	Candidates map[string]int `json:"candidates,omitempty"`
}

// planCond is one scheduled relation or percent condition.
type planCond struct {
	isPct   bool
	rel     RelCond
	pct     PctCond
	condIdx int     // index into Query.Conds, keys execState.enforced
	sel     float64 // estimated fraction of pairs passing
}

// Plan is the reusable result of planning one query against one store
// generation: the variable order and the per-depth condition schedule.
// Plans are immutable after buildPlan returns and safe to share between
// goroutines.
type Plan struct {
	order []string     // variable binding order
	pos   map[string]int
	steps [][]planCond // steps[d]: conds checkable once order[:d+1] is bound
	rels  []planCond   // every relation condition, most selective first (pushdown order)
	info  PlanInfo     // Order + Conds; Pushed/Candidates are per-execution
}

// Info returns the plan's static description (Order and Conds; the
// execution-dependent Pushed/Candidates fields are empty).
func (p *Plan) Info() PlanInfo { return p.info }

// selHeuristicRel is the fallback selectivity of a relation condition when
// neither the store row nor the R-tree can be probed: proportional to how
// many of the nine single-tile relations the allowed set admits.
func selHeuristicRel(rels core.RelationSet) float64 {
	return clampSel(float64(rels.Len()) / 9)
}

// selHeuristicPct estimates a percent condition from its comparison alone.
func selHeuristicPct(c PctCond) float64 {
	switch c.Op {
	case ">=", ">":
		if c.Value <= 0 {
			return 0.95 // pct ≥ 0 holds for every pair
		}
		return 0.3
	case "<=", "<":
		return 0.7
	default: // "="
		return 0.05
	}
}

func clampSel(s float64) float64 {
	if s < 0.01 {
		return 0.01
	}
	if s > 0.99 {
		return 0.99
	}
	return s
}

// buildPlan plans the query against the evaluator's current configuration.
// Unresolved parameters are planned conservatively (a parameter binding
// still pins its variable; a parameter attribute value gets a default
// selectivity) so one plan serves every argument set.
func (e *Evaluator) buildPlan(q *Query) *Plan {
	n := len(e.ids)
	if n == 0 {
		n = 1
	}
	est := make(map[string]float64, len(q.Vars))
	pinnedID := make(map[string]string, len(q.Vars))
	for _, v := range q.Vars {
		est[v] = float64(n)
	}

	// Pass 1: bindings and attribute filters shrink their variable's
	// estimate directly.
	for _, c := range q.Conds {
		switch cc := c.(type) {
		case BindCond:
			est[cc.Var] = 1
			if !isParam(cc.RegionID) {
				pinnedID[cc.Var] = cc.RegionID
			}
		case AttrCond:
			sel := 0.5
			if _, ok := e.attrs[cc.Attr]; ok && !isParam(cc.Value) {
				// Exact count through the secondary attribute index: one
				// map lookup instead of a scan over the configuration.
				match := len(e.attrIndex(cc.Attr)[cc.Value])
				sel = clampSel(float64(match) / float64(n))
				if cc.Negated {
					sel = 1 - sel
				}
			}
			est[cc.Var] *= sel
		}
	}

	// Pass 2: relation conditions. With one side pinned to a known region
	// the selectivity is probed — exactly through the store's cached row,
	// or as an MBB upper bound through the live R-tree — and shrinks the
	// free side's estimate; otherwise a tile-count heuristic orders the
	// condition among its peers.
	var conds []planCond
	for i, c := range q.Conds {
		switch cc := c.(type) {
		case RelCond:
			sel := selHeuristicRel(cc.Rels)
			if cc.Negated {
				sel = clampSel(1 - sel)
			}
			free := ""
			if pin, ok := pinnedID[cc.Right]; ok && pinnedID[cc.Left] == "" {
				sel = e.probeSel(pin, cc, true)
				free = cc.Left
			} else if pin, ok := pinnedID[cc.Left]; ok && pinnedID[cc.Right] == "" {
				sel = e.probeSel(pin, cc, false)
				free = cc.Right
			}
			if free != "" {
				est[free] *= sel
			}
			conds = append(conds, planCond{rel: cc, condIdx: i, sel: sel})
		case PctCond:
			conds = append(conds, planCond{isPct: true, pct: cc, condIdx: i, sel: selHeuristicPct(cc)})
		}
	}

	// Variable order: greedily take the smallest estimated candidate set,
	// discounting variables joined to already-ordered ones — following a
	// join edge prunes through scheduled conditions, a cross product
	// cannot. Ties keep head order, so plans are deterministic.
	order := make([]string, 0, len(q.Vars))
	chosen := make(map[string]bool, len(q.Vars))
	for len(order) < len(q.Vars) {
		best := -1
		var bestScore float64
		for i, v := range q.Vars {
			if chosen[v] {
				continue
			}
			links := 0
			for _, pc := range conds {
				var l, r string
				if pc.isPct {
					l, r = pc.pct.Left, pc.pct.Right
				} else {
					l, r = pc.rel.Left, pc.rel.Right
				}
				if (l == v && chosen[r]) || (r == v && chosen[l]) {
					links++
				}
			}
			score := est[v] / math.Pow(4, float64(links))
			if best < 0 || score < bestScore {
				best, bestScore = i, score
			}
		}
		chosen[q.Vars[best]] = true
		order = append(order, q.Vars[best])
	}

	pos := make(map[string]int, len(order))
	for i, v := range order {
		pos[v] = i
	}

	// Schedule each condition at the first depth where both variables are
	// bound; within a depth, qualitative before quantitative, then most
	// selective first, then written order.
	steps := make([][]planCond, len(order))
	for _, pc := range conds {
		var l, r string
		if pc.isPct {
			l, r = pc.pct.Left, pc.pct.Right
		} else {
			l, r = pc.rel.Left, pc.rel.Right
		}
		d := pos[l]
		if pos[r] > d {
			d = pos[r]
		}
		steps[d] = append(steps[d], pc)
	}
	for d := range steps {
		sort.SliceStable(steps[d], func(i, j int) bool {
			a, b := steps[d][i], steps[d][j]
			if a.isPct != b.isPct {
				return !a.isPct
			}
			if a.sel != b.sel {
				return a.sel < b.sel
			}
			return a.condIdx < b.condIdx
		})
	}

	// Pushdown order: every relation condition, most selective first.
	// Eligibility (exactly one side pinned at runtime) is re-checked per
	// execution, because parameters change which side is pinned.
	rels := make([]planCond, 0, len(conds))
	for _, pc := range conds {
		if !pc.isPct {
			rels = append(rels, pc)
		}
	}
	sort.SliceStable(rels, func(i, j int) bool { return rels[i].sel < rels[j].sel })

	info := PlanInfo{Order: order}
	for _, step := range steps {
		for _, pc := range step {
			if pc.isPct {
				info.Conds = append(info.Conds, pc.pct.String())
			} else {
				info.Conds = append(info.Conds, pc.rel.String())
			}
		}
	}
	return &Plan{order: order, pos: pos, steps: steps, rels: rels, info: info}
}

// probeSel estimates the selectivity of a relation condition whose pinned
// side is the known region pin: exact through the store's cached row when
// the store holds pin, an MBB upper bound through the live R-tree when the
// pinned side is the reference, and the tile-count heuristic otherwise.
func (e *Evaluator) probeSel(pin string, cc RelCond, pinnedIsRef bool) float64 {
	if e.store != nil && e.store.Has(pin) {
		if matched, total, err := e.store.CountRelated(pin, cc.Rels, pinnedIsRef); err == nil && total > 0 {
			sel := float64(matched) / float64(total)
			if cc.Negated {
				sel = 1 - sel
			}
			return clampSel(sel)
		}
	}
	if e.live != nil && pinnedIsRef && !cc.Negated && e.live.Has(pin) {
		if g, ok := e.geoms[pin]; ok {
			if st, err := index.EstimateSelect(e.live.Tree(), g, cc.Rels); err == nil && st.Total > 0 {
				return clampSel(float64(st.MBBMatched) / float64(st.Total))
			}
		}
	}
	sel := selHeuristicRel(cc.Rels)
	if cc.Negated {
		sel = clampSel(1 - sel)
	}
	return sel
}

// execState is the per-execution companion of a Plan: the post-pushdown
// candidate sets and the conditions pushdown already enforced. For
// parameter-free queries it depends only on the plan and the store
// generation, so the plan cache retains it and warm executions skip
// straight to the join. It is immutable after prepareExec returns.
type execState struct {
	cand     map[string][]string
	enforced []bool // by Query.Conds index: fully enforced before the join
	pushed   []string
}

// buildCandidates computes the initial per-variable candidate sets from the
// bind and attribute conditions — shared verbatim between the planner and
// written-order evaluation so both report identical errors. Candidate
// slices are always sorted.
func (e *Evaluator) buildCandidates(q *Query) (map[string][]string, error) {
	candidates := make(map[string][]string, len(q.Vars))
	for _, v := range q.Vars {
		cand := e.ids
		for _, c := range q.Conds {
			switch cc := c.(type) {
			case BindCond:
				if cc.Var == v {
					if e.regs[cc.RegionID] == nil {
						return nil, fmt.Errorf("query: unknown region %q in %v", cc.RegionID, cc)
					}
					cand = intersectSorted(cand, []string{cc.RegionID})
				}
			case AttrCond:
				if cc.Var != v {
					continue
				}
				if _, ok := e.attrs[cc.Attr]; !ok {
					return nil, fmt.Errorf("query: unknown attribute %q in %v", cc.Attr, cc)
				}
				// The secondary attribute index answers the filter with one
				// sorted-set operation: intersect with the matching bucket,
				// or subtract it for a negated condition — identical to the
				// per-region accessor scan it replaces.
				match := e.attrIndex(cc.Attr)[cc.Value]
				if cc.Negated {
					cand = subtractSorted(cand, match)
				} else {
					cand = intersectSorted(cand, match)
				}
			}
		}
		candidates[v] = cand
	}
	return candidates, nil
}

// prepareExec builds the execution state for a resolved query: initial
// candidates from bindings and attribute filters, then relation-condition
// pushdown in selectivity order. q must be parameter-free (resolve first).
func (e *Evaluator) prepareExec(ctx context.Context, q *Query, plan *Plan) (*execState, error) {
	candidates, err := e.buildCandidates(q)
	if err != nil {
		return nil, err
	}
	ex := &execState{cand: candidates, enforced: make([]bool, len(q.Conds))}
	for _, pc := range plan.rels {
		// The planned conditions may carry unresolved parameters; the
		// resolved query's condition at the same index is concrete.
		rc, ok := q.Conds[pc.condIdx].(RelCond)
		if !ok {
			continue
		}
		var pinnedVar, freeVar string
		var pinnedIsRef bool
		switch {
		case len(candidates[rc.Right]) == 1 && len(candidates[rc.Left]) >= 2:
			pinnedVar, freeVar, pinnedIsRef = rc.Right, rc.Left, true
		case len(candidates[rc.Left]) == 1 && len(candidates[rc.Right]) >= 2:
			pinnedVar, freeVar, pinnedIsRef = rc.Left, rc.Right, false
		default:
			continue
		}
		pinID := candidates[pinnedVar][0]
		keep, err := e.pushCond(ctx, rc, pinID, pinnedIsRef, candidates[freeVar])
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Any other pushdown failure falls back to the unpruned join,
			// which surfaces errors with their usual context.
			continue
		}
		candidates[freeVar] = keep
		ex.enforced[pc.condIdx] = true
		ex.pushed = append(ex.pushed, rc.String())
	}
	return ex, nil
}

// pushCond filters cand down to the ids satisfying the relation condition
// against the pinned region, choosing the cheapest sound strategy:
//
//   - store present and holding pin → pairwise lookups through the cached
//     relation matrix (O(1) each, handles negation and either pinned side);
//   - pinned reference, positive condition, no materialised relations →
//     R-tree window queries with exact refinement, through the maintained
//     live index when available, or a transient bulk-loaded tree;
//   - otherwise → pairwise lookups through Relation, which prefers
//     materialised relations and caches geometry per ordered pair.
//
// All strategies return exactly the ids the join's own checks would keep
// (the l==r candidate follows the "a region is only B of itself" rule), so
// pushdown never changes results.
func (e *Evaluator) pushCond(ctx context.Context, rc RelCond, pinID string, pinnedIsRef bool, cand []string) ([]string, error) {
	storeBacked := e.store != nil && e.store.Has(pinID)
	if !storeBacked && pinnedIsRef && !rc.Negated && len(e.img.Relations) == 0 {
		if keep, err := e.pushRTree(ctx, rc, pinID, cand); err == nil {
			return keep, nil
		} else if ctx.Err() != nil {
			return nil, err
		}
		// R-tree failure (degenerate geometry) falls through to the
		// pairwise path, which reports the error in join form.
	}
	keep := make([]string, 0, len(cand))
	for _, id := range cand {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var rel core.Relation
		if id == pinID {
			rel = core.B
		} else {
			var err error
			if pinnedIsRef {
				rel, err = e.Relation(id, pinID)
			} else {
				rel, err = e.Relation(pinID, id)
			}
			if err != nil {
				return nil, err
			}
		}
		if rc.Rels.Contains(rel) != rc.Negated {
			keep = append(keep, id)
		}
	}
	return keep, nil
}

// pushRTree answers a positive pinned-reference pushdown through window
// queries: the maintained live index when it covers every candidate, a
// transient bulk-loaded tree otherwise.
func (e *Evaluator) pushRTree(ctx context.Context, rc RelCond, refID string, cand []string) ([]string, error) {
	if e.live != nil && e.live.Has(refID) {
		covered := true
		for _, id := range cand {
			if !e.live.Has(id) {
				covered = false
				break
			}
		}
		if covered {
			sel, _, err := e.live.SelectStatsCtx(ctx, e.geoms[refID], rc.Rels)
			if err != nil {
				return nil, err
			}
			// The live index holds every region; narrow to the candidates.
			// The reference is B of itself, so refID's membership in sel
			// already matches the l==r rule.
			return intersectSorted(cand, sel), nil
		}
	}
	named := make([]core.NamedRegion, 0, len(cand))
	selfIn := false
	for _, id := range cand {
		if id == refID {
			selfIn = true // handled by the l==r rule, not geometry
			continue
		}
		named = append(named, core.NamedRegion{Name: id, Region: e.geoms[id]})
	}
	keep, err := index.FindRelatedCtx(ctx, named, e.geoms[refID], rc.Rels)
	if err != nil {
		return nil, err
	}
	if selfIn && rc.Rels.Contains(core.B) {
		keep = append(keep, refID)
		sort.Strings(keep)
	}
	return keep, nil
}

// runJoin executes the planned backtracking join: variables bind in plan
// order, and each condition is checked exactly once, at the first depth
// where its variables are bound, unless pushdown already enforced it.
// Semantics match evalWrittenOrder: a variable pair bound to the same
// region is B of itself (100% in tile B), and bindings are returned sorted
// by the head variables.
func (e *Evaluator) runJoin(ctx context.Context, q *Query, plan *Plan, ex *execState) ([]Binding, error) {
	var out []Binding
	assign := make(map[string]string, len(plan.order))
	var rec func(i int) error
	rec = func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i == len(plan.order) {
			b := make(Binding, len(assign))
			for k, v := range assign {
				b[k] = v
			}
			out = append(out, b)
			return nil
		}
		v := plan.order[i]
		for _, id := range ex.cand[v] {
			assign[v] = id
			ok := true
			for _, pc := range plan.steps[i] {
				if ex.enforced[pc.condIdx] {
					continue
				}
				if pc.isPct {
					l, r := assign[pc.pct.Left], assign[pc.pct.Right]
					var pct float64
					if l == r {
						if pc.pct.Tile == core.TileB {
							pct = 100 // a region is 100% B of itself
						}
					} else {
						m, err := e.Percent(l, r)
						if err != nil {
							return err
						}
						pct = m.Get(pc.pct.Tile)
					}
					if !comparePct(pct, pc.pct.Op, pc.pct.Value) {
						ok = false
					}
				} else {
					l, r := assign[pc.rel.Left], assign[pc.rel.Right]
					var rel core.Relation
					if l == r {
						rel = core.B // a region is only B of itself
					} else {
						var err error
						rel, err = e.Relation(l, r)
						if err != nil {
							return err
						}
					}
					if pc.rel.Rels.Contains(rel) == pc.rel.Negated {
						ok = false
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			delete(assign, v)
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	sortBindings(out, q.Vars)
	return out, nil
}

// subtractSorted returns the elements of a not present in b (both ascending
// sorted) with a single merge pass — the negated-attribute counterpart of
// intersectSorted.
func subtractSorted(a, b []string) []string {
	if len(a) == 0 {
		return nil
	}
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a))
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// intersectSorted intersects two ascending sorted string slices with a
// single merge pass and one allocation — the hot set operation of candidate
// propagation and pushdown.
func intersectSorted(a, b []string) []string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
