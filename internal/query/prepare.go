package query

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
)

// Result is the full outcome of one planned evaluation: the bindings plus
// how they were obtained — the plan actually executed, whether it came from
// the cache, and the store generation it was valid for.
type Result struct {
	// Vars is the query's head variable list, in declared order.
	Vars     []string
	Bindings []Binding
	// Plan describes the executed plan; nil when the planner is off.
	Plan *PlanInfo
	// Cache is "hit", "miss", "replan" (generation moved since the cached
	// plan was built), "off" (planner disabled), or "uncached" (no plan
	// cache attached).
	Cache string
	// Generation is the relation store generation the evaluation ran
	// against (0 without a store).
	Generation uint64
}

// isParam reports whether a bind or attribute value is a $-parameter.
func isParam(s string) bool { return strings.HasPrefix(s, "$") }

// hasParams reports whether the query mentions any $-parameter.
func (q *Query) hasParams() bool {
	for _, c := range q.Conds {
		switch cc := c.(type) {
		case BindCond:
			if isParam(cc.RegionID) {
				return true
			}
		case AttrCond:
			if isParam(cc.Value) {
				return true
			}
		}
	}
	return false
}

// resolve substitutes $-parameters from args, returning a concrete query
// with the same conditions at the same indices (so a plan built on the
// parameterised form schedules the resolved one). Parameter-free queries
// are returned as-is; a parameter missing from args is an error.
func (q *Query) resolve(args map[string]string) (*Query, error) {
	if !q.hasParams() {
		return q, nil
	}
	rq := &Query{Vars: q.Vars, Conds: make([]Cond, len(q.Conds))}
	for i, c := range q.Conds {
		switch cc := c.(type) {
		case BindCond:
			if isParam(cc.RegionID) {
				v, ok := args[cc.RegionID[1:]]
				if !ok {
					return nil, fmt.Errorf("query: unbound parameter %s", cc.RegionID)
				}
				cc.RegionID = v
			}
			rq.Conds[i] = cc
		case AttrCond:
			if isParam(cc.Value) {
				v, ok := args[cc.Value[1:]]
				if !ok {
					return nil, fmt.Errorf("query: unbound parameter %s", cc.Value)
				}
				cc.Value = v
			}
			rq.Conds[i] = cc
		default:
			rq.Conds[i] = c
		}
	}
	return rq, nil
}

// normalizeQueryText collapses whitespace so textually equivalent queries
// share one plan cache slot.
func normalizeQueryText(input string) string {
	return strings.Join(strings.Fields(input), " ")
}

// cacheEntry is one cached plan. Entries are immutable after insertion —
// a generation change replaces the entry rather than mutating it — so
// concurrent readers need no locking beyond the cache's own.
type cacheEntry struct {
	key       string
	q         *Query
	hasParams bool
	plan      *Plan
	gen       uint64
	exec      *execState // parameter-free queries only; nil otherwise
}

// PlanCacheStats counts plan cache outcomes.
type PlanCacheStats struct {
	Hits    uint64 // fresh cached plan served
	Misses  uint64 // query parsed and planned from scratch
	Replans uint64 // cached plan invalidated by a store generation change
}

// PlanCache is an LRU cache of query plans keyed by normalised query text.
// One cache serves one configuration: entries are validated against the
// relation store's generation and replanned when it moves, which is what
// makes a long-lived cache safe in front of an edited store. It is safe
// for concurrent use (the HTTP layer shares one across requests).
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	stats   PlanCacheStats
}

// NewPlanCache returns an empty plan cache holding at most capacity plans
// (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Reset drops every cached plan, keeping the counters. Generation
// validation assumes one store behind the cache; a server that swaps its
// store wholesale (a replica re-bootstrapping from a new primary epoch)
// resets so a fresh store's restarted generation sequence cannot collide
// with stale entries.
func (c *PlanCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
}

// Stats returns the cumulative hit/miss/replan counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// get returns the entry for key, bumping its recency. It counts a hit only
// when the entry is fresh for gen; a stale entry counts a replan and is
// reported with stale=true so the caller rebuilds and put()s a fresh one.
func (c *PlanCache) get(key string, gen uint64) (e *cacheEntry, stale, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		c.stats.Misses++
		return nil, false, false
	}
	c.ll.MoveToFront(el)
	entry := el.Value.(*cacheEntry)
	if entry.gen != gen {
		c.stats.Replans++
		return entry, true, true
	}
	c.stats.Hits++
	return entry, false, true
}

// put inserts or replaces the entry under its key, evicting the least
// recently used plan past capacity.
func (c *PlanCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Run parses, plans and evaluates a query in one step, consulting the plan
// cache (keyed by normalised query text, validated against the store
// generation) and resolving $-parameters from args. It is the entry point
// the HTTP layer uses; EvalString remains the bindings-only convenience.
func (e *Evaluator) Run(ctx context.Context, input string, args map[string]string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.freshenCaches()
	res := &Result{Generation: e.generation()}
	if e.noPlanner {
		q, err := Parse(input)
		if err != nil {
			return nil, err
		}
		rq, err := q.resolve(args)
		if err != nil {
			return nil, err
		}
		res.Cache = "off"
		res.Vars = q.Vars
		res.Bindings, err = e.evalWrittenOrder(ctx, rq)
		if err != nil {
			return nil, err
		}
		return res, nil
	}

	var entry *cacheEntry
	if e.plans == nil {
		q, err := Parse(input)
		if err != nil {
			return nil, err
		}
		entry = &cacheEntry{q: q, hasParams: q.hasParams(), plan: e.buildPlan(q), gen: res.Generation}
		res.Cache = "uncached"
	} else {
		key := normalizeQueryText(input)
		cached, stale, ok := e.plans.get(key, res.Generation)
		switch {
		case ok && !stale:
			entry = cached
			res.Cache = "hit"
		case ok && stale:
			// The AST is still valid; only the plan (and any cached
			// execution state) reflects the old generation.
			entry = &cacheEntry{key: key, q: cached.q, hasParams: cached.hasParams,
				plan: e.buildPlan(cached.q), gen: res.Generation}
			res.Cache = "replan"
		default:
			q, err := Parse(input)
			if err != nil {
				return nil, err
			}
			entry = &cacheEntry{key: key, q: q, hasParams: q.hasParams(),
				plan: e.buildPlan(q), gen: res.Generation}
			res.Cache = "miss"
		}
	}
	bindings, info, err := e.execPlanned(ctx, entry, args)
	if err != nil {
		return nil, err
	}
	if e.plans != nil && res.Cache != "hit" {
		e.plans.put(entry)
	}
	res.Vars = entry.q.Vars
	res.Bindings, res.Plan = bindings, info
	return res, nil
}

// execPlanned resolves parameters, obtains execution state (reusing the
// entry's cached state for parameter-free queries), runs the join and
// assembles the executed-plan description. It may fill entry.exec on a
// parameter-free first execution — the one mutation entries see before
// being published to the cache.
func (e *Evaluator) execPlanned(ctx context.Context, entry *cacheEntry, args map[string]string) ([]Binding, *PlanInfo, error) {
	rq, err := entry.q.resolve(args)
	if err != nil {
		return nil, nil, err
	}
	ex := entry.exec
	if ex == nil {
		ex, err = e.prepareExec(ctx, rq, entry.plan)
		if err != nil {
			return nil, nil, err
		}
		if !entry.hasParams {
			entry.exec = ex
		}
	}
	bindings, err := e.runJoin(ctx, rq, entry.plan, ex)
	if err != nil {
		return nil, nil, err
	}
	info := entry.plan.Info()
	info.Pushed = ex.pushed
	info.Candidates = make(map[string]int, len(ex.cand))
	for v, cand := range ex.cand {
		info.Candidates[v] = len(cand)
	}
	return bindings, &info, nil
}

// generation returns the attached store's edit generation, 0 without one.
func (e *Evaluator) generation() uint64 {
	if e.store == nil {
		return 0
	}
	return e.store.Generation()
}

// PreparedQuery is a query parsed and checked once, replanned only when the
// store generation moves, and executable many times with different
// $-parameter bindings — the query-layer analogue of a prepared statement.
// It is safe for concurrent use as long as the owning Evaluator is (the
// Evaluator's lazy caches are not synchronised, so share a PreparedQuery
// across goroutines only over a store-backed evaluator you do not mutate).
type PreparedQuery struct {
	ev   *Evaluator
	text string
	q    *Query

	mu   sync.Mutex
	plan *Plan
	gen  uint64
	exec *execState // parameter-free queries only
}

// Prepare parses and plans a query for repeated execution. The input may
// bind regions or attribute values to $-parameters:
//
//	q(x, y) :- x = $start, y {N, NE} x, color(y) = $c
//
// supplied per execution via EvalCtx's args.
func (e *Evaluator) Prepare(input string) (*PreparedQuery, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{ev: e, text: input, q: q, plan: e.buildPlan(q), gen: e.generation()}, nil
}

// Text returns the query text the statement was prepared from.
func (p *PreparedQuery) Text() string { return p.text }

// Plan returns the current plan's static description.
func (p *PreparedQuery) Plan() PlanInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.plan.Info()
}

// Eval executes the prepared query with the given parameter bindings (nil
// for a parameter-free query).
func (p *PreparedQuery) Eval(args map[string]string) ([]Binding, error) {
	return p.EvalCtx(context.Background(), args)
}

// EvalCtx is Eval honoring a context. The plan is rebuilt first when the
// store generation has moved since the last (re)plan.
func (p *PreparedQuery) EvalCtx(ctx context.Context, args map[string]string) ([]Binding, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.ev.freshenCaches()
	rq, err := p.q.resolve(args)
	if err != nil {
		return nil, err
	}
	if p.ev.noPlanner {
		return p.ev.evalWrittenOrder(ctx, rq)
	}
	p.mu.Lock()
	if gen := p.ev.generation(); gen != p.gen {
		p.plan = p.ev.buildPlan(p.q)
		p.gen = gen
		p.exec = nil
	}
	plan, ex := p.plan, p.exec
	p.mu.Unlock()
	if ex == nil {
		ex, err = p.ev.prepareExec(ctx, rq, plan)
		if err != nil {
			return nil, err
		}
		if !p.q.hasParams() {
			p.mu.Lock()
			if p.plan == plan { // not replanned concurrently
				p.exec = ex
			}
			p.mu.Unlock()
		}
	}
	return p.ev.runJoin(ctx, rq, plan, ex)
}
