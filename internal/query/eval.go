package query

import (
	"context"
	"fmt"
	"sort"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/index"
)

// Binding maps query variables to region ids — one query answer.
type Binding map[string]string

// Evaluator answers queries over one CARDIRECT configuration. Pairwise
// relations are computed lazily with Compute-CDR and cached, so repeated
// queries over the same configuration pay the geometry cost once per ordered
// pair.
type Evaluator struct {
	img       *config.Image
	geoms     map[string]geom.Region
	regs      map[string]*config.Region
	preps     map[string]*core.Prepared
	sc        *core.Scratch
	ids       []string
	store     *core.RelationStore
	live      *index.Live
	plans     *PlanCache
	noPlanner bool
	cacheGen  uint64
	relCache  map[[2]string]core.Relation
	pctCache  map[[2]string]core.PercentMatrix
	attrs     map[string]func(*config.Region) string
	attrIdx   map[string]map[string][]string
}

// NewEvaluator prepares an evaluator for the configuration. The built-in
// thematic attributes are "color" and "name" (the paper's model allows any
// attribute set C; RegisterAttr adds more).
func NewEvaluator(img *config.Image) (*Evaluator, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{
		img:      img,
		geoms:    make(map[string]geom.Region, len(img.Regions)),
		regs:     make(map[string]*config.Region, len(img.Regions)),
		preps:    make(map[string]*core.Prepared, len(img.Regions)),
		sc:       &core.Scratch{},
		plans:    NewPlanCache(64),
		relCache: map[[2]string]core.Relation{},
		pctCache: map[[2]string]core.PercentMatrix{},
		attrs: map[string]func(*config.Region) string{
			"color": func(r *config.Region) string { return r.Color },
			"name":  func(r *config.Region) string { return r.Name },
		},
	}
	for i := range img.Regions {
		// Snapshot the region values alongside the geometries: attribute
		// filters and the planner's selectivity counting then run as map
		// lookups instead of linear FindRegion scans, and stay valid if
		// the image's Regions slice is reallocated by an append elsewhere.
		r := img.Regions[i]
		e.geoms[r.ID] = r.Geometry()
		e.regs[r.ID] = &r
		e.ids = append(e.ids, r.ID)
	}
	sort.Strings(e.ids)
	return e, nil
}

// RegisterAttr adds a thematic attribute accessor usable in attribute
// conditions. The accessor must be a pure function of the region (the
// secondary attribute index memoises its values); re-registering a name
// drops that attribute's index so the new accessor takes effect.
func (e *Evaluator) RegisterAttr(name string, fn func(*config.Region) string) {
	e.attrs[name] = fn
	delete(e.attrIdx, name)
}

// attrIndex returns the secondary hash index for one thematic attribute —
// value ↦ sorted region ids — building it lazily on first use (one pass
// over the configuration snapshot, then every attribute filter and planner
// selectivity count is a map lookup). The evaluator's region snapshot is
// immutable, so an index never goes stale; only RegisterAttr invalidates.
// The caller must have checked that the attribute exists in e.attrs.
func (e *Evaluator) attrIndex(attr string) map[string][]string {
	if idx, ok := e.attrIdx[attr]; ok {
		return idx
	}
	fn := e.attrs[attr]
	idx := make(map[string][]string)
	// e.ids is sorted, so every bucket comes out sorted — the form
	// intersectSorted/subtractSorted need.
	for _, id := range e.ids {
		v := fn(e.regs[id])
		idx[v] = append(idx[v], id)
	}
	if e.attrIdx == nil {
		e.attrIdx = make(map[string]map[string][]string)
	}
	e.attrIdx[attr] = idx
	return idx
}

// UseStore wires a maintained core.RelationStore into the evaluator:
// Relation and Percent answer from its delta-maintained cache — fresher
// than any materialised Relation elements and never recomputing geometry —
// falling back to the evaluator's own lazy computation for pairs the store
// does not hold. The store's region names must be the configuration's
// region ids (as config.Track arranges). Pass nil to detach.
func (e *Evaluator) UseStore(s *core.RelationStore) {
	e.store = s
}

// UseIndex wires a maintained index.Live into the evaluator: the planner's
// selectivity probes and relation pushdown run window queries against it
// instead of bulk-loading transient trees. The index must cover the
// evaluator's configuration (as config.Track arranges). Pass nil to detach.
func (e *Evaluator) UseIndex(l *index.Live) {
	e.live = l
}

// SetPlanner toggles cost-based planning (on by default). With the planner
// off, Eval and Run bind variables and check conditions in written order —
// the reference semantics the planner's differential tests compare against.
func (e *Evaluator) SetPlanner(on bool) {
	e.noPlanner = !on
}

// SetPlanCache replaces the evaluator's plan cache (a fresh evaluator owns
// a private 64-entry cache). Sharing one cache across request-scoped
// evaluators over the same tracked configuration lets repeated queries skip
// parsing and planning; entries are validated against the store generation.
// Pass nil to disable plan caching.
func (e *Evaluator) SetPlanCache(c *PlanCache) {
	e.plans = c
}

// PlanCacheHandle returns the evaluator's current plan cache (nil when
// disabled).
func (e *Evaluator) PlanCacheHandle() *PlanCache { return e.plans }

// freshenCaches drops the lazy relation/percent caches when the attached
// store's generation has moved since they were filled: cached pairs reflect
// the geometry at fill time, so serving them across an edit would answer
// queries from stale state even though the store itself is fresh. Every
// query entry point calls this; direct Relation/Percent callers on a
// long-lived evaluator over an edited store should call query paths instead
// or use a fresh evaluator.
func (e *Evaluator) freshenCaches() {
	gen := e.generation()
	if gen == e.cacheGen {
		return
	}
	e.cacheGen = gen
	clear(e.relCache)
	clear(e.pctCache)
}

// prepared returns the region's Prepared form, building and caching it on
// first use. All repeated-query geometry goes through this cache, so each
// region is normalised and edge-flattened at most once per evaluator.
func (e *Evaluator) prepared(id string) (*core.Prepared, error) {
	if p, ok := e.preps[id]; ok {
		return p, nil
	}
	p, err := core.Prepare(id, e.geoms[id])
	if err != nil {
		return nil, err
	}
	e.preps[id] = p
	return p, nil
}

// Relation returns the cardinal direction relation of primary p versus
// reference q, computing and caching it on first use. Materialised
// relations in the configuration are trusted when present.
func (e *Evaluator) Relation(p, q string) (core.Relation, error) {
	key := [2]string{p, q}
	if r, ok := e.relCache[key]; ok {
		return r, nil
	}
	if e.store != nil && e.store.Has(p) && e.store.Has(q) {
		if r, err := e.store.Relation(p, q); err == nil {
			e.relCache[key] = r
			return r, nil
		}
	}
	if entry, ok := e.img.RelationBetween(p, q); ok {
		r, err := core.ParseRelation(entry.Type)
		if err == nil {
			e.relCache[key] = r
			return r, nil
		}
	}
	pa, err := e.prepared(p)
	if err != nil {
		return 0, fmt.Errorf("query: relation %s vs %s: %w", p, q, err)
	}
	pb, err := e.prepared(q)
	if err != nil {
		return 0, fmt.Errorf("query: relation %s vs %s: %w", p, q, err)
	}
	r, err := core.Relate(pa, pb, e.sc)
	if err != nil {
		return 0, fmt.Errorf("query: relation %s vs %s: %w", p, q, err)
	}
	e.relCache[key] = r
	return r, nil
}

// Percent returns the percentage matrix of primary p versus reference q,
// computing and caching it on first use.
func (e *Evaluator) Percent(p, q string) (core.PercentMatrix, error) {
	key := [2]string{p, q}
	if m, ok := e.pctCache[key]; ok {
		return m, nil
	}
	if e.store != nil && e.store.Has(p) && e.store.Has(q) {
		if m, err := e.store.Percent(p, q); err == nil {
			e.pctCache[key] = m
			return m, nil
		}
	}
	pa, err := e.prepared(p)
	if err != nil {
		return core.PercentMatrix{}, fmt.Errorf("query: percentages %s vs %s: %w", p, q, err)
	}
	pb, err := e.prepared(q)
	if err != nil {
		return core.PercentMatrix{}, fmt.Errorf("query: percentages %s vs %s: %w", p, q, err)
	}
	m, _, err := core.RelatePct(pa, pb, e.sc)
	if err != nil {
		return core.PercentMatrix{}, fmt.Errorf("query: percentages %s vs %s: %w", p, q, err)
	}
	e.pctCache[key] = m
	return m, nil
}

// EvalString parses and evaluates a query in one step, through the planner
// and plan cache (see Run for the full result).
func (e *Evaluator) EvalString(input string) ([]Binding, error) {
	return e.EvalStringCtx(context.Background(), input)
}

// EvalStringCtx is EvalString honoring a context (see EvalCtx).
func (e *Evaluator) EvalStringCtx(ctx context.Context, input string) ([]Binding, error) {
	res, err := e.Run(ctx, input, nil)
	if err != nil {
		return nil, err
	}
	return res.Bindings, nil
}

// Eval evaluates the query, returning every satisfying assignment of region
// ids to head variables in lexicographic order. Distinct variables may bind
// to the same region unless a condition forbids it, matching the relational
// semantics of the paper's query model.
func (e *Evaluator) Eval(q *Query) ([]Binding, error) {
	return e.EvalCtx(context.Background(), q)
}

// EvalCtx is Eval honoring a context: the join loop checks for cancellation
// at every candidate binding, so a server timeout aborts an expensive
// multi-variable join mid-search with the context's error. The query is
// evaluated through the cost-based planner unless SetPlanner(false); the
// text entry points (Run, EvalString) additionally consult the plan cache.
func (e *Evaluator) EvalCtx(ctx context.Context, q *Query) ([]Binding, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.freshenCaches()
	if e.noPlanner {
		return e.evalWrittenOrder(ctx, q)
	}
	rq, err := q.resolve(nil)
	if err != nil {
		return nil, err
	}
	plan := e.buildPlan(q)
	ex, err := e.prepareExec(ctx, rq, plan)
	if err != nil {
		return nil, err
	}
	return e.runJoin(ctx, rq, plan, ex)
}

// evalWrittenOrder evaluates the query in the user's written order — the
// pre-planner semantics, kept as the planner-off path and as the reference
// implementation the planner is differentially tested against.
func (e *Evaluator) evalWrittenOrder(ctx context.Context, q *Query) ([]Binding, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.freshenCaches()
	// Pre-index conditions per variable for cheap unit propagation:
	// bindings and attribute filters restrict candidate sets up-front.
	candidates, err := e.buildCandidates(q)
	if err != nil {
		return nil, err
	}
	// Relation and percentage conditions, grouped for the join loop.
	var rels []RelCond
	var pcts []PctCond
	for _, c := range q.Conds {
		switch cc := c.(type) {
		case RelCond:
			rels = append(rels, cc)
		case PctCond:
			pcts = append(pcts, cc)
		}
	}

	// Indexed pre-filter: a relation condition whose reference side is
	// already pinned to one region is a directional selection, so its
	// primary side can be pruned through R-tree window queries before the
	// join loop ever binds it. The exact refinement inside FindRelated makes
	// the filter precise, not just sound. Materialised relations are trusted
	// over geometry, so the filter only applies when the configuration
	// carries none; any filter failure just falls back to the unpruned loop,
	// which surfaces errors with their usual context.
	if len(e.img.Relations) == 0 {
		for _, rc := range rels {
			if rc.Negated || rc.Left == rc.Right {
				continue
			}
			refCand := candidates[rc.Right]
			if len(refCand) != 1 || len(candidates[rc.Left]) < 2 {
				continue
			}
			// pushRTree prefers the maintained live index over bulk-loading
			// a transient tree, and honors the context; a filter failure
			// just falls back to the unpruned loop, which surfaces errors
			// with their usual context.
			keep, err := e.pushRTree(ctx, rc, refCand[0], candidates[rc.Left])
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				continue
			}
			candidates[rc.Left] = keep
		}
	}

	var out []Binding
	assign := make(map[string]string, len(q.Vars))
	var rec func(i int) error
	rec = func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i == len(q.Vars) {
			b := make(Binding, len(assign))
			for k, v := range assign {
				b[k] = v
			}
			out = append(out, b)
			return nil
		}
		v := q.Vars[i]
		for _, id := range candidates[v] {
			assign[v] = id
			ok := true
			// Check every relation condition whose variables are all bound.
			for _, rc := range rels {
				l, lok := assign[rc.Left]
				r, rok := assign[rc.Right]
				if !lok || !rok {
					continue
				}
				var rel core.Relation
				if l == r {
					rel = core.B // a region is only B of itself
				} else {
					var err error
					rel, err = e.Relation(l, r)
					if err != nil {
						return err
					}
				}
				if rc.Rels.Contains(rel) == rc.Negated {
					ok = false
					break
				}
			}
			if ok {
				for _, pc := range pcts {
					l, lok := assign[pc.Left]
					r, rok := assign[pc.Right]
					if !lok || !rok {
						continue
					}
					var pct float64
					if l == r {
						if pc.Tile == core.TileB {
							pct = 100 // a region is 100% B of itself
						}
					} else {
						m, err := e.Percent(l, r)
						if err != nil {
							return err
						}
						pct = m.Get(pc.Tile)
					}
					if !comparePct(pct, pc.Op, pc.Value) {
						ok = false
						break
					}
				}
			}
			if ok {
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			delete(assign, v)
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	sortBindings(out, q.Vars)
	return out, nil
}

// comparePct applies a pct comparison with a small absolute tolerance on
// equality (percentages come from floating-point geometry).
func comparePct(pct float64, op string, value float64) bool {
	const eps = 1e-9
	switch op {
	case ">=":
		return pct >= value-eps
	case "<=":
		return pct <= value+eps
	case ">":
		return pct > value+eps
	case "<":
		return pct < value-eps
	default: // "="
		d := pct - value
		if d < 0 {
			d = -d
		}
		return d <= eps
	}
}

func sortBindings(bs []Binding, vars []string) {
	sort.Slice(bs, func(i, j int) bool {
		for _, v := range vars {
			if bs[i][v] != bs[j][v] {
				return bs[i][v] < bs[j][v]
			}
		}
		return false
	})
}
