package query

import (
	"strings"
	"testing"

	"cardirect/internal/config"
	"cardirect/internal/core"
)

func TestLexer(t *testing.T) {
	toks, err := lex("q(x, y) :- color(x) = red, x S:SW {N} y")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.kind
	}
	want := []tokenKind{
		tokIdent, tokLParen, tokIdent, tokComma, tokIdent, tokRParen, tokTurnstile,
		tokIdent, tokLParen, tokIdent, tokRParen, tokEquals, tokIdent, tokComma,
		tokIdent, tokIdent, tokColon, tokIdent, tokLBrace, tokIdent, tokRBrace, tokIdent,
		tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if _, err := lex("q(x) :- x $ y"); err == nil {
		t.Error("invalid character should fail lexing")
	}
}

func TestParseWellFormed(t *testing.T) {
	q, err := Parse("q(a, b) :- color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 2 || q.Vars[0] != "a" || q.Vars[1] != "b" {
		t.Errorf("vars = %v", q.Vars)
	}
	if len(q.Conds) != 3 {
		t.Fatalf("conds = %d", len(q.Conds))
	}
	rc, ok := q.Conds[2].(RelCond)
	if !ok {
		t.Fatalf("third condition is %T", q.Conds[2])
	}
	want, _ := core.ParseRelation("S:SW:W:NW:N:NE:E:SE")
	if !rc.Rels.Contains(want) || rc.Rels.Len() != 1 {
		t.Errorf("relation = %v", rc.Rels)
	}
	// Roundtrip through String and Parse again.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("roundtrip: %q vs %q", q2.String(), q.String())
	}
}

func TestParseDisjunctiveRelation(t *testing.T) {
	q, err := Parse("q(x, y) :- x {N, NW:N, N:NE} y")
	if err != nil {
		t.Fatal(err)
	}
	rc := q.Conds[0].(RelCond)
	if rc.Rels.Len() != 3 {
		t.Errorf("disjuncts = %d", rc.Rels.Len())
	}
	if !rc.Rels.Contains(core.N) {
		t.Error("missing N")
	}
}

func TestParseBinding(t *testing.T) {
	q, err := Parse("q(x) :- x = attica")
	if err != nil {
		t.Fatal(err)
	}
	bc, ok := q.Conds[0].(BindCond)
	if !ok || bc.RegionID != "attica" {
		t.Errorf("cond = %v", q.Conds[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"q() :- x = a",
		"q(x, x) :- x = a",                // duplicate head var
		"q(x) :- y = a",                   // unknown var
		"q(x) :-",                         // no conditions
		"q(x, y) :- x Z y",                // bad tile
		"q(x, y) :- x S:S y",              // duplicate tile
		"q(x) :- x S x",                   // self relation
		"q(x, y) :- x {S, } y",            // dangling comma
		"q(x y) :- x = a",                 // missing comma
		"q(x) : - x = a",                  // broken turnstile
		"q(x, y) :- color(x = red, x S y", // broken parens
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestEvalPaperQuery(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §4 example: regions of the Athenean Alliance (blue)
	// surrounded by a region of the Spartan Alliance (red). (The paper
	// prints the colors swapped relative to its prose; the intended
	// surrounded-by reading is a red surrounder and a blue surroundee.)
	got, err := e.EvalString(
		"q(a, b) :- color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("answers = %v, want exactly the Pylos pair", got)
	}
	if got[0]["a"] != "peloponnesos" || got[0]["b"] != "pylos" {
		t.Errorf("answer = %v", got[0])
	}
}

func TestEvalBindingAndAttr(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalString("q(x, y) :- x = peloponnesos, y = attica, x B:S:SW:W y")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Fig 12 relation should hold: %v", got)
	}
	// All red regions.
	reds, err := e.EvalString("q(x, y) :- color(x) = red, color(y) = red, x = peloponnesos, y = peloponnesos")
	if err != nil {
		t.Fatal(err)
	}
	if len(reds) != 1 {
		t.Fatalf("self pair: %v", reds)
	}
	// Unknown attribute and unknown region produce errors.
	if _, err := e.EvalString("q(x) :- taste(x) = sweet"); err == nil {
		t.Error("unknown attribute should error")
	}
	if _, err := e.EvalString("q(x) :- x = atlantis"); err == nil {
		t.Error("unknown region should error")
	}
}

func TestEvalDisjunctive(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	// Regions strictly north-ish of Attica: either N or NW:N etc.
	got, err := e.EvalString("q(x, y) :- y = attica, x {N, NW:N, N:NE, NW:N:NE, NW, NE} y")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, b := range got {
		found[b["x"]] = true
	}
	if !found["macedonia"] {
		t.Errorf("Macedonia should be north of Attica: %v", got)
	}
	if found["crete"] {
		t.Error("Crete is south of Attica")
	}
}

func TestEvalSameVariableRegions(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	// x B x holds for every region (a region is B of itself).
	got, err := e.EvalString("q(x, y) :- x = attica, y = attica, x B y")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("x B x should hold for attica: %v", got)
	}
	// But x N x never holds.
	none, err := e.EvalString("q(x, y) :- x = attica, y = attica, x N y")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("x N x must be empty: %v", none)
	}
}

func TestEvalDeterministicOrder(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	q := "q(x) :- color(x) = blue"
	a, err := e.EvalString(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.EvalString(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("blue regions: %v vs %v", a, b)
	}
	for i := range a {
		if a[i]["x"] != b[i]["x"] {
			t.Errorf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Lexicographic order.
	for i := 1; i < len(a); i++ {
		if a[i-1]["x"] >= a[i]["x"] {
			t.Errorf("not sorted: %v", a)
		}
	}
}

func TestEvalUsesMaterialisedRelations(t *testing.T) {
	img := config.Greece()
	if err := img.ComputeRelations(false); err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Relation("peloponnesos", "attica")
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "B:S:SW:W" {
		t.Errorf("materialised relation = %v", r)
	}
}

func TestRegisterAttr(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterAttr("alliance", func(r *config.Region) string {
		switch r.Color {
		case "blue":
			return "athens"
		case "red":
			return "sparta"
		default:
			return "other"
		}
	})
	got, err := e.EvalString("q(x) :- alliance(x) = other")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["x"] != "macedonia" {
		t.Errorf("alliance=other → %v", got)
	}
}

func TestQueryStringContainsConditions(t *testing.T) {
	q, err := Parse("q(a, b) :- color(a) = red, a {N, S} b")
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	// RelationSet renders members in canonical bitmask order (S before N).
	for _, frag := range []string{"q(a, b)", "color(a) = red", "a {S, N} b"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestEvalThreeVariableJoin(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	// Chains: x north-ish of y, y north-ish of z, all distinct colors
	// pinned to make the answer small and checkable.
	got, err := e.EvalString(
		"q(x, y, z) :- z = crete, y = peloponnesos, x {NW:N, N, N:NE, NE, NW} y, y {NW:N, N, N:NE} z")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, b := range got {
		found[b["x"]] = true
		if b["y"] != "peloponnesos" || b["z"] != "crete" {
			t.Errorf("pinned variables wrong: %v", b)
		}
	}
	// Beotia and Macedonia are both north-ish of the Peloponnesos, which is
	// north-ish of Crete.
	if !found["macedonia"] {
		t.Errorf("macedonia missing from 3-var join: %v", got)
	}
	if found["crete"] || found["sicily"] {
		t.Errorf("southern regions must not appear: %v", got)
	}
}

func TestEvalCartesianWithoutRelations(t *testing.T) {
	img := config.Greece()
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	// Attribute-only conditions produce the full cross product of the
	// matching candidate sets.
	got, err := e.EvalString("q(x, y) :- color(x) = red, color(y) = black")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // 4 red × 1 black
		t.Errorf("cross product = %d, want 4", len(got))
	}
}
