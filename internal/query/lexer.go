// Package query implements the CARDIRECT query language of §4 of the paper:
// conjunctive queries over region variables whose conditions are
//
//   - direct region bindings        x = attica
//   - thematic attribute filters    color(x) = red
//   - cardinal direction filters    x S:SW:W y   or   x {N, NW:N} y
//
// in the concrete syntax
//
//	q(x, y) :- color(x) = red, color(y) = blue, x S:SW:W:NW:N:NE:E:SE y
//
// Queries are parsed into an AST, checked, and evaluated against a CARDIRECT
// configuration (config.Image) by a backtracking join; direction relations
// between candidate regions are computed once per ordered pair with the
// paper's Compute-CDR algorithm and cached.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokColon
	tokEquals
	tokNotEquals // "!="
	tokCmp       // ">=", "<=", ">", "<"
	tokNumber
	tokTurnstile // ":-"
	tokParam     // "$name" — a prepared-query parameter
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokEquals:
		return "'='"
	case tokNotEquals:
		return "'!='"
	case tokCmp:
		return "comparison operator"
	case tokNumber:
		return "number"
	case tokTurnstile:
		return "':-'"
	case tokParam:
		return "parameter"
	default:
		return "unknown token"
	}
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens. Identifiers consist of letters, digits,
// '_' and '-' (region ids like "south-italy" are single tokens; the ":-"
// turnstile is recognised before ':').
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ':' && i+1 < len(input) && input[i+1] == '-':
			toks = append(toks, token{tokTurnstile, ":-", i})
			i += 2
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEquals, "=", i})
			i++
		case c == '!' && i+1 < len(input) && input[i+1] == '=':
			toks = append(toks, token{tokNotEquals, "!=", i})
			i += 2
		case c == '>' || c == '<':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{tokCmp, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokCmp, input[i : i+1], i})
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(input) && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case c == '$':
			j := i + 1
			for j < len(input) && isIdentRune(rune(input[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("query: '$' must introduce a parameter name at offset %d", i)
			}
			// The token text keeps the '$' prefix: region ids cannot start
			// with '$', so downstream code distinguishes parameters by it.
			toks = append(toks, token{tokParam, input[i:j], i})
			i = j
		case isIdentRune(rune(c)):
			j := i
			for j < len(input) && isIdentRune(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// describe renders a token for error messages.
func describe(t token) string {
	if t.kind == tokIdent {
		return fmt.Sprintf("%q", t.text)
	}
	return t.kind.String()
}

// upperTileName reports whether the identifier names a tile (B, S, SW, …),
// which lets the parser distinguish the start of a relation condition from
// an attribute condition.
func upperTileName(s string) bool {
	switch strings.ToUpper(s) {
	case "B", "S", "SW", "W", "NW", "N", "NE", "E", "SE":
		return true
	}
	return false
}
