package query

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cardirect/internal/config"
	"cardirect/internal/geom"
)

// attrWorld builds a configuration with a known color distribution: region
// ids a00..a<n-1>, colors cycling through red/green/blue.
func attrWorld(t *testing.T, n int) *config.Image {
	t.Helper()
	img := &config.Image{Name: "attr-index"}
	colors := []string{"red", "green", "blue"}
	for i := 0; i < n; i++ {
		cx, cy := float64(i%8)*10, float64(i/8)*10
		if err := img.AddRegion(fmt.Sprintf("a%02d", i), fmt.Sprintf("a%02d", i),
			colors[i%len(colors)], geom.Rgn(geom.Polygon{
				geom.Pt(cx, cy), geom.Pt(cx+4, cy), geom.Pt(cx+4, cy+4), geom.Pt(cx, cy+4),
			}.Clockwise())); err != nil {
			t.Fatal(err)
		}
	}
	return img
}

// TestAttrIndexMatchesScan checks the secondary attribute index against a
// direct accessor scan: every bucket holds exactly the sorted ids whose
// accessor returns the bucket value, and buildCandidates produces the same
// candidate sets — positive and negated — as the per-region scan it
// replaced.
func TestAttrIndexMatchesScan(t *testing.T) {
	img := attrWorld(t, 20)
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	idx := e.attrIndex("color")
	for val, ids := range idx {
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Errorf("bucket %q not sorted: %v", val, ids)
			}
		}
	}
	for _, id := range e.ids {
		want := e.regs[id].Color
		found := false
		for _, got := range idx[want] {
			if got == id {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("region %s (color %s) missing from its bucket", id, want)
		}
	}
	// Candidate sets through the index vs a reference scan.
	for _, tc := range []struct {
		q       string
		color   string
		negated bool
	}{
		{"q(x) :- color(x) = red", "red", false},
		{"q(x) :- color(x) != red", "red", true},
		{"q(x) :- color(x) = green", "green", false},
		{"q(x) :- color(x) = mauve", "mauve", false}, // absent value: empty set
		{"q(x) :- color(x) != mauve", "mauve", true}, // absent value: everything
	} {
		q, err := Parse(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		cand, err := e.buildCandidates(q)
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		for _, id := range e.ids {
			if (e.regs[id].Color == tc.color) != tc.negated {
				want = append(want, id)
			}
		}
		if !reflect.DeepEqual(cand["x"], want) {
			t.Errorf("%s: candidates = %v, want %v", tc.q, cand["x"], want)
		}
	}
}

// TestAttrIndexRegisterInvalidates checks that re-registering an attribute
// accessor drops the memoised index so the new accessor takes effect.
func TestAttrIndexRegisterInvalidates(t *testing.T) {
	img := attrWorld(t, 6)
	e, err := NewEvaluator(img)
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterAttr("zone", func(r *config.Region) string { return "east" })
	if got := len(e.attrIndex("zone")["east"]); got != 6 {
		t.Fatalf("zone=east bucket = %d ids, want 6", got)
	}
	e.RegisterAttr("zone", func(r *config.Region) string { return "west" })
	if got := len(e.attrIndex("zone")["east"]); got != 0 {
		t.Errorf("stale index survived re-registration: zone=east holds %d ids", got)
	}
	if got := len(e.attrIndex("zone")["west"]); got != 6 {
		t.Errorf("zone=west bucket = %d ids, want 6", got)
	}
}

// TestAttrIndexQueryEquivalence runs attribute-heavy queries — positive,
// negated, and mixed with relation conditions — through the planner (which
// counts selectivity and filters candidates via the index) and written-order
// evaluation, and demands identical bindings.
func TestAttrIndexQueryEquivalence(t *testing.T) {
	img := attrWorld(t, 24)
	for _, qs := range []string{
		"q(x) :- color(x) = red",
		"q(x) :- color(x) != red",
		"q(x, y) :- color(x) = red, color(y) = blue, x {NW, N, N:NW} y",
		"q(x, y) :- color(x) != green, color(y) = green, not x {S, S:SW} y, y = a04",
	} {
		ep, err := NewEvaluator(img)
		if err != nil {
			t.Fatal(err)
		}
		want, err := func() ([]Binding, error) {
			ep.SetPlanner(false)
			return ep.EvalString(qs)
		}()
		if err != nil {
			t.Fatalf("%s (written order): %v", qs, err)
		}
		ep.SetPlanner(true)
		got, err := ep.EvalString(qs)
		if err != nil {
			t.Fatalf("%s (planner): %v", qs, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: planner %v, written order %v", qs, got, want)
		}
		if strings.Contains(qs, "= red") && len(want) == 0 {
			t.Errorf("%s: no bindings — equivalence is vacuous", qs)
		}
	}
}

func TestSubtractSorted(t *testing.T) {
	for _, tc := range []struct{ a, b, want []string }{
		{[]string{"a", "b", "c"}, []string{"b"}, []string{"a", "c"}},
		{[]string{"a", "b"}, nil, []string{"a", "b"}},
		{nil, []string{"a"}, nil},
		{[]string{"a", "b"}, []string{"a", "b"}, nil},
		{[]string{"b", "d"}, []string{"a", "c", "e"}, []string{"b", "d"}},
	} {
		if got := subtractSorted(tc.a, tc.b); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("subtractSorted(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
