package persist

import (
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"cardirect/internal/config"
)

// Binary snapshot format. Each snapshot generation is written in two
// formats: the paper's XML (the durable interchange format, always the
// fallback) and this binary encoding, which recovery prefers because it
// decodes an order of magnitude faster than 250k lines of XML attributes.
//
// File layout (all integers little-endian):
//
//	magic   [4]byte  "CDSN"
//	version uint16   format version (currently 1)
//	flags   uint16   reserved, zero
//	length  uint64   payload length in bytes
//	payload [length]byte
//	crc     uint32   CRC-32C (Castagnoli) of version|flags|length|payload
//
// The CRC covers the header fields after the magic, so a bit flip anywhere
// but the magic itself fails the checksum (a flipped magic fails the magic
// check). The payload is the full-fidelity configuration document: strings
// are u32-length-prefixed UTF-8 carried verbatim (including the formatted
// Relation type and pct attributes, so a binary round-trip is byte-exact
// against the XML writer's output), and coordinates are IEEE-754 bit
// patterns via math.Float64bits — no decimal formatting round-trip.
//
//	payload := str(name) str(file)
//	           u32(#regions)   region*
//	           u32(#relations) relation*
//	region   := str(id) str(name) str(color) u32(#polygons) polygon*
//	polygon  := str(id) u32(#vertices) (u64(xbits) u64(ybits))*
//	relation := str(type) str(primary) str(reference) str(pct)
const (
	binMagic   = "CDSN"
	binVersion = 1
	// binHeaderLen is magic + version + flags + payload length.
	binHeaderLen = 4 + 2 + 2 + 8
)

// castagnoli is the CRC-32C table shared with the WAL's framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func binSnapshotName(seq uint64) string { return fmt.Sprintf("snapshot-%08d.bin", seq) }

// binWriter accumulates the payload encoding.
type binWriter struct{ buf []byte }

func (w *binWriter) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

func (w *binWriter) u64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

func (w *binWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// encodeBinarySnapshot serialises the document into the framed binary
// format.
func encodeBinarySnapshot(img *config.Image) []byte {
	var w binWriter
	w.str(img.Name)
	w.str(img.File)
	w.u32(uint32(len(img.Regions)))
	for i := range img.Regions {
		r := &img.Regions[i]
		w.str(r.ID)
		w.str(r.Name)
		w.str(r.Color)
		w.u32(uint32(len(r.Polygons)))
		for j := range r.Polygons {
			p := &r.Polygons[j]
			w.str(p.ID)
			w.u32(uint32(len(p.Edges)))
			for _, e := range p.Edges {
				w.u64(math.Float64bits(e.X))
				w.u64(math.Float64bits(e.Y))
			}
		}
	}
	w.u32(uint32(len(img.Relations)))
	for i := range img.Relations {
		rel := &img.Relations[i]
		w.str(rel.Type)
		w.str(rel.Primary)
		w.str(rel.Reference)
		w.str(rel.Pct)
	}

	payload := w.buf
	out := make([]byte, 0, binHeaderLen+len(payload)+4)
	out = append(out, binMagic...)
	out = binary.LittleEndian.AppendUint16(out, binVersion)
	out = binary.LittleEndian.AppendUint16(out, 0) // flags
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	crc := crc32.Checksum(out[4:], castagnoli)
	out = binary.LittleEndian.AppendUint32(out, crc)
	return out
}

// binReader is the bounds-checked payload cursor; the first failed read
// latches an error and turns every further read into a zero-value no-op,
// so decode loops need a single error check at the end.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("persist: binary snapshot truncated reading %s at offset %d", what, r.off)
	}
}

func (r *binReader) u32(what string) uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *binReader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *binReader) str(what string) string {
	n := int(r.u32(what))
	if r.err != nil {
		return ""
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(what)
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// count reads a u32 element count and sanity-bounds it against the bytes
// remaining: each element of any list costs at least min bytes, so a count
// that cannot fit is corruption, not a huge allocation.
func (r *binReader) count(what string, min int) int {
	n := int(r.u32(what))
	if r.err != nil {
		return 0
	}
	if n < 0 || n*min > len(r.buf)-r.off {
		r.fail(what + " count")
		return 0
	}
	return n
}

// decodeBinarySnapshot verifies the framing (magic, version, length, CRC)
// and decodes the payload into a configuration document. It does not
// validate the document; callers run config.Image.Validate like the XML
// path does.
func decodeBinarySnapshot(data []byte) (*config.Image, error) {
	if len(data) < binHeaderLen+4 {
		return nil, fmt.Errorf("persist: binary snapshot too short (%d bytes)", len(data))
	}
	if string(data[:4]) != binMagic {
		return nil, fmt.Errorf("persist: bad binary snapshot magic %q", data[:4])
	}
	version := binary.LittleEndian.Uint16(data[4:])
	payloadLen := binary.LittleEndian.Uint64(data[8:])
	if uint64(len(data)) != binHeaderLen+payloadLen+4 {
		return nil, fmt.Errorf("persist: binary snapshot length mismatch: header says %d payload bytes, file has %d",
			payloadLen, len(data)-binHeaderLen-4)
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[4:len(data)-4], castagnoli); got != want {
		return nil, fmt.Errorf("persist: binary snapshot checksum mismatch: %08x != %08x", got, want)
	}
	if version != binVersion {
		return nil, fmt.Errorf("persist: unsupported binary snapshot version %d", version)
	}

	r := &binReader{buf: data[binHeaderLen : len(data)-4]}
	img := &config.Image{XMLName: xml.Name{Local: "Image"}}
	img.Name = r.str("image name")
	img.File = r.str("image file")
	img.Regions = make([]config.Region, r.count("regions", 16))
	for i := range img.Regions {
		reg := &img.Regions[i]
		reg.ID = r.str("region id")
		reg.Name = r.str("region name")
		reg.Color = r.str("region color")
		reg.Polygons = make([]config.Polygon, r.count("polygons", 8))
		for j := range reg.Polygons {
			p := &reg.Polygons[j]
			p.ID = r.str("polygon id")
			p.Edges = make([]config.Edge, r.count("vertices", 16))
			for k := range p.Edges {
				p.Edges[k].X = math.Float64frombits(r.u64("vertex x"))
				p.Edges[k].Y = math.Float64frombits(r.u64("vertex y"))
			}
		}
	}
	img.Relations = make([]config.Relation, r.count("relations", 16))
	for i := range img.Relations {
		rel := &img.Relations[i]
		rel.Type = r.str("relation type")
		rel.Primary = r.str("relation primary")
		rel.Reference = r.str("relation reference")
		rel.Pct = r.str("relation pct")
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("persist: binary snapshot has %d trailing payload bytes", len(r.buf)-r.off)
	}
	return img, nil
}

// EncodeSnapshot serialises the document into the framed binary snapshot
// format (magic, version, length, CRC-32C). Replication streams these bytes
// to bootstrapping replicas; DecodeSnapshot is the inverse.
func EncodeSnapshot(img *config.Image) []byte {
	return encodeBinarySnapshot(img)
}

// DecodeSnapshot verifies and decodes a binary snapshot image as produced
// by EncodeSnapshot. Like the recovery path it does not validate the
// document; callers run config.Image.Validate.
func DecodeSnapshot(data []byte) (*config.Image, error) {
	return decodeBinarySnapshot(data)
}

// loadBinarySnapshot reads, decodes and validates one binary snapshot file.
func loadBinarySnapshot(path string) (*config.Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	img, err := decodeBinarySnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}
