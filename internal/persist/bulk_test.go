package persist

import (
	"fmt"
	"reflect"
	"testing"

	"cardirect/internal/config"
	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// TestBulkAddRegions drives the durable bulk-ingest path end to end: one
// BulkAddRegions call must cost one WAL fsync and one batched store
// recomputation (zero delta pairs), and a recovery from the resulting log
// must replay the run back through the bulk path, reproducing the exact
// store state.
func TestBulkAddRegions(t *testing.T) {
	dir := t.TempDir()
	seedWorld := workload.New(1).Scatter(4, 8)
	s := openForTest(t, dir, buildImage(t, seedWorld))

	const k = 150
	window := geom.Rect{MinX: 100, MinY: 100, MaxX: 300, MaxY: 300}
	world := workload.New(2).Zipf(window, k, 256)
	bulk := make([]config.BulkRegion, k)
	for i, g := range world {
		bulk[i] = config.BulkRegion{ID: fmt.Sprintf("z%03d", i), Name: fmt.Sprintf("Zipf %d", i), Geometry: g}
	}
	preFsyncs := s.Status().WAL.Fsyncs
	if err := s.BulkAddRegions(bulk); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if got := st.WAL.Fsyncs - preFsyncs; got != 1 {
		t.Errorf("bulk ingest of %d regions cost %d fsyncs, want 1", k, got)
	}
	if st.WAL.Records != int64(k) {
		t.Errorf("WAL.Records = %d, want %d", st.WAL.Records, k)
	}
	coreStats := s.Tracked().Store().Stats()
	if coreStats.BulkBatches != 1 {
		t.Errorf("BulkBatches = %d, want 1", coreStats.BulkBatches)
	}
	if coreStats.DeltaPairs != 0 {
		t.Errorf("DeltaPairs = %d, want 0 — the bulk path must not pay per-region deltas", coreStats.DeltaPairs)
	}
	wantPairs, wantPcts := statePairs(t, s.Tracked())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the logged OpAdd run through the bulk path again.
	r := openForTest(t, dir, nil)
	defer r.Close()
	rst := r.Status()
	if rst.ReplayedRecords != k {
		t.Errorf("replayed %d records, want %d", rst.ReplayedRecords, k)
	}
	if rst.SkippedRecords != 0 {
		t.Errorf("skipped %d records", rst.SkippedRecords)
	}
	recStats := r.Tracked().Store().Stats()
	if recStats.BulkBatches != 1 {
		t.Errorf("recovery BulkBatches = %d, want 1 (batched replay)", recStats.BulkBatches)
	}
	if recStats.DeltaPairs != 0 {
		t.Errorf("recovery DeltaPairs = %d, want 0 (batched replay)", recStats.DeltaPairs)
	}
	gotPairs, gotPcts := statePairs(t, r.Tracked())
	if !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Fatal("recovered relations differ from pre-crash state")
	}
	// Percent matrices round-trip through the snapshot seed; the internal
	// tile areas are reconstructed, so compare the served matrices only.
	if len(gotPcts) != len(wantPcts) {
		t.Fatalf("pct pair count differs: %d vs %d", len(gotPcts), len(wantPcts))
	}
	for i := range gotPcts {
		if gotPcts[i].Primary != wantPcts[i].Primary ||
			gotPcts[i].Reference != wantPcts[i].Reference ||
			gotPcts[i].Matrix != wantPcts[i].Matrix {
			t.Fatalf("pct pair %d differs", i)
		}
	}
}

// TestBulkAddRegionsRejected checks a failing batch leaves store and WAL
// untouched.
func TestBulkAddRegionsRejected(t *testing.T) {
	dir := t.TempDir()
	s := openForTest(t, dir, buildImage(t, workload.New(3).Scatter(3, 8)))
	defer s.Close()
	before := s.Status()
	bulk := []config.BulkRegion{
		{ID: "x", Geometry: workload.BoxRegion(0, 0, 1, 1)},
		{ID: "r000", Geometry: workload.BoxRegion(2, 2, 3, 3)}, // duplicate of seed id
	}
	if err := s.BulkAddRegions(bulk); err == nil {
		t.Fatal("duplicate id accepted")
	}
	after := s.Status()
	if after.WAL.Records != before.WAL.Records {
		t.Error("rejected batch reached the WAL")
	}
	if s.Tracked().Store().Len() != 3 {
		t.Error("rejected batch mutated the store")
	}
	if err := s.BulkAddRegions(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}
