package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/wal"
	"cardirect/internal/workload"
)

// buildImage assembles a document from generated regions, ids r000, r001, …
func buildImage(t testing.TB, regions []geom.Region) *config.Image {
	t.Helper()
	img := &config.Image{Name: "persist-test", File: "persist.png"}
	for i, g := range regions {
		id := fmt.Sprintf("r%03d", i)
		if err := img.AddRegion(id, "Region "+id, "", g); err != nil {
			t.Fatal(err)
		}
	}
	return img
}

func openForTest(t testing.TB, dir string, seed *config.Image) *Store {
	t.Helper()
	s, err := Open(dir, seed, Options{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// statePairs captures the comparable store state: qualitative and percent
// matrices for every ordered pair.
func statePairs(t testing.TB, tr *config.Tracked) ([]core.PairRelation, []core.PairPercent) {
	t.Helper()
	pairs := tr.Store().Pairs()
	pcts, err := tr.Store().PctPairs()
	if err != nil {
		t.Fatal(err)
	}
	return pairs, pcts
}

// TestFreshInitAndRecovery opens a fresh directory, edits through the
// store, crashes (Close) and recovers; the recovered state must match a
// from-scratch computation over the same final document.
func TestFreshInitAndRecovery(t *testing.T) {
	dir := t.TempDir()
	gen := workload.New(7)
	regions := gen.Scatter(10, 10)
	extra := gen.Scatter(3, 8)

	s := openForTest(t, dir, buildImage(t, regions))
	if err := s.AddRegion("zzz", "Added", "#123456", extra[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRegionGeometry("r003", extra[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.RenameRegion("r005", "renamed"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveRegion("r007"); err != nil {
		t.Fatal(err)
	}
	wantPairs, wantPcts := statePairs(t, s.Tracked())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRegion("after-close", "x", "", extra[2]); err == nil {
		t.Fatal("edit after Close succeeded")
	}

	// Recover without a seed: the directory is the source of truth.
	r := openForTest(t, dir, nil)
	defer r.Close()
	st := r.Status()
	if !st.SeededFromSnapshot {
		t.Error("recovery did not seed from the snapshot's relations")
	}
	if st.ReplayedRecords != 4 {
		t.Errorf("replayed %d records, want 4", st.ReplayedRecords)
	}
	if st.Corruption != "" {
		t.Errorf("clean log reported corruption: %s", st.Corruption)
	}
	if st.RecoveryNs <= 0 {
		t.Errorf("recovery_ns = %d, want > 0", st.RecoveryNs)
	}
	gotPairs, gotPcts := statePairs(t, r.Tracked())
	if !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Fatal("recovered relations differ from pre-crash state")
	}
	// Percent matrices round-trip bit-exactly through the snapshot; the
	// internal tile areas are reconstructed from them, so compare the
	// served values, not the raw cell structs.
	if len(gotPcts) != len(wantPcts) {
		t.Fatalf("pct pair count differs: %d vs %d", len(gotPcts), len(wantPcts))
	}
	for i := range gotPcts {
		if gotPcts[i].Primary != wantPcts[i].Primary ||
			gotPcts[i].Reference != wantPcts[i].Reference ||
			gotPcts[i].Matrix != wantPcts[i].Matrix {
			t.Fatalf("pct pair %d differs: %+v vs %+v", i, gotPcts[i], wantPcts[i])
		}
	}

	// A seed given alongside an initialised directory is ignored.
	r2 := openForTest(t, t.TempDir(), buildImage(t, regions[:2]))
	r2.Close()
	r3 := openForTest(t, dir, buildImage(t, regions[:2]))
	defer r3.Close()
	if got := r3.Tracked().Store().Len(); got != len(wantPairsRegions(wantPairs)) {
		t.Errorf("seed overrode durable state: %d regions", got)
	}
}

// wantPairsRegions derives the region set size from an all-pairs list.
func wantPairsRegions(pairs []core.PairRelation) map[string]bool {
	set := make(map[string]bool)
	for _, p := range pairs {
		set[p.Primary] = true
		set[p.Reference] = true
	}
	return set
}

// TestSnapshotRotation checks Snapshot advances the generation, truncates
// the log, retires the previous generation's files, and that recovery from
// the rotated state replays nothing.
func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	gen := workload.New(11)
	s := openForTest(t, dir, buildImage(t, gen.Scatter(6, 8)))
	if err := s.AddRegion("extra", "Extra", "", gen.Scatter(1, 8)[0]); err != nil {
		t.Fatal(err)
	}
	info, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 2 || info.Regions != 7 || info.Bytes <= 0 {
		t.Fatalf("unexpected snapshot info: %+v", info)
	}
	wantPairs, _ := statePairs(t, s.Tracked())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{"snapshot-00000002.bin", "snapshot-00000002.xml", "wal-00000002.log"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("directory after rotation: %v, want %v", names, want)
	}

	r := openForTest(t, dir, nil)
	defer r.Close()
	st := r.Status()
	if st.Seq != 2 || st.ReplayedRecords != 0 || !st.SeededFromSnapshot {
		t.Fatalf("recovery after rotation: %+v", st)
	}
	gotPairs, _ := statePairs(t, r.Tracked())
	if !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Fatal("state diverged across rotation + recovery")
	}
}

// TestRecoveryDiscardsTornTail truncates and bit-flips the live log; in
// every case recovery must succeed with a prefix of the edits and report
// the corruption, never fail.
func TestRecoveryDiscardsTornTail(t *testing.T) {
	gen := workload.New(13)
	base := gen.Scatter(5, 8)
	adds := gen.Scatter(4, 8)

	build := func(t *testing.T) (string, []byte) {
		dir := t.TempDir()
		s := openForTest(t, dir, buildImage(t, base))
		for i, g := range adds {
			if err := s.AddRegion(fmt.Sprintf("add%d", i), "A", "", g); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		logPath := filepath.Join(dir, "wal-00000001.log")
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		return dir, data
	}

	t.Run("truncated", func(t *testing.T) {
		dir, data := build(t)
		logPath := filepath.Join(dir, "wal-00000001.log")
		if err := os.WriteFile(logPath, data[:len(data)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		r := openForTest(t, dir, nil)
		defer r.Close()
		st := r.Status()
		if st.Corruption == "" {
			t.Error("torn tail not reported")
		}
		if st.ReplayedRecords != len(adds)-1 {
			t.Errorf("replayed %d, want %d", st.ReplayedRecords, len(adds)-1)
		}
		// The truncated log must be appendable again after recovery.
		if err := r.AddRegion("post", "P", "", adds[0]); err != nil {
			t.Fatalf("append after torn-tail recovery: %v", err)
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		dir, data := build(t)
		logPath := filepath.Join(dir, "wal-00000001.log")
		flipped := bytes.Clone(data)
		flipped[len(flipped)-5] ^= 0x10
		if err := os.WriteFile(logPath, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		r := openForTest(t, dir, nil)
		defer r.Close()
		st := r.Status()
		if st.Corruption == "" {
			t.Error("bit flip not reported")
		}
		if st.ReplayedRecords >= len(adds) {
			t.Errorf("replayed %d records from a damaged log of %d", st.ReplayedRecords, len(adds))
		}
	})
}

// TestRecoverySkipsUnreadableSnapshot plants a garbage higher-seq snapshot;
// recovery must fall back to the intact generation, then clean up.
func TestRecoverySkipsUnreadableSnapshot(t *testing.T) {
	dir := t.TempDir()
	gen := workload.New(17)
	s := openForTest(t, dir, buildImage(t, gen.Scatter(5, 8)))
	wantPairs, _ := statePairs(t, s.Tracked())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A rotation that crashed after renaming the snapshot but before
	// anything else: half-written XML at a higher generation.
	bad := filepath.Join(dir, "snapshot-00000002.xml")
	if err := os.WriteFile(bad, []byte("<Image name=\"x\""), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "snapshot-12345.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := openForTest(t, dir, nil)
	defer r.Close()
	if got := r.Status().Seq; got != 1 {
		t.Fatalf("recovered generation %d, want fallback to 1", got)
	}
	gotPairs, _ := statePairs(t, r.Tracked())
	if !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Fatal("fallback recovery lost state")
	}
	for _, stale := range []string{bad, tmp} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Errorf("stale file survived recovery: %s", stale)
		}
	}
}

// TestOpenErrors covers the refusal cases: no snapshot and no seed, and a
// directory whose only snapshot is unreadable.
func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir(), nil, Options{}); err == nil {
		t.Error("Open of an empty dir without a seed succeeded")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot-00000001.xml"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil, Options{}); err == nil {
		t.Error("Open with only an unreadable snapshot succeeded")
	}
}

// TestSnapshotRefusesEmptyWorld: the DTD requires at least one region, so
// snapshotting an emptied configuration must fail cleanly.
func TestSnapshotRefusesEmptyWorld(t *testing.T) {
	gen := workload.New(19)
	s := openForTest(t, t.TempDir(), buildImage(t, gen.Scatter(1, 8)))
	defer s.Close()
	if err := s.RemoveRegion("r000"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot of an empty configuration succeeded")
	}
}

// TestSeededRecoveryBeatsRecompute is the acceptance benchmark of the
// persistence subsystem: recovering a 500-region world from snapshot +
// short WAL tail must be measurably faster than loading the same XML and
// recomputing all pairs from scratch, because the snapshot carries the
// materialised relations. Cluster geometry defeats the MBB fast paths, so
// the recompute is honest work.
func TestSeededRecoveryBeatsRecompute(t *testing.T) {
	if testing.Short() {
		t.Skip("perf comparison skipped in -short")
	}
	const n = 500
	gen := workload.New(23)
	// One dense cluster of many-edged polygons: the MBB fast paths prune
	// almost nothing, so the all-pairs recompute does real
	// polygon-clipping work on every one of the ~250k pairs.
	regions := gen.Cluster(n, 1, 96)
	edits := gen.Scatter(10, 12)

	dir := t.TempDir()
	s, err := Open(dir, buildImage(t, regions), Options{Pct: true, Sync: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range edits {
		if err := s.AddRegion(fmt.Sprintf("edit%03d", i), "E", "", g); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(dir, "snapshot-00000001.xml"))
	if err != nil {
		t.Fatal(err)
	}

	// Seeded path: what Open does — XML load, seeded store, WAL replay.
	start := time.Now()
	r, err := Open(dir, nil, Options{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	seededElapsed := time.Since(start)
	defer r.Close()
	st := r.Status()
	if !st.SeededFromSnapshot {
		t.Fatal("500-region recovery did not take the seeded path")
	}
	if st.ReplayedRecords != len(edits) {
		t.Fatalf("replayed %d records, want %d", st.ReplayedRecords, len(edits))
	}
	if st.RecoveryNs <= 0 {
		t.Fatal("recovery_ns not reported")
	}

	// Recompute path: same XML bytes, full all-pairs computation.
	start = time.Now()
	img, err := config.Parse(snapBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := config.Track(img, core.StoreOptions{Pct: true}); err != nil {
		t.Fatal(err)
	}
	recomputeElapsed := time.Since(start)

	t.Logf("seeded recovery %v (replayed %d edits) vs full recompute %v",
		seededElapsed, st.ReplayedRecords, recomputeElapsed)
	if seededElapsed >= recomputeElapsed {
		t.Errorf("seeded recovery (%v) not faster than full recompute (%v)", seededElapsed, recomputeElapsed)
	}

	// And it is not just faster — it is the same answer. Rotate so the
	// recovered state (snapshot + replayed edits) lands in one document,
	// and recompute that from scratch.
	info, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	finalBytes, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	finalImg, err := config.Parse(finalBytes)
	if err != nil {
		t.Fatal(err)
	}
	trFinal, err := config.Track(finalImg, core.StoreOptions{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	full := trFinal.Store().Pairs()
	seeded := r.Tracked().Store().Pairs()
	if len(full) != len(seeded) {
		t.Fatalf("pair count differs: %d vs %d", len(full), len(seeded))
	}
	for i := range full {
		if full[i] != seeded[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, full[i], seeded[i])
		}
	}
}
