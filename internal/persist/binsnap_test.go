package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cardirect/internal/wal"
	"cardirect/internal/workload"
)

// snapshotFiles builds a store with percent matrices, closes it and returns
// the directory plus the generation-1 snapshot paths in both formats.
func snapshotFiles(t *testing.T, n int) (dir, xmlPath, binPath string) {
	t.Helper()
	dir = t.TempDir()
	gen := workload.New(29)
	s := openForTest(t, dir, buildImage(t, gen.Scatter(n, 10)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, snapshotName(1)), filepath.Join(dir, binSnapshotName(1))
}

// TestBinarySnapshotRoundTrip asserts the binary format is full-fidelity:
// the document decoded from snapshot-<seq>.bin is deep-equal to the one
// parsed from snapshot-<seq>.xml — region ids, names, colors, polygon ids,
// bit-exact vertices, and verbatim relation type and pct strings.
func TestBinarySnapshotRoundTrip(t *testing.T) {
	_, xmlPath, binPath := snapshotFiles(t, 8)
	fromXML, err := loadSnapshot(xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := loadBinarySnapshot(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromBin.Relations) == 0 {
		t.Fatal("snapshot carries no materialised relations; round-trip test is vacuous")
	}
	if !reflect.DeepEqual(fromBin, fromXML) {
		t.Errorf("binary snapshot decodes differently from the XML:\nbin %+v\nxml %+v", fromBin, fromXML)
	}
	// And a pure in-memory round-trip is the identity.
	again, err := decodeBinarySnapshot(encodeBinarySnapshot(fromBin))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, fromBin) {
		t.Error("encode/decode round-trip is not the identity")
	}
}

// TestBinarySnapshotFaultInjection corrupts the binary snapshot at
// arbitrary offsets — truncations and single-bit flips across the header,
// payload and trailer — and asserts every damaged file is rejected by the
// decoder (the CRC detects all single-bit errors) rather than decoded into
// a wrong document.
func TestBinarySnapshotFaultInjection(t *testing.T) {
	_, _, binPath := snapshotFiles(t, 5)
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeBinarySnapshot(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	for _, cut := range []int{0, 1, binHeaderLen - 1, binHeaderLen, len(data) / 2, len(data) - 1} {
		if _, err := decodeBinarySnapshot(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", cut)
		}
	}
	// Bit flips at offsets spread across the file: magic, version, flags,
	// length, payload start/middle/end, CRC.
	offsets := []int{0, 4, 6, 8, binHeaderLen, binHeaderLen + 1, len(data) / 3,
		len(data) / 2, len(data) - 5, len(data) - 4, len(data) - 1}
	for _, off := range offsets {
		for _, bit := range []byte{0x01, 0x80} {
			flipped := bytes.Clone(data)
			flipped[off] ^= bit
			if _, err := decodeBinarySnapshot(flipped); err == nil {
				t.Errorf("bit flip %#02x at offset %d decoded successfully", bit, off)
			}
		}
	}
}

// TestRecoveryPrefersBinaryFallsBackToXML pins the recovery preference
// order: an intact binary snapshot is loaded and reported, a corrupt or
// missing one falls back to the XML of the same generation with identical
// recovered state, and the admin status surfaces which format won.
func TestRecoveryPrefersBinaryFallsBackToXML(t *testing.T) {
	dir, _, binPath := snapshotFiles(t, 6)

	r := openForTest(t, dir, nil)
	if got := r.Status().RecoveredFrom; got != "binary" {
		t.Errorf("recovered_from = %q, want binary", got)
	}
	wantPairs, wantPcts := statePairs(t, r.Tracked())
	r.Close()

	// Bit-flip the binary payload: recovery must reject it on CRC and fall
	// back to the XML, losing nothing.
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Clone(data)
	flipped[len(flipped)/2] ^= 0x04
	if err := os.WriteFile(binPath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := openForTest(t, dir, nil)
	if got := r2.Status().RecoveredFrom; got != "xml" {
		t.Errorf("recovered_from after corruption = %q, want xml", got)
	}
	gotPairs, gotPcts := statePairs(t, r2.Tracked())
	if !reflect.DeepEqual(gotPairs, wantPairs) || len(gotPcts) != len(wantPcts) {
		t.Error("XML fallback recovered different state than the binary path")
	}
	r2.Close()

	// A directory with no binary at all (pre-binary-format data dirs)
	// recovers from XML alone.
	if err := os.Remove(binPath); err != nil {
		t.Fatal(err)
	}
	r3 := openForTest(t, dir, nil)
	defer r3.Close()
	if got := r3.Status().RecoveredFrom; got != "xml" {
		t.Errorf("recovered_from without binary = %q, want xml", got)
	}
	gotPairs, _ = statePairs(t, r3.Tracked())
	if !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Error("XML-only recovery lost state")
	}
}

// TestStaleTempSweep plants leftovers of a crashed rotation — a snapshot
// temp file and an orphaned higher-generation binary whose XML never landed
// — and asserts Open removes both while leaving every live generation file
// untouched.
func TestStaleTempSweep(t *testing.T) {
	dir, xmlPath, binPath := snapshotFiles(t, 4)
	tmp := filepath.Join(dir, "snapshot-1234567.tmp")
	if err := os.WriteFile(tmp, []byte("partial write from a crashed rotation"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A rotation that crashed between installing the .bin and the .xml:
	// generation 2 does not exist (scanSnapshots keys off the XML), so its
	// orphaned binary must be swept.
	orphan := filepath.Join(dir, binSnapshotName(2))
	if err := os.WriteFile(orphan, []byte("orphaned binary snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := openForTest(t, dir, nil)
	defer r.Close()
	for _, stale := range []string{tmp, orphan} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Errorf("stale file survived recovery: %s", stale)
		}
	}
	for _, live := range []string{xmlPath, binPath, filepath.Join(dir, walName(1))} {
		if _, err := os.Stat(live); err != nil {
			t.Errorf("live generation file disturbed: %s: %v", live, err)
		}
	}
	if got := r.Status().Seq; got != 1 {
		t.Errorf("seq = %d, want 1", got)
	}
}

// TestBinaryRecoveryBeatsXML is the acceptance gate of the binary snapshot
// format, analogous to TestSeededRecoveryBeatsRecompute one layer down:
// end-to-end recovery of a 500-region world from the binary snapshot must
// be at least 2x faster than the same recovery forced through the XML,
// because decoding ~250k XML relation elements dominates the XML path.
func TestBinaryRecoveryBeatsXML(t *testing.T) {
	if testing.Short() {
		t.Skip("perf comparison skipped in -short")
	}
	const n = 500
	gen := workload.New(31)
	regions := gen.Cluster(n, 1, 96)
	dir := t.TempDir()
	s, err := Open(dir, buildImage(t, regions), Options{Pct: true, Sync: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rBin, err := Open(dir, nil, Options{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	binElapsed := time.Since(start)
	if got := rBin.Status().RecoveredFrom; got != "binary" {
		t.Fatalf("recovered_from = %q, want binary", got)
	}
	wantPairs := rBin.Tracked().Store().Pairs()
	rBin.Close()

	// Force the XML path by removing the binary file.
	if err := os.Remove(filepath.Join(dir, binSnapshotName(1))); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	rXML, err := Open(dir, nil, Options{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	xmlElapsed := time.Since(start)
	defer rXML.Close()
	if got := rXML.Status().RecoveredFrom; got != "xml" {
		t.Fatalf("recovered_from = %q, want xml", got)
	}
	if !reflect.DeepEqual(rXML.Tracked().Store().Pairs(), wantPairs) {
		t.Fatal("XML and binary recovery disagree on the relation matrix")
	}

	t.Logf("binary recovery %v vs XML recovery %v (%.2fx)",
		binElapsed, xmlElapsed, float64(xmlElapsed)/float64(binElapsed))
	if xmlElapsed < 2*binElapsed {
		t.Errorf("binary recovery (%v) not 2x faster than XML (%v)", binElapsed, xmlElapsed)
	}
}

// TestBinarySnapshotVersionGate: a future-versioned file must be refused
// (and recovery falls back to XML) rather than misdecoded.
func TestBinarySnapshotVersionGate(t *testing.T) {
	_, _, binPath := snapshotFiles(t, 3)
	data, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version and re-checksum so only the version gate trips.
	bumped := bytes.Clone(data)
	bumped[4] = binVersion + 1
	recrc := encodeWithCRC(bumped)
	if _, err := decodeBinarySnapshot(recrc); err == nil {
		t.Error("future format version decoded successfully")
	}
}

// encodeWithCRC recomputes the trailing CRC over an edited frame, so tests
// can trip exactly one validation gate at a time.
func encodeWithCRC(frame []byte) []byte {
	out := bytes.Clone(frame)
	crc := crc32.Checksum(out[4:len(out)-4], castagnoli)
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc)
	return out
}
