// Package persist is the durability subsystem of the cardirect service: it
// owns a data directory holding the paper's XML configuration format as
// point-in-time snapshots plus a write-ahead log of the region edits since
// the last snapshot, and recovers the tracked store from them after a
// crash or restart.
//
// Data directory layout:
//
//	snapshot-<seq>.xml   full configuration (regions + materialised
//	                     relations with pct), written by the DTD writer in
//	                     sorted-id order via temp file + atomic rename
//	snapshot-<seq>.bin   the same document in the checksummed binary
//	                     format (see binsnap.go), which recovery prefers
//	                     because it decodes much faster than the XML
//	wal-<seq>.log        region edits applied after snapshot <seq>
//	                     (see internal/wal for the framing)
//
// Exactly one (snapshot, wal) generation is live at a time; Snapshot()
// writes generation seq+1 and removes generation seq, which truncates the
// log. Recovery loads the newest readable snapshot — the binary file when
// it is present and passes its CRC, the XML otherwise — seeds the relation
// store from its materialised relations (no all-pairs recompute — see
// config.TrackSeeded), and replays the WAL tail through the tracked
// store's edit methods, so the delta engine rebuilds exactly the cached
// pairs the edits touched. A torn or bit-flipped WAL tail is detected by
// the log's CRC framing and discarded with a logged warning; it is never a
// startup failure.
//
// Edit ordering is apply-then-log: an edit is validated and applied to the
// in-memory store first, appended to the WAL second, and acknowledged to
// the caller last. Under wal.SyncAlways an acknowledged edit is therefore
// on stable storage; a crash between apply and ack loses at most that
// unacknowledged edit, so recovery always yields a prefix of the
// acknowledged edit stream.
package persist

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/wal"
)

// ErrEmptyWorld is returned by Snapshot when the configuration holds no
// regions: the paper's DTD requires Region+, so an empty world has no
// snapshot representation.
var ErrEmptyWorld = errors.New("persist: cannot snapshot an empty configuration (the DTD requires Region+)")

// Options configures a Store.
type Options struct {
	// Sync is the WAL fsync discipline; the zero value is wal.SyncAlways.
	Sync wal.Options
	// Workers is the worker-pool size for the relation store (initial
	// build, replay deltas); values ≤ 0 mean GOMAXPROCS.
	Workers int
	// Pct maintains percent matrices alongside the qualitative relations.
	Pct bool
	// Logger receives recovery and corruption warnings; nil means
	// slog.Default().
	Logger *slog.Logger
}

// Store owns a data directory and the tracked configuration recovered from
// it. All edits must flow through the Store's edit methods so they are
// write-ahead logged; reads go through Tracked() as usual.
type Store struct {
	mu  sync.Mutex
	dir string
	opt Options
	log *slog.Logger

	tr  *config.Tracked
	w   *wal.Writer
	seq uint64

	// walCum accumulates metrics of rotated-out log writers, so Status
	// reports totals across the store's lifetime.
	walCum wal.Metrics

	recoveryNs    int64
	replayed      int
	skipped       int
	seeded        bool
	recoveredFrom string
	corruption    string
	lastSnap   time.Time
	err        error
}

// Status is a point-in-time view of the store for the admin surface.
type Status struct {
	Dir     string `json:"dir"`
	Seq     uint64 `json:"seq"`
	Regions int    `json:"regions"`
	// WAL are the cumulative log-writer counters (records, bytes, fsyncs)
	// across all generations since Open.
	WAL wal.Metrics `json:"wal"`
	// RecoveryNs is the wall time Open spent loading the snapshot, seeding
	// the store and replaying the WAL tail.
	RecoveryNs int64 `json:"recovery_ns"`
	// ReplayedRecords counts WAL records applied during recovery.
	ReplayedRecords int `json:"replayed_records"`
	// SkippedRecords counts WAL records that failed to apply during
	// recovery and were dropped with a warning.
	SkippedRecords int `json:"skipped_records"`
	// SeededFromSnapshot reports whether recovery filled the relation
	// store from the snapshot's materialised relations (true) or had to
	// recompute all pairs (false; also false for a fresh initialisation).
	SeededFromSnapshot bool `json:"seeded_from_snapshot"`
	// RecoveredFrom names the snapshot format recovery loaded: "binary"
	// when the checksummed binary file was used, "xml" when recovery fell
	// back to (or only found) the XML, "" for a fresh initialisation.
	RecoveredFrom string `json:"recovered_from,omitempty"`
	// Corruption describes a discarded WAL tail ("" when the log was
	// intact).
	Corruption string `json:"corruption,omitempty"`
	// LastSnapshot is when the live snapshot generation was written.
	LastSnapshot time.Time `json:"last_snapshot"`
	// Err is a latched write failure ("" when healthy): once the WAL
	// cannot be appended to, every further edit is refused.
	Err string `json:"err,omitempty"`
}

// SnapshotInfo describes one Snapshot() rotation.
type SnapshotInfo struct {
	Seq        uint64 `json:"seq"`
	Path       string `json:"path"`
	Bytes      int64  `json:"bytes"`
	Regions    int    `json:"regions"`
	DurationNs int64  `json:"duration_ns"`
}

func snapshotName(seq uint64) string { return fmt.Sprintf("snapshot-%08d.xml", seq) }
func walName(seq uint64) string      { return fmt.Sprintf("wal-%08d.log", seq) }

// Open recovers a store from dir, or initialises dir from seed when it
// holds no snapshot yet. A non-nil seed alongside an initialised directory
// is ignored (with a logged note): the durable state wins, so a service
// restarted with its bootstrap flags recovers instead of resetting.
func Open(dir string, seed *config.Image, opt Options) (*Store, error) {
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating data dir: %w", err)
	}
	s := &Store{dir: dir, opt: opt, log: opt.Logger}
	seqs, err := s.scanSnapshots()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if len(seqs) == 0 {
		if seed == nil {
			return nil, fmt.Errorf("persist: data dir %s holds no snapshot and no seed configuration was given", dir)
		}
		if err := s.initialise(seed); err != nil {
			return nil, err
		}
	} else {
		if seed != nil {
			s.log.Info("persist: data dir already initialised; ignoring seed configuration", "dir", dir)
		}
		if err := s.recover(seqs); err != nil {
			return nil, err
		}
	}
	s.recoveryNs = time.Since(start).Nanoseconds()
	s.removeStale()
	return s, nil
}

// scanSnapshots lists the snapshot generations present in the directory,
// ascending.
func (s *Store) scanSnapshots() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: reading data dir: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if n, _ := fmt.Sscanf(e.Name(), "snapshot-%d.xml", &seq); n == 1 && e.Name() == snapshotName(seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// initialise writes generation 1 from the seed document: full relation
// computation, snapshot, fresh log.
func (s *Store) initialise(seed *config.Image) error {
	tr, err := config.Track(seed, core.StoreOptions{Workers: s.opt.Workers, Pct: s.opt.Pct})
	if err != nil {
		return fmt.Errorf("persist: building store from seed: %w", err)
	}
	s.tr = tr
	s.seq = 1
	if err := s.writeSnapshotFile(s.seq); err != nil {
		return err
	}
	w, err := wal.Create(filepath.Join(s.dir, walName(s.seq)), s.opt.Sync)
	if err != nil {
		return fmt.Errorf("persist: creating log: %w", err)
	}
	s.w = w
	if err := s.syncDir(); err != nil {
		return err
	}
	s.lastSnap = time.Now()
	return nil
}

// recover loads the newest readable snapshot generation and replays its WAL
// tail. Unreadable snapshots (half-written by a crashed rotation, or
// damaged on disk) fall back to the previous generation with a warning.
func (s *Store) recover(seqs []uint64) error {
	var img *config.Image
	for i := len(seqs) - 1; i >= 0; i-- {
		seq := seqs[i]
		// Prefer the binary snapshot: same document, no XML decode. A
		// missing or corrupt binary (torn rotation, bit rot caught by the
		// CRC) falls back to the XML of the same generation; a generation
		// with neither readable falls back to the previous generation.
		binPath := filepath.Join(s.dir, binSnapshotName(seq))
		if loaded, err := loadBinarySnapshot(binPath); err == nil {
			img = loaded
			s.seq = seq
			s.recoveredFrom = "binary"
			break
		} else if !os.IsNotExist(err) {
			s.log.Warn("persist: binary snapshot unreadable; falling back to XML", "path", binPath, "err", err)
		}
		path := filepath.Join(s.dir, snapshotName(seq))
		loaded, err := loadSnapshot(path)
		if err != nil {
			s.log.Warn("persist: skipping unreadable snapshot", "path", path, "err", err)
			continue
		}
		img = loaded
		s.seq = seq
		s.recoveredFrom = "xml"
		break
	}
	if img == nil {
		return fmt.Errorf("persist: no readable snapshot in %s (%d candidates)", s.dir, len(seqs))
	}

	tr, seeded, err := config.TrackSeeded(img, core.StoreOptions{Workers: s.opt.Workers, Pct: s.opt.Pct})
	if err != nil {
		return fmt.Errorf("persist: building store from %s: %w", snapshotName(s.seq), err)
	}
	s.tr = tr
	s.seeded = seeded
	if !seeded {
		s.log.Warn("persist: snapshot relations unusable as seed; recomputed all pairs", "snapshot", snapshotName(s.seq))
	}

	walPath := filepath.Join(s.dir, walName(s.seq))
	recs, valid, corr, err := wal.ReplayFile(walPath)
	if err != nil {
		return fmt.Errorf("persist: reading log: %w", err)
	}
	if corr != nil {
		s.corruption = corr.String()
		s.log.Warn("persist: discarding torn log tail", "log", walName(s.seq), "at", corr.String(), "intact_records", len(recs))
	}
	// Replay consecutive OpAdd runs through the bulk path: a log written by
	// a bulk ingest replays with one batched recomputation instead of one
	// 2(n−1)-pair delta per record. A failing run falls back to per-record
	// replay so a single bad record still only loses itself.
	for i := 0; i < len(recs); {
		j := i
		for j < len(recs) && recs[j].Op == wal.OpAdd {
			j++
		}
		if j-i > 1 {
			bulk := make([]config.BulkRegion, j-i)
			for k, rec := range recs[i:j] {
				bulk[k] = config.BulkRegion{ID: rec.ID, Name: rec.Name, Color: rec.Color, Geometry: rec.Geometry}
			}
			if err := s.tr.BulkAddRegions(bulk); err == nil {
				s.replayed += j - i
				i = j
				continue
			}
		}
		if j == i {
			j++ // single non-add record
		}
		for _, rec := range recs[i:j] {
			if err := s.apply(rec); err != nil {
				// A record that does not apply cannot arise from our own
				// apply-then-log ordering; tolerate it anyway (version skew,
				// a hand-edited directory) the same way as a torn tail: keep
				// what is consistent, warn, carry on.
				s.skipped++
				s.log.Warn("persist: skipping unreplayable record", "op", rec.Op.String(), "id", rec.ID, "err", err)
				continue
			}
			s.replayed++
		}
		i = j
	}
	if err := s.tr.Err(); err != nil {
		return fmt.Errorf("persist: tracked store diverged during replay: %w", err)
	}
	w, err := wal.OpenAppend(walPath, valid, s.opt.Sync)
	if err != nil {
		return fmt.Errorf("persist: opening log for append: %w", err)
	}
	s.w = w
	if st, err := os.Stat(filepath.Join(s.dir, snapshotName(s.seq))); err == nil {
		s.lastSnap = st.ModTime()
	}
	return nil
}

// apply routes one log record through the tracked store's edit methods —
// the same delta path live edits take.
func (s *Store) apply(rec wal.Record) error {
	switch rec.Op {
	case wal.OpAdd:
		return s.tr.AddRegion(rec.ID, rec.Name, rec.Color, rec.Geometry)
	case wal.OpRemove:
		return s.tr.RemoveRegion(rec.ID)
	case wal.OpRename:
		return s.tr.RenameRegion(rec.ID, rec.NewID)
	case wal.OpSetGeometry:
		return s.tr.SetRegionGeometry(rec.ID, rec.Geometry)
	default:
		return fmt.Errorf("persist: unknown op %d", rec.Op)
	}
}

// loadSnapshot parses and validates one snapshot file.
func loadSnapshot(path string) (*config.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	img, err := config.Load(f)
	if err != nil {
		return nil, err
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// Tracked returns the recovered tracked configuration. Do not edit it
// directly — route edits through the Store so they are logged.
func (s *Store) Tracked() *config.Tracked { return s.tr }

// Dir returns the owned data directory.
func (s *Store) Dir() string { return s.dir }

// logged wraps one edit: apply to the tracked store, then append to the
// WAL, then return (= acknowledge). A WAL append failure is latched — the
// in-memory state is ahead of the durable state from that point on, so
// every subsequent edit is refused until the operator restarts the
// service.
func (s *Store) logged(rec wal.Record, apply func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return fmt.Errorf("persist: store failed earlier: %w", s.err)
	}
	if err := apply(); err != nil {
		return err
	}
	if err := s.w.Append(rec); err != nil {
		s.err = err
		s.log.Error("persist: WAL append failed; refusing further edits", "err", err)
		return fmt.Errorf("persist: edit applied in memory but not logged: %w", err)
	}
	return nil
}

// AddRegion applies and logs a region addition.
func (s *Store) AddRegion(id, name, color string, g geom.Region) error {
	return s.logged(wal.Record{Op: wal.OpAdd, ID: id, Name: name, Color: color, Geometry: g},
		func() error { return s.tr.AddRegion(id, name, color, g) })
}

// RemoveRegion applies and logs a region removal.
func (s *Store) RemoveRegion(id string) error {
	return s.logged(wal.Record{Op: wal.OpRemove, ID: id},
		func() error { return s.tr.RemoveRegion(id) })
}

// RenameRegion applies and logs a region rename.
func (s *Store) RenameRegion(oldID, newID string) error {
	return s.logged(wal.Record{Op: wal.OpRename, ID: oldID, NewID: newID},
		func() error { return s.tr.RenameRegion(oldID, newID) })
}

// SetRegionGeometry applies and logs a geometry replacement.
func (s *Store) SetRegionGeometry(id string, g geom.Region) error {
	return s.logged(wal.Record{Op: wal.OpSetGeometry, ID: id, Geometry: g},
		func() error { return s.tr.SetRegionGeometry(id, g) })
}

// BulkAddRegions applies and logs a streamed bulk ingest as one edit: the
// tracked store advances through a single batched recomputation
// (config.Tracked.BulkAddRegions), and the WAL receives the whole batch as
// one contiguous append with one fsync (wal.Writer.AppendBatch). The
// apply-then-log ordering and the latched-failure contract match the
// per-region edit methods.
func (s *Store) BulkAddRegions(regions []config.BulkRegion) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return fmt.Errorf("persist: store failed earlier: %w", s.err)
	}
	if len(regions) == 0 {
		return nil
	}
	if err := s.tr.BulkAddRegions(regions); err != nil {
		return err
	}
	recs := make([]wal.Record, len(regions))
	for i, r := range regions {
		recs[i] = wal.Record{Op: wal.OpAdd, ID: r.ID, Name: r.Name, Color: r.Color, Geometry: r.Geometry}
	}
	if err := s.w.AppendBatch(recs); err != nil {
		s.err = err
		s.log.Error("persist: WAL batch append failed; refusing further edits", "err", err)
		return fmt.Errorf("persist: bulk ingest applied in memory but not logged: %w", err)
	}
	return nil
}

// Snapshot writes the next snapshot generation and truncates the log:
// materialise the cached relations into the document, write
// snapshot-<seq+1>.xml via temp file + fsync + atomic rename, start
// wal-<seq+1>.log, then delete generation seq. A crash at any point leaves
// either generation seq intact or generation seq+1 complete — never a
// state recovery cannot load.
func (s *Store) Snapshot() (SnapshotInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return SnapshotInfo{}, fmt.Errorf("persist: store failed earlier: %w", s.err)
	}
	start := time.Now()
	next := s.seq + 1
	if err := s.writeSnapshotFile(next); err != nil {
		return SnapshotInfo{}, err
	}
	w, err := wal.Create(filepath.Join(s.dir, walName(next)), s.opt.Sync)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("persist: creating log: %w", err)
	}
	if err := s.syncDir(); err != nil {
		w.Close()
		return SnapshotInfo{}, err
	}
	// The new generation is durable; retire the old one.
	if err := s.w.Close(); err != nil {
		s.log.Warn("persist: closing retired log", "err", err)
	}
	s.walCum.Add(s.w.Metrics())
	s.w = w
	prev := s.seq
	s.seq = next
	s.lastSnap = time.Now()
	s.removeGeneration(prev)
	path := filepath.Join(s.dir, snapshotName(next))
	info := SnapshotInfo{Seq: next, Path: path, DurationNs: time.Since(start).Nanoseconds()}
	if st, err := os.Stat(path); err == nil {
		info.Bytes = st.Size()
	}
	info.Regions = s.tr.Store().Len()
	return info, nil
}

// writeSnapshotFile materialises the tracked relations and writes the
// document as snapshot-<seq> in both formats, each atomically (temp file,
// fsync, rename). The binary file is installed first and the XML second:
// scanSnapshots keys generations off the XML name, so a generation only
// becomes visible once both files are in place, and a crash between the two
// renames leaves an orphaned .bin that the stale sweep removes.
func (s *Store) writeSnapshotFile(seq uint64) error {
	if s.tr.Store().Len() == 0 {
		return ErrEmptyWorld
	}
	var data, bin []byte
	err := s.tr.WithMaterialized(s.opt.Pct, func(img *config.Image) error {
		var err error
		data, err = img.Bytes()
		bin = encodeBinarySnapshot(img)
		return err
	})
	if err != nil {
		return fmt.Errorf("persist: encoding snapshot: %w", err)
	}
	if err := s.writeFileAtomic(binSnapshotName(seq), bin); err != nil {
		return err
	}
	return s.writeFileAtomic(snapshotName(seq), data)
}

// writeFileAtomic installs data as name in the data directory via temp
// file + fsync + rename.
func (s *Store) writeFileAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: creating snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("persist: installing snapshot: %w", err)
	}
	return nil
}

// syncDir fsyncs the data directory, making renames and file creations
// durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("persist: opening data dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: syncing data dir: %w", err)
	}
	return nil
}

// removeGeneration deletes generation seq's snapshots (both formats) and
// log.
func (s *Store) removeGeneration(seq uint64) {
	for _, name := range []string{snapshotName(seq), binSnapshotName(seq), walName(seq)} {
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
			s.log.Warn("persist: removing retired file", "file", name, "err", err)
		}
	}
}

// removeStale clears leftovers of interrupted rotations after recovery:
// snapshot temp files and any generation other than the live one.
func (s *Store) removeStale() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		keep := name == snapshotName(s.seq) || name == binSnapshotName(s.seq) || name == walName(s.seq)
		var seq uint64
		isSnap, _ := fmt.Sscanf(name, "snapshot-%d.xml", &seq)
		isBin, _ := fmt.Sscanf(name, "snapshot-%d.bin", &seq)
		isWal, _ := fmt.Sscanf(name, "wal-%d.log", &seq)
		isTmp := len(name) > 4 && name[len(name)-4:] == ".tmp"
		if keep || (isSnap == 0 && isBin == 0 && isWal == 0 && !isTmp) {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
			s.log.Warn("persist: removing stale file", "file", name, "err", err)
		} else {
			s.log.Info("persist: removed stale file", "file", name)
		}
	}
}

// Status reports the store's durability counters.
func (s *Store) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Dir:                s.dir,
		Seq:                s.seq,
		Regions:            s.tr.Store().Len(),
		WAL:                s.walCum,
		RecoveryNs:         s.recoveryNs,
		ReplayedRecords:    s.replayed,
		SkippedRecords:     s.skipped,
		SeededFromSnapshot: s.seeded,
		RecoveredFrom:      s.recoveredFrom,
		Corruption:         s.corruption,
		LastSnapshot:       s.lastSnap,
	}
	if s.w != nil {
		st.WAL.Add(s.w.Metrics())
	}
	if s.err != nil {
		st.Err = s.err.Error()
	}
	return st
}

// Close flushes and closes the log. The tracked store stays readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	s.walCum.Add(s.w.Metrics())
	s.w = nil
	if s.err == nil && err != nil {
		s.err = err
	} else if s.err == nil {
		s.err = fmt.Errorf("persist: store closed")
	}
	return err
}
