package reason

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassifyIntervalsAllThirteen(t *testing.T) {
	for r := AllenRel(0); r < NumAllen; r++ {
		a := allenRepr[r][0]
		b := allenRepr[r][1]
		if got := ClassifyIntervals(a.lo, a.hi, b.lo, b.hi); got != r {
			t.Errorf("representative of %v classified as %v", r, got)
		}
	}
}

func TestAllenConverse(t *testing.T) {
	for r := AllenRel(0); r < NumAllen; r++ {
		// Converse is an involution.
		if r.Converse().Converse() != r {
			t.Errorf("converse not involutive for %v", r)
		}
		// Classifying the swapped representatives gives the converse.
		a := allenRepr[r][0]
		b := allenRepr[r][1]
		if got := ClassifyIntervals(b.lo, b.hi, a.lo, a.hi); got != r.Converse() {
			t.Errorf("swap of %v classified as %v, want %v", r, got, r.Converse())
		}
	}
	if AllenEquals.Converse() != AllenEquals {
		t.Error("equals must be self-converse")
	}
}

func TestAllenSetOps(t *testing.T) {
	s := AllenOf(AllenBefore, AllenMeets)
	if !s.Has(AllenBefore) || s.Has(AllenAfter) {
		t.Error("membership wrong")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if AllenAll.Len() != 13 {
		t.Errorf("|⊤| = %d", AllenAll.Len())
	}
	if got := s.Converse(); !got.Has(AllenAfter) || !got.Has(AllenMetBy) || got.Len() != 2 {
		t.Errorf("Converse = %v", got)
	}
	if s.String() != "before|meets" {
		t.Errorf("String = %q", s.String())
	}
	if AllenSet(0).String() != "⊥" || AllenAll.String() != "⊤" {
		t.Error("special strings wrong")
	}
}

func TestCompositionIdentities(t *testing.T) {
	// equals is the identity of composition.
	for r := AllenRel(0); r < NumAllen; r++ {
		if got := Compose(AllenEquals, r); got != AllenOf(r) {
			t.Errorf("equals∘%v = %v", r, got)
		}
		if got := Compose(r, AllenEquals); got != AllenOf(r) {
			t.Errorf("%v∘equals = %v", r, got)
		}
	}
	// Classic entries.
	if got := Compose(AllenBefore, AllenBefore); got != AllenOf(AllenBefore) {
		t.Errorf("before∘before = %v", got)
	}
	if got := Compose(AllenMeets, AllenMeets); got != AllenOf(AllenBefore) {
		t.Errorf("meets∘meets = %v", got)
	}
	if got := Compose(AllenDuring, AllenDuring); got != AllenOf(AllenDuring) {
		t.Errorf("during∘during = %v", got)
	}
	if got := Compose(AllenBefore, AllenAfter); got != AllenAll {
		t.Errorf("before∘after = %v, want ⊤", got)
	}
	if got := Compose(AllenOverlaps, AllenOverlaps); got != AllenOf(AllenBefore, AllenMeets, AllenOverlaps) {
		t.Errorf("overlaps∘overlaps = %v", got)
	}
	// during∘before = before.
	if got := Compose(AllenDuring, AllenBefore); got != AllenOf(AllenBefore) {
		t.Errorf("during∘before = %v", got)
	}
}

// Property: (r1 ∘ r2)⁻¹ = r2⁻¹ ∘ r1⁻¹.
func TestCompositionConverseProperty(t *testing.T) {
	for r1 := AllenRel(0); r1 < NumAllen; r1++ {
		for r2 := AllenRel(0); r2 < NumAllen; r2++ {
			lhs := Compose(r1, r2).Converse()
			rhs := Compose(r2.Converse(), r1.Converse())
			if lhs != rhs {
				t.Errorf("(%v∘%v)⁻¹ = %v, want %v", r1, r2, lhs, rhs)
			}
		}
	}
}

// Property: composition is exhaustive — no empty entry, and every entry is a
// superset of what random concrete triples realise.
func TestCompositionSoundOnRandomIntervals(t *testing.T) {
	for r1 := AllenRel(0); r1 < NumAllen; r1++ {
		for r2 := AllenRel(0); r2 < NumAllen; r2++ {
			if allenCompTable[r1][r2] == 0 {
				t.Errorf("empty composition %v∘%v", r1, r2)
			}
		}
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5000; trial++ {
		v := make([]float64, 6)
		for i := range v {
			v[i] = float64(rng.Intn(8))
		}
		a1, a2 := ordered(v[0], v[1])
		b1, b2 := ordered(v[2], v[3])
		c1, c2 := ordered(v[4], v[5])
		rab := ClassifyIntervals(a1, a2, b1, b2)
		rbc := ClassifyIntervals(b1, b2, c1, c2)
		rac := ClassifyIntervals(a1, a2, c1, c2)
		if !Compose(rab, rbc).Has(rac) {
			t.Fatalf("trial %d: %v∘%v misses %v", trial, rab, rbc, rac)
		}
	}
}

func ordered(a, b float64) (float64, float64) {
	if a >= b {
		b = a + 1
	}
	return a, b
}

func TestComposeSets(t *testing.T) {
	s := ComposeSets(AllenOf(AllenBefore, AllenMeets), AllenOf(AllenBefore))
	if s != AllenOf(AllenBefore) {
		t.Errorf("{b,m}∘{b} = %v", s)
	}
	if got := ComposeSets(0, AllenAll); got != 0 {
		t.Errorf("⊥∘⊤ = %v", got)
	}
}

// Property: ClassifyIntervals is total and consistent with the declared
// endpoint conditions.
func TestClassifyIntervalsProperty(t *testing.T) {
	f := func(a1r, a2r, b1r, b2r uint8) bool {
		a1 := float64(a1r % 10)
		a2 := a1 + 1 + float64(a2r%5)
		b1 := float64(b1r % 10)
		b2 := b1 + 1 + float64(b2r%5)
		r := ClassifyIntervals(a1, a2, b1, b2)
		conv := ClassifyIntervals(b1, b2, a1, a2)
		return conv == r.Converse()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
