// Package reason implements the "handling" side of cardinal direction
// information: the inverse operation inv(R) of Skiadopoulos & Koubarakis
// (CP'02, the paper's [21]), the composition of cardinal direction relations
// ([20, 22]), and consistency checking for networks of (possibly
// disjunctive) cardinal direction constraints.
//
// The engine rests on the interval-occupancy abstraction: a configuration
// a R b is abstracted by the Allen interval relation between the x-axis
// projections of the two bounding boxes, the Allen relation between the
// y-axis projections, and the tile-occupancy set R. For the REG* regions of
// the paper, any non-empty tile set compatible with the axis constraints is
// realisable by placing disconnected blobs, which makes inverse computation
// exact and composition sound; both are cross-validated against concrete
// polygon workloads in the tests.
//
// This file implements the Allen interval algebra substrate: the 13 base
// relations, converse, a machine-generated composition table, and relation
// sets.
package reason

import "strings"

// AllenRel is one of the 13 base relations of Allen's interval algebra,
// describing the qualitative relation between two closed intervals with
// positive length (bounding-box projections always have positive length for
// REG* regions).
type AllenRel uint8

// The 13 Allen base relations: A <rel> B.
const (
	AllenBefore       AllenRel = iota // a2 < b1
	AllenMeets                        // a2 = b1
	AllenOverlaps                     // a1 < b1 < a2 < b2
	AllenStarts                       // a1 = b1, a2 < b2
	AllenDuring                       // b1 < a1, a2 < b2
	AllenFinishes                     // b1 < a1, a2 = b2
	AllenEquals                       // a1 = b1, a2 = b2
	AllenFinishedBy                   // a1 < b1, a2 = b2
	AllenContains                     // a1 < b1, b2 < a2
	AllenStartedBy                    // a1 = b1, b2 < a2
	AllenOverlappedBy                 // b1 < a1 < b2 < a2
	AllenMetBy                        // a1 = b2
	AllenAfter                        // a1 > b2
	NumAllen          = 13
)

var allenNames = [NumAllen]string{
	"before", "meets", "overlaps", "starts", "during", "finishes", "equals",
	"finishedBy", "contains", "startedBy", "overlappedBy", "metBy", "after",
}

// String returns the relation's conventional name.
func (r AllenRel) String() string {
	if int(r) < NumAllen {
		return allenNames[r]
	}
	return "AllenRel(?)"
}

// allenConverse[r] is the relation of B with respect to A when A r B.
var allenConverse = [NumAllen]AllenRel{
	AllenAfter, AllenMetBy, AllenOverlappedBy, AllenStartedBy, AllenContains,
	AllenFinishedBy, AllenEquals, AllenFinishes, AllenDuring, AllenStarts,
	AllenOverlaps, AllenMeets, AllenBefore,
}

// Converse returns the relation seen from the other interval.
func (r AllenRel) Converse() AllenRel { return allenConverse[r] }

// interval is a canonical numeric representative used to derive axis
// information and to classify concrete configurations.
type interval struct{ lo, hi float64 }

// allenRepr[r] is a pair (A, B) of representative intervals with A r B.
var allenRepr = [NumAllen][2]interval{
	AllenBefore:       {{0, 1}, {2, 3}},
	AllenMeets:        {{0, 1}, {1, 2}},
	AllenOverlaps:     {{0, 2}, {1, 3}},
	AllenStarts:       {{0, 1}, {0, 2}},
	AllenDuring:       {{1, 2}, {0, 3}},
	AllenFinishes:     {{1, 2}, {0, 2}},
	AllenEquals:       {{0, 1}, {0, 1}},
	AllenFinishedBy:   {{0, 2}, {1, 2}},
	AllenContains:     {{0, 3}, {1, 2}},
	AllenStartedBy:    {{0, 2}, {0, 1}},
	AllenOverlappedBy: {{1, 3}, {0, 2}},
	AllenMetBy:        {{1, 2}, {0, 1}},
	AllenAfter:        {{2, 3}, {0, 1}},
}

// ClassifyIntervals returns the Allen base relation between two intervals of
// positive length.
func ClassifyIntervals(a1, a2, b1, b2 float64) AllenRel {
	switch {
	case a2 < b1:
		return AllenBefore
	case a2 == b1:
		return AllenMeets
	case a1 > b2:
		return AllenAfter
	case a1 == b2:
		return AllenMetBy
	case a1 == b1 && a2 == b2:
		return AllenEquals
	case a1 == b1:
		if a2 < b2 {
			return AllenStarts
		}
		return AllenStartedBy
	case a2 == b2:
		if a1 > b1 {
			return AllenFinishes
		}
		return AllenFinishedBy
	case a1 < b1:
		if a2 < b2 {
			return AllenOverlaps
		}
		return AllenContains
	default: // a1 > b1
		if a2 > b2 {
			return AllenOverlappedBy
		}
		return AllenDuring
	}
}

// AllenSet is a set of Allen base relations (a general interval-algebra
// relation) as a 13-bit mask.
type AllenSet uint16

// AllenAll is the universal interval relation.
const AllenAll AllenSet = 1<<NumAllen - 1

// AllenOf builds a set from base relations.
func AllenOf(rs ...AllenRel) AllenSet {
	var s AllenSet
	for _, r := range rs {
		s |= 1 << r
	}
	return s
}

// Has reports whether r is in the set.
func (s AllenSet) Has(r AllenRel) bool { return s&(1<<r) != 0 }

// IsEmpty reports whether the set has no base relations.
func (s AllenSet) IsEmpty() bool { return s == 0 }

// Len returns the number of base relations in the set.
func (s AllenSet) Len() int {
	n := 0
	for m := s; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Converse returns the set of converses.
func (s AllenSet) Converse() AllenSet {
	var out AllenSet
	for r := AllenRel(0); r < NumAllen; r++ {
		if s.Has(r) {
			out |= 1 << r.Converse()
		}
	}
	return out
}

// Rels returns the members in declaration order.
func (s AllenSet) Rels() []AllenRel {
	out := make([]AllenRel, 0, s.Len())
	for r := AllenRel(0); r < NumAllen; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// String renders the set as a | -separated list of base relation names.
func (s AllenSet) String() string {
	if s == 0 {
		return "⊥"
	}
	if s == AllenAll {
		return "⊤"
	}
	parts := make([]string, 0, s.Len())
	for _, r := range s.Rels() {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, "|")
}

// allenCompTable[r1][r2] is the composition r1 ∘ r2: the set of possible
// relations between A and C given A r1 B and B r2 C. It is generated by
// exhaustive enumeration of endpoint configurations in init, which is both
// simpler and safer than transcribing the classic 13×13 table.
var allenCompTable [NumAllen][NumAllen]AllenSet

func init() {
	// Six endpoints a1<a2, b1<b2, c1<c2 drawn from {0..5} cover every
	// qualitative configuration of three intervals.
	for a1 := 0; a1 < 6; a1++ {
		for a2 := a1 + 1; a2 < 6; a2++ {
			for b1 := 0; b1 < 6; b1++ {
				for b2 := b1 + 1; b2 < 6; b2++ {
					rab := ClassifyIntervals(float64(a1), float64(a2), float64(b1), float64(b2))
					for c1 := 0; c1 < 6; c1++ {
						for c2 := c1 + 1; c2 < 6; c2++ {
							rbc := ClassifyIntervals(float64(b1), float64(b2), float64(c1), float64(c2))
							rac := ClassifyIntervals(float64(a1), float64(a2), float64(c1), float64(c2))
							allenCompTable[rab][rbc] |= 1 << rac
						}
					}
				}
			}
		}
	}
}

// Compose returns r1 ∘ r2 for base relations.
func Compose(r1, r2 AllenRel) AllenSet { return allenCompTable[r1][r2] }

// ComposeSets returns the composition of two general relations: the union of
// base-pair compositions.
func ComposeSets(s1, s2 AllenSet) AllenSet {
	var out AllenSet
	for _, r1 := range s1.Rels() {
		for _, r2 := range s2.Rels() {
			out |= allenCompTable[r1][r2]
		}
	}
	return out
}
