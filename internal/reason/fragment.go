package reason

import (
	"cardirect/internal/core"
)

// The tractable fragment: networks whose every edge carries a single
// definite relation forming a full contiguous rectangular block of tiles
// (cm × rm with both strip masks contiguous). For such relations the
// Allen-pair abstraction decomposes exactly per axis — the realisable Allen
// relations on each axis are precisely those whose occupied strips equal
// the relation's strip mask — so consistency reduces to two independent
// Allen interval networks and is decided by path consistency plus one
// backtrack-free refinement, sidestepping the exponential (relation,
// Allen-pair) product the general solver must search. This is the
// polynomial fragment in the spirit of Zhang, Liu, Li & Ying's tractability
// results for the cardinal direction calculus (PAPERS.md).

// contiguousStrips reports whether a 3-bit strip mask selects a contiguous
// run of strips ({0}, {1}, {2}, {0,1}, {1,2}, {0,1,2} — not {0,2}).
func contiguousStrips(m uint8) bool {
	switch m {
	case 1, 2, 4, 3, 6, 7:
		return true
	default:
		return false
	}
}

// rectangularBlock reports whether the relation's tiles are exactly the
// product of its column strips and row strips, both contiguous.
func rectangularBlock(r core.Relation) bool {
	cm, rm := colsMask(r), rowsMask(r)
	if !contiguousStrips(cm) || !contiguousStrips(rm) {
		return false
	}
	for c := 0; c < 3; c++ {
		if cm&(1<<c) == 0 {
			continue
		}
		for row := 0; row < 3; row++ {
			if rm&(1<<row) == 0 {
				continue
			}
			if !r.Has(core.TileAt(c, row)) {
				return false
			}
		}
	}
	return true
}

// fragmentEligible reports whether every constrained edge is a singleton
// rectangular-block relation — the precondition for the polynomial fast
// path.
func (n *Network) fragmentEligible(edges [][2]int) bool {
	for _, key := range edges {
		rs := n.cons[key]
		if rs.Len() != 1 {
			return false
		}
		if !rectangularBlock(rs.Relations()[0]) {
			return false
		}
	}
	return true
}

// axisAllenSets returns the Allen relations realising the relation's column
// mask on the x axis and row mask on the y axis. For any relation the
// realisable Allen pairs are exactly the product of these two sets
// (PairConsistent decomposes per axis).
func axisAllenSets(r core.Relation) (xs, ys AllenSet) {
	cm, rm := colsMask(r), rowsMask(r)
	for ar := AllenRel(0); ar < NumAllen; ar++ {
		info := axisInfoTable[ar]
		if cm&^info.Allowed == 0 && cm&(1<<info.MandLo) != 0 && cm&(1<<info.MandHi) != 0 {
			xs |= 1 << ar
		}
		if rm&^info.Allowed == 0 && rm&(1<<info.MandLo) != 0 && rm&(1<<info.MandHi) != 0 {
			ys |= 1 << ar
		}
	}
	return xs, ys
}

// solveFragment decides an eligible network: project every edge onto its
// per-axis Allen sets, run path consistency on both axis networks (empty ⇒
// certainly unsatisfiable, since any solution's induced Allen scenario
// would survive sound pruning), then certify satisfiability constructively
// by refining each axis to one atomic scenario and realising a witness
// through the shared occupancy check. decided=false means the fast path
// could not settle the instance within maxScenarios and the caller must
// fall back to the full solver — correctness never leans on the fragment
// theory alone.
func (n *Network) solveFragment(edges [][2]int, maxScenarios int) (w *Witness, decided bool) {
	nv := len(n.names)
	mx, my := newAxisNet(nv), newAxisNet(nv)
	rels := make(map[[2]int]core.Relation, len(edges))
	for _, key := range edges {
		r := n.cons[key].Relations()[0]
		xs, ys := axisAllenSets(r)
		if xs == 0 || ys == 0 {
			return nil, true // no axis realisation exists for this edge
		}
		mx.set(key[0], key[1], xs)
		my.set(key[0], key[1], ys)
		rels[key] = r
	}
	if !mx.propagate() || !my.propagate() {
		return nil, true // axis path consistency refutes the network
	}
	// Certify: first atomic scenario per axis. The greedy most-constrained
	// descent in scenarios rarely backtracks on these convex-strip sets;
	// the budget bounds it regardless.
	budget := newScenarioBudget(maxScenarios)
	var sx, sy *axisNet
	if err := mx.scenarios(budget, func(s *axisNet) bool { sx = s.clone(); return true }); err != nil {
		return nil, false // budget exhausted before certification
	}
	if sx == nil {
		return nil, true // PC-consistent but no atomic scenario: unsatisfiable
	}
	if err := my.scenarios(budget, func(s *axisNet) bool { sy = s.clone(); return true }); err != nil {
		return nil, false
	}
	if sy == nil {
		return nil, true
	}
	// Every edge's atomic (ax, ay) lies in the projected sets, and the
	// realisable pairs of a relation are exactly their product, so the
	// choices are pair-consistent by construction.
	chosen := make(map[[2]int]edgeChoice, len(edges))
	for key, r := range rels {
		ax := sx.get(key[0], key[1]).Rels()[0]
		ay := sy.get(key[0], key[1]).Rels()[0]
		chosen[key] = edgeChoice{rel: r, ax: ax, ay: ay}
	}
	s := &solver{n: n, chosen: chosen}
	if w := s.checkOccupancy(sx.realize(), sy.realize()); w != nil {
		return w, true
	}
	// For full rectangular blocks the occupancy check cannot fail (the
	// bounding box spans exactly the mandatory strips, so every cell is
	// allowed and every tile covered) — but if it ever does, stay honest
	// and let the full solver decide.
	return nil, false
}
