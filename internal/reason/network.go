package reason

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// Network is a constraint network of cardinal direction constraints over
// region variables: directed constraints x R y (x primary, y reference)
// where R is a set of basic relations (disjunctive information). Consistency
// of such networks is the reasoning problem studied for this relation model
// in the paper's reference [21].
type Network struct {
	names []string
	idx   map[string]int
	cons  map[[2]int]core.RelationSet
}

// NewNetwork returns an empty constraint network.
func NewNetwork() *Network {
	return &Network{idx: map[string]int{}, cons: map[[2]int]core.RelationSet{}}
}

// AddVariable declares a region variable; adding an existing name is a no-op.
func (n *Network) AddVariable(name string) {
	if _, ok := n.idx[name]; ok {
		return
	}
	n.idx[name] = len(n.names)
	n.names = append(n.names, name)
}

// Variables returns the variable names in declaration order.
func (n *Network) Variables() []string {
	out := make([]string, len(n.names))
	copy(out, n.names)
	return out
}

// Constrain asserts x R y for some R in the given set, intersecting with any
// existing constraint on the ordered pair. Unknown variables are declared
// implicitly. An empty constraint set is rejected.
func (n *Network) Constrain(x, y string, rs core.RelationSet) error {
	if rs.IsEmpty() {
		return fmt.Errorf("reason: empty constraint between %q and %q", x, y)
	}
	n.AddVariable(x)
	n.AddVariable(y)
	key := [2]int{n.idx[x], n.idx[y]}
	if old, ok := n.cons[key]; ok {
		rs = old.Intersect(rs)
		if rs.IsEmpty() {
			// Record the contradiction; Solve reports it.
			n.cons[key] = rs
			return nil
		}
	}
	n.cons[key] = rs
	return nil
}

// ConstrainRel is Constrain with a single definite relation.
func (n *Network) ConstrainRel(x, y string, r core.Relation) error {
	return n.Constrain(x, y, core.NewRelationSet(r))
}

// Refine runs path-consistency-style pruning: for every pair of constraints
// x→y and y→z it removes from any x→z constraint the relations outside the
// composition, and prunes each constraint to relations that have a
// consistent converse when the opposite direction is also constrained. It
// returns false when some constraint becomes empty (the network is then
// certainly inconsistent). Refine is a sound filter, not a decision
// procedure — use Solve for that.
func (n *Network) Refine() bool {
	changed := true
	for changed {
		changed = false
		// Converse pruning.
		for key, rs := range n.cons {
			op := [2]int{key[1], key[0]}
			ors, ok := n.cons[op]
			if !ok {
				continue
			}
			pruned := rs
			for _, r := range rs.Relations() {
				inv := Inverse(r)
				if inv.Intersect(ors).IsEmpty() {
					pruned.Remove(r)
				}
			}
			if !pruned.Equal(rs) {
				n.cons[key] = pruned
				changed = true
			}
			if pruned.IsEmpty() {
				return false
			}
		}
		// Composition pruning over explicit triangles.
		for k1, r1 := range n.cons {
			for k2, r2 := range n.cons {
				if k1[1] != k2[0] || k1[0] == k2[1] {
					continue
				}
				key := [2]int{k1[0], k2[1]}
				rs, ok := n.cons[key]
				if !ok {
					continue
				}
				comp := CompositionSets(r1, r2)
				pruned := rs.Intersect(comp)
				if !pruned.Equal(rs) {
					n.cons[key] = pruned
					changed = true
				}
				if pruned.IsEmpty() {
					return false
				}
			}
		}
	}
	return true
}

// Witness is a concrete realisation of a consistent network: one REG* region
// per variable, built from axis scenarios and blob placement. The tests
// re-check every constraint on the witness with core.ComputeCDR.
type Witness struct {
	Regions map[string]geom.Region
}

// SolveOptions bounds the scenario search.
type SolveOptions struct {
	// MaxScenarios caps the number of atomic axis-scenario pairs examined;
	// 0 means the default (100000).
	MaxScenarios int
	// Workers is the fan width of SolveParallel (ignored by the sequential
	// entry points); 0 means the default (max(8, GOMAXPROCS)).
	Workers int
}

// ErrSearchLimit is returned when Solve exhausts its scenario budget before
// deciding; the network may still be consistent.
var ErrSearchLimit = fmt.Errorf("reason: scenario search limit reached")

// scenarioBudget is the shared atomic scenario counter: the sequential
// solver owns one alone, the parallel solver shares one across every branch
// goroutine so the total work stays bounded by MaxScenarios regardless of
// fan width.
type scenarioBudget struct{ left atomic.Int64 }

func newScenarioBudget(n int) *scenarioBudget {
	b := &scenarioBudget{}
	b.left.Store(int64(n))
	return b
}

// take consumes one scenario; it reports false when the budget was already
// exhausted.
func (b *scenarioBudget) take() bool { return b.left.Add(-1) >= 0 }

// spent reports whether the budget is exhausted.
func (b *scenarioBudget) spent() bool { return b.left.Load() <= 0 }

// Solve decides consistency of the network over REG* regions and, when
// consistent, returns a witness realisation. The decision procedure
// backtracks over (disjunct, Allen-pair) choices for every constrained edge,
// refines both axis interval networks to atomic scenarios, realises concrete
// coordinates, and checks blob-placement feasibility for every primary
// variable on the refined grid of its references.
func (n *Network) Solve(opts SolveOptions) (*Witness, error) {
	return n.SolveCtx(context.Background(), opts)
}

// SolveCtx is Solve honoring a context: the backtracking search checks for
// cancellation at every edge assignment and axis-scenario enumeration step,
// returning the context's error (matched with errors.Is) when the deadline
// passes or the caller cancels — the hook that lets a server bound the
// worst-case exponential search by wall clock as well as by scenario count.
func (n *Network) SolveCtx(ctx context.Context, opts SolveOptions) (*Witness, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MaxScenarios <= 0 {
		opts.MaxScenarios = 100000
	}
	edges, w, done := n.prepare()
	if done {
		return w, nil
	}
	nv := len(n.names)
	s := &solver{
		n:      n,
		ctx:    ctx,
		edges:  edges,
		chosen: make(map[[2]int]edgeChoice, len(edges)),
		budget: newScenarioBudget(opts.MaxScenarios),
	}
	w, err := s.assignEdges(0, newAxisNet(nv), newAxisNet(nv))
	if err != nil {
		return nil, err
	}
	return w, nil
}

// prepare validates the trivial outcomes shared by every solve entry point
// (sequential, parallel, fast path) and returns the non-self constrained
// edges in lexicographic order. done=true means the outcome is decided
// without search: w non-nil for the empty network, nil for networks with an
// empty constraint or a self constraint excluding B (a R a holds iff B ∈ R).
func (n *Network) prepare() (edges [][2]int, w *Witness, done bool) {
	if len(n.names) == 0 {
		return nil, &Witness{Regions: map[string]geom.Region{}}, true
	}
	for key, rs := range n.cons {
		if key[0] == key[1] && !rs.Contains(core.B) {
			return nil, nil, true
		}
		if rs.IsEmpty() {
			return nil, nil, true
		}
	}
	edges = make([][2]int, 0, len(n.cons))
	for key := range n.cons {
		if key[0] != key[1] {
			edges = append(edges, key)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges, nil, false
}

// edgeChoice records the decisions for one constrained edge.
type edgeChoice struct {
	rel    core.Relation
	ax, ay AllenRel
}

type solver struct {
	n      *Network
	ctx    context.Context
	edges  [][2]int
	chosen map[[2]int]edgeChoice
	budget *scenarioBudget
}

// assignEdges backtracks over the constrained edges; mx and my are the
// current axis networks (nil entries mean unconstrained).
func (s *solver) assignEdges(i int, mx, my *axisNet) (*Witness, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if s.budget.spent() {
		return nil, ErrSearchLimit
	}
	if i == len(s.edges) {
		return s.solveScenarios(mx, my)
	}
	key := s.edges[i]
	a, b := key[0], key[1]
	for _, r := range s.n.cons[key].Relations() {
		for _, pair := range PairsOf(r) {
			ax, ay := pair[0], pair[1]
			// The axis networks must still permit this choice.
			if !mx.get(a, b).Has(ax) || !my.get(a, b).Has(ay) {
				continue
			}
			mx2 := mx.clone()
			my2 := my.clone()
			mx2.set(a, b, AllenOf(ax))
			my2.set(a, b, AllenOf(ay))
			if !mx2.propagate() || !my2.propagate() {
				continue
			}
			s.chosen[key] = edgeChoice{rel: r, ax: ax, ay: ay}
			w, err := s.assignEdges(i+1, mx2, my2)
			if err != nil {
				return nil, err
			}
			if w != nil {
				return w, nil
			}
			delete(s.chosen, key)
		}
	}
	return nil, nil
}

// solveScenarios refines both axis networks to atomic scenarios and runs the
// occupancy check for each combination until one realises.
func (s *solver) solveScenarios(mx, my *axisNet) (*Witness, error) {
	var werr error
	var witness *Witness
	err := mx.scenarios(s.budget, func(sx *axisNet) bool {
		if e := s.ctx.Err(); e != nil {
			werr = e
			return true
		}
		e := my.scenarios(s.budget, func(sy *axisNet) bool {
			if ce := s.ctx.Err(); ce != nil {
				werr = ce
				return true
			}
			xs := sx.realize()
			ys := sy.realize()
			if w := s.checkOccupancy(xs, ys); w != nil {
				witness = w
				return true
			}
			return false
		})
		if e != nil {
			werr = e
			return true
		}
		return witness != nil
	})
	if err != nil && werr == nil {
		werr = err
	}
	if werr != nil {
		return nil, werr
	}
	return witness, nil
}

// checkOccupancy validates blob placement for every variable that appears as
// a primary region, and on success builds the witness regions.
func (s *solver) checkOccupancy(xs, ys []interval) *Witness {
	nv := len(s.n.names)
	regions := make(map[string]geom.Region, nv)
	// Group constraints by primary variable.
	byPrimary := make([][]primaryRef, nv)
	for key, ch := range s.chosen {
		byPrimary[key[0]] = append(byPrimary[key[0]], primaryRef{w: key[1], rel: ch.rel})
	}
	for v := 0; v < nv; v++ {
		mbb := geom.Rect{MinX: xs[v].lo, MinY: ys[v].lo, MaxX: xs[v].hi, MaxY: ys[v].hi}
		refs := byPrimary[v]
		if len(refs) == 0 {
			// Unconstrained as primary: one box spanning the mbb.
			regions[s.n.names[v]] = geom.Rgn(rectPoly(mbb))
			continue
		}
		// Refined grid: cuts at the mbb lines of every reference, clipped
		// to mbb(v).
		xcuts := cutsWithin(mbb.MinX, mbb.MaxX, refs, xs)
		ycuts := cutsWithin(mbb.MinY, mbb.MaxY, refs, ys)
		type cell struct {
			box geom.Rect
		}
		var allowed []cell
		// Requirements: per (reference, tile) coverage, plus the four mbb
		// sides of v.
		type need struct {
			w    int
			tile core.Tile
		}
		needs := map[need]bool{}
		for _, rf := range refs {
			for _, t := range rf.rel.Tiles() {
				needs[need{rf.w, t}] = false
			}
		}
		sideL, sideR, sideB, sideT := false, false, false, false
		for ix := 0; ix+1 < len(xcuts); ix++ {
			for iy := 0; iy+1 < len(ycuts); iy++ {
				c := geom.Rect{MinX: xcuts[ix], MinY: ycuts[iy], MaxX: xcuts[ix+1], MaxY: ycuts[iy+1]}
				if c.Width() <= 0 || c.Height() <= 0 {
					continue
				}
				ok := true
				center := c.Center()
				for _, rf := range refs {
					g := core.Grid{M1: xs[rf.w].lo, M2: xs[rf.w].hi, L1: ys[rf.w].lo, L2: ys[rf.w].hi}
					if !rf.rel.Has(g.ClassifyPoint(center)) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				allowed = append(allowed, cell{box: c})
				for _, rf := range refs {
					g := core.Grid{M1: xs[rf.w].lo, M2: xs[rf.w].hi, L1: ys[rf.w].lo, L2: ys[rf.w].hi}
					needs[need{rf.w, g.ClassifyPoint(center)}] = true
				}
				if c.MinX == mbb.MinX {
					sideL = true
				}
				if c.MaxX == mbb.MaxX {
					sideR = true
				}
				if c.MinY == mbb.MinY {
					sideB = true
				}
				if c.MaxY == mbb.MaxY {
					sideT = true
				}
			}
		}
		if !sideL || !sideR || !sideB || !sideT {
			return nil
		}
		for _, covered := range needs {
			if !covered {
				return nil
			}
		}
		// Build the witness region: one blob per allowed cell keeps every
		// requirement satisfied and the mbb exact. Blobs span their whole
		// cell, so adjacent cells share boundaries only.
		region := make(geom.Region, 0, len(allowed))
		for _, c := range allowed {
			region = append(region, rectPoly(c.box))
		}
		regions[s.n.names[v]] = region
	}
	return &Witness{Regions: regions}
}

// primaryRef is one constraint seen from its primary variable: the reference
// variable index and the chosen definite relation.
type primaryRef struct {
	w   int
	rel core.Relation
}

// cutsWithin returns the sorted unique cut coordinates within [lo, hi]:
// the interval bounds plus every reference's endpoints that fall strictly
// inside.
func cutsWithin(lo, hi float64, refs []primaryRef, axis []interval) []float64 {
	cuts := []float64{lo, hi}
	for _, rf := range refs {
		for _, c := range []float64{axis[rf.w].lo, axis[rf.w].hi} {
			if c > lo && c < hi {
				cuts = append(cuts, c)
			}
		}
	}
	sort.Float64s(cuts)
	out := cuts[:1]
	for _, c := range cuts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// rectPoly converts a rectangle to a clockwise polygon.
func rectPoly(r geom.Rect) geom.Polygon { return geom.Polygon(r.Vertices()) }
