package reason

import (
	"math/rand"
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

func TestCompositionBasicChains(t *testing.T) {
	// a SW b, b SW c ⇒ a SW c (strict corner order composes transitively).
	got := Composition(core.SW, core.SW)
	if !got.Contains(core.SW) {
		t.Errorf("SW∘SW misses SW: %v", got)
	}
	if got.Len() != 1 {
		t.Errorf("SW∘SW = %v, want exactly {SW}", got)
	}
	// a N b, b S c leaves a almost anywhere: the result must be a large
	// disjunction including N, B and S options.
	ns := Composition(core.N, core.S)
	for _, r := range []core.Relation{core.N, core.B, core.S} {
		if !ns.Contains(r) {
			t.Errorf("N∘S misses %v", r)
		}
	}
	// a B b, b B c: a inside mbb(b) ⊆ ... not necessarily inside mbb(c),
	// but B must be possible.
	if !Composition(core.B, core.B).Contains(core.B) {
		t.Error("B∘B misses B")
	}
}

func TestCompositionNorthChain(t *testing.T) {
	// a N b, b N c: x-wise a's span is inside b's, which is inside c's, so
	// a cannot stick out west or east of c; y-wise a stays strictly north.
	// The composition is therefore exactly {N}.
	got := Composition(core.N, core.N)
	if !got.Contains(core.N) || got.Len() != 1 {
		t.Errorf("N∘N = %v, want exactly {N}", got)
	}
	// a NW b, b NW c leaves a north-west of c but x can also end up
	// north (a west of b's box, b west of c's box ⇒ a west of c's east
	// line but a's box can still overlap c's x-span? no — a2 ≤ b1 ≤ …).
	gotNW := Composition(core.NW, core.NW)
	if !gotNW.Contains(core.NW) || gotNW.Len() != 1 {
		t.Errorf("NW∘NW = %v, want exactly {NW}", gotNW)
	}
}

func TestCompositionMonteCarloSound(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	g := workload.New(515)
	miss := 0
	for trial := 0; trial < 250; trial++ {
		mk := func() geom.Region {
			cx := -10 + rng.Float64()*20
			cy := -10 + rng.Float64()*20
			return geom.Rgn(g.StarPolygon(cx, cy, 1, 4, 3+rng.Intn(8)))
		}
		a, b, c := mk(), mk(), mk()
		r1, err := core.ComputeCDR(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := core.ComputeCDR(b, c)
		if err != nil {
			t.Fatal(err)
		}
		r3, err := core.ComputeCDR(a, c)
		if err != nil {
			t.Fatal(err)
		}
		if !Composition(r1, r2).Contains(r3) {
			miss++
			t.Errorf("trial %d: comp(%v, %v) misses observed %v", trial, r1, r2, r3)
		}
	}
	if miss > 0 {
		t.Fatalf("%d soundness violations", miss)
	}
}

func TestCompositionEdgeCases(t *testing.T) {
	if !Composition(0, core.N).IsEmpty() {
		t.Error("comp(∅, N) should be empty")
	}
	if !Composition(core.N, 0).IsEmpty() {
		t.Error("comp(N, ∅) should be empty")
	}
}

func TestCompositionSets(t *testing.T) {
	s1 := core.NewRelationSet(core.SW)
	s2 := core.NewRelationSet(core.SW, core.S)
	got := CompositionSets(s1, s2)
	if !got.Contains(core.SW) {
		t.Errorf("missing SW: %v", got)
	}
	// Every member must come from one of the pairwise compositions.
	union := Composition(core.SW, core.SW).Union(Composition(core.SW, core.S))
	if !got.Equal(union) {
		t.Error("CompositionSets != union of pairwise compositions")
	}
}

// Property: composition respects converse — if R3 ∈ comp(R1, R2) is
// realisable as (a,c), then some inverse of R3 must be in
// comp(inv-members of R2, inv-members of R1) — checked on a structured
// sample (full check is cubic in 511).
func TestCompositionConverseSample(t *testing.T) {
	sample := []core.Relation{core.S, core.B, mustRel(t, "NE:E"), mustRel(t, "B:W")}
	for _, r1 := range sample {
		for _, r2 := range sample {
			comp := Composition(r1, r2)
			inv := CompositionSets(InverseSet(core.NewRelationSet(r2)), InverseSet(core.NewRelationSet(r1)))
			for _, r3 := range comp.Relations() {
				if Inverse(r3).Intersect(inv).IsEmpty() {
					t.Errorf("comp(%v,%v) member %v has no converse in comp(inv, inv)", r1, r2, r3)
				}
			}
		}
	}
}
