package reason

import (
	"context"
	"errors"
	"time"

	"cardirect/internal/core"
)

// ErrInconsistent reports that a constraint network is certainly
// inconsistent — returned by Entail (an inconsistent network entails
// everything, so the query is meaningless) and mapped to 422 by the HTTP
// layer.
var ErrInconsistent = errors.New("reason: network is inconsistent")

// CheckOptions configures Network.Check.
type CheckOptions struct {
	// MaxScenarios caps the number of atomic axis-scenario pairs examined
	// across ALL solver branches; 0 means the default (100000).
	MaxScenarios int
	// Workers is the parallel solver's fan width; 0 means the default
	// (max(8, GOMAXPROCS)), 1 forces the sequential solver.
	Workers int
	// NoFastPath disables the tractable-fragment fast path (benchmarks and
	// differential tests).
	NoFastPath bool
	// NoParallel forces the sequential solver even for Workers ≠ 1.
	NoParallel bool
	// Topology adds RCC-8 constraints checked jointly with the directional
	// network (combined closure before the search).
	Topology []TopoConstraint
}

// CheckStats reports what each stage of the consistency pipeline did.
type CheckStats struct {
	Vars  int `json:"vars"`
	Edges int `json:"edges"`
	// JointApplied/JointRejected: the combined directional+topological
	// closure ran / refuted the network.
	JointApplied  bool `json:"joint_applied,omitempty"`
	JointRejected bool `json:"joint_rejected,omitempty"`
	// RefineRejected: the directional closure alone refuted the network.
	RefineRejected bool `json:"refine_rejected,omitempty"`
	// FastPathEligible/FastPathDecided: the network fell in the tractable
	// fragment / was decided there without entering the backtracking
	// solver.
	FastPathEligible bool `json:"fastpath_eligible,omitempty"`
	FastPathDecided  bool `json:"fastpath_decided,omitempty"`
	// SolverBranches is the number of top-level branch seeds the parallel
	// solver fanned out (1 for the sequential solver); SolverWorkers the
	// fan width used. Zero when the solver never ran.
	SolverBranches int `json:"solver_branches,omitempty"`
	SolverWorkers  int `json:"solver_workers,omitempty"`
	JointNs        int64 `json:"joint_ns,omitempty"`
	RefineNs       int64 `json:"refine_ns,omitempty"`
	FastPathNs     int64 `json:"fastpath_ns,omitempty"`
	SolveNs        int64 `json:"solve_ns,omitempty"`
}

// CheckResult is the outcome of a consistency check. Witness is non-nil
// exactly when Satisfiable — one concrete REG* region per variable
// realising every constraint.
type CheckResult struct {
	Satisfiable bool
	Witness     *Witness
	Stats       CheckStats
}

// Clone returns a deep copy of the network; refining the copy leaves the
// original untouched.
func (n *Network) Clone() *Network {
	m := &Network{
		names: append([]string(nil), n.names...),
		idx:   make(map[string]int, len(n.idx)),
		cons:  make(map[[2]int]core.RelationSet, len(n.cons)),
	}
	for k, v := range n.idx {
		m.idx[k] = v
	}
	for k, v := range n.cons {
		m.cons[k] = v
	}
	return m
}

// Check is the service entry point for consistency: it stages the combined
// directional+topological closure (when topology constraints are given),
// the directional Refine closure, the tractable-fragment fast path, and
// finally the parallel backtracking solver, recording what each stage did
// and how long it took. The receiver is never mutated — all pruning happens
// on a clone. An unsatisfiable network is a normal result (Satisfiable
// false), not an error; errors are reserved for cancelled contexts,
// exhausted budgets (ErrSearchLimit) and invalid topology constraints.
func (n *Network) Check(ctx context.Context, opts CheckOptions) (*CheckResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	maxScenarios := opts.MaxScenarios
	if maxScenarios <= 0 {
		maxScenarios = 100000
	}
	m := n.Clone()
	res := &CheckResult{}
	res.Stats.Vars = len(m.names)

	// Universe edges are tautologies; dropping them spares the solver a
	// 511-relation branch enumeration per vacuous edge.
	u := core.Universe()
	for key, rs := range m.cons {
		if key[0] != key[1] && rs.Equal(u) {
			delete(m.cons, key)
		}
	}

	if len(opts.Topology) > 0 {
		start := time.Now()
		ok, err := m.RefineJoint(opts.Topology)
		res.Stats.JointApplied = true
		res.Stats.JointNs = time.Since(start).Nanoseconds()
		if err != nil {
			return nil, err
		}
		if !ok {
			res.Stats.JointRejected = true
			return res, nil
		}
	} else {
		// The directional closure alone: cheap sound pruning that shrinks
		// disjunctions before any search (and often into the tractable
		// fragment).
		start := time.Now()
		ok := m.Refine()
		res.Stats.RefineNs = time.Since(start).Nanoseconds()
		if !ok {
			res.Stats.RefineRejected = true
			return res, nil
		}
	}

	edges, w, done := m.prepare()
	res.Stats.Edges = len(edges)
	if done {
		res.Satisfiable = w != nil
		res.Witness = w
		return res, nil
	}

	if !opts.NoFastPath && m.fragmentEligible(edges) {
		res.Stats.FastPathEligible = true
		start := time.Now()
		w, decided := m.solveFragment(edges, maxScenarios)
		res.Stats.FastPathNs = time.Since(start).Nanoseconds()
		if decided {
			res.Stats.FastPathDecided = true
			res.Satisfiable = w != nil
			res.Witness = w
			return res, nil
		}
	}

	sopts := SolveOptions{MaxScenarios: maxScenarios, Workers: opts.Workers}
	start := time.Now()
	var err error
	branches := 1
	if opts.NoParallel || opts.Workers == 1 {
		w, err = m.SolveCtx(ctx, sopts)
	} else {
		w, branches, err = m.solveParallel(ctx, sopts)
	}
	res.Stats.SolveNs = time.Since(start).Nanoseconds()
	res.Stats.SolverBranches = branches
	res.Stats.SolverWorkers = opts.Workers
	if err != nil {
		return nil, err
	}
	res.Satisfiable = w != nil
	res.Witness = w
	return res, nil
}
