package reason

import (
	"context"
	"errors"
	"testing"

	"cardirect/internal/core"
)

// TestSolveCtxCancelled: a cancelled context aborts the backtracking search
// and surfaces context.Canceled instead of a witness or a search-limit
// error.
func TestSolveCtxCancelled(t *testing.T) {
	n := NewNetwork()
	// A satisfiable chain — without the cancellation it solves instantly.
	names := []string{"a", "b", "c", "d", "e"}
	for i := 0; i+1 < len(names); i++ {
		if err := n.ConstrainRel(names[i], names[i+1], core.N); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.SolveCtx(ctx, SolveOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The network is untouched: a live context still finds the witness.
	w, err := n.SolveCtx(context.Background(), SolveOptions{})
	if err != nil {
		t.Fatalf("SolveCtx after cancellation: %v", err)
	}
	verifyWitness(t, n, w)
}
