package reason

import "cardirect/internal/core"

// Composition computes a sound composition of cardinal direction relations
// in the spirit of Skiadopoulos & Koubarakis [20, 22]: the set of basic
// relations R3 such that a R1 b and b R2 c may entail a R3 c.
//
// The computation works in the interval-occupancy abstraction: every Allen
// pair consistent with R1 (between a and b) is composed — per axis, with the
// machine-generated Allen composition table — with every pair consistent
// with R2 (between b and c), giving the possible Allen pairs between a and
// c; the result is the union of the tile relations consistent with those
// pairs. The operation is sound (it never misses a realisable R3; the
// Monte-Carlo tests check containment against concrete polygon workloads)
// and is exactly the algebraic closure operator needed for path-consistency
// pruning in constraint networks.
func Composition(r1, r2 core.Relation) core.RelationSet {
	var out core.RelationSet
	if !r1.IsValid() || !r2.IsValid() {
		return out
	}
	t := getTables()
	// Possible Allen pairs between a and c, as a 13×13 bit matrix.
	var m [NumAllen]AllenSet
	for _, p1 := range t.pairs[r1] {
		ax1 := AllenRel(p1 / NumAllen)
		ay1 := AllenRel(p1 % NumAllen)
		for _, p2 := range t.pairs[r2] {
			ax2 := AllenRel(p2 / NumAllen)
			ay2 := AllenRel(p2 % NumAllen)
			xs := allenCompTable[ax1][ax2]
			ys := allenCompTable[ay1][ay2]
			for _, ax3 := range xs.Rels() {
				m[ax3] |= ys
			}
		}
	}
	for ax3 := AllenRel(0); ax3 < NumAllen; ax3++ {
		for _, ay3 := range m[ax3].Rels() {
			out = out.Union(t.consistent[ax3][ay3])
		}
	}
	return out
}

// CompositionSets lifts Composition to disjunctive relations.
func CompositionSets(s1, s2 core.RelationSet) core.RelationSet {
	var out core.RelationSet
	for _, r1 := range s1.Relations() {
		for _, r2 := range s2.Relations() {
			out = out.Union(Composition(r1, r2))
		}
	}
	return out
}
