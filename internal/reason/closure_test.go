package reason

import (
	"testing"

	"cardirect/internal/core"
)

func TestClosureTransitiveChain(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "b", core.SW)
	n.ConstrainRel("b", "c", core.SW)
	closure, ok := n.Closure()
	if !ok {
		t.Fatal("consistent chain pruned to empty")
	}
	ac := closure[[2]string{"a", "c"}]
	if ac.Len() != 1 || !ac.Contains(core.SW) {
		t.Errorf("closure a→c = %v, want {SW}", ac)
	}
	// The converse direction gets the inverse.
	ca := closure[[2]string{"c", "a"}]
	if !ca.Contains(core.NE) || ca.Len() != 1 {
		t.Errorf("closure c→a = %v, want {NE}", ca)
	}
}

func TestClosureDetectsCycle(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "b", core.N)
	n.ConstrainRel("b", "c", core.N)
	n.ConstrainRel("c", "a", core.N)
	if _, ok := n.Closure(); ok {
		t.Error("N-cycle should be pruned to empty by closure")
	}
}

func TestClosureLeavesUnrelatedAtUniverse(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "b", core.N)
	n.AddVariable("z")
	closure, ok := n.Closure()
	if !ok {
		t.Fatal("unexpected inconsistency")
	}
	az := closure[[2]string{"a", "z"}]
	if az.Len() != 511 {
		t.Errorf("a→z pruned to %d relations; nothing relates them", az.Len())
	}
}

func TestEntail(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "b", core.SW)
	n.ConstrainRel("b", "c", core.SW)
	got, err := n.Entail("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(core.SW) {
		t.Errorf("Entail(a,c) = %v, want {SW}", got)
	}
	// Self pair.
	self, err := n.Entail("a", "a")
	if err != nil {
		t.Fatal(err)
	}
	if self.Len() != 1 || !self.Contains(core.B) {
		t.Errorf("Entail(a,a) = %v, want {B}", self)
	}
	// Unknown variable.
	if _, err := n.Entail("a", "nope"); err == nil {
		t.Error("unknown variable should error")
	}
	// Inconsistent network.
	bad := NewNetwork()
	bad.ConstrainRel("x", "y", core.S)
	bad.ConstrainRel("y", "x", core.S)
	if _, err := bad.Entail("x", "y"); err == nil {
		t.Error("inconsistent network should error")
	}
}

// TestClosureSoundAgainstSolve: on satisfiable networks, every definite
// relation realisable by Solve's witness must survive closure — closure may
// only remove unrealisable relations.
func TestClosureSoundAgainstSolve(t *testing.T) {
	nets := []func(*Network){
		func(n *Network) {
			n.ConstrainRel("a", "b", core.N)
			n.ConstrainRel("b", "c", core.E)
		},
		func(n *Network) {
			n.Constrain("a", "b", core.NewRelationSet(core.N, core.S))
			n.ConstrainRel("b", "a", core.N)
		},
		func(n *Network) {
			r, _ := core.ParseRelation("B:W:NW:N")
			n.ConstrainRel("a", "b", r)
			n.ConstrainRel("c", "b", core.E)
		},
	}
	for i, build := range nets {
		n := NewNetwork()
		build(n)
		w, err := n.Solve(SolveOptions{})
		if err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
		if w == nil {
			t.Fatalf("net %d should be satisfiable", i)
		}
		closure, ok := n.Closure()
		if !ok {
			t.Fatalf("net %d: closure killed a satisfiable network", i)
		}
		// The witness realises concrete relations; each must be in the
		// closure entry of its pair.
		for pair := range closure {
			x, y := pair[0], pair[1]
			rel, err := core.ComputeCDR(w.Regions[x], w.Regions[y])
			if err != nil {
				t.Fatal(err)
			}
			if !closure[pair].Contains(rel) {
				t.Errorf("net %d: closure %v→%v = %v misses realised %v",
					i, x, y, closure[pair], rel)
			}
		}
	}
}

func TestClosureTightensDisjunction(t *testing.T) {
	// a {N, S} b with b N a: closure must discard the N disjunct.
	n := NewNetwork()
	n.Constrain("a", "b", core.NewRelationSet(core.N, core.S))
	n.ConstrainRel("b", "a", core.N)
	closure, ok := n.Closure()
	if !ok {
		t.Fatal("satisfiable network killed")
	}
	ab := closure[[2]string{"a", "b"}]
	if ab.Contains(core.N) {
		t.Errorf("closure kept the impossible N disjunct: %v", ab)
	}
	if !ab.Contains(core.S) {
		t.Errorf("closure lost the realisable S disjunct: %v", ab)
	}
}

func BenchmarkClosure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := NewNetwork()
		n.ConstrainRel("a", "b", core.SW)
		n.ConstrainRel("b", "c", core.SW)
		n.ConstrainRel("c", "d", core.N)
		if _, ok := n.Closure(); !ok {
			b.Fatal("unexpected inconsistency")
		}
	}
}
