package reason

// axisNet is an Allen interval-algebra network over the per-axis projections
// of the network's variables: rel[i][j] is the AllenSet allowed between
// interval i and interval j. The diagonal holds equals; the matrix is kept
// converse-consistent.
type axisNet struct {
	n   int
	rel []AllenSet // n×n, row-major
}

func newAxisNet(n int) *axisNet {
	a := &axisNet{n: n, rel: make([]AllenSet, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a.rel[i*n+j] = AllenOf(AllenEquals)
			} else {
				a.rel[i*n+j] = AllenAll
			}
		}
	}
	return a
}

func (a *axisNet) clone() *axisNet {
	b := &axisNet{n: a.n, rel: make([]AllenSet, len(a.rel))}
	copy(b.rel, a.rel)
	return b
}

func (a *axisNet) get(i, j int) AllenSet { return a.rel[i*a.n+j] }

// set restricts the relation between i and j to s (and the converse edge to
// the converse set).
func (a *axisNet) set(i, j int, s AllenSet) {
	a.rel[i*a.n+j] &= s
	a.rel[j*a.n+i] &= s.Converse()
}

// propagate runs path consistency to a fixpoint; it returns false when some
// edge becomes empty (inconsistent network).
func (a *axisNet) propagate() bool {
	n := a.n
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				rij := a.rel[i*n+j]
				for k := 0; k < n; k++ {
					if k == i || k == j {
						continue
					}
					comp := ComposeSets(a.rel[i*n+k], a.rel[k*n+j])
					nij := rij & comp
					if nij != rij {
						rij = nij
						changed = true
					}
					if rij == 0 {
						return false
					}
				}
				a.rel[i*n+j] = rij
				a.rel[j*n+i] = rij.Converse()
			}
		}
	}
	return true
}

// scenarios enumerates atomic refinements (every edge a single base
// relation) of the path-consistent network, invoking yield for each; it
// stops when yield returns true. budget is decremented per atomic scenario;
// when it reaches zero ErrSearchLimit is returned.
func (a *axisNet) scenarios(budget *scenarioBudget, yield func(*axisNet) bool) error {
	if !a.propagate() {
		return nil
	}
	// Find the most constrained undecided edge.
	bi, bj, best := -1, -1, 14
	for i := 0; i < a.n; i++ {
		for j := i + 1; j < a.n; j++ {
			if l := a.get(i, j).Len(); l > 1 && l < best {
				bi, bj, best = i, j, l
			}
		}
	}
	if bi < 0 {
		if !budget.take() {
			return ErrSearchLimit
		}
		yield(a)
		return nil
	}
	stop := false
	for _, r := range a.get(bi, bj).Rels() {
		if stop {
			break
		}
		b := a.clone()
		b.set(bi, bj, AllenOf(r))
		err := b.scenarios(budget, func(s *axisNet) bool {
			stop = yield(s)
			return stop
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// realize turns an atomic scenario into concrete intervals: each base
// relation decomposes into point-order constraints between the 2n endpoint
// variables, which are totally determined in an atomic complete network;
// endpoints are assigned integer coordinates by their rank.
func (a *axisNet) realize() []interval {
	n := a.n
	// Endpoint ids: 2v = lo(v), 2v+1 = hi(v).
	var lts, eqs [][2]int
	for v := 0; v < n; v++ {
		lts = append(lts, [2]int{2 * v, 2*v + 1})
	}
	addRel := func(i, j int, r AllenRel) {
		// Express the base relation as point constraints between
		// (lo_i, hi_i) and (lo_j, hi_j) using the canonical representatives.
		ai := allenRepr[r][0]
		bj := allenRepr[r][1]
		ends := []struct {
			id int
			v  float64
		}{
			{2 * i, ai.lo}, {2*i + 1, ai.hi}, {2 * j, bj.lo}, {2*j + 1, bj.hi},
		}
		for x := 0; x < len(ends); x++ {
			for y := 0; y < len(ends); y++ {
				if x == y {
					continue
				}
				switch {
				case ends[x].v < ends[y].v:
					lts = append(lts, [2]int{ends[x].id, ends[y].id})
				case ends[x].v == ends[y].v && ends[x].id < ends[y].id:
					eqs = append(eqs, [2]int{ends[x].id, ends[y].id})
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rs := a.get(i, j).Rels()
			addRel(i, j, rs[0])
		}
	}
	// Union-find over equalities.
	parent := make([]int, 2*n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range eqs {
		parent[find(e[0])] = find(e[1])
	}
	// Longest-path rank over the strict order (the atomic complete network
	// is acyclic on representatives).
	adj := make(map[int][]int)
	indeg := make(map[int]int)
	nodes := map[int]bool{}
	for i := 0; i < 2*n; i++ {
		nodes[find(i)] = true
	}
	for _, e := range lts {
		u, v := find(e[0]), find(e[1])
		if u == v {
			continue // contradictory input would show up in verification
		}
		adj[u] = append(adj[u], v)
		indeg[v]++
	}
	rank := make(map[int]int, len(nodes))
	queue := make([]int, 0, len(nodes))
	for u := range nodes {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if rank[u]+1 > rank[v] {
				rank[v] = rank[u] + 1
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	out := make([]interval, n)
	for v := 0; v < n; v++ {
		out[v] = interval{
			lo: float64(rank[find(2*v)]),
			hi: float64(rank[find(2*v+1)]),
		}
	}
	return out
}
