package reason

import (
	"testing"

	"cardirect/internal/core"
)

// solveOK solves the network and fails the test on a search-limit error.
func solveOK(t *testing.T, n *Network) *Witness {
	t.Helper()
	w, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return w
}

// verifyWitness re-checks every network constraint against the witness
// regions with the concrete Compute-CDR algorithm — the strongest possible
// end-to-end check of the solver.
func verifyWitness(t *testing.T, n *Network, w *Witness) {
	t.Helper()
	if w == nil {
		t.Fatal("nil witness")
	}
	for key, rs := range n.cons {
		x := n.names[key[0]]
		y := n.names[key[1]]
		if x == y {
			continue
		}
		rel, err := core.ComputeCDR(w.Regions[x], w.Regions[y])
		if err != nil {
			t.Fatalf("witness relation %s→%s: %v", x, y, err)
		}
		if !rs.Contains(rel) {
			t.Fatalf("witness violates %s %v %s: got %v", x, rs, y, rel)
		}
	}
}

func TestNetworkSimpleChain(t *testing.T) {
	n := NewNetwork()
	if err := n.ConstrainRel("a", "b", core.N); err != nil {
		t.Fatal(err)
	}
	if err := n.ConstrainRel("b", "c", core.N); err != nil {
		t.Fatal(err)
	}
	w := solveOK(t, n)
	verifyWitness(t, n, w)
}

func TestNetworkInconsistentCycle(t *testing.T) {
	// a strictly north of b, b of c, c of a: impossible.
	n := NewNetwork()
	n.ConstrainRel("a", "b", core.N)
	n.ConstrainRel("b", "c", core.N)
	n.ConstrainRel("c", "a", core.N)
	if w := solveOK(t, n); w != nil {
		t.Fatal("cyclic N constraints should be inconsistent")
	}
}

func TestNetworkMutualContradiction(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "b", core.S)
	n.ConstrainRel("b", "a", core.S)
	if w := solveOK(t, n); w != nil {
		t.Fatal("a S b and b S a should be inconsistent")
	}
	// Whereas a S b with b N a is fine.
	n2 := NewNetwork()
	n2.ConstrainRel("a", "b", core.S)
	n2.ConstrainRel("b", "a", core.N)
	w := solveOK(t, n2)
	verifyWitness(t, n2, w)
}

func TestNetworkDisjunctive(t *testing.T) {
	// a {N, S} b together with b N a forces a S b.
	n := NewNetwork()
	n.Constrain("a", "b", core.NewRelationSet(core.N, core.S))
	n.ConstrainRel("b", "a", core.N)
	w := solveOK(t, n)
	verifyWitness(t, n, w)
	rel, err := core.ComputeCDR(w.Regions["a"], w.Regions["b"])
	if err != nil {
		t.Fatal(err)
	}
	if rel != core.S {
		t.Errorf("forced disjunct = %v, want S", rel)
	}
}

func TestNetworkMultiTileWitness(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "b", mustRel(t, "B:W:NW:N"))
	n.ConstrainRel("c", "b", mustRel(t, "NE:E"))
	n.ConstrainRel("c", "a", core.E)
	w := solveOK(t, n)
	verifyWitness(t, n, w)
}

func TestNetworkDisconnectedRelationWitness(t *testing.T) {
	// NW:NE requires a disconnected primary — the witness builder must
	// produce a multi-blob region.
	n := NewNetwork()
	n.ConstrainRel("a", "b", mustRel(t, "NW:NE"))
	w := solveOK(t, n)
	verifyWitness(t, n, w)
	if len(w.Regions["a"]) < 2 {
		t.Errorf("NW:NE witness should be disconnected, got %d polygon(s)", len(w.Regions["a"]))
	}
}

func TestNetworkSelfConstraint(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "a", core.B)
	w := solveOK(t, n)
	if w == nil {
		t.Fatal("a B a is always satisfiable")
	}
	n2 := NewNetwork()
	n2.ConstrainRel("a", "a", core.N)
	if w := solveOK(t, n2); w != nil {
		t.Fatal("a N a is never satisfiable")
	}
}

func TestNetworkEmptyAndErrors(t *testing.T) {
	n := NewNetwork()
	w := solveOK(t, n)
	if w == nil {
		t.Fatal("empty network is consistent")
	}
	if err := n.Constrain("a", "b", core.RelationSet{}); err == nil {
		t.Error("empty constraint set should be rejected")
	}
	// Contradictory intersection on the same edge.
	n.ConstrainRel("a", "b", core.N)
	n.ConstrainRel("a", "b", core.S)
	if w := solveOK(t, n); w != nil {
		t.Fatal("N ∩ S on one edge should be inconsistent")
	}
}

func TestNetworkRefine(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "b", core.SW)
	n.ConstrainRel("b", "c", core.SW)
	n.Constrain("a", "c", core.NewRelationSet(core.SW, core.NE))
	if !n.Refine() {
		t.Fatal("refinable network reported inconsistent")
	}
	key := [2]int{n.idx["a"], n.idx["c"]}
	got := n.cons[key]
	if !got.Contains(core.SW) || got.Contains(core.NE) {
		t.Errorf("refined a→c = %v, want {SW}", got)
	}
	// Refine detects converse contradictions.
	n2 := NewNetwork()
	n2.ConstrainRel("a", "b", core.S)
	n2.ConstrainRel("b", "a", core.S)
	if n2.Refine() {
		t.Error("S/S converse contradiction not detected by Refine")
	}
}

func TestNetworkRefineMatchesSolve(t *testing.T) {
	// On a satisfiable network Refine must keep at least one satisfiable
	// disjunct per edge.
	n := NewNetwork()
	n.Constrain("a", "b", core.NewRelationSet(core.N, core.NE))
	n.Constrain("b", "c", core.NewRelationSet(core.E))
	n.Constrain("a", "c", core.NewRelationSet(core.NE, core.SW))
	if !n.Refine() {
		t.Fatal("satisfiable network killed by Refine")
	}
	w := solveOK(t, n)
	verifyWitness(t, n, w)
}

func TestNetworkVariables(t *testing.T) {
	n := NewNetwork()
	n.AddVariable("x")
	n.AddVariable("x")
	n.ConstrainRel("y", "z", core.B)
	vars := n.Variables()
	if len(vars) != 3 || vars[0] != "x" {
		t.Errorf("Variables = %v", vars)
	}
}

func TestNetworkFourVariableScenario(t *testing.T) {
	// A small map layout: town layout consistency.
	n := NewNetwork()
	n.ConstrainRel("park", "lake", core.W)
	n.ConstrainRel("mall", "lake", core.E)
	n.ConstrainRel("park", "mall", core.W)
	n.ConstrainRel("tower", "lake", mustRel(t, "B:N"))
	w := solveOK(t, n)
	verifyWitness(t, n, w)
}

func TestNetworkSearchLimit(t *testing.T) {
	n := NewNetwork()
	// Universe constraints on several edges explode the scenario space;
	// with a tiny budget the solver must report the limit, not hang.
	n.Constrain("a", "b", core.Universe())
	n.Constrain("b", "c", core.Universe())
	n.Constrain("c", "d", core.Universe())
	_, err := n.Solve(SolveOptions{MaxScenarios: 1})
	if err == nil {
		// A budget of one scenario can still succeed if the first scenario
		// realises — that is fine too; just ensure no hang and a defined
		// outcome.
		return
	}
	if err != ErrSearchLimit {
		t.Fatalf("unexpected error: %v", err)
	}
}
