package reason

import (
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

func mustRel(t *testing.T, s string) core.Relation {
	t.Helper()
	r, err := core.ParseRelation(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAxisInfoSpotChecks(t *testing.T) {
	// a before b on x: a entirely west → only strip 0 allowed and mandatory.
	i := AxisInfoOf(AllenBefore)
	if i.Allowed != 1<<0 || i.MandLo != 0 || i.MandHi != 0 {
		t.Errorf("before: %+v", i)
	}
	// equals: only middle strip.
	i = AxisInfoOf(AllenEquals)
	if i.Allowed != 1<<1 || i.MandLo != 1 || i.MandHi != 1 {
		t.Errorf("equals: %+v", i)
	}
	// contains: all three strips allowed, extremes in west and east.
	i = AxisInfoOf(AllenContains)
	if i.Allowed != 0b111 || i.MandLo != 0 || i.MandHi != 2 {
		t.Errorf("contains: %+v", i)
	}
	// overlaps: west+middle, extremes west and middle.
	i = AxisInfoOf(AllenOverlaps)
	if i.Allowed != 0b011 || i.MandLo != 0 || i.MandHi != 1 {
		t.Errorf("overlaps: %+v", i)
	}
	// meets: a ends where b starts — only the west strip has positive
	// width of a.
	i = AxisInfoOf(AllenMeets)
	if i.Allowed != 1<<0 || i.MandLo != 0 || i.MandHi != 0 {
		t.Errorf("meets: %+v", i)
	}
}

func TestPairConsistentExamples(t *testing.T) {
	// a S b: x within b's span, y strictly below.
	s := core.S
	if !PairConsistent(s, AllenDuring, AllenBefore) {
		t.Error("S should be consistent with (during, before)")
	}
	if !PairConsistent(s, AllenEquals, AllenMeets) {
		t.Error("S should be consistent with (equals, meets)")
	}
	if PairConsistent(s, AllenBefore, AllenBefore) {
		t.Error("S inconsistent with x-before (that would be SW)")
	}
	if PairConsistent(s, AllenDuring, AllenDuring) {
		t.Error("S inconsistent with y-during (that would include B)")
	}
	// B:W needs x to stick out west but stay inside east: overlaps or
	// finishedBy-ish.
	bw := mustRel(t, "B:W")
	if !PairConsistent(bw, AllenOverlaps, AllenDuring) {
		t.Error("B:W should be consistent with (overlaps, during)")
	}
	if PairConsistent(bw, AllenDuring, AllenDuring) {
		t.Error("B:W needs material west of the box — x during is too small")
	}
}

func TestInverseOfSouth(t *testing.T) {
	// For REG* regions, the possible relations of b w.r.t. a when a S b:
	// b's material is all strictly north of a; horizontally b's span
	// contains a's span, so b shows up in the N row with NW/NE corners
	// optional — but at least one of the mandatory extreme columns.
	got := Inverse(core.S)
	want := core.NewRelationSet(
		core.N,
		mustRel(t, "NW:N"),
		mustRel(t, "N:NE"),
		mustRel(t, "NW:N:NE"),
		mustRel(t, "NW:NE"), // disconnected b: blobs NW and NE, nothing due north
	)
	if !got.Equal(want) {
		t.Errorf("inv(S) = %v, want %v", got, want)
	}
}

func TestInverseSingleTiles(t *testing.T) {
	// inv(SW) = {NE} for box corners: b is entirely NE of a.
	got := Inverse(core.SW)
	if !got.Contains(core.NE) {
		t.Errorf("inv(SW) misses NE: %v", got)
	}
	if got.Len() != 1 {
		t.Errorf("inv(SW) = %v, want exactly {NE}", got)
	}
	// B is in inv(B): a = b satisfies both.
	if !Inverse(core.B).Contains(core.B) {
		t.Error("B missing from inv(B)")
	}
}

func TestInverseMonteCarloSoundAndTight(t *testing.T) {
	g := workload.New(2024)
	pairs := g.Pairs(400, 8)
	for i, p := range pairs {
		r, err := core.ComputeCDR(p.A, p.B)
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		q, err := core.ComputeCDR(p.B, p.A)
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if !Inverse(r).Contains(q) {
			t.Fatalf("pair %d: observed inverse %v not in inv(%v) = %v", i, q, r, Inverse(r))
		}
		if !MutuallyInverse(r, q) {
			t.Fatalf("pair %d: (%v, %v) not mutually inverse", i, r, q)
		}
	}
}

// Property: inversion is symmetric — Q ∈ inv(R) iff R ∈ inv(Q) — because
// both statements say "(R, Q) is jointly realisable".
func TestInverseSymmetry(t *testing.T) {
	// Spot-check over a structured sample of relations (all single tiles,
	// plus multi-tile samples).
	sample := []core.Relation{
		core.B, core.S, core.SW, core.W, core.NW, core.N, core.NE, core.E, core.SE,
		mustRel(t, "B:W"), mustRel(t, "NE:E"), mustRel(t, "B:S:SW:W"),
		mustRel(t, "NW:NE"), mustRel(t, "B:S:SW:W:NW:N:NE:E:SE"),
	}
	for _, r := range sample {
		for _, q := range Inverse(r).Relations() {
			if !Inverse(q).Contains(r) {
				t.Errorf("asymmetric: %v ∈ inv(%v) but %v ∉ inv(%v)", q, r, r, q)
			}
			if !MutuallyInverse(r, q) || !MutuallyInverse(q, r) {
				t.Errorf("MutuallyInverse disagrees with Inverse for (%v, %v)", r, q)
			}
		}
	}
}

func TestInverseSetAndEdgeCases(t *testing.T) {
	if !Inverse(0).IsEmpty() {
		t.Error("inv(∅) should be empty")
	}
	s := core.NewRelationSet(core.S, core.SW)
	got := InverseSet(s)
	if !got.Contains(core.NE) || !got.Contains(core.N) {
		t.Errorf("InverseSet misses members: %v", got)
	}
	if MutuallyInverse(0, core.N) || MutuallyInverse(core.N, 0) {
		t.Error("invalid relations must not be mutually inverse")
	}
}

func TestInverseConcreteDisconnectedExample(t *testing.T) {
	// The NW:NE inverse of S realised concretely: a small box, b two blobs
	// up-left and up-right of it.
	a := workload.BoxRegion(2, 0, 3, 1)
	b := append(workload.BoxRegion(0, 2, 1, 3), workload.BoxRegion(4, 2, 5, 3)...)
	r, err := core.ComputeCDR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r != core.S {
		t.Fatalf("a vs b = %v, want S", r)
	}
	q, err := core.ComputeCDR(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if q != core.Rel(core.TileNW, core.TileNE) {
		t.Fatalf("b vs a = %v, want NW:NE", q)
	}
	if !Inverse(core.S).Contains(q) {
		t.Error("inv(S) must contain NW:NE (REG* semantics)")
	}
	_ = geom.Point{}
}

// TestInverseFullSymmetry checks Q ∈ inv(R) ⇔ R ∈ inv(Q) over the entire
// D* — both statements assert joint realisability of the pair, so the
// relation "mutually inverse" must be symmetric everywhere.
func TestInverseFullSymmetry(t *testing.T) {
	for _, r := range core.AllRelations() {
		for _, q := range Inverse(r).Relations() {
			if !Inverse(q).Contains(r) {
				t.Fatalf("asymmetric: %v ∈ inv(%v) but not vice versa", q, r)
			}
		}
	}
}

// TestInverseNeverEmpty: every basic relation has at least one inverse
// (every realisable configuration has two sides).
func TestInverseNeverEmpty(t *testing.T) {
	for _, r := range core.AllRelations() {
		if Inverse(r).IsEmpty() {
			t.Fatalf("inv(%v) is empty", r)
		}
	}
}
