package reason

import (
	"fmt"
	"sync"

	"cardirect/internal/core"
)

// compoMemo caches Composition results; compositions recur heavily during
// closure computation and the underlying pair enumeration is the expensive
// part.
var compoMemo sync.Map // [2]core.Relation → core.RelationSet

func compositionMemo(r1, r2 core.Relation) core.RelationSet {
	key := [2]core.Relation{r1, r2}
	if v, ok := compoMemo.Load(key); ok {
		return v.(core.RelationSet)
	}
	v := Composition(r1, r2)
	compoMemo.Store(key, v)
	return v
}

// Closure computes the algebraic closure of the network: a constraint
// matrix over every ordered pair of variables, starting from the explicit
// constraints (Universe elsewhere) and repeatedly pruned by
//
//   - composition: C[i][j] ⊆ comp(C[i][k], C[k][j]) for every k, and
//   - converse:    every r in C[i][j] must have an inverse in C[j][i],
//
// until a fixpoint. The result maps ordered name pairs to the pruned sets.
// ok is false when some pair becomes empty — the network is then certainly
// inconsistent (the converse does not hold; closure is a sound filter, the
// complete decision procedure is Solve).
func (n *Network) Closure() (map[[2]string]core.RelationSet, bool) {
	nv := len(n.names)
	u := core.Universe()
	c := make([]core.RelationSet, nv*nv)
	for i := 0; i < nv; i++ {
		for j := 0; j < nv; j++ {
			if i != j {
				c[i*nv+j] = u
			}
		}
	}
	for key, rs := range n.cons {
		if key[0] == key[1] {
			continue // self constraints are checked by Solve
		}
		c[key[0]*nv+key[1]] = c[key[0]*nv+key[1]].Intersect(rs)
	}
	isUniverse := func(s core.RelationSet) bool { return s.Equal(u) }
	ok := true
	changed := true
	for changed && ok {
		changed = false
		// Converse pruning. A Universe opposite entry has no pruning power
		// (every valid relation has a non-empty inverse), so skip those.
		for i := 0; i < nv && ok; i++ {
			for j := 0; j < nv && ok; j++ {
				if i == j || isUniverse(c[j*nv+i]) {
					continue
				}
				cur := c[i*nv+j]
				pruned := cur
				for _, r := range cur.Relations() {
					if Inverse(r).Intersect(c[j*nv+i]).IsEmpty() {
						pruned.Remove(r)
					}
				}
				if !pruned.Equal(cur) {
					c[i*nv+j] = pruned
					changed = true
					if pruned.IsEmpty() {
						ok = false
					}
				}
			}
		}
		// Composition pruning. Skip triangles with a Universe factor:
		// composing with complete ignorance cannot prune.
		for i := 0; i < nv && ok; i++ {
			for k := 0; k < nv && ok; k++ {
				if i == k || isUniverse(c[i*nv+k]) {
					continue
				}
				for j := 0; j < nv && ok; j++ {
					if j == i || j == k || isUniverse(c[k*nv+j]) {
						continue
					}
					var comp core.RelationSet
					for _, r1 := range c[i*nv+k].Relations() {
						for _, r2 := range c[k*nv+j].Relations() {
							comp = comp.Union(compositionMemo(r1, r2))
						}
					}
					cur := c[i*nv+j]
					pruned := cur.Intersect(comp)
					if !pruned.Equal(cur) {
						c[i*nv+j] = pruned
						changed = true
						if pruned.IsEmpty() {
							ok = false
						}
					}
				}
			}
		}
	}
	out := make(map[[2]string]core.RelationSet, nv*nv-nv)
	for i := 0; i < nv; i++ {
		for j := 0; j < nv; j++ {
			if i != j {
				out[[2]string{n.names[i], n.names[j]}] = c[i*nv+j]
			}
		}
	}
	return out, ok
}

// Entail returns the strongest relation set the network implies between the
// ordered pair (x, y) — the closure entry for the pair. A Universe result
// means the network says nothing about the pair; ok=false means the
// variables are unknown or the closure detected inconsistency (the set is
// then meaningless).
func (n *Network) Entail(x, y string) (core.RelationSet, error) {
	ix, okx := n.idx[x]
	iy, oky := n.idx[y]
	if !okx || !oky {
		return core.RelationSet{}, fmt.Errorf("reason: unknown variable in Entail(%q, %q)", x, y)
	}
	if ix == iy {
		return core.NewRelationSet(core.B), nil // a region is B of itself
	}
	closure, ok := n.Closure()
	if !ok {
		return core.RelationSet{}, ErrInconsistent
	}
	return closure[[2]string{x, y}], nil
}
