package reason

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// SolveParallel is SolveCtx with the top level of the backtracking search
// fanned across goroutines: every (relation, Allen-pair) choice for the
// first constrained edge becomes an independent branch seed, the surviving
// seeds are striped over opts.Workers goroutines sharing one scenario
// budget, and the first branch to realise a witness cancels the rest
// (first-witness-wins via context).
//
// The fan is a search-order diversification, not just a core-count
// multiplier: when the sequential edge order buries the satisfiable branch
// behind expensive barren ones, concurrent branches reach it after a few
// scheduler slices while the sequential walk is still exhausting the barren
// prefix — a super-linear speedup that holds even on one CPU. Unsatisfiable
// networks still need every branch refuted, so they parallelise only as
// well as the hardware. Workers ≤ 0 defaults to max(8, GOMAXPROCS);
// oversubscription is deliberate for the reason above.
func (n *Network) SolveParallel(ctx context.Context, opts SolveOptions) (*Witness, error) {
	w, _, err := n.solveParallel(ctx, opts)
	return w, err
}

// solveParallel is SolveParallel also reporting the number of top-level
// branch seeds explored (for Check's stats).
func (n *Network) solveParallel(ctx context.Context, opts SolveOptions) (*Witness, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MaxScenarios <= 0 {
		opts.MaxScenarios = 100000
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers < 8 {
			workers = 8
		}
	}
	edges, w, done := n.prepare()
	if done {
		return w, 0, nil
	}
	nv := len(n.names)
	budget := newScenarioBudget(opts.MaxScenarios)
	runSeq := func() (*Witness, int, error) {
		s := &solver{n: n, ctx: ctx, edges: edges,
			chosen: make(map[[2]int]edgeChoice, len(edges)), budget: budget}
		w, err := s.assignEdges(0, newAxisNet(nv), newAxisNet(nv))
		return w, 1, err
	}
	if len(edges) == 0 || workers == 1 {
		return runSeq()
	}

	// Expand the first edge's branch choices into seeds, each with its own
	// propagated pair of axis networks; choices the axis networks already
	// refute are dropped here, exactly as assignEdges would drop them.
	key := edges[0]
	a, b := key[0], key[1]
	type seed struct {
		choice edgeChoice
		mx, my *axisNet
	}
	base := newAxisNet(nv)
	var seeds []seed
	for _, r := range n.cons[key].Relations() {
		for _, pair := range PairsOf(r) {
			ax, ay := pair[0], pair[1]
			mx := base.clone()
			my := base.clone()
			mx.set(a, b, AllenOf(ax))
			my.set(a, b, AllenOf(ay))
			if !mx.propagate() || !my.propagate() {
				continue
			}
			seeds = append(seeds, seed{choice: edgeChoice{rel: r, ax: ax, ay: ay}, mx: mx, my: my})
		}
	}
	if len(seeds) == 0 {
		return nil, 0, nil // no viable top-level choice: unsatisfiable
	}
	if len(seeds) == 1 {
		return runSeq()
	}

	branchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu      sync.Mutex
		witness *Witness
		werr    error
	)
	stripes := workers
	if stripes > len(seeds) {
		stripes = len(seeds)
	}
	var wg sync.WaitGroup
	for g := 0; g < stripes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Round-robin striping keeps late seeds on their own goroutine
			// when workers ≥ seeds, so a cheap satisfiable branch is never
			// queued behind a stripe-mate's barren search.
			for i := g; i < len(seeds); i += stripes {
				if branchCtx.Err() != nil {
					return
				}
				sd := seeds[i]
				s := &solver{n: n, ctx: branchCtx, edges: edges,
					chosen: map[[2]int]edgeChoice{key: sd.choice}, budget: budget}
				w, err := s.assignEdges(1, sd.mx, sd.my)
				if w != nil {
					mu.Lock()
					if witness == nil {
						witness = w
					}
					mu.Unlock()
					cancel() // first witness wins
					return
				}
				if err != nil {
					mu.Lock()
					if werr == nil {
						werr = err
					}
					mu.Unlock()
					// The shared budget is global: once one branch hits the
					// limit every branch will; context errors likewise end
					// the whole fan. Either way this stripe is done.
					return
				}
			}
		}(g)
	}
	wg.Wait()

	switch {
	case witness != nil:
		return witness, len(seeds), nil
	case ctx.Err() != nil:
		// The caller's context expired (parallel-internal cancellation only
		// happens after a witness, handled above).
		return nil, len(seeds), ctx.Err()
	case werr != nil && errors.Is(werr, ErrSearchLimit):
		return nil, len(seeds), ErrSearchLimit
	case werr != nil && !errors.Is(werr, context.Canceled):
		return nil, len(seeds), werr
	default:
		return nil, len(seeds), nil // every branch refuted: unsatisfiable
	}
}
