package reason

import "cardirect/internal/core"

// Inverse computes inv(R): the set of basic cardinal direction relations Q
// such that some pair of REG* regions satisfies both a R b and b Q a — the
// operation of the paper's §2 ("the inverse of a cardinal direction relation
// R … is, in general, a disjunctive cardinal direction relation").
//
// The computation enumerates the Allen pairs (ax, ay) under which R is
// realisable; for each, the converse pair (ax⁻¹, ay⁻¹) constrains b's tiles
// in a's grid, and every relation consistent with the converse pair is a
// possible inverse. For REG* regions this is exact: blob placement makes the
// x/y abstraction complete (validated against concrete polygon workloads in
// the tests).
func Inverse(r core.Relation) core.RelationSet {
	var out core.RelationSet
	if !r.IsValid() {
		return out
	}
	t := getTables()
	for _, p := range t.pairs[r] {
		ax := AllenRel(p / NumAllen)
		ay := AllenRel(p % NumAllen)
		out = out.Union(t.consistent[ax.Converse()][ay.Converse()])
	}
	return out
}

// InverseSet lifts Inverse to disjunctive relations: the union of the
// inverses of the disjuncts.
func InverseSet(s core.RelationSet) core.RelationSet {
	var out core.RelationSet
	for _, r := range s.Relations() {
		out = out.Union(Inverse(r))
	}
	return out
}

// MutuallyInverse reports whether the ordered pair (R1, R2) can
// simultaneously hold as a R1 b and b R2 a — the paper's §2 condition for a
// pair to "fully characterise the relative position" of two regions:
// R1 must be a disjunct of inv(R2) and R2 a disjunct of inv(R1).
func MutuallyInverse(r1, r2 core.Relation) bool {
	if !r1.IsValid() || !r2.IsValid() {
		return false
	}
	// A single joint Allen pair must support both directions.
	t := getTables()
	for _, p := range t.pairs[r1] {
		ax := AllenRel(p / NumAllen)
		ay := AllenRel(p % NumAllen)
		if PairConsistent(r2, ax.Converse(), ay.Converse()) {
			return true
		}
	}
	return false
}
