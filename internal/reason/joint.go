package reason

import (
	"fmt"
	"sync"

	"cardirect/internal/core"
	"cardirect/internal/topo"
)

// TopoConstraint asserts an RCC-8 topological relation set between two
// named region variables of a directional network: X Rels Y.
type TopoConstraint struct {
	X, Y string
	Rels topo.RCC8Set
}

// withBRelations is the set of directional relations whose tile set
// includes B — every relation a primary can have to a reference whose
// bounding box it reaches into.
var (
	withBOnce      sync.Once
	withBRelations core.RelationSet
)

func relationsWithB() core.RelationSet {
	withBOnce.Do(func() {
		for r := core.Relation(1); r <= core.RelationMask; r++ {
			if r.IsValid() && r.Has(core.TileB) {
				withBRelations.Add(r)
			}
		}
	})
	return withBRelations
}

// dirFromTopo returns the directional relations compatible with a
// topological base relation t between a and b:
//
//   - EQ, TPP, NTPP: a lies inside b, hence inside mbb(b) — dir(a,b) = B.
//   - PO, TPPi, NTPPi: a shares interior with b ⊆ mbb(b), so a has material
//     in the B tile (possibly among others).
//   - DC, EC: no information — a disjoint region can poke anywhere.
func dirFromTopo(t topo.RCC8) core.RelationSet {
	switch t {
	case topo.EQ, topo.TPP, topo.NTPP:
		return core.NewRelationSet(core.B)
	case topo.PO, topo.TPPi, topo.NTPPi:
		return relationsWithB()
	default:
		return core.Universe()
	}
}

// topoFromDir returns the topological relations compatible with a definite
// directional relation r between a and b:
//
//   - r = B alone says nothing: a inside mbb(b) can equal, contain, overlap
//     or avoid b.
//   - B among other tiles: a has material outside mbb(b) ⊇ b, so a is not
//     contained in b and not equal to it.
//   - no B tile: a has no interior material inside mbb(b), which rules out
//     any shared interior with b and any containment either way; only DC
//     and EC (boundary contact where b touches its own bounding box)
//     remain.
func topoFromDir(r core.Relation) topo.RCC8Set {
	switch {
	case r == core.B:
		return topo.RCC8All
	case r.Has(core.TileB):
		return topo.RCC8Of(topo.DC, topo.EC, topo.PO, topo.TPPi, topo.NTPPi)
	default:
		return topo.RCC8Of(topo.DC, topo.EC)
	}
}

// RefineJoint runs the combined directional+topological closure in the
// style of Li & Cohn's joint consistency theory (PAPERS.md): RCC-8 path
// consistency over the topological constraints, the directional Refine
// closure, and the bidirectional coupling rules above (containment forces
// dir = B; absence of the B tile forbids shared interiors) — iterated to a
// fixpoint. It prunes the directional network in place, like Refine, and
// returns false when any constraint empties: the network pair is then
// certainly jointly unsatisfiable, including cases each closure accepts
// alone. Like Refine it is a sound filter, not a complete joint decision
// procedure. Topology constraints over unknown variables are an error.
func (n *Network) RefineJoint(topoCons []TopoConstraint) (bool, error) {
	nv := len(n.names)
	tn := topo.NewRCC8Net(nv)
	for _, tc := range topoCons {
		if tc.Rels.IsEmpty() {
			return false, fmt.Errorf("reason: empty topology constraint between %q and %q", tc.X, tc.Y)
		}
		i, okx := n.idx[tc.X]
		j, oky := n.idx[tc.Y]
		if !okx || !oky {
			return false, fmt.Errorf("reason: unknown variable in topology constraint (%q, %q)", tc.X, tc.Y)
		}
		if i == j {
			if !tc.Rels.Has(topo.EQ) {
				return false, nil // a region relates to itself by EQ only
			}
			continue
		}
		tn.Set(i, j, tc.Rels)
		if tn.Get(i, j).IsEmpty() {
			return false, nil
		}
	}
	for {
		if !tn.Propagate() {
			return false, nil
		}
		if !n.Refine() {
			return false, nil
		}
		changed := false
		for i := 0; i < nv; i++ {
			for j := 0; j < nv; j++ {
				if i == j {
					continue
				}
				key := [2]int{i, j}
				ts := tn.Get(i, j)
				// Topology → direction: only when topology actually
				// constrains the pair (a full set never prunes).
				if ts != topo.RCC8All {
					var dirAllowed core.RelationSet
					for _, t := range ts.Rels() {
						dirAllowed = dirAllowed.Union(dirFromTopo(t))
					}
					cur, ok := n.cons[key]
					if !ok {
						cur = core.Universe()
					}
					pruned := cur.Intersect(dirAllowed)
					if !pruned.Equal(cur) {
						n.cons[key] = pruned
						changed = true
						if pruned.IsEmpty() {
							return false, nil
						}
					}
				}
				// Direction → topology.
				if rs, ok := n.cons[key]; ok && !rs.Equal(core.Universe()) {
					var topoAllowed topo.RCC8Set
					for _, r := range rs.Relations() {
						topoAllowed |= topoFromDir(r)
						if topoAllowed == topo.RCC8All {
							break
						}
					}
					if nts := ts & topoAllowed; nts != ts {
						tn.Set(i, j, nts)
						changed = true
						if nts == 0 {
							return false, nil
						}
					}
				}
			}
		}
		if !changed {
			return true, nil
		}
	}
}
