package reason

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"cardirect/internal/core"
	"cardirect/internal/topo"
)

// checkOK runs Check and fails the test on any error.
func checkOK(t *testing.T, n *Network, opts CheckOptions) *CheckResult {
	t.Helper()
	res, err := n.Check(context.Background(), opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

func TestCheckEmptyNetwork(t *testing.T) {
	n := NewNetwork()
	res := checkOK(t, n, CheckOptions{})
	if !res.Satisfiable || res.Witness == nil || len(res.Witness.Regions) != 0 {
		t.Fatalf("empty network: %+v", res)
	}
	if res.Stats.Vars != 0 || res.Stats.Edges != 0 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestCheckSingleVariable(t *testing.T) {
	n := NewNetwork()
	n.AddVariable("a")
	res := checkOK(t, n, CheckOptions{})
	if !res.Satisfiable || res.Witness == nil {
		t.Fatalf("single variable: %+v", res)
	}
	if _, ok := res.Witness.Regions["a"]; !ok {
		t.Error("witness missing the variable's region")
	}
}

func TestCheckSelfLoop(t *testing.T) {
	// a N a is impossible; a B a is the only consistent self constraint.
	bad := NewNetwork()
	if err := bad.ConstrainRel("a", "a", core.N); err != nil {
		t.Fatal(err)
	}
	if res := checkOK(t, bad, CheckOptions{}); res.Satisfiable {
		t.Error("a N a accepted")
	}
	good := NewNetwork()
	if err := good.ConstrainRel("a", "a", core.B); err != nil {
		t.Fatal(err)
	}
	if res := checkOK(t, good, CheckOptions{}); !res.Satisfiable {
		t.Error("a B a rejected")
	}
}

func TestCheckDoesNotMutateNetwork(t *testing.T) {
	n := NewNetwork()
	rs := core.NewRelationSet(core.N, core.S, core.B)
	if err := n.Constrain("a", "b", rs); err != nil {
		t.Fatal(err)
	}
	if err := n.ConstrainRel("b", "a", core.S); err != nil {
		t.Fatal(err)
	}
	checkOK(t, n, CheckOptions{})
	if got := n.cons[[2]int{0, 1}]; !got.Equal(rs) {
		t.Errorf("Check mutated the caller's constraint: %v", got)
	}
}

func TestCheckWitnessVerifies(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "b", core.N)
	n.ConstrainRel("b", "c", mustRel(t, "NE:E"))
	n.Constrain("a", "c", core.NewRelationSet(core.N, core.NE, mustRel(t, "N:NE")))
	res := checkOK(t, n, CheckOptions{})
	if !res.Satisfiable {
		t.Fatal("satisfiable network rejected")
	}
	verifyWitness(t, n, res.Witness)
}

// TestCheckFastPathDecides: a chain of single-tile constraints is in the
// tractable fragment; the fast path must decide it — both ways — without
// entering the backtracking solver (counter-asserted via the stats).
func TestCheckFastPathDecides(t *testing.T) {
	sat := NewNetwork()
	sat.ConstrainRel("a", "b", core.N)
	sat.ConstrainRel("b", "c", core.NW)
	sat.ConstrainRel("a", "d", mustRel(t, "B:N")) // rectangular block: col {1}, rows {1,2}
	res := checkOK(t, sat, CheckOptions{})
	if !res.Stats.FastPathEligible || !res.Stats.FastPathDecided {
		t.Fatalf("fast path did not decide: %+v", res.Stats)
	}
	if res.Stats.SolverBranches != 0 {
		t.Errorf("solver ran despite fast path: %+v", res.Stats)
	}
	if !res.Satisfiable {
		t.Fatal("satisfiable in-fragment network rejected")
	}
	verifyWitness(t, sat, res.Witness)

	// An N-cycle is unsatisfiable; axis path consistency refutes it.
	unsat := NewNetwork()
	unsat.ConstrainRel("a", "b", core.N)
	unsat.ConstrainRel("b", "c", core.N)
	unsat.ConstrainRel("c", "a", core.N)
	res = checkOK(t, unsat, CheckOptions{})
	if res.Satisfiable {
		t.Fatal("N-cycle accepted")
	}
	// Refine alone already refutes the cycle, so assert only that no
	// backtracking happened.
	if res.Stats.SolverBranches != 0 {
		t.Errorf("solver ran on the N-cycle: %+v", res.Stats)
	}
}

// TestCheckFragmentDifferential: random in-fragment networks decided by the
// fast path must agree with the full solver with the fast path disabled.
func TestCheckFragmentDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	blocks := rectangularRelations()
	names := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 60; trial++ {
		n := NewNetwork()
		for _, name := range names {
			n.AddVariable(name)
		}
		for e := 0; e < 4; e++ {
			i := rng.Intn(len(names))
			j := rng.Intn(len(names))
			if i == j {
				continue
			}
			n.ConstrainRel(names[i], names[j], blocks[rng.Intn(len(blocks))])
		}
		fast := checkOK(t, n, CheckOptions{})
		slow := checkOK(t, n, CheckOptions{NoFastPath: true, NoParallel: true})
		if fast.Satisfiable != slow.Satisfiable {
			t.Fatalf("trial %d: fast=%v slow=%v for %v", trial, fast.Satisfiable, slow.Satisfiable, n.cons)
		}
		if fast.Satisfiable {
			verifyWitness(t, n, fast.Witness)
		}
	}
}

// rectangularRelations lists every full contiguous rectangular tile block —
// the basic relations of the tractable fragment.
func rectangularRelations() []core.Relation {
	spans := [][]int{{0}, {1}, {2}, {0, 1}, {1, 2}, {0, 1, 2}}
	var out []core.Relation
	for _, cols := range spans {
		for _, rows := range spans {
			var r core.Relation
			for _, c := range cols {
				for _, w := range rows {
					r = r.With(core.TileAt(c, w))
				}
			}
			out = append(out, r)
		}
	}
	return out
}

// TestCheckParallelDifferential: the parallel and sequential solvers agree
// on satisfiability over random disjunctive networks, and parallel
// witnesses verify.
func TestCheckParallelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	names := []string{"a", "b", "c", "d"}
	singles := []core.Relation{core.B, core.S, core.SW, core.W, core.NW, core.N, core.NE, core.E, core.SE}
	for trial := 0; trial < 40; trial++ {
		n := NewNetwork()
		for e := 0; e < 3; e++ {
			i := rng.Intn(len(names))
			j := rng.Intn(len(names))
			if i == j {
				continue
			}
			var rs core.RelationSet
			for k := 0; k < 1+rng.Intn(3); k++ {
				rs.Add(singles[rng.Intn(len(singles))])
			}
			n.Constrain(names[i], names[j], rs)
		}
		wseq, errSeq := n.SolveCtx(context.Background(), SolveOptions{})
		wpar, errPar := n.SolveParallel(context.Background(), SolveOptions{Workers: 4})
		if errSeq != nil || errPar != nil {
			t.Fatalf("trial %d: errs %v / %v", trial, errSeq, errPar)
		}
		if (wseq != nil) != (wpar != nil) {
			t.Fatalf("trial %d: sequential=%v parallel=%v for %v", trial, wseq != nil, wpar != nil, n.cons)
		}
		if wpar != nil {
			verifyWitness(t, n, wpar)
		}
	}
}

// TestCheckCancellationNoLeak: cancelling mid-solve returns the context
// error and leaves no solver goroutines behind.
func TestCheckCancellationNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	// A hard unsatisfiable-ish network that searches long enough to be
	// cancelled: disjunctive constraints over a clique.
	n := NewNetwork()
	names := []string{"a", "b", "c", "d", "e"}
	rs := core.NewRelationSet(core.N, core.S, core.E, core.W)
	for i := range names {
		for j := range names {
			if i != j {
				n.Constrain(names[i], names[j], rs)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := n.Check(ctx, CheckOptions{Workers: 8, MaxScenarios: 1 << 30})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline or a fast decision", err)
	}
	// Give cancelled branch goroutines a moment to unwind, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCheckSearchLimit: a tiny shared budget surfaces ErrSearchLimit from
// the parallel solver (or succeeds instantly — both are acceptable; what
// must not happen is a hang or a wrong "unsatisfiable").
func TestCheckSearchLimit(t *testing.T) {
	n := NewNetwork()
	names := []string{"a", "b", "c", "d"}
	for i := range names {
		for j := range names {
			if i != j {
				n.Constrain(names[i], names[j], core.Universe())
			}
		}
	}
	// Universe edges are dropped by Check; constrain semi-tightly instead.
	n2 := NewNetwork()
	rs := core.NewRelationSet(core.N, core.S, core.E, core.W, core.NE)
	for i := range names {
		for j := range names {
			if i != j {
				n2.Constrain(names[i], names[j], rs)
			}
		}
	}
	res, err := n2.Check(context.Background(), CheckOptions{MaxScenarios: 1, Workers: 4})
	if err != nil && !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("err = %v", err)
	}
	if err == nil && res.Satisfiable {
		verifyWitness(t, n2, res.Witness)
	}
}

// TestCheckJointRejects: networks consistent under each closure alone but
// jointly unsatisfiable are rejected by the combined check.
func TestCheckJointRejects(t *testing.T) {
	// dir: a strictly north of b; topo: a inside b. Containment forces
	// dir(a,b) = B, clashing with N.
	n := NewNetwork()
	n.ConstrainRel("a", "b", core.N)
	if ok := n.Clone().Refine(); !ok {
		t.Fatal("directional closure alone should accept a N b")
	}
	res := checkOK(t, n, CheckOptions{Topology: []TopoConstraint{
		{X: "a", Y: "b", Rels: topo.RCC8Of(topo.TPP)},
	}})
	if res.Satisfiable {
		t.Fatal("jointly unsatisfiable network accepted")
	}
	if !res.Stats.JointApplied || !res.Stats.JointRejected {
		t.Errorf("stats: %+v", res.Stats)
	}

	// Pure topology: a ⊂⊂ b ⊂⊂ c with a DC c is inconsistent by RCC-8
	// path consistency even with no directional constraints at all.
	n2 := NewNetwork()
	for _, v := range []string{"a", "b", "c"} {
		n2.AddVariable(v)
	}
	res = checkOK(t, n2, CheckOptions{Topology: []TopoConstraint{
		{X: "a", Y: "b", Rels: topo.RCC8Of(topo.NTPP)},
		{X: "b", Y: "c", Rels: topo.RCC8Of(topo.NTPP)},
		{X: "a", Y: "c", Rels: topo.RCC8Of(topo.DC)},
	}})
	if res.Satisfiable {
		t.Fatal("NTPP chain with DC shortcut accepted")
	}

	// And a jointly consistent pair stays satisfiable with a verified
	// witness: a north of b, both disconnected.
	n3 := NewNetwork()
	n3.ConstrainRel("a", "b", core.N)
	res = checkOK(t, n3, CheckOptions{Topology: []TopoConstraint{
		{X: "a", Y: "b", Rels: topo.RCC8Of(topo.DC)},
	}})
	if !res.Satisfiable {
		t.Fatal("jointly consistent network rejected")
	}
	verifyWitness(t, n3, res.Witness)

	// Unknown topology variables are an error, not a silent accept.
	if _, err := n3.Check(context.Background(), CheckOptions{Topology: []TopoConstraint{
		{X: "a", Y: "nosuch", Rels: topo.RCC8Of(topo.DC)},
	}}); err == nil {
		t.Fatal("unknown topology variable accepted")
	}
}

// TestEntailInconsistentSentinel: Entail surfaces ErrInconsistent for
// refutable networks so callers (and the HTTP layer) can match it.
func TestEntailInconsistentSentinel(t *testing.T) {
	n := NewNetwork()
	n.ConstrainRel("a", "b", core.N)
	n.ConstrainRel("b", "a", core.N)
	if _, err := n.Entail("a", "b"); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

// FuzzSolverDifferential drives random small networks through the
// sequential solver, the parallel solver, and Check (fast path on), and
// requires identical satisfiability verdicts plus verified witnesses.
func FuzzSolverDifferential(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0x56})
	f.Add([]byte{0xff, 0x00, 0x81, 0x7e})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 12 {
			t.Skip()
		}
		names := []string{"a", "b", "c", "d"}
		singles := []core.Relation{core.B, core.S, core.SW, core.W, core.NW, core.N, core.NE, core.E, core.SE}
		n := NewNetwork()
		// Each byte encodes one constraint: 4 bits pair selector, 4 bits
		// relation disjunction seed.
		for _, bt := range data {
			i := int(bt>>6) & 3
			j := int(bt>>4) & 3
			if i == j {
				continue
			}
			var rs core.RelationSet
			seed := int(bt & 0xf)
			rs.Add(singles[seed%len(singles)])
			if seed >= 9 {
				rs.Add(singles[(seed*5)%len(singles)])
			}
			n.Constrain(names[i], names[j], rs)
		}
		opts := SolveOptions{MaxScenarios: 20000}
		wseq, errSeq := n.SolveCtx(context.Background(), opts)
		wpar, errPar := n.SolveParallel(context.Background(), SolveOptions{MaxScenarios: 20000, Workers: 4})
		if errors.Is(errSeq, ErrSearchLimit) || errors.Is(errPar, ErrSearchLimit) {
			t.Skip() // budget races make the verdicts incomparable
		}
		if errSeq != nil || errPar != nil {
			t.Fatalf("errs: %v / %v", errSeq, errPar)
		}
		if (wseq != nil) != (wpar != nil) {
			t.Fatalf("sequential=%v parallel=%v for %v", wseq != nil, wpar != nil, n.cons)
		}
		res, err := n.Check(context.Background(), CheckOptions{MaxScenarios: 20000, Workers: 4})
		if errors.Is(err, ErrSearchLimit) {
			t.Skip()
		}
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if res.Satisfiable != (wseq != nil) {
			t.Fatalf("Check=%v solver=%v for %v", res.Satisfiable, wseq != nil, n.cons)
		}
		if wpar != nil {
			verifyWitness(t, n, wpar)
		}
		if res.Witness != nil {
			verifyWitness(t, n, res.Witness)
		}
	})
}
