package reason

import (
	"sync"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// AxisInfo summarises what an Allen relation between the projections of the
// primary region a and the reference region b says about a's possible grid
// columns (or rows): which of the three strips a may occupy with positive
// area, and which strips a *must* occupy — the strips adjacent to a's own
// projection extremes (a region always has material arbitrarily close to
// its infimum and supremum).
type AxisInfo struct {
	Allowed uint8 // bitmask of strips 0 (low/west/south), 1 (middle), 2 (high/east/north)
	MandLo  int   // strip containing material just above inf(a)
	MandHi  int   // strip containing material just below sup(a)
}

// axisInfoTable[r] is the AxisInfo of a primary with projection A versus a
// reference with projection B when A r B, derived from the canonical numeric
// representatives.
var axisInfoTable [NumAllen]AxisInfo

func init() {
	for r := AllenRel(0); r < NumAllen; r++ {
		a := allenRepr[r][0]
		b := allenRepr[r][1]
		var info AxisInfo
		if a.lo < b.lo {
			info.Allowed |= 1 << 0
		}
		if max(a.lo, b.lo) < min(a.hi, b.hi) {
			info.Allowed |= 1 << 1
		}
		if a.hi > b.hi {
			info.Allowed |= 1 << 2
		}
		info.MandLo = stripOfLo(a.lo, b)
		info.MandHi = stripOfHi(a.hi, b)
		axisInfoTable[r] = info
	}
}

// stripOfLo returns the strip of the reference grid that contains points
// just above v (material adjacent to the infimum).
func stripOfLo(v float64, b interval) int {
	switch {
	case v < b.lo:
		return 0
	case v < b.hi:
		return 1
	default:
		return 2
	}
}

// stripOfHi returns the strip containing points just below v.
func stripOfHi(v float64, b interval) int {
	switch {
	case v > b.hi:
		return 2
	case v > b.lo:
		return 1
	default:
		return 0
	}
}

// AxisInfoOf returns the axis information for an Allen base relation.
func AxisInfoOf(r AllenRel) AxisInfo { return axisInfoTable[r] }

// colsMask returns the bitmask of grid columns used by the relation's tiles.
func colsMask(r core.Relation) uint8 {
	var m uint8
	for _, t := range r.Tiles() {
		m |= 1 << t.Col()
	}
	return m
}

// rowsMask returns the bitmask of grid rows used by the relation's tiles.
func rowsMask(r core.Relation) uint8 {
	var m uint8
	for _, t := range r.Tiles() {
		m |= 1 << t.Row()
	}
	return m
}

// PairConsistent reports whether the tile set R is realisable by a REG*
// primary region whose bounding-box projections relate to the reference's by
// ax on the x-axis and ay on the y-axis: R's columns must be allowed by ax,
// R's rows by ay, and the mandatory extreme strips must be occupied. For
// REG* these conditions are also sufficient — disconnected blobs realise any
// such tile set.
func PairConsistent(r core.Relation, ax, ay AllenRel) bool {
	if !r.IsValid() {
		return false
	}
	cm := colsMask(r)
	rm := rowsMask(r)
	xi := axisInfoTable[ax]
	yi := axisInfoTable[ay]
	if cm&^xi.Allowed != 0 || rm&^yi.Allowed != 0 {
		return false
	}
	return cm&(1<<xi.MandLo) != 0 && cm&(1<<xi.MandHi) != 0 &&
		rm&(1<<yi.MandLo) != 0 && rm&(1<<yi.MandHi) != 0
}

// pairTables holds the precomputed correspondence between Allen pairs and
// consistent tile relations, built lazily once.
type pairTables struct {
	// consistent[ax][ay] is the set of relations realisable under (ax, ay).
	consistent [NumAllen][NumAllen]core.RelationSet
	// pairs[r] lists the Allen pairs (ax*13+ay) under which relation r is
	// realisable.
	pairs [core.NumRelations + 1][]uint8
}

var (
	tablesOnce sync.Once
	tables     pairTables
)

func getTables() *pairTables {
	tablesOnce.Do(func() {
		for ax := AllenRel(0); ax < NumAllen; ax++ {
			for ay := AllenRel(0); ay < NumAllen; ay++ {
				for r := core.Relation(1); r <= core.RelationMask; r++ {
					if PairConsistent(r, ax, ay) {
						tables.consistent[ax][ay].Add(r)
						tables.pairs[r] = append(tables.pairs[r], uint8(ax)*NumAllen+uint8(ay))
					}
				}
			}
		}
	})
	return &tables
}

// PairsOf returns the Allen pairs (ax, ay) under which the relation is
// realisable.
func PairsOf(r core.Relation) [][2]AllenRel {
	t := getTables()
	ps := t.pairs[r]
	out := make([][2]AllenRel, len(ps))
	for i, p := range ps {
		out[i] = [2]AllenRel{AllenRel(p / NumAllen), AllenRel(p % NumAllen)}
	}
	return out
}

// ConsistentRelations returns the set of tile relations realisable under the
// Allen pair (ax, ay).
func ConsistentRelations(ax, ay AllenRel) core.RelationSet {
	return getTables().consistent[ax][ay]
}

// AllenPairOf abstracts a concrete configuration: the Allen relations
// between the bounding-box projections of a and b on each axis.
func AllenPairOf(a, b geom.Region) (ax, ay AllenRel) {
	ba := a.BoundingBox()
	bb := b.BoundingBox()
	ax = ClassifyIntervals(ba.MinX, ba.MaxX, bb.MinX, bb.MaxX)
	ay = ClassifyIntervals(ba.MinY, ba.MaxY, bb.MinY, bb.MaxY)
	return ax, ay
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
