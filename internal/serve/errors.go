package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/persist"
	"cardirect/internal/reason"
)

// statusClientClosed is nginx's non-standard 499 "client closed request":
// the request context was cancelled (the client went away), so no status
// will reach anyone — the code exists for the access log and metrics.
const statusClientClosed = 499

// httpError pins an explicit status (and optionally a machine-readable code
// and structured details) onto an error; handlers use it where the sentinel
// mapping is not specific enough.
type httpError struct {
	status  int
	code    string
	details any
	err     error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

// failf builds an httpError in one line; the error code falls back to the
// status's default.
func failf(status int, format string, args ...any) error {
	return &httpError{status: status, err: fmt.Errorf(format, args...)}
}

// failCode is failf with an explicit error code and optional details
// payload for the envelope.
func failCode(status int, code string, details any, format string, args ...any) error {
	return &httpError{status: status, code: code, details: details, err: fmt.Errorf(format, args...)}
}

// sentinelTable maps the shared error sentinels to (HTTP status, error
// code). Order matters only for errors wrapping several sentinels, which
// does not occur; the table is covered one-for-one by the status-mapping
// test. config.ErrUnknownRegion wraps core.ErrUnknownRegion, so the single
// core entry covers both layers. Solver outcomes: an unsatisfiable network
// is a 200 with satisfiable=false, never an error; ErrInconsistent is the
// entailment endpoint refusing a meaningless query; ErrSearchLimit is the
// scenario budget running out (the search gave up, like a timeout — raise
// max_scenarios and retry).
var sentinelTable = []struct {
	sentinel error
	status   int
	code     string
}{
	{core.ErrUnknownRegion, http.StatusNotFound, "unknown_region"},
	{config.ErrDuplicateRegion, http.StatusConflict, "duplicate_region"},
	{core.ErrDegenerateRegion, http.StatusUnprocessableEntity, "degenerate_region"},
	{persist.ErrEmptyWorld, http.StatusUnprocessableEntity, "empty_world"},
	{reason.ErrInconsistent, http.StatusUnprocessableEntity, "inconsistent_network"},
	{reason.ErrSearchLimit, http.StatusGatewayTimeout, "search_limit"},
	{context.DeadlineExceeded, http.StatusGatewayTimeout, "timeout"},
	{context.Canceled, statusClientClosed, "canceled"},
}

// codeForStatus is the default error code for statuses pinned explicitly
// via failf.
func codeForStatus(status int) string {
	switch status {
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusGatewayTimeout:
		return "timeout"
	case statusClientClosed:
		return "canceled"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return "bad_request"
	}
}

// statusOf maps an error to its HTTP status and machine-readable code: an
// explicit httpError wins, then the sentinel table; everything unmapped is
// a client error (400) — the handlers produce no internal errors that are
// not explicitly pinned.
func statusOf(err error) (int, string) {
	var he *httpError
	if errors.As(err, &he) {
		code := he.code
		if code == "" {
			code = codeForStatus(he.status)
		}
		return he.status, code
	}
	for _, m := range sentinelTable {
		if errors.Is(err, m.sentinel) {
			return m.status, m.code
		}
	}
	return http.StatusBadRequest, "bad_request"
}

// The shared response envelope: every endpoint (both prefixes) wraps
// success bodies as {"data": ...} and failures as {"error": {"code",
// "message", "details"}} — one shape for clients to branch on.

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Details any    `json:"details,omitempty"`
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type dataEnvelope struct {
	Data any `json:"data"`
}

// writeError emits the mapped status and the enveloped error body.
func writeError(w http.ResponseWriter, err error) {
	status, code := statusOf(err)
	body := errorBody{Code: code, Message: err.Error()}
	var he *httpError
	if errors.As(err, &he) && he.details != nil {
		body.Details = he.details
	}
	writeJSON(w, status, errorEnvelope{Error: body})
}

// writeData emits a success response wrapped in the data envelope.
func writeData(w http.ResponseWriter, status int, v any) error {
	return writeJSON(w, status, dataEnvelope{Data: v})
}

// writeJSON emits a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	return enc.Encode(v)
}
