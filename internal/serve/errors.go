package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/persist"
)

// statusClientClosed is nginx's non-standard 499 "client closed request":
// the request context was cancelled (the client went away), so no status
// will reach anyone — the code exists for the access log and metrics.
const statusClientClosed = 499

// httpError pins an explicit status onto an error; handlers use it where
// the sentinel mapping is not specific enough.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

// failf builds an httpError in one line.
func failf(status int, format string, args ...any) error {
	return &httpError{status: status, err: fmt.Errorf(format, args...)}
}

// statusOf maps an error to its HTTP status through the shared sentinels.
// config.ErrUnknownRegion wraps core.ErrUnknownRegion, so the single core
// test covers both layers; everything unmapped is a client error (400) —
// the handlers produce no internal errors that are not explicitly pinned.
func statusOf(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, core.ErrUnknownRegion):
		return http.StatusNotFound
	case errors.Is(err, config.ErrDuplicateRegion):
		return http.StatusConflict
	case errors.Is(err, core.ErrDegenerateRegion):
		return http.StatusUnprocessableEntity
	case errors.Is(err, persist.ErrEmptyWorld):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosed
	default:
		return http.StatusBadRequest
	}
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// writeError emits the mapped status and JSON error body.
func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
}

// writeJSON emits a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	return enc.Encode(v)
}
