package serve

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"cardirect/internal/replica"
)

// maxWALWait caps the long-poll duration a follower may request; the
// request timeout (when configured) still cuts it shorter via the context.
const maxWALWait = 60 * time.Second

// defaultWALBatch bounds records per wal fetch when the follower does not
// say.
const defaultWALBatch = 4096

// effectiveRole names the server's replication role for status output.
func (s *Server) effectiveRole() string {
	if s.opt.Role == "" {
		return "primary"
	}
	return s.opt.Role
}

// handleReplSnapshot streams the current world as a binary snapshot
// (persist's CDSN format) plus the replication coordinates — epoch, head
// sequence, store generation, percent mode — a follower needs to seed
// itself and resume the tail exactly where the snapshot leaves off.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) error {
	p := s.opt.Repl
	if p == nil {
		return failf(http.StatusNotFound, "serve: replication not enabled (this node is not a replication primary)")
	}
	data, seq, gen, err := p.Snapshot()
	if err != nil {
		return err
	}
	h := w.Header()
	h.Set(replica.HeaderEpoch, p.Epoch())
	h.Set(replica.HeaderSeq, strconv.FormatUint(seq, 10))
	h.Set(replica.HeaderGeneration, strconv.FormatUint(gen, 10))
	h.Set(replica.HeaderPct, pctMode(p.Pct()))
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(data)))
	_, err = w.Write(data)
	return err
}

// handleReplWAL serves framed replication records from ?from=<seq>,
// long-polling up to ?wait when the follower is caught up. A from below
// the retained window answers 410 wal_truncated: the follower re-bootstraps
// from a fresh snapshot.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) error {
	p := s.opt.Repl
	if p == nil {
		return failf(http.StatusNotFound, "serve: replication not enabled (this node is not a replication primary)")
	}
	q := r.URL.Query()
	from := uint64(1)
	if v := q.Get("from"); v != "" {
		var err error
		if from, err = strconv.ParseUint(v, 10, 64); err != nil || from == 0 {
			return failf(http.StatusBadRequest, "serve: bad from parameter %q (want a sequence ≥ 1)", v)
		}
	}
	max := defaultWALBatch
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return failf(http.StatusBadRequest, "serve: bad max parameter %q", v)
		}
		max = n
	}
	if v := q.Get("wait"); v != "" {
		wait, err := time.ParseDuration(v)
		if err != nil || wait < 0 {
			return failf(http.StatusBadRequest, "serve: bad wait parameter %q", v)
		}
		if wait > maxWALWait {
			wait = maxWALWait
		}
		if wait > 0 {
			p.Wait(r.Context(), from-1, wait)
		}
	}
	recs, head, err := p.Records(from, max)
	h := w.Header()
	h.Set(replica.HeaderEpoch, p.Epoch())
	h.Set(replica.HeaderHead, strconv.FormatUint(head, 10))
	if err != nil {
		if errors.Is(err, replica.ErrTruncated) {
			return failCode(http.StatusGone, "wal_truncated",
				map[string]any{"head": head}, "serve: %v; re-bootstrap from /v1/replication/snapshot", err)
		}
		return err
	}
	data := replica.EncodeStream(recs)
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(data)))
	_, err = w.Write(data)
	return err
}

// replStatusResponse reports a node's replication position.
type replStatusResponse struct {
	Role       string          `json:"role"`
	Enabled    bool            `json:"enabled"`
	Generation uint64          `json:"generation"`
	Pct        string          `json:"pct"`
	Epoch      string          `json:"epoch,omitempty"`
	HeadSeq    uint64          `json:"head_seq,omitempty"`
	Replica    *replica.Status `json:"replica,omitempty"`
}

// handleReplStatus reports the node's role and replication position: on a
// primary the epoch and head sequence of the shipped log, on a replica the
// follower's applied/lag counters — the machine-readable face of the
// "replication" expvars.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) error {
	out := replStatusResponse{
		Role:       s.effectiveRole(),
		Generation: s.tracked().Store().Generation(),
		Pct:        pctMode(!s.pctDisabled()),
	}
	if p := s.opt.Repl; p != nil {
		out.Enabled = true
		out.Epoch = p.Epoch()
		out.HeadSeq = p.Head()
	}
	if f := s.opt.Follower; f != nil {
		out.Enabled = true
		st := f.Status()
		out.Replica = &st
		out.Epoch = st.Epoch
	}
	return writeData(w, http.StatusOK, out)
}

func pctMode(on bool) string {
	if on {
		return "on"
	}
	return "off"
}
