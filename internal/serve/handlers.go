package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/index"
	"cardirect/internal/query"
)

// boxJSON is an axis-aligned bounding box on the wire.
type boxJSON struct {
	MinX float64 `json:"minx"`
	MinY float64 `json:"miny"`
	MaxX float64 `json:"maxx"`
	MaxY float64 `json:"maxy"`
}

func toBoxJSON(r geom.Rect) boxJSON {
	return boxJSON{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// regionInfo is the region summary returned by the listing and the edit
// endpoints.
type regionInfo struct {
	ID       string  `json:"id"`
	Name     string  `json:"name,omitempty"`
	Color    string  `json:"color,omitempty"`
	Polygons int     `json:"polygons"`
	Edges    int     `json:"edges"`
	Box      boxJSON `json:"box"`
}

func toRegionInfo(r *config.Region) regionInfo {
	g := r.Geometry()
	return regionInfo{
		ID:       r.ID,
		Name:     r.Name,
		Color:    r.Color,
		Polygons: len(r.Polygons),
		Edges:    g.NumEdges(),
		Box:      toBoxJSON(g.BoundingBox()),
	}
}

// geometryPayload carries a region geometry in either interchange format;
// exactly one of the fields must be set.
type geometryPayload struct {
	WKT     string          `json:"wkt,omitempty"`
	GeoJSON json.RawMessage `json:"geojson,omitempty"`
}

// geometry decodes the payload into a REG* region.
func (p *geometryPayload) geometry() (geom.Region, error) {
	switch {
	case p.WKT != "" && p.GeoJSON != nil:
		return nil, failf(http.StatusBadRequest, "serve: provide wkt or geojson, not both")
	case p.WKT != "":
		g, err := geom.ParseWKT(p.WKT)
		if err != nil {
			return nil, err
		}
		return g, nil
	case p.GeoJSON != nil:
		g, err := geom.ParseGeoJSON(p.GeoJSON)
		if err != nil {
			return nil, err
		}
		return g, nil
	default:
		return nil, failf(http.StatusBadRequest, "serve: missing geometry (wkt or geojson)")
	}
}

// decodeBody decodes a JSON request body into v, translating the
// MaxBytesReader overflow into 413.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return failf(http.StatusRequestEntityTooLarge, "serve: request body over %d bytes", tooLarge.Limit)
		}
		return failf(http.StatusBadRequest, "serve: decoding request body: %v", err)
	}
	// A trailing second JSON value is a malformed request, not data.
	if dec.More() {
		return failf(http.StatusBadRequest, "serve: trailing data after JSON body")
	}
	return nil
}

// pctJSON renders a percent matrix as a tile→percentage map, omitting
// zero tiles; JSON object keys marshal sorted, so bodies are deterministic.
func pctJSON(m core.PercentMatrix) map[string]float64 {
	out := make(map[string]float64, core.NumTiles)
	for _, t := range core.Tiles() {
		if v := m.Get(t); v != 0 {
			out[t.String()] = v
		}
	}
	return out
}

// errPctDisabled is the percent surface's refusal when the store runs
// without eager percent matrices (-pct=off, or a replica of such a primary).
func errPctDisabled() error {
	return failCode(http.StatusUnprocessableEntity, "pct_disabled", nil,
		"serve: percent tracking is disabled on this node (start the primary with -pct=on)")
}

// --- endpoint handlers ---

type healthResponse struct {
	Status  string `json:"status"`
	Regions int    `json:"regions"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	tr := s.tracked()
	if err := tr.Err(); err != nil {
		return failf(http.StatusInternalServerError, "serve: tracking diverged: %v", err)
	}
	if p := s.opt.Persist; p != nil {
		if st := p.Status(); st.Err != "" {
			return failf(http.StatusInternalServerError, "serve: persistence failed: %s", st.Err)
		}
	}
	return writeData(w, http.StatusOK, healthResponse{Status: "ok", Regions: tr.Store().Len()})
}

type regionsResponse struct {
	Regions []regionInfo `json:"regions"`
}

func (s *Server) handleRegionsList(w http.ResponseWriter, r *http.Request) error {
	var out regionsResponse
	err := s.tracked().View(func(img *config.Image) error {
		out.Regions = make([]regionInfo, 0, len(img.Regions))
		for i := range img.Regions {
			out.Regions = append(out.Regions, toRegionInfo(&img.Regions[i]))
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(out.Regions, func(i, j int) bool { return out.Regions[i].ID < out.Regions[j].ID })
	return writeData(w, http.StatusOK, out)
}

type regionDetail struct {
	regionInfo
	WKT     string          `json:"wkt"`
	GeoJSON json.RawMessage `json:"geojson"`
}

func (s *Server) handleRegionGet(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	var out regionDetail
	err := s.tracked().View(func(img *config.Image) error {
		reg := img.FindRegion(id)
		if reg == nil {
			return fmt.Errorf("serve: region %q: %w", id, config.ErrUnknownRegion)
		}
		g := reg.Geometry()
		gj, err := geom.FormatGeoJSON(g)
		if err != nil {
			return failf(http.StatusInternalServerError, "serve: encoding %q: %v", id, err)
		}
		out = regionDetail{regionInfo: toRegionInfo(reg), WKT: geom.FormatWKT(g), GeoJSON: gj}
		return nil
	})
	if err != nil {
		return err
	}
	return writeData(w, http.StatusOK, out)
}

type regionUpsert struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	Color string `json:"color,omitempty"`
	geometryPayload
}

func (s *Server) handleRegionAdd(w http.ResponseWriter, r *http.Request) error {
	var req regionUpsert
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	if req.ID == "" {
		return failf(http.StatusBadRequest, "serve: missing region id")
	}
	g, err := req.geometry()
	if err != nil {
		return err
	}
	if err := s.edit.AddRegion(req.ID, req.Name, req.Color, g); err != nil {
		return err
	}
	return s.respondRegion(w, http.StatusCreated, req.ID)
}

func (s *Server) handleRegionSet(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	var req geometryPayload
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	g, err := req.geometry()
	if err != nil {
		return err
	}
	if err := s.edit.SetRegionGeometry(id, g); err != nil {
		return err
	}
	return s.respondRegion(w, http.StatusOK, id)
}

type renameRequest struct {
	NewID string `json:"new_id"`
}

func (s *Server) handleRegionRename(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	var req renameRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	if req.NewID == "" {
		return failf(http.StatusBadRequest, "serve: missing new_id")
	}
	if err := s.edit.RenameRegion(id, req.NewID); err != nil {
		return err
	}
	return s.respondRegion(w, http.StatusOK, req.NewID)
}

func (s *Server) handleRegionDelete(w http.ResponseWriter, r *http.Request) error {
	if err := s.edit.RemoveRegion(r.PathValue("id")); err != nil {
		return err
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

// respondRegion returns the post-edit summary of one region.
func (s *Server) respondRegion(w http.ResponseWriter, status int, id string) error {
	var info regionInfo
	err := s.tracked().View(func(img *config.Image) error {
		reg := img.FindRegion(id)
		if reg == nil {
			return fmt.Errorf("serve: region %q: %w", id, config.ErrUnknownRegion)
		}
		info = toRegionInfo(reg)
		return nil
	})
	if err != nil {
		return err
	}
	return writeData(w, status, info)
}

type relationResponse struct {
	Primary   string             `json:"primary"`
	Reference string             `json:"reference"`
	Relation  string             `json:"relation"`
	Pct       map[string]float64 `json:"pct,omitempty"`
}

func (s *Server) handleRelation(w http.ResponseWriter, r *http.Request) error {
	p := r.URL.Query().Get("primary")
	q := r.URL.Query().Get("reference")
	if p == "" || q == "" {
		return failf(http.StatusBadRequest, "serve: missing primary or reference parameter")
	}
	if done, err := s.conditional(w, r); done || err != nil {
		return err
	}
	store := s.tracked().Store()
	rel, err := store.Relation(p, q)
	if err != nil {
		return err
	}
	out := relationResponse{Primary: p, Reference: q, Relation: rel.String()}
	if r.URL.Query().Get("pct") != "" {
		if s.pctDisabled() {
			return errPctDisabled()
		}
		m, err := store.Percent(p, q)
		if err != nil {
			return err
		}
		out.Pct = pctJSON(m)
	}
	return writeData(w, http.StatusOK, out)
}

type pairJSON struct {
	Primary   string             `json:"primary"`
	Reference string             `json:"reference"`
	Relation  string             `json:"relation,omitempty"`
	Pct       map[string]float64 `json:"pct,omitempty"`
}

type relationsResponse struct {
	Pairs []pairJSON `json:"pairs"`
}

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) error {
	if done, err := s.conditional(w, r); done || err != nil {
		return err
	}
	store := s.tracked().Store()
	var out relationsResponse
	if r.URL.Query().Get("pct") != "" {
		if s.pctDisabled() {
			return errPctDisabled()
		}
		pairs, err := store.PctPairs()
		if err != nil {
			return err
		}
		out.Pairs = make([]pairJSON, 0, len(pairs))
		for _, p := range pairs {
			out.Pairs = append(out.Pairs, pairJSON{Primary: p.Primary, Reference: p.Reference, Pct: pctJSON(p.Matrix)})
		}
	} else {
		pairs := store.Pairs()
		out.Pairs = make([]pairJSON, 0, len(pairs))
		for _, p := range pairs {
			out.Pairs = append(out.Pairs, pairJSON{Primary: p.Primary, Reference: p.Reference, Relation: p.Relation.String()})
		}
	}
	return writeData(w, http.StatusOK, out)
}

type batchRequest struct {
	Pct     bool `json:"pct,omitempty"`
	NoPrune bool `json:"noprune,omitempty"`
	Workers int  `json:"workers,omitempty"`
}

type batchResponse struct {
	Pairs []pairJSON `json:"pairs"`
	Stats core.Stats `json:"stats"`
}

// handleBatch recomputes every pair from scratch through the consolidated
// batch entry points — the "annotate this configuration" bulk operation,
// run under the request context so server timeouts and client disconnects
// abort it within one primary row of work.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) error {
	var req batchRequest
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return failf(http.StatusRequestEntityTooLarge, "serve: request body over %d bytes", tooLarge.Limit)
		}
		return failf(http.StatusBadRequest, "serve: reading request body: %v", err)
	}
	// An empty body means default options.
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return failf(http.StatusBadRequest, "serve: decoding request body: %v", err)
		}
	}
	var regions []core.NamedRegion
	err = s.tracked().View(func(img *config.Image) error {
		regions = make([]core.NamedRegion, len(img.Regions))
		for i := range img.Regions {
			regions[i] = core.NamedRegion{Name: img.Regions[i].ID, Region: img.Regions[i].Geometry()}
		}
		return nil
	})
	if err != nil {
		return err
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.opt.Workers
	}
	opt := &core.BatchOptions{Workers: workers, NoPrune: req.NoPrune}
	var out batchResponse
	if req.Pct {
		res, err := core.BatchPct(r.Context(), regions, opt)
		if err != nil {
			return err
		}
		out.Stats = res.Stats
		out.Pairs = make([]pairJSON, 0, len(res.Pairs))
		for _, p := range res.Pairs {
			out.Pairs = append(out.Pairs, pairJSON{Primary: p.Primary, Reference: p.Reference, Pct: pctJSON(p.Matrix)})
		}
	} else {
		res, err := core.BatchCDR(r.Context(), regions, opt)
		if err != nil {
			return err
		}
		out.Stats = res.Stats
		out.Pairs = make([]pairJSON, 0, len(res.Pairs))
		for _, p := range res.Pairs {
			out.Pairs = append(out.Pairs, pairJSON{Primary: p.Primary, Reference: p.Reference, Relation: p.Relation.String()})
		}
	}
	return writeData(w, http.StatusOK, out)
}

type bulkResponse struct {
	// Added is the number of regions ingested.
	Added int `json:"added"`
	// Batches is the number of batched recomputations the ingest cost —
	// one per request, versus one 2(n−1)-pair delta per region on the
	// per-region edit path.
	Batches    int   `json:"batches"`
	DurationNs int64 `json:"duration_ns"`
}

// handleBulk ingests a stream of regions — NDJSON, one region object per
// line in the POST /api/regions shape ({"id", "name", "color", "wkt" |
// "geojson"}) — as ONE edit: the whole stream is decoded and validated,
// then applied through Editor.BulkAddRegions, so the relation store pays a
// single batched recomputation (and the durable store a single batched WAL
// append with one fsync) regardless of how many regions arrive. The ingest
// is atomic: any undecodable line, invalid geometry or duplicate id
// rejects the whole stream with nothing applied. Oversized streams map to
// 413 via the route's body cap (Options.MaxBulkBytes).
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var regions []config.BulkRegion
	for {
		var line regionUpsert
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				return failf(http.StatusRequestEntityTooLarge, "serve: request body over %d bytes", tooLarge.Limit)
			}
			return failf(http.StatusBadRequest, "serve: decoding bulk line %d: %v", len(regions)+1, err)
		}
		if line.ID == "" {
			return failf(http.StatusBadRequest, "serve: bulk line %d: missing region id", len(regions)+1)
		}
		g, err := line.geometry()
		if err != nil {
			return failf(http.StatusBadRequest, "serve: bulk line %d (%s): %v", len(regions)+1, line.ID, err)
		}
		regions = append(regions, config.BulkRegion{ID: line.ID, Name: line.Name, Color: line.Color, Geometry: g})
	}
	if len(regions) == 0 {
		return failf(http.StatusBadRequest, "serve: empty bulk stream")
	}
	if err := s.edit.BulkAddRegions(regions); err != nil {
		return err
	}
	return writeData(w, http.StatusOK, bulkResponse{
		Added:      len(regions),
		Batches:    1,
		DurationNs: time.Since(start).Nanoseconds(),
	})
}

type selectResponse struct {
	Reference string            `json:"reference"`
	Relation  string            `json:"relation"`
	Matches   []string          `json:"matches"`
	Stats     index.SelectStats `json:"stats"`
}

// handleSelect answers a directional selection ("everything north of b")
// through the live R-tree: window queries per constraint tile, MBB
// refinement, exact Compute-CDR refinement — under the read lock, so edits
// never move index entries mid-plan.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) error {
	refID := r.URL.Query().Get("reference")
	relStr := r.URL.Query().Get("relation")
	if refID == "" || relStr == "" {
		return failf(http.StatusBadRequest, "serve: missing reference or relation parameter")
	}
	allowed, err := core.ParseRelationSet(relStr)
	if err != nil {
		return err
	}
	if done, err := s.conditional(w, r); done || err != nil {
		return err
	}
	tr := s.tracked()
	out := selectResponse{Reference: refID, Relation: allowed.String(), Matches: []string{}}
	err = tr.View(func(img *config.Image) error {
		reg := img.FindRegion(refID)
		if reg == nil {
			return fmt.Errorf("serve: region %q: %w", refID, config.ErrUnknownRegion)
		}
		matches, st, err := tr.Index().SelectStatsCtx(r.Context(), reg.Geometry(), allowed)
		if err != nil {
			return err
		}
		if matches != nil {
			out.Matches = matches
		}
		out.Stats = st
		return nil
	})
	if err != nil {
		return err
	}
	// The reference matches itself only under B; drop it like the query
	// evaluator's l == r rule unless B is allowed.
	if !allowed.Contains(core.B) {
		for i, id := range out.Matches {
			if id == refID {
				out.Matches = append(out.Matches[:i], out.Matches[i+1:]...)
				break
			}
		}
	}
	return writeData(w, http.StatusOK, out)
}

type queryRequest struct {
	Q string `json:"q"`
	// Args binds the query's $-parameters, e.g. {"start": "attica"} for
	// "x = $start". Parameterised texts share one cached plan.
	Args map[string]string `json:"args,omitempty"`
}

type queryResponse struct {
	Vars     []string            `json:"vars"`
	Bindings []map[string]string `json:"bindings"`
	// Plan describes how the planner executed the query: variable order,
	// scheduled conditions, pushed-down conditions, candidate-set sizes.
	Plan *query.PlanInfo `json:"plan,omitempty"`
	// Cache reports the plan cache outcome: "hit", "miss" or "replan".
	Cache string `json:"cache,omitempty"`
	// Generation is the store edit generation the evaluation ran against
	// (also served as the response's ETag).
	Generation uint64 `json:"generation"`
}

// handleQuery evaluates a conjunctive query of the paper's language over
// the tracked configuration. The evaluator reads relations from the
// delta-maintained store (never recomputing geometry for cached pairs),
// plans the join through the server's shared plan cache, and honors the
// request context. Responses carry the store generation as an ETag, so a
// repeat reader holding If-None-Match skips evaluation with a 304.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	if req.Q == "" {
		return failf(http.StatusBadRequest, "serve: missing query (q)")
	}
	if done, err := s.conditional(w, r); done || err != nil {
		return err
	}
	tr := s.tracked()
	out := queryResponse{Bindings: []map[string]string{}}
	err := tr.View(func(img *config.Image) error {
		ev, err := query.NewEvaluator(img)
		if err != nil {
			return err
		}
		ev.UseStore(tr.Store())
		ev.UseIndex(tr.Index())
		ev.SetPlanCache(s.plans)
		res, err := ev.Run(r.Context(), req.Q, req.Args)
		if err != nil {
			return err
		}
		out.Vars = res.Vars
		out.Plan = res.Plan
		out.Cache = res.Cache
		out.Generation = res.Generation
		for _, b := range res.Bindings {
			out.Bindings = append(out.Bindings, map[string]string(b))
		}
		return nil
	})
	if err != nil {
		return err
	}
	return writeData(w, http.StatusOK, out)
}

type statsResponse struct {
	Regions int        `json:"regions"`
	Indexed int        `json:"indexed"`
	Store   core.Stats `json:"store"`
}

// handleAdminSnapshot rotates the durable store: write the next snapshot
// generation (materialised relations included) and truncate the WAL. 404
// when the server runs without persistence.
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) error {
	p := s.opt.Persist
	if p == nil {
		return failf(http.StatusNotFound, "serve: persistence not enabled (start with -data)")
	}
	info, err := p.Snapshot()
	if err != nil {
		return err
	}
	return writeData(w, http.StatusOK, info)
}

// handleAdminStatus reports the durability counters of the store.
func (s *Server) handleAdminStatus(w http.ResponseWriter, r *http.Request) error {
	p := s.opt.Persist
	if p == nil {
		return failf(http.StatusNotFound, "serve: persistence not enabled (start with -data)")
	}
	return writeData(w, http.StatusOK, p.Status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	if done, err := s.conditional(w, r); done || err != nil {
		return err
	}
	tr := s.tracked()
	var out statsResponse
	err := tr.View(func(img *config.Image) error {
		out.Regions = len(img.Regions)
		out.Indexed = tr.Index().Len()
		out.Store = tr.Store().Stats()
		return nil
	})
	if err != nil {
		return err
	}
	return writeData(w, http.StatusOK, out)
}
