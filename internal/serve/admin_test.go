package serve_test

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"cardirect/internal/config"
	"cardirect/internal/persist"
	"cardirect/internal/serve"
	"cardirect/internal/wal"
)

// newDurableServer boots an httptest server over a persist.Store seeded
// with the Greece fixture.
func newDurableServer(t *testing.T) (*httptest.Server, *persist.Store) {
	t.Helper()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	ps, err := persist.Open(t.TempDir(), config.Greece(), persist.Options{
		Pct: true, Logger: logger, Sync: wal.Options{Policy: wal.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(ps.Tracked(), serve.Options{Logger: logger, Persist: ps})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ps.Close()
		ps.Tracked().Close()
	})
	return ts, ps
}

// TestAdminDisabled: without -data the admin endpoints answer 404.
func TestAdminDisabled(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})
	if got := doJSON(t, "GET", ts.URL+"/api/admin/status", nil, nil); got != http.StatusNotFound {
		t.Errorf("GET /api/admin/status without persistence: %d, want 404", got)
	}
	if got := doJSON(t, "POST", ts.URL+"/api/admin/snapshot", nil, nil); got != http.StatusNotFound {
		t.Errorf("POST /api/admin/snapshot without persistence: %d, want 404", got)
	}
}

// TestAdminStatusAndSnapshot exercises the durable shape: edits through
// the HTTP surface land in the WAL, status reports them, snapshot rotates
// the generation and resets the tail.
func TestAdminStatusAndSnapshot(t *testing.T) {
	ts, _ := newDurableServer(t)

	var st persist.Status
	if got := doJSON(t, "GET", ts.URL+"/api/admin/status", nil, &st); got != http.StatusOK {
		t.Fatalf("GET /api/admin/status: %d", got)
	}
	if st.Seq != 1 || st.WAL.Records != 0 || st.Err != "" {
		t.Fatalf("fresh status: %+v", st)
	}

	add := map[string]any{"id": "box", "wkt": "POLYGON ((300 300, 340 300, 340 340, 300 340, 300 300))"}
	if got := doJSON(t, "POST", ts.URL+"/api/regions", add, nil); got != http.StatusCreated {
		t.Fatalf("POST /api/regions: %d", got)
	}
	if doJSON(t, "GET", ts.URL+"/api/admin/status", nil, &st); st.WAL.Records != 1 {
		t.Fatalf("edit not write-ahead logged: %+v", st)
	}

	var info persist.SnapshotInfo
	if got := doJSON(t, "POST", ts.URL+"/api/admin/snapshot", nil, &info); got != http.StatusOK {
		t.Fatalf("POST /api/admin/snapshot: %d", got)
	}
	if info.Seq != 2 || info.Bytes <= 0 {
		t.Fatalf("snapshot info: %+v", info)
	}
	if doJSON(t, "GET", ts.URL+"/api/admin/status", nil, &st); st.Seq != 2 {
		t.Fatalf("status after rotation: %+v", st)
	}

	// The pre-rotation record stays in the cumulative WAL counters.
	if st.WAL.Records != 1 {
		t.Errorf("cumulative wal records = %d, want 1", st.WAL.Records)
	}
}

// TestAdminStatusRecoveredFrom asserts the admin surface reports which
// snapshot format recovery loaded: "binary" when the checksummed binary
// file is intact, "xml" after falling back, and nothing for a fresh
// initialisation.
func TestAdminStatusRecoveredFrom(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	dir := t.TempDir()
	opts := persist.Options{Pct: true, Logger: logger, Sync: wal.Options{Policy: wal.SyncNever}}

	serveStatus := func(ps *persist.Store) map[string]any {
		t.Helper()
		srv := serve.New(ps.Tracked(), serve.Options{Logger: logger, Persist: ps})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var raw map[string]any
		if got := doJSON(t, "GET", ts.URL+"/api/admin/status", nil, &raw); got != http.StatusOK {
			t.Fatalf("GET /api/admin/status: %d", got)
		}
		return raw
	}

	ps, err := persist.Open(dir, config.Greece(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if raw := serveStatus(ps); raw["recovered_from"] != nil {
		t.Errorf("fresh initialisation reports recovered_from = %v", raw["recovered_from"])
	}
	ps.Close()
	ps.Tracked().Close()

	ps2, err := persist.Open(dir, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if raw := serveStatus(ps2); raw["recovered_from"] != "binary" {
		t.Errorf("recovered_from = %v, want binary", raw["recovered_from"])
	}
	ps2.Close()
	ps2.Tracked().Close()

	// Remove the binary snapshot: the status must report the XML fallback.
	matches, err := filepath.Glob(filepath.Join(dir, "snapshot-*.bin"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no binary snapshot written: %v, %v", matches, err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}
	ps3, err := persist.Open(dir, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { ps3.Close(); ps3.Tracked().Close() }()
	if raw := serveStatus(ps3); raw["recovered_from"] != "xml" {
		t.Errorf("recovered_from = %v, want xml", raw["recovered_from"])
	}
}

// TestAdminSnapshotEmptyWorld: deleting every region leaves nothing the
// DTD can express; the snapshot endpoint must answer 422, not 500.
func TestAdminSnapshotEmptyWorld(t *testing.T) {
	ts, ps := newDurableServer(t)
	for _, r := range ps.Tracked().Store().Names() {
		if got := doJSON(t, "DELETE", ts.URL+"/api/regions/"+r, nil, nil); got != http.StatusNoContent {
			t.Fatalf("DELETE %s: %d", r, got)
		}
	}
	if got := doJSON(t, "POST", ts.URL+"/api/admin/snapshot", nil, nil); got != http.StatusUnprocessableEntity {
		t.Errorf("snapshot of empty world: %d, want 422", got)
	}
}
