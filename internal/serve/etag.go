package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"cardirect/internal/replica"
)

// The read endpoints over cached store state — /api/relation, /api/select
// and /api/query — are validatable: their responses depend only on the
// request and the relation store's edit generation, so the generation
// doubles as a strong ETag. A repeat reader sends If-None-Match with the
// tag it last saw and, while no edit has landed, gets 304 Not Modified
// without the server evaluating anything.
//
// Replication rides the same counter: replicas adopt the primary's
// generation as records apply, so at equal generation a replica's ETag —
// and body — is byte-identical to the primary's. That makes the tag a
// cross-node freshness token: a reader can demand `Cardirect-Min-Generation:
// N` and a lagging replica answers 503 replica_lagging instead of silently
// serving stale state; replicas additionally stamp `Cardirect-Staleness`
// (known unapplied records) on every validatable read.
//
// The tag is always computed BEFORE the data is read. Under a concurrent
// edit that order can hand out a stale tag with fresher data — which only
// costs the client one extra revalidation; the reverse order could validate
// stale data as current, which would be wrong.

// storeETag renders the current store generation as a strong entity tag.
func (s *Server) storeETag() string {
	return fmt.Sprintf("\"g%d\"", s.tracked().Store().Generation())
}

// etagMatch implements the If-None-Match comparison: a comma-separated
// list of entity tags, "*" matching anything, weak prefixes compared
// weakly (RFC 9110 §8.8.3.2).
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// conditional enforces the freshness contract and stamps the response with
// the generation ETag. It reports done=true when it has already written a
// response (304 Not Modified) — the handler must not produce a body — and
// an error when the reader demanded a minimum generation this node has not
// reached (503 replica_lagging).
func (s *Server) conditional(w http.ResponseWriter, r *http.Request) (done bool, err error) {
	gen := s.tracked().Store().Generation()
	if f := s.opt.Follower; f != nil {
		w.Header().Set(replica.HeaderStaleness, strconv.FormatUint(f.Lag(), 10))
	}
	if min := r.Header.Get(replica.HeaderMinGeneration); min != "" {
		want, perr := strconv.ParseUint(min, 10, 64)
		if perr != nil {
			return false, failf(http.StatusBadRequest, "serve: bad %s header %q", replica.HeaderMinGeneration, min)
		}
		if gen < want {
			details := map[string]any{"generation": gen, "min_generation": want}
			if s.opt.PrimaryURL != "" {
				details["primary"] = s.opt.PrimaryURL
			}
			return false, failCode(http.StatusServiceUnavailable, "replica_lagging", details,
				"serve: generation %d is behind the requested minimum %d; retry or read the primary", gen, want)
		}
	}
	etag := fmt.Sprintf("\"g%d\"", gen)
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		metrics.Add("etag_304s", 1)
		w.WriteHeader(http.StatusNotModified)
		return true, nil
	}
	return false, nil
}
