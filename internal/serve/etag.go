package serve

import (
	"fmt"
	"net/http"
	"strings"
)

// The read endpoints over cached store state — /api/relation, /api/select
// and /api/query — are validatable: their responses depend only on the
// request and the relation store's edit generation, so the generation
// doubles as a strong ETag. A repeat reader sends If-None-Match with the
// tag it last saw and, while no edit has landed, gets 304 Not Modified
// without the server evaluating anything.
//
// The tag is always computed BEFORE the data is read. Under a concurrent
// edit that order can hand out a stale tag with fresher data — which only
// costs the client one extra revalidation; the reverse order could validate
// stale data as current, which would be wrong.

// storeETag renders the current store generation as a strong entity tag.
func (s *Server) storeETag() string {
	return fmt.Sprintf("\"g%d\"", s.tr.Store().Generation())
}

// etagMatch implements the If-None-Match comparison: a comma-separated
// list of entity tags, "*" matching anything, weak prefixes compared
// weakly (RFC 9110 §8.8.3.2).
func etagMatch(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// conditional stamps the response with the generation ETag and reports
// whether the request's If-None-Match already matches it — in which case
// it has written 304 Not Modified and the handler must not produce a body.
func (s *Server) conditional(w http.ResponseWriter, r *http.Request) (string, bool) {
	etag := s.storeETag()
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		metrics.Add("etag_304s", 1)
		w.WriteHeader(http.StatusNotModified)
		return etag, true
	}
	return etag, false
}
