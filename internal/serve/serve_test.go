package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/query"
	"cardirect/internal/serve"
)

// newGreeceServer boots an httptest server over the Fig. 11 fixture.
func newGreeceServer(t *testing.T, opt serve.Options) (*httptest.Server, *config.Tracked) {
	t.Helper()
	tr, err := config.Track(config.Greece(), core.StoreOptions{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ts := httptest.NewServer(serve.New(tr, opt).Handler())
	t.Cleanup(func() {
		ts.Close()
		tr.Close()
	})
	return ts, tr
}

// doJSON issues a request, decodes the JSON body into out (when non-nil)
// and returns the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		buf, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("%s %s: reading body: %v", method, url, err)
		}
		// API responses wrap payloads as {"data": ...}; unwrap before
		// decoding. Non-enveloped surfaces (/debug/vars) and error bodies
		// decode as-is.
		var env struct {
			Data json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(raw, &env); err == nil && env.Data != nil {
			raw = env.Data
		}
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding body: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts, tr := newGreeceServer(t, serve.Options{})
	var out struct {
		Status  string `json:"status"`
		Regions int    `json:"regions"`
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.Status != "ok" || out.Regions != tr.Store().Len() {
		t.Fatalf("body = %+v", out)
	}
}

func TestRegionsList(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})
	var out struct {
		Regions []struct {
			ID       string `json:"id"`
			Polygons int    `json:"polygons"`
			Edges    int    `json:"edges"`
		} `json:"regions"`
	}
	if code := doJSON(t, "GET", ts.URL+"/api/regions", nil, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(out.Regions) != len(config.Greece().Regions) {
		t.Fatalf("listed %d regions", len(out.Regions))
	}
	for i := 1; i < len(out.Regions); i++ {
		if out.Regions[i-1].ID >= out.Regions[i].ID {
			t.Fatalf("listing not sorted: %q before %q", out.Regions[i-1].ID, out.Regions[i].ID)
		}
	}
	for _, r := range out.Regions {
		if r.Polygons == 0 || r.Edges == 0 {
			t.Fatalf("region %s has empty geometry summary", r.ID)
		}
	}
}

func TestRegionGetRoundtrip(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})
	var out struct {
		ID      string          `json:"id"`
		WKT     string          `json:"wkt"`
		GeoJSON json.RawMessage `json:"geojson"`
	}
	if code := doJSON(t, "GET", ts.URL+"/api/regions/crete", nil, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.ID != "crete" {
		t.Fatalf("id = %q", out.ID)
	}
	// Both interchange formats must parse back to the stored geometry.
	want := config.Greece().FindRegion("crete").Geometry()
	fromWKT, err := geom.ParseWKT(out.WKT)
	if err != nil {
		t.Fatalf("returned WKT does not parse: %v", err)
	}
	if geom.FormatWKT(fromWKT) != geom.FormatWKT(want) {
		t.Error("WKT roundtrip diverges from stored geometry")
	}
	fromGJ, err := geom.ParseGeoJSON(out.GeoJSON)
	if err != nil {
		t.Fatalf("returned GeoJSON does not parse: %v", err)
	}
	if geom.FormatWKT(fromGJ) != geom.FormatWKT(want) {
		t.Error("GeoJSON roundtrip diverges from stored geometry")
	}

	var errOut struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if code := doJSON(t, "GET", ts.URL+"/api/regions/atlantis", nil, &errOut); code != http.StatusNotFound {
		t.Fatalf("unknown region: status = %d", code)
	}
	if errOut.Error.Code != "unknown_region" || errOut.Error.Message == "" {
		t.Errorf("404 envelope = %+v", errOut.Error)
	}
}

// TestRelationDifferential: every served pair answer equals a direct
// Compute-CDR / Compute-CDR% run over the same fixture — the server adds
// transport, not semantics.
func TestRelationDifferential(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})
	img := config.Greece()
	for _, a := range img.Regions {
		for _, b := range img.Regions {
			if a.ID == b.ID {
				continue
			}
			want, err := core.ComputeCDR(a.Geometry(), b.Geometry())
			if err != nil {
				t.Fatal(err)
			}
			var out struct {
				Relation string             `json:"relation"`
				Pct      map[string]float64 `json:"pct"`
			}
			url := fmt.Sprintf("%s/api/relation?primary=%s&reference=%s&pct=1", ts.URL, a.ID, b.ID)
			if code := doJSON(t, "GET", url, nil, &out); code != http.StatusOK {
				t.Fatalf("%s vs %s: status = %d", a.ID, b.ID, code)
			}
			if out.Relation != want.String() {
				t.Errorf("%s vs %s: served %q, computed %q", a.ID, b.ID, out.Relation, want)
			}
			m, _, err := core.ComputeCDRPct(a.Geometry(), b.Geometry())
			if err != nil {
				t.Fatal(err)
			}
			// The store serves through the cached-area fast path, which agrees
			// with the direct split-based computation only to float rounding.
			for _, tl := range core.Tiles() {
				if got, served := m.Get(tl), out.Pct[tl.String()]; math.Abs(got-served) > 1e-9 {
					t.Errorf("%s vs %s tile %s: served %v, computed %v", a.ID, b.ID, tl, served, got)
				}
			}
		}
	}

	// Parameter and lookup errors.
	if code := doJSON(t, "GET", ts.URL+"/api/relation?primary=attica", nil, nil); code != http.StatusBadRequest {
		t.Errorf("missing reference: status = %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/api/relation?primary=attica&reference=atlantis", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown reference: status = %d", code)
	}
}

func TestRelationsMatchesStore(t *testing.T) {
	ts, tr := newGreeceServer(t, serve.Options{})
	var out struct {
		Pairs []struct {
			Primary   string `json:"primary"`
			Reference string `json:"reference"`
			Relation  string `json:"relation"`
		} `json:"pairs"`
	}
	if code := doJSON(t, "GET", ts.URL+"/api/relations", nil, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	want := tr.Store().Pairs()
	if len(out.Pairs) != len(want) {
		t.Fatalf("served %d pairs, store has %d", len(out.Pairs), len(want))
	}
	for i, p := range out.Pairs {
		if p.Primary != want[i].Primary || p.Reference != want[i].Reference || p.Relation != want[i].Relation.String() {
			t.Fatalf("pair %d: served %+v, store %+v", i, p, want[i])
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})
	img := config.Greece()
	regions := make([]core.NamedRegion, len(img.Regions))
	for i := range img.Regions {
		regions[i] = core.NamedRegion{Name: img.Regions[i].ID, Region: img.Regions[i].Geometry()}
	}
	want, err := core.BatchCDR(nil, regions, nil)
	if err != nil {
		t.Fatal(err)
	}

	var out struct {
		Pairs []struct {
			Primary   string `json:"primary"`
			Reference string `json:"reference"`
			Relation  string `json:"relation"`
		} `json:"pairs"`
		Stats core.Stats `json:"stats"`
	}
	// Empty body selects the defaults.
	if code := doJSON(t, "POST", ts.URL+"/api/batch", nil, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(out.Pairs) != len(want.Pairs) {
		t.Fatalf("served %d pairs, computed %d", len(out.Pairs), len(want.Pairs))
	}
	for i, p := range out.Pairs {
		w := want.Pairs[i]
		if p.Primary != w.Primary || p.Reference != w.Reference || p.Relation != w.Relation.String() {
			t.Fatalf("pair %d: served %+v, computed %+v", i, p, w)
		}
	}
	if out.Stats.Passes == 0 {
		t.Error("batch stats not populated")
	}

	// Percent variant with explicit options.
	var pctOut struct {
		Pairs []struct {
			Pct map[string]float64 `json:"pct"`
		} `json:"pairs"`
	}
	if code := doJSON(t, "POST", ts.URL+"/api/batch", `{"pct":true,"workers":2}`, &pctOut); code != http.StatusOK {
		t.Fatalf("pct batch: status = %d", code)
	}
	if len(pctOut.Pairs) != len(want.Pairs) {
		t.Fatalf("pct batch: %d pairs", len(pctOut.Pairs))
	}

	// Malformed body is a 400, unknown fields included.
	if code := doJSON(t, "POST", ts.URL+"/api/batch", `{"pct":`, nil); code != http.StatusBadRequest {
		t.Errorf("truncated body: status = %d", code)
	}
}

// TestBatchTimeout: a server-side request timeout expires the handler
// context; the batch engines notice within one primary row and the error
// maps to 504. The deadline is generous enough to pass the router but far
// too short for the sweep to matter — the overshoot bound is the abort
// check, not luck.
func TestBatchTimeout(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{RequestTimeout: time.Nanosecond})
	start := time.Now()
	code := doJSON(t, "POST", ts.URL+"/api/batch", nil, nil)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", code)
	}
	if elapsed > time.Second {
		t.Fatalf("timed-out batch took %v", elapsed)
	}
}

func TestSelectEndpoint(t *testing.T) {
	ts, tr := newGreeceServer(t, serve.Options{})
	var out struct {
		Matches []string `json:"matches"`
		Stats   struct {
			Candidates int `json:"Candidates"`
		} `json:"stats"`
	}
	const relSet = "{N, N:NE, NE, N:NW, NW}"
	if code := doJSON(t, "GET", ts.URL+"/api/select?reference=attica&relation="+url.QueryEscape(relSet), nil, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	// Differential: same answer as the direct live-index selection.
	allowed, err := core.ParseRelationSet(relSet)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs, _, err := tr.Index().SelectStats(config.Greece().FindRegion("attica").Geometry(), allowed)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool, len(wantIDs))
	for _, id := range wantIDs {
		if id != "attica" {
			want[id] = true
		}
	}
	if len(out.Matches) != len(want) {
		t.Fatalf("served %v, want %v", out.Matches, wantIDs)
	}
	for _, id := range out.Matches {
		if !want[id] {
			t.Errorf("unexpected match %q", id)
		}
		if id == "attica" {
			t.Error("reference leaked into matches without B")
		}
	}

	if code := doJSON(t, "GET", ts.URL+"/api/select?reference=atlantis&relation=N", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown reference: status = %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/api/select?reference=attica&relation=XYZ", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad relation: status = %d", code)
	}
}

// TestQueryEndpoint: served bindings equal a direct evaluator run.
func TestQueryEndpoint(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})
	const q = "q(x, y) :- y = peloponnesos, x {N, NE, E} y"
	ev, err := query.NewEvaluator(config.Greece())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.EvalString(q)
	if err != nil {
		t.Fatal(err)
	}

	var out struct {
		Vars     []string            `json:"vars"`
		Bindings []map[string]string `json:"bindings"`
	}
	if code := doJSON(t, "POST", ts.URL+"/api/query", map[string]string{"q": q}, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(out.Vars) != 2 || out.Vars[0] != "x" || out.Vars[1] != "y" {
		t.Fatalf("vars = %v", out.Vars)
	}
	if len(out.Bindings) != len(want) {
		t.Fatalf("served %d bindings, evaluator found %d", len(out.Bindings), len(want))
	}
	for i, b := range out.Bindings {
		for v, id := range b {
			if want[i][v] != id {
				t.Fatalf("binding %d: %s = %q, want %q", i, v, id, want[i][v])
			}
		}
	}

	if code := doJSON(t, "POST", ts.URL+"/api/query", map[string]string{"q": "q(x) :- x $ y"}, nil); code != http.StatusBadRequest {
		t.Errorf("unparsable query: status = %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/api/query", map[string]string{}, nil); code != http.StatusBadRequest {
		t.Errorf("missing q: status = %d", code)
	}
}

// TestRegionCRUD drives the full edit lifecycle over HTTP and checks that
// the delta-maintained store answers relations against the edited region.
func TestRegionCRUD(t *testing.T) {
	ts, tr := newGreeceServer(t, serve.Options{})
	n0 := tr.Store().Len()

	// Create: a square well north-east of everything.
	wkt := geom.FormatWKT(geom.Rgn(geom.Poly(
		geom.Pt(3000, 3100), geom.Pt(3100, 3100), geom.Pt(3100, 3000), geom.Pt(3000, 3000),
	)))
	add := map[string]string{"id": "outpost", "name": "Outpost", "color": "gray", "wkt": wkt}
	var created struct {
		ID       string `json:"id"`
		Polygons int    `json:"polygons"`
	}
	if code := doJSON(t, "POST", ts.URL+"/api/regions", add, &created); code != http.StatusCreated {
		t.Fatalf("add: status = %d", code)
	}
	if created.ID != "outpost" || created.Polygons != 1 {
		t.Fatalf("add response = %+v", created)
	}
	if tr.Store().Len() != n0+1 {
		t.Fatalf("store did not grow: %d", tr.Store().Len())
	}

	// Duplicate id conflicts.
	if code := doJSON(t, "POST", ts.URL+"/api/regions", add, nil); code != http.StatusConflict {
		t.Errorf("duplicate add: status = %d", code)
	}

	// The new region is immediately queryable from the delta store.
	var rel struct {
		Relation string `json:"relation"`
	}
	if code := doJSON(t, "GET", ts.URL+"/api/relation?primary=outpost&reference=crete", nil, &rel); code != http.StatusOK {
		t.Fatalf("relation after add: status = %d", code)
	}
	if rel.Relation == "" {
		t.Fatal("empty relation for added region")
	}

	// Geometry update via GeoJSON.
	gj, err := geom.FormatGeoJSON(geom.Rgn(geom.Poly(
		geom.Pt(-500, -400), geom.Pt(-400, -400), geom.Pt(-400, -500), geom.Pt(-500, -500),
	)))
	if err != nil {
		t.Fatal(err)
	}
	upd := map[string]json.RawMessage{"geojson": gj}
	if code := doJSON(t, "PUT", ts.URL+"/api/regions/outpost", upd, nil); code != http.StatusOK {
		t.Fatalf("set geometry: status = %d", code)
	}
	var rel2 struct {
		Relation string `json:"relation"`
	}
	if code := doJSON(t, "GET", ts.URL+"/api/relation?primary=outpost&reference=crete", nil, &rel2); code != http.StatusOK {
		t.Fatalf("relation after move: status = %d", code)
	}
	if rel2.Relation == rel.Relation {
		t.Errorf("relation unchanged after moving across the plane: %q", rel2.Relation)
	}

	// Rename, then the old id is gone.
	if code := doJSON(t, "POST", ts.URL+"/api/regions/outpost/rename", map[string]string{"new_id": "frontier"}, nil); code != http.StatusOK {
		t.Fatalf("rename: status = %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/api/regions/outpost", nil, nil); code != http.StatusNotFound {
		t.Errorf("old id after rename: status = %d", code)
	}

	// Delete; gone from document and store.
	req, _ := http.NewRequest("DELETE", ts.URL+"/api/regions/frontier", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status = %d", resp.StatusCode)
	}
	if tr.Store().Len() != n0 {
		t.Fatalf("store Len after delete = %d, want %d", tr.Store().Len(), n0)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/api/regions/frontier", nil, nil); code != http.StatusNotFound {
		t.Errorf("double delete: status = %d", code)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("tracking diverged during CRUD: %v", err)
	}
}

func TestBodyLimit(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{MaxBodyBytes: 64})
	big := `{"q": "` + strings.Repeat("x", 200) + `"}`
	if code := doJSON(t, "POST", ts.URL+"/api/query", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413", code)
	}
}

func TestExpvarSurface(t *testing.T) {
	ts, tr := newGreeceServer(t, serve.Options{})
	// Generate some traffic first.
	doJSON(t, "GET", ts.URL+"/healthz", nil, nil)
	doJSON(t, "GET", ts.URL+"/api/relation?primary=attica&reference=crete", nil, nil)

	var vars struct {
		Cardirectd map[string]json.RawMessage `json:"cardirectd"`
	}
	if code := doJSON(t, "GET", ts.URL+"/debug/vars", nil, &vars); code != http.StatusOK {
		t.Fatalf("/debug/vars: status = %d", code)
	}
	var reqs int
	if err := json.Unmarshal(vars.Cardirectd["healthz.requests"], &reqs); err != nil || reqs < 1 {
		t.Errorf("healthz.requests = %s (err %v)", vars.Cardirectd["healthz.requests"], err)
	}
	var lat int64
	if err := json.Unmarshal(vars.Cardirectd["relation.latency_ns"], &lat); err != nil || lat <= 0 {
		t.Errorf("relation.latency_ns = %s (err %v)", vars.Cardirectd["relation.latency_ns"], err)
	}
	var store struct {
		Regions int `json:"regions"`
	}
	if err := json.Unmarshal(vars.Cardirectd["store"], &store); err != nil || store.Regions != tr.Store().Len() {
		t.Errorf("store var = %s (err %v)", vars.Cardirectd["store"], err)
	}
}

// TestConcurrentReadsDuringEdits hammers relation reads and selections
// against geometry edits over live HTTP — the end-to-end version of the
// store race test; meaningful under -race.
func TestConcurrentReadsDuringEdits(t *testing.T) {
	ts, tr := newGreeceServer(t, serve.Options{})
	crete := geom.FormatWKT(config.Greece().FindRegion("crete").Geometry())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var code int
				switch i % 3 {
				case 0:
					code = doJSON(t, "GET", ts.URL+"/api/relation?primary=attica&reference=crete", nil, nil)
				case 1:
					code = doJSON(t, "GET", ts.URL+"/api/select?reference=crete&relation="+url.QueryEscape("{N, N:NE, N:NW}"), nil, nil)
				case 2:
					code = doJSON(t, "GET", ts.URL+"/api/relations", nil, nil)
				}
				if code != http.StatusOK {
					t.Errorf("read status = %d", code)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		if code := doJSON(t, "PUT", ts.URL+"/api/regions/crete", map[string]string{"wkt": crete}, nil); code != http.StatusOK {
			t.Fatalf("edit %d: status = %d", i, code)
		}
	}
	close(stop)
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatalf("tracking diverged: %v", err)
	}
}
