// Package serve implements the cardirectd HTTP/JSON API: the paper's
// CARDIRECT tool (§4) as a network service over a tracked configuration.
// One config.Tracked — document, delta-maintained core.RelationStore and
// live R-tree — backs every endpoint, so pair-relation reads are O(1)
// cache lookups, region edits recompute only the touched row and column,
// and directional selections prune through R-tree window queries.
//
// Production posture: every handler runs under a per-endpoint expvar
// instrument (request count, error count, latency sum, global inflight
// gauge), request bodies are size-limited, an optional per-request timeout
// turns into context cancellation that the batch engines, the query join
// loop and the selection refinement all observe, and access is logged
// structurally through log/slog. Errors map to HTTP status codes through
// the shared sentinels (core.ErrUnknownRegion → 404, ErrDegenerateRegion →
// 422, config.ErrDuplicateRegion → 409, context deadline → 504).
package serve

import (
	"context"
	"expvar"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/geom"
	"cardirect/internal/persist"
	"cardirect/internal/query"
	"cardirect/internal/replica"
)

// Editor is the mutation surface the region edit endpoints write through.
// A bare config.Tracked satisfies it (in-memory service); a persist.Store
// satisfies it too, write-ahead logging every edit before it is
// acknowledged (durable service).
type Editor interface {
	AddRegion(id, name, color string, g geom.Region) error
	RemoveRegion(id string) error
	RenameRegion(oldID, newID string) error
	SetRegionGeometry(id string, g geom.Region) error
	// BulkAddRegions ingests many regions as ONE edit — one batched
	// relation recomputation (and, for the durable store, one batched WAL
	// append with a single fsync) instead of a 2(n−1)-pair delta per
	// region.
	BulkAddRegions(regions []config.BulkRegion) error
}

// Options configures a Server.
type Options struct {
	// MaxBodyBytes caps request body size; values ≤ 0 mean 1 MiB.
	MaxBodyBytes int64
	// MaxBulkBytes caps the POST /api/bulk request body, which carries
	// whole worlds and needs more room than ordinary edits; values ≤ 0
	// mean 64 MiB. Oversized streams map to 413 like every other body.
	MaxBulkBytes int64
	// RequestTimeout, when positive, bounds every request's context; work
	// that honors the context (batch recompute, query joins, selections)
	// aborts with 504 when it expires.
	RequestTimeout time.Duration
	// Workers is the worker-pool size handed to the batch engines by the
	// recompute endpoint; values ≤ 0 mean GOMAXPROCS.
	Workers int
	// Logger receives structured access logs; nil means slog.Default().
	Logger *slog.Logger
	// Persist, when set, makes the server durable: region edits are routed
	// through the store (write-ahead logged before acknowledgement) and
	// the /v1/admin/* endpoints operate on it. The store's Tracked() must
	// be the same tr handed to New. Nil serves the in-memory shape and the
	// admin endpoints answer 404.
	Persist *persist.Store
	// SolveWorkers is the parallel consistency solver's default fan width
	// for /v1/reason/check; values ≤ 0 mean the reason package default
	// (max(8, GOMAXPROCS)).
	SolveWorkers int
	// MaxNetwork caps the number of region variables a reasoning request
	// may declare — the consistency search is worst-case exponential, so
	// the daemon refuses oversized networks with 413 instead of melting.
	// Values ≤ 0 mean 64.
	MaxNetwork int
	// Role is the process's replication role: "primary" (the default, also
	// the empty string) accepts writes; "replica" serves every read route
	// but rejects writes with 421 not_primary carrying PrimaryURL in the
	// error details.
	Role string
	// PrimaryURL is the primary's advertised base URL, surfaced to clients
	// whose writes a replica turns away.
	PrimaryURL string
	// Repl, when set, makes this process a replication source: GET
	// /v1/replication/snapshot and /wal serve its retained log. Region
	// edits must be routed THROUGH it (pass it as New's editor via
	// Persist-like wiring in cardirectd) for followers to see them.
	Repl *replica.Primary
	// Follower, when set, supplies the live tracked store of a tailing
	// replica — reads resolve through it so a re-bootstrap (primary epoch
	// change) swaps the world under the server — plus the staleness
	// surface: Cardirect-Staleness response headers and the
	// Cardirect-Min-Generation → 503 replica_lagging contract.
	Follower *replica.Replica
	// PctDisabled turns the /v1 percent surface off: percent reads answer
	// 422 pct_disabled. cardirectd sets it for -pct=off worlds (10^5
	// regions make eager percent matrices prohibitive); replicas inherit
	// it from the primary's snapshot.
	PctDisabled bool
	// Editor overrides the mutation surface writes go through. Nil keeps
	// the default (Persist when set, else the tracked store itself);
	// cardirectd passes the replication primary so edits ship to
	// followers.
	Editor Editor
}

// Server serves the cardirectd API over one tracked configuration.
type Server struct {
	tr     *config.Tracked // the tracked handed to New; replicas may swap it
	lastTr atomic.Pointer[config.Tracked]
	edit   Editor
	opt    Options
	log    *slog.Logger
	mux    *http.ServeMux
	plans  *query.PlanCache
}

// tracked resolves the store every request reads: the follower's live
// tracked when this server is a replica (it is swapped wholesale on
// re-bootstrap), the construction-time tracked otherwise. A swap resets the
// plan cache — cached plans validate by generation alone, and a fresh store
// restarts its generation sequence, so stale entries could otherwise
// collide with a new store at a coincidentally equal generation.
func (s *Server) tracked() *config.Tracked {
	tr := s.tr
	if f := s.opt.Follower; f != nil {
		tr = f.Tracked()
	}
	if old := s.lastTr.Load(); old != tr {
		if s.lastTr.CompareAndSwap(old, tr) && old != nil {
			s.plans.Reset()
		}
	}
	return tr
}

// replicaRole reports whether this server rejects writes.
func (s *Server) replicaRole() bool { return s.opt.Role == "replica" }

// pctDisabled reports whether the percent surface is off: explicitly via
// Options, or implicitly because the primary this replica follows does not
// ship percent matrices.
func (s *Server) pctDisabled() bool {
	if s.opt.PctDisabled {
		return true
	}
	if f := s.opt.Follower; f != nil {
		return !f.Pct()
	}
	return false
}

// metrics is the process-wide expvar surface, published under "cardirectd":
// per-endpoint "<route>.requests" / "<route>.errors" / "<route>.latency_ns"
// counters, a global "inflight" gauge, and a "store" func reporting the
// tracked store's cumulative Stats (DeltaPairs, prune hits, edge counts).
var metrics = expvar.NewMap("cardirectd")

// New builds a server over the tracked configuration. The store behind tr
// should be built with StoreOptions.Pct when percent endpoints are wanted.
func New(tr *config.Tracked, opt Options) *Server {
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = 1 << 20
	}
	if opt.MaxBulkBytes <= 0 {
		opt.MaxBulkBytes = 64 << 20
	}
	if opt.MaxNetwork <= 0 {
		opt.MaxNetwork = 64
	}
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	s := &Server{tr: tr, edit: tr, opt: opt, log: opt.Logger, mux: http.NewServeMux(),
		// One plan cache for the whole server: request-scoped evaluators
		// share it, so repeated query texts skip parsing and planning.
		// Entries self-invalidate against the store generation.
		plans: query.NewPlanCache(256)}
	if opt.Persist != nil {
		s.edit = opt.Persist
	}
	if opt.Editor != nil {
		s.edit = opt.Editor
	}
	s.routes()
	// The expvar namespace is process-global; with several servers (tests)
	// the last one wins, which matches the one-server production shape.
	metrics.Set("store", expvar.Func(func() any {
		st := s.tracked().Store()
		return map[string]any{
			"regions":    st.Len(),
			"generation": st.Generation(),
			"stats":      st.Stats(),
		}
	}))
	metrics.Set("plan_cache_hits", expvar.Func(func() any { return s.plans.Stats().Hits }))
	metrics.Set("plan_cache_misses", expvar.Func(func() any { return s.plans.Stats().Misses }))
	metrics.Set("replans", expvar.Func(func() any { return s.plans.Stats().Replans }))
	if p := opt.Persist; p != nil {
		metrics.Set("persist", expvar.Func(func() any {
			st := p.Status()
			return map[string]any{
				"seq":              st.Seq,
				"wal_records":      st.WAL.Records,
				"wal_bytes":        st.WAL.Bytes,
				"wal_fsyncs":       st.WAL.Fsyncs,
				"recovery_ns":      st.RecoveryNs,
				"replayed_records": st.ReplayedRecords,
				"skipped_records":  st.SkippedRecords,
				"seeded":           st.SeededFromSnapshot,
			}
		}))
	}
	return s
}

// Handler returns the root handler: the API routes plus /debug/vars
// (expvar) and /debug/pprof.
func (s *Server) Handler() http.Handler { return s.mux }

// Route describes one mounted API route: the canonical /v1 path, the
// metrics/log name, and — for routes that predate versioning — the legacy
// alias still served for compatibility. Deprecated aliases answer with a
// Deprecation header and a Link to the successor path; /healthz stays
// undeprecated because operations probes conventionally live there.
type Route struct {
	Method     string `json:"method"`
	Path       string `json:"path"`
	Name       string `json:"name"`
	Legacy     string `json:"legacy,omitempty"`
	Deprecated bool   `json:"deprecated,omitempty"` // the legacy alias is
}

// routeTable is the single source of truth for the API surface; routes()
// mounts it and Routes() exposes it (the API.md inventory test walks it).
func (s *Server) routeTable() []struct {
	Route
	limit int64
	h     handlerFunc
} {
	type entry = struct {
		Route
		limit int64
		h     handlerFunc
	}
	rt := func(method, path, legacy, name string, deprecated bool, limit int64, h handlerFunc) entry {
		return entry{Route: Route{Method: method, Path: path, Name: name, Legacy: legacy, Deprecated: deprecated}, limit: limit, h: h}
	}
	return []entry{
		rt("GET", "/v1/healthz", "/healthz", "healthz", false, 0, s.handleHealthz),
		rt("GET", "/v1/regions", "/api/regions", "regions.list", true, 0, s.handleRegionsList),
		rt("POST", "/v1/regions", "/api/regions", "regions.add", true, 0, s.handleRegionAdd),
		rt("GET", "/v1/regions/{id}", "/api/regions/{id}", "regions.get", true, 0, s.handleRegionGet),
		rt("PUT", "/v1/regions/{id}", "/api/regions/{id}", "regions.set", true, 0, s.handleRegionSet),
		rt("POST", "/v1/regions/{id}/rename", "/api/regions/{id}/rename", "regions.rename", true, 0, s.handleRegionRename),
		rt("DELETE", "/v1/regions/{id}", "/api/regions/{id}", "regions.delete", true, 0, s.handleRegionDelete),
		rt("GET", "/v1/relation", "/api/relation", "relation", true, 0, s.handleRelation),
		rt("GET", "/v1/relations", "/api/relations", "relations", true, 0, s.handleRelations),
		rt("POST", "/v1/batch", "/api/batch", "batch", true, 0, s.handleBatch),
		rt("POST", "/v1/bulk", "/api/bulk", "bulk", true, s.opt.MaxBulkBytes, s.handleBulk),
		rt("GET", "/v1/select", "/api/select", "select", true, 0, s.handleSelect),
		rt("POST", "/v1/query", "/api/query", "query", true, 0, s.handleQuery),
		rt("GET", "/v1/stats", "/api/stats", "stats", true, 0, s.handleStats),
		rt("POST", "/v1/admin/snapshot", "/api/admin/snapshot", "admin.snapshot", true, 0, s.handleAdminSnapshot),
		rt("GET", "/v1/admin/status", "/api/admin/status", "admin.status", true, 0, s.handleAdminStatus),
		rt("POST", "/v1/reason/check", "", "reason.check", false, 0, s.handleReasonCheck),
		rt("POST", "/v1/reason/entail", "", "reason.entail", false, 0, s.handleReasonEntail),
		rt("POST", "/v1/reason/compose", "", "reason.compose", false, 0, s.handleReasonCompose),
		rt("GET", "/v1/replication/snapshot", "", "replication.snapshot", false, 0, s.handleReplSnapshot),
		rt("GET", "/v1/replication/wal", "", "replication.wal", false, 0, s.handleReplWAL),
		rt("GET", "/v1/replication/status", "", "replication.status", false, 0, s.handleReplStatus),
	}
}

// writeRoutes names the routes that mutate the world. A replica refuses
// them with 421 not_primary — followers apply edits only through the
// replication stream, never from clients.
var writeRoutes = map[string]bool{
	"regions.add":    true,
	"regions.set":    true,
	"regions.rename": true,
	"regions.delete": true,
	"bulk":           true,
	"admin.snapshot": true,
}

// gateWrites rejects mutations on replicas, pointing the client at the
// primary.
func (s *Server) gateWrites(h handlerFunc) handlerFunc {
	return func(w http.ResponseWriter, r *http.Request) error {
		if s.replicaRole() {
			details := map[string]any{}
			if s.opt.PrimaryURL != "" {
				details["primary"] = s.opt.PrimaryURL
			}
			return failCode(http.StatusMisdirectedRequest, "not_primary", details,
				"serve: this node is a read replica; send writes to the primary")
		}
		return h(w, r)
	}
}

// Routes returns the mounted API routes (canonical paths plus legacy
// aliases), including the debug surface.
func (s *Server) Routes() []Route {
	var out []Route
	for _, e := range s.routeTable() {
		out = append(out, e.Route)
	}
	out = append(out,
		Route{Method: "GET", Path: "/debug/vars", Name: "debug.vars"},
		Route{Method: "GET", Path: "/debug/pprof/", Name: "debug.pprof"},
	)
	return out
}

func (s *Server) routes() {
	for _, e := range s.routeTable() {
		limit := e.limit
		if limit <= 0 {
			limit = s.opt.MaxBodyBytes
		}
		h := e.h
		if writeRoutes[e.Name] {
			h = s.gateWrites(h)
		}
		s.handleLimit(e.Method+" "+e.Path, e.Name, limit, h)
		if e.Legacy != "" {
			s.handleLimit(e.Method+" "+e.Legacy, e.Name, limit, legacyAlias(h, e.Deprecated))
		}
	}
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// legacyAlias serves a pre-versioning path through the same handler as its
// /v1 successor (bodies are bit-identical — the differential test asserts
// it), stamping deprecated aliases with the Deprecation header (RFC 9745)
// and a successor-version Link so clients can migrate mechanically.
func legacyAlias(h handlerFunc, deprecated bool) handlerFunc {
	return func(w http.ResponseWriter, r *http.Request) error {
		if deprecated {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", "<"+strings.Replace(r.URL.Path, "/api/", "/v1/", 1)+`>; rel="successor-version"`)
		}
		return h(w, r)
	}
}

// handlerFunc is the internal handler shape: returning an error delegates
// the status mapping and JSON error body to the instrument wrapper.
type handlerFunc func(w http.ResponseWriter, r *http.Request) error

// statusWriter records the status code for metrics and access logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handleLimit mounts h at pattern wrapped in the shared instrument:
// inflight gauge, per-route counters and latency, a per-route body-size cap
// (the bulk ingest route carries whole worlds and gets its own limit),
// request timeout, error mapping and the structured access log.
func (s *Server) handleLimit(pattern, name string, bodyLimit int64, h handlerFunc) {
	s.mux.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		metrics.Add("inflight", 1)
		defer metrics.Add("inflight", -1)
		metrics.Add(name+".requests", 1)
		if s.opt.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, bodyLimit)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if err := h(sw, r); err != nil {
			metrics.Add(name+".errors", 1)
			writeError(sw, err)
		}
		elapsed := time.Since(start)
		metrics.Add(name+".latency_ns", elapsed.Nanoseconds())
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("route", name),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	}))
}
