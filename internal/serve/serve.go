// Package serve implements the cardirectd HTTP/JSON API: the paper's
// CARDIRECT tool (§4) as a network service over a tracked configuration.
// One config.Tracked — document, delta-maintained core.RelationStore and
// live R-tree — backs every endpoint, so pair-relation reads are O(1)
// cache lookups, region edits recompute only the touched row and column,
// and directional selections prune through R-tree window queries.
//
// Production posture: every handler runs under a per-endpoint expvar
// instrument (request count, error count, latency sum, global inflight
// gauge), request bodies are size-limited, an optional per-request timeout
// turns into context cancellation that the batch engines, the query join
// loop and the selection refinement all observe, and access is logged
// structurally through log/slog. Errors map to HTTP status codes through
// the shared sentinels (core.ErrUnknownRegion → 404, ErrDegenerateRegion →
// 422, config.ErrDuplicateRegion → 409, context deadline → 504).
package serve

import (
	"context"
	"expvar"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/geom"
	"cardirect/internal/persist"
	"cardirect/internal/query"
)

// Editor is the mutation surface the region edit endpoints write through.
// A bare config.Tracked satisfies it (in-memory service); a persist.Store
// satisfies it too, write-ahead logging every edit before it is
// acknowledged (durable service).
type Editor interface {
	AddRegion(id, name, color string, g geom.Region) error
	RemoveRegion(id string) error
	RenameRegion(oldID, newID string) error
	SetRegionGeometry(id string, g geom.Region) error
	// BulkAddRegions ingests many regions as ONE edit — one batched
	// relation recomputation (and, for the durable store, one batched WAL
	// append with a single fsync) instead of a 2(n−1)-pair delta per
	// region.
	BulkAddRegions(regions []config.BulkRegion) error
}

// Options configures a Server.
type Options struct {
	// MaxBodyBytes caps request body size; values ≤ 0 mean 1 MiB.
	MaxBodyBytes int64
	// MaxBulkBytes caps the POST /api/bulk request body, which carries
	// whole worlds and needs more room than ordinary edits; values ≤ 0
	// mean 64 MiB. Oversized streams map to 413 like every other body.
	MaxBulkBytes int64
	// RequestTimeout, when positive, bounds every request's context; work
	// that honors the context (batch recompute, query joins, selections)
	// aborts with 504 when it expires.
	RequestTimeout time.Duration
	// Workers is the worker-pool size handed to the batch engines by the
	// recompute endpoint; values ≤ 0 mean GOMAXPROCS.
	Workers int
	// Logger receives structured access logs; nil means slog.Default().
	Logger *slog.Logger
	// Persist, when set, makes the server durable: region edits are routed
	// through the store (write-ahead logged before acknowledgement) and
	// the /api/admin/* endpoints operate on it. The store's Tracked() must
	// be the same tr handed to New. Nil serves the in-memory shape and the
	// admin endpoints answer 404.
	Persist *persist.Store
}

// Server serves the cardirectd API over one tracked configuration.
type Server struct {
	tr    *config.Tracked
	edit  Editor
	opt   Options
	log   *slog.Logger
	mux   *http.ServeMux
	plans *query.PlanCache
}

// metrics is the process-wide expvar surface, published under "cardirectd":
// per-endpoint "<route>.requests" / "<route>.errors" / "<route>.latency_ns"
// counters, a global "inflight" gauge, and a "store" func reporting the
// tracked store's cumulative Stats (DeltaPairs, prune hits, edge counts).
var metrics = expvar.NewMap("cardirectd")

// New builds a server over the tracked configuration. The store behind tr
// should be built with StoreOptions.Pct when percent endpoints are wanted.
func New(tr *config.Tracked, opt Options) *Server {
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = 1 << 20
	}
	if opt.MaxBulkBytes <= 0 {
		opt.MaxBulkBytes = 64 << 20
	}
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	s := &Server{tr: tr, edit: tr, opt: opt, log: opt.Logger, mux: http.NewServeMux(),
		// One plan cache for the whole server: request-scoped evaluators
		// share it, so repeated query texts skip parsing and planning.
		// Entries self-invalidate against the store generation.
		plans: query.NewPlanCache(256)}
	if opt.Persist != nil {
		s.edit = opt.Persist
	}
	s.routes()
	// The expvar namespace is process-global; with several servers (tests)
	// the last one wins, which matches the one-server production shape.
	metrics.Set("store", expvar.Func(func() any {
		return map[string]any{
			"regions":    tr.Store().Len(),
			"generation": tr.Store().Generation(),
			"stats":      tr.Store().Stats(),
		}
	}))
	metrics.Set("plan_cache_hits", expvar.Func(func() any { return s.plans.Stats().Hits }))
	metrics.Set("plan_cache_misses", expvar.Func(func() any { return s.plans.Stats().Misses }))
	metrics.Set("replans", expvar.Func(func() any { return s.plans.Stats().Replans }))
	if p := opt.Persist; p != nil {
		metrics.Set("persist", expvar.Func(func() any {
			st := p.Status()
			return map[string]any{
				"seq":              st.Seq,
				"wal_records":      st.WAL.Records,
				"wal_bytes":        st.WAL.Bytes,
				"wal_fsyncs":       st.WAL.Fsyncs,
				"recovery_ns":      st.RecoveryNs,
				"replayed_records": st.ReplayedRecords,
				"skipped_records":  st.SkippedRecords,
				"seeded":           st.SeededFromSnapshot,
			}
		}))
	}
	return s
}

// Handler returns the root handler: the API routes plus /debug/vars
// (expvar) and /debug/pprof.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.handle("GET /healthz", "healthz", s.handleHealthz)
	s.handle("GET /api/regions", "regions.list", s.handleRegionsList)
	s.handle("POST /api/regions", "regions.add", s.handleRegionAdd)
	s.handle("GET /api/regions/{id}", "regions.get", s.handleRegionGet)
	s.handle("PUT /api/regions/{id}", "regions.set", s.handleRegionSet)
	s.handle("POST /api/regions/{id}/rename", "regions.rename", s.handleRegionRename)
	s.handle("DELETE /api/regions/{id}", "regions.delete", s.handleRegionDelete)
	s.handle("GET /api/relation", "relation", s.handleRelation)
	s.handle("GET /api/relations", "relations", s.handleRelations)
	s.handle("POST /api/batch", "batch", s.handleBatch)
	s.handleLimit("POST /api/bulk", "bulk", s.opt.MaxBulkBytes, s.handleBulk)
	s.handle("GET /api/select", "select", s.handleSelect)
	s.handle("POST /api/query", "query", s.handleQuery)
	s.handle("GET /api/stats", "stats", s.handleStats)
	s.handle("POST /api/admin/snapshot", "admin.snapshot", s.handleAdminSnapshot)
	s.handle("GET /api/admin/status", "admin.status", s.handleAdminStatus)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// handlerFunc is the internal handler shape: returning an error delegates
// the status mapping and JSON error body to the instrument wrapper.
type handlerFunc func(w http.ResponseWriter, r *http.Request) error

// statusWriter records the status code for metrics and access logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handle mounts h at pattern wrapped in the shared instrument: inflight
// gauge, per-route counters and latency, body-size limit, request timeout,
// error mapping and the structured access log.
func (s *Server) handle(pattern, name string, h handlerFunc) {
	s.handleLimit(pattern, name, s.opt.MaxBodyBytes, h)
}

// handleLimit is handle with a per-route body-size cap (the bulk ingest
// route carries whole worlds and gets its own limit).
func (s *Server) handleLimit(pattern, name string, bodyLimit int64, h handlerFunc) {
	s.mux.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		metrics.Add("inflight", 1)
		defer metrics.Add("inflight", -1)
		metrics.Add(name+".requests", 1)
		if s.opt.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, bodyLimit)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if err := h(sw, r); err != nil {
			metrics.Add(name+".errors", 1)
			writeError(sw, err)
		}
		elapsed := time.Since(start)
		metrics.Add(name+".latency_ns", elapsed.Nanoseconds())
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("route", name),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	}))
}
