package serve

import (
	"net/http"

	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/reason"
	"cardirect/internal/topo"
)

// The reasoning endpoints expose the qualitative layer of the paper (§5–§6):
// consistency checking over cardinal direction constraint networks, optional
// joint RCC-8 topology, entailment through algebraic closure, and the raw
// composition/inverse algebra. They are /v1-only — the family did not exist
// before versioning.

// constraintJSON is one directional constraint x R y; Relation is a
// RelationSet in the repo's textual form ("S:SW" for a disjunction of the
// two single-tile relations, "B:S:SW" for one multi-tile relation — see
// core.ParseRelationSet).
type constraintJSON struct {
	X        string `json:"x"`
	Y        string `json:"y"`
	Relation string `json:"relation"`
}

// topoJSON is one RCC-8 constraint x R y; Relation names a relation set like
// "TPP|NTPP" or "*" for the universal set.
type topoJSON struct {
	X        string `json:"x"`
	Y        string `json:"y"`
	Relation string `json:"relation"`
}

type checkRequest struct {
	// Variables optionally declares region variables beyond the ones the
	// constraints mention (isolated variables are satisfiable trivially but
	// count toward the network size cap).
	Variables   []string         `json:"variables,omitempty"`
	Constraints []constraintJSON `json:"constraints"`
	Topology    []topoJSON       `json:"topology,omitempty"`
	// MaxScenarios caps the scenario search; 0 means the solver default.
	MaxScenarios int `json:"max_scenarios,omitempty"`
	// Workers overrides the server's -solve-workers fan width.
	Workers int `json:"workers,omitempty"`
	// NoFastPath / NoParallel force the full sequential solver (differential
	// clients and benchmarks).
	NoFastPath bool `json:"no_fast_path,omitempty"`
	NoParallel bool `json:"no_parallel,omitempty"`
}

type checkResponse struct {
	Satisfiable bool `json:"satisfiable"`
	// Witness maps each variable to a realising region in WKT, present
	// exactly when satisfiable.
	Witness map[string]string `json:"witness,omitempty"`
	Stats   reason.CheckStats `json:"stats"`
}

type entailRequest struct {
	Variables   []string         `json:"variables,omitempty"`
	Constraints []constraintJSON `json:"constraints"`
	X           string           `json:"x"`
	Y           string           `json:"y"`
}

type entailResponse struct {
	X        string `json:"x"`
	Y        string `json:"y"`
	Relation string `json:"relation"`
	// Count is the number of basic relations in the entailed set (511 means
	// the network says nothing about the pair).
	Count int `json:"count"`
}

type composeRequest struct {
	// R1 and R2 compose; alternatively R alone inverts.
	R1 string `json:"r1,omitempty"`
	R2 string `json:"r2,omitempty"`
	R  string `json:"r,omitempty"`
}

type composeResponse struct {
	Result string `json:"result"`
	Count  int    `json:"count"`
}

// buildNetwork assembles a reason.Network from request fields, enforcing the
// server's network size cap (413 — the consistency search is worst-case
// exponential in the variable count).
func (s *Server) buildNetwork(variables []string, constraints []constraintJSON) (*reason.Network, error) {
	n := reason.NewNetwork()
	for _, v := range variables {
		if v == "" {
			return nil, failf(http.StatusBadRequest, "empty variable name")
		}
		n.AddVariable(v)
	}
	for i, c := range constraints {
		if c.X == "" || c.Y == "" {
			return nil, failf(http.StatusBadRequest, "constraint %d: missing x or y", i)
		}
		rs, err := core.ParseRelationSet(c.Relation)
		if err != nil {
			return nil, failf(http.StatusBadRequest, "constraint %d: %v", i, err)
		}
		if err := n.Constrain(c.X, c.Y, rs); err != nil {
			return nil, failf(http.StatusBadRequest, "constraint %d: %v", i, err)
		}
	}
	if nv := len(n.Variables()); nv > s.opt.MaxNetwork {
		return nil, failCode(http.StatusRequestEntityTooLarge, "network_too_large",
			map[string]int{"vars": nv, "max": s.opt.MaxNetwork},
			"network declares %d variables, cap is %d", nv, s.opt.MaxNetwork)
	}
	return n, nil
}

// handleReasonCheck decides satisfiability of a directional (optionally
// joint-topological) constraint network and returns a witness when it is
// satisfiable. Unsatisfiable is a 200 with satisfiable=false; 504 means the
// scenario budget or request timeout ran out before a decision.
func (s *Server) handleReasonCheck(w http.ResponseWriter, r *http.Request) error {
	var req checkRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	n, err := s.buildNetwork(req.Variables, req.Constraints)
	if err != nil {
		return err
	}
	var topoCons []reason.TopoConstraint
	for i, t := range req.Topology {
		ts, err := topo.ParseRCC8Set(t.Relation)
		if err != nil {
			return failf(http.StatusBadRequest, "topology %d: %v", i, err)
		}
		if t.X == "" || t.Y == "" {
			return failf(http.StatusBadRequest, "topology %d: missing x or y", i)
		}
		topoCons = append(topoCons, reason.TopoConstraint{X: t.X, Y: t.Y, Rels: ts})
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.opt.SolveWorkers
	}
	res, err := n.Check(r.Context(), reason.CheckOptions{
		MaxScenarios: req.MaxScenarios,
		Workers:      workers,
		NoFastPath:   req.NoFastPath,
		NoParallel:   req.NoParallel,
		Topology:     topoCons,
	})
	if err != nil {
		return err
	}
	metrics.Add("reason.checks", 1)
	if res.Stats.FastPathDecided {
		metrics.Add("reason.fastpath_decided", 1)
	}
	if !res.Satisfiable {
		metrics.Add("reason.unsat", 1)
	}
	out := checkResponse{Satisfiable: res.Satisfiable, Stats: res.Stats}
	if res.Witness != nil {
		out.Witness = make(map[string]string, len(res.Witness.Regions))
		for name, g := range res.Witness.Regions {
			out.Witness[name] = geom.FormatWKT(g)
		}
	}
	return writeData(w, http.StatusOK, out)
}

// handleReasonEntail answers the strongest relation the network implies
// between an ordered pair, via algebraic closure. An inconsistent network is
// a 422 (it entails everything, so the query is meaningless).
func (s *Server) handleReasonEntail(w http.ResponseWriter, r *http.Request) error {
	var req entailRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	if req.X == "" || req.Y == "" {
		return failf(http.StatusBadRequest, "missing x or y")
	}
	n, err := s.buildNetwork(req.Variables, req.Constraints)
	if err != nil {
		return err
	}
	rs, err := n.Entail(req.X, req.Y)
	if err != nil {
		return err
	}
	metrics.Add("reason.entails", 1)
	return writeData(w, http.StatusOK, entailResponse{
		X: req.X, Y: req.Y, Relation: rs.String(), Count: rs.Len(),
	})
}

// handleReasonCompose exposes the algebra directly: r1 and r2 compose
// (paper §5's consistency-based composition extended to sets), or r alone
// inverts.
func (s *Server) handleReasonCompose(w http.ResponseWriter, r *http.Request) error {
	var req composeRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	var out core.RelationSet
	switch {
	case req.R != "" && req.R1 == "" && req.R2 == "":
		rs, err := core.ParseRelationSet(req.R)
		if err != nil {
			return failf(http.StatusBadRequest, "r: %v", err)
		}
		out = reason.InverseSet(rs)
	case req.R == "" && req.R1 != "" && req.R2 != "":
		s1, err := core.ParseRelationSet(req.R1)
		if err != nil {
			return failf(http.StatusBadRequest, "r1: %v", err)
		}
		s2, err := core.ParseRelationSet(req.R2)
		if err != nil {
			return failf(http.StatusBadRequest, "r2: %v", err)
		}
		out = reason.CompositionSets(s1, s2)
	default:
		return failf(http.StatusBadRequest, "provide either r1 and r2 (composition) or r alone (inverse)")
	}
	metrics.Add("reason.composes", 1)
	return writeData(w, http.StatusOK, composeResponse{Result: out.String(), Count: out.Len()})
}
