package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"cardirect/internal/geom"
	"cardirect/internal/serve"
)

// etagDo issues one request with an optional If-None-Match header and
// returns the status, the ETag header and the body.
func etagDo(t *testing.T, method, url, inm string, body []byte) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), data
}

// TestETagRevalidation drives the conditional-request contract on every
// validatable endpoint: a 200 carries the generation ETag, a repeat with
// If-None-Match gets 304 with no body, an edit rotates the tag and the
// stale tag stops matching.
func TestETagRevalidation(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})
	queryBody, err := json.Marshal(map[string]string{"q": "q(x, y) :- y = peloponnesos, x {N, NE, E} y"})
	if err != nil {
		t.Fatal(err)
	}
	endpoints := []struct {
		name, method, url string
		body              []byte
	}{
		{"relation", "GET", ts.URL + "/api/relation?primary=attica&reference=crete", nil},
		{"select", "GET", ts.URL + "/api/select?reference=peloponnesos&relation=N", nil},
		{"query", "POST", ts.URL + "/api/query", queryBody},
		{"relations", "GET", ts.URL + "/api/relations", nil},
		{"stats", "GET", ts.URL + "/api/stats", nil},
		{"v1.relation", "GET", ts.URL + "/v1/relation?primary=attica&reference=crete", nil},
		{"v1.relations", "GET", ts.URL + "/v1/relations", nil},
		{"v1.stats", "GET", ts.URL + "/v1/stats", nil},
	}
	tags := map[string]string{}
	for _, ep := range endpoints {
		code, etag, body := etagDo(t, ep.method, ep.url, "", ep.body)
		if code != http.StatusOK {
			t.Fatalf("%s: status = %d (%s)", ep.name, code, body)
		}
		if etag == "" {
			t.Fatalf("%s: 200 response carries no ETag", ep.name)
		}
		if len(body) == 0 {
			t.Fatalf("%s: 200 response has no body", ep.name)
		}
		tags[ep.name] = etag

		// Revalidation: exact tag, a tag list, a weak form, and the
		// wildcard all produce 304 with an empty body.
		for _, inm := range []string{etag, `"bogus", ` + etag, "W/" + etag, "*"} {
			code, etag304, body := etagDo(t, ep.method, ep.url, inm, ep.body)
			if code != http.StatusNotModified {
				t.Errorf("%s: If-None-Match %q: status = %d, want 304", ep.name, inm, code)
			}
			if len(body) != 0 {
				t.Errorf("%s: 304 carries a body: %q", ep.name, body)
			}
			if etag304 != etag {
				t.Errorf("%s: 304 ETag = %q, want %q", ep.name, etag304, etag)
			}
		}
		// A non-matching tag still gets the full response.
		if code, _, _ := etagDo(t, ep.method, ep.url, `"g999999"`, ep.body); code != http.StatusOK {
			t.Errorf("%s: non-matching If-None-Match: status = %d, want 200", ep.name, code)
		}
	}
	// Every endpoint validates against the same store generation.
	for _, ep := range endpoints {
		if tags[ep.name] != tags["relation"] {
			t.Errorf("endpoints disagree on the generation tag: %v", tags)
			break
		}
	}

	// An edit bumps the generation: old tags stop matching, new responses
	// carry a fresh tag.
	wkt := geom.FormatWKT(geom.Rgn(geom.Poly(
		geom.Pt(5000, 5100), geom.Pt(5100, 5100), geom.Pt(5100, 5000), geom.Pt(5000, 5000),
	)))
	if code := doJSON(t, "POST", ts.URL+"/api/regions", map[string]string{"id": "etag-probe", "wkt": wkt}, nil); code != http.StatusCreated {
		t.Fatalf("edit: status = %d", code)
	}
	for _, ep := range endpoints {
		code, etag, _ := etagDo(t, ep.method, ep.url, tags[ep.name], ep.body)
		if code != http.StatusOK {
			t.Errorf("%s: stale tag after edit: status = %d, want 200", ep.name, code)
		}
		if etag == tags[ep.name] {
			t.Errorf("%s: ETag unchanged across an edit: %q", ep.name, etag)
		}
	}
}

// TestQueryPlanCacheOverHTTP: repeated query texts hit the server's shared
// plan cache, an edit forces a replan, and $-parameters resolve from the
// request's args while sharing one cached plan.
func TestQueryPlanCacheOverHTTP(t *testing.T) {
	ts, tr := newGreeceServer(t, serve.Options{})
	post := func(body any) (int, map[string]any) {
		t.Helper()
		var out map[string]any
		code := doJSON(t, "POST", ts.URL+"/api/query", body, &out)
		return code, out
	}
	q := map[string]string{"q": "q(x, y) :- y = peloponnesos, x {N, NE, E} y"}
	code, first := post(q)
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, first)
	}
	if first["cache"] != "miss" {
		t.Errorf("first request cache = %v, want miss", first["cache"])
	}
	if first["plan"] == nil {
		t.Error("response carries no plan")
	}
	code, second := post(q)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if second["cache"] != "hit" {
		t.Errorf("second request cache = %v, want hit", second["cache"])
	}
	if !jsonEqual(first["bindings"], second["bindings"]) {
		t.Error("cached execution answered differently")
	}

	// Same text, edited store: the plan must be rebuilt, not served stale.
	if err := tr.SetRegionGeometry("attica",
		tr.Image().FindRegion("attica").Geometry().Translate(geom.Pt(0.1, 0))); err != nil {
		t.Fatal(err)
	}
	code, third := post(q)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if third["cache"] != "replan" {
		t.Errorf("post-edit cache = %v, want replan", third["cache"])
	}
	if third["generation"] == first["generation"] {
		t.Error("generation did not advance across the edit")
	}

	// Parameterised text: one plan, many bindings.
	pq := map[string]any{
		"q":    "q(x) :- x = $r",
		"args": map[string]string{"r": "crete"},
	}
	code, p1 := post(pq)
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, p1)
	}
	bindings, _ := p1["bindings"].([]any)
	if len(bindings) != 1 {
		t.Fatalf("param query bindings = %v", p1["bindings"])
	}
	if b, _ := bindings[0].(map[string]any); b["x"] != "crete" {
		t.Errorf("param binding = %v, want crete", bindings[0])
	}
	pq["args"] = map[string]string{"r": "attica"}
	code, p2 := post(pq)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if p2["cache"] != "hit" {
		t.Errorf("re-parameterised request cache = %v, want hit (one plan per text)", p2["cache"])
	}
	// Missing parameter is a client error.
	pq["args"] = map[string]string{}
	if code, _ := post(pq); code == http.StatusOK {
		t.Error("unbound parameter should not be 200")
	}
}

func jsonEqual(a, b any) bool {
	ja, err := json.Marshal(a)
	if err != nil {
		return false
	}
	jb, err := json.Marshal(b)
	if err != nil {
		return false
	}
	return bytes.Equal(ja, jb)
}
