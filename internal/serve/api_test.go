package serve_test

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"strings"
	"testing"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/serve"
)

// TestV1LegacyDifferential: every legacy route answers bit-identically on
// its /v1 successor; deprecated legacy paths carry the Deprecation header
// and a successor-version Link, canonical paths carry neither.
func TestV1LegacyDifferential(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	cases := []struct {
		legacy, v1 string
		deprecated bool
	}{
		{"/healthz", "/v1/healthz", false},
		{"/api/regions", "/v1/regions", true},
		{"/api/regions/crete", "/v1/regions/crete", true},
		{"/api/relation?primary=attica&reference=crete", "/v1/relation?primary=attica&reference=crete", true},
		{"/api/relations", "/v1/relations", true},
		{"/api/select?reference=attica&relation=" + url.QueryEscape("{N, NE}"), "/v1/select?reference=attica&relation=" + url.QueryEscape("{N, NE}"), true},
		{"/api/stats", "/v1/stats", true},
		{"/api/admin/status", "/v1/admin/status", true}, // 404 without -data, still identical
	}
	for _, c := range cases {
		lr, lb := get(c.legacy)
		vr, vb := get(c.v1)
		if lr.StatusCode != vr.StatusCode {
			t.Errorf("%s: status %d, successor %s: %d", c.legacy, lr.StatusCode, c.v1, vr.StatusCode)
		}
		if !bytes.Equal(lb, vb) {
			t.Errorf("%s and %s answer different bodies:\n%s\nvs\n%s", c.legacy, c.v1, lb, vb)
		}
		if got := lr.Header.Get("Deprecation"); (got == "true") != c.deprecated {
			t.Errorf("%s: Deprecation header = %q, want deprecated=%v", c.legacy, got, c.deprecated)
		}
		if c.deprecated {
			wantPath := strings.Replace(strings.SplitN(c.legacy, "?", 2)[0], "/api/", "/v1/", 1)
			if link := lr.Header.Get("Link"); !strings.Contains(link, wantPath) || !strings.Contains(link, "successor-version") {
				t.Errorf("%s: Link header = %q, want successor %s", c.legacy, link, wantPath)
			}
		}
		if vr.Header.Get("Deprecation") != "" {
			t.Errorf("%s: canonical path carries a Deprecation header", c.v1)
		}
	}
}

// TestRouteInventory: API.md documents every mounted route — the doc and
// the route table cannot drift apart silently.
func TestRouteInventory(t *testing.T) {
	tr, err := config.Track(config.Greece(), core.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	srv := serve.New(tr, serve.Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	doc, err := os.ReadFile("../../API.md")
	if err != nil {
		t.Fatal(err)
	}
	routes := srv.Routes()
	if len(routes) == 0 {
		t.Fatal("Routes() is empty")
	}
	for _, rt := range routes {
		if rt.Method == "" || rt.Path == "" || rt.Name == "" {
			t.Errorf("incomplete route entry: %+v", rt)
		}
		if !strings.HasPrefix(rt.Path, "/v1/") && !strings.HasPrefix(rt.Path, "/debug/") {
			t.Errorf("canonical path %s is not under /v1 or /debug", rt.Path)
		}
		if want := rt.Method + " " + rt.Path; !bytes.Contains(doc, []byte(want)) {
			t.Errorf("API.md does not document %q", want)
		}
		if rt.Legacy != "" {
			if want := rt.Method + " " + rt.Legacy; !bytes.Contains(doc, []byte(want)) {
				t.Errorf("API.md does not document legacy alias %q", want)
			}
		}
	}
}

// --- reason endpoints ---

type checkWire struct {
	Satisfiable bool              `json:"satisfiable"`
	Witness     map[string]string `json:"witness"`
	Stats       struct {
		Vars             int  `json:"vars"`
		Edges            int  `json:"edges"`
		FastPathEligible bool `json:"fastpath_eligible"`
		FastPathDecided  bool `json:"fastpath_decided"`
		JointApplied     bool `json:"joint_applied"`
		JointRejected    bool `json:"joint_rejected"`
		SolverBranches   int  `json:"solver_branches"`
	} `json:"stats"`
}

func TestReasonCheckEndpoint(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})

	// Satisfiable disjunctive network: the witness must realise every
	// constraint (verified with ComputeCDR below).
	req := map[string]any{
		"constraints": []map[string]string{
			{"x": "a", "y": "b", "relation": "{N, NE}"},
			{"x": "b", "y": "c", "relation": "N"},
			{"x": "c", "y": "a", "relation": "{S, SW, S:SW}"},
		},
	}
	var out checkWire
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/check", req, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !out.Satisfiable {
		t.Fatal("satisfiable network reported unsat")
	}
	if out.Stats.Vars != 3 || out.Stats.Edges != 3 {
		t.Errorf("stats = %+v", out.Stats)
	}
	regions := map[string]geom.Region{}
	for name, wkt := range out.Witness {
		g, err := geom.ParseWKT(wkt)
		if err != nil {
			t.Fatalf("witness %s does not parse: %v", name, err)
		}
		regions[name] = g
	}
	for _, c := range req["constraints"].([]map[string]string) {
		allowed, err := core.ParseRelationSet(c["relation"])
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.ComputeCDR(regions[c["x"]], regions[c["y"]])
		if err != nil {
			t.Fatal(err)
		}
		if !allowed.Contains(got) {
			t.Errorf("witness violates %s %s %s: computed %s", c["x"], c["relation"], c["y"], got)
		}
	}

	// Unsatisfiable network: 200 with satisfiable=false, not an error.
	unsat := map[string]any{
		"constraints": []map[string]string{
			{"x": "a", "y": "b", "relation": "N"},
			{"x": "b", "y": "a", "relation": "N"},
		},
	}
	var uout checkWire
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/check", unsat, &uout); code != http.StatusOK {
		t.Fatalf("unsat: status = %d", code)
	}
	if uout.Satisfiable || len(uout.Witness) != 0 {
		t.Errorf("unsat network: %+v", uout)
	}

	// In-fragment networks decide on the fast path without entering the
	// solver.
	frag := map[string]any{
		"constraints": []map[string]string{
			{"x": "a", "y": "b", "relation": "N"},
			{"x": "b", "y": "c", "relation": "NW"},
		},
	}
	var fout checkWire
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/check", frag, &fout); code != http.StatusOK {
		t.Fatalf("fragment: status = %d", code)
	}
	if !fout.Satisfiable || !fout.Stats.FastPathDecided || fout.Stats.SolverBranches != 0 {
		t.Errorf("fragment network did not decide on the fast path: %+v", fout.Stats)
	}

	// Joint topology: a proper part cannot be strictly north.
	joint := map[string]any{
		"constraints": []map[string]string{{"x": "a", "y": "b", "relation": "N"}},
		"topology":    []map[string]string{{"x": "a", "y": "b", "relation": "TPP|NTPP"}},
	}
	var jout checkWire
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/check", joint, &jout); code != http.StatusOK {
		t.Fatalf("joint: status = %d", code)
	}
	if jout.Satisfiable || !jout.Stats.JointApplied || !jout.Stats.JointRejected {
		t.Errorf("joint rejection: %+v", jout)
	}

	// Error surface: bad relation text, oversized network, empty scenario
	// budget on an adversarial instance.
	bad := map[string]any{"constraints": []map[string]string{{"x": "a", "y": "b", "relation": "XYZ"}}}
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/check", bad, nil); code != http.StatusBadRequest {
		t.Errorf("bad relation: status = %d", code)
	}
}

func TestReasonNetworkTooLarge(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{MaxNetwork: 4})
	vars := make([]string, 5)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
	}
	req := map[string]any{"variables": vars}
	var errOut struct {
		Error struct {
			Code    string `json:"code"`
			Details struct {
				Vars int `json:"vars"`
				Max  int `json:"max"`
			} `json:"details"`
		} `json:"error"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/check", req, &errOut); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", code)
	}
	if errOut.Error.Code != "network_too_large" || errOut.Error.Details.Vars != 5 || errOut.Error.Details.Max != 4 {
		t.Errorf("413 envelope = %+v", errOut.Error)
	}
}

func TestReasonCheckTimeout(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{RequestTimeout: time.Nanosecond})
	req := map[string]any{
		"constraints": []map[string]string{
			{"x": "a", "y": "b", "relation": "{N, S}"},
			{"x": "b", "y": "c", "relation": "{N, S}"},
			{"x": "c", "y": "a", "relation": "{N, S}"},
		},
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/check", req, nil); code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", code)
	}
}

func TestReasonEntailEndpoint(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})
	req := map[string]any{
		"constraints": []map[string]string{
			{"x": "a", "y": "b", "relation": "N"},
			{"x": "b", "y": "c", "relation": "N"},
		},
		"x": "a", "y": "c",
	}
	var out struct {
		Relation string `json:"relation"`
		Count    int    `json:"count"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/entail", req, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.Count == 0 || out.Count == 511 {
		t.Errorf("entail N∘N answered %q (%d relations) — expected a proper subset", out.Relation, out.Count)
	}
	if !strings.Contains(out.Relation, "N") {
		t.Errorf("entail N∘N = %q does not include N", out.Relation)
	}

	// An inconsistent network entails everything: the query is a 422.
	bad := map[string]any{
		"constraints": []map[string]string{
			{"x": "a", "y": "b", "relation": "N"},
			{"x": "b", "y": "a", "relation": "N"},
			{"x": "a", "y": "c", "relation": "E"},
		},
		"x": "a", "y": "c",
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/entail", bad, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("inconsistent entail: status = %d, want 422", code)
	}
	// Unknown variables are client errors.
	unk := map[string]any{
		"constraints": []map[string]string{{"x": "a", "y": "b", "relation": "N"}},
		"x":           "a", "y": "zz",
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/entail", unk, nil); code != http.StatusBadRequest {
		t.Errorf("unknown variable: status = %d, want 400", code)
	}
}

func TestReasonComposeEndpoint(t *testing.T) {
	ts, _ := newGreeceServer(t, serve.Options{})
	var out struct {
		Result string `json:"result"`
		Count  int    `json:"count"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/compose", map[string]string{"r1": "N", "r2": "N"}, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.Count == 0 || !strings.Contains(out.Result, "N") {
		t.Errorf("N∘N = %q (%d)", out.Result, out.Count)
	}
	// Inverse: a single-tile N primary pins the reference below it, but the
	// reference may itself span several southern tiles (paper §5.2) — the
	// exact 5-relation answer is pinned.
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/compose", map[string]string{"r": "N"}, &out); code != http.StatusOK {
		t.Fatalf("inverse: status = %d", code)
	}
	if out.Count != 5 || out.Result != "{S, S:SW, S:SE, SW:SE, S:SW:SE}" {
		t.Errorf("inv(N) = %q (%d), want the 5 southern relations", out.Result, out.Count)
	}
	// Both forms at once is a client error, as is neither.
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/compose", map[string]string{"r": "N", "r1": "N", "r2": "N"}, nil); code != http.StatusBadRequest {
		t.Errorf("mixed compose request: status = %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/reason/compose", map[string]string{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty compose request: status = %d", code)
	}
}
