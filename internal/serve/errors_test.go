package serve

import (
	"context"
	"fmt"
	"net/http"
	"testing"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/persist"
	"cardirect/internal/reason"
)

// TestStatusOfSentinels pins the sentinel → (status, code) contract: every
// shared sentinel maps to its documented status and machine-readable code,
// wrapped or not.
func TestStatusOfSentinels(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{core.ErrUnknownRegion, http.StatusNotFound, "unknown_region"},
		{config.ErrDuplicateRegion, http.StatusConflict, "duplicate_region"},
		{core.ErrDegenerateRegion, http.StatusUnprocessableEntity, "degenerate_region"},
		{persist.ErrEmptyWorld, http.StatusUnprocessableEntity, "empty_world"},
		{reason.ErrInconsistent, http.StatusUnprocessableEntity, "inconsistent_network"},
		{reason.ErrSearchLimit, http.StatusGatewayTimeout, "search_limit"},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "timeout"},
		{context.Canceled, statusClientClosed, "canceled"},
		// config.ErrUnknownRegion wraps the core sentinel.
		{config.ErrUnknownRegion, http.StatusNotFound, "unknown_region"},
		// Explicit statuses win and fall back to the status's default code.
		{failf(http.StatusNotFound, "gone"), http.StatusNotFound, "not_found"},
		{failf(http.StatusConflict, "clash"), http.StatusConflict, "conflict"},
		{failf(http.StatusRequestEntityTooLarge, "big"), http.StatusRequestEntityTooLarge, "too_large"},
		{failf(http.StatusUnprocessableEntity, "nope"), http.StatusUnprocessableEntity, "unprocessable"},
		{failf(http.StatusInternalServerError, "boom"), http.StatusInternalServerError, "internal"},
		{failf(http.StatusBadRequest, "bad"), http.StatusBadRequest, "bad_request"},
		// failCode pins both status and code.
		{failCode(http.StatusRequestEntityTooLarge, "network_too_large", nil, "too many"),
			http.StatusRequestEntityTooLarge, "network_too_large"},
		// Unmapped errors are client errors.
		{fmt.Errorf("mystery"), http.StatusBadRequest, "bad_request"},
		// Wrapping preserves the mapping.
		{fmt.Errorf("outer: %w", core.ErrUnknownRegion), http.StatusNotFound, "unknown_region"},
		{fmt.Errorf("outer: %w", reason.ErrSearchLimit), http.StatusGatewayTimeout, "search_limit"},
	}
	for _, c := range cases {
		status, code := statusOf(c.err)
		if status != c.status || code != c.code {
			t.Errorf("statusOf(%v) = (%d, %q), want (%d, %q)", c.err, status, code, c.status, c.code)
		}
	}
	// Every sentinel-table entry is exercised above.
	if len(sentinelTable) != 8 {
		t.Errorf("sentinelTable has %d entries, test covers 8", len(sentinelTable))
	}
}
