package serve_test

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"cardirect/internal/geom"
	"cardirect/internal/serve"
	"cardirect/internal/workload"
)

// bulkNDJSON renders a generated world as the bulk-ingest wire format.
func bulkNDJSON(t *testing.T, regions []geom.Region, prefix string) string {
	t.Helper()
	var sb strings.Builder
	for i, g := range regions {
		fmt.Fprintf(&sb, "{\"id\":%q,\"name\":%q,\"wkt\":%q}\n",
			fmt.Sprintf("%s%04d", prefix, i), fmt.Sprintf("Bulk %d", i), geom.FormatWKT(g))
	}
	return sb.String()
}

// TestBulkIngest is the HTTP acceptance of the streamed bulk path: one
// POST /api/bulk of a zipfian world lands every region with ONE batched
// recomputation and ZERO delta pairs.
func TestBulkIngest(t *testing.T) {
	ts, tr := newGreeceServer(t, serve.Options{})
	pre := tr.Store().Len()
	const k = 400
	window := geom.Rect{MinX: 1000, MinY: 1000, MaxX: 2000, MaxY: 2000}
	body := bulkNDJSON(t, workload.New(5).Zipf(window, k, 128), "z")

	var out struct {
		Added      int   `json:"added"`
		Batches    int   `json:"batches"`
		DurationNs int64 `json:"duration_ns"`
	}
	if code := doJSON(t, "POST", ts.URL+"/api/bulk", body, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.Added != k || out.Batches != 1 {
		t.Fatalf("response = %+v", out)
	}
	if got := tr.Store().Len(); got != pre+k {
		t.Fatalf("store holds %d regions, want %d", got, pre+k)
	}
	st := tr.Store().Stats()
	if st.BulkBatches != 1 {
		t.Errorf("BulkBatches = %d, want 1", st.BulkBatches)
	}
	if st.DeltaPairs != 0 {
		t.Errorf("DeltaPairs = %d, want 0 — bulk ingest must not pay per-region deltas", st.DeltaPairs)
	}
	// The ingested regions answer relation queries like any others.
	var rel struct {
		Relation string `json:"relation"`
	}
	if code := doJSON(t, "GET", ts.URL+"/api/relation?primary=z0001&reference=z0002", nil, &rel); code != http.StatusOK {
		t.Fatalf("relation status = %d", code)
	}
	if rel.Relation == "" {
		t.Error("empty relation for ingested pair")
	}
}

// TestBulkIngestAtomic checks a bad line rejects the whole stream.
func TestBulkIngestAtomic(t *testing.T) {
	ts, tr := newGreeceServer(t, serve.Options{})
	pre := tr.Store().Len()
	good := bulkNDJSON(t, workload.New(6).Scatter(5, 8), "a")
	for _, bad := range []string{
		good + "{\"id\":\"a0000\",\"wkt\":\"POLYGON((0 0,0 1,1 1,1 0,0 0))\"}\n", // dup within stream
		good + "{\"id\":\"\",\"wkt\":\"POLYGON((0 0,0 1,1 1,1 0,0 0))\"}\n",      // missing id
		good + "{\"id\":\"b\",\"wkt\":\"POLYGON((0 0))\"}\n",                     // bad geometry
		good + "not json\n",
		good + "{\"id\":\"b\"}\n", // no geometry
	} {
		if code := doJSON(t, "POST", ts.URL+"/api/bulk", bad, nil); code == http.StatusOK {
			t.Errorf("bad stream accepted")
		}
		if tr.Store().Len() != pre {
			t.Fatalf("rejected stream mutated the store")
		}
	}
	if code := doJSON(t, "POST", ts.URL+"/api/bulk", "", nil); code != http.StatusBadRequest {
		t.Errorf("empty stream: status %d, want 400", code)
	}
}

// TestBulkIngestBodyCap checks the dedicated bulk request-size cap maps to
// 413 without the ordinary 1 MiB edit cap applying.
func TestBulkIngestBodyCap(t *testing.T) {
	ts, tr := newGreeceServer(t, serve.Options{MaxBodyBytes: 512, MaxBulkBytes: 16 << 10})
	// Over the 512-byte edit cap but under the bulk cap: must succeed.
	mid := bulkNDJSON(t, workload.New(7).Scatter(12, 8), "m")
	if len(mid) <= 512 || len(mid) >= 16<<10 {
		t.Fatalf("fixture sized %d, want between the caps", len(mid))
	}
	if code := doJSON(t, "POST", ts.URL+"/api/bulk", mid, nil); code != http.StatusOK {
		t.Fatalf("mid-size bulk: status %d", code)
	}
	pre := tr.Store().Len()
	// Over the bulk cap: 413, nothing applied.
	big := bulkNDJSON(t, workload.New(8).Scatter(400, 16), "b")
	if len(big) < 16<<10 {
		t.Fatalf("fixture sized %d, want over the bulk cap", len(big))
	}
	if code := doJSON(t, "POST", ts.URL+"/api/bulk", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized bulk: status %d, want 413", code)
	}
	if tr.Store().Len() != pre {
		t.Error("oversized stream mutated the store")
	}
}
