package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestWriterSequenceNumbers checks the explicit record numbering replication
// relies on: a fresh writer hands out 1..n, BaseSeq offsets the numbering,
// batches advance by their length, and a writer continuing an existing log
// picks up where the replayed record count says it should.
func TestWriterSequenceNumbers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if w.NextSeq() != 1 || w.LastSeq() != 0 {
		t.Fatalf("fresh writer: NextSeq=%d LastSeq=%d, want 1, 0", w.NextSeq(), w.LastSeq())
	}
	recs := sampleRecords()
	if err := w.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 1 {
		t.Fatalf("after one append: LastSeq=%d, want 1", w.LastSeq())
	}
	if err := w.AppendBatch(recs[1:4]); err != nil {
		t.Fatal(err)
	}
	if w.LastSeq() != 4 || w.NextSeq() != 5 {
		t.Fatalf("after batch of 3: LastSeq=%d NextSeq=%d, want 4, 5", w.LastSeq(), w.NextSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Continue the log: the caller numbers from the replayed record count.
	replayed, valid, corr, err := ReplayFile(path)
	if err != nil || corr != nil {
		t.Fatalf("replay: corr=%v err=%v", corr, err)
	}
	w2, err := OpenAppend(path, valid, Options{Policy: SyncNever, BaseSeq: uint64(len(replayed))})
	if err != nil {
		t.Fatal(err)
	}
	if w2.NextSeq() != 5 {
		t.Fatalf("continued writer: NextSeq=%d, want 5", w2.NextSeq())
	}
	if err := w2.Append(recs[4]); err != nil {
		t.Fatal(err)
	}
	if w2.LastSeq() != 5 {
		t.Fatalf("continued writer after append: LastSeq=%d, want 5", w2.LastSeq())
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// A writer with an explicit base numbers from there.
	w3, err := Create(filepath.Join(t.TempDir(), "based.log"), Options{Policy: SyncNever, BaseSeq: 41})
	if err != nil {
		t.Fatal(err)
	}
	if w3.NextSeq() != 42 {
		t.Fatalf("BaseSeq 41: NextSeq=%d, want 42", w3.NextSeq())
	}
	w3.Close()
}

// TestReplayFromEverySeq replays the sample log from every possible start
// sequence and checks exactly the right suffix comes back, with validSize
// and corruption identical to a full Replay.
func TestReplayFromEverySeq(t *testing.T) {
	path := writeSample(t, Options{Policy: SyncNever})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	_, fullValid, fullCorr := Replay(data)
	if fullCorr != nil {
		t.Fatalf("clean log reported corrupt: %v", fullCorr)
	}
	for from := uint64(0); from <= uint64(len(want))+2; from++ {
		recs, valid, corr := ReplayFrom(data, from)
		if valid != fullValid || corr != nil {
			t.Fatalf("from %d: valid=%d corr=%v, want %d, nil", from, valid, corr, fullValid)
		}
		start := int(from) - 1
		if start < 0 {
			start = 0
		}
		if start > len(want) {
			start = len(want)
		}
		wantSuffix := want[start:]
		if len(wantSuffix) == 0 {
			if len(recs) != 0 {
				t.Fatalf("from %d: got %d records, want none", from, len(recs))
			}
			continue
		}
		if !reflect.DeepEqual(recs, wantSuffix) {
			t.Fatalf("from %d: suffix mismatch:\n got %+v\nwant %+v", from, recs, wantSuffix)
		}
	}
}

// TestReplayFromTruncationAtEveryOffset mirrors TestTruncationAtEveryOffset
// for the mid-log reader: a torn tail still yields only intact records, and
// the skipped prefix is fully verified (validSize/corr match Replay's).
func TestReplayFromTruncationAtEveryOffset(t *testing.T) {
	path := writeSample(t, Options{Policy: SyncNever})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	const from = 3
	for cut := 0; cut <= len(data); cut++ {
		fullRecs, fullValid, fullCorr := Replay(data[:cut])
		recs, valid, corr := ReplayFrom(data[:cut], from)
		if valid != fullValid {
			t.Fatalf("cut %d: validSize %d differs from Replay's %d", cut, valid, fullValid)
		}
		if (corr == nil) != (fullCorr == nil) {
			t.Fatalf("cut %d: corruption %v differs from Replay's %v", cut, corr, fullCorr)
		}
		// The suffix must be exactly the intact records at positions ≥ from.
		wantN := len(fullRecs) - (from - 1)
		if wantN < 0 {
			wantN = 0
		}
		if len(recs) != wantN {
			t.Fatalf("cut %d: %d records from seq %d, want %d", cut, len(recs), from, wantN)
		}
		for i, rec := range recs {
			if !reflect.DeepEqual(rec, want[from-1+i]) {
				t.Fatalf("cut %d: record %d (seq %d) mismatch", cut, i, from+i)
			}
		}
	}
}

// TestReplayFromBitFlipAtEveryOffset flips every bit of the log and asserts
// the mid-log reader never panics and never misattributes a record: every
// returned record is byte-identical to the one written at its sequence.
func TestReplayFromBitFlipAtEveryOffset(t *testing.T) {
	path := writeSample(t, Options{Policy: SyncNever})
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	const from = 2
	data := make([]byte, len(orig))
	for off := 0; off < len(orig); off++ {
		for bit := 0; bit < 8; bit++ {
			copy(data, orig)
			data[off] ^= 1 << bit
			recs, valid, _ := ReplayFrom(data, from)
			if valid > int64(len(data)) {
				t.Fatalf("flip %d.%d: validSize beyond data", off, bit)
			}
			if len(recs) > len(want)-(from-1) {
				t.Fatalf("flip %d.%d: extra records", off, bit)
			}
			for i, rec := range recs {
				if !reflect.DeepEqual(rec, want[from-1+i]) {
					t.Fatalf("flip %d.%d: record at seq %d silently corrupted", off, bit, from+i)
				}
			}
		}
	}
}

// TestEncodeDecodeRecord round-trips every sample record through the
// exported payload codec replication ships over its own framing.
func TestEncodeDecodeRecord(t *testing.T) {
	for i, rec := range sampleRecords() {
		got, err := DecodeRecord(EncodeRecord(rec))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, got, rec)
		}
	}
	if _, err := DecodeRecord(nil); err == nil {
		t.Fatal("empty payload decoded without error")
	}
	if _, err := DecodeRecord([]byte{0xff, 0x01, 0x02}); err == nil {
		t.Fatal("garbage payload decoded without error")
	}
}
