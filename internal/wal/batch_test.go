package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func readFileBytes(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAppendBatchRoundTrip checks a batch append replays byte-identically
// to per-record appends and costs exactly one fsync under SyncAlways.
func TestAppendBatchRoundTrip(t *testing.T) {
	want := sampleRecords()

	batchPath := filepath.Join(t.TempDir(), "batch.log")
	w, err := Create(batchPath, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	afterCreate := w.Metrics().Fsyncs
	if err := w.AppendBatch(want); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if got := m.Fsyncs - afterCreate; got != 1 {
		t.Errorf("batch of %d records cost %d fsyncs, want 1", len(want), got)
	}
	if m.Records != int64(len(want)) {
		t.Errorf("Records = %d, want %d", m.Records, len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, _, corr, err := ReplayFile(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	if corr != nil {
		t.Fatalf("unexpected corruption: %v", corr)
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("batch replay mismatch:\ngot  %+v\nwant %+v", recs, want)
	}

	// The on-disk bytes must equal the per-record writer's, so every
	// existing torn-tail/bit-flip recovery property carries over.
	perPath := writeSample(t, Options{Policy: SyncAlways})
	batchBytes := readFileBytes(t, batchPath)
	perBytes := readFileBytes(t, perPath)
	if !reflect.DeepEqual(batchBytes, perBytes) {
		t.Fatal("batch append produced different bytes than per-record appends")
	}
}

func TestAppendBatchEmpty(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "e.log"), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	before := w.Metrics()
	if err := w.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if w.Metrics() != before {
		t.Error("empty batch moved the metrics")
	}
}

// TestAppendBatchMixedWithAppend interleaves both paths on one log.
func TestAppendBatchMixedWithAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mix.log")
	w, err := Create(path, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if err := w.Append(want[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(want[1:4]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(want[4]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, corr, err := ReplayFile(path)
	if err != nil || corr != nil {
		t.Fatalf("replay: %v %v", err, corr)
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatal("mixed append/batch replay mismatch")
	}
}
