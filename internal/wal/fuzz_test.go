package wal

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the log reader: it must never
// panic, never report a valid prefix longer than the input, and — when the
// input is a log image the writer produced — decode exactly the records
// that were written (checked by re-encoding every decoded record).
func FuzzWALReplay(f *testing.F) {
	// Seed with a real log image and mutations of it.
	var img bytes.Buffer
	img.WriteString(Magic)
	for _, rec := range sampleRecords() {
		payload := appendRecord(nil, rec)
		var frame [frameSize]byte
		frameLen(frame[:], payload)
		img.Write(frame[:])
		img.Write(payload)
	}
	full := img.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-3])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Add([]byte("CDWAL001\x05\x00\x00\x00\xde\xad\xbe\xef\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, corr := Replay(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("validSize %d out of range [0, %d]", valid, len(data))
		}
		if corr != nil && (corr.Offset < 0 || corr.Offset > int64(len(data))) {
			t.Fatalf("corruption offset %d out of range", corr.Offset)
		}
		// Round-trip: re-encoding the decoded records must reproduce the
		// valid prefix byte for byte — the reader accepts nothing the
		// writer would not have produced... except non-canonical uvarints,
		// so compare through a decode of the re-encoding instead.
		var re bytes.Buffer
		re.WriteString(Magic)
		for _, rec := range recs {
			payload := appendRecord(nil, rec)
			var frame [frameSize]byte
			frameLen(frame[:], payload)
			re.Write(frame[:])
			re.Write(payload)
		}
		recs2, _, corr2 := Replay(re.Bytes())
		if corr2 != nil {
			t.Fatalf("re-encoded log corrupt: %v", corr2)
		}
		if !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("re-encode round-trip mismatch: %d vs %d records", len(recs), len(recs2))
		}
	})
}
