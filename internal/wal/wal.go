// Package wal implements the write-ahead log of the durable persistence
// subsystem: an append-only file of region-edit records (add, remove,
// rename, set-geometry) with length-prefixed CRC32C framing, so that a
// reader can replay an intact prefix of a log whose tail was torn by a
// crash — a truncated or bit-flipped tail is detected and discarded, never
// a fatal error.
//
// On-disk layout:
//
//	file   := header record*
//	header := "CDWAL001" (8 bytes)
//	record := length(uint32 LE, payload bytes) crc(uint32 LE, CRC32C of payload) payload
//
// The payload starts with a one-byte opcode followed by the op's fields:
// strings are uvarint-length-prefixed UTF-8, geometries are a uvarint
// polygon count, then per polygon a uvarint vertex count and 16 bytes
// (two little-endian float64 bit patterns) per vertex — an exact, lossless
// encoding of the coordinates.
//
// Durability is configurable per Writer: SyncAlways fsyncs after every
// append (every acked edit survives power loss), SyncInterval fsyncs at
// most once per interval (bounded loss window, amortised cost), SyncNever
// leaves flushing to the OS (benchmarks, bulk loads).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"cardirect/internal/geom"
)

// Magic is the 8-byte file header identifying a cardirect WAL.
const Magic = "CDWAL001"

// frameSize is the per-record framing overhead: length + CRC.
const frameSize = 8

// MaxPayload bounds a single record's payload, protecting the reader from
// allocating garbage lengths out of a corrupt frame.
const MaxPayload = 64 << 20

// castagnoli is the CRC32C table (the polynomial used by iSCSI, ext4 and
// most storage formats — better burst-error detection than IEEE).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op identifies a region edit.
type Op uint8

const (
	// OpAdd introduces a region (id, display name, colour, geometry).
	OpAdd Op = iota + 1
	// OpRemove deletes a region by id.
	OpRemove
	// OpRename changes a region's id.
	OpRename
	// OpSetGeometry replaces a region's geometry.
	OpSetGeometry
	opEnd // first invalid opcode
)

// String names the op for logs.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpRename:
		return "rename"
	case OpSetGeometry:
		return "set-geometry"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Record is one logged region edit. Field usage by op:
//
//	OpAdd:         ID, Name, Color, Geometry
//	OpRemove:      ID
//	OpRename:      ID (old), NewID
//	OpSetGeometry: ID, Geometry
type Record struct {
	Op       Op
	ID       string
	NewID    string
	Name     string
	Color    string
	Geometry geom.Region
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acked edit survives a crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.Interval, on the first
	// append past the deadline: bounded loss window at amortised cost.
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS flushes when it pleases.
	SyncNever
)

// String names the policy for flags and status output.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseSyncPolicy reads a policy name as written by SyncPolicy.String.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Options configures a Writer.
type Options struct {
	// Policy selects the fsync discipline; the zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the SyncInterval deadline; values ≤ 0 mean one second.
	Interval time.Duration
	// BaseSeq is the sequence number already consumed before this writer's
	// first record: the next Append is record BaseSeq+1. Records in a log
	// are numbered 1..n from the header, so a writer continuing an existing
	// log passes BaseSeq = number of records already in the file (as
	// counted by ReplayFile). The zero value starts a fresh numbering at 1.
	BaseSeq uint64
}

// Metrics counts a writer's work; read them through Writer.Metrics.
type Metrics struct {
	// Records is the number of appended records.
	Records int64 `json:"records"`
	// Bytes is the number of bytes written, framing included.
	Bytes int64 `json:"bytes"`
	// Fsyncs is the number of explicit fsync calls issued.
	Fsyncs int64 `json:"fsyncs"`
}

// Add accumulates m2 into m.
func (m *Metrics) Add(m2 Metrics) {
	m.Records += m2.Records
	m.Bytes += m2.Bytes
	m.Fsyncs += m2.Fsyncs
}

// Writer appends records to a log file. It is not safe for concurrent use;
// the owning store serialises appends.
type Writer struct {
	f        *os.File
	opt      Options
	buf      []byte
	m        Metrics
	lastSync time.Time
	seq      uint64 // sequence of the last appended record (opt.BaseSeq before any)
}

// Create creates (or truncates) a fresh log at path, writing the header.
// The header and the file's existence are flushed to disk under SyncAlways;
// directory durability (the rename dance) is the caller's business.
func Create(path string, opt Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: writing header: %w", err)
	}
	w := newWriter(f, opt)
	w.m.Bytes += int64(len(Magic))
	if opt.Policy == SyncAlways {
		if err := w.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

// OpenAppend opens an existing log for appending after its valid prefix:
// the file is truncated to validSize (as reported by ReplayFile), cutting
// off any torn tail, and subsequent appends continue from there.
func OpenAppend(path string, validSize int64, opt Options) (*Writer, error) {
	if validSize < int64(len(Magic)) {
		// Nothing valid on disk (empty or headerless file): start fresh.
		return Create(path, opt)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return newWriter(f, opt), nil
}

func newWriter(f *os.File, opt Options) *Writer {
	if opt.Interval <= 0 {
		opt.Interval = time.Second
	}
	return &Writer{f: f, opt: opt, lastSync: time.Now(), seq: opt.BaseSeq}
}

// NextSeq reports the sequence number the next appended record will carry.
// Sequences are explicit so a replication reader can resume mid-log: record
// k of a log whose writer started at BaseSeq b has sequence b+k.
func (w *Writer) NextSeq() uint64 { return w.seq + 1 }

// LastSeq reports the sequence number of the most recently appended record,
// or Options.BaseSeq when nothing has been appended yet.
func (w *Writer) LastSeq() uint64 { return w.seq }

// Append encodes and writes one record, fsyncing according to the policy.
// When Append returns nil under SyncAlways, the record is on stable
// storage.
func (w *Writer) Append(rec Record) error {
	payload := appendRecord(w.buf[:0], rec)
	w.buf = payload // reuse the grown buffer next time
	if len(payload) > MaxPayload {
		return fmt.Errorf("wal: record payload %d bytes exceeds limit %d", len(payload), MaxPayload)
	}
	var frame [frameSize]byte
	frameLen(frame[:], payload)
	if _, err := w.f.Write(frame[:]); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	w.m.Records++
	w.m.Bytes += int64(frameSize + len(payload))
	w.seq++
	switch w.opt.Policy {
	case SyncAlways:
		return w.Sync()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opt.Interval {
			return w.Sync()
		}
	}
	return nil
}

// AppendBatch encodes and writes recs as one contiguous byte run — one
// buffer build, one write syscall, and (policy permitting) ONE fsync for
// the whole batch, which is what makes bulk ingest of 10^5 regions
// feasible under SyncAlways. Either the whole batch is handed to the file
// or none of it; on a short write the torn tail is cut off by CRC framing
// at the next recovery.
func (w *Writer) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	buf := w.buf[:0]
	for _, rec := range recs {
		start := len(buf)
		buf = append(buf, make([]byte, frameSize)...)
		buf = appendRecord(buf, rec)
		payload := buf[start+frameSize:]
		if len(payload) > MaxPayload {
			w.buf = buf[:0]
			return fmt.Errorf("wal: record payload %d bytes exceeds limit %d", len(payload), MaxPayload)
		}
		frameLen(buf[start:start+frameSize], payload)
	}
	w.buf = buf // reuse the grown buffer next time
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("wal: appending batch: %w", err)
	}
	w.m.Records += int64(len(recs))
	w.m.Bytes += int64(len(buf))
	w.seq += uint64(len(recs))
	switch w.opt.Policy {
	case SyncAlways:
		return w.Sync()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opt.Interval {
			return w.Sync()
		}
	}
	return nil
}

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.m.Fsyncs++
	w.lastSync = time.Now()
	return nil
}

// Metrics returns the writer's cumulative counters.
func (w *Writer) Metrics() Metrics { return w.m }

// Size returns the current file size (header plus appended records).
func (w *Writer) Size() (int64, error) {
	st, err := w.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close fsyncs (unless SyncNever) and closes the file.
func (w *Writer) Close() error {
	if w.opt.Policy != SyncNever {
		if err := w.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}

// Corruption describes why replay stopped before the end of a log. It is a
// diagnostic, not an error: a crash tears the tail of a log by design, and
// recovery proceeds with the intact prefix.
type Corruption struct {
	// Offset is the file offset of the first undecodable byte.
	Offset int64
	// Reason says what was wrong (short read, CRC mismatch, bad frame...).
	Reason string
}

func (c *Corruption) String() string {
	return fmt.Sprintf("offset %d: %s", c.Offset, c.Reason)
}

// ReplayFile reads every intact record of the log at path. A missing file
// yields no records and no corruption (a log that was never started is an
// empty log). Corruption — a torn or bit-flipped tail — terminates the
// replay at the last intact record and is reported in corr; err is reserved
// for I/O failures. validSize is the offset of the end of the intact
// prefix, suitable for OpenAppend.
func ReplayFile(path string) (recs []Record, validSize int64, corr *Corruption, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil, nil
	}
	if err != nil {
		return nil, 0, nil, err
	}
	recs, validSize, corr = Replay(data)
	return recs, validSize, corr, nil
}

// Replay decodes the intact prefix of a log image. See ReplayFile.
func Replay(data []byte) (recs []Record, validSize int64, corr *Corruption) {
	return ReplayFrom(data, 0)
}

// ReplayFrom decodes the intact prefix of a log image like Replay, but only
// returns records with sequence number ≥ fromSeq, where record k of the log
// (counting from 1 after the header) has sequence k. Every frame of the
// prefix is still CRC-verified and decoded — skipping is about what is
// returned, not what is checked — so validSize and corr are identical to
// Replay's for the same input. A writer that continued a log at
// Options.BaseSeq b numbers its records b+1..; callers resuming against
// such a log pass fromSeq-b here. fromSeq ≤ 1 returns every record.
func ReplayFrom(data []byte, fromSeq uint64) (recs []Record, validSize int64, corr *Corruption) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, 0, &Corruption{Offset: 0, Reason: "bad or truncated header"}
	}
	off := int64(len(Magic))
	rest := data[len(Magic):]
	seq := uint64(0)
	for len(rest) > 0 {
		if len(rest) < frameSize {
			return recs, off, &Corruption{Offset: off, Reason: fmt.Sprintf("torn frame: %d trailing bytes", len(rest))}
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > MaxPayload {
			return recs, off, &Corruption{Offset: off, Reason: fmt.Sprintf("frame length %d exceeds limit", n)}
		}
		if int(n) > len(rest)-frameSize {
			return recs, off, &Corruption{Offset: off, Reason: fmt.Sprintf("torn record: frame wants %d bytes, %d remain", n, len(rest)-frameSize)}
		}
		payload := rest[frameSize : frameSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off, &Corruption{Offset: off, Reason: "CRC mismatch"}
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The frame checksummed correctly but the payload does not
			// decode — a writer bug or version skew, not a torn tail; still
			// handled the same way: keep the intact prefix.
			return recs, off, &Corruption{Offset: off, Reason: err.Error()}
		}
		seq++
		if seq >= fromSeq {
			recs = append(recs, rec)
		}
		step := int64(frameSize) + int64(n)
		off += step
		rest = rest[step:]
	}
	return recs, off, nil
}

// EncodeRecord encodes rec's payload — the bytes between the frame header
// and the next frame — exactly as Append frames it. Replication ships these
// payloads over its own framing; DecodeRecord is the inverse.
func EncodeRecord(rec Record) []byte {
	return appendRecord(nil, rec)
}

// DecodeRecord decodes one payload as produced by EncodeRecord (or found
// inside a log frame). Arbitrary input returns an error, never panics.
func DecodeRecord(payload []byte) (Record, error) {
	return decodeRecord(payload)
}

// frameLen fills the 8-byte frame header (length + CRC32C) for payload.
func frameLen(frame []byte, payload []byte) {
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
}

// appendRecord encodes rec's payload onto buf.
func appendRecord(buf []byte, rec Record) []byte {
	buf = append(buf, byte(rec.Op))
	appendString := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	switch rec.Op {
	case OpAdd:
		appendString(rec.ID)
		appendString(rec.Name)
		appendString(rec.Color)
		buf = appendGeometry(buf, rec.Geometry)
	case OpRemove:
		appendString(rec.ID)
	case OpRename:
		appendString(rec.ID)
		appendString(rec.NewID)
	case OpSetGeometry:
		appendString(rec.ID)
		buf = appendGeometry(buf, rec.Geometry)
	}
	return buf
}

// appendGeometry encodes a region: polygon count, then per polygon the
// vertex count and raw float64 bits per vertex (lossless).
func appendGeometry(buf []byte, g geom.Region) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(g)))
	for _, p := range g {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		for _, v := range p {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.X))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Y))
		}
	}
	return buf
}

// decodeRecord decodes one payload. Every length is validated against the
// remaining bytes before allocation, so arbitrary input cannot blow up
// memory or panic — the contract FuzzWALReplay enforces.
func decodeRecord(payload []byte) (Record, error) {
	d := decoder{rest: payload}
	op, err := d.byte()
	if err != nil {
		return Record{}, err
	}
	rec := Record{Op: Op(op)}
	if rec.Op == 0 || rec.Op >= opEnd {
		return Record{}, fmt.Errorf("wal: unknown opcode %d", op)
	}
	switch rec.Op {
	case OpAdd:
		if rec.ID, err = d.string(); err == nil {
			if rec.Name, err = d.string(); err == nil {
				if rec.Color, err = d.string(); err == nil {
					rec.Geometry, err = d.geometry()
				}
			}
		}
	case OpRemove:
		rec.ID, err = d.string()
	case OpRename:
		if rec.ID, err = d.string(); err == nil {
			rec.NewID, err = d.string()
		}
	case OpSetGeometry:
		if rec.ID, err = d.string(); err == nil {
			rec.Geometry, err = d.geometry()
		}
	}
	if err != nil {
		return Record{}, err
	}
	if len(d.rest) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after record", len(d.rest))
	}
	return rec, nil
}

// decoder is a bounds-checked payload reader.
type decoder struct {
	rest []byte
}

var errShort = errors.New("wal: record truncated")

func (d *decoder) byte() (byte, error) {
	if len(d.rest) < 1 {
		return 0, errShort
	}
	b := d.rest[0]
	d.rest = d.rest[1:]
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.rest)
	if n <= 0 {
		return 0, errShort
	}
	d.rest = d.rest[n:]
	return v, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.rest)) {
		return "", errShort
	}
	s := string(d.rest[:n])
	d.rest = d.rest[n:]
	return s, nil
}

func (d *decoder) geometry() (geom.Region, error) {
	np, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Each polygon needs at least one count byte; cheap upper bound before
	// allocating.
	if np > uint64(len(d.rest)) {
		return nil, errShort
	}
	g := make(geom.Region, 0, np)
	for i := uint64(0); i < np; i++ {
		nv, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nv > uint64(len(d.rest))/16 {
			return nil, errShort
		}
		p := make(geom.Polygon, 0, nv)
		for j := uint64(0); j < nv; j++ {
			x := math.Float64frombits(binary.LittleEndian.Uint64(d.rest[0:8]))
			y := math.Float64frombits(binary.LittleEndian.Uint64(d.rest[8:16]))
			d.rest = d.rest[16:]
			p = append(p, geom.Pt(x, y))
		}
		g = append(g, p)
	}
	return g, nil
}
