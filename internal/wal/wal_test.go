package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cardirect/internal/geom"
)

// sampleRecords covers every op, empty strings, multi-polygon geometries
// and awkward float values.
func sampleRecords() []Record {
	return []Record{
		{Op: OpAdd, ID: "attica", Name: "Attica", Color: "#aabbcc",
			Geometry: geom.Region{geom.Poly(geom.Pt(0, 0), geom.Pt(0, 4), geom.Pt(4, 4), geom.Pt(4, 0))}},
		{Op: OpAdd, ID: "islands", Name: "", Color: "",
			Geometry: geom.Region{
				geom.Poly(geom.Pt(10, 10), geom.Pt(10, 11), geom.Pt(11, 11)),
				geom.Poly(geom.Pt(-1.5, 2.25), geom.Pt(-1.5, 3), geom.Pt(0.125, 3), geom.Pt(0.125, 2.25)),
			}},
		{Op: OpSetGeometry, ID: "attica",
			Geometry: geom.Region{geom.Poly(geom.Pt(0.1, 0.2), geom.Pt(0.1, 7.5), geom.Pt(3.25, 7.5), geom.Pt(3.25, 0.2))}},
		{Op: OpRename, ID: "islands", NewID: "cyclades"},
		{Op: OpRemove, ID: "cyclades"},
	}
}

// writeSample writes the sample records to a fresh log and returns its path.
func writeSample(t *testing.T, opt Options) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	path := writeSample(t, Options{Policy: SyncAlways})
	recs, valid, corr, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if corr != nil {
		t.Fatalf("unexpected corruption: %v", corr)
	}
	want := sampleRecords()
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", recs, want)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if valid != st.Size() {
		t.Fatalf("validSize = %d, file size = %d", valid, st.Size())
	}
}

func TestReplayMissingFile(t *testing.T) {
	recs, valid, corr, err := ReplayFile(filepath.Join(t.TempDir(), "nope.log"))
	if err != nil || corr != nil || recs != nil || valid != 0 {
		t.Fatalf("missing file: recs=%v valid=%d corr=%v err=%v", recs, valid, corr, err)
	}
}

func TestMetricsAndSyncPolicies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	m := w.Metrics()
	if m.Records != int64(len(sampleRecords())) {
		t.Errorf("Records = %d, want %d", m.Records, len(sampleRecords()))
	}
	// Header sync plus one per record.
	if m.Fsyncs != m.Records+1 {
		t.Errorf("SyncAlways fsyncs = %d, want %d", m.Fsyncs, m.Records+1)
	}
	st, _ := os.Stat(path)
	if m.Bytes != st.Size() {
		t.Errorf("Bytes = %d, file size = %d", m.Bytes, st.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// SyncNever issues no explicit fsyncs until Close (which skips them too).
	w2, err := Create(filepath.Join(t.TempDir(), "n.log"), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := w2.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := w2.Metrics().Fsyncs; got != 0 {
		t.Errorf("SyncNever fsyncs = %d, want 0", got)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// SyncInterval with a huge interval syncs only at Create+Close.
	w3, err := Create(filepath.Join(t.TempDir(), "i.log"), Options{Policy: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := w3.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := w3.Metrics().Fsyncs; got != 0 {
		t.Errorf("SyncInterval(1h) fsyncs before close = %d, want 0", got)
	}
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenAppendContinues(t *testing.T) {
	path := writeSample(t, Options{Policy: SyncNever})
	_, valid, _, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenAppend(path, valid, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	extra := Record{Op: OpRemove, ID: "attica"}
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, corr, err := ReplayFile(path)
	if err != nil || corr != nil {
		t.Fatalf("replay after append: corr=%v err=%v", corr, err)
	}
	want := append(sampleRecords(), extra)
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("append mismatch: got %d records, want %d", len(recs), len(want))
	}
}

// TestOpenAppendTruncatesTornTail checks that appending after a torn tail
// first cuts the garbage, so the log never carries corruption forward.
func TestOpenAppendTruncatesTornTail(t *testing.T) {
	path := writeSample(t, Options{Policy: SyncNever})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	torn := data[:len(data)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, valid, corr, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if corr == nil {
		t.Fatal("torn tail not reported")
	}
	w, err := OpenAppend(path, valid, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	extra := Record{Op: OpRename, ID: "attica", NewID: "attika"}
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs2, _, corr2, err := ReplayFile(path)
	if err != nil || corr2 != nil {
		t.Fatalf("replay after truncate+append: corr=%v err=%v", corr2, err)
	}
	want := append(append([]Record{}, recs...), extra)
	if !reflect.DeepEqual(recs2, want) {
		t.Fatalf("after truncate+append: got %d records, want %d", len(recs2), len(want))
	}
}

// TestTruncationAtEveryOffset cuts a live log at every possible length and
// asserts replay always yields an intact prefix of the written records —
// never an error, never a panic, never a record that was not written.
func TestTruncationAtEveryOffset(t *testing.T) {
	path := writeSample(t, Options{Policy: SyncNever})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for cut := 0; cut <= len(data); cut++ {
		recs, valid, corr := Replay(data[:cut])
		if valid > int64(cut) {
			t.Fatalf("cut %d: validSize %d beyond data", cut, valid)
		}
		if len(recs) > len(want) {
			t.Fatalf("cut %d: %d records out of %d written", cut, len(recs), len(want))
		}
		for i, rec := range recs {
			if !reflect.DeepEqual(rec, want[i]) {
				t.Fatalf("cut %d: record %d mismatch", cut, i)
			}
		}
		// A clean replay must have consumed the whole input — the cut
		// landed on a record boundary (or produced an empty log).
		if corr == nil && valid != int64(cut) && cut != 0 {
			t.Fatalf("cut %d: clean replay but validSize %d", cut, valid)
		}
		if corr != nil && valid == int64(cut) {
			t.Fatalf("cut %d: corruption reported yet whole input valid", cut)
		}
	}
}

// TestBitFlipAtEveryOffset flips every bit of a live log, one at a time,
// and asserts replay never panics, never errors, and every surviving record
// is byte-identical to one that was written at its position — corrupted
// tails are discarded, not misread.
func TestBitFlipAtEveryOffset(t *testing.T) {
	path := writeSample(t, Options{Policy: SyncNever})
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	data := make([]byte, len(orig))
	for off := 0; off < len(orig); off++ {
		for bit := 0; bit < 8; bit++ {
			copy(data, orig)
			data[off] ^= 1 << bit
			recs, valid, _ := Replay(data)
			if valid > int64(len(data)) {
				t.Fatalf("flip %d.%d: validSize beyond data", off, bit)
			}
			if len(recs) > len(want) {
				t.Fatalf("flip %d.%d: extra records", off, bit)
			}
			for i, rec := range recs {
				if !reflect.DeepEqual(rec, want[i]) {
					// A flip inside record i's payload must be caught by the
					// CRC; reaching here means it was not.
					t.Fatalf("flip %d.%d: record %d silently corrupted", off, bit, i)
				}
			}
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "big.log"), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	big := make(geom.Polygon, MaxPayload/16+2)
	if err := w.Append(Record{Op: OpSetGeometry, ID: "x", Geometry: geom.Region{big}}); err == nil {
		t.Fatal("oversize record accepted")
	}
}
