// Package baseline implements the coarser direction models the paper
// positions itself against in §1–§2: models that approximate one or both
// regions by points or minimum bounding boxes instead of using the primary
// region's exact shape.
//
//   - CentroidCone — the cone-based point model in the style of Frank [3,4]:
//     the direction between the two centroids, quantised into eight 45°
//     cones plus a neutral "same position" case.
//   - MBBModel — the rectangle model in the style of Papadias et al. [13]:
//     both regions replaced by their bounding boxes; the resulting relation
//     is the set of tiles of mbb(b)'s grid that mbb(a) overlaps.
//   - PeuquetModel — in the style of Peuquet & Ci-Xiang [15]: MBB
//     containment/intersection cases resolved first, otherwise the centroid
//     cone direction.
//
// These models are cheap (O(k) for the bounding box scan, O(1) after that)
// but lose information; the expressiveness experiment (E14) measures how
// often they disagree with the exact tile relation of the paper's model.
package baseline

import (
	"fmt"
	"math"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// Direction is the result of a point-based direction model: one of the
// eight cardinal cones, or Same when the two points (or boxes) coincide too
// closely to call.
type Direction uint8

// The eight cone directions plus the neutral case.
const (
	DirSame Direction = iota
	DirN
	DirNE
	DirE
	DirSE
	DirS
	DirSW
	DirW
	DirNW
)

var dirNames = [...]string{"same", "N", "NE", "E", "SE", "S", "SW", "W", "NW"}

// String returns the direction's conventional name.
func (d Direction) String() string {
	if int(d) < len(dirNames) {
		return dirNames[d]
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// Tile maps a cone direction to the corresponding grid tile (Same maps to
// the B tile). It is the bridge used when comparing point models with the
// exact tile model.
func (d Direction) Tile() core.Tile {
	switch d {
	case DirN:
		return core.TileN
	case DirNE:
		return core.TileNE
	case DirE:
		return core.TileE
	case DirSE:
		return core.TileSE
	case DirS:
		return core.TileS
	case DirSW:
		return core.TileSW
	case DirW:
		return core.TileW
	case DirNW:
		return core.TileNW
	default:
		return core.TileB
	}
}

// CentroidCone returns the cone direction of the primary region a seen from
// the reference region b, comparing area centroids: the angle from b's
// centroid to a's centroid is quantised into eight 45° cones centred on the
// axes (N covers [67.5°, 112.5°) and so on). Centroids closer than eps are
// reported as Same.
func CentroidCone(a, b geom.Region, eps float64) Direction {
	ca := regionCentroid(a)
	cb := regionCentroid(b)
	dx := ca.X - cb.X
	dy := ca.Y - cb.Y
	if math.Hypot(dx, dy) <= eps {
		return DirSame
	}
	ang := math.Atan2(dy, dx) // (−π, π], 0 = east
	// Quantise into 8 sectors of 45°, centred on E.
	sector := int(math.Floor((ang + math.Pi/8) / (math.Pi / 4)))
	switch ((sector % 8) + 8) % 8 {
	case 0:
		return DirE
	case 1:
		return DirNE
	case 2:
		return DirN
	case 3:
		return DirNW
	case 4:
		return DirW
	case 5:
		return DirSW
	case 6:
		return DirS
	default:
		return DirSE
	}
}

// regionCentroid returns the area-weighted centroid of a region.
func regionCentroid(r geom.Region) geom.Point {
	var cx, cy, total float64
	for _, p := range r {
		a := p.Area()
		c := p.Centroid()
		cx += c.X * a
		cy += c.Y * a
		total += a
	}
	if total == 0 {
		// Degenerate: fall back to the box centre.
		return r.BoundingBox().Center()
	}
	return geom.Pt(cx/total, cy/total)
}

// MBB computes the tile relation between the bounding-box approximations:
// the tiles of mbb(b)'s grid that mbb(a) overlaps with positive area. It is
// the relation the exact model would compute for the primary region
// "filled up" to its bounding box, and is an upper approximation: the exact
// relation's tiles are always a subset of the MBB relation's tiles.
func MBB(a, b geom.Region) (core.Relation, error) {
	g, err := core.NewGrid(b.BoundingBox())
	if err != nil {
		return 0, err
	}
	ba := a.BoundingBox()
	if ba.IsEmpty() {
		return 0, fmt.Errorf("baseline: primary region has empty bounding box")
	}
	var rel core.Relation
	colLo := [3]float64{math.Inf(-1), g.M1, g.M2}
	colHi := [3]float64{g.M1, g.M2, math.Inf(1)}
	rowLo := [3]float64{math.Inf(-1), g.L1, g.L2}
	rowHi := [3]float64{g.L1, g.L2, math.Inf(1)}
	for c := 0; c < 3; c++ {
		if math.Min(colHi[c], ba.MaxX) <= math.Max(colLo[c], ba.MinX) {
			continue
		}
		for r := 0; r < 3; r++ {
			if math.Min(rowHi[r], ba.MaxY) <= math.Max(rowLo[r], ba.MinY) {
				continue
			}
			rel = rel.With(core.TileAt(c, r))
		}
	}
	if !rel.IsValid() {
		return 0, fmt.Errorf("baseline: degenerate primary bounding box %v", ba)
	}
	return rel, nil
}

// PeuquetDirection resolves the direction of a with respect to b in the
// style of Peuquet & Ci-Xiang: bounding-box containment and overlap are
// reported as Same (no meaningful azimuth), otherwise the centroid cone
// decides.
func PeuquetDirection(a, b geom.Region) Direction {
	ba, bb := a.BoundingBox(), b.BoundingBox()
	if ba.ContainsRect(bb) || bb.ContainsRect(ba) {
		return DirSame
	}
	if ba.Intersects(bb) {
		// Overlapping boxes: direction judged by centroids, as the original
		// algorithm falls back to the dominant axis azimuth.
		return CentroidCone(a, b, 0)
	}
	return CentroidCone(a, b, 0)
}

// Agreement classifies how a coarse model's answer relates to the exact tile
// relation computed by the paper's model.
type Agreement uint8

// Agreement levels, from exact match to contradiction.
const (
	AgreeExact      Agreement = iota // same tile set
	AgreeSubsumed                    // coarse relation's tiles ⊇ exact tiles (information loss only)
	AgreeContradict                  // coarse relation asserts tiles the exact relation excludes, or misses tiles it has
)

// String names the agreement level.
func (a Agreement) String() string {
	switch a {
	case AgreeExact:
		return "exact"
	case AgreeSubsumed:
		return "subsumed"
	default:
		return "contradict"
	}
}

// CompareMBB measures an MBB-model answer against the exact relation.
func CompareMBB(mbbRel, exact core.Relation) Agreement {
	if mbbRel == exact {
		return AgreeExact
	}
	if exact.Intersect(mbbRel) == exact {
		return AgreeSubsumed
	}
	return AgreeContradict
}

// CompareCone measures a cone-model answer against the exact relation: it is
// exact when the exact relation is the single matching tile, subsumed when
// the matching tile is one of the exact relation's tiles, and contradictory
// otherwise.
func CompareCone(d Direction, exact core.Relation) Agreement {
	t := d.Tile()
	if exact == core.Rel(t) {
		return AgreeExact
	}
	if exact.Has(t) {
		return AgreeSubsumed
	}
	return AgreeContradict
}
