package baseline

import (
	"math"
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

func boxRegion(minX, minY, maxX, maxY float64) geom.Region {
	return geom.Rgn(geom.Poly(
		geom.Pt(minX, maxY), geom.Pt(maxX, maxY), geom.Pt(maxX, minY), geom.Pt(minX, minY),
	))
}

func TestCentroidConeEightWays(t *testing.T) {
	b := boxRegion(-1, -1, 1, 1)
	cases := []struct {
		dx, dy float64
		want   Direction
	}{
		{10, 0, DirE}, {10, 10, DirNE}, {0, 10, DirN}, {-10, 10, DirNW},
		{-10, 0, DirW}, {-10, -10, DirSW}, {0, -10, DirS}, {10, -10, DirSE},
	}
	for _, c := range cases {
		a := boxRegion(c.dx-1, c.dy-1, c.dx+1, c.dy+1)
		if got := CentroidCone(a, b, 0); got != c.want {
			t.Errorf("offset (%g,%g): got %v, want %v", c.dx, c.dy, got, c.want)
		}
	}
	if got := CentroidCone(b, b, 1e-9); got != DirSame {
		t.Errorf("self: got %v, want same", got)
	}
}

func TestCentroidConeSectorBoundaries(t *testing.T) {
	b := boxRegion(-1, -1, 1, 1)
	// 22.5° is the E/NE boundary; the NE sector is [22.5°, 67.5°).
	th := 22.5 * math.Pi / 180
	a := boxRegion(10*math.Cos(th)-0.0, 10*math.Sin(th)-0.0, 10*math.Cos(th)+2, 10*math.Sin(th)+2)
	// Slightly above the boundary lands in NE.
	got := CentroidCone(a.Translate(geom.Pt(0, 0.5)), b, 0)
	if got != DirNE {
		t.Errorf("above 22.5°: got %v, want NE", got)
	}
	// Slightly below lands in E.
	got = CentroidCone(a.Translate(geom.Pt(0, -2.5)), b, 0)
	if got != DirE {
		t.Errorf("below 22.5°: got %v, want E", got)
	}
}

func TestDirectionTileMapping(t *testing.T) {
	want := map[Direction]core.Tile{
		DirSame: core.TileB, DirN: core.TileN, DirNE: core.TileNE, DirE: core.TileE,
		DirSE: core.TileSE, DirS: core.TileS, DirSW: core.TileSW, DirW: core.TileW, DirNW: core.TileNW,
	}
	for d, tile := range want {
		if got := d.Tile(); got != tile {
			t.Errorf("%v.Tile() = %v, want %v", d, got, tile)
		}
	}
	if DirNE.String() != "NE" || DirSame.String() != "same" {
		t.Error("direction names wrong")
	}
}

func TestMBBModel(t *testing.T) {
	b := boxRegion(0, 0, 10, 6)
	// Bounding boxes coincide with the regions for boxes, so MBB matches
	// the exact model on box inputs.
	for _, tc := range []struct {
		a    geom.Region
		want string
	}{
		{boxRegion(2, 2, 8, 4), "B"},
		{boxRegion(-4, 7, -1, 9), "NW"},
		{boxRegion(-5, 1, 15, 5), "B:W:E"},
		{boxRegion(-10, -10, 20, 16), "B:S:SW:W:NW:N:NE:E:SE"},
	} {
		want, err := core.ParseRelation(tc.want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MBB(tc.a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("MBB(%v) = %v, want %v", tc.a.BoundingBox(), got, want)
		}
	}
}

func TestMBBUpperApproximation(t *testing.T) {
	// An L-shaped region whose bounding box covers B but whose material
	// does not: the MBB model over-approximates.
	b := boxRegion(4, 4, 6, 6)
	l := geom.Rgn(geom.Poly(
		geom.Pt(0, 10), geom.Pt(1, 10), geom.Pt(1, 1), geom.Pt(10, 1),
		geom.Pt(10, 0), geom.Pt(0, 0),
	))
	exact, err := core.ComputeCDR(l, b)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := MBB(l, b)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Intersect(approx) != exact {
		t.Errorf("exact %v not subset of MBB %v", exact, approx)
	}
	if approx == exact {
		t.Error("expected a strict over-approximation for the L-shape")
	}
	if CompareMBB(approx, exact) != AgreeSubsumed {
		t.Errorf("agreement = %v, want subsumed", CompareMBB(approx, exact))
	}
}

func TestPeuquetDirection(t *testing.T) {
	b := boxRegion(0, 0, 10, 6)
	if got := PeuquetDirection(boxRegion(20, 3, 22, 5), b); got != DirE {
		t.Errorf("east blob: %v", got)
	}
	if got := PeuquetDirection(boxRegion(-10, -10, 20, 16), b); got != DirSame {
		t.Errorf("containing box: %v, want same", got)
	}
	if got := PeuquetDirection(boxRegion(4, 2, 6, 4), b); got != DirSame {
		t.Errorf("contained box: %v, want same", got)
	}
}

func TestAgreementClassification(t *testing.T) {
	exact, _ := core.ParseRelation("NE:E")
	if got := CompareMBB(exact, exact); got != AgreeExact {
		t.Errorf("identical: %v", got)
	}
	bigger, _ := core.ParseRelation("B:NE:E")
	if got := CompareMBB(bigger, exact); got != AgreeSubsumed {
		t.Errorf("superset: %v", got)
	}
	other, _ := core.ParseRelation("W")
	if got := CompareMBB(other, exact); got != AgreeContradict {
		t.Errorf("disjoint: %v", got)
	}
	if got := CompareCone(DirNE, exact); got != AgreeSubsumed {
		t.Errorf("cone NE vs NE:E: %v", got)
	}
	if got := CompareCone(DirNE, core.NE); got != AgreeExact {
		t.Errorf("cone NE vs NE: %v", got)
	}
	if got := CompareCone(DirW, exact); got != AgreeContradict {
		t.Errorf("cone W vs NE:E: %v", got)
	}
	if AgreeExact.String() != "exact" || AgreeSubsumed.String() != "subsumed" || AgreeContradict.String() != "contradict" {
		t.Error("agreement names wrong")
	}
}

func TestMBBErrors(t *testing.T) {
	b := boxRegion(0, 0, 10, 6)
	if _, err := MBB(geom.Region{}, b); err == nil {
		t.Error("empty primary should error")
	}
	line := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)))
	if _, err := MBB(b, line); err == nil {
		t.Error("degenerate reference should error")
	}
}
