package experiments

import (
	"strings"
	"testing"
)

var quickOpts = Options{Quick: true, Seed: 1}

func TestE1E2E3Report(t *testing.T) {
	r, err := E1E2E3EdgeCounts()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Fig3b", "Fig3c", "Example3", "16", "35", "B:W:NW:N:NE:E"} {
		if !strings.Contains(r.Body, frag) {
			t.Errorf("E1-E3 body missing %q", frag)
		}
	}
}

func TestE8Report(t *testing.T) {
	r, err := E8ScanCounts(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "9216") || !strings.Contains(r.Body, "1024") {
		t.Errorf("E8 body missing scan counts:\n%s", r.Body)
	}
}

func TestE9Report(t *testing.T) {
	r, err := E9Greece()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "B:S:SW:W") {
		t.Errorf("E9 body missing the Fig. 12 relation:\n%s", r.Body)
	}
	if !strings.Contains(r.Body, "%") {
		t.Error("E9 body missing the percentage matrix")
	}
}

func TestE10Report(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	r, err := E10Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "511 relations") || !strings.Contains(r.Body, "NW:NE") {
		t.Errorf("E10 body:\n%s", r.Body)
	}
}

func TestE12Report(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	r, err := E12Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(r.Body, "WRONG") {
		t.Errorf("E12 reports a wrong consistency outcome:\n%s", r.Body)
	}
	if strings.Count(r.Body, "ok") < 4 {
		t.Errorf("E12 should confirm all four networks:\n%s", r.Body)
	}
}

func TestE14Report(t *testing.T) {
	r, err := E14Expressiveness(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "MBB approximation") || !strings.Contains(r.Body, "centroid cone") {
		t.Errorf("E14 body:\n%s", r.Body)
	}
	// The MBB model must never contradict on this workload.
	for _, line := range strings.Split(r.Body, "\n") {
		if strings.HasPrefix(line, "MBB") && !strings.Contains(line, "0.0%") {
			t.Errorf("MBB row should end with 0.0%% contradictions: %q", line)
		}
	}
}

func TestE15Report(t *testing.T) {
	r, err := E15OpCounts(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "intersections") && !strings.Contains(r.Body, "ratio") {
		t.Errorf("E15 body:\n%s", r.Body)
	}
}

func TestE17Report(t *testing.T) {
	r, err := E17CombinedRelations()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"peloponnesos", "EC", "DC", "RCC-8", "touch"} {
		if !strings.Contains(r.Body, frag) {
			t.Errorf("E17 body missing %q:\n%s", frag, r.Body)
		}
	}
}

func TestE18Report(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	r, err := E18BatchScaling(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"pairs", "prune hits", "speedup", "workers"} {
		if !strings.Contains(r.Body, frag) {
			t.Errorf("E18 body missing %q:\n%s", frag, r.Body)
		}
	}
}

func TestE19Report(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	r, err := E19PctBatchAndQueryPruning(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"fast-path hits", "speedup", "candidates"} {
		if !strings.Contains(r.Body, frag) {
			t.Errorf("E19 body missing %q:\n%s", frag, r.Body)
		}
	}
	if len(r.Metrics) == 0 {
		t.Error("E19 report has no metrics")
	}
}

func TestE20Report(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	r, err := E20StoreDelta(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"store delta", "speedup", "single-region edit"} {
		if !strings.Contains(r.Body, frag) {
			t.Errorf("E20 body missing %q:\n%s", frag, r.Body)
		}
	}
	for _, key := range []string{"full_qual_ms", "delta_qual_us", "qual_speedup_1cpu", "delta_pairs"} {
		if _, ok := r.Metrics[key]; !ok {
			t.Errorf("E20 metrics missing %q: %v", key, r.Metrics)
		}
	}
}

// TestE21Report runs the raw-speed suite in quick mode and enforces the
// kernel-overhaul acceptance bars on its ablation metrics: the
// struct-of-arrays percent kernel must beat the per-edge reference kernel
// by ≥1.5x, and binary-snapshot recovery must beat the XML path by ≥2x.
func TestE21Report(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	r, err := E21RawSpeed(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"SoA kernel speedup", "binary recovery speedup", "p50 / p99"} {
		if !strings.Contains(r.Body, frag) {
			t.Errorf("E21 body missing %q:\n%s", frag, r.Body)
		}
	}
	for _, key := range []string{"batch_qual_ms", "batch_pct_ms", "pct_kernel_soa_ms",
		"pct_kernel_ref_ms", "pct_kernel_speedup", "delta_edit_us",
		"recovery_bin_ms", "recovery_xml_ms", "recovery_speedup", "http_relation_p99"} {
		if _, ok := r.Metrics[key]; !ok {
			t.Errorf("E21 metrics missing %q: %v", key, r.Metrics)
		}
	}
	if got := r.Metrics["pct_kernel_speedup"]; got < 1.5 {
		t.Errorf("SoA kernel speedup %.2fx, want >= 1.5x", got)
	}
	if got := r.Metrics["recovery_speedup"]; got < 2 {
		t.Errorf("binary recovery speedup %.2fx, want >= 2x", got)
	}
}

// TestE22PlannerWins runs the planner experiment in quick mode and enforces
// the acceptance bar: on the adversarially-ordered three-variable query over
// the 500-region worlds (store on one worker), the cost-based planner must
// beat written-order evaluation by at least 5x on both worlds — the metric is
// the smaller of the two ratios — while producing identical bindings (the
// experiment itself errors on any mismatch). The plan cache's warm p50 over
// HTTP must also sit below the cold parse+plan p50.
func TestE22PlannerWins(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	r, err := E22QueryPlanner(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"written order", "planner", "speedup", "plan cache"} {
		if !strings.Contains(r.Body, frag) {
			t.Errorf("E22 body missing %q:\n%s", frag, r.Body)
		}
	}
	for _, key := range []string{"written_ms_scatter", "planner_ms_scatter",
		"written_ms_cluster", "planner_ms_cluster", "planner_speedup",
		"query_cold_p50_us", "query_warm_p50_us"} {
		if _, ok := r.Metrics[key]; !ok {
			t.Errorf("E22 metrics missing %q: %v", key, r.Metrics)
		}
	}
	if got := r.Metrics["planner_speedup"]; got < 5 {
		t.Errorf("planner speedup %.2fx, want >= 5x", got)
	}
	for _, w := range []string{"scatter", "cluster"} {
		if r.Metrics["bindings_"+w] == 0 {
			t.Errorf("E22 %s: adversarial query produced no bindings — differential is vacuous", w)
		}
	}
	if cold, warm := r.Metrics["query_cold_p50_us"], r.Metrics["query_warm_p50_us"]; warm >= cold {
		t.Errorf("warm plan-cache p50 %.0fµs not below cold p50 %.0fµs", warm, cold)
	}
}

// TestE23LoDWins runs the huge-world experiment in quick mode (2·10^4
// regions) and enforces the tier's acceptance bars at a noise-robust quick
// floor: the LoD stack must beat the exact-only sweep by ≥6x (the full
// 10^5-region run asserts the ≥10x bar inside the experiment itself), the
// coarse prefilter and strip stage must each actually decide pairs, and
// bulk ingest must land in one batched recompute with zero delta pairs
// (the experiment errors otherwise). Bit-identity of every LoD answer is
// asserted by the experiment before any timing.
func TestE23LoDWins(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	r, err := E23HugeWorld(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"LoD tier stack", "coarse single-tile", "strip-localised exact", "AddBulk (one batch)"} {
		if !strings.Contains(r.Body, frag) {
			t.Errorf("E23 body missing %q:\n%s", frag, r.Body)
		}
	}
	for _, key := range []string{"build_lod_ms", "exact_sweep_ms", "lod_sweep_ms",
		"lod_speedup", "pairs_coarse", "pairs_strip", "bulk_ingest_ms",
		"add_loop_ms", "bulk_ingest_speedup"} {
		if _, ok := r.Metrics[key]; !ok {
			t.Errorf("E23 metrics missing %q: %v", key, r.Metrics)
		}
	}
	if got := r.Metrics["lod_speedup"]; got < 6 {
		t.Errorf("LoD tier speedup %.2fx, want >= 6x (quick floor; full mode asserts 10x)", got)
	}
	if r.Metrics["pairs_coarse"] == 0 {
		t.Error("coarse prefilter decided no pairs — the O(1) tier is vacuous")
	}
	if r.Metrics["pairs_strip"] == 0 {
		t.Error("strip stage decided no pairs — the localised exact tier is vacuous")
	}
}

// TestE24Reasoning runs the reasoning-pipeline experiment in quick mode and
// enforces the acceptance bars at a noise-robust quick floor: the parallel
// branch fan must beat the sequential backtracking solver by >= 1.5x on the
// hidden-witness adversarial network (the full run asserts the >= 2x bar
// inside the experiment itself), and the fragment fast path must actually
// decide — witness verification, the fast-path/solver-branch counters, and
// the joint RCC-8 rejection are all asserted by the experiment before any
// timing.
func TestE24Reasoning(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	r, err := E24Reasoning(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"parallel branch fan", "sequential backtracking", "fast path (Check)", "joint directional+RCC-8"} {
		if !strings.Contains(r.Body, frag) {
			t.Errorf("E24 body missing %q:\n%s", frag, r.Body)
		}
	}
	for _, key := range []string{"seq_solve_ms", "par_solve_ms", "parallel_speedup",
		"fastpath_ms", "solver_infragment_ms", "fastpath_speedup"} {
		if _, ok := r.Metrics[key]; !ok {
			t.Errorf("E24 metrics missing %q: %v", key, r.Metrics)
		}
	}
	if got := r.Metrics["parallel_speedup"]; got < 1.5 {
		t.Errorf("parallel solver speedup %.2fx, want >= 1.5x (quick floor; full mode asserts 2x)", got)
	}
}

// TestE25Replication runs the replication experiment in quick mode: byte
// agreement with the primary, the staleness reject path and the router
// fan-out are asserted inside the experiment; here the metric surface and a
// noise-robust quick floor on the catch-up speedup are checked (full mode
// asserts >= 1.2x inside the experiment).
func TestE25Replication(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	r, err := E25Replication(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"WAL tail + delta apply", "snapshot re-bootstrap", "router fan-out", "bounded staleness"} {
		if !strings.Contains(r.Body, frag) {
			t.Errorf("E25 body missing %q:\n%s", frag, r.Body)
		}
	}
	for _, key := range []string{"catchup_ms", "rebuild_ms", "catchup_speedup",
		"router_reads", "router_fanout_min_share", "router_reads_per_sec"} {
		if _, ok := r.Metrics[key]; !ok {
			t.Errorf("E25 metrics missing %q: %v", key, r.Metrics)
		}
	}
	if got := r.Metrics["catchup_speedup"]; got < 1 {
		t.Errorf("WAL catch-up at %.2fx vs rebuild, want >= 1x (quick floor; full mode asserts 1.2x)", got)
	}
	if got := r.Metrics["router_fanout_min_share"]; got <= 0 {
		t.Errorf("router fan-out min share %.2f, want > 0", got)
	}
}

func TestEntriesAndIDs(t *testing.T) {
	entries := Entries(quickOpts)
	if len(entries) != 21 {
		t.Fatalf("entries = %d, want 21 (E1-E3 … E25)", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.ID == "" || e.Run == nil {
			t.Errorf("malformed entry %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	ids := IDs()
	if len(ids) != len(entries) {
		t.Errorf("IDs = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs not sorted: %v", ids)
		}
	}
}
