package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/reason"
	"cardirect/internal/topo"
)

// e24Adversarial builds the hidden-witness network the parallel solver
// exists for. Edge (a, b) — the branch edge, first in the solver's sorted
// edge order — carries the disjunction {S, W, N, E, SE}, while (b, a) pins
// NW. Only SE on (a, b) is converse-compatible with NW (checked by
// TestMutuallyInverse-style reasoning: the other four contradict NW on one
// axis), and SE is iterated LAST by the relation-set enumeration, so the
// sequential solver exhausts four barren top-level branches — each inflated
// by the decoy edges (a, c_i) ∈ {N, S}, whose contradiction with (b, a)
// only surfaces at the final edge assignment — before reaching the witness.
// The parallel solver fans every (relation, Allen-pair) seed of (a, b) at
// once; the SE seeds decide almost immediately and cancel the barren
// branches.
func e24Adversarial(decoys int) *reason.Network {
	n := reason.NewNetwork()
	n.AddVariable("a")
	n.AddVariable("b")
	branch := core.NewRelationSet(core.S, core.W, core.N, core.E, core.SE)
	if err := n.Constrain("a", "b", branch); err != nil {
		panic(err)
	}
	if err := n.ConstrainRel("b", "a", core.NW); err != nil {
		panic(err)
	}
	for i := 0; i < decoys; i++ {
		if err := n.Constrain("a", fmt.Sprintf("c%02d", i), core.NewRelationSet(core.N, core.S)); err != nil {
			panic(err)
		}
	}
	return n
}

// e24Verify re-checks every constraint of the adversarial network on a
// witness with Compute-CDR — correctness before any timing.
func e24Verify(n *reason.Network, w *reason.Witness, decoys int) error {
	if w == nil {
		return fmt.Errorf("E24: adversarial network reported unsatisfiable (it has a witness by construction)")
	}
	check := func(x, y string, allowed core.RelationSet) error {
		got, err := core.ComputeCDR(w.Regions[x], w.Regions[y])
		if err != nil {
			return fmt.Errorf("E24: witness region unusable: %w", err)
		}
		if !allowed.Contains(got) {
			return fmt.Errorf("E24: witness violates %s→%s: computed %v, allowed %v", x, y, got, allowed)
		}
		return nil
	}
	if err := check("a", "b", core.NewRelationSet(core.S, core.W, core.N, core.E, core.SE)); err != nil {
		return err
	}
	if err := check("b", "a", core.NewRelationSet(core.NW)); err != nil {
		return err
	}
	for i := 0; i < decoys; i++ {
		if err := check("a", fmt.Sprintf("c%02d", i), core.NewRelationSet(core.N, core.S)); err != nil {
			return err
		}
	}
	return nil
}

// E24Reasoning measures the consistency pipeline behind /v1/reason/check:
//
//   - Adversarial hidden-witness networks (see e24Adversarial): the
//     sequential backtracking solver versus the parallel fan over the
//     top-level branch choices, first witness wins. Both sides' witnesses
//     are verified with Compute-CDR BEFORE timing; best-of-three
//     interleaved runs. The full-mode acceptance floor asserts the
//     parallel solver at >= 2x even on one core — search-order
//     diversification, not hardware parallelism, is the win.
//   - The tractable-fragment fast path: a satisfiable all-singleton
//     rectangular-block network (box-world relations are always full
//     blocks) decided constructively by the fragment stage versus the same
//     network forced through the backtracking solver. The stats counters
//     are asserted: fast path eligible, decided, solver never entered.
//   - The combined directional+RCC-8 check: a N b plus a TPP b is jointly
//     unsatisfiable although the directional network alone is consistent —
//     Refine accepts it, RefineJoint rejects it. Asserted, reported as a
//     correctness row.
//
// Metric suffixes follow the trend-gate convention: *_ms may not grow and
// *_speedup may not shrink beyond the threshold.
func E24Reasoning(o Options) (Report, error) {
	decoys := 3
	boxVars := 24
	if o.Quick {
		decoys = 2
		boxVars = 12
	}
	metrics := map[string]float64{"decoys": float64(decoys), "box_vars": float64(boxVars)}
	ctx := context.Background()
	// Enough workers that every top-level seed of the branch edge gets its
	// own goroutine — the point is search-order diversification.
	sopts := reason.SolveOptions{Workers: 64}

	// Correctness first: both solvers find a verified witness.
	adv := e24Adversarial(decoys)
	wSeq, err := adv.SolveCtx(ctx, sopts)
	if err != nil {
		return Report{}, fmt.Errorf("E24: sequential solve: %w", err)
	}
	if err := e24Verify(adv, wSeq, decoys); err != nil {
		return Report{}, fmt.Errorf("sequential %w", err)
	}
	wPar, err := adv.SolveParallel(ctx, sopts)
	if err != nil {
		return Report{}, fmt.Errorf("E24: parallel solve: %w", err)
	}
	if err := e24Verify(adv, wPar, decoys); err != nil {
		return Report{}, fmt.Errorf("parallel %w", err)
	}

	// Best-of-three interleaved timed runs on fresh clones (the solvers do
	// not mutate the network, but clones keep the comparison honest).
	nsSeq, nsPar := 0.0, 0.0
	for i := 0; i < 3; i++ {
		n := adv.Clone()
		t := time.Now()
		if _, err := n.SolveCtx(ctx, sopts); err != nil {
			return Report{}, err
		}
		if d := float64(time.Since(t).Nanoseconds()); nsSeq == 0 || d < nsSeq {
			nsSeq = d
		}
		n = adv.Clone()
		t = time.Now()
		if _, err := n.SolveParallel(ctx, sopts); err != nil {
			return Report{}, err
		}
		if d := float64(time.Since(t).Nanoseconds()); nsPar == 0 || d < nsPar {
			nsPar = d
		}
	}
	speedup := nsSeq / nsPar
	metrics["seq_solve_ms"] = nsSeq / 1e6
	metrics["par_solve_ms"] = nsPar / 1e6
	metrics["parallel_speedup"] = speedup
	if !o.Quick && speedup < 2 {
		return Report{}, fmt.Errorf(
			"E24: parallel solver speedup %.2fx on the %d-decoy adversarial network, want >= 2x", speedup, decoys)
	}

	// Tractable fragment: axis-aligned boxes only — a box occupies a full
	// contiguous strip product of any other box's grid, so every pairwise
	// relation is a singleton rectangular block and the induced network is
	// in-fragment and satisfiable by construction.
	rng := rand.New(rand.NewSource(o.Seed))
	boxes := make([]geom.Region, boxVars)
	names := make([]string, boxVars)
	for i := range boxes {
		x, y := rng.Float64()*100, rng.Float64()*100
		w, h := 1+rng.Float64()*20, 1+rng.Float64()*20
		boxes[i] = geom.Rgn(geom.Poly(geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}.Vertices()...))
		names[i] = fmt.Sprintf("v%03d", i)
	}
	// A banded constraint graph (each variable against its next three
	// neighbours) keeps the forced-solver comparison finite: the full
	// clique is in-fragment too, but the backtracking solver's search on
	// it is intractable — which is the point of the fast path, not a
	// useful thing to sit through in a gated benchmark.
	frag := reason.NewNetwork()
	fragEdges := 0
	for i := 0; i < boxVars; i++ {
		for j := i + 1; j < boxVars && j <= i+3; j++ {
			rel, err := core.ComputeCDR(boxes[i], boxes[j])
			if err != nil {
				return Report{}, err
			}
			if err := frag.ConstrainRel(names[i], names[j], rel); err != nil {
				return Report{}, err
			}
			fragEdges++
		}
	}
	fast, err := frag.Check(ctx, reason.CheckOptions{})
	if err != nil {
		return Report{}, err
	}
	if !fast.Stats.FastPathEligible || !fast.Stats.FastPathDecided || fast.Stats.SolverBranches != 0 {
		return Report{}, fmt.Errorf(
			"E24: in-fragment network did not decide on the fast path: %+v", fast.Stats)
	}
	if !fast.Satisfiable {
		return Report{}, fmt.Errorf("E24: fragment network reported unsat (it came from real boxes)")
	}
	slow, err := frag.Check(ctx, reason.CheckOptions{NoFastPath: true, NoParallel: true})
	if err != nil {
		return Report{}, err
	}
	if !slow.Satisfiable {
		return Report{}, fmt.Errorf("E24: solver disagrees with the fast path on the fragment network")
	}
	nsFast, nsSlow := 0.0, 0.0
	for i := 0; i < 3; i++ {
		t := time.Now()
		if _, err := frag.Check(ctx, reason.CheckOptions{}); err != nil {
			return Report{}, err
		}
		if d := float64(time.Since(t).Nanoseconds()); nsFast == 0 || d < nsFast {
			nsFast = d
		}
		t = time.Now()
		if _, err := frag.Check(ctx, reason.CheckOptions{NoFastPath: true, NoParallel: true}); err != nil {
			return Report{}, err
		}
		if d := float64(time.Since(t).Nanoseconds()); nsSlow == 0 || d < nsSlow {
			nsSlow = d
		}
	}
	metrics["fastpath_ms"] = nsFast / 1e6
	metrics["solver_infragment_ms"] = nsSlow / 1e6
	metrics["fastpath_speedup"] = nsSlow / nsFast

	// Joint directional+topological rejection: a proper part cannot be
	// strictly north of its container.
	joint := reason.NewNetwork()
	joint.ConstrainRel("a", "b", core.N)
	dirOnly, err := joint.Check(ctx, reason.CheckOptions{})
	if err != nil {
		return Report{}, err
	}
	combined, err := joint.Check(ctx, reason.CheckOptions{
		Topology: []reason.TopoConstraint{{X: "a", Y: "b", Rels: topo.RCC8Of(topo.TPP, topo.NTPP)}},
	})
	if err != nil {
		return Report{}, err
	}
	if !dirOnly.Satisfiable || combined.Satisfiable || !combined.Stats.JointRejected {
		return Report{}, fmt.Errorf(
			"E24: joint check wrong: dir-only sat=%v, combined sat=%v stats=%+v",
			dirOnly.Satisfiable, combined.Satisfiable, combined.Stats)
	}

	body := fmt.Sprintf("adversarial hidden-witness network (%d decoy edges; witness only under the\nlast-iterated branch relation), witnesses verified with Compute-CDR before timing:\n", decoys)
	body += Table(
		[]string{"solver", "wall-clock", "speedup"},
		[][]string{
			{"sequential backtracking", fmt.Sprintf("%.1f ms", nsSeq/1e6), "1.0x"},
			{"parallel branch fan", fmt.Sprintf("%.1f ms", nsPar/1e6), fmt.Sprintf("%.1fx", speedup)},
		},
	)
	body += fmt.Sprintf("\ntractable fragment (%d box-world variables, %d singleton block edges):\n",
		boxVars, fragEdges)
	body += Table(
		[]string{"pipeline", "wall-clock", "decided by"},
		[][]string{
			{"fast path (Check)", fmt.Sprintf("%.2f ms", nsFast/1e6), "fragment certification, solver never entered"},
			{"forced solver", fmt.Sprintf("%.2f ms", nsSlow/1e6), "backtracking search"},
		},
	)
	body += "\njoint directional+RCC-8: {a N b} is satisfiable alone, adding a TPP|NTPP b\nrejects the network in the combined closure (Refine alone cannot see it)\n"
	body += "\nthe parallel win is search-order diversification (first witness cancels the\nbarren branches), so it holds even on one core; `make bench-trend` gates\nthese numbers against the committed baseline\n"
	return Report{
		ID:      "E24",
		Title:   "Reasoning pipeline: parallel solver, fragment fast path, joint RCC-8",
		Body:    body,
		Metrics: metrics,
	}, nil
}
