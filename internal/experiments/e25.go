package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/replica"
	"cardirect/internal/serve"
	"cardirect/internal/workload"
)

// e25Cluster is one primary plus helpers to stand up followers against it,
// all over real HTTP (httptest) — the replication path under measurement is
// the wire path cardirectd ships.
type e25Cluster struct {
	tr     *config.Tracked
	prim   *replica.Primary
	server *httptest.Server
	logger *slog.Logger
}

func e25Primary(o Options, n int) (*e25Cluster, error) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	tr, err := config.Track(config.Greece(), core.StoreOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	prim := replica.NewPrimary(tr, tr, replica.PrimaryOptions{})
	g := workload.New(o.Seed)
	bulk := make([]config.BulkRegion, n)
	for i, r := range g.Scatter(n, 8) {
		bulk[i] = config.BulkRegion{ID: fmt.Sprintf("w%05d", i), Geometry: r}
	}
	if err := prim.BulkAddRegions(bulk); err != nil {
		tr.Close()
		return nil, err
	}
	srv := serve.New(tr, serve.Options{Logger: logger, Repl: prim, Editor: prim})
	return &e25Cluster{tr: tr, prim: prim, server: httptest.NewServer(srv.Handler()), logger: logger}, nil
}

func (c *e25Cluster) close() {
	c.server.Close()
	c.tr.Close()
}

// follower opens a replica against the cluster's primary and returns it with
// its own read server; run/stop control stays with the caller.
func (c *e25Cluster) follower(ctx context.Context) (*replica.Replica, *httptest.Server, error) {
	rep, err := replica.Open(ctx, replica.Options{
		Primary:  c.server.URL,
		Workers:  1,
		PollWait: 50 * time.Millisecond,
		Logger:   c.logger,
	})
	if err != nil {
		return nil, nil, err
	}
	srv := serve.New(rep.Tracked(), serve.Options{
		Logger:     c.logger,
		Role:       "replica",
		PrimaryURL: c.server.URL,
		Follower:   rep,
	})
	return rep, httptest.NewServer(srv.Handler()), nil
}

// e25WaitCaughtUp polls until the replica applied every primary record and
// reached its generation.
func e25WaitCaughtUp(c *e25Cluster, rep *replica.Replica, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := rep.Status()
		if st.LastAppliedSeq == c.prim.Head() && st.Generation == c.tr.Store().Generation() {
			return nil
		}
		time.Sleep(100 * time.Microsecond)
	}
	return fmt.Errorf("replica stuck: %+v vs head %d gen %d",
		rep.Status(), c.prim.Head(), c.tr.Store().Generation())
}

// E25Replication measures the scale-out tier behind -role=replica|router:
//
//   - WAL catch-up throughput: a bootstrapped replica is paused, the primary
//     takes a burst of region edits, and the replica tails back to the head
//     over HTTP — applying each shipped record through the store's O(n)
//     delta path. The alternative a replica without WAL shipping has is a
//     fresh snapshot bootstrap, which pays the O(n²) all-pairs rebuild; both
//     are timed as the median of seven rounds (medians shrug off the 2–3x
//     scheduling spikes of shared hardware that make min-of-N flicker) and
//     the ratio is the gated speedup. Byte agreement (relations body and
//     ETag against the primary) is asserted before any timing.
//   - Router read fan-out: two caught-up replicas behind the request router,
//     read traffic round-robins across both (each replica's served share is
//     asserted positive and reported).
//   - Bounded staleness: a deliberately lagging replica answers a
//     Cardirect-Min-Generation demand with 503 replica_lagging and serves
//     the same request once caught up — the reject path is asserted, not
//     timed.
//
// Metric suffixes follow the trend-gate convention: *_ms may not grow and
// *_speedup may not shrink beyond the threshold.
func E25Replication(o Options) (Report, error) {
	// Catch-up is O(edits·n) against the rebuild's O(n²): the full-mode
	// sizes keep the ratio comfortably above the asserted floor.
	n, edits, reads := 900, 30, 200
	if o.Quick {
		n, edits, reads = 400, 20, 100
	}
	metrics := map[string]float64{"n": float64(n), "edits": float64(edits)}
	cl, err := e25Primary(o, n)
	if err != nil {
		return Report{}, err
	}
	defer cl.close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	rep, repSrv, err := cl.follower(ctx)
	if err != nil {
		return Report{}, err
	}
	defer repSrv.Close()
	defer rep.Close()

	// The edit burst flips geometries of existing regions: world size and
	// per-record delta cost stay constant across the timed rounds.
	burst := func(round int) error {
		for i := 0; i < edits; i++ {
			id := fmt.Sprintf("w%05d", (round*edits+i*7)%n)
			x := float64((round*31+i*17)%n) * 0.9
			y := float64((i*13)%n) * 0.9
			if err := cl.prim.SetRegionGeometry(id, workload.BoxRegion(x, y, x+6, y+6)); err != nil {
				return err
			}
		}
		return nil
	}

	// Correctness before timing: after one burst the replica's relations
	// body and ETag are byte-identical to the primary's.
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	runDone := make(chan struct{})
	go func() { defer close(runDone); rep.Run(runCtx) }()
	if err := burst(0); err != nil {
		return Report{}, err
	}
	if err := e25WaitCaughtUp(cl, rep, 30*time.Second); err != nil {
		return Report{}, err
	}
	fetch := func(base, path, minGen string) (int, http.Header, []byte, error) {
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			return 0, nil, nil, err
		}
		if minGen != "" {
			req.Header.Set(replica.HeaderMinGeneration, minGen)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, body, err
	}
	_, pHdr, pBody, err := fetch(cl.server.URL, "/v1/relations", "")
	if err != nil {
		return Report{}, err
	}
	_, rHdr, rBody, err := fetch(repSrv.URL, "/v1/relations", "")
	if err != nil {
		return Report{}, err
	}
	if string(pBody) != string(rBody) || pHdr.Get("ETag") != rHdr.Get("ETag") {
		return Report{}, fmt.Errorf("E25: replica disagrees with primary at equal generation (ETag %q vs %q)",
			pHdr.Get("ETag"), rHdr.Get("ETag"))
	}

	// Timed catch-up, median of seven: pause the tail loop, burst, resume
	// and clock tail-to-head. Each round applies `edits` records to the
	// same n-region world.
	stopRun()
	<-runDone
	var catchSamples []float64
	for round := 1; round <= 7; round++ {
		if err := burst(round); err != nil {
			return Report{}, err
		}
		runtime.GC()
		rctx, rcancel := context.WithCancel(ctx)
		done := make(chan struct{})
		t0 := time.Now()
		go func() { defer close(done); rep.Run(rctx) }()
		if err := e25WaitCaughtUp(cl, rep, 60*time.Second); err != nil {
			rcancel()
			return Report{}, err
		}
		catchSamples = append(catchSamples, float64(time.Since(t0).Nanoseconds()))
		rcancel()
		<-done
	}
	nsCatch := medianNS(catchSamples)

	// The no-WAL alternative: bootstrap a fresh store from the snapshot —
	// the full all-pairs rebuild every catch-up would otherwise pay. The
	// first (untimed) round absorbs allocator and page-cache warmup.
	snap, _, _, err := cl.prim.Snapshot()
	if err != nil {
		return Report{}, err
	}
	img, err := replica.DecodeSnapshotImage(snap)
	if err != nil {
		return Report{}, err
	}
	var rebuildSamples []float64
	for i := 0; i < 8; i++ {
		// A forced collection between rounds keeps variable GC-assist work
		// out of the timed section — on small-core machines it otherwise
		// lands inside whichever round the pacer picks.
		runtime.GC()
		t0 := time.Now()
		seeded, _, err := config.TrackSeeded(img, core.StoreOptions{Workers: 1})
		if err != nil {
			return Report{}, err
		}
		if i > 0 {
			rebuildSamples = append(rebuildSamples, float64(time.Since(t0).Nanoseconds()))
		}
		seeded.Close()
	}
	nsRebuild := medianNS(rebuildSamples)
	speedup := nsRebuild / nsCatch
	metrics["catchup_ms"] = nsCatch / 1e6
	metrics["rebuild_ms"] = nsRebuild / 1e6
	metrics["catchup_speedup"] = speedup
	if !o.Quick && speedup < 1.2 {
		return Report{}, fmt.Errorf(
			"E25: WAL catch-up (%d edits, %d regions) at %.2fx vs snapshot rebuild, want >= 1.2x",
			edits, n, speedup)
	}

	// Bounded staleness: the replica is idle again (tail loop stopped after
	// the timed rounds), so one more primary edit makes it stale.
	if err := cl.prim.SetRegionGeometry("w00000", workload.BoxRegion(1, 1, 7, 7)); err != nil {
		return Report{}, err
	}
	primGen := fmt.Sprint(cl.tr.Store().Generation())
	status, _, body, err := fetch(repSrv.URL, "/v1/relations", primGen)
	if err != nil {
		return Report{}, err
	}
	if status != http.StatusServiceUnavailable {
		return Report{}, fmt.Errorf("E25: lagging replica answered %d to a min-generation demand, want 503: %s", status, body)
	}
	go rep.Run(ctx) // resume tailing for the rest of the experiment
	if err := e25WaitCaughtUp(cl, rep, 30*time.Second); err != nil {
		return Report{}, err
	}
	if status, _, _, err = fetch(repSrv.URL, "/v1/relations", primGen); err != nil || status != http.StatusOK {
		return Report{}, fmt.Errorf("E25: caught-up replica still rejects min-generation %s: status %d err %v", primGen, status, err)
	}

	// Router fan-out: two live replicas behind counting frontends; reads
	// through the router must land on both.
	rep2, rep2Srv, err := cl.follower(ctx)
	if err != nil {
		return Report{}, err
	}
	defer rep2Srv.Close()
	defer rep2.Close()
	go rep2.Run(ctx)
	if err := e25WaitCaughtUp(cl, rep2, 30*time.Second); err != nil {
		return Report{}, err
	}
	var hits [2]atomic.Int64
	count := func(i int, next http.Handler) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// The router's own health probes also land here; only client
			// reads count toward the fan-out split.
			if r.URL.Path != "/v1/healthz" {
				hits[i].Add(1)
			}
			next.ServeHTTP(w, r)
		}))
	}
	front1 := count(0, httpProxy(repSrv.URL))
	defer front1.Close()
	front2 := count(1, httpProxy(rep2Srv.URL))
	defer front2.Close()
	rtr, err := replica.NewRouter(replica.RouterOptions{
		Primary:        cl.server.URL,
		Replicas:       []string{front1.URL, front2.URL},
		HealthInterval: 10 * time.Millisecond,
		Logger:         cl.logger,
	})
	if err != nil {
		return Report{}, err
	}
	go rtr.Run(ctx)
	routerSrv := httptest.NewServer(rtr.Handler())
	defer routerSrv.Close()
	healthy := func() int {
		_, _, body, err := fetch(routerSrv.URL, "/v1/router/status", "")
		if err != nil {
			return 0
		}
		var st struct {
			Data struct {
				Healthy int `json:"healthy_replicas"`
			} `json:"data"`
		}
		if json.Unmarshal(body, &st) != nil {
			return 0
		}
		return st.Data.Healthy
	}
	deadline := time.Now().Add(30 * time.Second)
	for healthy() < 2 {
		if time.Now().After(deadline) {
			return Report{}, fmt.Errorf("E25: router never saw both replicas healthy")
		}
		time.Sleep(2 * time.Millisecond)
	}
	hits[0].Store(0)
	hits[1].Store(0)
	t0 := time.Now()
	for i := 0; i < reads; i++ {
		status, _, body, err := fetch(routerSrv.URL, "/v1/relation?primary=w00001&reference=attica", "")
		if err != nil || status != http.StatusOK {
			return Report{}, fmt.Errorf("E25: router read %d: status %d err %v: %s", i, status, err, body)
		}
	}
	fanoutNS := float64(time.Since(t0).Nanoseconds())
	h0, h1 := hits[0].Load(), hits[1].Load()
	if h0 == 0 || h1 == 0 {
		return Report{}, fmt.Errorf("E25: router fan-out skipped a replica: %d vs %d of %d reads", h0, h1, reads)
	}
	minShare := float64(min64(h0, h1)) / float64(reads)
	metrics["router_reads"] = float64(reads)
	metrics["router_fanout_min_share"] = minShare
	metrics["router_reads_per_sec"] = float64(reads) / (fanoutNS / 1e9)

	body2 := fmt.Sprintf("replica catch-up over HTTP WAL shipping (%d-region world, %d-edit burst,\nbyte-agreement with the primary asserted before timing):\n", n+11, edits)
	body2 += Table(
		[]string{"catch-up strategy", "wall-clock", "speedup"},
		[][]string{
			{"snapshot re-bootstrap (O(n²) rebuild)", fmt.Sprintf("%.1f ms", nsRebuild/1e6), "1.0x"},
			{"WAL tail + delta apply", fmt.Sprintf("%.1f ms", nsCatch/1e6), fmt.Sprintf("%.1fx", speedup)},
		},
	)
	body2 += fmt.Sprintf("\nrouter fan-out: %d reads split %d / %d across two replicas (%.0f reads/s);\n", reads, h0, h1, metrics["router_reads_per_sec"])
	body2 += "bounded staleness: a lagging replica 503s a Cardirect-Min-Generation demand\nand serves it after catch-up (asserted)\n"
	body2 += "\n`make bench-trend` gates catch-up latency and speedup against the committed baseline\n"
	return Report{
		ID:      "E25",
		Title:   "Replication: WAL catch-up vs rebuild, router fan-out, bounded staleness",
		Body:    body2,
		Metrics: metrics,
	}, nil
}

// httpProxy forwards every request to base, preserving status, headers and
// body — a counting frontend for fan-out attribution.
func httpProxy(base string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// medianNS is the timing estimator for the gated metrics: the median of the
// sampled rounds, robust against the scheduling spikes of shared hardware.
func medianNS(samples []float64) float64 {
	sort.Float64s(samples)
	n := len(samples)
	if n%2 == 1 {
		return samples[n/2]
	}
	return (samples[n/2-1] + samples[n/2]) / 2
}
