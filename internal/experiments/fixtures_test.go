package experiments

import (
	"strings"
	"testing"

	"cardirect/internal/core"
)

func TestFig3bCounts(t *testing.T) {
	ec, err := MeasureEdgeCounts("fig3b", Fig3bSquare(), RefRegion())
	if err != nil {
		t.Fatal(err)
	}
	if ec.EdgesIn != 4 {
		t.Errorf("EdgesIn = %d, want 4", ec.EdgesIn)
	}
	if ec.CDREdges != 8 {
		t.Errorf("Compute-CDR edges = %d, want 8 (paper §3)", ec.CDREdges)
	}
	if ec.ClipEdges != 16 || ec.ClipPieces != 4 {
		t.Errorf("clipping = %d edges / %d pieces, want 16 / 4 (Fig. 3b)", ec.ClipEdges, ec.ClipPieces)
	}
	want, _ := core.ParseRelation("B:W:NW:N")
	if ec.Relation != want {
		t.Errorf("relation = %v, want %v", ec.Relation, want)
	}
}

func TestFig3cCounts(t *testing.T) {
	ec, err := MeasureEdgeCounts("fig3c", Fig3cTriangle(), RefRegion())
	if err != nil {
		t.Fatal(err)
	}
	if ec.EdgesIn != 3 {
		t.Errorf("EdgesIn = %d, want 3", ec.EdgesIn)
	}
	if ec.CDREdges != 11 {
		t.Errorf("Compute-CDR edges = %d, want 11 (paper §3)", ec.CDREdges)
	}
	if ec.ClipEdges != 35 || ec.ClipPieces != 9 {
		t.Errorf("clipping = %d edges / %d pieces, want 35 / 9 (Fig. 3c: 2 triangles, 6 quadrangles, 1 pentagon)",
			ec.ClipEdges, ec.ClipPieces)
	}
	want, _ := core.ParseRelation("B:S:SW:W:NW:N:NE:E:SE")
	if ec.Relation != want {
		t.Errorf("relation = %v, want %v", ec.Relation, want)
	}
}

func TestExample3Counts(t *testing.T) {
	ec, err := MeasureEdgeCounts("example3", Example3Quadrangle(), RefRegion())
	if err != nil {
		t.Fatal(err)
	}
	if ec.EdgesIn != 4 {
		t.Errorf("EdgesIn = %d, want 4", ec.EdgesIn)
	}
	if ec.CDREdges != 9 {
		t.Errorf("Compute-CDR edges = %d, want 9 (Example 3)", ec.CDREdges)
	}
	// The paper reports "19 edges" for clipping here. A 6-tile relation
	// necessarily clips into ≥6 positive-area pieces, so 19 cannot be a
	// total edge count; it matches the *introduced* edges exactly:
	// 23 total − 4 input = 19 (see EXPERIMENTS.md, E3).
	if ec.ClipEdges-ec.EdgesIn != 19 {
		t.Errorf("clipping introduced %d edges, want 19 (paper's count)", ec.ClipEdges-ec.EdgesIn)
	}
	if ec.ClipEdges != 23 || ec.ClipPieces != 6 {
		t.Errorf("clipping = %d edges / %d pieces, want 23 / 6", ec.ClipEdges, ec.ClipPieces)
	}
	want, _ := core.ParseRelation("B:W:NW:N:NE:E")
	if ec.Relation != want {
		t.Errorf("relation = %v, want %v", ec.Relation, want)
	}
}

func TestTableFormatting(t *testing.T) {
	out := Table([]string{"col", "n"}, [][]string{{"fig3b", "16"}, {"x", "1"}})
	if !strings.Contains(out, "col") || !strings.Contains(out, "-----") || !strings.Contains(out, "fig3b") {
		t.Errorf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %d", len(lines))
	}
}
