package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"testing"

	"cardirect/internal/baseline"
	"cardirect/internal/clip"
	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/index"
	"cardirect/internal/query"
	"cardirect/internal/reason"
	"cardirect/internal/topo"
	"cardirect/internal/workload"
)

// Options scales the experiment suite.
type Options struct {
	// Quick shrinks workload sizes for fast runs.
	Quick bool
	// Seed drives every synthetic workload.
	Seed int64
}

// sizes returns the edge-count sweep for the scaling experiments.
func (o Options) sizes() []int {
	if o.Quick {
		return []int{64, 256, 1024}
	}
	return []int{64, 256, 1024, 4096, 16384, 65536}
}

func (o Options) pairCount() int {
	if o.Quick {
		return 200
	}
	return 2000
}

// Report is one experiment's printable result. Metrics carries the headline
// numbers in machine-readable form for the -json benchmark export; it is nil
// for purely qualitative experiments.
type Report struct {
	ID      string
	Title   string
	Body    string
	Metrics map[string]float64
}

// bench runs f in a testing benchmark and reports ns/op.
func bench(f func()) float64 {
	ns, _ := benchmem(f)
	return ns
}

// benchmem runs f in a testing benchmark and reports ns/op and allocs/op.
func benchmem(f func()) (nsPerOp, allocsPerOp float64) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return float64(r.NsPerOp()), float64(r.AllocsPerOp())
}

// E1E2E3EdgeCounts reproduces the paper's edge-inflation comparisons
// (Fig. 3b, Fig. 3c, Example 3): edges each method ends with.
func E1E2E3EdgeCounts() (Report, error) {
	b := RefRegion()
	fixtures := []struct {
		name string
		a    geom.Region
	}{
		{"Fig3b quadrangle (E1)", Fig3bSquare()},
		{"Fig3c triangle (E2)", Fig3cTriangle()},
		{"Example3 quadrangle (E3)", Example3Quadrangle()},
	}
	rows := make([][]string, 0, len(fixtures))
	for _, f := range fixtures {
		ec, err := MeasureEdgeCounts(f.name, f.a, b)
		if err != nil {
			return Report{}, err
		}
		rows = append(rows, []string{
			f.name,
			fmt.Sprint(ec.EdgesIn),
			fmt.Sprint(ec.CDREdges),
			fmt.Sprint(ec.ClipEdges),
			fmt.Sprint(ec.ClipPieces),
			ec.Relation.String(),
		})
	}
	body := Table(
		[]string{"fixture", "edges in", "Compute-CDR edges", "clipping edges", "clip pieces", "relation"},
		rows,
	)
	body += "\npaper: 4→8 vs 16 (Fig 3b), 3→11 vs 35 (Fig 3c), 4→9 vs 19-introduced (Example 3)\n"
	return Report{ID: "E1-E3", Title: "Edge inflation: Compute-CDR vs polygon clipping", Body: body}, nil
}

// E4E5Scaling verifies the linear-time claims of Theorems 1 and 2: ns/edge
// must stay flat as the edge count grows.
func E4E5Scaling(o Options) (Report, error) {
	g := workload.New(o.Seed)
	cases := g.ScalingSweep(o.sizes())
	rows := make([][]string, 0, len(cases))
	for _, c := range cases {
		nsCDR := bench(func() {
			if _, err := core.ComputeCDR(c.A, c.B); err != nil {
				panic(err)
			}
		})
		nsPct := bench(func() {
			if _, _, err := core.ComputeCDRPct(c.A, c.B); err != nil {
				panic(err)
			}
		})
		rows = append(rows, []string{
			fmt.Sprint(c.Edges),
			fmt.Sprintf("%.0f", nsCDR),
			fmt.Sprintf("%.2f", nsCDR/float64(c.Edges)),
			fmt.Sprintf("%.0f", nsPct),
			fmt.Sprintf("%.2f", nsPct/float64(c.Edges)),
		})
	}
	body := Table(
		[]string{"edges", "Compute-CDR ns", "ns/edge (E4)", "Compute-CDR% ns", "ns/edge (E5)"},
		rows,
	)
	body += "\npaper: both algorithms are O(k_a + k_b) — ns/edge should be near-constant\n"
	return Report{ID: "E4-E5", Title: "Linear scaling of Compute-CDR and Compute-CDR%", Body: body}, nil
}

// E6E7VsClipping runs the paper's future-work experiment: single-pass
// algorithms versus nine-tile clipping, time per computation.
func E6E7VsClipping(o Options) (Report, error) {
	g := workload.New(o.Seed)
	cases := g.ScalingSweep(o.sizes())
	rows := make([][]string, 0, len(cases))
	for _, c := range cases {
		nsCDR := bench(func() { core.ComputeCDR(c.A, c.B) })
		nsClip := bench(func() { clip.ComputeCDR(c.A, c.B) })
		nsPct := bench(func() { core.ComputeCDRPct(c.A, c.B) })
		nsClipPct := bench(func() { clip.ComputeCDRPct(c.A, c.B) })
		rows = append(rows, []string{
			fmt.Sprint(c.Edges),
			fmt.Sprintf("%.0f", nsCDR),
			fmt.Sprintf("%.0f", nsClip),
			fmt.Sprintf("%.2fx", nsClip/nsCDR),
			fmt.Sprintf("%.0f", nsPct),
			fmt.Sprintf("%.0f", nsClipPct),
			fmt.Sprintf("%.2fx", nsClipPct/nsPct),
		})
	}
	body := Table(
		[]string{"edges", "CDR ns", "clip ns", "speedup (E6)", "CDR% ns", "clip% ns", "speedup (E7)"},
		rows,
	)
	body += "\npaper: clipping scans edges 9x and inflates them — Compute-CDR should win\n"
	return Report{ID: "E6-E7", Title: "Compute-CDR(%) vs polygon-clipping baselines", Body: body}, nil
}

// E8ScanCounts verifies the single-pass claim with instrumented counters.
func E8ScanCounts(o Options) (Report, error) {
	g := workload.New(o.Seed)
	c := g.ScalingSweep([]int{1024})[0]
	_, stCDR, err := core.ComputeCDRStats(c.A, c.B)
	if err != nil {
		return Report{}, err
	}
	_, stClip, err := clip.ComputeCDRStats(c.A, c.B)
	if err != nil {
		return Report{}, err
	}
	rows := [][]string{
		{"Compute-CDR", fmt.Sprint(stCDR.Passes), fmt.Sprint(stCDR.EdgeVisits), fmt.Sprint(stCDR.EdgesOut)},
		{"clipping", fmt.Sprint(stClip.Passes), fmt.Sprint(stClip.EdgeVisits), fmt.Sprint(stClip.EdgesOut)},
	}
	body := Table([]string{"method", "passes", "edge visits", "edges out"}, rows)
	body += fmt.Sprintf("\n1024-edge primary: clipping visits edges %dx more often (paper: 9 scans vs 1)\n",
		stClip.EdgeVisits/stCDR.EdgeVisits)
	return Report{ID: "E8", Title: "Single pass vs nine passes", Body: body}, nil
}

// E9Greece reproduces the Fig. 11/12 configuration outputs.
func E9Greece() (Report, error) {
	img := config.Greece()
	pelop := img.FindRegion("peloponnesos").Geometry()
	attica := img.FindRegion("attica").Geometry()
	rel, err := core.ComputeCDR(pelop, attica)
	if err != nil {
		return Report{}, err
	}
	back, err := core.ComputeCDR(attica, pelop)
	if err != nil {
		return Report{}, err
	}
	m, _, err := core.ComputeCDRPct(attica, pelop)
	if err != nil {
		return Report{}, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Peloponnesos vs Attica: %v   (paper Fig. 12: B:S:SW:W)\n", rel)
	fmt.Fprintf(&sb, "Attica vs Peloponnesos: %v\n", back)
	fmt.Fprintf(&sb, "Attica %% matrix w.r.t. Peloponnesos:\n%v\n", m)
	return Report{ID: "E9", Title: "Peloponnesian-war configuration (Fig. 11/12)", Body: sb.String()}, nil
}

// E10Inverse times and summarises the inverse operation over all of D*.
func E10Inverse() (Report, error) {
	total := 0
	minLen, maxLen := 1<<30, 0
	for _, r := range core.AllRelations() {
		n := reason.Inverse(r).Len()
		total += n
		if n < minLen {
			minLen = n
		}
		if n > maxLen {
			maxLen = n
		}
	}
	ns := bench(func() { reason.Inverse(core.S) })
	var sb strings.Builder
	fmt.Fprintf(&sb, "inverse computed for all 511 relations: avg |inv| = %.1f, min %d, max %d\n",
		float64(total)/511, minLen, maxLen)
	fmt.Fprintf(&sb, "inv(S) = %v\n", reason.Inverse(core.S))
	fmt.Fprintf(&sb, "time per inverse: %.0f ns\n", ns)
	return Report{ID: "E10", Title: "Inverse of cardinal direction relations", Body: sb.String()}, nil
}

// E11Composition times composition and reports its tightness against
// Monte-Carlo observations.
func E11Composition(o Options) (Report, error) {
	g := workload.New(o.Seed)
	ns := bench(func() { reason.Composition(core.N, core.S) })
	// Soundness sample.
	n := o.pairCount() / 4
	sound := 0
	for i := 0; i < n; i++ {
		a := geom.Rgn(g.StarPolygon(float64(i%17)-8, float64(i%11)-5, 1, 4, 6))
		b := geom.Rgn(g.StarPolygon(float64(i%13)-6, float64(i%7)-3, 1, 4, 6))
		c := geom.Rgn(g.StarPolygon(float64(i%19)-9, float64(i%5)-2, 1, 4, 6))
		r1, err := core.ComputeCDR(a, b)
		if err != nil {
			return Report{}, err
		}
		r2, err := core.ComputeCDR(b, c)
		if err != nil {
			return Report{}, err
		}
		r3, err := core.ComputeCDR(a, c)
		if err != nil {
			return Report{}, err
		}
		if reason.Composition(r1, r2).Contains(r3) {
			sound++
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "comp(N, S) = %d relations; comp(SW, SW) = %v\n",
		reason.Composition(core.N, core.S).Len(), reason.Composition(core.SW, core.SW))
	fmt.Fprintf(&sb, "Monte-Carlo soundness: %d/%d observed relations contained\n", sound, n)
	fmt.Fprintf(&sb, "time per composition: %.0f ns\n", ns)
	return Report{ID: "E11", Title: "Composition of cardinal direction relations", Body: sb.String()}, nil
}

// E12Consistency times the network solver on satisfiable and unsatisfiable
// fixtures.
func E12Consistency() (Report, error) {
	mk := func(build func(*reason.Network)) (bool, float64, error) {
		var sat bool
		var solveErr error
		ns := bench(func() {
			n := reason.NewNetwork()
			build(n)
			w, err := n.Solve(reason.SolveOptions{})
			if err != nil {
				solveErr = err
			}
			sat = w != nil
		})
		return sat, ns, solveErr
	}
	rows := [][]string{}
	cases := []struct {
		name  string
		build func(*reason.Network)
		want  bool
	}{
		{"chain a N b N c", func(n *reason.Network) {
			n.ConstrainRel("a", "b", core.N)
			n.ConstrainRel("b", "c", core.N)
		}, true},
		{"cycle a N b N c N a", func(n *reason.Network) {
			n.ConstrainRel("a", "b", core.N)
			n.ConstrainRel("b", "c", core.N)
			n.ConstrainRel("c", "a", core.N)
		}, false},
		{"disjunctive forcing", func(n *reason.Network) {
			n.Constrain("a", "b", core.NewRelationSet(core.N, core.S))
			n.ConstrainRel("b", "a", core.N)
		}, true},
		{"surround + side", func(n *reason.Network) {
			r, _ := core.ParseRelation("S:SW:W:NW:N:NE:E:SE")
			n.ConstrainRel("ring", "core", r)
			n.ConstrainRel("east", "core", core.E)
		}, true},
	}
	for _, c := range cases {
		sat, ns, err := mk(c.build)
		if err != nil {
			return Report{}, err
		}
		status := "UNSAT"
		if sat {
			status = "SAT"
		}
		okStr := "ok"
		if sat != c.want {
			okStr = "WRONG"
		}
		rows = append(rows, []string{c.name, status, okStr, fmt.Sprintf("%.0f", ns)})
	}
	body := Table([]string{"network", "result", "expected?", "ns/solve"}, rows)
	return Report{ID: "E12", Title: "Consistency of constraint networks", Body: body}, nil
}

// E13Query times the paper's example query over the Greece configuration and
// a larger synthetic configuration.
func E13Query(o Options) (Report, error) {
	img := config.Greece()
	ev, err := query.NewEvaluator(img)
	if err != nil {
		return Report{}, err
	}
	const paperQuery = "q(a, b) :- color(a) = red, color(b) = blue, a S:SW:W:NW:N:NE:E:SE b"
	answers, err := ev.EvalString(paperQuery)
	if err != nil {
		return Report{}, err
	}
	nsGreece := bench(func() {
		e2, _ := query.NewEvaluator(img)
		e2.EvalString(paperQuery)
	})
	// Synthetic: 36 regions.
	nRegions := 16
	if !o.Quick {
		nRegions = 36
	}
	g := workload.New(o.Seed)
	syn := &config.Image{Name: "synthetic"}
	colors := []string{"red", "blue"}
	side := 1
	for side*side < nRegions {
		side++
	}
	for i := 0; i < nRegions; i++ {
		r := config.Region{ID: fmt.Sprintf("r%02d", i), Color: colors[i%2]}
		cx := float64(i%side) * 10
		cy := float64(i/side) * 10
		r.SetGeometry(geom.Rgn(g.StarPolygon(cx, cy, 1, 4, 8)))
		syn.Regions = append(syn.Regions, r)
	}
	evSyn, err := query.NewEvaluator(syn)
	if err != nil {
		return Report{}, err
	}
	const synQuery = "q(a, b) :- color(a) = red, color(b) = blue, a {SW, S:SW, SW:W} b"
	warm := bench(func() { evSyn.EvalString(synQuery) })
	var sb strings.Builder
	fmt.Fprintf(&sb, "paper query over Greece: %d answer(s): %v\n", len(answers), answers)
	fmt.Fprintf(&sb, "cold evaluator+query (Greece, 11 regions): %.0f ns\n", nsGreece)
	fmt.Fprintf(&sb, "warm query (%d synthetic regions): %.0f ns\n", nRegions, warm)
	return Report{ID: "E13", Title: "Query evaluation (the paper's §4 example)", Body: sb.String()}, nil
}

// E14Expressiveness measures how often the coarse prior-art models disagree
// with the exact tile model on random pairs.
func E14Expressiveness(o Options) (Report, error) {
	g := workload.New(o.Seed)
	pairs := g.Pairs(o.pairCount(), 10)
	var mbbCounts, coneCounts [3]int
	for _, p := range pairs {
		exact, err := core.ComputeCDR(p.A, p.B)
		if err != nil {
			return Report{}, err
		}
		mr, err := baseline.MBB(p.A, p.B)
		if err != nil {
			return Report{}, err
		}
		mbbCounts[baseline.CompareMBB(mr, exact)]++
		coneCounts[baseline.CompareCone(baseline.CentroidCone(p.A, p.B, 0), exact)]++
	}
	n := float64(len(pairs))
	pct := func(c int) string { return fmt.Sprintf("%.1f%%", 100*float64(c)/n) }
	rows := [][]string{
		{"MBB approximation", pct(mbbCounts[0]), pct(mbbCounts[1]), pct(mbbCounts[2])},
		{"centroid cone", pct(coneCounts[0]), pct(coneCounts[1]), pct(coneCounts[2])},
	}
	body := Table([]string{"model", "exact", "subsumed (info loss)", "contradicts"}, rows)
	body += fmt.Sprintf("\n%d random pairs; the paper's model is the ground truth\n", len(pairs))
	return Report{ID: "E14", Title: "Expressiveness vs point/MBB approximations", Body: body}, nil
}

// E15OpCounts compares intersection-point computations (the costly
// floating-point divisions §3 mentions) between the methods.
func E15OpCounts(o Options) (Report, error) {
	g := workload.New(o.Seed)
	rows := [][]string{}
	for _, c := range g.ScalingSweep([]int{16, 256, 4096}) {
		_, stCDR, err := core.ComputeCDRStats(c.A, c.B)
		if err != nil {
			return Report{}, err
		}
		_, stClip, err := clip.ComputeCDRStats(c.A, c.B)
		if err != nil {
			return Report{}, err
		}
		rows = append(rows, []string{
			fmt.Sprint(c.Edges),
			fmt.Sprint(stCDR.Intersections),
			fmt.Sprint(stClip.Intersections),
			fmt.Sprintf("%.2fx", float64(stClip.Intersections)/float64(maxi(1, stCDR.Intersections))),
		})
	}
	body := Table([]string{"edges", "CDR intersections", "clip intersections", "ratio"}, rows)
	body += "\npaper: clipping 'sometimes requires complex floating point operations which are costly'\n"
	return Report{ID: "E15", Title: "Intersection computations per run", Body: body}, nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E17CombinedRelations runs the paper's future-work item 2 — combining
// cardinal directions with topological (RCC-8) and qualitative distance
// relations — over the Fig. 11 configuration: one row per interesting pair
// with all three vocabularies side by side.
func E17CombinedRelations() (Report, error) {
	img := config.Greece()
	pairs := [][2]string{
		{"peloponnesos", "attica"},
		{"peloponnesos", "pylos"},
		{"beotia", "attica"},
		{"crete", "peloponnesos"},
		{"islands", "attica"},
		{"macedonia", "attica"},
		{"sicily", "south-italy"},
	}
	rows := make([][]string, 0, len(pairs))
	for _, pr := range pairs {
		a := img.FindRegion(pr[0]).Geometry()
		b := img.FindRegion(pr[1]).Geometry()
		dir, err := core.ComputeCDR(a, b)
		if err != nil {
			return Report{}, err
		}
		rows = append(rows, []string{
			pr[0], pr[1],
			dir.String(),
			topo.Classify(a, b, 0).String(),
			topo.ClassifyDistance(a, b).String(),
			fmt.Sprintf("%.3f", topo.MinDistance(a, b)),
		})
	}
	body := Table(
		[]string{"primary", "reference", "direction", "RCC-8", "distance", "min dist"},
		rows,
	)
	body += "\nthe paper's §5 item 2, realised: all three vocabularies over one configuration\n"
	return Report{ID: "E17", Title: "Directions + topology + distance (future work #2)", Body: body}, nil
}

// E16IndexedSelection measures the extension experiment: R-tree-accelerated
// directional selection (the execution plan of a spatial DBMS per the
// paper's reference [13]) versus the naive per-candidate scan.
func E16IndexedSelection(o Options) (Report, error) {
	g := workload.New(o.Seed)
	nRegions := 400
	if !o.Quick {
		nRegions = 2500
	}
	side := 1
	for side*side < nRegions {
		side++
	}
	geoms := map[string]geom.Region{}
	items := make([]index.Item, 0, nRegions)
	for i := 0; i < nRegions; i++ {
		cx := float64(i%side) * 12
		cy := float64(i/side) * 12
		r := geom.Rgn(g.StarPolygon(cx, cy, 1, 4, 8))
		id := fmt.Sprintf("r%05d", i)
		geoms[id] = r
		items = append(items, index.Item{Box: r.BoundingBox(), ID: id})
	}
	tree, err := index.BulkLoad(items)
	if err != nil {
		return Report{}, err
	}
	mid := float64(side) * 6
	ref := workload.BoxRegion(mid-4, mid-4, mid+4, mid+4)
	allowed := core.NewRelationSet(core.SW, core.Rel(core.TileS, core.TileSW))

	indexed, err := index.DirectionalSelect(tree, geoms, ref, allowed)
	if err != nil {
		return Report{}, err
	}
	nsIndexed := bench(func() {
		if _, err := index.DirectionalSelect(tree, geoms, ref, allowed); err != nil {
			panic(err)
		}
	})
	nsNaive := bench(func() {
		for _, r := range geoms {
			rel, err := core.ComputeCDR(r, ref)
			if err != nil {
				panic(err)
			}
			_ = allowed.Contains(rel)
		}
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d regions, allowed = %v: %d match\n", nRegions, allowed, len(indexed))
	fmt.Fprintf(&sb, "indexed plan: %.0f ns;  naive scan: %.0f ns;  speedup %.2fx\n",
		nsIndexed, nsNaive, nsNaive/nsIndexed)
	return Report{ID: "E16", Title: "R-tree-accelerated directional selection (extension)", Body: sb.String()}, nil
}

// E18BatchScaling measures the all-pairs batch engine — CARDIRECT's bulk
// (re)annotation, and the relation-matrix builder consistency-checking
// workloads consume. Three configurations over a region-count × edge-count
// sweep: the sequential full-splitting path (every pair pays SplitEdge),
// the MBB-pruned path (box-separable and box-contained pairs answered with
// zero splits), and the pruned path on the GOMAXPROCS worker pool. A
// worker-count sweep on the largest workload shows how the pool scales.
func E18BatchScaling(o Options) (Report, error) {
	g := workload.New(o.Seed)
	type cfg struct{ regions, edges int }
	cfgs := []cfg{{50, 8}, {100, 8}, {200, 8}}
	if !o.Quick {
		cfgs = append(cfgs, cfg{200, 32}, cfg{400, 8})
	}
	named := func(n, edges int) []core.NamedRegion {
		scattered := g.Scatter(n, edges)
		out := make([]core.NamedRegion, n)
		for i, r := range scattered {
			out[i] = core.NamedRegion{Name: fmt.Sprintf("r%04d", i), Region: r}
		}
		return out
	}
	run := func(regions []core.NamedRegion, opt core.BatchOptions) float64 {
		return bench(func() {
			if _, _, err := core.ComputeAllPairsOpt(regions, opt); err != nil {
				panic(err)
			}
		})
	}
	rows := make([][]string, 0, len(cfgs))
	var largest []core.NamedRegion
	for _, c := range cfgs {
		regions := named(c.regions, c.edges)
		largest = regions
		nsSeq := run(regions, core.BatchOptions{Workers: 1, NoPrune: true})
		nsPruned := run(regions, core.BatchOptions{Workers: 1})
		nsPar := run(regions, core.BatchOptions{})
		_, st, err := core.ComputeAllPairsOpt(regions, core.BatchOptions{Workers: 1})
		if err != nil {
			return Report{}, err
		}
		pairs := c.regions * (c.regions - 1)
		pruned := st.PruneSingleTile + st.PruneBand
		rows = append(rows, []string{
			fmt.Sprintf("%d×%d", c.regions, c.edges),
			fmt.Sprint(pairs),
			fmt.Sprintf("%.2f", nsSeq/1e6),
			fmt.Sprintf("%.2f", nsPruned/1e6),
			fmt.Sprintf("%.2f", nsPar/1e6),
			fmt.Sprintf("%.1f%%", 100*float64(pruned)/float64(pairs)),
			fmt.Sprintf("%.2fx", nsSeq/nsPruned),
			fmt.Sprintf("%.2fx", nsSeq/nsPar),
		})
	}
	body := Table(
		[]string{"regions×edges", "pairs", "seq ms", "pruned ms", "parallel ms", "prune hits", "prune speedup", "total speedup"},
		rows,
	)
	// Worker-count sweep on the largest workload, pruning enabled.
	maxProcs := runtime.GOMAXPROCS(0)
	counts := []int{1, 2, 4}
	if maxProcs > 4 {
		counts = append(counts, maxProcs)
	}
	base := run(largest, core.BatchOptions{Workers: 1})
	wrows := make([][]string, 0, len(counts))
	for _, w := range counts {
		ns := run(largest, core.BatchOptions{Workers: w})
		wrows = append(wrows, []string{
			fmt.Sprint(w),
			fmt.Sprintf("%.2f", ns/1e6),
			fmt.Sprintf("%.2fx", base/ns),
		})
	}
	body += "\nworker-count sweep (" + fmt.Sprintf("%d regions, GOMAXPROCS=%d", len(largest), maxProcs) + "):\n"
	body += Table([]string{"workers", "ms", "speedup vs 1 worker"}, wrows)
	body += "\nthe prune and pool compose: pruned+parallel is the production path (ComputeAllPairsParallel)\n"
	return Report{ID: "E18", Title: "All-pairs batch engine: MBB pruning × worker pool", Body: body}, nil
}

// E19PctBatchAndQueryPruning measures the two halves of the zero-allocation
// quantitative engine. First the all-pairs percent batch: naive pairwise
// ComputeCDRPct (grids and edge tables rebuilt per pair) versus the prepared
// batch engine, pruned and parallel, on scatter and clustered workloads,
// with the cached-area fast-path hit rate. Then the R-tree query plan:
// DirectionalSelectStats candidate counts versus the naive full scan on
// growing scatter worlds.
func E19PctBatchAndQueryPruning(o Options) (Report, error) {
	g := workload.New(o.Seed)
	metrics := map[string]float64{}
	n := 100
	if o.Quick {
		n = 50
	}
	named := func(prefix string, rs []geom.Region) []core.NamedRegion {
		out := make([]core.NamedRegion, len(rs))
		for i, r := range rs {
			out[i] = core.NamedRegion{Name: fmt.Sprintf("%s%04d", prefix, i), Region: r}
		}
		return out
	}
	cfgs := []struct {
		name    string
		regions []core.NamedRegion
	}{
		{"scatter", named("s", g.Scatter(n, 8))},
		{"cluster", named("c", g.Cluster(n, n/8, 8))},
	}
	rows := make([][]string, 0, len(cfgs))
	for _, c := range cfgs {
		nsNaive := bench(func() {
			for _, a := range c.regions {
				for _, b := range c.regions {
					if a.Name == b.Name {
						continue
					}
					if _, _, err := core.ComputeCDRPct(a.Region, b.Region); err != nil {
						panic(err)
					}
				}
			}
		})
		nsPruned, allocsPruned := benchmem(func() {
			if _, _, err := core.ComputeAllPairsPctOpt(c.regions, core.BatchOptions{Workers: 1}); err != nil {
				panic(err)
			}
		})
		nsPar := bench(func() {
			if _, _, err := core.ComputeAllPairsPctOpt(c.regions, core.BatchOptions{}); err != nil {
				panic(err)
			}
		})
		_, st, err := core.ComputeAllPairsPctOpt(c.regions, core.BatchOptions{Workers: 1})
		if err != nil {
			return Report{}, err
		}
		pairs := len(c.regions) * (len(c.regions) - 1)
		pruneRate := 100 * float64(st.PrunePctTile+st.PrunePctPoly) / float64(pairs)
		rows = append(rows, []string{
			fmt.Sprintf("%s %d×8", c.name, len(c.regions)),
			fmt.Sprintf("%.2f", nsNaive/1e6),
			fmt.Sprintf("%.2f", nsPruned/1e6),
			fmt.Sprintf("%.2f", nsPar/1e6),
			fmt.Sprintf("%.1f%%", pruneRate),
			fmt.Sprintf("%.2fx", nsNaive/nsPruned),
			fmt.Sprintf("%.2fx", nsNaive/nsPar),
		})
		metrics["pct_naive_ms_"+c.name] = nsNaive / 1e6
		metrics["pct_pruned_ms_"+c.name] = nsPruned / 1e6
		metrics["pct_parallel_ms_"+c.name] = nsPar / 1e6
		metrics["pct_batch_allocs_"+c.name] = allocsPruned
		metrics["pct_prune_rate_"+c.name] = pruneRate
		metrics["pct_speedup_"+c.name] = nsNaive / nsPar
	}
	body := "all-pairs Compute-CDR% (naive pairwise vs prepared batch engine):\n"
	body += Table(
		[]string{"workload", "naive ms", "pruned ms", "parallel ms", "fast-path hits", "pruned speedup", "total speedup"},
		rows,
	)

	// Per-pair steady state: RelatePct with a warmed Scratch allocates
	// nothing; the naive call pays the full per-pair setup.
	ps, err := core.PrepareAll(cfgs[0].regions[:2])
	if err != nil {
		return Report{}, err
	}
	sc := &core.Scratch{}
	if _, _, err := core.RelatePct(ps[0], ps[1], sc); err != nil {
		return Report{}, err
	}
	nsPair, allocsPair := benchmem(func() {
		if _, _, err := core.RelatePct(ps[0], ps[1], sc); err != nil {
			panic(err)
		}
	})
	nsPairNaive, allocsPairNaive := benchmem(func() {
		if _, _, err := core.ComputeCDRPct(cfgs[0].regions[0].Region, cfgs[0].regions[1].Region); err != nil {
			panic(err)
		}
	})
	body += fmt.Sprintf("\nper-pair steady state: RelatePct %.0f ns / %.0f allocs, ComputeCDRPct %.0f ns / %.0f allocs\n",
		nsPair, allocsPair, nsPairNaive, allocsPairNaive)
	metrics["relate_pct_ns"] = nsPair
	metrics["relate_pct_allocs"] = allocsPair
	metrics["compute_cdr_pct_ns"] = nsPairNaive
	metrics["compute_cdr_pct_allocs"] = allocsPairNaive

	// Query pruning: candidates visited by the R-tree plan vs a full scan.
	sizes := []int{100, 400}
	if o.Quick {
		sizes = []int{100}
	}
	allowed := core.NewRelationSet(core.N, core.NE, core.Rel(core.TileN, core.TileNE))
	qrows := make([][]string, 0, len(sizes))
	for _, qn := range sizes {
		scattered := g.Scatter(qn, 8)
		items := make([]index.Item, qn)
		geoms := make(map[string]geom.Region, qn)
		for i, r := range scattered {
			id := fmt.Sprintf("q%04d", i)
			items[i] = index.Item{Box: r.BoundingBox(), ID: id}
			geoms[id] = r
		}
		tree, err := index.BulkLoad(items)
		if err != nil {
			return Report{}, err
		}
		// Reference in the middle of the scatter window (side = √n·10).
		side := math.Sqrt(float64(qn)) * 10
		ref := workload.BoxRegion(0.45*side, 0.45*side, 0.55*side, 0.55*side)
		matches, st, err := index.DirectionalSelectStats(tree, geoms, ref, allowed)
		if err != nil {
			return Report{}, err
		}
		qrows = append(qrows, []string{
			fmt.Sprint(qn),
			fmt.Sprint(st.Candidates),
			fmt.Sprintf("%.1f%%", 100*float64(st.Candidates)/float64(st.Total)),
			fmt.Sprint(st.Exact),
			fmt.Sprint(len(matches)),
		})
		metrics[fmt.Sprintf("select_candidates_n%d", qn)] = float64(st.Candidates)
		metrics[fmt.Sprintf("select_candidate_rate_n%d", qn)] = float64(st.Candidates) / float64(st.Total)
		metrics[fmt.Sprintf("select_exact_n%d", qn)] = float64(st.Exact)
	}
	body += "\ndirectional selection {N, NE, N:NE} via R-tree windows (full scan visits all n):\n"
	body += Table([]string{"n", "candidates", "visited", "exact refinements", "matches"}, qrows)
	body += "\nwindow queries dismiss most of the world before any geometry is touched;\nresults stay identical to the scan (see TestDirectionalSelectStatsPrunes)\n"
	return Report{
		ID:      "E19",
		Title:   "Zero-allocation quantitative engine: percent batch × query pruning",
		Body:    body,
		Metrics: metrics,
	}, nil
}

// E20StoreDelta measures the incremental relation store: a single-region
// edit in an n-region scatter world, handled by RelationStore.SetGeometry's
// delta recomputation (re-prepare one region, recompute its row and column —
// 2(n−1) pairs) versus the full O(n²) batch sweep every edit used to cost.
// Both sides run on one core so the ratio is pure algorithmic win; the
// parallel delta is reported alongside. The quantitative store (percent
// matrices maintained too) is measured against the combined qual+pct batch.
func E20StoreDelta(o Options) (Report, error) {
	g := workload.New(o.Seed)
	n := 500
	if o.Quick {
		n = 150
	}
	regions := make([]core.NamedRegion, n)
	for i, r := range g.Scatter(n, 8) {
		regions[i] = core.NamedRegion{Name: fmt.Sprintf("r%04d", i), Region: r}
	}
	editID := regions[n/2].Name
	// Two alternate geometries inside the same world; the edit benchmark
	// flips between them so every SetGeometry call is a real change.
	spare := g.Scatter(n, 8)
	alts := [2]geom.Region{spare[0], spare[1]}

	metrics := map[string]float64{"n": float64(n), "delta_pairs": float64(2 * (n - 1))}

	// Qualitative: full batch vs store delta.
	nsFullQual := bench(func() {
		if _, _, err := core.ComputeAllPairsOpt(regions, core.BatchOptions{Workers: 1}); err != nil {
			panic(err)
		}
	})
	storeQ, err := core.NewRelationStore(regions, core.StoreOptions{Workers: 1})
	if err != nil {
		return Report{}, err
	}
	flip := 0
	nsDeltaQual := bench(func() {
		flip++
		if err := storeQ.SetGeometry(editID, alts[flip&1]); err != nil {
			panic(err)
		}
	})
	storeQPar, err := core.NewRelationStore(regions, core.StoreOptions{})
	if err != nil {
		return Report{}, err
	}
	flip = 0
	nsDeltaQualPar := bench(func() {
		flip++
		if err := storeQPar.SetGeometry(editID, alts[flip&1]); err != nil {
			panic(err)
		}
	})

	// Quantitative: qual+pct batch vs Pct store delta.
	nsFullPct := bench(func() {
		if _, _, err := core.ComputeAllPairsOpt(regions, core.BatchOptions{Workers: 1}); err != nil {
			panic(err)
		}
		if _, _, err := core.ComputeAllPairsPctOpt(regions, core.BatchOptions{Workers: 1}); err != nil {
			panic(err)
		}
	})
	storeP, err := core.NewRelationStore(regions, core.StoreOptions{Workers: 1, Pct: true})
	if err != nil {
		return Report{}, err
	}
	flip = 0
	nsDeltaPct := bench(func() {
		flip++
		if err := storeP.SetGeometry(editID, alts[flip&1]); err != nil {
			panic(err)
		}
	})

	metrics["full_qual_ms"] = nsFullQual / 1e6
	metrics["delta_qual_us"] = nsDeltaQual / 1e3
	metrics["delta_qual_par_us"] = nsDeltaQualPar / 1e3
	metrics["qual_speedup_1cpu"] = nsFullQual / nsDeltaQual
	metrics["full_pct_ms"] = nsFullPct / 1e6
	metrics["delta_pct_us"] = nsDeltaPct / 1e3
	metrics["pct_speedup_1cpu"] = nsFullPct / nsDeltaPct

	body := fmt.Sprintf("single-region edit in a %d-region scatter world (%d pairs total, delta touches %d):\n",
		n, n*(n-1), 2*(n-1))
	body += Table(
		[]string{"engine", "full recompute", "store delta (1 cpu)", "speedup", "delta parallel"},
		[][]string{
			{
				"qualitative",
				fmt.Sprintf("%.2f ms", nsFullQual/1e6),
				fmt.Sprintf("%.1f µs", nsDeltaQual/1e3),
				fmt.Sprintf("%.0fx", nsFullQual/nsDeltaQual),
				fmt.Sprintf("%.1f µs", nsDeltaQualPar/1e3),
			},
			{
				"qual+percent",
				fmt.Sprintf("%.2f ms", nsFullPct/1e6),
				fmt.Sprintf("%.1f µs", nsDeltaPct/1e3),
				fmt.Sprintf("%.0fx", nsFullPct/nsDeltaPct),
				"—",
			},
		},
	)
	body += "\nthe edit path drops from O(n²) pairs to O(n): re-prepare the touched region,\nrecompute its row and column through the batch worker pool, leave everything\nelse cached (differential-tested against from-scratch recomputes)\n"
	return Report{
		ID:      "E20",
		Title:   "Incremental relation store: delta recomputation on region edits",
		Body:    body,
		Metrics: metrics,
	}, nil
}

// Entry is one runnable experiment of the suite.
type Entry struct {
	ID  string
	Run func() (Report, error)
}

// Entries returns the experiment suite in canonical order for the given
// options.
func Entries(o Options) []Entry {
	return []Entry{
		{"E1-E3", E1E2E3EdgeCounts},
		{"E4-E5", func() (Report, error) { return E4E5Scaling(o) }},
		{"E6-E7", func() (Report, error) { return E6E7VsClipping(o) }},
		{"E8", func() (Report, error) { return E8ScanCounts(o) }},
		{"E9", E9Greece},
		{"E10", E10Inverse},
		{"E11", func() (Report, error) { return E11Composition(o) }},
		{"E12", E12Consistency},
		{"E13", func() (Report, error) { return E13Query(o) }},
		{"E14", func() (Report, error) { return E14Expressiveness(o) }},
		{"E15", func() (Report, error) { return E15OpCounts(o) }},
		{"E16", func() (Report, error) { return E16IndexedSelection(o) }},
		{"E17", E17CombinedRelations},
		{"E18", func() (Report, error) { return E18BatchScaling(o) }},
		{"E19", func() (Report, error) { return E19PctBatchAndQueryPruning(o) }},
		{"E20", func() (Report, error) { return E20StoreDelta(o) }},
		{"E21", func() (Report, error) { return E21RawSpeed(o) }},
		{"E22", func() (Report, error) { return E22QueryPlanner(o) }},
		{"E23", func() (Report, error) { return E23HugeWorld(o) }},
		{"E24", func() (Report, error) { return E24Reasoning(o) }},
		{"E25", func() (Report, error) { return E25Replication(o) }},
	}
}

// All runs every experiment in order.
func All(o Options) ([]Report, error) {
	entries := Entries(o)
	out := make([]Report, 0, len(entries))
	for _, e := range entries {
		r, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// IDs lists the experiment identifiers in canonical order.
func IDs() []string {
	entries := Entries(Options{})
	ids := make([]string, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}
