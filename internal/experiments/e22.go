package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/query"
	"cardirect/internal/serve"
	"cardirect/internal/workload"
)

// e22World builds a tracked 500-region configuration (store with percent
// matrices, one worker, live R-tree) with a small color palette so
// attribute conditions have something to filter on.
func e22World(prefix string, regions []geom.Region) (*config.Tracked, *config.Image, []string, error) {
	img := &config.Image{Name: "e22-" + prefix}
	ids := make([]string, len(regions))
	for i, r := range regions {
		id := fmt.Sprintf("%s%04d", prefix, i)
		ids[i] = id
		if err := img.AddRegion(id, id, fmt.Sprintf("c%d", i%6), r); err != nil {
			return nil, nil, nil, err
		}
	}
	tr, err := config.Track(img, core.StoreOptions{Workers: 1, Pct: true})
	if err != nil {
		return nil, nil, nil, err
	}
	return tr, img, ids, nil
}

// E22QueryPlanner measures the cost-based query planner (plan.go) against
// written-order evaluation, and the plan cache hit path against cold
// parse+plan, on 500-region scatter and cluster worlds:
//
//   - written_ms_* / planner_ms_*: an adversarially-ordered three-variable
//     query — the percent condition written first, the binding that pins
//     the join written last, and both relation conditions pinned on their
//     PRIMARY side, which the old single-shot pre-filter cannot push. The
//     written-order join binds x and y before the bound z, paying n² percent
//     checks; the planner binds z first and pushes both relation conditions
//     through the store's cached rows, shrinking x and y before the join.
//     Results are asserted identical (sorted bindings) before timing.
//   - planner_speedup: the smaller of the two worlds' ratios — the
//     regression-gated floor behind TestE22PlannerWins (≥5x).
//   - query_cold_p50_us / query_warm_p50_us: POST /api/query through the
//     full service stack; cold varies the query text every request (plan
//     cache miss: parse, plan, selectivity probes, pushdown), warm repeats
//     one text (plan cache hit: cached plan plus cached candidate state,
//     straight to the join). Both run at one generation, so the gap is
//     pure planning overhead.
func E22QueryPlanner(o Options) (Report, error) {
	g := workload.New(o.Seed)
	const n = 500 // the acceptance bar is pinned to a 500-region world
	httpReqs := 400
	if o.Quick {
		httpReqs = 100
	}
	metrics := map[string]float64{"n": float64(n)}

	worlds := []struct {
		name   string
		prefix string
		geoms  []geom.Region
	}{
		{"scatter", "s", g.Scatter(n, 8)},
		{"cluster", "c", g.Cluster(n, n/8, 8)},
	}

	benchBest := func(f func()) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			if ns := bench(f); best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	var rows [][]string
	var scatterTr *config.Tracked
	var scatterMid string
	plannerSpeedup := 0.0
	for _, w := range worlds {
		tr, img, ids, err := e22World(w.prefix, w.geoms)
		if err != nil {
			return Report{}, err
		}
		if w.name == "scatter" {
			scatterTr = tr
		} else {
			defer tr.Close()
		}
		mid := ids[n/2]
		if w.name == "scatter" {
			scatterMid = mid
		}
		// Adversarial ordering: the expensive percent condition leads, the
		// pinning bind trails, and both relation conditions pin their
		// primary side (z), which the written-order pre-filter skips. The
		// shape is satisfiable: z north of x and south of y puts x south of
		// y, so x lands in y's SW tile for the western half of the pairs.
		adversarial := fmt.Sprintf(
			"q(x, y, z) :- pct(x SW y) >= 40, z {N, N:NE, NE} x, z {S, S:SW, SW} y, z = %s", mid)

		eval := func(planner bool) ([]query.Binding, error) {
			ev, err := query.NewEvaluator(img)
			if err != nil {
				return nil, err
			}
			ev.UseStore(tr.Store())
			ev.UseIndex(tr.Index())
			ev.SetPlanner(planner)
			return ev.EvalString(adversarial)
		}
		// Result equality first: the planner must be a pure optimisation.
		want, err := eval(false)
		if err != nil {
			return Report{}, err
		}
		got, err := eval(true)
		if err != nil {
			return Report{}, err
		}
		if !reflect.DeepEqual(want, got) {
			return Report{}, fmt.Errorf("E22 %s: planner results differ from written order (%d vs %d bindings)",
				w.name, len(got), len(want))
		}
		nsWritten := benchBest(func() {
			if _, err := eval(false); err != nil {
				panic(err)
			}
		})
		nsPlanner := benchBest(func() {
			if _, err := eval(true); err != nil {
				panic(err)
			}
		})
		speedup := nsWritten / nsPlanner
		if plannerSpeedup == 0 || speedup < plannerSpeedup {
			plannerSpeedup = speedup
		}
		metrics["written_ms_"+w.name] = nsWritten / 1e6
		metrics["planner_ms_"+w.name] = nsPlanner / 1e6
		metrics["bindings_"+w.name] = float64(len(want))
		rows = append(rows, []string{
			w.name,
			fmt.Sprintf("%.2f ms", nsWritten/1e6),
			fmt.Sprintf("%.2f ms", nsPlanner/1e6),
			fmt.Sprintf("%.1fx", speedup),
			fmt.Sprint(len(want)),
		})
	}
	defer scatterTr.Close()
	metrics["planner_speedup"] = plannerSpeedup

	// Plan cache: warm hits versus cold parse+plan through the service.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := serve.New(scatterTr, serve.Options{Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	post := func(q string) (time.Duration, error) {
		body, err := json.Marshal(map[string]string{"q": q})
		if err != nil {
			return 0, err
		}
		start := time.Now()
		resp, err := client.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("POST /api/query: %d", resp.StatusCode)
		}
		return time.Since(start), nil
	}
	// A plan-heavy, join-light shape: the bind pins the reference, the
	// relation condition is pushed down, the attribute filter is counted
	// during planning — all work the warm path skips.
	warmQ := fmt.Sprintf("q(x, y) :- y = %s, x {N, N:NE, NE} y, color(x) = c1, pct(x N y) >= 40", scatterMid)
	// coldSeq makes every cold query text unique across ALL passes — reusing
	// texts between passes would silently turn the second cold pass into a
	// warm one (the first pass populated the cache).
	coldSeq := 0
	coldQ := func() string {
		coldSeq++
		return fmt.Sprintf("q(x, y) :- y = %s, x {N, N:NE, NE} y, color(x) = c1, pct(x N y) >= 40.%06d",
			scatterMid, coldSeq)
	}
	pass := func(cold bool) (float64, error) {
		lats := make([]float64, 0, httpReqs)
		for i := 0; i < httpReqs; i++ {
			q := warmQ
			if cold {
				q = coldQ()
			}
			d, err := post(q)
			if err != nil {
				return 0, err
			}
			lats = append(lats, float64(d.Nanoseconds())/1e3)
		}
		sort.Float64s(lats)
		return lats[len(lats)/2], nil
	}
	// Two passes each, keeping the better median; the first warm pass also
	// primes the cache entry the later passes hit.
	coldP50, warmP50 := 0.0, 0.0
	for i := 0; i < 2; i++ {
		c, err := pass(true)
		if err != nil {
			return Report{}, err
		}
		w, err := pass(false)
		if err != nil {
			return Report{}, err
		}
		if i == 0 || c < coldP50 {
			coldP50 = c
		}
		if i == 0 || w < warmP50 {
			warmP50 = w
		}
	}
	metrics["query_cold_p50_us"] = coldP50
	metrics["query_warm_p50_us"] = warmP50
	// The ratio is informational (no unit suffix): both medians are gated
	// individually, and the ratio on a quiet machine is the headline.
	metrics["plan_cache_cold_over_warm"] = coldP50 / warmP50

	body := fmt.Sprintf("adversarially-ordered 3-variable query, %d-region worlds, store on one worker:\n", n)
	body += Table(
		[]string{"world", "written order", "planner", "speedup", "bindings"},
		rows,
	)
	body += fmt.Sprintf("\nplan cache over HTTP (%d requests/pass, one generation):\n", httpReqs)
	body += Table(
		[]string{"path", "p50"},
		[][]string{
			{"cold (unique text per request)", fmt.Sprintf("%.0f µs", coldP50)},
			{"warm (cached plan + candidates)", fmt.Sprintf("%.0f µs", warmP50)},
			{"cold / warm", fmt.Sprintf("%.2fx", coldP50/warmP50)},
		},
	)
	body += "\nthe planner binds the pinned variable first and pushes both relation\nconditions through the store's cached rows before the join; written order\npays the full n-squared percent sweep (results asserted identical).\n`make bench-trend` gates these numbers against the committed baseline\n"
	return Report{
		ID:      "E22",
		Title:   "Cost-based query planner: selectivity-ordered joins and plan cache",
		Body:    body,
		Metrics: metrics,
	}, nil
}
