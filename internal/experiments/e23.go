package experiments

import (
	"context"
	"fmt"
	"time"

	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// E23HugeWorld measures the huge-world tier (internal/core lod*.go) on the
// two workloads it exists for:
//
//   - A zipfian world (10^5 regions full, 2·10^4 quick; a handful of giant
//     4096-edge coastlines above a long simple tail) swept with sampled
//     all-pairs rows — the 16 giants plus an even stride — through
//     LoDWorld.BatchRows twice: exact-only (every pair through the exact
//     SoA kernel) and the LoD tier stack (coarse single-tile O(1) answers,
//     the strip-localised exact stage, the error-bounded simplified
//     bracket, exact fallback). The outputs are asserted bit-identical
//     cell by cell BEFORE any timing; lod_speedup is exact wall-clock over
//     LoD wall-clock, best of three sweeps each. In full mode the
//     experiment itself errors below the 10x acceptance floor.
//   - An urban/rural clustered world ingested into a live RelationStore
//     two ways: one streamed AddBulk call (matrix grown once, ONE batched
//     worker-pool recompute — Stats.BulkBatches) versus the per-region Add
//     loop every client used to pay (k separate 2(n−1)-pair deltas —
//     Stats.DeltaPairs). The delta-path counters are asserted, not just
//     reported: bulk must land in one batch with zero delta pairs.
//
// Metric suffixes follow the trend-gate convention: *_ms may not grow and
// *_speedup may not shrink beyond the threshold; the tier-stack counters
// (coarse/strip/simplified/exact pair counts) are informational.
func E23HugeWorld(o Options) (Report, error) {
	g := workload.New(o.Seed)
	n := 100000
	nBulk := 2000
	if o.Quick {
		n = 20000
		nBulk = 600
	}
	window := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	metrics := map[string]float64{"n": float64(n), "bulk_regions": float64(nBulk)}

	regions := make([]core.NamedRegion, n)
	for i, r := range g.Zipf(window, n, 4096) {
		regions[i] = core.NamedRegion{Name: fmt.Sprintf("z%06d", i), Region: r}
	}
	t0 := time.Now()
	w, err := core.PrepareLoDWorld(regions, core.LoDOptions{})
	if err != nil {
		return Report{}, err
	}
	metrics["build_lod_ms"] = float64(time.Since(t0).Nanoseconds()) / 1e6

	// Sampled rows: every giant (zipf rank order puts them first) plus an
	// even stride through the tail. The giants are where all-pairs cost
	// concentrates; the stride keeps the tail honest.
	var rows []int
	for i := 0; i < 16 && i < n; i++ {
		rows = append(rows, i)
	}
	for i := 16; i < n; i += n / 48 {
		rows = append(rows, i)
	}
	metrics["rows"] = float64(len(rows))

	// Result equality first: the tier stack must be a pure optimisation.
	ctx := context.Background()
	exactOut, _, err := w.BatchRows(ctx, rows, true)
	if err != nil {
		return Report{}, err
	}
	lodOut, lodSt, err := w.BatchRows(ctx, rows, false)
	if err != nil {
		return Report{}, err
	}
	for r := range rows {
		for j := 0; j < n; j++ {
			if exactOut[r][j] != lodOut[r][j] {
				return Report{}, fmt.Errorf(
					"E23: LoD answer differs from exact kernel at row %d col %d: %v vs %v",
					rows[r], j, lodOut[r][j], exactOut[r][j])
			}
		}
	}

	// Best-of-four sweeps each side, INTERLEAVED exact/LoD per round: on
	// shared hardware a multi-second CPU-steal burst would otherwise land
	// entirely inside one side's (much shorter) measurement window and
	// wreck the ratio; alternating makes correlated noise hit both sides.
	// The equality pass above already warmed the lazy strip indexes and
	// exact-fallback caches — the steady state a long-lived world serves.
	sweep := func(exact bool) float64 {
		t := time.Now()
		if _, _, err := w.BatchRows(ctx, rows, exact); err != nil {
			panic(err)
		}
		return float64(time.Since(t).Nanoseconds())
	}
	nsExact, nsLoD := 0.0, 0.0
	for i := 0; i < 4; i++ {
		if d := sweep(true); nsExact == 0 || d < nsExact {
			nsExact = d
		}
		if d := sweep(false); nsLoD == 0 || d < nsLoD {
			nsLoD = d
		}
	}
	speedup := nsExact / nsLoD
	metrics["exact_sweep_ms"] = nsExact / 1e6
	metrics["lod_sweep_ms"] = nsLoD / 1e6
	metrics["lod_speedup"] = speedup
	metrics["pairs_coarse"] = float64(lodSt.CoarseSingleTile)
	metrics["pairs_strip"] = float64(lodSt.LoDStrip)
	metrics["pairs_simplified"] = float64(lodSt.LoDSimplified)
	metrics["pairs_exact_fallback"] = float64(lodSt.LoDExact)
	if !o.Quick && speedup < 10 {
		return Report{}, fmt.Errorf(
			"E23: LoD tier speedup %.1fx on the %d-region zipfian world, want >= 10x", speedup, n)
	}

	// Streamed bulk ingest: an urban/rural clustered batch into a live
	// store, AddBulk versus the per-region Add loop. Both sides start from
	// an identical seeded store; the batch is everything past the seed.
	clustered := g.UrbanRural(window, nBulk, nBulk/40, 8)
	bulkRegions := make([]core.NamedRegion, nBulk)
	for i, r := range clustered {
		bulkRegions[i] = core.NamedRegion{Name: fmt.Sprintf("u%05d", i), Region: r}
	}
	seedN := nBulk / 4
	mkStore := func() (*core.RelationStore, error) {
		return core.NewRelationStore(bulkRegions[:seedN], core.StoreOptions{})
	}
	bulkBest, loopBest := 0.0, 0.0
	var bulkBatches, bulkDeltaPairs, loopDeltaPairs int
	for i := 0; i < 2; i++ {
		st, err := mkStore()
		if err != nil {
			return Report{}, err
		}
		before := st.Stats()
		t := time.Now()
		if err := st.AddBulk(bulkRegions[seedN:]); err != nil {
			return Report{}, err
		}
		if d := float64(time.Since(t).Nanoseconds()); bulkBest == 0 || d < bulkBest {
			bulkBest = d
		}
		after := st.Stats()
		bulkBatches = after.BulkBatches - before.BulkBatches
		bulkDeltaPairs = after.DeltaPairs - before.DeltaPairs

		st, err = mkStore()
		if err != nil {
			return Report{}, err
		}
		before = st.Stats()
		t = time.Now()
		for _, r := range bulkRegions[seedN:] {
			if err := st.Add(r.Name, r.Region); err != nil {
				return Report{}, err
			}
		}
		if d := float64(time.Since(t).Nanoseconds()); loopBest == 0 || d < loopBest {
			loopBest = d
		}
		loopDeltaPairs = st.Stats().DeltaPairs - before.DeltaPairs
	}
	// The acceptance assertion: one batched recompute, zero delta pairs.
	if bulkBatches != 1 || bulkDeltaPairs != 0 {
		return Report{}, fmt.Errorf(
			"E23: AddBulk of %d regions took %d batches and %d delta pairs, want 1 batch / 0 deltas",
			nBulk-seedN, bulkBatches, bulkDeltaPairs)
	}
	metrics["bulk_ingest_ms"] = bulkBest / 1e6
	metrics["add_loop_ms"] = loopBest / 1e6
	metrics["bulk_ingest_speedup"] = loopBest / bulkBest
	metrics["loop_delta_pairs"] = float64(loopDeltaPairs)

	decided := lodSt.CoarseSingleTile + lodSt.LoDStrip + lodSt.LoDSimplified + lodSt.LoDExact
	body := fmt.Sprintf("zipfian world, %d regions (max 4096 edges), %d sampled all-pairs rows,\nresults asserted bit-identical to the exact kernel before timing:\n", n, len(rows))
	body += Table(
		[]string{"sweep", "wall-clock", "speedup"},
		[][]string{
			{"exact-only", fmt.Sprintf("%.1f ms", nsExact/1e6), "1.0x"},
			{"LoD tier stack", fmt.Sprintf("%.1f ms", nsLoD/1e6), fmt.Sprintf("%.1fx", speedup)},
		},
	)
	body += "\npairs by deciding tier (LoD sweep):\n"
	body += Table(
		[]string{"tier", "pairs", "share"},
		[][]string{
			{"coarse single-tile (O(1))", fmt.Sprint(lodSt.CoarseSingleTile), fmt.Sprintf("%.2f%%", 100*float64(lodSt.CoarseSingleTile)/float64(decided))},
			{"strip-localised exact", fmt.Sprint(lodSt.LoDStrip), fmt.Sprintf("%.2f%%", 100*float64(lodSt.LoDStrip)/float64(decided))},
			{"simplified bracket", fmt.Sprint(lodSt.LoDSimplified), fmt.Sprintf("%.2f%%", 100*float64(lodSt.LoDSimplified)/float64(decided))},
			{"exact fallback", fmt.Sprint(lodSt.LoDExact), fmt.Sprintf("%.2f%%", 100*float64(lodSt.LoDExact)/float64(decided))},
		},
	)
	body += fmt.Sprintf("\nstreamed bulk ingest, urban/rural clustered world (%d regions into a %d-region store):\n", nBulk-seedN, seedN)
	body += Table(
		[]string{"path", "wall-clock", "recompute shape"},
		[][]string{
			{"AddBulk (one batch)", fmt.Sprintf("%.1f ms", bulkBest/1e6), fmt.Sprintf("%d batch, %d delta pairs", bulkBatches, bulkDeltaPairs)},
			{"per-region Add loop", fmt.Sprintf("%.1f ms", loopBest/1e6), fmt.Sprintf("%d delta pairs", loopDeltaPairs)},
		},
	)
	body += "\nevery LoD-tier answer is bit-identical to the exact kernel (also fuzzed:\nFuzzLoDDifferential); `make bench-trend` gates these numbers against the\ncommitted baseline\n"
	return Report{
		ID:      "E23",
		Title:   "Huge-world tier: LoD stack vs exact-only, streamed bulk ingest",
		Body:    body,
		Metrics: metrics,
	}, nil
}
