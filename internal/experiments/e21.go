package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"time"

	"cardirect/internal/config"
	"cardirect/internal/core"
	"cardirect/internal/persist"
	"cardirect/internal/serve"
	"cardirect/internal/wal"
	"cardirect/internal/workload"
)

// E21RawSpeed is the raw-speed tracking suite behind `make bench-trend`:
// one experiment measuring every layer the kernel overhaul touches, so a
// single BENCH_E21.json carries the regression-gated numbers.
//
//   - batch_qual_ms / batch_pct_ms: the headline all-pairs batch engines on
//     a cluster world (pruning on, one worker).
//   - pct_kernel_soa_ms / pct_kernel_ref_ms / pct_kernel_speedup: the
//     struct-of-arrays percent kernel against the per-edge reference
//     kernel, pruning off so every pair runs the full splitting loop — the
//     ablation behind the ≥1.5x acceptance bar.
//   - delta_edit_us: one SetGeometry through the incremental store
//     (row+column recompute with percent matrices maintained).
//   - recovery_bin_ms / recovery_xml_ms / recovery_speedup: end-to-end
//     persist.Open of the same generation from the binary snapshot versus
//     the XML fallback — the ablation behind the ≥2x acceptance bar.
//   - http_relation_p50_us / http_relation_p99: latency of GET
//     /api/relation?pct=1 through the full service stack (mux, store
//     lookup, JSON encoding); the median is regression-gated, the tail
//     is tracked informationally.
func E21RawSpeed(o Options) (Report, error) {
	g := workload.New(o.Seed)
	n, httpReqs := 500, 2000
	if o.Quick {
		n, httpReqs = 120, 400
	}
	world := g.Cluster(n, n/8, 8)
	regions := make([]core.NamedRegion, n)
	for i, r := range world {
		regions[i] = core.NamedRegion{Name: fmt.Sprintf("c%04d", i), Region: r}
	}
	metrics := map[string]float64{"n": float64(n)}

	// Prepared once (arena-backed): the batch timings measure the engines,
	// not region preprocessing.
	ps, err := core.PrepareAll(regions)
	if err != nil {
		return Report{}, err
	}

	// Every timing below is the best of three independent measurements:
	// on shared or virtualized hardware a single testing.Benchmark mean
	// can absorb a steal-time burst and read 20%+ high, and the trend
	// gate compares these numbers across runs.
	benchBest := func(f func()) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			if ns := bench(f); best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	nsQual := benchBest(func() {
		if _, err := core.BatchCDR(nil, nil, &core.BatchOptions{Workers: 1, Prepared: ps}); err != nil {
			panic(err)
		}
	})
	nsPct := benchBest(func() {
		if _, err := core.BatchPct(nil, nil, &core.BatchOptions{Workers: 1, Prepared: ps}); err != nil {
			panic(err)
		}
	})
	nsSoA := benchBest(func() {
		if _, err := core.BatchPct(nil, nil, &core.BatchOptions{Workers: 1, NoPrune: true, Prepared: ps}); err != nil {
			panic(err)
		}
	})
	nsRef := benchBest(func() {
		if _, err := core.BatchPct(nil, nil, &core.BatchOptions{Workers: 1, NoPrune: true, NoSoA: true, Prepared: ps}); err != nil {
			panic(err)
		}
	})
	metrics["batch_qual_ms"] = nsQual / 1e6
	metrics["batch_pct_ms"] = nsPct / 1e6
	metrics["pct_kernel_soa_ms"] = nsSoA / 1e6
	metrics["pct_kernel_ref_ms"] = nsRef / 1e6
	metrics["pct_kernel_speedup"] = nsRef / nsSoA

	// Incremental store: one real edit, percent matrices maintained.
	store, err := core.NewRelationStore(regions, core.StoreOptions{Workers: 1, Pct: true})
	if err != nil {
		return Report{}, err
	}
	spare := g.Cluster(2, 1, 8)
	editID := regions[n/2].Name
	flip := 0
	nsDelta := benchBest(func() {
		flip++
		if err := store.SetGeometry(editID, spare[flip&1]); err != nil {
			panic(err)
		}
	})
	metrics["delta_edit_us"] = nsDelta / 1e3

	// Recovery ablation: one durable generation, recovered from each
	// snapshot format. Timed as the best of three end-to-end Opens (the
	// store-seeding work is identical on both sides; the delta is decode).
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	img := &config.Image{Name: "e21"}
	for _, r := range regions {
		if err := img.AddRegion(r.Name, r.Name, "", r.Region); err != nil {
			return Report{}, err
		}
	}
	dir, err := os.MkdirTemp("", "e21-recovery-*")
	if err != nil {
		return Report{}, err
	}
	defer os.RemoveAll(dir)
	popt := persist.Options{Pct: true, Logger: quiet, Sync: wal.Options{Policy: wal.SyncNever}}
	seedStore, err := persist.Open(dir, img, popt)
	if err != nil {
		return Report{}, err
	}
	seedStore.Close()
	seedStore.Tracked().Close()

	reopen := func(wantFrom string) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			s, err := persist.Open(dir, nil, popt)
			if err != nil {
				return 0, err
			}
			elapsed := time.Since(start)
			from := s.Status().RecoveredFrom
			s.Close()
			s.Tracked().Close()
			if from != wantFrom {
				return 0, fmt.Errorf("recovered from %q, want %q", from, wantFrom)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best, nil
	}
	binElapsed, err := reopen("binary")
	if err != nil {
		return Report{}, err
	}
	if err := os.Remove(filepath.Join(dir, fmt.Sprintf("snapshot-%08d.bin", 1))); err != nil {
		return Report{}, err
	}
	xmlElapsed, err := reopen("xml")
	if err != nil {
		return Report{}, err
	}
	metrics["recovery_bin_ms"] = float64(binElapsed.Nanoseconds()) / 1e6
	metrics["recovery_xml_ms"] = float64(xmlElapsed.Nanoseconds()) / 1e6
	metrics["recovery_speedup"] = float64(xmlElapsed) / float64(binElapsed)

	// HTTP tail latency through the full service stack.
	tr, err := config.Track(img, core.StoreOptions{Pct: true})
	if err != nil {
		return Report{}, err
	}
	defer tr.Close()
	srv := serve.New(tr, serve.Options{Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rng := rand.New(rand.NewSource(o.Seed))
	client := ts.Client()
	pass := func() ([]float64, error) {
		lats := make([]float64, 0, httpReqs)
		for i := 0; i < httpReqs; i++ {
			a := regions[rng.Intn(n)].Name
			b := regions[rng.Intn(n)].Name
			for b == a {
				b = regions[rng.Intn(n)].Name
			}
			url := fmt.Sprintf("%s/api/relation?primary=%s&reference=%s&pct=1", ts.URL, a, b)
			start := time.Now()
			resp, err := client.Get(url)
			if err != nil {
				return nil, err
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				return nil, err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("GET /api/relation: %d", resp.StatusCode)
			}
			lats = append(lats, float64(time.Since(start).Nanoseconds())/1e3)
		}
		sort.Float64s(lats)
		return lats, nil
	}
	// Two passes, keeping the better tail: the first doubles as warm-up
	// (connection reuse, JIT'd scheduler state), and one GC pause or
	// scheduler hiccup in a single pass would otherwise own p99 outright.
	p50, p99 := 0.0, 0.0
	for i := 0; i < 2; i++ {
		lats, err := pass()
		if err != nil {
			return Report{}, err
		}
		if q99 := lats[len(lats)*99/100]; i == 0 || q99 < p99 {
			p99 = q99
			p50 = lats[len(lats)/2]
		}
	}
	metrics["http_relation_p50_us"] = p50
	// p99 (also µs) is reported without a unit suffix on purpose: the
	// compare gate treats un-suffixed keys as informational, and a p99
	// over a few hundred requests is a handful of samples — one GC pause
	// on shared hardware triples it. Track the trend; don't fail on it.
	metrics["http_relation_p99"] = p99

	body := fmt.Sprintf("%d-region cluster world, one worker (raw-speed tracking suite):\n", n)
	body += Table(
		[]string{"metric", "value"},
		[][]string{
			{"all-pairs qualitative batch", fmt.Sprintf("%.2f ms", nsQual/1e6)},
			{"all-pairs percent batch", fmt.Sprintf("%.2f ms", nsPct/1e6)},
			{"percent kernel, SoA (no prune)", fmt.Sprintf("%.2f ms", nsSoA/1e6)},
			{"percent kernel, reference (no prune)", fmt.Sprintf("%.2f ms", nsRef/1e6)},
			{"SoA kernel speedup", fmt.Sprintf("%.2fx", nsRef/nsSoA)},
			{"store delta edit (qual+pct)", fmt.Sprintf("%.1f µs", nsDelta/1e3)},
			{"recovery from binary snapshot", fmt.Sprintf("%.1f ms", metrics["recovery_bin_ms"])},
			{"recovery from XML snapshot", fmt.Sprintf("%.1f ms", metrics["recovery_xml_ms"])},
			{"binary recovery speedup", fmt.Sprintf("%.2fx", metrics["recovery_speedup"])},
			{"HTTP /api/relation p50 / p99", fmt.Sprintf("%.0f µs / %.0f µs", p50, p99)},
		},
	)
	body += "\nthe SoA and recovery rows are the ablations behind the kernel-overhaul\nacceptance bars (SoA ≥1.5x, binary recovery ≥2x); `make bench-trend`\ncompares this experiment's JSON against the committed baseline\n"
	return Report{
		ID:      "E21",
		Title:   "Raw-speed suite: SoA kernel, arena worlds, binary recovery, HTTP tail",
		Body:    body,
		Metrics: metrics,
	}, nil
}
