// Package experiments holds the shared fixtures and measurement helpers for
// the reproduction's experiment suite (DESIGN.md §3, experiments E1–E15):
// the canonical shapes of the paper's Fig. 3 and Example 3, workload sweeps,
// and table-formatting utilities used by both the go-test benchmarks at the
// module root and the cdrbench command.
package experiments

import (
	"fmt"
	"strings"

	"cardirect/internal/clip"
	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// RefRegion is the reference region used by the paper-figure fixtures: a
// rectangle whose mbb is [0,10]×[0,6].
func RefRegion() geom.Region {
	return geom.Rgn(geom.Poly(
		geom.Pt(0, 6), geom.Pt(10, 6), geom.Pt(10, 0), geom.Pt(0, 0),
	))
}

// Fig3bSquare reproduces Fig. 3a/3b of the paper: a quadrangle (4 edges)
// spanning the four tiles B, W, NW, N around the north-west corner of
// mbb(b). Polygon clipping segments it into 4 quadrangles (16 edges);
// Compute-CDR introduces 8 edges.
func Fig3bSquare() geom.Region {
	return geom.Rgn(geom.Poly(
		geom.Pt(-2, 8), geom.Pt(2, 8), geom.Pt(2, 4), geom.Pt(-2, 4),
	))
}

// Fig3cTriangle reproduces Fig. 3c, the paper's worst case: a triangle
// (3 edges) spanning all nine tiles. Polygon clipping produces 2 triangles,
// 6 quadrangles and 1 pentagon — 35 edges; Compute-CDR introduces 11.
func Fig3cTriangle() geom.Region {
	return geom.Rgn(geom.Poly(
		geom.Pt(-8, -1), geom.Pt(5, 14), geom.Pt(18, -1),
	))
}

// Example3Quadrangle reproduces the quadrangle (N1 N2 N3 N4) of
// Examples 2–3: N1 ∈ W(b) (on the west line), N2, N3 ∈ NW(b), N4 ∈ NE(b);
// the relation is B:W:NW:N:NE:E, Compute-CDR yields 9 edges and clipping 19
// (2 triangles, 2 quadrangles, 1 pentagon).
func Example3Quadrangle() geom.Region {
	return geom.Rgn(geom.Poly(
		geom.Pt(0, 2), geom.Pt(-4, 9), geom.Pt(-2, 7), geom.Pt(16, 8),
	))
}

// EdgeCounts measures how many edges each method ends with for a fixture.
type EdgeCounts struct {
	Name       string
	EdgesIn    int
	CDREdges   int // segments after Compute-CDR splitting
	ClipEdges  int // total edges over all clipped pieces
	ClipPieces int
	Relation   core.Relation
}

// MeasureEdgeCounts runs both methods over (a, b) and collects the counts.
func MeasureEdgeCounts(name string, a, b geom.Region) (EdgeCounts, error) {
	rel, st, err := core.ComputeCDRStats(a, b)
	if err != nil {
		return EdgeCounts{}, fmt.Errorf("experiments: %s: %w", name, err)
	}
	seg, err := clip.Segment(a, b)
	if err != nil {
		return EdgeCounts{}, fmt.Errorf("experiments: %s: %w", name, err)
	}
	pieces := 0
	for _, ps := range seg.Pieces {
		pieces += len(ps)
	}
	return EdgeCounts{
		Name:       name,
		EdgesIn:    st.EdgesIn,
		CDREdges:   st.EdgesOut,
		ClipEdges:  seg.Stats.EdgesOut,
		ClipPieces: pieces,
		Relation:   rel,
	}, nil
}

// Table formats rows with a header into an aligned plain-text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}
