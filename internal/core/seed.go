package core

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadSeed is returned (wrapped, with detail) by NewRelationStoreSeeded
// when the supplied pairs do not cover the region set exactly; callers fall
// back to the computing constructor on errors.Is(err, ErrBadSeed).
var ErrBadSeed = errors.New("core: seed does not match the region set")

// StoreSeed carries a previously computed all-pairs result for
// NewRelationStoreSeeded: the qualitative relations and — when the store is
// to maintain percentages — the percent matrices of every ordered pair, in
// any order. This is the recovery fast path of the persistence subsystem:
// a snapshot written from a store's own cache is loaded back without
// recomputing a single pair.
type StoreSeed struct {
	Pairs []PairRelation
	// Pcts is consulted only with StoreOptions.Pct. Entries with zero
	// Areas get them reconstructed from the matrix and the region's total
	// area (the percent matrix is areas normalised by total area, so the
	// reconstruction is exact up to the matrix's own rounding).
	Pcts []PairPercent
}

// NewRelationStoreSeeded builds a store over the given regions, filling the
// cached all-pairs matrices from seed instead of computing them. The seed
// must contain exactly one entry per ordered pair of distinct region names
// (and with opt.Pct, one percent entry per pair); otherwise a wrapped
// ErrBadSeed is returned and the caller should fall back to
// NewRelationStore. The seed values are trusted — the caller vouches they
// were computed over these exact geometries (a snapshot the store itself
// wrote); a fabricated seed yields a store that serves fabricated answers.
func NewRelationStoreSeeded(regions []NamedRegion, seed StoreSeed, opt StoreOptions) (*RelationStore, error) {
	ps, err := PrepareAll(regions)
	if err != nil {
		return nil, err
	}
	s := &RelationStore{opt: opt, idx: make(map[string]int, len(ps))}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	for i, p := range ps {
		if err := s.usable(p); err != nil {
			return nil, err
		}
		s.idx[p.Name] = i
	}
	s.ps = ps
	n := len(ps)
	s.rels = make([][]Relation, n)
	for i := range s.rels {
		s.rels[i] = make([]Relation, n)
	}
	if opt.Pct {
		s.pcts = make([][]pctCell, n)
		for i := range s.pcts {
			s.pcts[i] = make([]pctCell, n)
		}
	}
	want := n * (n - 1)
	if len(seed.Pairs) != want {
		return nil, fmt.Errorf("core: %d qualitative pairs for %d regions, want %d: %w",
			len(seed.Pairs), n, want, ErrBadSeed)
	}
	filled := make([][]bool, n)
	for i := range filled {
		filled[i] = make([]bool, n)
	}
	for _, pr := range seed.Pairs {
		i, j, err := s.seedSlots(pr.Primary, pr.Reference, filled)
		if err != nil {
			return nil, err
		}
		s.rels[i][j] = pr.Relation
	}
	if opt.Pct {
		if len(seed.Pcts) != want {
			return nil, fmt.Errorf("core: %d percent pairs for %d regions, want %d: %w",
				len(seed.Pcts), n, want, ErrBadSeed)
		}
		for i := range filled {
			for j := range filled[i] {
				filled[i][j] = false
			}
		}
		for _, pp := range seed.Pcts {
			i, j, err := s.seedSlots(pp.Primary, pp.Reference, filled)
			if err != nil {
				return nil, err
			}
			cell := pctCell{matrix: pp.Matrix, areas: pp.Areas}
			if cell.areas == (TileAreas{}) {
				// Reconstruct absolute areas from the percentages: the
				// matrix was computed as areas/total*100 over this exact
				// geometry.
				total := s.ps[i].totalArea
				for t := range cell.areas {
					cell.areas[t] = cell.matrix.Get(Tile(t)) * total / 100
				}
			}
			s.pcts[i][j] = cell
		}
	}
	return s, nil
}

// seedSlots resolves one seed entry's matrix cell, rejecting unknown names,
// self-pairs and duplicates.
func (s *RelationStore) seedSlots(primary, reference string, filled [][]bool) (int, int, error) {
	i, ok := s.idx[primary]
	if !ok {
		return 0, 0, fmt.Errorf("core: seed names unknown region %q: %w", primary, ErrBadSeed)
	}
	j, ok := s.idx[reference]
	if !ok {
		return 0, 0, fmt.Errorf("core: seed names unknown region %q: %w", reference, ErrBadSeed)
	}
	if i == j {
		return 0, 0, fmt.Errorf("core: seed pairs region %q with itself: %w", primary, ErrBadSeed)
	}
	if filled[i][j] {
		return 0, 0, fmt.Errorf("core: seed repeats pair (%q, %q): %w", primary, reference, ErrBadSeed)
	}
	filled[i][j] = true
	return i, j, nil
}
