package core

import (
	"math"
	"math/rand"
	"testing"

	"cardirect/internal/geom"
)

func TestAccumulatorMatchesBatch(t *testing.T) {
	b := refB()
	fixtures := []geom.Region{
		box(2, 2, 8, 4),
		box(-3, 1, 0, 5),
		example3Quadrangle(),
		append(box(-5, -5, -2, -2), box(12, 8, 15, 11)...),
		box(-10, -10, 20, 16), // contains mbb(b): exercises the ray parity test
	}
	for i, a := range fixtures {
		ac, err := NewAccumulator(b.BoundingBox())
		if err != nil {
			t.Fatal(err)
		}
		if err := ac.AddRegion(a); err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		gotRel, err := ac.Relation()
		if err != nil {
			t.Fatalf("fixture %d: %v", i, err)
		}
		wantRel, err := ComputeCDR(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if gotRel != wantRel {
			t.Errorf("fixture %d: stream %v != batch %v", i, gotRel, wantRel)
		}
		gotAreas, err := ac.Areas()
		if err != nil {
			t.Fatal(err)
		}
		_, wantAreas, err := ComputeCDRPct(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, tile := range Tiles() {
			if math.Abs(gotAreas[tile]-wantAreas[tile]) > 1e-9 {
				t.Errorf("fixture %d tile %v: stream %v != batch %v", i, tile, gotAreas[tile], wantAreas[tile])
			}
		}
		m, err := ac.Percent()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Sum()-100) > 1e-9 {
			t.Errorf("fixture %d: matrix sum %v", i, m.Sum())
		}
	}
}

func TestAccumulatorRandomisedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := refB()
	for trial := 0; trial < 100; trial++ {
		var a geom.Region
		for k := 0; k <= rng.Intn(3); k++ {
			n := 3 + rng.Intn(9)
			p := make(geom.Polygon, n)
			cx := -8 + rng.Float64()*26
			cy := -6 + rng.Float64()*18
			for i := 0; i < n; i++ {
				th := 2 * math.Pi * (float64(i) + 0.1 + 0.8*rng.Float64()) / float64(n)
				r := 0.5 + rng.Float64()*3
				p[i] = geom.Pt(cx+r*math.Cos(th), cy+r*math.Sin(th))
			}
			a = append(a, p.Clockwise())
		}
		ac, err := NewAccumulator(b.BoundingBox())
		if err != nil {
			t.Fatal(err)
		}
		if err := ac.AddRegion(a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gotRel, err := ac.Relation()
		if err != nil {
			t.Fatal(err)
		}
		wantRel, _ := ComputeCDR(a, b)
		if gotRel != wantRel {
			t.Fatalf("trial %d: stream %v != batch %v", trial, gotRel, wantRel)
		}
	}
}

func TestAccumulatorProtocolErrors(t *testing.T) {
	b := refB()
	ac, err := NewAccumulator(b.BoundingBox())
	if err != nil {
		t.Fatal(err)
	}
	// AddEdge outside a ring.
	if err := ac.AddEdge(geom.Pt(0, 0), geom.Pt(1, 0)); err == nil {
		t.Error("AddEdge outside ring should fail")
	}
	// EndPolygon without Begin.
	if err := ac.EndPolygon(); err == nil {
		t.Error("EndPolygon without Begin should fail")
	}
	// Degenerate edge.
	ac.BeginPolygon()
	if err := ac.AddEdge(geom.Pt(1, 1), geom.Pt(1, 1)); err == nil {
		t.Error("degenerate edge should fail")
	}
	// Discontiguous edges.
	if err := ac.AddEdge(geom.Pt(0, 0), geom.Pt(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := ac.AddEdge(geom.Pt(5, 5), geom.Pt(6, 6)); err == nil {
		t.Error("discontiguous edge should fail")
	}
	// Unclosed ring.
	ac2, _ := NewAccumulator(b.BoundingBox())
	ac2.BeginPolygon()
	ac2.AddEdge(geom.Pt(0, 1), geom.Pt(1, 1))
	ac2.AddEdge(geom.Pt(1, 1), geom.Pt(1, 0))
	ac2.AddEdge(geom.Pt(1, 0), geom.Pt(0, 0))
	if err := ac2.EndPolygon(); err == nil {
		t.Error("unclosed ring should fail")
	}
	// Too few edges.
	ac3, _ := NewAccumulator(b.BoundingBox())
	ac3.BeginPolygon()
	ac3.AddEdge(geom.Pt(0, 0), geom.Pt(1, 1))
	ac3.AddEdge(geom.Pt(1, 1), geom.Pt(0, 0))
	if err := ac3.EndPolygon(); err == nil {
		t.Error("2-edge ring should fail")
	}
	// Counter-clockwise ring.
	ac4, _ := NewAccumulator(b.BoundingBox())
	ac4.BeginPolygon()
	ccw := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	for i := range ccw {
		if err := ac4.AddEdge(ccw[i], ccw[(i+1)%4]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ac4.EndPolygon(); err == nil {
		t.Error("counter-clockwise ring should fail")
	}
	// Relation/Areas with an open ring.
	ac5, _ := NewAccumulator(b.BoundingBox())
	ac5.BeginPolygon()
	if _, err := ac5.Relation(); err == nil {
		t.Error("Relation with open ring should fail")
	}
	if _, err := ac5.Areas(); err == nil {
		t.Error("Areas with open ring should fail")
	}
	// Relation with no edges.
	ac6, _ := NewAccumulator(b.BoundingBox())
	if _, err := ac6.Relation(); err == nil {
		t.Error("Relation with no edges should fail")
	}
	if _, err := ac6.Percent(); err == nil {
		t.Error("Percent with no edges should fail")
	}
}

func TestComputeAllPairs(t *testing.T) {
	regions := []NamedRegion{
		{Name: "b", Region: refB()},
		{Name: "a", Region: box(2, -5, 8, -1)},
		{Name: "c", Region: box(12, 2, 14, 10)},
	}
	got, err := ComputeAllPairs(regions)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("pairs = %d, want 6", len(got))
	}
	// Sorted by (primary, reference).
	for i := 1; i < len(got); i++ {
		if got[i-1].Primary > got[i].Primary ||
			(got[i-1].Primary == got[i].Primary && got[i-1].Reference > got[i].Reference) {
			t.Fatalf("not sorted at %d: %v", i, got)
		}
	}
	// Every entry equals a direct computation.
	byName := map[string]geom.Region{}
	for _, r := range regions {
		byName[r.Name] = r.Region
	}
	for _, pr := range got {
		want, err := ComputeCDR(byName[pr.Primary], byName[pr.Reference])
		if err != nil {
			t.Fatal(err)
		}
		if pr.Relation != want {
			t.Errorf("%s vs %s: batch %v != direct %v", pr.Primary, pr.Reference, pr.Relation, want)
		}
	}
	// a vs b must be S (Fig. 1b).
	for _, pr := range got {
		if pr.Primary == "a" && pr.Reference == "b" && pr.Relation != S {
			t.Errorf("a vs b = %v, want S", pr.Relation)
		}
	}
}

func TestComputeAllPairsErrors(t *testing.T) {
	if got, err := ComputeAllPairs(nil); err != nil || got != nil {
		t.Error("empty input should be a no-op")
	}
	if _, err := ComputeAllPairs([]NamedRegion{
		{Name: "", Region: refB()}, {Name: "x", Region: refB()},
	}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := ComputeAllPairs([]NamedRegion{
		{Name: "x", Region: refB()}, {Name: "x", Region: refB()},
	}); err == nil {
		t.Error("duplicate name should fail")
	}
	if _, err := ComputeAllPairs([]NamedRegion{
		{Name: "x", Region: refB()}, {Name: "y", Region: geom.Region{}},
	}); err == nil {
		t.Error("empty region should fail")
	}
}

func TestFindRelated(t *testing.T) {
	b := refB()
	candidates := []NamedRegion{
		{Name: "south", Region: box(2, -5, 8, -1)},
		{Name: "east", Region: box(12, 2, 14, 5)},
		{Name: "northish", Region: box(2, 7, 8, 9)},
		{Name: "farnorthwest", Region: box(-9, 8, -6, 10)},
	}
	got, err := FindRelated(candidates, b, NewRelationSet(S, N))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "northish" || got[1] != "south" {
		t.Errorf("FindRelated = %v", got)
	}
	if _, err := FindRelated(candidates, b, RelationSet{}); err == nil {
		t.Error("empty allowed set should fail")
	}
	line := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)))
	if _, err := FindRelated(candidates, line, NewRelationSet(S)); err == nil {
		t.Error("degenerate reference should fail")
	}
}

func BenchmarkAccumulator(b *testing.B) {
	ref := refB()
	a := example3Quadrangle()
	bb := ref.BoundingBox()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ac, err := NewAccumulator(bb)
		if err != nil {
			b.Fatal(err)
		}
		if err := ac.AddRegion(a); err != nil {
			b.Fatal(err)
		}
		if _, err := ac.Relation(); err != nil {
			b.Fatal(err)
		}
	}
}
