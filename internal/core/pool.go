package core

import (
	"sync"

	"cardirect/internal/geom"
)

// runPool runs work on a pool of the given size. One worker executes on the
// calling goroutine (no spawn, deterministic profiling); more fan out and
// join. Every worker runs the same closure — work distribution happens inside
// work via an atomic claim counter, the scheme shared by the batch engines
// and the relation store's delta recomputation.
func runPool(workers int, work func()) {
	if workers <= 1 {
		work()
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// scratchPool recycles Scratch values for the one-shot convenience paths
// (ComputeCDR, ComputeCDRPct, Relate with a nil scratch): callers outside the
// batch engine stop paying one split-buffer allocation per call. Batch
// workers still own a private Scratch for their whole run — a pool get/put
// per pair would be pure overhead there.
var scratchPool = sync.Pool{
	New: func() any {
		return &Scratch{buf: make([]geom.Segment, 0, 8)}
	},
}

// getScratch takes a warmed Scratch from the pool.
func getScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// putScratch returns a Scratch to the pool. The split buffer keeps its grown
// capacity, so steady-state callers converge on zero allocations.
func putScratch(sc *Scratch) { scratchPool.Put(sc) }
