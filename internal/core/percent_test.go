package core

import (
	"math"
	"testing"
	"testing/quick"

	"cardirect/internal/geom"
)

func TestTrapezoidExpressions(t *testing.T) {
	// E_l over the clockwise unit square against y = 0 sums to +1 (the area)
	// regardless of the line, because the −2l terms telescope.
	sq := geom.Poly(geom.Pt(0, 1), geom.Pt(1, 1), geom.Pt(1, 0), geom.Pt(0, 0))
	for _, l := range []float64{0, -3, 7} {
		var s float64
		for i := 0; i < sq.NumEdges(); i++ {
			e := sq.Edge(i)
			s += El(e.A, e.B, l)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("ΣE_%g = %v, want 1", l, s)
		}
	}
	// ΣE'_m over a clockwise ring is −area.
	for _, m := range []float64{0, 5} {
		var s float64
		for i := 0; i < sq.NumEdges(); i++ {
			e := sq.Edge(i)
			s += Em(e.A, e.B, m)
		}
		if math.Abs(s+1) > 1e-12 {
			t.Errorf("ΣE'_%g = %v, want -1", m, s)
		}
	}
	// Antisymmetry: E_l(AB) = −E_l(BA), E'_m(AB) = −E'_m(BA).
	a, b := geom.Pt(1, 2), geom.Pt(4, 7)
	if El(a, b, 1) != -El(b, a, 1) {
		t.Error("E_l not antisymmetric")
	}
	if Em(a, b, 1) != -Em(b, a, 1) {
		t.Error("E'_m not antisymmetric")
	}
	// Definition 4 example value: the trapezoid between AB and the line.
	// A=(0,2), B=(4,4) against y=0: area = (2+4)/2·4 = 12.
	if got := El(geom.Pt(0, 2), geom.Pt(4, 4), 0); got != 12 {
		t.Errorf("E_0 = %v, want 12", got)
	}
	// E'_m: A=(2,0), B=(4,4) against x=0: (4−0)(2+4−0)/2 = 12.
	if got := Em(geom.Pt(2, 0), geom.Pt(4, 4), 0); got != 12 {
		t.Errorf("E'_0 = %v, want 12", got)
	}
}

func TestComputeCDRPctFig1c(t *testing.T) {
	// Fig. 1c: region c is 50% northeast and 50% east of b.
	b := refB() // mbb [0,10]×[0,6]
	c := box(12, 2, 14, 10)
	m, areas, err := ComputeCDRPct(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Get(TileNE)-50) > 1e-9 || math.Abs(m.Get(TileE)-50) > 1e-9 {
		t.Errorf("NE/E = %v/%v, want 50/50", m.Get(TileNE), m.Get(TileE))
	}
	if math.Abs(m.Sum()-100) > 1e-9 {
		t.Errorf("matrix sum = %v", m.Sum())
	}
	if math.Abs(areas.Total()-c.Area()) > 1e-9 {
		t.Errorf("total area = %v, want %v", areas.Total(), c.Area())
	}
}

func TestComputeCDRPctSingleTile(t *testing.T) {
	b := refB()
	for _, tc := range []struct {
		a    geom.Region
		tile Tile
	}{
		{box(2, 2, 8, 4), TileB},
		{box(2, -4, 8, -1), TileS},
		{box(-4, -4, -1, -1), TileSW},
		{box(-4, 2, -1, 4), TileW},
		{box(-4, 7, -1, 9), TileNW},
		{box(2, 7, 8, 9), TileN},
		{box(11, 7, 13, 9), TileNE},
		{box(11, 2, 13, 4), TileE},
		{box(11, -4, 13, -1), TileSE},
	} {
		m, areas, err := ComputeCDRPct(tc.a, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Get(tc.tile)-100) > 1e-9 {
			t.Errorf("tile %v pct = %v, want 100", tc.tile, m.Get(tc.tile))
		}
		if math.Abs(areas[tc.tile]-tc.a.Area()) > 1e-9 {
			t.Errorf("tile %v area = %v, want %v", tc.tile, areas[tc.tile], tc.a.Area())
		}
	}
}

func TestComputeCDRPctKnownSplit(t *testing.T) {
	b := refB()
	// Box straddling W|B|E: x from −5 to 15 at y∈[1,5] → areas 20/40/20,
	// i.e. 25%/50%/25%.
	a := box(-5, 1, 15, 5)
	m, _, err := ComputeCDRPct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Get(TileW)-25) > 1e-9 || math.Abs(m.Get(TileB)-50) > 1e-9 || math.Abs(m.Get(TileE)-25) > 1e-9 {
		t.Errorf("W/B/E = %v/%v/%v, want 25/50/25", m.Get(TileW), m.Get(TileB), m.Get(TileE))
	}
	// Box straddling all nine tiles: x ∈ [−10, 20], y ∈ [−6, 12].
	// Column widths 10/10/10, row heights 6/6/6 → every tile that shares a
	// row/col gets its exact share.
	a9 := box(-10, -6, 20, 12)
	m9, areas9, err := ComputeCDRPct(a9, b)
	if err != nil {
		t.Fatal(err)
	}
	wantArea := map[Tile]float64{
		TileSW: 60, TileS: 60, TileSE: 60,
		TileW: 60, TileB: 60, TileE: 60,
		TileNW: 60, TileN: 60, TileNE: 60,
	}
	for tile, w := range wantArea {
		if math.Abs(areas9[tile]-w) > 1e-9 {
			t.Errorf("tile %v area = %v, want %v", tile, areas9[tile], w)
		}
	}
	if math.Abs(m9.Sum()-100) > 1e-9 {
		t.Errorf("sum = %v", m9.Sum())
	}
}

func TestComputeCDRPctTriangle(t *testing.T) {
	b := refB()
	// Right triangle in the N/NE area: vertices (8,6), (8,10), (14,6),
	// clockwise: (8,6)→(8,10)→(14,6). Total area 12. The part east of
	// x=10: triangle cut at x=10 → sub-triangle with vertices (10,6),
	// (10, 8·…): line from (8,10) to (14,6): at x=10, y = 10 − (2/6)·4 =
	// 8.666…; area east = ½·4·(8.666…−6) = 5.333…; area in N = 12 − 5.333… = 6.666….
	a := geom.Rgn(geom.Poly(geom.Pt(8, 6), geom.Pt(8, 10), geom.Pt(14, 6)))
	_, areas, err := ComputeCDRPct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	eastArea := 0.5 * 4 * (10 - 6 - 4.0/3)
	if math.Abs(areas[TileNE]-eastArea) > 1e-9 {
		t.Errorf("NE area = %v, want %v", areas[TileNE], eastArea)
	}
	if math.Abs(areas[TileN]-(12-eastArea)) > 1e-9 {
		t.Errorf("N area = %v, want %v", areas[TileN], 12-eastArea)
	}
	if areas[TileB] > 1e-12 {
		t.Errorf("B area = %v, want 0 (triangle only touches the line)", areas[TileB])
	}
}

func TestComputeCDRPctBTileViaSubtraction(t *testing.T) {
	b := refB()
	// A box spanning B and N: y ∈ [3, 9] over x ∈ [2, 8] → B area 18, N 18.
	a := box(2, 3, 8, 9)
	_, areas, err := ComputeCDRPct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(areas[TileB]-18) > 1e-9 || math.Abs(areas[TileN]-18) > 1e-9 {
		t.Errorf("B/N = %v/%v, want 18/18", areas[TileB], areas[TileN])
	}
}

func TestComputeCDRPctExample3MatchesQualitative(t *testing.T) {
	b := refB()
	a := example3Quadrangle()
	m, areas, err := ComputeCDRPct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	qual, _ := ComputeCDR(a, b)
	if got := m.Relation(1e-9); got != qual {
		t.Errorf("pct-derived relation %v != qualitative %v", got, qual)
	}
	if math.Abs(areas.Total()-a.Area()) > 1e-9 {
		t.Errorf("areas total %v != region area %v", areas.Total(), a.Area())
	}
}

func TestComputeCDRPctDisconnectedWithHole(t *testing.T) {
	b := box(4, 4, 6, 6)
	// Ring around mbb(b) (hole strictly containing it) + a far blob in SE.
	left := geom.Poly(geom.Pt(0, 10), geom.Pt(5, 10), geom.Pt(5, 9),
		geom.Pt(1, 9), geom.Pt(1, 1), geom.Pt(5, 1), geom.Pt(5, 0), geom.Pt(0, 0))
	right := geom.Poly(geom.Pt(5, 10), geom.Pt(10, 10), geom.Pt(10, 0),
		geom.Pt(5, 0), geom.Pt(5, 1), geom.Pt(9, 1), geom.Pt(9, 9), geom.Pt(5, 9))
	blob := geom.Poly(geom.Pt(12, 1), geom.Pt(13, 1), geom.Pt(13, 0), geom.Pt(12, 0))
	a := geom.Rgn(left, right, blob)
	m, areas, err := ComputeCDRPct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if areas[TileB] > 1e-12 {
		t.Errorf("hole: B area = %v, want 0", areas[TileB])
	}
	if math.Abs(areas.Total()-a.Area()) > 1e-9 {
		t.Errorf("total = %v, want %v", areas.Total(), a.Area())
	}
	if m.Get(TileSE) <= 0 {
		t.Error("SE blob lost")
	}
}

func TestComputeCDRPctErrors(t *testing.T) {
	b := refB()
	if _, _, err := ComputeCDRPct(geom.Region{}, b); err == nil {
		t.Error("empty primary should error")
	}
	if _, _, err := ComputeCDRPct(b, geom.Region{}); err == nil {
		t.Error("empty reference should error")
	}
	line := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)))
	if _, _, err := ComputeCDRPct(b, line); err == nil {
		t.Error("degenerate reference should error")
	}
}

// Property: for random boxes, the per-tile areas equal the analytic
// rectangle–strip intersections, the total matches, and the percentage
// matrix sums to 100.
func TestComputeCDRPctBoxExactProperty(t *testing.T) {
	b := refB()
	g, _ := NewGrid(b.BoundingBox())
	f := func(x8, y8 int8, w8, h8 uint8) bool {
		x := float64(x8 % 20)
		y := float64(y8 % 12)
		w := 1 + float64(w8%20)
		h := 1 + float64(h8%12)
		a := box(x, y, x+w, y+h)
		m, areas, err := ComputeCDRPct(a, b)
		if err != nil {
			return false
		}
		colLo := []float64{negInf, g.M1, g.M2}
		colHi := []float64{g.M1, g.M2, posInf}
		rowLo := []float64{negInf, g.L1, g.L2}
		rowHi := []float64{g.L1, g.L2, posInf}
		for c := 0; c < 3; c++ {
			for rw := 0; rw < 3; rw++ {
				wantW := min2(colHi[c], x+w) - max2(colLo[c], x)
				wantH := min2(rowHi[rw], y+h) - max2(rowLo[rw], y)
				want := max2(wantW, 0) * max2(wantH, 0)
				if math.Abs(areas[TileAt(c, rw)]-want) > 1e-9 {
					return false
				}
			}
		}
		return math.Abs(m.Sum()-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the percentage matrix is invariant under joint translation and
// joint uniform scaling of both regions.
func TestComputeCDRPctInvarianceProperty(t *testing.T) {
	b := refB()
	a := example3Quadrangle()
	want, _, err := ComputeCDRPct(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f := func(dx, dy int8, s8 uint8) bool {
		d := geom.Pt(float64(dx), float64(dy))
		s := 1 + float64(s8%9)
		m1, _, err := ComputeCDRPct(a.Translate(d), b.Translate(d))
		if err != nil || !m1.ApproxEqual(want, 1e-6) {
			return false
		}
		m2, _, err := ComputeCDRPct(a.Scale(s), b.Scale(s))
		return err == nil && m2.ApproxEqual(want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: qualitative Compute-CDR and the positive-area tiles of
// Compute-CDR% agree on random multi-box regions (the two algorithms must
// tell the same qualitative story).
func TestQualitativeQuantitativeAgreementProperty(t *testing.T) {
	b := refB()
	f := func(cs [4][4]int8) bool {
		var a geom.Region
		for _, c := range cs {
			x := float64(c[0] % 20)
			y := float64(c[1] % 12)
			w := 1 + float64(uint8(c[2])%15)
			h := 1 + float64(uint8(c[3])%9)
			a = append(a, box(x, y, x+w, y+h)...)
		}
		qual, err := ComputeCDR(a, b)
		if err != nil {
			return false
		}
		_, areas, err := ComputeCDRPct(a, b)
		if err != nil {
			return false
		}
		// Note: overlapping random boxes double-count areas, but tile
		// *membership* still agrees because overlap only inflates, never
		// cancels (all polygons are clockwise).
		return areas.Relation(1e-12) == qual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPercentMatrixString(t *testing.T) {
	var m PercentMatrix
	m.Set(TileNE, 50)
	m.Set(TileE, 50)
	got := m.String()
	want := "[   0.0%   0.0%  50.0% ]\n[   0.0%   0.0%  50.0% ]\n[   0.0%   0.0%   0.0% ]"
	if got != want {
		t.Errorf("String =\n%s\nwant\n%s", got, want)
	}
}

func TestTileAreasRelationEps(t *testing.T) {
	var a TileAreas
	a[TileN] = 99.999
	a[TileB] = 0.001
	if got := a.Relation(0); got != Rel(TileN, TileB) {
		t.Errorf("eps=0: %v", got)
	}
	if got := a.Relation(1e-4); got != N {
		t.Errorf("eps=1e-4: %v", got)
	}
	var zero TileAreas
	if got := zero.Relation(0); got != 0 {
		t.Errorf("zero areas: %v", got)
	}
}
