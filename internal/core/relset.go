package core

import (
	"strings"
)

// RelationSet is a set of basic relations — an element of the powerset 2^D*
// of the paper, used to represent indefinite (disjunctive) cardinal
// direction information such as a {N, W} b. It is a 512-bit set indexed by
// the Relation bitmask, so all set operations are O(1) in the number of
// member relations.
type RelationSet [8]uint64

// NewRelationSet builds a set from the given relations; invalid (empty)
// relations are ignored.
func NewRelationSet(rs ...Relation) RelationSet {
	var s RelationSet
	for _, r := range rs {
		s.Add(r)
	}
	return s
}

// Add inserts a basic relation into the set. Adding an invalid relation is
// a no-op.
func (s *RelationSet) Add(r Relation) {
	if !r.IsValid() {
		return
	}
	s[r>>6] |= 1 << (r & 63)
}

// Remove deletes r from the set.
func (s *RelationSet) Remove(r Relation) {
	if !r.IsValid() {
		return
	}
	s[r>>6] &^= 1 << (r & 63)
}

// Contains reports whether r is a member of the set.
func (s RelationSet) Contains(r Relation) bool {
	if !r.IsValid() {
		return false
	}
	return s[r>>6]&(1<<(r&63)) != 0
}

// IsEmpty reports whether the set has no members.
func (s RelationSet) IsEmpty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of member relations.
func (s RelationSet) Len() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Union returns the set union of s and u.
func (s RelationSet) Union(u RelationSet) RelationSet {
	var out RelationSet
	for i := range s {
		out[i] = s[i] | u[i]
	}
	return out
}

// Intersect returns the set intersection of s and u.
func (s RelationSet) Intersect(u RelationSet) RelationSet {
	var out RelationSet
	for i := range s {
		out[i] = s[i] & u[i]
	}
	return out
}

// Minus returns the set difference s \ u.
func (s RelationSet) Minus(u RelationSet) RelationSet {
	var out RelationSet
	for i := range s {
		out[i] = s[i] &^ u[i]
	}
	return out
}

// Equal reports whether s and u have the same members.
func (s RelationSet) Equal(u RelationSet) bool { return s == u }

// Relations returns the members in increasing bitmask order.
func (s RelationSet) Relations() []Relation {
	out := make([]Relation, 0, s.Len())
	for r := Relation(1); r <= RelationMask; r++ {
		if s.Contains(r) {
			out = append(out, r)
		}
	}
	return out
}

// Universe returns the set of all 511 basic relations — the top element of
// 2^D*, representing complete ignorance.
func Universe() RelationSet {
	var s RelationSet
	for r := Relation(1); r <= RelationMask; r++ {
		s.Add(r)
	}
	return s
}

// String renders the set as "{R1, R2, …}" with members in canonical relation
// notation; a singleton renders without braces, matching how definite
// information is written in the paper.
func (s RelationSet) String() string {
	rs := s.Relations()
	switch len(rs) {
	case 0:
		return "{}"
	case 1:
		return rs[0].String()
	}
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ParseRelationSet parses either a single relation ("B:S") or a braced,
// comma-separated disjunction ("{N, N:NE, NW:N}").
func ParseRelationSet(str string) (RelationSet, error) {
	var s RelationSet
	t := strings.TrimSpace(str)
	if strings.HasPrefix(t, "{") && strings.HasSuffix(t, "}") {
		inner := strings.TrimSpace(t[1 : len(t)-1])
		if inner == "" {
			return s, nil
		}
		for _, part := range strings.Split(inner, ",") {
			r, err := ParseRelation(part)
			if err != nil {
				return RelationSet{}, err
			}
			s.Add(r)
		}
		return s, nil
	}
	r, err := ParseRelation(t)
	if err != nil {
		return RelationSet{}, err
	}
	s.Add(r)
	return s, nil
}
