package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cardirect/internal/workload"
)

// TestRelationStoreConcurrentReadsDuringEdits hammers cached reads against
// a stream of geometry edits. Run under -race (make race / make check) it
// proves the store's RWMutex contract: Relation/Percent/Pairs/Names/Stats
// may be called from any goroutine while another mutates via
// SetGeometry/Add/Remove/Rename. Readers tolerate ErrUnknownRegion for
// regions that an editor has removed or renamed mid-flight, but never a
// torn read or a data race.
func TestRelationStoreConcurrentReadsDuringEdits(t *testing.T) {
	const n = 24
	gen := workload.New(41)
	base := gen.Scatter(n, 8)
	regions := make([]NamedRegion, n)
	for i, r := range base {
		regions[i] = NamedRegion{Name: fmt.Sprintf("r%02d", i), Region: r}
	}
	st, err := NewRelationStore(regions, StoreOptions{Pct: true})
	if err != nil {
		t.Fatal(err)
	}

	// Fresh geometries for the editor to cycle through.
	alt := gen.Scatter(n, 8)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	readErr := make(chan error, 1)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := fmt.Sprintf("r%02d", i%n)
				b := fmt.Sprintf("r%02d", (i+1)%n)
				if _, err := st.Relation(a, b); err != nil && !errors.Is(err, ErrUnknownRegion) {
					select {
					case readErr <- fmt.Errorf("Relation(%s,%s): %w", a, b, err):
					default:
					}
					return
				}
				if _, err := st.Percent(a, b); err != nil && !errors.Is(err, ErrUnknownRegion) {
					select {
					case readErr <- fmt.Errorf("Percent(%s,%s): %w", a, b, err):
					default:
					}
					return
				}
				switch i % 3 {
				case 0:
					st.Names()
				case 1:
					st.Pairs()
				case 2:
					st.Stats()
				}
				i++
			}
		}(g)
	}

	// Editor: geometry rewrites, plus churn through remove/re-add and a
	// rename round-trip so readers see membership changes too.
	const edits = 150
	for i := 0; i < edits; i++ {
		name := fmt.Sprintf("r%02d", i%n)
		switch i % 5 {
		case 0, 1, 2:
			if err := st.SetGeometry(name, alt[(i+7)%n]); err != nil {
				t.Fatalf("SetGeometry %s: %v", name, err)
			}
		case 3:
			if err := st.Remove(name); err != nil {
				t.Fatalf("Remove %s: %v", name, err)
			}
			if err := st.Add(name, alt[i%n]); err != nil {
				t.Fatalf("Add %s: %v", name, err)
			}
		case 4:
			tmp := name + "-tmp"
			if err := st.Rename(name, tmp); err != nil {
				t.Fatalf("Rename %s: %v", name, err)
			}
			if err := st.Rename(tmp, name); err != nil {
				t.Fatalf("Rename back %s: %v", tmp, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}

	if st.Len() != n {
		t.Fatalf("store drifted: Len = %d, want %d", st.Len(), n)
	}
	// After the dust settles the cache must equal a from-scratch batch.
	names := st.Names()
	final := make([]NamedRegion, 0, n)
	for _, name := range names {
		p, ok := st.Prepared(name)
		if !ok {
			t.Fatalf("Prepared(%s) missing", name)
		}
		final = append(final, NamedRegion{Name: name, Region: p.Region})
	}
	want, err := ComputeAllPairs(final)
	if err != nil {
		t.Fatal(err)
	}
	got := st.Pairs()
	if len(got) != len(want) {
		t.Fatalf("pairs: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: cached %+v, recomputed %+v", i, got[i], want[i])
		}
	}
}
