package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// batchWorkload builds n named regions with a deliberate mix of MBB
// configurations: scattered stars (many strictly-disjoint boxes), nested
// regions (contained MBBs), and large regions overlapping several grid
// lines (no fast path).
func batchWorkload(seed int64, n int) []NamedRegion {
	g := workload.New(seed)
	scattered := g.Scatter(n, 8)
	out := make([]NamedRegion, n)
	for i, r := range scattered {
		out[i] = NamedRegion{Name: fmt.Sprintf("r%03d", i), Region: r}
	}
	return out
}

// TestComputeAllPairsDifferential asserts the three implementations agree
// exactly: parallel ≡ sequential ≡ unpruned ≡ pairwise ComputeCDR, over
// several seeds.
func TestComputeAllPairsDifferential(t *testing.T) {
	for _, seed := range []int64{1, 20040314, 777} {
		regions := batchWorkload(seed, 40)
		seq, err := ComputeAllPairs(regions)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ComputeAllPairsParallel(regions)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("seed %d: parallel output differs from sequential", seed)
		}
		noPrune, st, err := ComputeAllPairsOpt(regions, BatchOptions{Workers: 1, NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, noPrune) {
			t.Fatalf("seed %d: pruned output differs from unpruned", seed)
		}
		if st.PruneSingleTile != 0 || st.PruneBand != 0 {
			t.Fatalf("seed %d: NoPrune recorded prune hits: %+v", seed, st)
		}
		_, stPruned, err := ComputeAllPairsOpt(regions, BatchOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if stPruned.PruneSingleTile+stPruned.PruneBand == 0 {
			t.Errorf("seed %d: scattered workload should hit the prune path", seed)
		}
		// Pairwise ground truth through the paper's reference algorithm.
		byName := map[string]geom.Region{}
		for _, r := range regions {
			byName[r.Name] = r.Region
		}
		for _, pr := range seq {
			want, err := ComputeCDR(byName[pr.Primary], byName[pr.Reference])
			if err != nil {
				t.Fatal(err)
			}
			if pr.Relation != want {
				t.Fatalf("seed %d: %s vs %s: batch %v != ComputeCDR %v",
					seed, pr.Primary, pr.Reference, pr.Relation, want)
			}
		}
	}
}

// TestComputeAllPairsWorkerCounts: every worker count produces the same,
// sorted output. Run with -race this also exercises the pool for data
// races.
func TestComputeAllPairsWorkerCounts(t *testing.T) {
	regions := batchWorkload(42, 30)
	want, err := ComputeAllPairs(regions)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 30*29 {
		t.Fatalf("pairs = %d, want %d", len(want), 30*29)
	}
	for i := 1; i < len(want); i++ {
		if want[i-1].Primary > want[i].Primary ||
			(want[i-1].Primary == want[i].Primary && want[i-1].Reference > want[i].Reference) {
			t.Fatalf("output not sorted at %d", i)
		}
	}
	for _, workers := range []int{2, 3, 4, 7, 16, 64} {
		got, _, err := ComputeAllPairsOpt(regions, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: output differs from sequential", workers)
		}
	}
}

// TestContainedMBBPairs exercises the contained-box configurations
// explicitly: a small region strictly inside a big one's box is answered by
// the single-tile path, and the big one against the small one takes the
// full path; both must match ComputeCDR.
func TestContainedMBBPairs(t *testing.T) {
	regions := []NamedRegion{
		{Name: "big", Region: geom.Rgn(workload.Box(0, 0, 20, 20))},
		{Name: "small", Region: geom.Rgn(workload.Box(8, 8, 12, 12))},
		{Name: "west", Region: geom.Rgn(workload.Box(-30, 5, -25, 15))},
	}
	got, st, err := ComputeAllPairsOpt(regions, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.PruneSingleTile == 0 {
		t.Errorf("contained pair should hit the single-tile path: %+v", st)
	}
	for _, pr := range got {
		var a, b geom.Region
		for _, r := range regions {
			if r.Name == pr.Primary {
				a = r.Region
			}
			if r.Name == pr.Reference {
				b = r.Region
			}
		}
		want, err := ComputeCDR(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Relation != want {
			t.Errorf("%s vs %s = %v, want %v", pr.Primary, pr.Reference, pr.Relation, want)
		}
	}
}

// TestFindRelatedDegenerateCandidate is the regression test for the silent
// invalid-relation bug: a degenerate candidate must surface as a named
// error, not as a silent non-match.
func TestFindRelatedDegenerateCandidate(t *testing.T) {
	ref := geom.Rgn(workload.Box(0, 0, 10, 6))
	candidates := []NamedRegion{
		{Name: "ok", Region: geom.Rgn(workload.Box(2, -5, 8, -1))},
		{Name: "empty", Region: geom.Region{}},
	}
	_, err := FindRelated(candidates, ref, NewRelationSet(S))
	if !errors.Is(err, ErrDegenerateRegion) {
		t.Errorf("FindRelated err = %v, want ErrDegenerateRegion", err)
	}
	_, err = FindRelatedParallel(candidates, ref, NewRelationSet(S))
	if !errors.Is(err, ErrDegenerateRegion) {
		t.Errorf("FindRelatedParallel err = %v, want ErrDegenerateRegion", err)
	}
	// A region of edgeless polygons is just as degenerate.
	candidates[1].Region = geom.Region{geom.Polygon{}}
	if _, err := FindRelated(candidates, ref, NewRelationSet(S)); !errors.Is(err, ErrDegenerateRegion) {
		t.Errorf("edgeless candidate err = %v, want ErrDegenerateRegion", err)
	}
}

// TestFindRelatedParallelMatchesSequential: the worker pool must not change
// the answer.
func TestFindRelatedParallelMatchesSequential(t *testing.T) {
	regions := batchWorkload(9, 60)
	ref := regions[0].Region
	candidates := regions[1:]
	allowed := NewRelationSet(S, N, W, E, Rel(TileS, TileSW), Rel(TileN, TileNE))
	seq, err := FindRelated(candidates, ref, allowed)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FindRelatedParallel(candidates, ref, allowed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel %v != sequential %v", par, seq)
	}
	// And each must agree with direct computation.
	for _, c := range candidates {
		rel, err := ComputeCDR(c.Region, ref)
		if err != nil {
			t.Fatal(err)
		}
		inSeq := false
		for _, name := range seq {
			if name == c.Name {
				inSeq = true
			}
		}
		if allowed.Contains(rel) != inSeq {
			t.Errorf("%s: allowed=%v, in result=%v", c.Name, allowed.Contains(rel), inSeq)
		}
	}
}

// TestComputeAllPairsPreparedReuse: callers holding Prepared values get the
// same results without re-preparation.
func TestComputeAllPairsPreparedReuse(t *testing.T) {
	regions := batchWorkload(5, 20)
	want, err := ComputeAllPairs(regions)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := PrepareAll(regions)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ComputeAllPairsPrepared(ps, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("prepared-reuse output differs")
	}
	// A region unusable as reference fails the whole batch, by name.
	line, err := Prepare("line", geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0))))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ComputeAllPairsPrepared(append(ps, line), BatchOptions{}); err == nil {
		t.Error("degenerate reference should fail the prepared batch")
	}
}

func BenchmarkRelatePreparedPair(b *testing.B) {
	g := workload.New(20040314)
	c := g.ScalingSweep([]int{1024})[0]
	pa, err := Prepare("a", c.A)
	if err != nil {
		b.Fatal(err)
	}
	pb, err := Prepare("b", c.B)
	if err != nil {
		b.Fatal(err)
	}
	sc := &Scratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Relate(pa, pb, sc); err != nil {
			b.Fatal(err)
		}
	}
}
