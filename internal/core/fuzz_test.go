package core

import (
	"math"
	"testing"

	"cardirect/internal/geom"
)

// FuzzParseRelation checks the relation parser never panics and that every
// successfully parsed relation roundtrips through its canonical String form.
func FuzzParseRelation(f *testing.F) {
	for _, seed := range []string{
		"B", "B:S:SW", "b:s:sw", "NE:E", "B:S:SW:W:NW:N:NE:E:SE",
		"", ":", "B::S", "B:S:B", "X", "B S", "B,S", "b:S:w",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRelation(s)
		if err != nil {
			return
		}
		if !r.IsValid() {
			t.Fatalf("ParseRelation(%q) returned invalid relation %v without error", s, r)
		}
		back, err := ParseRelation(r.String())
		if err != nil || back != r {
			t.Fatalf("roundtrip failed for %q: %v → %v (%v)", s, r, back, err)
		}
	})
}

// FuzzParseRelationSet does the same for disjunctive notation.
func FuzzParseRelationSet(f *testing.F) {
	for _, seed := range []string{
		"{}", "{N}", "{N, NW:N}", "B:S", "{N,}", "{,}", "{N NW}", "{",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParseRelationSet(s)
		if err != nil {
			return
		}
		back, err := ParseRelationSet(set.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", set.String(), err)
		}
		if !back.Equal(set) {
			t.Fatalf("roundtrip changed the set: %v vs %v", set, back)
		}
	})
}

// FuzzMBBFastPath cross-checks the batch engine's MBB tile-pruning fast
// path against full edge-splitting on randomly placed primaries (up to two
// rectangles and a triangle) versus a rectangular reference. Coordinates
// are quantized to a 1/4 lattice so exact on-line contact — the tie-break
// territory — occurs constantly, without manufacturing sub-ulp slivers the
// floating-point split could misround.
func FuzzMBBFastPath(f *testing.F) {
	f.Add(0.0, 0.0, 2.0, 2.0, 4.0, 0.0, 6.0, 2.0, uint8(1))
	f.Add(-3.0, 1.0, 0.0, 5.0, 0.0, 0.0, 10.0, 6.0, uint8(1))   // touching x = m1
	f.Add(2.0, 2.0, 8.0, 4.0, 0.0, 0.0, 10.0, 6.0, uint8(3))    // contained
	f.Add(-4.0, -2.0, -1.0, 8.0, 0.0, 0.0, 10.0, 6.0, uint8(7)) // west column
	f.Add(1.0, -9.0, 3.0, -1.0, 0.0, 0.0, 4.0, 4.0, uint8(5))   // touching y = l1
	f.Fuzz(func(t *testing.T, ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 float64, shape uint8) {
		q := func(v float64) (float64, bool) {
			if v != v || v > 64 || v < -64 {
				return 0, false
			}
			return mathRound4(v), true
		}
		coords := []*float64{&ax0, &ay0, &ax1, &ay1, &bx0, &by0, &bx1, &by1}
		for _, c := range coords {
			v, ok := q(*c)
			if !ok {
				t.Skip("out of range")
			}
			*c = v
		}
		if bx1 <= bx0 || by1 <= by0 {
			t.Skip("degenerate reference")
		}
		if ax1 <= ax0 || ay1 <= ay0 {
			t.Skip("degenerate primary")
		}
		b := geom.Rgn(geom.Poly(
			geom.Pt(bx0, by1), geom.Pt(bx1, by1), geom.Pt(bx1, by0), geom.Pt(bx0, by0),
		))
		a := geom.Region{geom.Poly(
			geom.Pt(ax0, ay1), geom.Pt(ax1, ay1), geom.Pt(ax1, ay0), geom.Pt(ax0, ay0),
		)}
		if shape&1 != 0 { // second rectangle, offset east
			w, h := ax1-ax0, ay1-ay0
			a = append(a, geom.Poly(
				geom.Pt(ax0+2*w, ay1+h), geom.Pt(ax1+2*w, ay1+h), geom.Pt(ax1+2*w, ay0+h), geom.Pt(ax0+2*w, ay0+h),
			))
		}
		if shape&2 != 0 { // triangle hanging south-west
			tri := geom.Poly(geom.Pt(ax0, ay0), geom.Pt(ax1, ay0), geom.Pt(ax0, ay0-(ay1-ay0)))
			if tri.SignedArea() != 0 {
				a = append(a, tri.Clockwise())
			}
		}
		prep, err := Prepare("a", a)
		if err != nil {
			t.Skip("unpreparable primary")
		}
		grid, err := NewGrid(b.BoundingBox())
		if err != nil {
			t.Skip("no grid")
		}
		fast, ok := prep.relateFast(grid, nil)
		full := prep.relateFull(grid, grid.Box().Center(), &Scratch{}, nil)
		if ok && fast != full {
			t.Fatalf("fast path %v != full path %v\nprimary %v\nreference grid %+v", fast, full, a, grid)
		}
		// End-to-end: Relate must equal the reference algorithm exactly.
		want, err := ComputeCDR(a, b)
		if err != nil {
			t.Fatalf("ComputeCDR: %v", err)
		}
		refP, err := Prepare("b", b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Relate(prep, refP, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Relate %v != ComputeCDR %v\nprimary %v reference %v", got, want, a, b)
		}
	})
}

// FuzzMBBFastPathPct is the quantitative sibling of FuzzMBBFastPath: on the
// same quarter-lattice rectangle workload it cross-checks the cached-area
// percent fast path against the full Compute-CDR% accumulation, and the
// whole RelatePct pipeline against the reference ComputeCDRPct.
func FuzzMBBFastPathPct(f *testing.F) {
	f.Add(0.0, 0.0, 2.0, 2.0, 4.0, 0.0, 6.0, 2.0, uint8(1))
	f.Add(-3.0, 1.0, 0.0, 5.0, 0.0, 0.0, 10.0, 6.0, uint8(1))   // touching x = m1
	f.Add(2.0, 2.0, 8.0, 4.0, 0.0, 0.0, 10.0, 6.0, uint8(3))    // contained
	f.Add(-4.0, -2.0, -1.0, 8.0, 0.0, 0.0, 10.0, 6.0, uint8(7)) // west column
	f.Add(1.0, -9.0, 3.0, -1.0, 0.0, 0.0, 4.0, 4.0, uint8(5))   // touching y = l1
	f.Fuzz(func(t *testing.T, ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 float64, shape uint8) {
		q := func(v float64) (float64, bool) {
			if v != v || v > 64 || v < -64 {
				return 0, false
			}
			return mathRound4(v), true
		}
		coords := []*float64{&ax0, &ay0, &ax1, &ay1, &bx0, &by0, &bx1, &by1}
		for _, c := range coords {
			v, ok := q(*c)
			if !ok {
				t.Skip("out of range")
			}
			*c = v
		}
		if bx1 <= bx0 || by1 <= by0 {
			t.Skip("degenerate reference")
		}
		if ax1 <= ax0 || ay1 <= ay0 {
			t.Skip("degenerate primary")
		}
		b := geom.Rgn(geom.Poly(
			geom.Pt(bx0, by1), geom.Pt(bx1, by1), geom.Pt(bx1, by0), geom.Pt(bx0, by0),
		))
		a := geom.Region{geom.Poly(
			geom.Pt(ax0, ay1), geom.Pt(ax1, ay1), geom.Pt(ax1, ay0), geom.Pt(ax0, ay0),
		)}
		if shape&1 != 0 { // second rectangle, offset east
			w, h := ax1-ax0, ay1-ay0
			a = append(a, geom.Poly(
				geom.Pt(ax0+2*w, ay1+h), geom.Pt(ax1+2*w, ay1+h), geom.Pt(ax1+2*w, ay0+h), geom.Pt(ax0+2*w, ay0+h),
			))
		}
		if shape&2 != 0 { // triangle hanging south-west
			tri := geom.Poly(geom.Pt(ax0, ay0), geom.Pt(ax1, ay0), geom.Pt(ax0, ay0-(ay1-ay0)))
			if tri.SignedArea() != 0 {
				a = append(a, tri.Clockwise())
			}
		}
		prep, err := Prepare("a", a)
		if err != nil {
			t.Skip("unpreparable primary")
		}
		grid, err := NewGrid(b.BoundingBox())
		if err != nil {
			t.Skip("no grid")
		}
		fastAreas, ok := prep.relatePctFast(grid, nil)
		var fullAreas TileAreas
		_, err = prep.relatePctFullInto(&fullAreas, grid, &Scratch{}, nil)
		if err != nil {
			t.Skip("zero-area primary")
		}
		if ok {
			for _, tile := range Tiles() {
				if !areaClose(fastAreas[tile], fullAreas[tile]) {
					t.Fatalf("fast areas %v != full areas %v at %v\nprimary %v\nreference grid %+v",
						fastAreas, fullAreas, tile, a, grid)
				}
			}
		}
		// End-to-end: RelatePct must match the reference algorithm.
		wantM, wantAreas, err := ComputeCDRPct(a, b)
		if err != nil {
			t.Skip("reference algorithm rejects the pair")
		}
		refP, err := Prepare("b", b)
		if err != nil {
			t.Fatal(err)
		}
		gotM, gotAreas, err := RelatePct(prep, refP, nil)
		if err != nil {
			t.Fatalf("RelatePct: %v", err)
		}
		for _, tile := range Tiles() {
			if !areaClose(gotAreas[tile], wantAreas[tile]) || !pctClose(gotM.Get(tile), wantM.Get(tile)) {
				t.Fatalf("RelatePct diverges from ComputeCDRPct at %v:\nareas %v vs %v\npcts %v vs %v\nprimary %v reference %v",
					tile, gotAreas, wantAreas, gotM, wantM, a, b)
			}
		}
	})
}

// areaClose compares absolute tile areas with a relative-and-absolute
// floating-point tolerance.
func areaClose(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// pctClose compares percentage entries with an absolute tolerance.
func pctClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-7
}

// mathRound4 rounds to the nearest quarter (exact in binary floating point).
func mathRound4(v float64) float64 {
	return math.Round(v*4) / 4
}
