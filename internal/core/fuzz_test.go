package core

import "testing"

// FuzzParseRelation checks the relation parser never panics and that every
// successfully parsed relation roundtrips through its canonical String form.
func FuzzParseRelation(f *testing.F) {
	for _, seed := range []string{
		"B", "B:S:SW", "b:s:sw", "NE:E", "B:S:SW:W:NW:N:NE:E:SE",
		"", ":", "B::S", "B:S:B", "X", "B S", "B,S", "b:S:w",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRelation(s)
		if err != nil {
			return
		}
		if !r.IsValid() {
			t.Fatalf("ParseRelation(%q) returned invalid relation %v without error", s, r)
		}
		back, err := ParseRelation(r.String())
		if err != nil || back != r {
			t.Fatalf("roundtrip failed for %q: %v → %v (%v)", s, r, back, err)
		}
	})
}

// FuzzParseRelationSet does the same for disjunctive notation.
func FuzzParseRelationSet(f *testing.F) {
	for _, seed := range []string{
		"{}", "{N}", "{N, NW:N}", "B:S", "{N,}", "{,}", "{N NW}", "{",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParseRelationSet(s)
		if err != nil {
			return
		}
		back, err := ParseRelationSet(set.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", set.String(), err)
		}
		if !back.Equal(set) {
			t.Fatalf("roundtrip changed the set: %v vs %v", set, back)
		}
	})
}
