package core

import (
	"testing"
	"testing/quick"

	"cardirect/internal/geom"
)

// refB is a reference region whose mbb is [0,10]×[0,6].
func refB() geom.Region {
	return geom.Rgn(geom.Poly(
		geom.Pt(0, 6), geom.Pt(10, 6), geom.Pt(10, 0), geom.Pt(0, 0),
	))
}

// box builds a rectangular one-polygon region.
func box(minX, minY, maxX, maxY float64) geom.Region {
	return geom.Rgn(geom.Poly(
		geom.Pt(minX, maxY), geom.Pt(maxX, maxY), geom.Pt(maxX, minY), geom.Pt(minX, minY),
	))
}

// example3Quadrangle reconstructs the quadrangle (N1 N2 N3 N4) of
// Examples 2–3 of the paper against a reference with mbb [0,10]×[0,6]:
// N1 ∈ W(b), N2, N3 ∈ NW(b), N4 ∈ NE(b); the relation is B:W:NW:N:NE:E and
// Compute-CDR replaces the 4 edges with 9 (N1N2→2, N2N3→1, N3N4→3, N4N1→3).
func example3Quadrangle() geom.Region {
	return geom.Rgn(geom.Poly(
		geom.Pt(0, 2),  // N1 on the W/B boundary line, inside W(b) (tiles are closed)
		geom.Pt(-4, 9), // N2 ∈ NW
		geom.Pt(-2, 7), // N3 ∈ NW
		geom.Pt(16, 8), // N4 ∈ NE
	))
}

func TestComputeCDRSingleTiles(t *testing.T) {
	b := refB()
	cases := []struct {
		a    geom.Region
		want Relation
	}{
		{box(2, 2, 8, 4), B},
		{box(2, -4, 8, -1), S},
		{box(-4, -4, -1, -1), SW},
		{box(-4, 2, -1, 4), W},
		{box(-4, 7, -1, 9), NW},
		{box(2, 7, 8, 9), N},
		{box(11, 7, 13, 9), NE},
		{box(11, 2, 13, 4), E},
		{box(11, -4, 13, -1), SE},
	}
	for _, c := range cases {
		got, err := ComputeCDR(c.a, b)
		if err != nil {
			t.Fatalf("ComputeCDR: %v", err)
		}
		if got != c.want {
			t.Errorf("relation = %v, want %v", got, c.want)
		}
	}
}

func TestComputeCDRFig1(t *testing.T) {
	b := refB()
	// Fig. 1b: a S b.
	a := box(2, -5, 8, -1)
	if got, _ := ComputeCDR(a, b); got != S {
		t.Errorf("Fig 1b: got %v, want S", got)
	}
	// Fig. 1c: c NE:E b.
	c := box(12, 2, 14, 10)
	if got, _ := ComputeCDR(c, b); got != Rel(TileNE, TileE) {
		t.Errorf("Fig 1c: got %v, want NE:E", got)
	}
	// Fig. 1d: d = d1 ∪ … ∪ d8 with d B:S:SW:W:NW:N:E:SE b (no NE).
	d := geom.Region{}
	for _, r := range []geom.Region{
		box(2, 2, 4, 4),     // B
		box(2, -4, 4, -2),   // S
		box(-4, -4, -2, -2), // SW
		box(-4, 2, -2, 4),   // W
		box(-4, 8, -2, 9),   // NW
		box(2, 8, 4, 9),     // N
		box(12, 2, 14, 4),   // E
		box(12, -4, 14, -2), // SE
	} {
		d = append(d, r...)
	}
	want, _ := ParseRelation("B:S:SW:W:NW:N:E:SE")
	if got, _ := ComputeCDR(d, b); got != want {
		t.Errorf("Fig 1d: got %v, want %v", got, want)
	}
}

func TestComputeCDRExample3(t *testing.T) {
	b := refB()
	a := example3Quadrangle()
	if err := a.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	rel, st, err := ComputeCDRStats(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ParseRelation("B:W:NW:N:NE:E")
	if rel != want {
		t.Errorf("Example 3 relation = %v, want %v", rel, want)
	}
	if st.EdgesIn != 4 {
		t.Errorf("EdgesIn = %d, want 4", st.EdgesIn)
	}
	if st.EdgesOut != 9 {
		t.Errorf("EdgesOut = %d, want 9 (the paper's count)", st.EdgesOut)
	}
	if st.Passes != 1 {
		t.Errorf("Passes = %d, want 1 (single-pass claim)", st.Passes)
	}
}

// TestComputeCDRExample2Naive documents why plain vertex classification is
// wrong (Example 2 of the paper): the vertices of the quadrangle fall only
// in W, NW, NE, but the relation is B:W:NW:N:NE:E.
func TestComputeCDRExample2Naive(t *testing.T) {
	b := refB()
	g, err := NewGrid(b.BoundingBox())
	if err != nil {
		t.Fatal(err)
	}
	a := example3Quadrangle()
	vertexTiles := Relation(0)
	for _, v := range a[0] {
		vertexTiles = vertexTiles.With(g.ClassifyPoint(v))
	}
	rel, _ := ComputeCDR(a, b)
	if vertexTiles == rel {
		t.Error("vertex tiles should differ from the true relation (that is the point of Example 2)")
	}
	// The edges expand over tiles N and E that no vertex falls in (N1 lies
	// on the W/B line, so point classification may report W or B for it).
	if vertexTiles.Has(TileN) || vertexTiles.Has(TileE) {
		t.Errorf("vertex tiles = %v; N and E must be missed by vertices", vertexTiles)
	}
}

func TestComputeCDRContainment(t *testing.T) {
	b := refB()
	// A polygon strictly containing mbb(b): all 8 peripheral tiles via
	// edges, plus B via the centre-of-mbb test.
	a := box(-10, -10, 20, 16)
	got, _ := ComputeCDR(a, b)
	want, _ := ParseRelation("B:S:SW:W:NW:N:NE:E:SE")
	if got != want {
		t.Errorf("containing box: got %v, want %v", got, want)
	}
}

func TestComputeCDRRingAroundBox(t *testing.T) {
	// A ring (hole decomposition) whose hole strictly contains mbb(b):
	// the primary has no material in B, and the centre-of-mbb test must not
	// fire for either C-shaped piece.
	b := box(4, 4, 6, 6)
	left := geom.Poly(geom.Pt(0, 10), geom.Pt(5, 10), geom.Pt(5, 9),
		geom.Pt(1, 9), geom.Pt(1, 1), geom.Pt(5, 1), geom.Pt(5, 0), geom.Pt(0, 0))
	right := geom.Poly(geom.Pt(5, 10), geom.Pt(10, 10), geom.Pt(10, 0),
		geom.Pt(5, 0), geom.Pt(5, 1), geom.Pt(9, 1), geom.Pt(9, 9), geom.Pt(5, 9))
	a := geom.Rgn(left, right)
	if err := a.ValidateStrict(); err != nil {
		t.Fatalf("ring fixture: %v", err)
	}
	got, _ := ComputeCDR(a, b)
	if got.Has(TileB) {
		t.Errorf("ring around box: relation %v must not contain B", got)
	}
	want, _ := ParseRelation("S:SW:W:NW:N:NE:E:SE")
	if got != want {
		t.Errorf("ring around box: got %v, want %v", got, want)
	}
}

func TestComputeCDRSharedBoundary(t *testing.T) {
	b := refB()
	// a lies exactly west of b, sharing the line x = 0. By Definition 1
	// (sup_x(a) ≤ inf_x(b)) the relation is W — the interior-side rule must
	// keep the on-line edge out of tile B.
	a := box(-3, 1, 0, 5)
	if got, _ := ComputeCDR(a, b); got != W {
		t.Errorf("shared west boundary: got %v, want W", got)
	}
	// Same on the north side.
	n := box(2, 6, 8, 9)
	if got, _ := ComputeCDR(n, b); got != N {
		t.Errorf("shared north boundary: got %v, want N", got)
	}
	// a = mbb(b) exactly: relation B.
	if got, _ := ComputeCDR(box(0, 0, 10, 6), b); got != B {
		t.Errorf("identical box: got %v, want B", got)
	}
	// Corner touch: a box meeting b exactly at the SW corner of mbb(b).
	if got, _ := ComputeCDR(box(-4, -4, 0, 0), b); got != SW {
		t.Errorf("corner touch: got %v, want SW", got)
	}
}

func TestComputeCDRSelf(t *testing.T) {
	b := refB()
	if got, _ := ComputeCDR(b, b); got != B {
		t.Errorf("a = b: got %v, want B", got)
	}
}

func TestComputeCDRDisconnectedPrimary(t *testing.T) {
	b := refB()
	a := append(box(-5, -5, -2, -2), box(12, 8, 15, 11)...)
	got, _ := ComputeCDR(a, b)
	if got != Rel(TileSW, TileNE) {
		t.Errorf("disconnected: got %v, want SW:NE", got)
	}
}

func TestComputeCDRErrors(t *testing.T) {
	b := refB()
	if _, err := ComputeCDR(geom.Region{}, b); err == nil {
		t.Error("empty primary should error")
	}
	if _, err := ComputeCDR(b, geom.Region{}); err == nil {
		t.Error("empty reference should error")
	}
	// Degenerate reference (zero-height mbb).
	line := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)))
	if _, err := ComputeCDR(b, line); err == nil {
		t.Error("degenerate reference mbb should error")
	}
}

// Property: translating both regions by the same vector leaves the relation
// unchanged.
func TestComputeCDRTranslationInvarianceProperty(t *testing.T) {
	b := refB()
	a := example3Quadrangle()
	want, _ := ComputeCDR(a, b)
	f := func(dx, dy int16) bool {
		d := geom.Pt(float64(dx), float64(dy))
		got, err := ComputeCDR(a.Translate(d), b.Translate(d))
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for random axis-aligned boxes the relation computed by
// Compute-CDR matches the one derived directly from Definition 1's
// inequalities on the projections.
func TestComputeCDRMatchesDefinitionOnBoxesProperty(t *testing.T) {
	b := refB()
	g, err := NewGrid(b.BoundingBox())
	if err != nil {
		t.Fatal(err)
	}
	f := func(x1, y1 int8, w8, h8 uint8) bool {
		x := float64(x1 % 20)
		y := float64(y1 % 12)
		w := 1 + float64(w8%20)
		h := 1 + float64(h8%12)
		a := box(x, y, x+w, y+h)
		got, err := ComputeCDR(a, b)
		if err != nil {
			return false
		}
		return got == boxRelation(g, x, y, x+w, y+h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// boxRelation derives the relation of an axis-aligned box w.r.t. the grid
// straight from Definition 1: the box occupies every tile its interior
// meets.
func boxRelation(g Grid, minX, minY, maxX, maxY float64) Relation {
	var r Relation
	colEdges := []float64{minX, g.M1, g.M2, maxX}
	rowEdges := []float64{minY, g.L1, g.L2, maxY}
	// The interior of the box overlaps column strip c iff the open interval
	// (max(minX, stripLo), min(maxX, stripHi)) is non-empty; same for rows.
	strip := func(lo, hi, a, b float64) bool {
		l := max2(lo, a)
		h := min2(hi, b)
		return l < h
	}
	_ = colEdges
	_ = rowEdges
	colLo := []float64{negInf, g.M1, g.M2}
	colHi := []float64{g.M1, g.M2, posInf}
	rowLo := []float64{negInf, g.L1, g.L2}
	rowHi := []float64{g.L1, g.L2, posInf}
	for c := 0; c < 3; c++ {
		for rw := 0; rw < 3; rw++ {
			if strip(colLo[c], colHi[c], minX, maxX) && strip(rowLo[rw], rowHi[rw], minY, maxY) {
				r = r.With(TileAt(c, rw))
			}
		}
	}
	return r
}

const (
	negInf = -1e308
	posInf = 1e308
)

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
