package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// soaWorlds are the workloads the SoA/reference differential runs over:
// scatter (fast-path heavy), cluster (full-kernel heavy, boxes straddling
// grid lines), and an adversarial fixture with edges lying exactly on grid
// lines and threading grid corners — the tie-break and corner-coalescing
// paths where a kernel rewrite would drift first.
func soaWorlds() []struct {
	name    string
	regions []NamedRegion
} {
	adversarial := []NamedRegion{
		// Unit square: its grid lines are x=0, x=1, y=0, y=1.
		{Name: "ref", Region: geom.Rgn(workload.Box(0, 0, 1, 1))},
		// Shares the reference's west line exactly (on-line tie-breaks).
		{Name: "online", Region: geom.Rgn(workload.Box(-1, 0, 0, 1))},
		// Diagonal through the grid corner (0,0) — corner coalescing.
		{Name: "corner", Region: geom.Rgn(geom.Poly(
			geom.Pt(-0.5, -0.5), geom.Pt(0.5, 0.5), geom.Pt(0.5, -0.5)))},
		// Straddles all four lines (contains the reference box).
		{Name: "around", Region: geom.Rgn(workload.Box(-2, -2, 3, 3))},
		// Multi-polygon region with components in different tiles.
		{Name: "multi", Region: geom.Region{
			workload.Box(-3, -3, -2, -2),
			workload.Box(0.25, 0.25, 0.75, 3.5),
		}},
	}
	return []struct {
		name    string
		regions []NamedRegion
	}{
		{"scatter", batchWorkload(20040314, 30)},
		{"cluster", clusterWorkload(6, 24)},
		{"adversarial", adversarial},
	}
}

// TestSoAKernelDifferential asserts the struct-of-arrays kernels compute
// bit-identical results to the per-edge reference kernels — Relations,
// absolute tile areas and percent matrices compared with exact float
// equality — across scatter, cluster and adversarial worlds, with pruning
// both on and off.
func TestSoAKernelDifferential(t *testing.T) {
	for _, w := range soaWorlds() {
		for _, noPrune := range []bool{false, true} {
			label := fmt.Sprintf("%s/noPrune=%v", w.name, noPrune)

			qualSoA, err := BatchCDR(nil, w.regions, &BatchOptions{Workers: 1, NoPrune: noPrune})
			if err != nil {
				t.Fatalf("%s: soa qual: %v", label, err)
			}
			qualRef, err := BatchCDR(nil, w.regions, &BatchOptions{Workers: 1, NoPrune: noPrune, NoSoA: true})
			if err != nil {
				t.Fatalf("%s: ref qual: %v", label, err)
			}
			if !reflect.DeepEqual(qualSoA.Pairs, qualRef.Pairs) {
				t.Errorf("%s: qualitative pairs diverge between SoA and reference kernels", label)
			}

			pctSoA, err := BatchPct(nil, w.regions, &BatchOptions{Workers: 1, NoPrune: noPrune})
			if err != nil {
				t.Fatalf("%s: soa pct: %v", label, err)
			}
			pctRef, err := BatchPct(nil, w.regions, &BatchOptions{Workers: 1, NoPrune: noPrune, NoSoA: true})
			if err != nil {
				t.Fatalf("%s: ref pct: %v", label, err)
			}
			if len(pctSoA.Pairs) != len(pctRef.Pairs) {
				t.Fatalf("%s: %d pct pairs vs %d", label, len(pctSoA.Pairs), len(pctRef.Pairs))
			}
			for i := range pctSoA.Pairs {
				g, r := pctSoA.Pairs[i], pctRef.Pairs[i]
				if g.Primary != r.Primary || g.Reference != r.Reference {
					t.Fatalf("%s: pair %d order mismatch", label, i)
				}
				if g.Areas != r.Areas || g.Matrix != r.Matrix {
					t.Errorf("%s: %s vs %s not bit-identical:\nsoa areas %v\nref areas %v",
						label, g.Primary, g.Reference, g.Areas, r.Areas)
				}
			}
		}
	}
}

// TestSoAStatsEquivalent pins that the SoA kernels report the same edge
// accounting as the reference kernels: the no-split fast case must count
// like a SplitEdge call that returned one segment.
func TestSoAStatsEquivalent(t *testing.T) {
	regions := clusterWorkload(11, 16)
	soa, err := BatchPct(nil, regions, &BatchOptions{Workers: 1, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BatchPct(nil, regions, &BatchOptions{Workers: 1, NoPrune: true, NoSoA: true})
	if err != nil {
		t.Fatal(err)
	}
	if soa.Stats != ref.Stats {
		t.Errorf("stats diverge:\nsoa %+v\nref %+v", soa.Stats, ref.Stats)
	}
}

// TestBatchRowZeroAllocs verifies the per-row worker loop of the batch
// engines — relate and relatePctAreasInto over a warmed Scratch — performs
// zero heap allocations on the SoA layout, for both the pruned and the full
// kernel paths.
func TestBatchRowZeroAllocs(t *testing.T) {
	regions := clusterWorkload(21, 32)
	ps, err := PrepareAll(regions)
	if err != nil {
		t.Fatal(err)
	}
	a := ps[0]
	refs := ps[1:]
	sc := &Scratch{}
	var areas TileAreas
	// Warm the split buffer once.
	for _, b := range refs {
		a.relate(b.grid, b.center, false, false, sc, nil)
		if _, err := a.relatePctAreasInto(&areas, b.grid, false, false, sc, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, noPrune := range []bool{false, true} {
		allocs := testing.AllocsPerRun(20, func() {
			for _, b := range refs {
				a.relate(b.grid, b.center, noPrune, false, sc, nil)
				if _, err := a.relatePctAreasInto(&areas, b.grid, noPrune, false, sc, nil); err != nil {
					t.Fatal(err)
				}
			}
		})
		if allocs != 0 {
			t.Errorf("noPrune=%v: %v allocs per row sweep, want 0", noPrune, allocs)
		}
	}
}

// TestArenaCarving exercises the bump allocator directly: lengths and
// capacities are exact (appends cannot bleed into a neighbour's block),
// blocks are disjoint, contents start zeroed, and chunk growth is geometric
// rather than per-call.
func TestArenaCarving(t *testing.T) {
	a := NewArena()
	x := a.float64s(10)
	y := a.float64s(20)
	if len(x) != 10 || cap(x) != 10 || len(y) != 20 || cap(y) != 20 {
		t.Fatalf("len/cap mismatch: %d/%d, %d/%d", len(x), cap(x), len(y), cap(y))
	}
	for i := range x {
		x[i] = 1
	}
	for _, v := range y {
		if v != 0 {
			t.Fatal("blocks overlap: writes to x visible in y")
		}
	}
	// Both blocks fit the first chunk.
	if st := a.Stats(); st.Chunks != 1 {
		t.Fatalf("chunks = %d, want 1", st.Chunks)
	}
	// An oversized request gets its own chunk of at least that size.
	big := a.float64s(arenaMaxChunk + 5)
	if len(big) != arenaMaxChunk+5 {
		t.Fatalf("big block len = %d", len(big))
	}
	if st := a.Stats(); st.Chunks != 2 {
		t.Fatalf("chunks = %d, want 2", st.Chunks)
	}
	// Other element types carve independently.
	off := a.int32s(4)
	if len(off) != 4 || cap(off) != 4 {
		t.Fatalf("int32 block len/cap = %d/%d", len(off), cap(off))
	}
	ps := a.polySlab(3)
	if len(ps) != 3 || cap(ps) != 3 {
		t.Fatalf("poly slab len/cap = %d/%d", len(ps), cap(ps))
	}
	if st := a.Stats(); st.Bytes == 0 {
		t.Fatal("stats report zero bytes after allocations")
	}
}

// TestArenaNilFallback pins that a nil arena behaves like plain make: every
// construction path can take an optional arena without nil checks.
func TestArenaNilFallback(t *testing.T) {
	var a *Arena
	x := a.float64s(7)
	if len(x) != 7 {
		t.Fatalf("len = %d", len(x))
	}
	if st := a.Stats(); st != (ArenaStats{}) {
		t.Fatalf("nil arena stats = %+v", st)
	}
	if len(a.int32s(3)) != 3 || len(a.polySlab(2)) != 2 {
		t.Fatal("nil arena fallback sizes wrong")
	}
}

// TestPrepareAllInEquivalence asserts arena-backed preparation produces
// regions that relate identically to individually-prepared ones, and that
// the arena actually coalesces the world into few chunks.
func TestPrepareAllInEquivalence(t *testing.T) {
	regions := clusterWorkload(5, 40)
	ar := NewArena()
	inArena, err := PrepareAllIn(ar, regions)
	if err != nil {
		t.Fatal(err)
	}
	if st := ar.Stats(); st.Chunks == 0 || st.Chunks > 8 {
		t.Errorf("40-region world used %d chunks, want few but nonzero", st.Chunks)
	}
	sc := &Scratch{}
	for i, r := range regions {
		plain, err := Prepare(r.Name, r.Region)
		if err != nil {
			t.Fatal(err)
		}
		p := inArena[i]
		if p.NumEdges() != plain.NumEdges() || p.Box != plain.Box {
			t.Fatalf("%s: prepared metadata differs in arena", r.Name)
		}
		b := inArena[(i+1)%len(inArena)]
		relA, errA := Relate(p, b, sc)
		relB, errB := Relate(plain, b, sc)
		if errA != nil || errB != nil {
			t.Fatalf("%s: relate errors %v / %v", r.Name, errA, errB)
		}
		if relA != relB {
			t.Fatalf("%s: arena-prepared relation %v != plain %v", r.Name, relA, relB)
		}
		mA, aA, errA := RelatePct(p, b, sc)
		mB, aB, errB := RelatePct(plain, b, sc)
		if errA != nil || errB != nil {
			t.Fatalf("%s: relatePct errors %v / %v", r.Name, errA, errB)
		}
		if mA != mB || aA != aB {
			t.Fatalf("%s: arena-prepared percent result differs", r.Name)
		}
	}
}

// TestSoAKernelSpeedup is the acceptance gate of the struct-of-arrays
// kernel overhaul: the full quantitative batch over a 500-region cluster
// world on one worker, pruning disabled so every pair runs the splitting
// kernel, must beat the per-edge reference kernel by at least 1.5x. Each
// side is timed as the best of three runs to shave scheduler noise.
func TestSoAKernelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("perf comparison skipped in -short")
	}
	ps, err := PrepareAll(clusterWorkload(2026, 500))
	if err != nil {
		t.Fatal(err)
	}
	run := func(noSoA bool) time.Duration {
		opt := BatchOptions{Workers: 1, NoPrune: true, NoSoA: noSoA, Prepared: ps}
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := BatchPct(nil, nil, &opt); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	// Timing under `go test ./...` competes with sibling packages for
	// CPU, which can compress the gap on loaded machines. A genuine
	// kernel regression fails every attempt; noise does not.
	const want = 1.5
	best := 0.0
	for attempt := 0; attempt < 5; attempt++ {
		soa := run(false)
		ref := run(true)
		ratio := float64(ref) / float64(soa)
		t.Logf("attempt %d: SoA %v vs reference %v (%.2fx)", attempt, soa, ref, ratio)
		if ratio > best {
			best = ratio
		}
		if best >= want {
			return
		}
	}
	t.Errorf("SoA kernel %.2fx over reference, want >= %.1fx", best, want)
}

// benchCluster prepares a cluster world once for the kernel benchmarks.
func benchCluster(b *testing.B, n int) []*Prepared {
	b.Helper()
	ps, err := PrepareAll(clusterWorkload(2026, n))
	if err != nil {
		b.Fatal(err)
	}
	return ps
}

// BenchmarkPctKernelSoA measures the full quantitative kernel (pruning off,
// one worker) on the struct-of-arrays layout.
func BenchmarkPctKernelSoA(b *testing.B) {
	ps := benchCluster(b, 64)
	opt := BatchOptions{Workers: 1, NoPrune: true, Prepared: ps}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BatchPct(nil, nil, &opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPctKernelRef is the per-edge reference ablation of
// BenchmarkPctKernelSoA.
func BenchmarkPctKernelRef(b *testing.B) {
	ps := benchCluster(b, 64)
	opt := BatchOptions{Workers: 1, NoPrune: true, NoSoA: true, Prepared: ps}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BatchPct(nil, nil, &opt); err != nil {
			b.Fatal(err)
		}
	}
}
