package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"cardirect/internal/geom"
)

// lodNoisyRegion builds a random region for differential testing: one to
// three star-shaped polygons with many radially-noisy vertices (so the
// simplifier has real work) placed at random centers and scales. Rings are
// simple by construction (strictly increasing angle, positive radius).
func lodNoisyRegion(rng *rand.Rand) geom.Region {
	polys := 1 + rng.Intn(3)
	var r geom.Region
	for p := 0; p < polys; p++ {
		cx := rng.Float64()*200 - 100
		cy := rng.Float64()*200 - 100
		base := 2 + rng.Float64()*20
		n := 24 + rng.Intn(120)
		ring := make(geom.Polygon, 0, n)
		for i := 0; i < n; i++ {
			ang := 2 * math.Pi * float64(i) / float64(n)
			rad := base * (0.6 + 0.4*rng.Float64())
			ring = append(ring, geom.Pt(cx+rad*math.Cos(ang), cy+rad*math.Sin(ang)))
		}
		r = append(r, ring)
	}
	return r
}

func lodTestWorld(t testing.TB, seed int64, n int, opt LoDOptions) (*LoDWorld, []*Prepared) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	regions := make([]NamedRegion, n)
	for i := range regions {
		regions[i] = NamedRegion{Name: "r" + string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260)), Region: lodNoisyRegion(rng)}
	}
	w, err := PrepareLoDWorld(regions, opt)
	if err != nil {
		t.Fatalf("PrepareLoDWorld: %v", err)
	}
	exact, err := PrepareAll(regions)
	if err != nil {
		t.Fatalf("PrepareAll: %v", err)
	}
	return w, exact
}

// TestLoDDifferential is the tier's core guarantee: every pair answered by
// the LoD world — whether by the coarse summary, the simplified kernel, or
// the exact fallback — is bit-identical to the exact engine, for both the
// qualitative relation and the percent matrix.
func TestLoDDifferential(t *testing.T) {
	w, exact := lodTestWorld(t, 1, 40, LoDOptions{})
	sc := getScratch()
	defer putScratch(sc)
	var st Stats
	for i := 0; i < w.Len(); i++ {
		for j := 0; j < w.Len(); j++ {
			if i == j {
				continue
			}
			want, err := Relate(exact[i], exact[j], sc)
			if err != nil {
				t.Fatalf("exact Relate(%d,%d): %v", i, j, err)
			}
			got, err := w.Relation(i, j, sc, &st)
			if err != nil {
				t.Fatalf("LoD Relation(%d,%d): %v", i, j, err)
			}
			if got != want {
				t.Fatalf("pair (%d,%d): LoD %v != exact %v (eps=%g)", i, j, got, want, w.LoD(i).Eps)
			}

			wantM, wantA, err := RelatePct(exact[i], exact[j], sc)
			if err != nil {
				t.Fatalf("exact RelatePct(%d,%d): %v", i, j, err)
			}
			gotM, gotA, err := w.RelationPct(i, j, sc, &st)
			if err != nil {
				t.Fatalf("LoD RelationPct(%d,%d): %v", i, j, err)
			}
			if gotM != wantM || gotA != wantA {
				t.Fatalf("pair (%d,%d): LoD pct differs from exact", i, j)
			}
		}
	}
	// The world must actually exercise all three tiers; a silent all-exact
	// degrade would vacuously pass the identity check.
	if st.CoarseSingleTile == 0 {
		t.Error("coarse tier never fired")
	}
	if st.LoDSimplified == 0 {
		t.Error("simplified tier never fired")
	}
	t.Logf("stats: coarse=%d simplified=%d exact=%d fastPath=%d",
		st.CoarseSingleTile, st.LoDSimplified, st.LoDExact, st.PruneSingleTile+st.PruneBand)
}

// TestLoDSimplifies confirms the tier actually reduces geometry (the perf
// premise) rather than degrading everything to exact.
func TestLoDSimplifies(t *testing.T) {
	w, exact := lodTestWorld(t, 2, 20, LoDOptions{})
	simplified := 0
	for i := 0; i < w.Len(); i++ {
		l := w.LoD(i)
		if l.Eps > 0 {
			simplified++
			if l.SimplifiedEdges() >= len(exact[i].ax) {
				t.Errorf("region %d: eps=%g but %d simplified edges >= %d exact", i, l.Eps, l.SimplifiedEdges(), len(exact[i].ax))
			}
		}
	}
	if simplified == 0 {
		t.Fatal("no region was simplified")
	}
}

// TestLoDBatchRows checks the row sweep against the per-pair path in both
// LoD and exact modes, and the context-cancellation contract.
func TestLoDBatchRows(t *testing.T) {
	w, exact := lodTestWorld(t, 3, 30, LoDOptions{Workers: 4})
	rows := []int{0, 7, 29}
	got, st, err := w.BatchRows(context.Background(), rows, false)
	if err != nil {
		t.Fatalf("BatchRows: %v", err)
	}
	gotExact, _, err := w.BatchRows(context.Background(), rows, true)
	if err != nil {
		t.Fatalf("BatchRows(exact): %v", err)
	}
	sc := getScratch()
	defer putScratch(sc)
	for r, pi := range rows {
		for j := 0; j < w.Len(); j++ {
			if j == pi {
				if got[r][j] != 0 || gotExact[r][j] != 0 {
					t.Fatalf("row %d: self entry not zero", pi)
				}
				continue
			}
			want, err := Relate(exact[pi], exact[j], sc)
			if err != nil {
				t.Fatalf("exact Relate: %v", err)
			}
			if got[r][j] != want {
				t.Fatalf("row %d vs %d: LoD sweep %v != exact %v", pi, j, got[r][j], want)
			}
			if gotExact[r][j] != want {
				t.Fatalf("row %d vs %d: exact sweep %v != exact %v", pi, j, gotExact[r][j], want)
			}
		}
	}
	if st.CoarseSingleTile+st.LoDSimplified+st.LoDExact+st.PruneSingleTile+st.PruneBand == 0 {
		t.Error("sweep recorded no tier stats")
	}

	if _, _, err := w.BatchRows(context.Background(), []int{-1}, false); err == nil {
		t.Error("negative row index accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := w.BatchRows(ctx, rows, false); err == nil {
		t.Error("cancelled context not reported")
	}
}

// TestCoarsePairSingleTile differentially checks the O(1) coarse answers
// against the exact kernel on dense random box layouts.
func TestCoarsePairSingleTile(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 30
		regions := make([]NamedRegion, n)
		boxes := make([]geom.Rect, n)
		for i := range regions {
			x := rng.Float64() * 100
			y := rng.Float64() * 100
			w := 0.5 + rng.Float64()*10
			h := 0.5 + rng.Float64()*10
			regions[i] = NamedRegion{
				Name:   string(rune('a' + i%26)) + string(rune('0' + i/26)),
				Region: geom.Rgn(geom.Poly(geom.Pt(x, y), geom.Pt(x, y+h), geom.Pt(x+w, y+h), geom.Pt(x+w, y))),
			}
			boxes[i] = regions[i].Region.BoundingBox()
		}
		ci := NewCoarseIndex(boxes, 64)
		exact, err := PrepareAll(regions)
		if err != nil {
			t.Fatal(err)
		}
		sc := getScratch()
		fired := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				rel, ok := ci.PairSingleTile(i, j)
				if !ok {
					continue
				}
				fired++
				want, err := Relate(exact[i], exact[j], sc)
				if err != nil {
					t.Fatal(err)
				}
				if rel != want {
					t.Fatalf("trial %d pair (%d,%d): coarse %v != exact %v", trial, i, j, rel, want)
				}
			}
		}
		putScratch(sc)
		if trial == 0 && fired == 0 {
			t.Error("coarse rules never fired")
		}
	}
}

// TestCoarseEstimateSel sanity-checks the planner probe: estimates stay in
// [0,1] and track the true single-tile fraction reasonably.
func TestCoarseEstimateSel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 500
	boxes := make([]geom.Rect, n)
	for i := range boxes {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		boxes[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + 1 + rng.Float64()*5, MaxY: y + 1 + rng.Float64()*5}
	}
	ci := NewCoarseIndex(boxes, 128)
	g, err := NewGrid(geom.Rect{MinX: 40, MinY: 40, MaxX: 60, MaxY: 60})
	if err != nil {
		t.Fatal(err)
	}
	// All nine single-tile relations: sel = covered + (1−covered)·9/9 = 1.
	var all RelationSet
	for _, tile := range Tiles() {
		all.Add(Rel(tile))
	}
	if sel := ci.EstimateSel(g, all); math.Abs(sel-1) > 1e-9 {
		t.Errorf("EstimateSel(all single tiles) = %g, want 1", sel)
	}
	for _, tile := range []Tile{TileSW, TileB, TileNE} {
		sel := ci.EstimateSel(g, NewRelationSet(Rel(tile)))
		if sel < 0 || sel > 1 {
			t.Errorf("EstimateSel(%v) = %g out of [0,1]", tile, sel)
		}
	}
	// The SW corner tile must look much more selective than the full set.
	if swSel := ci.EstimateSel(g, NewRelationSet(Rel(TileSW))); swSel > 0.5 {
		t.Errorf("EstimateSel(SW) = %g, expected a small fraction", swSel)
	}
}

// TestLoDZeroEpsDegrade checks tiny regions stay exact and still answer
// correctly.
func TestLoDZeroEpsDegrade(t *testing.T) {
	tri := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(0, 1), geom.Pt(1, 0)))
	l, err := PrepareLoD(nil, "tri", tri, LoDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Eps != 0 {
		t.Fatalf("triangle got eps=%g, want 0", l.Eps)
	}
	if l.Exact() != l.Simplified() {
		t.Error("eps=0 LoD should share one preparation")
	}
	ref, err := PrepareLoD(nil, "ref", geom.Rgn(geom.Poly(geom.Pt(2, 2), geom.Pt(2, 3), geom.Pt(3, 3), geom.Pt(3, 2))), LoDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := RelateLoD(l, ref, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := Rel(TileSW); rel != want {
		t.Fatalf("RelateLoD = %v, want %v", rel, want)
	}
}

// FuzzLoDDifferential drives the bit-identity guarantee from fuzzed seeds:
// random worlds of noisy multi-polygon regions, every pair cross-checked
// against the exact kernel.
func FuzzLoDDifferential(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s, uint8(10))
	}
	f.Fuzz(func(t *testing.T, seed int64, nn uint8) {
		n := 3 + int(nn%14)
		rng := rand.New(rand.NewSource(seed))
		regions := make([]NamedRegion, n)
		for i := range regions {
			regions[i] = NamedRegion{Name: string(rune('a' + i%26)) + string(rune('0' + i/26)), Region: lodNoisyRegion(rng)}
		}
		w, err := PrepareLoDWorld(regions, LoDOptions{})
		if err != nil {
			t.Fatalf("PrepareLoDWorld: %v", err)
		}
		exact, err := PrepareAll(regions)
		if err != nil {
			t.Fatalf("PrepareAll: %v", err)
		}
		sc := getScratch()
		defer putScratch(sc)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				want, err := Relate(exact[i], exact[j], sc)
				if err != nil {
					t.Fatal(err)
				}
				got, err := w.Relation(i, j, sc, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed %d pair (%d,%d): LoD %v != exact %v", seed, i, j, got, want)
				}
				wantM, _, err := RelatePct(exact[i], exact[j], sc)
				if err != nil {
					t.Fatal(err)
				}
				gotM, _, err := w.RelationPct(i, j, sc, nil)
				if err != nil {
					t.Fatal(err)
				}
				if gotM != wantM {
					t.Fatalf("seed %d pair (%d,%d): LoD pct != exact pct", seed, i, j)
				}
			}
		}
	})
}
