package core

import (
	"fmt"

	"cardirect/internal/geom"
)

// El is the paper's trapezoid expression E_l(AB): the signed area between
// the edge AB and the horizontal reference line y = l (Definition 4). Its
// absolute value is the area of the trapezoid (A B L_B L_A); the sign flips
// with the edge direction, and summing E_l along a closed clockwise (y-up)
// ring yields the ring's (positive) area regardless of l.
func El(a, b geom.Point, l float64) float64 {
	return (b.X - a.X) * (a.Y + b.Y - 2*l) / 2
}

// Em is the paper's expression E'_m(AB): the signed area between AB and the
// vertical reference line x = m. Summing E'_m along a closed clockwise
// (y-up) ring yields the negated ring area. (The paper's Definition 4 has a
// typo — "2l" in the E'_m formula stands for 2m.)
func Em(a, b geom.Point, m float64) float64 {
	return (b.Y - a.Y) * (a.X + b.X - 2*m) / 2
}

// ComputeCDRPct implements Algorithm Compute-CDR% (Fig. 10 of the paper):
// it returns the cardinal direction relation with percentages between the
// primary region a and the reference region b as a PercentMatrix, together
// with the per-tile absolute areas it is derived from.
//
// Like Compute-CDR the algorithm makes a single pass over the edges of a,
// splitting each on the four mbb(b) lines. Instead of clipping polygons it
// accumulates, per tile, the trapezoid expressions against a tile-specific
// reference line chosen so that the virtual segments closing each tile piece
// contribute nothing: the west line x = m1 for the NW/W/SW column, the east
// line x = m2 for the NE/E/SE column, the south line y = l1 for S and the
// north line y = l2 for N. The B tile is recovered by measuring the B∪N slab
// against y = l1 and subtracting the N area:
//
//	area(B) = |area(B+N)| − |area(N)|.
//
// The running time is O(k_a + k_b) (Theorem 2 of the paper).
func ComputeCDRPct(a, b geom.Region) (PercentMatrix, TileAreas, error) {
	m, ta, _, err := computeCDRPct(a, b)
	return m, ta, err
}

// ComputeCDRPctStats is ComputeCDRPct with instrumentation.
func ComputeCDRPctStats(a, b geom.Region) (PercentMatrix, TileAreas, Stats, error) {
	return computeCDRPct(a, b)
}

func computeCDRPct(a, b geom.Region) (PercentMatrix, TileAreas, Stats, error) {
	var st Stats
	var areas TileAreas
	if len(a) == 0 {
		return PercentMatrix{}, areas, st, fmt.Errorf("core: primary region is empty: %w", ErrDegenerateRegion)
	}
	if len(b) == 0 {
		return PercentMatrix{}, areas, st, fmt.Errorf("core: reference region is empty: %w", ErrDegenerateRegion)
	}
	grid, err := NewGrid(b.BoundingBox())
	if err != nil {
		return PercentMatrix{}, areas, st, err
	}

	// The accumulators and split buffer live in a pooled Scratch, so repeated
	// one-shot calls stop allocating once the pool is warm.
	sc := getScratch()
	defer putScratch(sc)
	for i := range sc.acc {
		sc.acc[i] = 0
	}
	sc.accBN = 0

	for _, p := range a {
		p = p.Clockwise()
		for i := 0; i < p.NumEdges(); i++ {
			st.EdgesIn++
			st.EdgeVisits++
			sc.buf = grid.SplitEdge(p.Edge(i), sc.buf[:0])
			st.Intersections += len(sc.buf) - 1
			for _, s := range sc.buf {
				st.EdgesOut++
				t := grid.ClassifySegment(s)
				switch t {
				case TileNW, TileW, TileSW:
					sc.acc[t] += Em(s.A, s.B, grid.M1)
				case TileNE, TileE, TileSE:
					sc.acc[t] += Em(s.A, s.B, grid.M2)
				case TileS:
					sc.acc[t] += El(s.A, s.B, grid.L1)
				case TileN:
					sc.acc[t] += El(s.A, s.B, grid.L2)
				}
				if t == TileN || t == TileB {
					sc.accBN += El(s.A, s.B, grid.L1)
				}
			}
		}
	}
	st.Passes = 1

	for _, t := range Tiles() {
		if t == TileB {
			continue
		}
		areas[t] = abs(sc.acc[t])
	}
	// area(B) = |area(B+N)| − |area(N)|; clamp tiny negative float residue.
	if bArea := abs(sc.accBN) - areas[TileN]; bArea > 0 {
		areas[TileB] = bArea
	}

	total := areas.Total()
	if total <= 0 {
		return PercentMatrix{}, areas, st, fmt.Errorf("core: primary region has zero area: %w", ErrDegenerateRegion)
	}
	return areas.Percent(), areas, st, nil
}

// RelatePct computes the cardinal direction relation with percentages of the
// primary a against the reference b — equivalent to
// ComputeCDRPct(a.Region, b.Region) but with all per-region work
// (normalisation, edge flattening, grid construction, polygon areas) already
// paid at Prepare time. With a warmed Scratch the steady path performs zero
// heap allocations. sc may be nil (a throwaway scratch is used).
func RelatePct(a, b *Prepared, sc *Scratch) (PercentMatrix, TileAreas, error) {
	if b.gridErr != nil {
		return PercentMatrix{}, TileAreas{}, b.gridErr
	}
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	return a.relatePct(b.grid, false, false, sc, nil)
}

// RelatePctGrid computes the percent matrix of the primary region against an
// arbitrary reference grid. sc may be nil.
func (p *Prepared) RelatePctGrid(g Grid, sc *Scratch) (PercentMatrix, TileAreas, error) {
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	return p.relatePct(g, false, false, sc, nil)
}

// relatePct dispatches between the cached-area fast path and the full
// edge-splitting quantitative algorithm.
func (p *Prepared) relatePct(g Grid, noPrune, ref bool, sc *Scratch, st *Stats) (PercentMatrix, TileAreas, error) {
	var areas TileAreas
	total, err := p.relatePctAreasInto(&areas, g, noPrune, ref, sc, st)
	if err != nil {
		return PercentMatrix{}, areas, err
	}
	var m PercentMatrix
	percentInto(&m, &areas, total)
	return m, areas, nil
}

// relatePctAreasInto computes the per-tile areas into dst and returns their
// total — the batch engine's entry point, writing straight into the output
// slot instead of copying 72-byte values through three return frames. The
// O(1) single-tile case is checked here, one call deep, because it answers
// over 90% of scatter-batch pairs. ref selects the per-edge reference
// kernel instead of the SoA kernel (differential tests, ablations).
func (p *Prepared) relatePctAreasInto(dst *TileAreas, g Grid, noPrune, ref bool, sc *Scratch, st *Stats) (float64, error) {
	if !noPrune && p.totalArea > 0 {
		if col, row := strictCol(p.Box, g), strictRow(p.Box, g); col >= 0 && row >= 0 {
			*dst = TileAreas{}
			dst[TileAt(col, row)] = p.totalArea
			if st != nil {
				st.PrunePctTile++
			}
			return p.totalArea, nil
		}
		if p.relatePctPolyInto(dst, g, st) {
			return p.totalArea, nil
		}
	}
	if ref {
		return p.relatePctFullIntoRef(dst, g, sc, st)
	}
	return p.relatePctFullInto(dst, g, sc, st)
}

// pctIdx maps a tile to its (row, col) cell of the printed PercentMatrix.
var pctIdx = func() [NumTiles][2]uint8 {
	var idx [NumTiles][2]uint8
	for _, t := range Tiles() {
		idx[t] = [2]uint8{uint8(2 - t.Row()), uint8(t.Col())}
	}
	return idx
}()

// percentInto fills m with the percentage form of areas given their total.
func percentInto(m *PercentMatrix, areas *TileAreas, total float64) {
	inv := 100 / total
	for t, v := range areas {
		m[pctIdx[t][0]][pctIdx[t][1]] = v * inv
	}
}

// relatePctFast answers the percent matrix from areas cached at Prepare
// time, with zero edge splits, when every polygon's bounding box lands
// strictly inside a single tile: the polygon then lies strictly inside that
// tile, so its whole cached area falls there. This covers the two shapes the
// batch workloads hit constantly — mbb(primary) strictly inside one tile
// (every strictly-disjoint or strictly-contained pair), and a multi-polygon
// primary threading a row or column with each component clear of the grid
// lines. Any polygon box touching or spanning a grid line falls back to the
// full algorithm, as does a region with no positive area (so the error paths
// stay uniform).
func (p *Prepared) relatePctFast(g Grid, st *Stats) (TileAreas, bool) {
	var areas TileAreas
	if p.totalArea <= 0 {
		return areas, false
	}
	// Whole-region shortcut first: mbb(primary) strictly inside one tile
	// answers in O(1) from the total area. This is the overwhelmingly common
	// batch case (every strictly-disjoint or strictly-contained pair).
	if col, row := strictCol(p.Box, g), strictRow(p.Box, g); col >= 0 && row >= 0 {
		areas[TileAt(col, row)] = p.totalArea
		if st != nil {
			st.PrunePctTile++
		}
		return areas, true
	}
	return areas, p.relatePctPolyInto(&areas, g, st)
}

// relatePctPolyInto is the per-polygon half of the fast path: each polygon
// box strictly inside a single tile contributes its whole cached area there.
// It reports false (dst half-written, caller must fall through to the full
// algorithm) when any polygon box touches or spans a grid line.
func (p *Prepared) relatePctPolyInto(dst *TileAreas, g Grid, st *Stats) bool {
	*dst = TileAreas{}
	for i := range p.polys {
		pp := &p.polys[i]
		col := strictCol(pp.box, g)
		if col < 0 {
			return false
		}
		row := strictRow(pp.box, g)
		if row < 0 {
			return false
		}
		dst[TileAt(col, row)] += pp.area
	}
	if st != nil {
		st.PrunePctPoly++
	}
	return true
}

// relatePctFullIntoRef is the per-edge reference implementation of
// Compute-CDR% over Prepared edges: materialise each edge, split it with
// Grid.SplitEdge, classify and accumulate every sub-segment through the
// Scratch accumulator array. It computes bit-identical results to the SoA
// kernel in relatePctFullInto (asserted by TestSoAKernelDifferential) and
// exists for that comparison — and as the BatchOptions.NoSoA ablation
// baseline. Do not use on hot paths.
func (p *Prepared) relatePctFullIntoRef(dst *TileAreas, g Grid, sc *Scratch, st *Stats) (float64, error) {
	for i := range sc.acc {
		sc.acc[i] = 0
	}
	sc.accBN = 0
	buf := sc.buf
	for i := 0; i < len(p.ax); i++ {
		buf = g.SplitEdge(p.edge(i), buf[:0])
		if st != nil {
			st.EdgesIn++
			st.EdgeVisits++
			st.EdgesOut += len(buf)
			st.Intersections += len(buf) - 1
		}
		for _, s := range buf {
			t := g.ClassifySegment(s)
			switch t {
			case TileNW, TileW, TileSW:
				sc.acc[t] += Em(s.A, s.B, g.M1)
			case TileNE, TileE, TileSE:
				sc.acc[t] += Em(s.A, s.B, g.M2)
			case TileS:
				sc.acc[t] += El(s.A, s.B, g.L1)
			case TileN:
				sc.acc[t] += El(s.A, s.B, g.L2)
			}
			if t == TileN || t == TileB {
				sc.accBN += El(s.A, s.B, g.L1)
			}
		}
	}
	sc.buf = buf

	*dst = TileAreas{}
	for _, t := range Tiles() {
		if t == TileB {
			continue
		}
		dst[t] = abs(sc.acc[t])
	}
	if bArea := abs(sc.accBN) - dst[TileN]; bArea > 0 {
		dst[TileB] = bArea
	}
	return p.pctTotal(dst)
}

// relatePctFullInto is the paper's Compute-CDR% over the struct-of-arrays
// edge layout: one pass over the flat coordinate slices, accumulating the
// trapezoid expressions into nine locals the compiler keeps in registers.
// An edge is split only when its coordinate span actually straddles a grid
// line (four compares, no divisions); the no-split majority accumulates
// straight from the raw coordinates with no Segment materialisation and no
// buffer traffic. Accumulation order per tile matches the reference kernel
// exactly, so results are bit-identical. It writes the per-tile areas into
// dst and returns their total.
func (p *Prepared) relatePctFullInto(dst *TileAreas, g Grid, sc *Scratch, st *Stats) (float64, error) {
	m1, m2, l1, l2 := g.M1, g.M2, g.L1, g.L2
	ax, ay, bx, by := p.ax, p.ay, p.bx, p.by
	var accS, accSW, accW, accNW, accN, accNE, accE, accSE, accBN float64
	var qx, qy [6]float64
	outCount := 0
	for i := range ax {
		x0, y0, x1, y1 := ax[i], ay[i], bx[i], by[i]
		lox, hix := x0, x1
		if lox > hix {
			lox, hix = hix, lox
		}
		loy, hiy := y0, y1
		if loy > hiy {
			loy, hiy = hiy, loy
		}
		// Same no-crossing span test as relateFull: a grid line is crossed
		// iff it lies strictly between the endpoint coordinates. An edge
		// that crosses nothing accumulates straight from the raw
		// coordinates, never touching memory; one that does is split by
		// splitEdgeInto and its pieces fed through the same switch.
		if (hix <= m1 || lox >= m1) && (hix <= m2 || lox >= m2) &&
			(hiy <= l1 || loy >= l1) && (hiy <= l2 || loy >= l2) {
			outCount++
			switch tileGrid[classifyRow(l1, l2, (y0+y1)/2, x1-x0)][classifyCol(m1, m2, (x0+x1)/2, y1-y0)] {
			case TileNW:
				accNW += (y1 - y0) * (x0 + x1 - 2*m1) / 2
			case TileW:
				accW += (y1 - y0) * (x0 + x1 - 2*m1) / 2
			case TileSW:
				accSW += (y1 - y0) * (x0 + x1 - 2*m1) / 2
			case TileNE:
				accNE += (y1 - y0) * (x0 + x1 - 2*m2) / 2
			case TileE:
				accE += (y1 - y0) * (x0 + x1 - 2*m2) / 2
			case TileSE:
				accSE += (y1 - y0) * (x0 + x1 - 2*m2) / 2
			case TileS:
				accS += (x1 - x0) * (y0 + y1 - 2*l1) / 2
			case TileN:
				accN += (x1 - x0) * (y0 + y1 - 2*l2) / 2
				accBN += (x1 - x0) * (y0 + y1 - 2*l1) / 2
			case TileB:
				accBN += (x1 - x0) * (y0 + y1 - 2*l1) / 2
			}
			continue
		}
		cnt := splitEdgeInto(m1, m2, l1, l2, x0, y0, x1, y1, &qx, &qy)
		outCount += cnt
		for k := 0; k < cnt; k++ {
			sx0, sy0, sx1, sy1 := qx[k], qy[k], qx[k+1], qy[k+1]
			switch tileGrid[classifyRow(l1, l2, (sy0+sy1)/2, sx1-sx0)][classifyCol(m1, m2, (sx0+sx1)/2, sy1-sy0)] {
			case TileNW:
				accNW += (sy1 - sy0) * (sx0 + sx1 - 2*m1) / 2
			case TileW:
				accW += (sy1 - sy0) * (sx0 + sx1 - 2*m1) / 2
			case TileSW:
				accSW += (sy1 - sy0) * (sx0 + sx1 - 2*m1) / 2
			case TileNE:
				accNE += (sy1 - sy0) * (sx0 + sx1 - 2*m2) / 2
			case TileE:
				accE += (sy1 - sy0) * (sx0 + sx1 - 2*m2) / 2
			case TileSE:
				accSE += (sy1 - sy0) * (sx0 + sx1 - 2*m2) / 2
			case TileS:
				accS += (sx1 - sx0) * (sy0 + sy1 - 2*l1) / 2
			case TileN:
				accN += (sx1 - sx0) * (sy0 + sy1 - 2*l2) / 2
				accBN += (sx1 - sx0) * (sy0 + sy1 - 2*l1) / 2
			case TileB:
				accBN += (sx1 - sx0) * (sy0 + sy1 - 2*l1) / 2
			}
		}
	}
	if st != nil {
		st.EdgesIn += len(ax)
		st.EdgeVisits += len(ax)
		st.EdgesOut += outCount
		st.Intersections += outCount - len(ax)
	}

	aS, aSW, aW, aNW := abs(accS), abs(accSW), abs(accW), abs(accNW)
	aN, aNE, aE, aSE := abs(accN), abs(accNE), abs(accE), abs(accSE)
	// area(B) = |area(B+N)| − |area(N)|; clamp tiny negative float residue.
	var aB float64
	if bArea := abs(accBN) - aN; bArea > 0 {
		aB = bArea
	}
	dst[TileB], dst[TileS], dst[TileSW] = aB, aS, aSW
	dst[TileW], dst[TileNW], dst[TileN] = aW, aNW, aN
	dst[TileNE], dst[TileE], dst[TileSE] = aNE, aE, aSE
	// Summed in tile index order, matching TileAreas.Total bit for bit.
	total := aB + aS + aSW + aW + aNW + aN + aNE + aE + aSE
	if total <= 0 {
		return 0, fmt.Errorf("core: region %q has zero area: %w", p.Name, ErrDegenerateRegion)
	}
	return total, nil
}

// pctTotal finalises a full-kernel area computation: the shared tail of the
// SoA and reference kernels.
func (p *Prepared) pctTotal(dst *TileAreas) (float64, error) {
	total := dst.Total()
	if total <= 0 {
		return 0, fmt.Errorf("core: region %q has zero area: %w", p.Name, ErrDegenerateRegion)
	}
	return total, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
