package core

import (
	"fmt"

	"cardirect/internal/geom"
)

// El is the paper's trapezoid expression E_l(AB): the signed area between
// the edge AB and the horizontal reference line y = l (Definition 4). Its
// absolute value is the area of the trapezoid (A B L_B L_A); the sign flips
// with the edge direction, and summing E_l along a closed clockwise (y-up)
// ring yields the ring's (positive) area regardless of l.
func El(a, b geom.Point, l float64) float64 {
	return (b.X - a.X) * (a.Y + b.Y - 2*l) / 2
}

// Em is the paper's expression E'_m(AB): the signed area between AB and the
// vertical reference line x = m. Summing E'_m along a closed clockwise
// (y-up) ring yields the negated ring area. (The paper's Definition 4 has a
// typo — "2l" in the E'_m formula stands for 2m.)
func Em(a, b geom.Point, m float64) float64 {
	return (b.Y - a.Y) * (a.X + b.X - 2*m) / 2
}

// ComputeCDRPct implements Algorithm Compute-CDR% (Fig. 10 of the paper):
// it returns the cardinal direction relation with percentages between the
// primary region a and the reference region b as a PercentMatrix, together
// with the per-tile absolute areas it is derived from.
//
// Like Compute-CDR the algorithm makes a single pass over the edges of a,
// splitting each on the four mbb(b) lines. Instead of clipping polygons it
// accumulates, per tile, the trapezoid expressions against a tile-specific
// reference line chosen so that the virtual segments closing each tile piece
// contribute nothing: the west line x = m1 for the NW/W/SW column, the east
// line x = m2 for the NE/E/SE column, the south line y = l1 for S and the
// north line y = l2 for N. The B tile is recovered by measuring the B∪N slab
// against y = l1 and subtracting the N area:
//
//	area(B) = |area(B+N)| − |area(N)|.
//
// The running time is O(k_a + k_b) (Theorem 2 of the paper).
func ComputeCDRPct(a, b geom.Region) (PercentMatrix, TileAreas, error) {
	m, ta, _, err := computeCDRPct(a, b)
	return m, ta, err
}

// ComputeCDRPctStats is ComputeCDRPct with instrumentation.
func ComputeCDRPctStats(a, b geom.Region) (PercentMatrix, TileAreas, Stats, error) {
	return computeCDRPct(a, b)
}

func computeCDRPct(a, b geom.Region) (PercentMatrix, TileAreas, Stats, error) {
	var st Stats
	var areas TileAreas
	if len(a) == 0 {
		return PercentMatrix{}, areas, st, fmt.Errorf("core: primary region is empty")
	}
	if len(b) == 0 {
		return PercentMatrix{}, areas, st, fmt.Errorf("core: reference region is empty")
	}
	grid, err := NewGrid(b.BoundingBox())
	if err != nil {
		return PercentMatrix{}, areas, st, err
	}

	var acc [NumTiles]float64 // signed accumulators, one per tile
	var accBN float64         // B∪N slab measured against y = l1

	buf := make([]geom.Segment, 0, 8)
	for _, p := range a {
		p = p.Clockwise()
		for i := 0; i < p.NumEdges(); i++ {
			st.EdgesIn++
			st.EdgeVisits++
			buf = grid.SplitEdge(p.Edge(i), buf[:0])
			st.Intersections += len(buf) - 1
			for _, s := range buf {
				st.EdgesOut++
				t := grid.ClassifySegment(s)
				switch t {
				case TileNW, TileW, TileSW:
					acc[t] += Em(s.A, s.B, grid.M1)
				case TileNE, TileE, TileSE:
					acc[t] += Em(s.A, s.B, grid.M2)
				case TileS:
					acc[t] += El(s.A, s.B, grid.L1)
				case TileN:
					acc[t] += El(s.A, s.B, grid.L2)
				}
				if t == TileN || t == TileB {
					accBN += El(s.A, s.B, grid.L1)
				}
			}
		}
	}
	st.Passes = 1

	for _, t := range Tiles() {
		if t == TileB {
			continue
		}
		areas[t] = abs(acc[t])
	}
	// area(B) = |area(B+N)| − |area(N)|; clamp tiny negative float residue.
	if bArea := abs(accBN) - areas[TileN]; bArea > 0 {
		areas[TileB] = bArea
	}

	total := areas.Total()
	if total <= 0 {
		return PercentMatrix{}, areas, st, fmt.Errorf("core: primary region has zero area")
	}
	return areas.Percent(), areas, st, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
