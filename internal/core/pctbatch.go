package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// PairPercent is one entry of a quantitative batch result: the percent
// matrix (and the per-tile absolute areas behind it) of primary Primary
// against reference Reference.
type PairPercent struct {
	Primary   string
	Reference string
	Matrix    PercentMatrix
	Areas     TileAreas
}

// BatchPctResult is the output of one quantitative all-pairs batch: the
// sorted (primary, reference) percent matrices plus the aggregated
// instrumentation (fast-path hits, edge counts) of the run.
type BatchPctResult struct {
	Pairs []PairPercent
	Stats Stats
}

// BatchPct computes the cardinal direction relation with percentages for
// every ordered pair of distinct regions — the quantitative counterpart of
// BatchCDR and the single quantitative batch entry point. Regions are
// prepared once each unless opt.Prepared supplies them; pairs whose
// polygons all land strictly inside single tiles are answered from areas
// cached at Prepare time without splitting an edge. The context is checked
// once per claimed primary row and its error returned verbatim. Results
// come back sorted by (primary, reference). A nil opt means defaults.
func BatchPct(ctx context.Context, regions []NamedRegion, opt *BatchOptions) (*BatchPctResult, error) {
	var o BatchOptions
	if opt != nil {
		o = *opt
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ps := o.Prepared
	if ps == nil {
		if len(regions) < 2 {
			return &BatchPctResult{}, nil
		}
		var err error
		ps, err = PrepareAll(regions)
		if err != nil {
			return nil, err
		}
	}
	pairs, st, err := batchPctPrepared(ctx, ps, o)
	if err != nil {
		return nil, err
	}
	return &BatchPctResult{Pairs: pairs, Stats: st}, nil
}

// batchPctPrepared is the quantitative batch engine proper, over prepared
// regions. Every region must be usable as a reference (non-degenerate
// bounding box) and as a quantitative primary (positive area); a region
// failing either yields a wrapped error up front.
func batchPctPrepared(ctx context.Context, ps []*Prepared, opt BatchOptions) ([]PairPercent, Stats, error) {
	n := len(ps)
	if n < 2 {
		return nil, Stats{}, nil
	}
	for _, p := range ps {
		if p.gridErr != nil {
			return nil, Stats{}, fmt.Errorf("core: region %q: %w", p.Name, p.gridErr)
		}
		if p.totalArea <= 0 {
			return nil, Stats{}, fmt.Errorf("core: region %q has zero area: %w", p.Name, ErrDegenerateRegion)
		}
	}
	// Name-sorted iteration: out[] lands directly in canonical (primary,
	// reference) order, and each worker's write range is a function of the
	// claimed row alone (same scheme as the qualitative engine).
	order := make([]*Prepared, n)
	copy(order, ps)
	sort.Slice(order, func(i, j int) bool { return order[i].Name < order[j].Name })

	out := make([]PairPercent, n*(n-1))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var next atomic.Int64
	var mu sync.Mutex
	var total Stats
	errs := make([]error, n)
	runPool(workers, func() {
		sc := getScratch()
		defer putScratch(sc)
		var st Stats
		for {
			pi := int(next.Add(1) - 1)
			if pi >= n {
				break
			}
			// Per-row context check, matching the qualitative engine's
			// cancellation granularity.
			if ctx.Err() != nil {
				break
			}
			a := order[pi]
			row := out[pi*(n-1) : (pi+1)*(n-1)]
			k := 0
			for ri := 0; ri < n; ri++ {
				if ri == pi {
					continue
				}
				b := order[ri]
				// Fill the slot in place — areas and matrix are written
				// straight into the output slice instead of copying 72-byte
				// values through return paths.
				slot := &row[k]
				total, err := a.relatePctAreasInto(&slot.Areas, b.grid, opt.NoPrune, opt.NoSoA, sc, &st)
				if err != nil {
					errs[pi] = err
					break
				}
				st.Passes++
				slot.Primary = a.Name
				slot.Reference = b.Name
				percentInto(&slot.Matrix, &slot.Areas, total)
				k++
			}
		}
		mu.Lock()
		total.Merge(st)
		mu.Unlock()
	})
	if err := ctx.Err(); err != nil {
		return nil, total, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, total, err
		}
	}
	return out, total, nil
}

// ComputeAllPairsPct computes every ordered pair's percent matrix
// sequentially.
//
// Deprecated: use BatchPct with BatchOptions{Workers: 1}.
func ComputeAllPairsPct(regions []NamedRegion) ([]PairPercent, error) {
	out, _, err := ComputeAllPairsPctOpt(regions, BatchOptions{Workers: 1})
	return out, err
}

// ComputeAllPairsPctParallel is ComputeAllPairsPct over a GOMAXPROCS-sized
// worker pool.
//
// Deprecated: use BatchPct.
func ComputeAllPairsPctParallel(regions []NamedRegion) ([]PairPercent, error) {
	out, _, err := ComputeAllPairsPctOpt(regions, BatchOptions{})
	return out, err
}

// ComputeAllPairsPctOpt is the configurable quantitative batch engine with
// instrumentation.
//
// Deprecated: use BatchPct, which also reports Stats.
func ComputeAllPairsPctOpt(regions []NamedRegion, opt BatchOptions) ([]PairPercent, Stats, error) {
	res, err := BatchPct(context.Background(), regions, &opt)
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Pairs, res.Stats, nil
}

// ComputeAllPairsPctPrepared runs the quantitative batch over
// already-prepared regions.
//
// Deprecated: use BatchPct with BatchOptions.Prepared.
func ComputeAllPairsPctPrepared(ps []*Prepared, opt BatchOptions) ([]PairPercent, Stats, error) {
	opt.Prepared = ps
	res, err := BatchPct(context.Background(), nil, &opt)
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Pairs, res.Stats, nil
}
