package core

import (
	"fmt"

	"cardirect/internal/geom"
)

// Stats reports instrumentation for one algorithm run; the experiment
// harness uses it to reproduce the paper's edge-count and scan-count
// comparisons against polygon clipping (Fig. 3, Example 3, §3 discussion).
type Stats struct {
	EdgesIn       int // edges of the primary region before splitting
	EdgesOut      int // segments after splitting on the mbb lines
	EdgeVisits    int // number of edge traversals (EdgesIn × passes)
	Passes        int // scans over the primary region's edge list (1 for Compute-CDR)
	PointInPoly   int // point-in-polygon tests performed
	Intersections int // intersection points computed (each costs a division)

	// Batch-engine prune counters: pairs answered by the MBB fast path
	// with zero edge splits (see Prepared.relateFast).
	PruneSingleTile int // mbb(primary) strictly inside one tile → O(1) relation
	PruneBand       int // mbb(primary) strictly inside one row/column → per-polygon boxes

	// Quantitative prune counters: percent matrices answered from areas
	// cached at Prepare time with zero edge splits (see relatePctFast).
	PrunePctTile int // mbb(primary) strictly inside one tile → O(1) matrix
	PrunePctPoly int // every polygon box strictly inside one tile → O(#polygons)

	// DeltaPairs counts pair computations performed by RelationStore delta
	// recomputations (2(n−1) per Add/SetGeometry edit); the initial build
	// and the batch engines leave it zero.
	DeltaPairs int

	// BulkBatches counts batched recomputations performed by
	// RelationStore.AddBulk — one per bulk ingest, regardless of how many
	// regions arrive, where the per-region edit path would have paid a
	// 2(n−1)-pair delta each (see DeltaPairs).
	BulkBatches int

	// LoD-tier counters (see LoD, LoDWorld): pairs answered from the
	// coarse cell-span summary in O(1), from the simplified geometry under
	// the error-band clearance proof, and pairs that fell through to the
	// exact kernel.
	CoarseSingleTile int // coarse cell spans decided a single-tile pair
	LoDSimplified    int // simplified boundary decided the pair (bracket held)
	LoDStrip         int // strip-localised exact stage decided the pair
	LoDExact         int // both LoD stages passed: full exact-kernel fallback
}

// Merge adds the counters of other into st; the batch engine uses it to
// aggregate per-worker instrumentation.
func (st *Stats) Merge(other Stats) {
	st.EdgesIn += other.EdgesIn
	st.EdgesOut += other.EdgesOut
	st.EdgeVisits += other.EdgeVisits
	st.Passes += other.Passes
	st.PointInPoly += other.PointInPoly
	st.Intersections += other.Intersections
	st.PruneSingleTile += other.PruneSingleTile
	st.PruneBand += other.PruneBand
	st.PrunePctTile += other.PrunePctTile
	st.PrunePctPoly += other.PrunePctPoly
	st.DeltaPairs += other.DeltaPairs
	st.BulkBatches += other.BulkBatches
	st.CoarseSingleTile += other.CoarseSingleTile
	st.LoDSimplified += other.LoDSimplified
	st.LoDStrip += other.LoDStrip
	st.LoDExact += other.LoDExact
}

// ComputeCDR implements Algorithm Compute-CDR (Fig. 5 of the paper): it
// returns the basic cardinal direction relation R such that a R b holds,
// where a is the primary and b the reference region, both in REG* and
// represented as sets of simple polygons.
//
// The algorithm makes a single pass over the edges of a: each edge is split
// at its proper crossings with the four lines of mbb(b) so that every
// sub-segment lies in exactly one tile, and the tile of each sub-segment
// (decided by its midpoint, with on-line segments resolved to the interior
// side) is tile-unioned into R. Finally, for each polygon of a containing
// the center of mbb(b), tile B is added — this catches polygons that strictly
// enclose the whole bounding box and therefore have no edge inside it.
//
// The running time is O(k_a + k_b), where k_a and k_b are the total edge
// counts of a and b (Theorem 1 of the paper).
func ComputeCDR(a, b geom.Region) (Relation, error) {
	r, _, err := computeCDR(a, b)
	return r, err
}

// ComputeCDRStats is ComputeCDR with instrumentation.
func ComputeCDRStats(a, b geom.Region) (Relation, Stats, error) {
	return computeCDR(a, b)
}

func computeCDR(a, b geom.Region) (Relation, Stats, error) {
	var st Stats
	if len(a) == 0 {
		return 0, st, fmt.Errorf("core: primary region is empty")
	}
	if len(b) == 0 {
		return 0, st, fmt.Errorf("core: reference region is empty")
	}
	grid, err := NewGrid(b.BoundingBox())
	if err != nil {
		return 0, st, err
	}
	center := grid.Box().Center()

	var rel Relation
	sc := getScratch()
	defer putScratch(sc)
	for _, p := range a {
		p = p.Clockwise() // interior-side tie-breaking needs the canonical orientation
		for i := 0; i < p.NumEdges(); i++ {
			st.EdgesIn++
			st.EdgeVisits++
			sc.buf = grid.SplitEdge(p.Edge(i), sc.buf[:0])
			st.Intersections += len(sc.buf) - 1
			for _, s := range sc.buf {
				st.EdgesOut++
				rel = rel.With(grid.ClassifySegment(s))
			}
		}
		st.PointInPoly++
		if p.Contains(center) {
			rel = rel.With(TileB)
		}
	}
	st.Passes = 1
	if !rel.IsValid() {
		return 0, st, fmt.Errorf("core: primary region produced no tiles (degenerate input)")
	}
	return rel, st, nil
}
