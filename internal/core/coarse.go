package core

import (
	"sort"

	"cardirect/internal/geom"
)

// DefaultCoarseGrid is the default coarse-index resolution per axis.
const DefaultCoarseGrid = 256

// cellSpan is one region's bounding box quantised to coarse cells: the
// box covers cell columns [x0,x1] and rows [y0,y1]. Eight bytes per
// region, so a 10^5-region world's whole summary is cache-resident.
type cellSpan struct {
	x0, x1, y0, y1 uint16
}

// CoarseIndex is the coarse-tile relation summary of a world: every
// region's bounding box quantised onto an S×S cell grid over the world
// box, plus sorted box-coordinate arrays for planner selectivity probes.
//
// The cell map v ↦ floor((v−min)/cellSize) is monotone non-decreasing even
// under floating-point rounding (subtraction and division are monotone,
// floor is monotone), which is the only property the O(1) pair rules need:
// span(a).x1 < span(b).x0 implies a.MaxX < b.MinX STRICTLY (equal
// coordinates land in equal cells), and span(a).x0 > span(b).x0 implies
// a.MinX > b.MinX. The rules are therefore exact when they fire and
// merely inconclusive when boxes share cells — never wrong.
//
// Immutable after construction and safe for concurrent use.
type CoarseIndex struct {
	box    geom.Rect
	cells  int
	cw, ch float64
	spans  []cellSpan

	// Sorted box-coordinate arrays: EstimateTiles answers planner probes
	// with four binary searches instead of a scan.
	minX, maxX, minY, maxY []float64
}

// NewCoarseIndex summarises the given bounding boxes on a cells×cells grid
// over their union. cells ≤ 0 means DefaultCoarseGrid; it is capped at
// 65535 so a span fits uint16.
func NewCoarseIndex(boxes []geom.Rect, cells int) *CoarseIndex {
	if cells <= 0 {
		cells = DefaultCoarseGrid
	}
	if cells > 65535 {
		cells = 65535
	}
	world := geom.EmptyRect()
	for _, b := range boxes {
		world = world.Union(b)
	}
	ci := &CoarseIndex{
		box:   world,
		cells: cells,
		spans: make([]cellSpan, len(boxes)),
		minX:  make([]float64, len(boxes)),
		maxX:  make([]float64, len(boxes)),
		minY:  make([]float64, len(boxes)),
		maxY:  make([]float64, len(boxes)),
	}
	if len(boxes) > 0 {
		ci.cw = world.Width() / float64(cells)
		ci.ch = world.Height() / float64(cells)
	}
	for i, b := range boxes {
		ci.spans[i] = cellSpan{
			x0: ci.cellX(b.MinX), x1: ci.cellX(b.MaxX),
			y0: ci.cellY(b.MinY), y1: ci.cellY(b.MaxY),
		}
		ci.minX[i], ci.maxX[i] = b.MinX, b.MaxX
		ci.minY[i], ci.maxY[i] = b.MinY, b.MaxY
	}
	sort.Float64s(ci.minX)
	sort.Float64s(ci.maxX)
	sort.Float64s(ci.minY)
	sort.Float64s(ci.maxY)
	return ci
}

func (ci *CoarseIndex) cellX(v float64) uint16 {
	if ci.cw <= 0 {
		return 0
	}
	c := int((v - ci.box.MinX) / ci.cw)
	if c < 0 {
		c = 0
	}
	if c >= ci.cells {
		c = ci.cells - 1
	}
	return uint16(c)
}

func (ci *CoarseIndex) cellY(v float64) uint16 {
	if ci.ch <= 0 {
		return 0
	}
	c := int((v - ci.box.MinY) / ci.ch)
	if c < 0 {
		c = 0
	}
	if c >= ci.cells {
		c = ci.cells - 1
	}
	return uint16(c)
}

// Len returns the number of summarised regions.
func (ci *CoarseIndex) Len() int { return len(ci.spans) }

// PairSingleTile answers the relation of primary i against reference j
// from cell spans alone when both the column and row are decided by the
// monotone cell rules — the coarse tier's O(1) "clearly single-tile"
// answer, bit-identical to the exact kernel's single-tile fast path. ok is
// false when the spans share cells on either axis and the pair needs
// geometry.
func (ci *CoarseIndex) PairSingleTile(i, j int) (Relation, bool) {
	a, b := ci.spans[i], ci.spans[j]
	var col int
	switch {
	case a.x1 < b.x0:
		col = 0
	case a.x0 > b.x1:
		col = 2
	case a.x0 > b.x0 && a.x1 < b.x1:
		col = 1
	default:
		return 0, false
	}
	var row int
	switch {
	case a.y1 < b.y0:
		row = 0
	case a.y0 > b.y1:
		row = 2
	case a.y0 > b.y0 && a.y1 < b.y1:
		row = 1
	default:
		return 0, false
	}
	return Rel(TileAt(col, row)), true
}

// coarsePairLut maps the eight monotone cell-span comparisons of a pair —
// packed four per axis as (a.hi < b.lo) | (a.lo > b.hi)<<1 |
// (a.lo > b.lo)<<2 | (a.hi < b.hi)<<3, x in the low nibble, y in the high —
// to the pair's single-tile relation, or 0 (never a valid relation) when
// either axis is undecided. Precomputing the full 256-entry table lets the
// huge-world row sweep turn PairSingleTile's six data-dependent branches
// into flag materialisations plus one load and a single almost-always-taken
// branch — the coarse tier decides >99% of pairs, so that branch predicts.
var coarsePairLut [256]Relation

// b2i materialises a comparison flag without a branch (the compiler emits
// a conditional set for this shape) — the coarsePairLut index builder.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// coarseAxisCode resolves one axis nibble to a column/row index, mirroring
// PairSingleTile's rule order exactly: before (0), after (2), strictly
// inside (1), else undecided (-1).
func coarseAxisCode(bits int) int {
	switch {
	case bits&1 != 0:
		return 0
	case bits&2 != 0:
		return 2
	case bits&4 != 0 && bits&8 != 0:
		return 1
	}
	return -1
}

func init() {
	for xb := 0; xb < 16; xb++ {
		for yb := 0; yb < 16; yb++ {
			col, row := coarseAxisCode(xb), coarseAxisCode(yb)
			if col >= 0 && row >= 0 {
				coarsePairLut[xb|yb<<4] = Rel(TileAt(col, row))
			}
		}
	}
}

// EstimateTiles estimates, for each tile of the reference grid g, the
// fraction of summarised regions whose relation is exactly that single
// tile. Per-axis counts come from four binary searches over the sorted
// box-coordinate arrays; the joint fraction is the independence product of
// the axis fractions. covered is the estimated total single-tile mass
// (≤ 1); the remaining 1−covered is multi-tile regions the caller must
// weight by its own heuristic. Feeds planner selectivity for relation
// conditions that neither the store nor the live R-tree can probe.
func (ci *CoarseIndex) EstimateTiles(g Grid) (frac [3][3]float64, covered float64) {
	n := len(ci.spans)
	if n == 0 {
		return frac, 0
	}
	fn := float64(n)
	// count of values strictly below / strictly above a line.
	below := func(sorted []float64, v float64) int { return sort.SearchFloat64s(sorted, v) }
	above := func(sorted []float64, v float64) int {
		return len(sorted) - sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	}
	var colFrac, rowFrac [3]float64
	colFrac[0] = float64(below(ci.maxX, g.M1)) / fn
	colFrac[2] = float64(above(ci.minX, g.M2)) / fn
	// Middle column needs MinX > M1 AND MaxX < M2 jointly; the per-axis
	// arrays give only the marginals, so use the union lower bound
	// #(MinX>M1) + #(MaxX<M2) − n, clamped — an underestimate, never an
	// overestimate.
	if mid := above(ci.minX, g.M1) + below(ci.maxX, g.M2) - n; mid > 0 {
		colFrac[1] = float64(mid) / fn
	}
	rowFrac[0] = float64(below(ci.maxY, g.L1)) / fn
	rowFrac[2] = float64(above(ci.minY, g.L2)) / fn
	if mid := above(ci.minY, g.L1) + below(ci.maxY, g.L2) - n; mid > 0 {
		rowFrac[1] = float64(mid) / fn
	}
	for c := 0; c < 3; c++ {
		for r := 0; r < 3; r++ {
			frac[c][r] = colFrac[c] * rowFrac[r]
			covered += frac[c][r]
		}
	}
	return frac, covered
}

// EstimateSel estimates the fraction of summarised regions whose relation
// to a reference with grid g lies in rels: the single-tile mass that
// matches, plus the ambiguous remainder weighted by the tile-count
// heuristic rels.Len()/9.
func (ci *CoarseIndex) EstimateSel(g Grid, rels RelationSet) float64 {
	frac, covered := ci.EstimateTiles(g)
	sel := 0.0
	for c := 0; c < 3; c++ {
		for r := 0; r < 3; r++ {
			if rels.Contains(Rel(TileAt(c, r))) {
				sel += frac[c][r]
			}
		}
	}
	if covered < 1 {
		sel += (1 - covered) * float64(rels.Len()) / 9
	}
	return sel
}
