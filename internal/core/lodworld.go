package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cardirect/internal/geom"
)

// LoDWorld is a world prepared for huge-scale relation computation: every
// region in level-of-detail form (simplified geometry + error band + lazy
// exact fallback) plus the coarse cell-span summary answering clearly
// single-tile pairs in O(1). At 10^5 regions an eagerly materialised
// relation matrix is off the table (10^10 cells), so the world answers
// pairs and row sweeps on demand instead; every answer is bit-identical to
// the exact kernel's (differential-tested, fuzzed).
//
// Immutable after construction except for the per-region exact caches;
// safe for concurrent use.
type LoDWorld struct {
	lods    []*LoD
	coarse  *CoarseIndex
	byName  map[string]int
	workers int

	// Reference-side facts packed into flat arrays: the row sweeps touch
	// every region as a reference, and loading a 32-byte grid from a
	// contiguous slice beats chasing lods[j] → simp → grid through two
	// cache misses per pair.
	grids   []Grid
	centers []geom.Point
}

// PrepareLoDWorld builds the level-of-detail world: names must be
// non-empty and unique (the batch naming contract). Simplified geometry is
// arena-allocated; exact geometry is prepared lazily per region, only when
// a pair needs it.
func PrepareLoDWorld(regions []NamedRegion, opt LoDOptions) (*LoDWorld, error) {
	w := &LoDWorld{
		lods:    make([]*LoD, len(regions)),
		byName:  make(map[string]int, len(regions)),
		workers: opt.Workers,
	}
	var mu sync.Mutex
	var firstErr error
	var next atomic.Int64
	// Simplification and preparation are per-region independent CPU work;
	// fan out with one arena per worker (an arena is just backing storage —
	// nothing requires the world to share one).
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(regions) {
		workers = len(regions)
	}
	if workers < 1 {
		workers = 1
	}
	seen := make(map[string]bool, len(regions))
	for i, r := range regions {
		if r.Name == "" {
			return nil, fmt.Errorf("core: region %d has empty name", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("core: duplicate region name %q", r.Name)
		}
		seen[r.Name] = true
		w.byName[r.Name] = i
	}
	runPool(workers, func() {
		ar := NewArena()
		for {
			i := int(next.Add(1) - 1)
			if i >= len(regions) {
				return
			}
			r := regions[i]
			l, err := PrepareLoD(ar, r.Name, r.Region, opt)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			w.lods[i] = l
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	boxes := make([]geom.Rect, len(w.lods))
	w.grids = make([]Grid, len(w.lods))
	w.centers = make([]geom.Point, len(w.lods))
	for i, l := range w.lods {
		boxes[i] = l.simp.Box
		w.grids[i] = l.simp.grid
		w.centers[i] = l.simp.center
	}
	w.coarse = NewCoarseIndex(boxes, opt.Grid)
	return w, nil
}

// Len returns the number of regions.
func (w *LoDWorld) Len() int { return len(w.lods) }

// Index returns the index of the named region, or -1.
func (w *LoDWorld) Index(name string) int {
	if i, ok := w.byName[name]; ok {
		return i
	}
	return -1
}

// LoD returns region i's level-of-detail form.
func (w *LoDWorld) LoD(i int) *LoD { return w.lods[i] }

// Coarse returns the world's coarse cell-span summary.
func (w *LoDWorld) Coarse() *CoarseIndex { return w.coarse }

// Relation answers the relation of primary i against reference j through
// the tier stack: coarse cell spans in O(1), then the simplified geometry
// under the clearance proof, then the exact kernel. Bit-identical to
// Relate(exact_i, exact_j, sc) including the degenerate-reference error.
// sc may be nil.
func (w *LoDWorld) Relation(i, j int, sc *Scratch, st *Stats) (Relation, error) {
	b := w.lods[j]
	if b.simp.gridErr != nil {
		return 0, b.simp.gridErr
	}
	if rel, ok := w.coarse.PairSingleTile(i, j); ok {
		if st != nil {
			st.CoarseSingleTile++
		}
		return rel, nil
	}
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	return w.lods[i].relateLoD(b.simp.grid, b.simp.center, sc, st), nil
}

// RelationPct answers the percent matrix of primary i against reference j
// through the tier stack, bit-identical to RelatePct(exact_i, exact_j, sc).
// sc may be nil.
func (w *LoDWorld) RelationPct(i, j int, sc *Scratch, st *Stats) (PercentMatrix, TileAreas, error) {
	return RelatePctLoD(w.lods[i], w.lods[j], sc, st)
}

// BatchRows computes, for each requested primary row, its relation to
// every other region of the world — the sampled-row flavour of all-pairs
// that huge worlds use in place of the infeasible full matrix. exact
// routes every pair through the exact-geometry engine instead of the LoD
// tiers (the E23 comparison baseline; results are identical either way).
// out[r][j] is rows[r]'s relation to region j, with out[r][rows[r]] left
// zero. The context is checked once per claimed row.
func (w *LoDWorld) BatchRows(ctx context.Context, rows []int, exact bool) ([][]Relation, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(w.lods)
	for _, l := range w.lods {
		if l.simp.gridErr != nil {
			return nil, Stats{}, fmt.Errorf("core: region %q: %w", l.Name, l.simp.gridErr)
		}
	}
	out := make([][]Relation, len(rows))
	for r := range out {
		if rows[r] < 0 || rows[r] >= n {
			return nil, Stats{}, fmt.Errorf("core: row index %d out of range [0,%d)", rows[r], n)
		}
		out[r] = make([]Relation, n)
	}
	workers := w.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var mu sync.Mutex
	var total Stats
	runPool(workers, func() {
		sc := getScratch()
		defer putScratch(sc)
		var st Stats
		for {
			r := int(next.Add(1) - 1)
			if r >= len(rows) {
				break
			}
			if ctx.Err() != nil {
				break
			}
			pi := rows[r]
			row := out[r]
			if exact {
				a := w.lods[pi].Exact()
				for j := 0; j < n; j++ {
					if j == pi {
						continue
					}
					// grids and centers are exact (anchored boxes)
					row[j] = a.relate(w.grids[j], w.centers[j], false, false, sc, &st)
					st.Passes++
				}
				continue
			}
			a := w.lods[pi]
			// PairSingleTile with the primary's span hoisted out of the
			// inner loop and the per-axis switches folded into the
			// coarsePairLut nibble lookup: the sweep streams the 8-byte
			// spans sequentially, the comparisons materialise as flags, and
			// the only data-dependent branch left is the lookup hit, which
			// the predictor learns (>99% of pairs decide here).
			spans := w.coarse.spans
			as := spans[pi]
			for j := 0; j < n; j++ {
				if j == pi {
					continue
				}
				bs := spans[j]
				xb := b2i(as.x1 < bs.x0) | b2i(as.x0 > bs.x1)<<1 |
					b2i(as.x0 > bs.x0)<<2 | b2i(as.x1 < bs.x1)<<3
				yb := b2i(as.y1 < bs.y0) | b2i(as.y0 > bs.y1)<<1 |
					b2i(as.y0 > bs.y0)<<2 | b2i(as.y1 < bs.y1)<<3
				if rel := coarsePairLut[xb|yb<<4]; rel != 0 {
					st.CoarseSingleTile++
					row[j] = rel
					continue
				}
				row[j] = a.relateLoD(w.grids[j], w.centers[j], sc, &st)
				st.Passes++
			}
		}
		mu.Lock()
		total.Merge(st)
		mu.Unlock()
	})
	if err := ctx.Err(); err != nil {
		return nil, total, err
	}
	return out, total, nil
}
