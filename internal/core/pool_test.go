package core

import (
	"testing"

	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// TestOneShotPooledAllocs pins the scratch-pool satellite: the one-shot
// convenience paths (ComputeCDR, ComputeCDRPct, Relate/RelatePct with a nil
// scratch) must allocate nothing once the pool is warm. Inputs are already
// clockwise so orientation normalisation cannot allocate either.
func TestOneShotPooledAllocs(t *testing.T) {
	a := geom.Rgn(workload.Box(2, -8, 8, -2))
	b := geom.Rgn(workload.Box(0, 0, 10, 6))
	pa, err := Prepare("a", a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Prepare("b", b)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool and sanity-check the answers once.
	rel, err := ComputeCDR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rel != S {
		t.Fatalf("ComputeCDR = %v, want %v", rel, S)
	}
	if _, _, err := ComputeCDRPct(a, b); err != nil {
		t.Fatal(err)
	}

	for name, f := range map[string]func(){
		"ComputeCDR":    func() { _, _ = ComputeCDR(a, b) },
		"ComputeCDRPct": func() { _, _, _ = ComputeCDRPct(a, b) },
		"RelateNilSc":   func() { _, _ = Relate(pa, pb, nil) },
		"RelatePctNilSc": func() {
			_, _, _ = RelatePct(pa, pb, nil)
		},
	} {
		if avg := testing.AllocsPerRun(50, f); avg > 0 {
			t.Errorf("%s allocates %.1f objects per call with a warm pool, want 0", name, avg)
		}
	}
}
