package core

import (
	"testing"
	"testing/quick"
)

func TestRelationSetBasics(t *testing.T) {
	var s RelationSet
	if !s.IsEmpty() || s.Len() != 0 {
		t.Error("zero set should be empty")
	}
	s.Add(N)
	s.Add(Rel(TileN, TileNE))
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Contains(N) || s.Contains(NE) {
		t.Error("membership wrong")
	}
	s.Add(N) // idempotent
	if s.Len() != 2 {
		t.Error("Add not idempotent")
	}
	s.Remove(N)
	if s.Contains(N) || s.Len() != 1 {
		t.Error("Remove failed")
	}
	// Invalid relations are ignored.
	s.Add(0)
	if s.Len() != 1 || s.Contains(0) {
		t.Error("empty relation must not be addable")
	}
}

func TestRelationSetOps(t *testing.T) {
	a := NewRelationSet(N, S, E)
	b := NewRelationSet(S, E, W)
	if got := a.Union(b); got.Len() != 4 {
		t.Errorf("Union len = %d", got.Len())
	}
	if got := a.Intersect(b); got.Len() != 2 || !got.Contains(S) || !got.Contains(E) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got.Len() != 1 || !got.Contains(N) {
		t.Errorf("Minus = %v", got)
	}
	if !a.Equal(NewRelationSet(E, N, S)) {
		t.Error("Equal should ignore insertion order")
	}
}

func TestUniverse(t *testing.T) {
	u := Universe()
	if u.Len() != 511 {
		t.Fatalf("|Universe| = %d, want 511", u.Len())
	}
	for _, r := range AllRelations() {
		if !u.Contains(r) {
			t.Errorf("Universe misses %v", r)
		}
	}
}

func TestRelationSetString(t *testing.T) {
	if got := NewRelationSet().String(); got != "{}" {
		t.Errorf("empty = %q", got)
	}
	if got := NewRelationSet(Rel(TileN, TileNE)).String(); got != "N:NE" {
		t.Errorf("singleton = %q", got)
	}
	s := NewRelationSet(N, W)
	if got := s.String(); got != "{N, W}" && got != "{W, N}" {
		t.Errorf("pair = %q", got)
	}
}

func TestParseRelationSet(t *testing.T) {
	s, err := ParseRelationSet("{N, N:NE, NW:N}")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || !s.Contains(Rel(TileNW, TileN)) {
		t.Errorf("parsed = %v", s)
	}
	single, err := ParseRelationSet("B:S")
	if err != nil || single.Len() != 1 || !single.Contains(Rel(TileB, TileS)) {
		t.Errorf("single parse = %v, %v", single, err)
	}
	empty, err := ParseRelationSet("{}")
	if err != nil || !empty.IsEmpty() {
		t.Errorf("empty parse = %v, %v", empty, err)
	}
	if _, err := ParseRelationSet("{N, X}"); err == nil {
		t.Error("bad member should be rejected")
	}
}

func TestRelationSetRoundtripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var s RelationSet
		for _, w := range raw {
			s.Add(Relation(w%uint16(RelationMask)) + 1)
		}
		got, err := ParseRelationSet(s.String())
		if err != nil {
			return false
		}
		if s.IsEmpty() {
			return got.IsEmpty()
		}
		return got.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRelationSetAlgebraProperty(t *testing.T) {
	mk := func(ws []uint16) RelationSet {
		var s RelationSet
		for _, w := range ws {
			s.Add(Relation(w%uint16(RelationMask)) + 1)
		}
		return s
	}
	f := func(aw, bw []uint16) bool {
		a, b := mk(aw), mk(bw)
		u := a.Union(b)
		i := a.Intersect(b)
		// |A∪B| + |A∩B| = |A| + |B|
		if u.Len()+i.Len() != a.Len()+b.Len() {
			return false
		}
		// A \ B ⊆ A and disjoint from B.
		d := a.Minus(b)
		return d.Intersect(b).IsEmpty() && d.Union(i).Union(b.Minus(a)).Equal(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
