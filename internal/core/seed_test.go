package core

import (
	"errors"
	"reflect"
	"testing"

	"cardirect/internal/workload"
)

// seedRegions builds a deterministic mixed workload for seeding tests.
func seedRegions(t *testing.T, n int) []NamedRegion {
	t.Helper()
	gen := workload.New(7)
	rs := gen.Scatter(n, 8)
	out := make([]NamedRegion, n)
	for i, r := range rs {
		out[i] = NamedRegion{Name: nameOf(i), Region: r}
	}
	return out
}

func nameOf(i int) string {
	return string([]byte{'r', byte('a' + i/26), byte('a' + i%26)})
}

// TestSeededStoreMatchesComputed builds one store by computing and a second
// from the first one's cached pairs, then checks they are indistinguishable
// — including after further edits through the delta path.
func TestSeededStoreMatchesComputed(t *testing.T) {
	regions := seedRegions(t, 12)
	opt := StoreOptions{Pct: true}
	computed, err := NewRelationStore(regions, opt)
	if err != nil {
		t.Fatal(err)
	}
	pcts, err := computed.PctPairs()
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := NewRelationStoreSeeded(regions, StoreSeed{Pairs: computed.Pairs(), Pcts: pcts}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seeded.Pairs(), computed.Pairs()) {
		t.Fatal("seeded store pairs differ from computed")
	}
	sp, err := seeded.PctPairs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, pcts) {
		t.Fatal("seeded store percent pairs differ from computed")
	}
	// The delta path must work identically on a seeded store.
	extra := workload.New(99).Scatter(2, 8)
	for _, s := range []*RelationStore{computed, seeded} {
		if err := s.Add("zzz", extra[0]); err != nil {
			t.Fatal(err)
		}
		if err := s.SetGeometry("raa", extra[1]); err != nil {
			t.Fatal(err)
		}
		if err := s.Remove("rab"); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(seeded.Pairs(), computed.Pairs()) {
		t.Fatal("stores diverged after edits")
	}
}

// TestSeededStoreAreasReconstructed seeds percent entries without areas and
// checks the reconstructed areas match the computed ones.
func TestSeededStoreAreasReconstructed(t *testing.T) {
	regions := seedRegions(t, 8)
	opt := StoreOptions{Pct: true}
	computed, err := NewRelationStore(regions, opt)
	if err != nil {
		t.Fatal(err)
	}
	pcts, err := computed.PctPairs()
	if err != nil {
		t.Fatal(err)
	}
	stripped := make([]PairPercent, len(pcts))
	for i, pp := range pcts {
		pp.Areas = TileAreas{}
		stripped[i] = pp
	}
	seeded, err := NewRelationStoreSeeded(regions, StoreSeed{Pairs: computed.Pairs(), Pcts: stripped}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range pcts {
		got, err := seeded.Areas(pp.Primary, pp.Reference)
		if err != nil {
			t.Fatal(err)
		}
		for ti := range got {
			want := pp.Areas[ti]
			diff := got[ti] - want
			if diff < 0 {
				diff = -diff
			}
			tol := 1e-9 * (1 + want)
			if diff > tol {
				t.Fatalf("pair (%s,%s) tile %d: reconstructed area %g, computed %g",
					pp.Primary, pp.Reference, ti, got[ti], want)
			}
		}
	}
}

// TestSeededStoreRejectsBadSeeds covers the ErrBadSeed surface.
func TestSeededStoreRejectsBadSeeds(t *testing.T) {
	regions := seedRegions(t, 4)
	opt := StoreOptions{}
	computed, err := NewRelationStore(regions, opt)
	if err != nil {
		t.Fatal(err)
	}
	good := computed.Pairs()
	bad := [][]PairRelation{
		good[:len(good)-1],                       // missing pair
		append([]PairRelation{good[0]}, good...), // duplicate pair
		func() []PairRelation { // unknown name
			c := append([]PairRelation{}, good...)
			c[0].Primary = "nope"
			return c
		}(),
		func() []PairRelation { // self pair
			c := append([]PairRelation{}, good...)
			c[0].Reference = c[0].Primary
			return c
		}(),
	}
	for i, pairs := range bad {
		if _, err := NewRelationStoreSeeded(regions, StoreSeed{Pairs: pairs}, opt); !errors.Is(err, ErrBadSeed) {
			t.Errorf("bad seed %d: err = %v, want ErrBadSeed", i, err)
		}
	}
	// Pct demanded but no percent entries.
	if _, err := NewRelationStoreSeeded(regions, StoreSeed{Pairs: good}, StoreOptions{Pct: true}); !errors.Is(err, ErrBadSeed) {
		t.Errorf("missing pcts: err = %v, want ErrBadSeed", err)
	}
}
