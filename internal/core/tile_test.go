package core

import (
	"testing"
	"testing/quick"
)

func TestTileNamesAndGrid(t *testing.T) {
	if TileB.String() != "B" || TileSW.String() != "SW" || TileSE.String() != "SE" {
		t.Error("tile names wrong")
	}
	if Tile(200).String() != "Tile(200)" {
		t.Error("out-of-range tile String")
	}
	for _, tl := range Tiles() {
		if !tl.Valid() {
			t.Errorf("tile %v invalid", tl)
		}
		if TileAt(tl.Col(), tl.Row()) != tl {
			t.Errorf("grid roundtrip failed for %v", tl)
		}
	}
	if Tile(9).Valid() {
		t.Error("tile 9 should be invalid")
	}
	if TileAt(1, 1) != TileB || TileAt(0, 2) != TileNW || TileAt(2, 0) != TileSE {
		t.Error("TileAt mapping wrong")
	}
}

func TestRelationConstruction(t *testing.T) {
	r := Rel(TileS, TileSW)
	if !r.Has(TileS) || !r.Has(TileSW) || r.Has(TileB) {
		t.Error("Rel membership wrong")
	}
	if r.NumTiles() != 2 {
		t.Errorf("NumTiles = %d", r.NumTiles())
	}
	if !r.MultiTile() || r.SingleTile() {
		t.Error("multi-tile classification wrong")
	}
	if !S.SingleTile() || S.MultiTile() {
		t.Error("single-tile classification wrong")
	}
	if Rel().IsValid() {
		t.Error("empty relation should be invalid")
	}
	if !Rel().IsEmpty() {
		t.Error("Rel() should be empty")
	}
}

func TestTileUnion(t *testing.T) {
	// The paper's Definition 2 example: R1 = S:SW, R2 = S:E:SE, R3 = W.
	r1 := Rel(TileS, TileSW)
	r2 := Rel(TileS, TileE, TileSE)
	r3 := Rel(TileW)
	if got := r1.Union(r2); got.String() != "S:SW:E:SE" {
		t.Errorf("tile-union(R1,R2) = %v", got)
	}
	if got := r1.Union(r2, r3); got.String() != "S:SW:W:E:SE" {
		t.Errorf("tile-union(R1,R2,R3) = %v", got)
	}
}

func TestRelationStringCanonicalOrder(t *testing.T) {
	// B:S:W must render in canonical order regardless of construction order.
	r := Rel(TileW, TileB, TileS)
	if got := r.String(); got != "B:S:W" {
		t.Errorf("String = %q, want B:S:W", got)
	}
	if got := Rel().String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
	full := Rel(TileB, TileS, TileSW, TileW, TileNW, TileN, TileNE, TileE, TileSE)
	if got := full.String(); got != "B:S:SW:W:NW:N:NE:E:SE" {
		t.Errorf("full String = %q", got)
	}
}

func TestParseRelation(t *testing.T) {
	r, err := ParseRelation("B:S:W")
	if err != nil || r != Rel(TileB, TileS, TileW) {
		t.Errorf("ParseRelation = %v, %v", r, err)
	}
	// Any order and case parse to the same relation.
	r2, err := ParseRelation("w:b:s")
	if err != nil || r2 != r {
		t.Errorf("order/case-insensitive parse = %v, %v", r2, err)
	}
	if _, err := ParseRelation("B:S:B"); err == nil {
		t.Error("duplicate tile should be rejected")
	}
	if _, err := ParseRelation("B:X"); err == nil {
		t.Error("unknown tile should be rejected")
	}
	if _, err := ParseRelation(""); err == nil {
		t.Error("empty string should be rejected")
	}
	if _, err := ParseRelation("NE:E"); err != nil {
		t.Errorf("NE:E should parse: %v", err)
	}
}

func TestParseStringRoundtripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		r := Relation(raw%uint16(RelationMask)) + 1 // 1..511
		got, err := ParseRelation(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelationMatrix(t *testing.T) {
	// The paper's example: S has only the bottom-middle cell set.
	m := S.Matrix()
	want := [3][3]bool{{false, false, false}, {false, false, false}, {false, true, false}}
	if m != want {
		t.Errorf("S matrix = %v", m)
	}
	// NE:E sets top-right and middle-right.
	m2 := Rel(TileNE, TileE).Matrix()
	if !m2[0][2] || !m2[1][2] || m2[2][2] || m2[0][0] || m2[1][1] {
		t.Errorf("NE:E matrix = %v", m2)
	}
	// The paper's third example: B:S:SW:W:NW:N:E:SE is everything but NE.
	r, _ := ParseRelation("B:S:SW:W:NW:N:E:SE")
	m3 := r.Matrix()
	if m3[0][2] {
		t.Error("NE cell should be unset")
	}
	count := 0
	for i := range m3 {
		for j := range m3[i] {
			if m3[i][j] {
				count++
			}
		}
	}
	if count != 8 {
		t.Errorf("cells set = %d, want 8", count)
	}
}

func TestMatrixString(t *testing.T) {
	got := S.MatrixString()
	want := "□□□\n□□□\n□■□"
	if got != want {
		t.Errorf("MatrixString = %q, want %q", got, want)
	}
}

func TestAllRelations(t *testing.T) {
	all := AllRelations()
	if len(all) != 511 {
		t.Fatalf("|D*| = %d, want 511", len(all))
	}
	seen := map[Relation]bool{}
	for _, r := range all {
		if !r.IsValid() {
			t.Errorf("invalid relation %v in AllRelations", r)
		}
		if seen[r] {
			t.Errorf("duplicate relation %v", r)
		}
		seen[r] = true
	}
}

func TestIntersectWith(t *testing.T) {
	a := Rel(TileB, TileS, TileW)
	b := Rel(TileS, TileW, TileE)
	if got := a.Intersect(b); got != Rel(TileS, TileW) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.With(TileE); !got.Has(TileE) || got.NumTiles() != 4 {
		t.Errorf("With = %v", got)
	}
}
