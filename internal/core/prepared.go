package core

import (
	"errors"
	"fmt"

	"cardirect/internal/geom"
)

// ErrDegenerateRegion is returned (wrapped, with the region's name) when a
// region cannot participate in relation computation: it has no polygons, or
// its polygons contribute no edges. Callers can test for it with errors.Is.
var ErrDegenerateRegion = errors.New("core: degenerate region")

// Prepared is a region preprocessed once for repeated cardinal direction
// computation. It holds everything Compute-CDR needs on either side of a
// relation — the canonical clockwise orientation, the edges flattened into
// one contiguous slice (cache locality for the split loop), per-polygon
// bounding boxes (the MBB fast path), and the reference-side grid — so the
// O(n²) all-pairs batch pays the per-region preprocessing exactly once per
// region instead of once per pair. A Prepared value is immutable after
// construction and safe to share across goroutines.
type Prepared struct {
	// Name identifies the region in batch results and error messages.
	Name string
	// Region is the input region, normalised to the canonical clockwise
	// orientation. Callers must not mutate it.
	Region geom.Region
	// Box is mbb(Region).
	Box geom.Rect

	edges     []geom.Segment // every edge of every polygon, contiguous
	polys     []preparedPoly // per-polygon metadata, parallel to Region
	grid      Grid           // tile grid when the region is a reference
	gridErr   error          // non-nil when Box is degenerate (unusable as reference)
	center    geom.Point     // Box.Center(), hoisted out of the pair loop
	fastOK    bool           // polygons are sound enough for the band fast path
	totalArea float64        // summed polygon areas, for the percent fast path
}

type preparedPoly struct {
	ring geom.Polygon
	box  geom.Rect
	area float64 // the polygon's area, cached for the percent fast path
}

// Prepare preprocesses a region for repeated relation computation. It fails
// with a wrapped ErrDegenerateRegion when the region has no polygons or no
// edges — inputs for which Compute-CDR has no answer.
func Prepare(name string, r geom.Region) (*Prepared, error) {
	if len(r) == 0 {
		return nil, fmt.Errorf("core: region %q is empty: %w", name, ErrDegenerateRegion)
	}
	norm := r.Clockwise()
	total := norm.NumEdges()
	if total == 0 {
		return nil, fmt.Errorf("core: region %q has no edges: %w", name, ErrDegenerateRegion)
	}
	p := &Prepared{
		Name:   name,
		Region: norm,
		edges:  make([]geom.Segment, 0, total),
		polys:  make([]preparedPoly, 0, len(norm)),
		fastOK: true,
	}
	box := geom.EmptyRect()
	for _, poly := range norm {
		pb := poly.BoundingBox()
		area := poly.Area()
		box = box.Union(pb)
		p.polys = append(p.polys, preparedPoly{ring: poly, box: pb, area: area})
		p.totalArea += area
		for i := 0; i < poly.NumEdges(); i++ {
			e := poly.Edge(i)
			if e.IsDegenerate() {
				p.fastOK = false // zero-length edges break the band derivation
			}
			p.edges = append(p.edges, e)
		}
		if area == 0 {
			p.fastOK = false // degenerate rings violate the orientation invariant
		}
	}
	p.Box = box
	p.grid, p.gridErr = NewGrid(box)
	if p.gridErr == nil {
		p.center = p.grid.Box().Center()
	}
	return p, nil
}

// PrepareAll preprocesses a batch of named regions, enforcing the batch
// naming contract (non-empty, unique names).
func PrepareAll(regions []NamedRegion) ([]*Prepared, error) {
	seen := make(map[string]bool, len(regions))
	out := make([]*Prepared, len(regions))
	for i, r := range regions {
		if r.Name == "" {
			return nil, fmt.Errorf("core: region %d has empty name", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("core: duplicate region name %q", r.Name)
		}
		seen[r.Name] = true
		p, err := Prepare(r.Name, r.Region)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// NumEdges returns the region's total edge count (k in the paper's bounds).
func (p *Prepared) NumEdges() int { return len(p.edges) }

// Edges returns the region's edges as one contiguous slice in polygon ring
// order. The slice is shared — callers must not mutate it.
func (p *Prepared) Edges() []geom.Segment { return p.edges }

// Grid returns the nine-tile grid induced by the region's bounding box, or
// an error when the box is degenerate and the region cannot serve as a
// reference (it can still be a primary).
func (p *Prepared) Grid() (Grid, error) { return p.grid, p.gridErr }

// Scratch holds the reusable buffers of one computation thread: the
// edge-split buffer shared by Relate and RelatePct, and the per-tile signed
// accumulators of the quantitative algorithm. Each worker of a parallel
// batch owns its own Scratch; sharing one across goroutines is a data race.
// The zero value is ready to use.
type Scratch struct {
	buf   []geom.Segment
	acc   [NumTiles]float64 // per-tile trapezoid accumulators (RelatePct)
	accBN float64           // B∪N slab accumulator against y = l1 (RelatePct)
}

// Relate computes the cardinal direction relation a R b of the primary a
// against the reference b — equivalent to ComputeCDR(a.Region, b.Region) but
// with all per-region work already paid, and with the MBB fast path applied
// when a's bounding box permits it. sc may be nil (a throwaway scratch is
// used).
func Relate(a, b *Prepared, sc *Scratch) (Relation, error) {
	if b.gridErr != nil {
		return 0, b.gridErr
	}
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	return a.relate(b.grid, b.center, false, sc, nil), nil
}

// RelateGrid computes the relation of the primary region against an
// arbitrary reference grid. sc may be nil.
func (p *Prepared) RelateGrid(g Grid, sc *Scratch) Relation {
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	return p.relate(g, g.Box().Center(), false, sc, nil)
}

// relate dispatches between the MBB fast path and the full edge-splitting
// algorithm. The result is always a valid (non-empty) relation: Prepare
// guarantees at least one edge exists.
func (p *Prepared) relate(g Grid, center geom.Point, noPrune bool, sc *Scratch, st *Stats) Relation {
	if !noPrune {
		if rel, ok := p.relateFast(g, st); ok {
			return rel
		}
	}
	return p.relateFull(g, center, sc, st)
}

// strictCol returns the grid column strictly containing the box — the box
// touches no vertical grid line — or -1 when the box spans or touches one.
func strictCol(b geom.Rect, g Grid) int {
	switch {
	case b.MaxX < g.M1:
		return 0
	case b.MinX > g.M2:
		return 2
	case b.MinX > g.M1 && b.MaxX < g.M2:
		return 1
	}
	return -1
}

// strictRow is the row analogue of strictCol.
func strictRow(b geom.Rect, g Grid) int {
	switch {
	case b.MaxY < g.L1:
		return 0
	case b.MinY > g.L2:
		return 2
	case b.MinY > g.L1 && b.MaxY < g.L2:
		return 1
	}
	return -1
}

// relateFast answers the relation from bounding boxes alone, with zero edge
// splits, when mbb(primary) avoids enough grid lines to make the answer
// exact:
//
//   - mbb strictly inside a single tile: every point of the primary lies
//     strictly inside that tile, so the relation is that tile — O(1).
//   - mbb strictly inside a single column (or row): no edge can cross the
//     two vertical (horizontal) grid lines, so the relation is the fixed
//     column crossed with the rows each polygon's own bounding box spans —
//     O(#polygons). This covers every strictly-disjoint pair (boxes
//     separated on x or y yield at most 3 adjacent perimeter tiles) and
//     also primaries threading through the middle column or row.
//
// The row derivation per polygon is exact for simple clockwise rings: a
// ring's boundary projects onto the full interval [MinY, MaxY], so it has
// sub-segments strictly below y = l1 iff MinY < l1, strictly above y = l2
// iff MaxY > l2, and strictly between iff the open band overlaps (MinY,
// MaxY) — and an on-line horizontal edge is classified by the interior-side
// rule to the side its polygon's area lies on, matching the same strict
// inequalities. Regions with zero-area rings or zero-length edges (fastOK
// unset) skip the band path, because they break that argument; the
// single-tile path needs no such invariant.
func (p *Prepared) relateFast(g Grid, st *Stats) (Relation, bool) {
	col := strictCol(p.Box, g)
	row := strictRow(p.Box, g)
	if col >= 0 && row >= 0 {
		if st != nil {
			st.PruneSingleTile++
		}
		return Rel(TileAt(col, row)), true
	}
	if !p.fastOK {
		return 0, false
	}
	if col >= 0 {
		var rel Relation
		for i := range p.polys {
			b := p.polys[i].box
			if b.MinY < g.L1 {
				rel = rel.With(TileAt(col, 0))
			}
			if b.MinY < g.L2 && b.MaxY > g.L1 {
				rel = rel.With(TileAt(col, 1))
			}
			if b.MaxY > g.L2 {
				rel = rel.With(TileAt(col, 2))
			}
		}
		if st != nil {
			st.PruneBand++
		}
		return rel, true
	}
	if row >= 0 {
		var rel Relation
		for i := range p.polys {
			b := p.polys[i].box
			if b.MinX < g.M1 {
				rel = rel.With(TileAt(0, row))
			}
			if b.MinX < g.M2 && b.MaxX > g.M1 {
				rel = rel.With(TileAt(1, row))
			}
			if b.MaxX > g.M2 {
				rel = rel.With(TileAt(2, row))
			}
		}
		if st != nil {
			st.PruneBand++
		}
		return rel, true
	}
	return 0, false
}

// relateFull is the paper's Compute-CDR over the flattened edge slice: split
// each edge on the grid lines, classify each sub-segment by its midpoint
// with interior-side tie-breaking, and add tile B for polygons enclosing the
// reference box's center. The center test is skipped once B is present and
// rejected early through the per-polygon bounding box.
func (p *Prepared) relateFull(g Grid, center geom.Point, sc *Scratch, st *Stats) Relation {
	var rel Relation
	buf := sc.buf
	for _, e := range p.edges {
		buf = g.SplitEdge(e, buf[:0])
		if st != nil {
			st.EdgesIn++
			st.EdgeVisits++
			st.EdgesOut += len(buf)
			st.Intersections += len(buf) - 1
		}
		for _, s := range buf {
			rel = rel.With(g.ClassifySegment(s))
		}
	}
	sc.buf = buf
	if !rel.Has(TileB) {
		for i := range p.polys {
			pp := &p.polys[i]
			if !pp.box.Contains(center) {
				continue
			}
			if st != nil {
				st.PointInPoly++
			}
			if pp.ring.Contains(center) {
				rel = rel.With(TileB)
				break
			}
		}
	}
	return rel
}
