package core

import (
	"errors"
	"fmt"

	"cardirect/internal/geom"
)

// ErrDegenerateRegion is returned (wrapped, with the region's name) when a
// region cannot participate in relation computation: it has no polygons, or
// its polygons contribute no edges. Callers can test for it with errors.Is.
var ErrDegenerateRegion = errors.New("core: degenerate region")

// Prepared is a region preprocessed once for repeated cardinal direction
// computation. It holds everything Compute-CDR needs on either side of a
// relation — the canonical clockwise orientation, the edges flattened into a
// struct-of-arrays coordinate layout (four flat float64 slices the split and
// trapezoid kernels stream through), per-polygon bounding boxes (the MBB
// fast path), and the reference-side grid — so the O(n²) all-pairs batch
// pays the per-region preprocessing exactly once per region instead of once
// per pair. A Prepared value is immutable after construction and safe to
// share across goroutines.
type Prepared struct {
	// Name identifies the region in batch results and error messages.
	Name string
	// Region is the input region, normalised to the canonical clockwise
	// orientation. Callers must not mutate it.
	Region geom.Region
	// Box is mbb(Region).
	Box geom.Rect

	// Struct-of-arrays edge layout: edge i runs from (ax[i], ay[i]) to
	// (bx[i], by[i]), in polygon ring order. Splitting and trapezoid
	// accumulation iterate these flat slices instead of a []geom.Segment,
	// which keeps the hot loops in registers and lets one cache line carry
	// eight coordinates of the same stream. The four slices are sub-slices
	// of one backing block (see Arena), so a whole region's edges are one
	// allocation, not k.
	ax, ay, bx, by []float64
	// polyOff delimits each polygon's edges: polygon k owns edge indices
	// polyOff[k] up to polyOff[k+1]. len(polyOff) == len(polys)+1.
	polyOff []int32

	polys     []preparedPoly // per-polygon metadata, parallel to Region
	grid      Grid           // tile grid when the region is a reference
	gridErr   error          // non-nil when Box is degenerate (unusable as reference)
	center    geom.Point     // Box.Center(), hoisted out of the pair loop
	fastOK    bool           // polygons are sound enough for the band fast path
	totalArea float64        // summed polygon areas, for the percent fast path
}

type preparedPoly struct {
	ring geom.Polygon
	box  geom.Rect
	area float64 // the polygon's area, cached for the percent fast path
}

// Prepare preprocesses a region for repeated relation computation. It fails
// with a wrapped ErrDegenerateRegion when the region has no polygons or no
// edges — inputs for which Compute-CDR has no answer.
func Prepare(name string, r geom.Region) (*Prepared, error) {
	return prepareIn(nil, name, r)
}

// prepareIn is Prepare with the backing storage taken from ar; a nil arena
// falls back to individual allocations.
func prepareIn(ar *Arena, name string, r geom.Region) (*Prepared, error) {
	if len(r) == 0 {
		return nil, fmt.Errorf("core: region %q is empty: %w", name, ErrDegenerateRegion)
	}
	norm := r.Clockwise()
	total := norm.NumEdges()
	if total == 0 {
		return nil, fmt.Errorf("core: region %q has no edges: %w", name, ErrDegenerateRegion)
	}
	p := &Prepared{
		Name:   name,
		Region: norm,
		fastOK: true,
	}
	// One coordinate block per region, sub-sliced four ways. The capped
	// three-index slices keep an append on one stream from bleeding into the
	// next (and into a neighbouring region's block when ar is shared).
	coords := ar.float64s(4 * total)
	p.ax = coords[0:total:total]
	p.ay = coords[total : 2*total : 2*total]
	p.bx = coords[2*total : 3*total : 3*total]
	p.by = coords[3*total : 4*total : 4*total]
	p.polyOff = ar.int32s(len(norm) + 1)
	p.polys = ar.polySlab(len(norm))

	box := geom.EmptyRect()
	k := 0
	for pi, poly := range norm {
		p.polyOff[pi] = int32(k)
		pb := poly.BoundingBox()
		area := poly.Area()
		box = box.Union(pb)
		p.polys[pi] = preparedPoly{ring: poly, box: pb, area: area}
		p.totalArea += area
		n := len(poly)
		for i := 0; i < n; i++ {
			j := i + 1
			if j == n {
				j = 0
			}
			a, b := poly[i], poly[j]
			if a.Eq(b) {
				p.fastOK = false // zero-length edges break the band derivation
			}
			p.ax[k], p.ay[k] = a.X, a.Y
			p.bx[k], p.by[k] = b.X, b.Y
			k++
		}
		if area == 0 {
			p.fastOK = false // degenerate rings violate the orientation invariant
		}
	}
	p.polyOff[len(norm)] = int32(k)
	p.Box = box
	p.grid, p.gridErr = NewGrid(box)
	if p.gridErr == nil {
		p.center = p.grid.Box().Center()
	}
	return p, nil
}

// PrepareAll preprocesses a batch of named regions, enforcing the batch
// naming contract (non-empty, unique names). The prepared regions share one
// arena (a handful of large backing slices), so a 10^5-region world costs a
// few slab allocations instead of per-region GC churn; see PrepareAllIn to
// supply — and reuse — the arena explicitly.
func PrepareAll(regions []NamedRegion) ([]*Prepared, error) {
	return PrepareAllIn(NewArena(), regions)
}

// PrepareAllIn is PrepareAll with the backing storage drawn from ar. A nil
// arena falls back to per-region allocations.
func PrepareAllIn(ar *Arena, regions []NamedRegion) ([]*Prepared, error) {
	seen := make(map[string]bool, len(regions))
	out := make([]*Prepared, len(regions))
	for i, r := range regions {
		if r.Name == "" {
			return nil, fmt.Errorf("core: region %d has empty name", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("core: duplicate region name %q", r.Name)
		}
		seen[r.Name] = true
		p, err := prepareIn(ar, r.Name, r.Region)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// NumEdges returns the region's total edge count (k in the paper's bounds).
func (p *Prepared) NumEdges() int { return len(p.ax) }

// Edges materialises the region's edges as one fresh slice in polygon ring
// order. The canonical storage is the struct-of-arrays coordinate layout;
// this accessor exists for callers that want segment values (tests, debug
// output), not for hot paths.
func (p *Prepared) Edges() []geom.Segment {
	out := make([]geom.Segment, len(p.ax))
	for i := range out {
		out[i] = geom.Segment{
			A: geom.Point{X: p.ax[i], Y: p.ay[i]},
			B: geom.Point{X: p.bx[i], Y: p.by[i]},
		}
	}
	return out
}

// edge materialises edge i from the coordinate slices.
func (p *Prepared) edge(i int) geom.Segment {
	return geom.Segment{
		A: geom.Point{X: p.ax[i], Y: p.ay[i]},
		B: geom.Point{X: p.bx[i], Y: p.by[i]},
	}
}

// Grid returns the nine-tile grid induced by the region's bounding box, or
// an error when the box is degenerate and the region cannot serve as a
// reference (it can still be a primary).
func (p *Prepared) Grid() (Grid, error) { return p.grid, p.gridErr }

// Scratch holds the reusable buffers of one computation thread: the
// edge-split buffer shared by Relate and RelatePct, and the per-tile signed
// accumulators of the quantitative algorithm. Each worker of a parallel
// batch owns its own Scratch; sharing one across goroutines is a data race.
// The zero value is ready to use.
type Scratch struct {
	buf   []geom.Segment
	acc   [NumTiles]float64 // per-tile trapezoid accumulators (reference kernel)
	accBN float64           // B∪N slab accumulator against y = l1 (reference kernel)

	// Strip-stage scratch (lod_strip.go): epoch-stamped candidate
	// de-duplication, the gathered edge ids, and per-polygon parity
	// accumulators for the center query.
	stripSeen   []uint32
	stripEpoch  uint32
	stripIDs    []int32
	polyMark    []uint8
	polyTouched []int32
}

// Relate computes the cardinal direction relation a R b of the primary a
// against the reference b — equivalent to ComputeCDR(a.Region, b.Region) but
// with all per-region work already paid, and with the MBB fast path applied
// when a's bounding box permits it. sc may be nil (a throwaway scratch is
// used).
func Relate(a, b *Prepared, sc *Scratch) (Relation, error) {
	if b.gridErr != nil {
		return 0, b.gridErr
	}
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	return a.relate(b.grid, b.center, false, false, sc, nil), nil
}

// RelateGrid computes the relation of the primary region against an
// arbitrary reference grid. sc may be nil.
func (p *Prepared) RelateGrid(g Grid, sc *Scratch) Relation {
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	return p.relate(g, g.Box().Center(), false, false, sc, nil)
}

// relate dispatches between the MBB fast path and the full edge-splitting
// algorithm (the SoA kernel, or with ref the per-edge reference kernel —
// kept for differential tests and benchmark ablations). The result is
// always a valid (non-empty) relation: Prepare guarantees at least one edge
// exists.
func (p *Prepared) relate(g Grid, center geom.Point, noPrune, ref bool, sc *Scratch, st *Stats) Relation {
	if !noPrune {
		if rel, ok := p.relateFast(g, st); ok {
			return rel
		}
	}
	if ref {
		return p.relateFullRef(g, center, sc, st)
	}
	return p.relateFull(g, center, sc, st)
}

// strictCol returns the grid column strictly containing the box — the box
// touches no vertical grid line — or -1 when the box spans or touches one.
func strictCol(b geom.Rect, g Grid) int {
	switch {
	case b.MaxX < g.M1:
		return 0
	case b.MinX > g.M2:
		return 2
	case b.MinX > g.M1 && b.MaxX < g.M2:
		return 1
	}
	return -1
}

// strictRow is the row analogue of strictCol.
func strictRow(b geom.Rect, g Grid) int {
	switch {
	case b.MaxY < g.L1:
		return 0
	case b.MinY > g.L2:
		return 2
	case b.MinY > g.L1 && b.MaxY < g.L2:
		return 1
	}
	return -1
}

// relateFast answers the relation from bounding boxes alone, with zero edge
// splits, when mbb(primary) avoids enough grid lines to make the answer
// exact:
//
//   - mbb strictly inside a single tile: every point of the primary lies
//     strictly inside that tile, so the relation is that tile — O(1).
//   - mbb strictly inside a single column (or row): no edge can cross the
//     two vertical (horizontal) grid lines, so the relation is the fixed
//     column crossed with the rows each polygon's own bounding box spans —
//     O(#polygons). This covers every strictly-disjoint pair (boxes
//     separated on x or y yield at most 3 adjacent perimeter tiles) and
//     also primaries threading through the middle column or row.
//
// The row derivation per polygon is exact for simple clockwise rings: a
// ring's boundary projects onto the full interval [MinY, MaxY], so it has
// sub-segments strictly below y = l1 iff MinY < l1, strictly above y = l2
// iff MaxY > l2, and strictly between iff the open band overlaps (MinY,
// MaxY) — and an on-line horizontal edge is classified by the interior-side
// rule to the side its polygon's area lies on, matching the same strict
// inequalities. Regions with zero-area rings or zero-length edges (fastOK
// unset) skip the band path, because they break that argument; the
// single-tile path needs no such invariant.
func (p *Prepared) relateFast(g Grid, st *Stats) (Relation, bool) {
	return p.relateFastWith(g, p.fastOK, st)
}

// relateFastWith is relateFast with the band-path soundness gate supplied
// by the caller. The fast path reads only the region and per-polygon
// bounding boxes, so a LoD region — whose simplified geometry shares those
// boxes exactly with the original — reuses it by passing the ORIGINAL
// region's fastOK: the answer is then exact for the original geometry even
// though p holds the simplified ring.
func (p *Prepared) relateFastWith(g Grid, fastOK bool, st *Stats) (Relation, bool) {
	col := strictCol(p.Box, g)
	row := strictRow(p.Box, g)
	if col >= 0 && row >= 0 {
		if st != nil {
			st.PruneSingleTile++
		}
		return Rel(TileAt(col, row)), true
	}
	if !fastOK {
		return 0, false
	}
	if col >= 0 {
		var rel Relation
		for i := range p.polys {
			b := p.polys[i].box
			if b.MinY < g.L1 {
				rel = rel.With(TileAt(col, 0))
			}
			if b.MinY < g.L2 && b.MaxY > g.L1 {
				rel = rel.With(TileAt(col, 1))
			}
			if b.MaxY > g.L2 {
				rel = rel.With(TileAt(col, 2))
			}
		}
		if st != nil {
			st.PruneBand++
		}
		return rel, true
	}
	if row >= 0 {
		var rel Relation
		for i := range p.polys {
			b := p.polys[i].box
			if b.MinX < g.M1 {
				rel = rel.With(TileAt(0, row))
			}
			if b.MinX < g.M2 && b.MaxX > g.M1 {
				rel = rel.With(TileAt(1, row))
			}
			if b.MaxX > g.M2 {
				rel = rel.With(TileAt(2, row))
			}
		}
		if st != nil {
			st.PruneBand++
		}
		return rel, true
	}
	return 0, false
}

// relateFullRef is the per-edge reference implementation of Compute-CDR
// over Prepared edges: materialise each edge, split it with Grid.SplitEdge,
// classify every sub-segment. It computes bit-identical results to the SoA
// kernel in relateFull (asserted by TestSoAKernelDifferential) and exists
// for exactly that comparison — and as the BatchOptions.NoSoA ablation
// baseline. Do not use on hot paths.
func (p *Prepared) relateFullRef(g Grid, center geom.Point, sc *Scratch, st *Stats) Relation {
	var rel Relation
	buf := sc.buf
	for i := 0; i < len(p.ax); i++ {
		buf = g.SplitEdge(p.edge(i), buf[:0])
		if st != nil {
			st.EdgesIn++
			st.EdgeVisits++
			st.EdgesOut += len(buf)
			st.Intersections += len(buf) - 1
		}
		for _, s := range buf {
			rel = rel.With(g.ClassifySegment(s))
		}
	}
	sc.buf = buf
	return p.addCenterTile(rel, center, st)
}

// relateFull is the paper's Compute-CDR over the struct-of-arrays edge
// layout: one pass over the flat coordinate slices, splitting an edge on
// the grid lines only when its coordinate span actually straddles one
// (detected with four compares, no divisions), classifying each sub-segment
// by its midpoint with interior-side tie-breaking, and adding tile B for
// polygons enclosing the reference box's center. The no-split case — the
// overwhelming majority of edges in batch workloads — runs branch-light
// with no Segment materialisation and no buffer traffic.
func (p *Prepared) relateFull(g Grid, center geom.Point, sc *Scratch, st *Stats) Relation {
	var rel Relation
	m1, m2, l1, l2 := g.M1, g.M2, g.L1, g.L2
	ax, ay, bx, by := p.ax, p.ay, p.bx, p.by
	var qx, qy [6]float64
	outCount := 0
	for i := range ax {
		x0, y0, x1, y1 := ax[i], ay[i], bx[i], by[i]
		lox, hix := x0, x1
		if lox > hix {
			lox, hix = hix, lox
		}
		loy, hiy := y0, y1
		if loy > hiy {
			loy, hiy = hiy, loy
		}
		// An edge crosses x = m iff m lies strictly between its endpoint
		// x-coordinates (Definition 3: touching at an endpoint or lying on
		// the line is not a crossing), and likewise for horizontal lines —
		// so a span test per line decides "no split" without a division.
		if (hix <= m1 || lox >= m1) && (hix <= m2 || lox >= m2) &&
			(hiy <= l1 || loy >= l1) && (hiy <= l2 || loy >= l2) {
			outCount++
			rel |= 1 << tileGrid[classifyRow(l1, l2, (y0+y1)/2, x1-x0)][classifyCol(m1, m2, (x0+x1)/2, y1-y0)]
			continue
		}
		cnt := splitEdgeInto(m1, m2, l1, l2, x0, y0, x1, y1, &qx, &qy)
		outCount += cnt
		for k := 0; k < cnt; k++ {
			rel |= 1 << tileGrid[classifyRow(l1, l2, (qy[k]+qy[k+1])/2, qx[k+1]-qx[k])][classifyCol(m1, m2, (qx[k]+qx[k+1])/2, qy[k+1]-qy[k])]
		}
	}
	if st != nil {
		// Every edge contributes at least one sub-segment, so the split
		// count is the surplus over the edge count.
		st.EdgesIn += len(ax)
		st.EdgeVisits += len(ax)
		st.EdgesOut += outCount
		st.Intersections += outCount - len(ax)
	}
	return p.addCenterTile(rel, center, st)
}

// addCenterTile adds tile B for polygons enclosing the reference box's
// center — the shared tail of the full kernels. The center test is skipped
// once B is present and rejected early through the per-polygon bounding box.
func (p *Prepared) addCenterTile(rel Relation, center geom.Point, st *Stats) Relation {
	if !rel.Has(TileB) {
		for i := range p.polys {
			pp := &p.polys[i]
			if !pp.box.Contains(center) {
				continue
			}
			if st != nil {
				st.PointInPoly++
			}
			if pp.ring.Contains(center) {
				rel = rel.With(TileB)
				break
			}
		}
	}
	return rel
}

// splitEdgeInto cuts the edge (x0,y0)→(x1,y1) at its proper crossings with
// the four grid lines and writes the resulting polyline vertices into
// (qx,qy): entry 0 is the edge start, entry cnt is the edge end, and the cnt
// sub-segments run between consecutive vertices. It is Grid.SplitEdge
// working in raw coordinates — same crossing tests, same insertion order
// and sort, same corner coalescing and degenerate-piece skipping, the same
// exact on-line snapping — minus the Segment materialisation and buffer
// traffic, so the SoA kernels split without leaving their register file.
// Finite coordinates assumed (the geometry layer validates them).
func splitEdgeInto(m1, m2, l1, l2, x0, y0, x1, y1 float64, qx, qy *[6]float64) int {
	var ts [4]float64
	var cs [4]float64
	var vert [4]bool
	n := 0
	dx := x1 - x0
	dy := y1 - y0
	// Candidate cuts in SplitEdge's insertion order (M1, M2, L1, L2), so the
	// stable insertion sort below resolves equal parameters identically.
	if dx != 0 {
		if t := (m1 - x0) / dx; t > 0 && t < 1 {
			ts[n], cs[n], vert[n] = t, m1, true
			n++
		}
		if t := (m2 - x0) / dx; t > 0 && t < 1 {
			ts[n], cs[n], vert[n] = t, m2, true
			n++
		}
	}
	if dy != 0 {
		if t := (l1 - y0) / dy; t > 0 && t < 1 {
			ts[n], cs[n], vert[n] = t, l1, false
			n++
		}
		if t := (l2 - y0) / dy; t > 0 && t < 1 {
			ts[n], cs[n], vert[n] = t, l2, false
			n++
		}
	}
	qx[0], qy[0] = x0, y0
	if n == 0 {
		qx[1], qy[1] = x1, y1
		return 1
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
			cs[j], cs[j-1] = cs[j-1], cs[j]
			vert[j], vert[j-1] = vert[j-1], vert[j]
		}
	}
	// Materialise cut points — coalescing a vertical/horizontal pair with
	// (nearly) equal parameters into the exact grid corner, as SplitEdge
	// does — and drop degenerate pieces by skipping repeated vertices.
	const cornerEps = 1e-12
	cnt := 0
	prevx, prevy := x0, y0
	for i := 0; i < n; i++ {
		var cx, cy float64
		if i+1 < n && vert[i] != vert[i+1] && ts[i+1]-ts[i] <= cornerEps {
			cx, cy = cs[i], cs[i+1]
			if !vert[i] {
				cx, cy = cy, cx
			}
			i++
		} else if vert[i] {
			cx, cy = cs[i], y0+ts[i]*(y1-y0)
		} else {
			cx, cy = x0+ts[i]*(x1-x0), cs[i]
		}
		if cx != prevx || cy != prevy {
			cnt++
			qx[cnt], qy[cnt] = cx, cy
			prevx, prevy = cx, cy
		}
	}
	if x1 != prevx || y1 != prevy {
		cnt++
		qx[cnt], qy[cnt] = x1, y1
	}
	return cnt
}

// classifyTile is Grid.ClassifySegment over raw coordinates: the tile of a
// segment known not to cross any grid line, decided by its midpoint, with
// on-line segments resolved to the side of the polygon's interior (to the
// right of A→B under the canonical clockwise orientation). It must mirror
// Grid.ClassifySegment exactly — the SoA kernels promise bit-identical
// results to the reference path.
func classifyTile(m1, m2, l1, l2, x0, y0, x1, y1 float64) Tile {
	col := classifyCol(m1, m2, (x0+x1)/2, y1-y0)
	row := classifyRow(l1, l2, (y0+y1)/2, x1-x0)
	return tileGrid[row][col]
}

// classifyCol is the column half of classifyTile: Grid.Col of the midpoint
// x, with the on-line override applied first. It is small enough for the
// inliner, which keeps the per-sub-segment classification call-free inside
// the SoA kernels. The on-line cases: a segment on the west line has its
// interior east of the line exactly when it runs northbound (dy > 0), and
// symmetrically on the east line.
func classifyCol(m1, m2, midx, dy float64) int {
	if midx == m1 && dy != 0 {
		if dy > 0 {
			return 1
		}
		return 0
	}
	if midx == m2 && dy != 0 {
		if dy > 0 {
			return 2
		}
		return 1
	}
	if midx < m1 {
		return 0
	}
	if midx > m2 {
		return 2
	}
	return 1
}

// classifyRow is the row half of classifyTile: a segment on the south line
// has its interior south of the line exactly when it runs eastbound
// (dx > 0), and symmetrically on the north line.
func classifyRow(l1, l2, midy, dx float64) int {
	if midy == l1 && dx != 0 {
		if dx > 0 {
			return 0
		}
		return 1
	}
	if midy == l2 && dx != 0 {
		if dx > 0 {
			return 1
		}
		return 2
	}
	if midy < l1 {
		return 0
	}
	if midy > l2 {
		return 2
	}
	return 1
}
