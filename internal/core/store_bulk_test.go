package core

import (
	"fmt"
	"testing"

	"cardirect/internal/geom"
)

func bulkSquare(i int) geom.Region {
	x := float64(i%25) * 3
	y := float64(i/25) * 3
	return geom.Rgn(geom.Poly(geom.Pt(x, y), geom.Pt(x, y+2), geom.Pt(x+2, y+2), geom.Pt(x+2, y)))
}

// TestStoreAddBulk is the bulk-ingest acceptance at the store level: one
// AddBulk of k regions must produce exactly the matrix k per-region Adds
// would, while paying ONE batched recomputation (BulkBatches == 1) and
// ZERO delta pairs.
func TestStoreAddBulk(t *testing.T) {
	const pre, k = 5, 120
	seedRegions := make([]NamedRegion, pre)
	for i := range seedRegions {
		seedRegions[i] = NamedRegion{Name: fmt.Sprintf("seed%02d", i), Region: bulkSquare(i)}
	}
	bulk := make([]NamedRegion, k)
	for i := range bulk {
		bulk[i] = NamedRegion{Name: fmt.Sprintf("bulk%03d", i), Region: bulkSquare(pre + i)}
	}

	s, err := NewRelationStore(seedRegions, StoreOptions{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := s.Generation()
	if err := s.AddBulk(bulk); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation(); got != gen0+1 {
		t.Errorf("generation moved by %d, want 1 (one edit for the whole batch)", got-gen0)
	}
	st := s.Stats()
	if st.BulkBatches != 1 {
		t.Errorf("BulkBatches = %d, want 1", st.BulkBatches)
	}
	if st.DeltaPairs != 0 {
		t.Errorf("DeltaPairs = %d, want 0 — bulk ingest must not take the per-region delta path", st.DeltaPairs)
	}

	// Reference store: same regions through the per-region path.
	ref, err := NewRelationStore(seedRegions, StoreOptions{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bulk {
		if err := ref.Add(r.Name, r.Region); err != nil {
			t.Fatal(err)
		}
	}
	if rst := ref.Stats(); rst.DeltaPairs == 0 {
		t.Fatal("reference store took no delta pairs — test is vacuous")
	}
	wantPairs := ref.Pairs()
	gotPairs := s.Pairs()
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("pair count %d != %d", len(gotPairs), len(wantPairs))
	}
	for i := range wantPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("pair %d: bulk %+v != delta %+v", i, gotPairs[i], wantPairs[i])
		}
	}
	wantPct, err := ref.PctPairs()
	if err != nil {
		t.Fatal(err)
	}
	gotPct, err := s.PctPairs()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPct {
		if gotPct[i].Matrix != wantPct[i].Matrix || gotPct[i].Areas != wantPct[i].Areas {
			t.Fatalf("pct pair %d differs", i)
		}
	}
}

// TestStoreAddBulkRejects checks validation leaves the store untouched.
func TestStoreAddBulkRejects(t *testing.T) {
	s, err := NewRelationStore([]NamedRegion{{Name: "a", Region: bulkSquare(0)}}, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := s.Generation()
	cases := [][]NamedRegion{
		{{Name: "", Region: bulkSquare(1)}},
		{{Name: "a", Region: bulkSquare(1)}},                                     // exists
		{{Name: "b", Region: bulkSquare(1)}, {Name: "b", Region: bulkSquare(2)}}, // intra-batch dup
		{{Name: "b", Region: geom.Region{}}},                                     // degenerate
	}
	for i, c := range cases {
		if err := s.AddBulk(c); err == nil {
			t.Errorf("case %d: invalid batch accepted", i)
		}
	}
	if s.Len() != 1 || s.Generation() != gen0 {
		t.Error("failed batches mutated the store")
	}
	if err := s.AddBulk(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestStoreAddBulkIntoEmpty covers the n<2 growth path.
func TestStoreAddBulkIntoEmpty(t *testing.T) {
	s, err := NewRelationStore(nil, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bulk := make([]NamedRegion, 10)
	for i := range bulk {
		bulk[i] = NamedRegion{Name: fmt.Sprintf("r%02d", i), Region: bulkSquare(i)}
	}
	if err := s.AddBulk(bulk); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	rel, err := s.Relation("r00", "r01")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ComputeCDR(bulkSquare(0), bulkSquare(1))
	if err != nil {
		t.Fatal(err)
	}
	if rel != want {
		t.Fatalf("Relation = %v, want %v", rel, want)
	}
}
