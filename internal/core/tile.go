// Package core implements the cardinal direction relation model of
// Skiadopoulos et al. (EDBT 2004) and the paper's two linear-time
// algorithms:
//
//   - ComputeCDR — Algorithm Compute-CDR (Fig. 5 of the paper): the purely
//     qualitative cardinal direction relation between two REG* regions.
//   - ComputeCDRPct — Algorithm Compute-CDR% (Fig. 10): the quantitative
//     relation with percentages, computed through the trapezoid expressions
//     E_l and E'_m without polygon clipping.
//
// The model: the minimum bounding box of the reference region b divides the
// plane into nine closed tiles B, S, SW, W, NW, N, NE, E, SE. A basic
// cardinal direction relation is a non-empty subset of tiles — the tiles the
// primary region a occupies — written in the canonical order
// B:S:SW:W:NW:N:NE:E:SE (e.g. "B:W:NW"). There are exactly 511 basic
// relations (the set D* of the paper); sets of basic relations (elements of
// 2^D*) express indefinite information and are provided by RelationSet.
package core

import (
	"fmt"
	"strings"
)

// Tile identifies one of the nine tiles induced by the reference region's
// minimum bounding box.
type Tile uint8

// The nine tiles, in the paper's canonical writing order.
const (
	TileB    Tile = iota // bounding box tile
	TileS                // south
	TileSW               // southwest
	TileW                // west
	TileNW               // northwest
	TileN                // north
	TileNE               // northeast
	TileE                // east
	TileSE               // southeast
	NumTiles = 9
)

var tileNames = [NumTiles]string{"B", "S", "SW", "W", "NW", "N", "NE", "E", "SE"}

// String returns the tile's name as written in relations ("B", "S", "SW", …).
func (t Tile) String() string {
	if int(t) < len(tileNames) {
		return tileNames[t]
	}
	return fmt.Sprintf("Tile(%d)", uint8(t))
}

// Valid reports whether t names one of the nine tiles.
func (t Tile) Valid() bool { return t < NumTiles }

// Col returns the tile's column in the 3×3 grid: 0 = west of mbb(b),
// 1 = within the x-span of mbb(b), 2 = east of it.
func (t Tile) Col() int { return tileCols[t] }

// Row returns the tile's row in the 3×3 grid: 0 = south of mbb(b),
// 1 = within the y-span of mbb(b), 2 = north of it.
func (t Tile) Row() int { return tileRows[t] }

var tileCols = [NumTiles]int{1, 1, 0, 0, 0, 1, 2, 2, 2}
var tileRows = [NumTiles]int{1, 0, 0, 1, 2, 2, 2, 1, 0}

// TileAt returns the tile at grid position (col, row); it is the inverse of
// the Col/Row accessors.
func TileAt(col, row int) Tile { return tileGrid[row][col] }

// tileGrid[row][col]; row 0 is the south row.
var tileGrid = [3][3]Tile{
	{TileSW, TileS, TileSE},
	{TileW, TileB, TileE},
	{TileNW, TileN, TileNE},
}

// Tiles lists all nine tiles in canonical order.
func Tiles() [NumTiles]Tile {
	return [NumTiles]Tile{TileB, TileS, TileSW, TileW, TileNW, TileN, TileNE, TileE, TileSE}
}

// Relation is a basic cardinal direction relation: a set of tiles encoded as
// a 9-bit mask (bit i set means tile Tile(i) belongs to the relation). The
// zero value is the empty relation, which is not a member of D* but serves
// as the identity for Union — the paper's Compute-CDR also starts from "the
// empty relation" and tile-unions into it.
type Relation uint16

// RelationMask covers all nine tile bits; Relation values above it are invalid.
const RelationMask Relation = 1<<NumTiles - 1

// NumRelations is the number of basic relations in D* (non-empty tile sets).
const NumRelations = int(RelationMask) // 511

// Rel builds a relation from tiles. Rel() is the empty relation.
func Rel(tiles ...Tile) Relation {
	var r Relation
	for _, t := range tiles {
		r |= 1 << t
	}
	return r
}

// Convenience singletons for the nine single-tile relations.
const (
	B  = Relation(1 << TileB)
	S  = Relation(1 << TileS)
	SW = Relation(1 << TileSW)
	W  = Relation(1 << TileW)
	NW = Relation(1 << TileNW)
	N  = Relation(1 << TileN)
	NE = Relation(1 << TileNE)
	E  = Relation(1 << TileE)
	SE = Relation(1 << TileSE)
)

// IsEmpty reports whether the relation has no tiles.
func (r Relation) IsEmpty() bool { return r&RelationMask == 0 }

// IsValid reports whether r is a basic relation of D*: non-empty and within
// the nine tile bits.
func (r Relation) IsValid() bool { return r != 0 && r&^RelationMask == 0 }

// Has reports whether tile t belongs to the relation.
func (r Relation) Has(t Tile) bool { return r&(1<<t) != 0 }

// With returns the relation extended with tile t.
func (r Relation) With(t Tile) Relation { return r | 1<<t }

// Union returns the tile-union of r and the given relations (Definition 2 of
// the paper).
func (r Relation) Union(rs ...Relation) Relation {
	for _, x := range rs {
		r |= x
	}
	return r & RelationMask
}

// Intersect returns the relation containing the tiles common to r and s.
func (r Relation) Intersect(s Relation) Relation { return r & s & RelationMask }

// NumTiles returns the number of tiles in the relation (k in the paper's
// R_1:⋯:R_k notation).
func (r Relation) NumTiles() int {
	n := 0
	for m := r & RelationMask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// SingleTile reports whether the relation consists of exactly one tile.
func (r Relation) SingleTile() bool {
	m := r & RelationMask
	return m != 0 && m&(m-1) == 0
}

// MultiTile reports whether the relation has two or more tiles.
func (r Relation) MultiTile() bool { return r.IsValid() && !r.SingleTile() }

// Tiles returns the relation's tiles in canonical order.
func (r Relation) Tiles() []Tile {
	out := make([]Tile, 0, r.NumTiles())
	for _, t := range Tiles() {
		if r.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// String writes the relation in the paper's canonical form, e.g. "B:S:SW".
// The empty relation renders as "∅".
func (r Relation) String() string {
	if r.IsEmpty() {
		return "∅"
	}
	parts := make([]string, 0, 9)
	for _, t := range Tiles() {
		if r.Has(t) {
			parts = append(parts, t.String())
		}
	}
	return strings.Join(parts, ":")
}

// ParseRelation parses the canonical (or any order) colon-separated tile
// list, e.g. "B:S:SW" or "sw:s:b". Duplicate tiles are rejected, matching
// condition (c) of Definition 1.
func ParseRelation(s string) (Relation, error) {
	var r Relation
	if strings.TrimSpace(s) == "" {
		return 0, fmt.Errorf("core: empty relation string")
	}
	for _, part := range strings.Split(s, ":") {
		name := strings.ToUpper(strings.TrimSpace(part))
		t, ok := tileByName(name)
		if !ok {
			return 0, fmt.Errorf("core: unknown tile %q in relation %q", part, s)
		}
		if r.Has(t) {
			return 0, fmt.Errorf("core: duplicate tile %q in relation %q", part, s)
		}
		r = r.With(t)
	}
	return r, nil
}

func tileByName(name string) (Tile, bool) {
	for i, n := range tileNames {
		if n == name {
			return Tile(i), true
		}
	}
	return 0, false
}

// Matrix returns the direction-relation matrix of Goyal & Egenhofer for the
// relation: cell [row][col] is true when the corresponding tile belongs to
// the relation. Row 0 is the north row, matching the paper's layout
//
//	[ NW N NE ]
//	[ W  B  E ]
//	[ SW S SE ]
func (r Relation) Matrix() [3][3]bool {
	var m [3][3]bool
	for _, t := range r.Tiles() {
		m[2-t.Row()][t.Col()] = true
	}
	return m
}

// MatrixString renders the direction-relation matrix with the paper's ■/□
// cells, one row per line.
func (r Relation) MatrixString() string {
	m := r.Matrix()
	var sb strings.Builder
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m[i][j] {
				sb.WriteRune('■')
			} else {
				sb.WriteRune('□')
			}
		}
		if i < 2 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// AllRelations returns the 511 basic relations of D* in increasing bitmask
// order. The slice is freshly allocated.
func AllRelations() []Relation {
	out := make([]Relation, 0, NumRelations)
	for m := Relation(1); m <= RelationMask; m++ {
		out = append(out, m)
	}
	return out
}
