package core

// Arena is a bump allocator for Prepared construction. Loading a world of n
// regions through Prepare costs O(n) separate slice allocations (coordinate
// blocks, offset tables, polygon metadata), each individually tracked by the
// garbage collector; at the 10^5–10^6-region scale the batch engines target,
// that churn dominates load time and keeps the GC scanning long after. An
// Arena instead carves those slices out of a few large backing chunks — sub-
// slices with capped capacity, so neighbouring regions can never grow into
// each other's storage — turning per-region allocations into amortised slab
// allocations and freeing the whole world at once when the last Prepared is
// dropped.
//
// An Arena never frees individual regions: memory is reclaimed only when
// every Prepared built from it becomes unreachable. Long-lived stores that
// replace regions in place (RelationStore.SetGeometry) therefore prepare
// replacements outside the arena; the store's bulk construction paths
// (NewRelationStore, NewRelationStoreSeeded, the batch engines' self-prepare)
// all draw from one.
//
// A nil *Arena is valid and falls back to plain per-call allocations, so
// construction paths take an optional arena without branching at every site.
// An Arena is not safe for concurrent use.
type Arena struct {
	f64   []float64
	i32   []int32
	polys []preparedPoly

	f64Chunk  int // size of the most recent float64 chunk
	i32Chunk  int
	polyChunk int

	chunks int   // total backing chunks allocated
	bytes  int64 // total backing bytes allocated
}

// Chunk sizing: start small enough that a single-region Prepare through an
// arena wastes little, grow geometrically so big worlds settle into a few
// large slabs, and cap the chunk size so the tail waste of the last chunk
// stays bounded.
const (
	arenaMinChunk = 1 << 12 // elements
	arenaMaxChunk = 1 << 20 // elements
)

// NewArena returns an empty arena. Chunks are allocated lazily on first use.
func NewArena() *Arena { return &Arena{} }

// arenaNext computes the size of the next chunk given the previous chunk
// size and the immediate need.
func arenaNext(prev, need int) int {
	n := prev * 2
	if n < arenaMinChunk {
		n = arenaMinChunk
	}
	if n > arenaMaxChunk {
		n = arenaMaxChunk
	}
	if n < need {
		n = need
	}
	return n
}

// float64s returns a zeroed []float64 of length n carved from the arena, or
// a plain allocation when the arena is nil. The result has capacity exactly
// n, so appends by the caller can never clobber a neighbouring block.
func (a *Arena) float64s(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if n > len(a.f64) {
		a.f64Chunk = arenaNext(a.f64Chunk, n)
		a.f64 = make([]float64, a.f64Chunk)
		a.chunks++
		a.bytes += int64(a.f64Chunk) * 8
	}
	out := a.f64[:n:n]
	a.f64 = a.f64[n:]
	return out
}

// int32s is the int32 analogue of float64s.
func (a *Arena) int32s(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	if n > len(a.i32) {
		a.i32Chunk = arenaNext(a.i32Chunk, n)
		a.i32 = make([]int32, a.i32Chunk)
		a.chunks++
		a.bytes += int64(a.i32Chunk) * 4
	}
	out := a.i32[:n:n]
	a.i32 = a.i32[n:]
	return out
}

// polySlab returns a zeroed []preparedPoly of length n carved from the
// arena, or a plain allocation when the arena is nil.
func (a *Arena) polySlab(n int) []preparedPoly {
	if a == nil {
		return make([]preparedPoly, n)
	}
	if n > len(a.polys) {
		a.polyChunk = arenaNext(a.polyChunk, n)
		a.polys = make([]preparedPoly, a.polyChunk)
		a.chunks++
		a.bytes += int64(a.polyChunk) * int64(preparedPolySize)
	}
	out := a.polys[:n:n]
	a.polys = a.polys[n:]
	return out
}

// preparedPolySize approximates unsafe.Sizeof(preparedPoly{}) without
// importing unsafe: ring header (24) + box (32) + area (8).
const preparedPolySize = 64

// ArenaStats describes an arena's backing storage, for capacity planning and
// tests.
type ArenaStats struct {
	// Chunks is the number of backing slabs allocated so far.
	Chunks int
	// Bytes is the total size of those slabs.
	Bytes int64
}

// Stats returns the arena's allocation counters.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	return ArenaStats{Chunks: a.chunks, Bytes: a.bytes}
}
