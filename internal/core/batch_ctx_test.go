package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cardirect/internal/workload"
)

// scatterRegions builds a deterministic named batch workload.
func scatterRegions(t testing.TB, seed int64, n int) []NamedRegion {
	t.Helper()
	scattered := workload.New(seed).Scatter(n, 8)
	regions := make([]NamedRegion, len(scattered))
	for i, r := range scattered {
		regions[i] = NamedRegion{Name: fmt.Sprintf("r%04d", i), Region: r}
	}
	return regions
}

// TestBatchCDRCancelled: a pre-cancelled context aborts the batch before
// (or within one row of) any work, surfacing context.Canceled via errors.Is.
func TestBatchCDRCancelled(t *testing.T) {
	regions := scatterRegions(t, 7, 60)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := BatchCDR(ctx, regions, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchCDR on cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The engine may prepare regions before noticing, but must not run the
	// all-pairs sweep; a generous wall-clock bound catches a missing check
	// without being timing-flaky.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled batch took %v", d)
	}
	if _, err := BatchPct(ctx, regions, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchPct on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestBatchCDRDeadline: an already-expired deadline surfaces
// context.DeadlineExceeded.
func TestBatchCDRDeadline(t *testing.T) {
	regions := scatterRegions(t, 8, 40)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := BatchCDR(ctx, regions, &BatchOptions{NoPrune: true}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("BatchCDR past deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestFindRelatedCtxCancelled covers the candidate-filter engine's check.
func TestFindRelatedCtxCancelled(t *testing.T) {
	regions := scatterRegions(t, 9, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FindRelatedCtx(ctx, regions[1:], regions[0].Region, NewRelationSet(N, S))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FindRelatedCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestDeprecatedBatchWrappersDelegate asserts the api_redesign acceptance
// criterion: the legacy 8-way entry-point fan delegates to BatchCDR /
// BatchPct with zero behavior change.
func TestDeprecatedBatchWrappersDelegate(t *testing.T) {
	regions := scatterRegions(t, 11, 48)
	ps, err := PrepareAll(regions)
	if err != nil {
		t.Fatal(err)
	}

	want, err := BatchCDR(context.Background(), regions, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPct, err := BatchPct(context.Background(), regions, nil)
	if err != nil {
		t.Fatal(err)
	}

	checkQual := func(name string, got []PairRelation, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want.Pairs) {
			t.Fatalf("%s: %d pairs, want %d", name, len(got), len(want.Pairs))
		}
		for i := range got {
			if got[i] != want.Pairs[i] {
				t.Fatalf("%s: pair %d = %+v, want %+v", name, i, got[i], want.Pairs[i])
			}
		}
	}
	checkPct := func(name string, got []PairPercent, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(wantPct.Pairs) {
			t.Fatalf("%s: %d pairs, want %d", name, len(got), len(wantPct.Pairs))
		}
		for i := range got {
			if got[i] != wantPct.Pairs[i] {
				t.Fatalf("%s: pair %d differs", name, i)
			}
		}
	}

	got, err := ComputeAllPairs(regions)
	checkQual("ComputeAllPairs", got, err)
	got, err = ComputeAllPairsParallel(regions)
	checkQual("ComputeAllPairsParallel", got, err)
	got, st, err := ComputeAllPairsOpt(regions, BatchOptions{Workers: 2})
	checkQual("ComputeAllPairsOpt", got, err)
	if st.Passes == 0 {
		t.Error("ComputeAllPairsOpt: zero Passes in stats")
	}
	got, _, err = ComputeAllPairsPrepared(ps, BatchOptions{})
	checkQual("ComputeAllPairsPrepared", got, err)

	gotPct, err := ComputeAllPairsPct(regions)
	checkPct("ComputeAllPairsPct", gotPct, err)
	gotPct, err = ComputeAllPairsPctParallel(regions)
	checkPct("ComputeAllPairsPctParallel", gotPct, err)
	gotPct, _, err = ComputeAllPairsPctOpt(regions, BatchOptions{Workers: 2})
	checkPct("ComputeAllPairsPctOpt", gotPct, err)
	gotPct, _, err = ComputeAllPairsPctPrepared(ps, BatchOptions{})
	checkPct("ComputeAllPairsPctPrepared", gotPct, err)

	// BatchOptions.Prepared must match the regions path exactly.
	res, err := BatchCDR(context.Background(), nil, &BatchOptions{Prepared: ps})
	if err != nil {
		t.Fatal(err)
	}
	checkQual("BatchCDR(Prepared)", res.Pairs, nil)
}

// TestBatchCDRNilOptions: nil options and nil context take the defaults.
func TestBatchCDRNilOptions(t *testing.T) {
	regions := scatterRegions(t, 12, 10)
	//lint:ignore SA1012 deliberate nil-context robustness check
	res, err := BatchCDR(nil, regions, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != len(regions)*(len(regions)-1) {
		t.Fatalf("got %d pairs", len(res.Pairs))
	}
	if res.Stats.Passes == 0 {
		t.Error("stats not aggregated")
	}
}
