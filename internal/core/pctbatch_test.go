package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// clusterWorkload builds n named regions packed into overlapping groups —
// the adversarial case for the percent fast path, since intra-group boxes
// straddle each other's grid lines.
func clusterWorkload(seed int64, n int) []NamedRegion {
	g := workload.New(seed)
	clustered := g.Cluster(n, maxIntTest(1, n/8), 8)
	out := make([]NamedRegion, n)
	for i, r := range clustered {
		out[i] = NamedRegion{Name: fmt.Sprintf("c%03d", i), Region: r}
	}
	return out
}

func maxIntTest(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// naivePairsPct computes the canonical answer with pairwise ComputeCDRPct
// over name-sorted regions — the reference the batch engine must reproduce.
func naivePairsPct(t *testing.T, regions []NamedRegion) []PairPercent {
	t.Helper()
	sorted := append([]NamedRegion{}, regions...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].Name < sorted[i].Name {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	var out []PairPercent
	for _, a := range sorted {
		for _, b := range sorted {
			if a.Name == b.Name {
				continue
			}
			m, areas, err := ComputeCDRPct(a.Region, b.Region)
			if err != nil {
				t.Fatalf("naive %s vs %s: %v", a.Name, b.Name, err)
			}
			out = append(out, PairPercent{Primary: a.Name, Reference: b.Name, Matrix: m, Areas: areas})
		}
	}
	return out
}

func pairsPctEqual(t *testing.T, label string, got, want []PairPercent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Primary != w.Primary || g.Reference != w.Reference {
			t.Fatalf("%s: pair %d is (%s,%s), want (%s,%s)", label, i, g.Primary, g.Reference, w.Primary, w.Reference)
		}
		for _, tile := range Tiles() {
			if !areaClose(g.Areas[tile], w.Areas[tile]) || !pctClose(g.Matrix.Get(tile), w.Matrix.Get(tile)) {
				t.Fatalf("%s: pair %s vs %s diverges at %v:\nareas %v vs %v\npcts %v vs %v",
					label, g.Primary, g.Reference, tile, g.Areas, w.Areas, g.Matrix, w.Matrix)
			}
		}
	}
}

// TestComputeAllPairsPctDifferential asserts the quantitative batch engine
// reproduces pairwise ComputeCDRPct on scatter and clustered workloads, for
// every worker count, with and without pruning.
func TestComputeAllPairsPctDifferential(t *testing.T) {
	workloads := []struct {
		name    string
		regions []NamedRegion
	}{
		{"scatter", batchWorkload(20040314, 30)},
		{"cluster", clusterWorkload(99, 24)},
	}
	for _, w := range workloads {
		want := naivePairsPct(t, w.regions)
		for _, workers := range []int{1, 2, 4, 0} {
			for _, noPrune := range []bool{false, true} {
				label := fmt.Sprintf("%s/workers=%d/noPrune=%v", w.name, workers, noPrune)
				got, st, err := ComputeAllPairsPctOpt(w.regions, BatchOptions{Workers: workers, NoPrune: noPrune})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				pairsPctEqual(t, label, got, want)
				if noPrune && st.PrunePctTile+st.PrunePctPoly != 0 {
					t.Errorf("%s: NoPrune recorded prune hits: %+v", label, st)
				}
			}
		}
		// Sequential and parallel entry points are bitwise identical.
		seq, err := ComputeAllPairsPct(w.regions)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ComputeAllPairsPctParallel(w.regions)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%s: parallel output differs from sequential", w.name)
		}
	}
}

// TestPctFastPathHitRate asserts the scatter workload actually exercises the
// cached-area fast path (that is the point of the optimisation) while the
// full path still runs for straddling pairs.
func TestPctFastPathHitRate(t *testing.T) {
	regions := batchWorkload(7, 40)
	_, st, err := ComputeAllPairsPctOpt(regions, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.PrunePctTile == 0 {
		t.Error("scatter workload should hit the single-tile percent fast path")
	}
	if st.EdgesIn == 0 {
		t.Error("some pairs should still take the full quantitative path")
	}
	t.Logf("stats: %+v", st)
}

// TestRelatePctZeroAllocs verifies the tentpole acceptance criterion: with a
// warmed Scratch the steady RelatePct path performs zero heap allocations,
// on both the fast path and the full edge-splitting path.
func TestRelatePctZeroAllocs(t *testing.T) {
	g := workload.New(3)
	// Overlapping pair: boxes straddle grid lines → full path.
	a, err := Prepare("a", geom.Rgn(g.StarPolygon(0, 0, 3, 6, 16)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Prepare("b", geom.Rgn(g.StarPolygon(2, 1, 3, 6, 16)))
	if err != nil {
		t.Fatal(err)
	}
	// Distant pair: strictly disjoint boxes → cached-area fast path.
	far, err := Prepare("far", geom.Rgn(g.StarPolygon(100, 100, 1, 2, 8)))
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scratch{}
	if _, _, err := RelatePct(a, b, sc); err != nil { // warm the split buffer
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		primary *Prepared
	}{
		{"full", a},
		{"fast", far},
	} {
		allocs := testing.AllocsPerRun(100, func() {
			if _, _, err := RelatePct(tc.primary, b, sc); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s path: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestComputeCDRPctDegenerateSentinel pins the error contract: empty and
// zero-area inputs report a wrapped ErrDegenerateRegion, detectable with
// errors.Is, and the batch engine mirrors it.
func TestComputeCDRPctDegenerateSentinel(t *testing.T) {
	ok := geom.Rgn(workload.Box(0, 0, 4, 4))
	line := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(4, 4)))
	cases := []struct {
		name string
		a, b geom.Region
		msg  string
	}{
		{"empty primary", nil, ok, "primary region is empty"},
		{"empty reference", ok, nil, "reference region is empty"},
		{"zero-area primary", line, ok, "zero area"},
	}
	for _, tc := range cases {
		_, _, err := ComputeCDRPct(tc.a, tc.b)
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !errors.Is(err, ErrDegenerateRegion) {
			t.Errorf("%s: %v does not wrap ErrDegenerateRegion", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.msg) {
			t.Errorf("%s: message %q lacks %q", tc.name, err, tc.msg)
		}
	}
	// Batch precheck: a zero-area region poisons the whole batch up front.
	regions := []NamedRegion{
		{Name: "ok", Region: ok},
		{Name: "line", Region: line},
	}
	if _, err := ComputeAllPairsPct(regions); !errors.Is(err, ErrDegenerateRegion) {
		t.Errorf("batch: %v does not wrap ErrDegenerateRegion", err)
	}
}
