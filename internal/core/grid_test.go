package core

import (
	"testing"
	"testing/quick"

	"cardirect/internal/geom"
)

// testGrid is the tile grid of a reference box [0,10]×[0,6].
func testGrid(t *testing.T) Grid {
	t.Helper()
	g, err := NewGrid(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 6})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(geom.EmptyRect()); err == nil {
		t.Error("empty box should be rejected")
	}
	if _, err := NewGrid(geom.Rect{MinX: 0, MinY: 0, MaxX: 0, MaxY: 5}); err == nil {
		t.Error("zero-width box should be rejected")
	}
	if _, err := NewGrid(geom.Rect{MinX: 0, MinY: 3, MaxX: 5, MaxY: 3}); err == nil {
		t.Error("zero-height box should be rejected")
	}
}

func TestClassifyPoint(t *testing.T) {
	g := testGrid(t)
	cases := []struct {
		p    geom.Point
		want Tile
	}{
		{geom.Pt(5, 3), TileB},
		{geom.Pt(5, -1), TileS},
		{geom.Pt(-1, -1), TileSW},
		{geom.Pt(-1, 3), TileW},
		{geom.Pt(-1, 7), TileNW},
		{geom.Pt(5, 7), TileN},
		{geom.Pt(11, 7), TileNE},
		{geom.Pt(11, 3), TileE},
		{geom.Pt(11, -1), TileSE},
		// On-line points resolve to the middle column/row.
		{geom.Pt(0, 3), TileB},
		{geom.Pt(10, 3), TileB},
		{geom.Pt(5, 0), TileB},
		{geom.Pt(5, 6), TileB},
		{geom.Pt(0, 0), TileB},
	}
	for _, c := range cases {
		if got := g.ClassifyPoint(c.p); got != c.want {
			t.Errorf("ClassifyPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestClassifySegmentInterior(t *testing.T) {
	g := testGrid(t)
	// Ordinary segments strictly inside a tile.
	if got := g.ClassifySegment(geom.Seg(geom.Pt(1, 1), geom.Pt(2, 2))); got != TileB {
		t.Errorf("B segment = %v", got)
	}
	if got := g.ClassifySegment(geom.Seg(geom.Pt(-5, 8), geom.Pt(-4, 9))); got != TileNW {
		t.Errorf("NW segment = %v", got)
	}
}

func TestClassifySegmentOnLineInteriorSide(t *testing.T) {
	g := testGrid(t)
	// Vertical segment on the west line x = 0. Clockwise (y-up) orientation:
	// northbound ⇒ interior to the east ⇒ middle column (tile B);
	// southbound ⇒ interior to the west ⇒ tile W.
	up := geom.Seg(geom.Pt(0, 2), geom.Pt(0, 4))
	down := up.Reverse()
	if got := g.ClassifySegment(up); got != TileB {
		t.Errorf("northbound on x=m1 = %v, want B", got)
	}
	if got := g.ClassifySegment(down); got != TileW {
		t.Errorf("southbound on x=m1 = %v, want W", got)
	}
	// On the east line x = 10: northbound ⇒ interior east ⇒ E; southbound ⇒ B.
	upE := geom.Seg(geom.Pt(10, 2), geom.Pt(10, 4))
	if got := g.ClassifySegment(upE); got != TileE {
		t.Errorf("northbound on x=m2 = %v, want E", got)
	}
	if got := g.ClassifySegment(upE.Reverse()); got != TileB {
		t.Errorf("southbound on x=m2 = %v, want B", got)
	}
	// Horizontal on the south line y = 0: eastbound ⇒ interior south ⇒ S;
	// westbound ⇒ B.
	east := geom.Seg(geom.Pt(2, 0), geom.Pt(6, 0))
	if got := g.ClassifySegment(east); got != TileS {
		t.Errorf("eastbound on y=l1 = %v, want S", got)
	}
	if got := g.ClassifySegment(east.Reverse()); got != TileB {
		t.Errorf("westbound on y=l1 = %v, want B", got)
	}
	// Horizontal on the north line y = 6: eastbound ⇒ B; westbound ⇒ N.
	eastN := geom.Seg(geom.Pt(2, 6), geom.Pt(6, 6))
	if got := g.ClassifySegment(eastN); got != TileB {
		t.Errorf("eastbound on y=l2 = %v, want B", got)
	}
	if got := g.ClassifySegment(eastN.Reverse()); got != TileN {
		t.Errorf("westbound on y=l2 = %v, want N", got)
	}
	// On-line segments beyond the box corners: x = 0 above y = 6 separates
	// NW from N.
	upNW := geom.Seg(geom.Pt(0, 7), geom.Pt(0, 9))
	if got := g.ClassifySegment(upNW); got != TileN {
		t.Errorf("northbound on x=m1 above box = %v, want N", got)
	}
	if got := g.ClassifySegment(upNW.Reverse()); got != TileNW {
		t.Errorf("southbound on x=m1 above box = %v, want NW", got)
	}
}

func TestSplitEdgeNoCrossing(t *testing.T) {
	g := testGrid(t)
	e := geom.Seg(geom.Pt(1, 1), geom.Pt(2, 3))
	got := g.SplitEdge(e, nil)
	if len(got) != 1 || got[0] != e {
		t.Errorf("SplitEdge = %v", got)
	}
	// Touching a line at an endpoint is not a crossing (Definition 3).
	touch := geom.Seg(geom.Pt(0, 3), geom.Pt(5, 3))
	if got := g.SplitEdge(touch, nil); len(got) != 1 {
		t.Errorf("endpoint touch split into %d", len(got))
	}
	// A segment lying on a line is not split.
	on := geom.Seg(geom.Pt(0, 1), geom.Pt(0, 5))
	if got := g.SplitEdge(on, nil); len(got) != 1 {
		t.Errorf("on-line segment split into %d", len(got))
	}
}

func TestSplitEdgeSingleCrossing(t *testing.T) {
	g := testGrid(t)
	e := geom.Seg(geom.Pt(-2, 3), geom.Pt(4, 3))
	got := g.SplitEdge(e, nil)
	if len(got) != 2 {
		t.Fatalf("split into %d segments", len(got))
	}
	if !got[0].B.Eq(geom.Pt(0, 3)) || !got[1].A.Eq(geom.Pt(0, 3)) {
		t.Errorf("crossing point not snapped: %v", got)
	}
	if got[0].A != e.A || got[1].B != e.B {
		t.Error("split does not preserve the edge endpoints")
	}
}

func TestSplitEdgeMaxCrossings(t *testing.T) {
	g := testGrid(t)
	// Diagonal crossing all four lines at distinct points: from below-left
	// of the box to above-right of it.
	e := geom.Seg(geom.Pt(-2, -1), geom.Pt(12, 11))
	got := g.SplitEdge(e, nil)
	if len(got) != 5 {
		t.Fatalf("split into %d segments, want 5", len(got))
	}
	// Continuity and tile purity.
	for i := 0; i < len(got)-1; i++ {
		if !got[i].B.Eq(got[i+1].A) {
			t.Errorf("segments %d and %d not contiguous", i, i+1)
		}
	}
	tiles := map[Tile]bool{}
	for _, s := range got {
		tiles[g.ClassifySegment(s)] = true
	}
	for _, want := range []Tile{TileSW, TileW, TileB, TileN, TileNE} {
		if !tiles[want] {
			t.Errorf("missing tile %v in %v", want, tiles)
		}
	}
}

func TestSplitEdgeThroughCorner(t *testing.T) {
	g := testGrid(t)
	// 45° segment through the exact corner (0,0): the vertical and
	// horizontal cuts coincide and must coalesce to a single corner point.
	e := geom.Seg(geom.Pt(-3, -3), geom.Pt(4, 4))
	got := g.SplitEdge(e, nil)
	if len(got) != 2 {
		t.Fatalf("corner split into %d segments, want 2: %v", len(got), got)
	}
	if !got[0].B.Eq(geom.Pt(0, 0)) {
		t.Errorf("corner point = %v, want (0,0)", got[0].B)
	}
	if g.ClassifySegment(got[0]) != TileSW || g.ClassifySegment(got[1]) != TileB {
		t.Errorf("corner tiles = %v, %v", g.ClassifySegment(got[0]), g.ClassifySegment(got[1]))
	}
}

// Property: splitting preserves endpoints and contiguity, yields 1–5
// segments, and no sub-segment properly crosses a grid line.
func TestSplitEdgeInvariantProperty(t *testing.T) {
	g := Grid{M1: 0, M2: 10, L1: 0, L2: 6}
	f := func(ax, ay, bx, by int16) bool {
		a := geom.Pt(float64(ax%40), float64(ay%40))
		b := geom.Pt(float64(bx%40), float64(by%40))
		if a.Eq(b) {
			return true
		}
		e := geom.Seg(a, b)
		segs := g.SplitEdge(e, nil)
		if len(segs) < 1 || len(segs) > 5 {
			return false
		}
		if !segs[0].A.Eq(a) || !segs[len(segs)-1].B.Eq(b) {
			return false
		}
		for i := 0; i < len(segs)-1; i++ {
			if !segs[i].B.Eq(segs[i+1].A) {
				return false
			}
		}
		for _, s := range segs {
			for _, m := range []float64{g.M1, g.M2} {
				if _, crosses := s.CrossVertical(m); crosses {
					return false
				}
			}
			for _, l := range []float64{g.L1, g.L2} {
				if _, crosses := s.CrossHorizontal(l); crosses {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the tile of every split segment's midpoint matches where the
// sub-segment actually lies (sampled at several interior parameters).
func TestSplitEdgeTilePurityProperty(t *testing.T) {
	g := Grid{M1: 0, M2: 10, L1: 0, L2: 6}
	f := func(ax, ay, bx, by int16) bool {
		a := geom.Pt(float64(ax%30), float64(ay%30))
		b := geom.Pt(float64(bx%30), float64(by%30))
		if a.Eq(b) {
			return true
		}
		for _, s := range g.SplitEdge(geom.Seg(a, b), nil) {
			want := g.ClassifyPoint(s.Mid())
			for _, tt := range []float64{0.25, 0.5, 0.75} {
				if g.ClassifyPoint(s.At(tt)) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
