package core

import (
	"fmt"

	"cardirect/internal/geom"
)

// Accumulator computes the cardinal direction relation — and the per-tile
// areas behind the percentage matrix — incrementally from a stream of
// primary-region edges against a fixed reference box, without ever
// materialising the primary region. It exists for the GIS-scale inputs §3
// of the paper anticipates: polygons read edge-by-edge from disk or a
// network feed in a single pass, matching the algorithms' one-scan design.
//
// Usage:
//
//	ac, _ := core.NewAccumulator(refBox)
//	for each polygon {
//		ac.BeginPolygon()
//		for each clockwise edge (a, b) { ac.AddEdge(a, b) }
//		if err := ac.EndPolygon(); err != nil { … }
//	}
//	rel, _ := ac.Relation()
//	matrix, _ := ac.Percent()
//
// Edges of each ring must arrive in the paper's clockwise (y-up) order;
// EndPolygon reports an error for counter-clockwise rings (orientation
// cannot be fixed retroactively in one pass because the interior-side
// tie-breaking of on-line segments consumes it immediately).
type Accumulator struct {
	grid   Grid
	center geom.Point
	rel    Relation
	acc    [NumTiles]float64
	accBN  float64
	stats  Stats
	buf    []geom.Segment

	inPolygon   bool
	ringArea    float64 // signed area of the current ring (E_0 sum)
	rayCrossing int     // parity of ring edges crossing the center's +x ray
	firstEdge   geom.Segment
	lastPoint   geom.Point
	edgeCount   int
}

// NewAccumulator prepares an accumulator for the given reference bounding
// box (obtain it with Region.BoundingBox or track it while streaming the
// reference region's own edges).
func NewAccumulator(refBox geom.Rect) (*Accumulator, error) {
	grid, err := NewGrid(refBox)
	if err != nil {
		return nil, err
	}
	return &Accumulator{
		grid:   grid,
		center: grid.Box().Center(),
		buf:    make([]geom.Segment, 0, 8),
	}, nil
}

// BeginPolygon starts a new ring. Rings may not nest.
func (ac *Accumulator) BeginPolygon() {
	ac.inPolygon = true
	ac.ringArea = 0
	ac.rayCrossing = 0
	ac.edgeCount = 0
}

// AddEdge feeds the next directed edge of the current ring. Consecutive
// edges must be contiguous (the end of one is the start of the next); the
// final edge must return to the ring's first vertex.
func (ac *Accumulator) AddEdge(a, b geom.Point) error {
	if !ac.inPolygon {
		return fmt.Errorf("core: AddEdge outside BeginPolygon/EndPolygon")
	}
	if a.Eq(b) {
		return fmt.Errorf("core: degenerate edge at %v", a)
	}
	if ac.edgeCount == 0 {
		ac.firstEdge = geom.Segment{A: a, B: b}
	} else if !ac.lastPoint.Eq(a) {
		return fmt.Errorf("core: discontiguous edge: previous ended at %v, next starts at %v", ac.lastPoint, a)
	}
	ac.lastPoint = b
	ac.edgeCount++
	ac.stats.EdgesIn++
	ac.stats.EdgeVisits++

	ac.ringArea += (b.X - a.X) * (a.Y + b.Y) / 2

	// Ray-casting parity for the centre-of-mbb containment test: count
	// edges crossing the horizontal ray from the centre toward +x.
	if (a.Y > ac.center.Y) != (b.Y > ac.center.Y) {
		xAt := a.X + (ac.center.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
		if xAt > ac.center.X {
			ac.rayCrossing++
		}
	}

	ac.buf = ac.grid.SplitEdge(geom.Segment{A: a, B: b}, ac.buf[:0])
	ac.stats.Intersections += len(ac.buf) - 1
	for _, s := range ac.buf {
		ac.stats.EdgesOut++
		t := ac.grid.ClassifySegment(s)
		ac.rel = ac.rel.With(t)
		switch t {
		case TileNW, TileW, TileSW:
			ac.acc[t] += Em(s.A, s.B, ac.grid.M1)
		case TileNE, TileE, TileSE:
			ac.acc[t] += Em(s.A, s.B, ac.grid.M2)
		case TileS:
			ac.acc[t] += El(s.A, s.B, ac.grid.L1)
		case TileN:
			ac.acc[t] += El(s.A, s.B, ac.grid.L2)
		}
		if t == TileN || t == TileB {
			ac.accBN += El(s.A, s.B, ac.grid.L1)
		}
	}
	return nil
}

// EndPolygon closes the current ring, folding its centre-containment result
// into the relation. It validates ring closure and clockwise orientation.
func (ac *Accumulator) EndPolygon() error {
	if !ac.inPolygon {
		return fmt.Errorf("core: EndPolygon without BeginPolygon")
	}
	ac.inPolygon = false
	if ac.edgeCount < 3 {
		return fmt.Errorf("core: ring has %d edges, need at least 3", ac.edgeCount)
	}
	if !ac.lastPoint.Eq(ac.firstEdge.A) {
		return fmt.Errorf("core: ring not closed: ends at %v, started at %v", ac.lastPoint, ac.firstEdge.A)
	}
	if ac.ringArea < 0 {
		return fmt.Errorf("core: ring is counter-clockwise; the stream API requires the paper's clockwise edge order")
	}
	ac.stats.PointInPoly++
	if ac.rayCrossing%2 == 1 {
		ac.rel = ac.rel.With(TileB)
	}
	ac.stats.Passes = 1
	return nil
}

// Relation returns the qualitative relation accumulated so far. It errors
// when no tile has been seen (no edges fed) or a ring is still open.
func (ac *Accumulator) Relation() (Relation, error) {
	if ac.inPolygon {
		return 0, fmt.Errorf("core: ring still open; call EndPolygon first")
	}
	if !ac.rel.IsValid() {
		return 0, fmt.Errorf("core: no edges accumulated")
	}
	return ac.rel, nil
}

// Areas returns the per-tile areas accumulated so far.
func (ac *Accumulator) Areas() (TileAreas, error) {
	if ac.inPolygon {
		return TileAreas{}, fmt.Errorf("core: ring still open; call EndPolygon first")
	}
	var areas TileAreas
	for _, t := range Tiles() {
		if t == TileB {
			continue
		}
		areas[t] = abs(ac.acc[t])
	}
	if bArea := abs(ac.accBN) - areas[TileN]; bArea > 0 {
		areas[TileB] = bArea
	}
	return areas, nil
}

// Percent returns the percentage matrix accumulated so far.
func (ac *Accumulator) Percent() (PercentMatrix, error) {
	areas, err := ac.Areas()
	if err != nil {
		return PercentMatrix{}, err
	}
	if areas.Total() <= 0 {
		return PercentMatrix{}, fmt.Errorf("core: accumulated region has zero area")
	}
	return areas.Percent(), nil
}

// Stats returns the instrumentation counters accumulated so far.
func (ac *Accumulator) Stats() Stats { return ac.stats }

// AddRegion feeds a whole region through the streaming interface —
// convenience for mixing materialised and streamed inputs.
func (ac *Accumulator) AddRegion(r geom.Region) error {
	for _, p := range r {
		p = p.Clockwise()
		ac.BeginPolygon()
		for i := 0; i < p.NumEdges(); i++ {
			e := p.Edge(i)
			if err := ac.AddEdge(e.A, e.B); err != nil {
				return err
			}
		}
		if err := ac.EndPolygon(); err != nil {
			return err
		}
	}
	return nil
}
