package core

import (
	"sort"

	"cardirect/internal/geom"
)

// Strip-localised exact stage of the level-of-detail tier: classify ONLY
// the original edges whose coordinate intervals meet the reference grid's
// band [m1,m2] (x) or [l1,l2] (y), recover the corner cells from vertex
// dominance, and tile B's parity from a bucketed line query. The stage is
// pure exact geometry — no epsilon reasoning — and its answer is
// bit-identical to the full kernel's whenever it reports ok. It is the
// stage that decides the canonical huge-world pair: a giant primary whose
// bounding box straddles a tiny reference, where the bracket can never
// certify (middle cells need grid spans > 2·eps) and the full kernel would
// stream thousands of edges for a handful of grid-line crossings.
//
// Exactness: partition the original edges into E* (x-interval ∩ [m1,m2] ≠ ∅
// or y-interval ∩ [l1,l2] ≠ ∅) and the rest. A non-E* edge has its
// x-interval strictly left of m1 or right of m2 AND its y-interval strictly
// below l1 or above l2 — it lies wholly inside one OPEN corner quadrant, is
// never split, and its midpoint marks exactly that corner. Conversely a
// vertex strictly inside an open corner quadrant always makes the kernel
// mark that corner: the crossing-free sub-segment incident to it stays in
// the closed quadrant and its midpoint is strictly inside (the midpoint
// argument of lod.go fact 2). So
//
//	kernel boundary marks = classify(E*) ∪ { corner c : some vertex lies
//	                        strictly inside c's open quadrant }
//
// where classify(E*) is the kernel's own split-and-classify loop run over
// E* alone (every mark it produces is a true mark, and all non-corner
// marks come from E*: a sub-segment whose midpoint classifies into the
// middle column has x-interval meeting [m1,m2], likewise middle row). The
// vertex condition is answered by four monotone staircases over the
// vertices sorted by x. Tile B's center test replays Polygon.Contains'
// per-edge rule over the edges of one y-bucket: edges whose y-interval
// misses the center's y neither toggle the ray parity nor can carry the
// center, so restricting to a bucket provably containing every straddling
// edge changes nothing.
//
// A reference whose band meets more than half the edges (giant-vs-giant)
// is declined — the full kernel's sequential streaming wins there, and the
// bracket has usually answered it already.

// stripMinEdges is the original-edge count below which the strip stage is
// not attempted: the full kernel over a few dozen edges is cheaper than
// building and probing the index.
const stripMinEdges = 128

// stripIndex is the lazily-built per-region acceleration structure of the
// strip stage: interval buckets over each axis, vertex staircases for the
// corner-quadrant queries, and the edge→polygon map for the parity query.
// Immutable after construction.
type stripIndex struct {
	p *Prepared // the exact preparation the index answers for

	// Interval buckets: bucket b of the x axis lists (in xids[xoff[b]:
	// xoff[b+1]]) every edge whose x-interval overlaps the bucket's range.
	// An edge spanning k buckets appears k times; queries de-duplicate
	// with an epoch array. invXW is 1/bucketWidth (0 for a degenerate
	// axis, which collapses to one bucket).
	nbX        int
	xorg, invXW float64
	xoff       []int32
	xids       []int32
	nbY        int
	yorg, invYW float64
	yoff       []int32
	yids       []int32

	// Vertex staircases: vertices sorted by x with running extremes of y
	// from the left (pre…) and from the right (suf…). existsNW(m1, l2) is
	// "some vertex has x < m1 and y > l2" = preMaxY[last x < m1] > l2, and
	// symmetrically for the other corners.
	vx                                 []float64
	preMaxY, preMinY, sufMaxY, sufMinY []float64

	// polyOf maps an edge to its polygon for the parity query; −1 marks
	// polygons Polygon.Contains rejects outright (fewer than 3 vertices).
	polyOf []int32
}

// stripIdx returns the region's strip index, building it on first use.
// Concurrent first calls may build twice; one result wins and both are
// correct.
func (l *LoD) stripIdx() *stripIndex {
	if ix := l.strip.Load(); ix != nil {
		return ix
	}
	ix := buildStripIndex(l.Exact())
	if l.strip.CompareAndSwap(nil, ix) {
		return ix
	}
	return l.strip.Load()
}

func buildStripIndex(p *Prepared) *stripIndex {
	ne := len(p.ax)
	ix := &stripIndex{p: p}
	ix.nbX, ix.xorg, ix.invXW, ix.xoff, ix.xids =
		buildIntervalBuckets(p.ax, p.bx, p.Box.MinX, p.Box.MaxX)
	ix.nbY, ix.yorg, ix.invYW, ix.yoff, ix.yids =
		buildIntervalBuckets(p.ay, p.by, p.Box.MinY, p.Box.MaxY)

	// Vertices: every edge start is a ring vertex and every ring vertex
	// starts exactly one edge.
	ord := make([]int32, ne)
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool { return p.ax[ord[a]] < p.ax[ord[b]] })
	ix.vx = make([]float64, ne)
	vy := make([]float64, ne)
	for i, id := range ord {
		ix.vx[i] = p.ax[id]
		vy[i] = p.ay[id]
	}
	ix.preMaxY = make([]float64, ne)
	ix.preMinY = make([]float64, ne)
	ix.sufMaxY = make([]float64, ne)
	ix.sufMinY = make([]float64, ne)
	for i := 0; i < ne; i++ {
		maxY, minY := vy[i], vy[i]
		if i > 0 {
			if ix.preMaxY[i-1] > maxY {
				maxY = ix.preMaxY[i-1]
			}
			if ix.preMinY[i-1] < minY {
				minY = ix.preMinY[i-1]
			}
		}
		ix.preMaxY[i], ix.preMinY[i] = maxY, minY
	}
	for i := ne - 1; i >= 0; i-- {
		maxY, minY := vy[i], vy[i]
		if i < ne-1 {
			if ix.sufMaxY[i+1] > maxY {
				maxY = ix.sufMaxY[i+1]
			}
			if ix.sufMinY[i+1] < minY {
				minY = ix.sufMinY[i+1]
			}
		}
		ix.sufMaxY[i], ix.sufMinY[i] = maxY, minY
	}

	ix.polyOf = make([]int32, ne)
	for pi := range p.polys {
		id := int32(pi)
		if len(p.polys[pi].ring) < 3 {
			id = -1
		}
		for e := p.polyOff[pi]; e < p.polyOff[pi+1]; e++ {
			ix.polyOf[e] = id
		}
	}
	return ix
}

// buildIntervalBuckets lays the edges' per-axis intervals into uniform
// buckets over [lo, hi]. The bucket count starts at the edge count (≈ one
// average edge extent per bucket) and shrinks if wide edges would inflate
// the duplicated-id total past 8× the edge count, keeping the index linear
// in the region size no matter the shape.
func buildIntervalBuckets(a, b []float64, lo, hi float64) (nb int, org, invW float64, off, ids []int32) {
	ne := len(a)
	nb = ne
	if nb > 4096 {
		nb = 4096
	}
	if nb < 1 {
		nb = 1
	}
	for {
		w := (hi - lo) / float64(nb)
		if !(w > 0) {
			nb = 1
			invW = 0
		} else {
			invW = 1 / w
		}
		total := 0
		for i := range a {
			b0, b1 := bucketSpan(a[i], b[i], lo, invW, nb)
			total += b1 - b0 + 1
		}
		if total <= 8*ne || nb == 1 {
			off = make([]int32, nb+1)
			for i := range a {
				b0, b1 := bucketSpan(a[i], b[i], lo, invW, nb)
				for bk := b0; bk <= b1; bk++ {
					off[bk+1]++
				}
			}
			for bk := 0; bk < nb; bk++ {
				off[bk+1] += off[bk]
			}
			ids = make([]int32, total)
			fill := make([]int32, nb)
			for i := range a {
				b0, b1 := bucketSpan(a[i], b[i], lo, invW, nb)
				for bk := b0; bk <= b1; bk++ {
					ids[off[bk]+fill[bk]] = int32(i)
					fill[bk]++
				}
			}
			return nb, lo, invW, off, ids
		}
		nb = nb * 8 * ne / total
		if nb < 1 {
			nb = 1
		}
	}
}

// bucketSpan returns the inclusive bucket range covered by the interval
// between coordinates u and v.
func bucketSpan(u, v, org, invW float64, nb int) (int, int) {
	if u > v {
		u, v = v, u
	}
	b0 := int((u - org) * invW)
	b1 := int((v - org) * invW)
	if b0 < 0 {
		b0 = 0
	}
	if b1 >= nb {
		b1 = nb - 1
	}
	if b1 < b0 {
		b1 = b0
	}
	return b0, b1
}

// relateStrip answers the pair from the strip index, or reports !ok when
// the candidate set exceeds half the edges (the full kernel wins there).
// The caller gates on origEdges ≥ stripMinEdges.
func (l *LoD) relateStrip(g Grid, center geom.Point, sc *Scratch) (Relation, bool) {
	ix := l.stripIdx()
	p := ix.p
	ne := len(p.ax)
	if len(sc.stripSeen) < ne {
		sc.stripSeen = make([]uint32, ne)
		sc.stripEpoch = 0
	}
	sc.stripEpoch++
	if sc.stripEpoch == 0 { // epoch wrapped: stale stamps could collide
		for i := range sc.stripSeen {
			sc.stripSeen[i] = 0
		}
		sc.stripEpoch = 1
	}
	ids := sc.stripIDs[:0]
	budget := ne / 2
	ids, ok := ix.collect(ids, sc.stripSeen, sc.stripEpoch, g, budget)
	sc.stripIDs = ids[:0]
	if !ok {
		return 0, false
	}

	// The kernel's own split-and-classify loop, over E* alone.
	var rel Relation
	m1, m2, l1, l2 := g.M1, g.M2, g.L1, g.L2
	ax, ay, bx, by := p.ax, p.ay, p.bx, p.by
	var qx, qy [6]float64
	for _, id := range ids {
		x0, y0, x1, y1 := ax[id], ay[id], bx[id], by[id]
		lox, hix := x0, x1
		if lox > hix {
			lox, hix = hix, lox
		}
		loy, hiy := y0, y1
		if loy > hiy {
			loy, hiy = hiy, loy
		}
		if (hix <= m1 || lox >= m1) && (hix <= m2 || lox >= m2) &&
			(hiy <= l1 || loy >= l1) && (hiy <= l2 || loy >= l2) {
			rel |= 1 << tileGrid[classifyRow(l1, l2, (y0+y1)/2, x1-x0)][classifyCol(m1, m2, (x0+x1)/2, y1-y0)]
			continue
		}
		cnt := splitEdgeInto(m1, m2, l1, l2, x0, y0, x1, y1, &qx, &qy)
		for k := 0; k < cnt; k++ {
			rel |= 1 << tileGrid[classifyRow(l1, l2, (qy[k]+qy[k+1])/2, qx[k+1]-qx[k])][classifyCol(m1, m2, (qx[k]+qx[k+1])/2, qy[k+1]-qy[k])]
		}
	}

	// Corner cells from the staircases (tileGrid row 0 = south).
	i := sort.SearchFloat64s(ix.vx, m1) // vertices with x < m1 are [0, i)
	if i > 0 {
		if ix.preMaxY[i-1] > l2 {
			rel |= 1 << tileGrid[2][0] // NW
		}
		if ix.preMinY[i-1] < l1 {
			rel |= 1 << tileGrid[0][0] // SW
		}
	}
	j := sort.Search(len(ix.vx), func(k int) bool { return ix.vx[k] > m2 })
	if j < len(ix.vx) {
		if ix.sufMaxY[j] > l2 {
			rel |= 1 << tileGrid[2][2] // NE
		}
		if ix.sufMinY[j] < l1 {
			rel |= 1 << tileGrid[0][2] // SE
		}
	}

	return ix.addCenterTileStrip(rel, center, sc), true
}

// collect gathers the de-duplicated ids of every edge whose x-interval
// meets [g.M1, g.M2] or whose y-interval meets [g.L1, g.L2]. ok is false
// once more than budget ids accumulate.
func (ix *stripIndex) collect(ids []int32, seen []uint32, epoch uint32, g Grid, budget int) ([]int32, bool) {
	p := ix.p
	if g.M2 >= p.Box.MinX && g.M1 <= p.Box.MaxX {
		b0, b1 := bucketSpan(g.M1, g.M2, ix.xorg, ix.invXW, ix.nbX)
		for bk := b0; bk <= b1; bk++ {
			for _, id := range ix.xids[ix.xoff[bk]:ix.xoff[bk+1]] {
				if seen[id] == epoch {
					continue
				}
				lo, hi := p.ax[id], p.bx[id]
				if lo > hi {
					lo, hi = hi, lo
				}
				if hi < g.M1 || lo > g.M2 {
					continue
				}
				seen[id] = epoch
				ids = append(ids, id)
				if len(ids) > budget {
					return ids, false
				}
			}
		}
	}
	if g.L2 >= p.Box.MinY && g.L1 <= p.Box.MaxY {
		b0, b1 := bucketSpan(g.L1, g.L2, ix.yorg, ix.invYW, ix.nbY)
		for bk := b0; bk <= b1; bk++ {
			for _, id := range ix.yids[ix.yoff[bk]:ix.yoff[bk+1]] {
				if seen[id] == epoch {
					continue
				}
				lo, hi := p.ay[id], p.by[id]
				if lo > hi {
					lo, hi = hi, lo
				}
				if hi < g.L1 || lo > g.L2 {
					continue
				}
				seen[id] = epoch
				ids = append(ids, id)
				if len(ids) > budget {
					return ids, false
				}
			}
		}
	}
	return ids, true
}

// addCenterTileStrip is addCenterTile answered from one y-bucket: it
// replays Polygon.Contains' per-edge rule (boundary hit or ray toggle)
// over the bucket provably holding every edge that straddles the center's
// y, accumulating per polygon under the same bounding-box gate.
func (ix *stripIndex) addCenterTileStrip(rel Relation, center geom.Point, sc *Scratch) Relation {
	if rel.Has(TileB) {
		return rel
	}
	p := ix.p
	if !p.Box.Contains(center) {
		return rel // no polygon box can pass the gate either
	}
	if n := len(p.polys); len(sc.polyMark) < n {
		sc.polyMark = make([]uint8, n)
	}
	mark := sc.polyMark
	touched := sc.polyTouched[:0]
	cx, cy := center.X, center.Y
	bk, _ := bucketSpan(cy, cy, ix.yorg, ix.invYW, ix.nbY)
	for _, id := range ix.yids[ix.yoff[bk]:ix.yoff[bk+1]] {
		pi := ix.polyOf[id]
		if pi < 0 {
			continue
		}
		pp := &p.polys[pi]
		if !pp.box.Contains(center) {
			continue
		}
		if mark[pi] == 0 {
			mark[pi] = 1
			touched = append(touched, pi)
		}
		x0, y0, x1, y1 := p.ax[id], p.ay[id], p.bx[id], p.by[id]
		if geom.Orient(geom.Pt(x0, y0), geom.Pt(x1, y1), center) == 0 &&
			min(x0, x1) <= cx && cx <= max(x0, x1) &&
			min(y0, y1) <= cy && cy <= max(y0, y1) {
			mark[pi] |= 2 // center on this polygon's boundary
		}
		if (y0 > cy) != (y1 > cy) {
			if xAt := x0 + (cy-y0)/(y1-y0)*(x1-x0); xAt > cx {
				mark[pi] ^= 4 // ray-crossing parity toggle
			}
		}
	}
	sc.polyTouched = touched
	for _, pi := range touched {
		if mark[pi]&6 != 0 {
			rel = rel.With(TileB)
		}
		mark[pi] = 0
	}
	return rel
}
