package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cardirect/internal/geom"
	"cardirect/internal/workload"
)

// storeWorld is the test's shadow model: the plain NamedRegion slice a
// from-scratch batch recompute would see after the same edit sequence.
type storeWorld []NamedRegion

// checkAgainstBatch asserts the store's cached contents — qualitative and
// quantitative — are what a from-scratch batch recompute over the current
// regions produces. This is the differential oracle of the acceptance
// criteria.
func checkAgainstBatch(t *testing.T, s *RelationStore, w storeWorld) {
	t.Helper()
	if s.Len() != len(w) {
		t.Fatalf("store holds %d regions, world has %d", s.Len(), len(w))
	}
	wantRel, _, err := ComputeAllPairsOpt(w, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatalf("oracle qualitative batch: %v", err)
	}
	gotRel := s.Pairs()
	if len(wantRel) == 0 {
		wantRel = nil
	}
	if !reflect.DeepEqual(gotRel, wantRel) {
		t.Fatalf("store pairs diverged from batch recompute:\n got %v\nwant %v", gotRel, wantRel)
	}
	wantPct, _, err := ComputeAllPairsPctOpt(w, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatalf("oracle quantitative batch: %v", err)
	}
	gotPct, err := s.PctPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPct) != len(wantPct) {
		t.Fatalf("store pct pairs = %d, want %d", len(gotPct), len(wantPct))
	}
	for i := range wantPct {
		g, want := gotPct[i], wantPct[i]
		if g.Primary != want.Primary || g.Reference != want.Reference {
			t.Fatalf("pct pair %d is (%s,%s), want (%s,%s)", i, g.Primary, g.Reference, want.Primary, want.Reference)
		}
		if !g.Matrix.ApproxEqual(want.Matrix, 1e-9) {
			t.Fatalf("%s vs %s: matrix diverged\n%v\nwant\n%v", g.Primary, g.Reference, g.Matrix, want.Matrix)
		}
		for tile := range want.Areas {
			if math.Abs(g.Areas[tile]-want.Areas[tile]) > 1e-9*(1+math.Abs(want.Areas[tile])) {
				t.Fatalf("%s vs %s: tile %v area %g, want %g", g.Primary, g.Reference, Tile(tile), g.Areas[tile], want.Areas[tile])
			}
		}
	}
}

// TestRelationStoreDifferential drives a store through a long seeded edit
// sequence — adds, removes, geometry changes, renames — and proves after
// every single edit that its contents equal a from-scratch batch recompute.
func TestRelationStoreDifferential(t *testing.T) {
	for _, seed := range []int64{3, 20040314} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := storeWorld(batchWorkload(seed, 15))
			s, err := NewRelationStore(w, StoreOptions{Workers: 2, Pct: true})
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstBatch(t, s, w)

			// A deterministic pool of spare geometries for adds and moves.
			spare := workload.New(seed + 1).Scatter(64, 8)
			rng := rand.New(rand.NewSource(seed))
			nextID := 1000
			ops := 40
			if testing.Short() {
				ops = 12
			}
			for op := 0; op < ops; op++ {
				switch k := rng.Intn(4); {
				case k == 0 || len(w) < 3: // add
					name := fmt.Sprintf("r%04d", nextID)
					nextID++
					g := spare[rng.Intn(len(spare))]
					if err := s.Add(name, g); err != nil {
						t.Fatalf("op %d add %s: %v", op, name, err)
					}
					w = append(w, NamedRegion{Name: name, Region: g})
				case k == 1: // remove
					i := rng.Intn(len(w))
					if err := s.Remove(w[i].Name); err != nil {
						t.Fatalf("op %d remove %s: %v", op, w[i].Name, err)
					}
					w = append(w[:i], w[i+1:]...)
				case k == 2: // set geometry
					i := rng.Intn(len(w))
					g := spare[rng.Intn(len(spare))]
					if err := s.SetGeometry(w[i].Name, g); err != nil {
						t.Fatalf("op %d setgeom %s: %v", op, w[i].Name, err)
					}
					w[i].Region = g
				default: // rename
					i := rng.Intn(len(w))
					name := fmt.Sprintf("r%04d", nextID)
					nextID++
					if err := s.Rename(w[i].Name, name); err != nil {
						t.Fatalf("op %d rename %s: %v", op, w[i].Name, err)
					}
					w[i].Name = name
				}
				checkAgainstBatch(t, s, w)
			}
		})
	}
}

// TestRelationStoreDeltaAccounting pins the invalidation granularity via
// Stats.DeltaPairs: a geometry change recomputes exactly its row and column
// (2(n−1) pairs), a rename recomputes nothing, a remove shrinks the matrix
// with no recomputation.
func TestRelationStoreDeltaAccounting(t *testing.T) {
	w := batchWorkload(7, 12)
	n := len(w)
	s, err := NewRelationStore(w, StoreOptions{Workers: 1, Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DeltaPairs; got != 0 {
		t.Fatalf("initial build DeltaPairs = %d, want 0", got)
	}

	// Geometry change: exactly 2(n−1) pair computations.
	before := s.Stats().DeltaPairs
	if err := s.SetGeometry(w[3].Name, geom.Rgn(workload.Box(200, 200, 210, 208))); err != nil {
		t.Fatal(err)
	}
	if d := s.Stats().DeltaPairs - before; d != 2*(n-1) {
		t.Errorf("SetGeometry DeltaPairs delta = %d, want %d", d, 2*(n-1))
	}

	// Rename: cache preserved, zero recomputation.
	relBefore, err := s.Relation(w[0].Name, w[1].Name)
	if err != nil {
		t.Fatal(err)
	}
	before = s.Stats().DeltaPairs
	if err := s.Rename(w[0].Name, "renamed"); err != nil {
		t.Fatal(err)
	}
	if d := s.Stats().DeltaPairs - before; d != 0 {
		t.Errorf("Rename DeltaPairs delta = %d, want 0", d)
	}
	relAfter, err := s.Relation("renamed", w[1].Name)
	if err != nil {
		t.Fatal(err)
	}
	if relAfter != relBefore {
		t.Errorf("rename changed cached relation: %v -> %v", relBefore, relAfter)
	}
	if s.Has(w[0].Name) {
		t.Error("old name still present after rename")
	}

	// Remove: matrix shrinks to (n−1)(n−2) pairs, zero recomputation.
	before = s.Stats().DeltaPairs
	if err := s.Remove(w[5].Name); err != nil {
		t.Fatal(err)
	}
	if d := s.Stats().DeltaPairs - before; d != 0 {
		t.Errorf("Remove DeltaPairs delta = %d, want 0", d)
	}
	if got, want := len(s.Pairs()), (n-1)*(n-2); got != want {
		t.Errorf("pairs after remove = %d, want %d", got, want)
	}

	// Add: exactly 2(n−1) new pair computations against the n−1 survivors.
	before = s.Stats().DeltaPairs
	if err := s.Add("fresh", geom.Rgn(workload.Box(-50, -50, -40, -44))); err != nil {
		t.Fatal(err)
	}
	if d := s.Stats().DeltaPairs - before; d != 2*(n-1) {
		t.Errorf("Add DeltaPairs delta = %d, want %d", d, 2*(n-1))
	}
}

// TestRelationStoreErrors covers the error surface: unknown names are
// ErrUnknownRegion, duplicates and degenerate geometry are rejected with the
// store untouched.
func TestRelationStoreErrors(t *testing.T) {
	w := batchWorkload(11, 6)
	s, err := NewRelationStore(w, StoreOptions{Workers: 1, Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range []error{
		s.Remove("nope"),
		s.SetGeometry("nope", geom.Rgn(workload.Box(0, 0, 1, 1))),
		s.Rename("nope", "other"),
		func() error { _, err := s.Relation("nope", w[0].Name); return err }(),
		func() error { _, err := s.Relation(w[0].Name, "nope"); return err }(),
		func() error { _, err := s.Percent("nope", w[0].Name); return err }(),
		func() error { _, err := s.Areas(w[0].Name, "nope"); return err }(),
	} {
		if !errors.Is(err, ErrUnknownRegion) {
			t.Errorf("err = %v, want ErrUnknownRegion", err)
		}
	}
	if err := s.Add(w[0].Name, geom.Rgn(workload.Box(0, 0, 1, 1))); err == nil {
		t.Error("duplicate Add should fail")
	}
	if err := s.Add("", geom.Rgn(workload.Box(0, 0, 1, 1))); err == nil {
		t.Error("empty-name Add should fail")
	}
	if err := s.Rename(w[0].Name, w[1].Name); err == nil {
		t.Error("Rename onto an existing name should fail")
	}
	if _, err := s.Relation(w[0].Name, w[0].Name); err == nil {
		t.Error("self-relation lookup should fail")
	}

	// Degenerate replacement geometry: rejected, store unchanged.
	wantPairs := s.Pairs()
	line := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)))
	if err := s.SetGeometry(w[2].Name, line); err == nil {
		t.Error("degenerate SetGeometry should fail")
	}
	if err := s.Add("degenerate", line); err == nil {
		t.Error("degenerate Add should fail")
	}
	if !reflect.DeepEqual(s.Pairs(), wantPairs) {
		t.Error("failed edit mutated the store")
	}

	// A qualitative-only store refuses quantitative lookups.
	q, err := NewRelationStore(w, StoreOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Percent(w[0].Name, w[1].Name); err == nil {
		t.Error("Percent on a non-Pct store should fail")
	}
	if _, err := q.PctPairs(); err == nil {
		t.Error("PctPairs on a non-Pct store should fail")
	}
}

// TestRelationStoreLookups: cached lookups agree with the direct one-shot
// algorithms, and Percent/Areas stay mutually consistent.
func TestRelationStoreLookups(t *testing.T) {
	w := batchWorkload(13, 10)
	s, err := NewRelationStore(w, StoreOptions{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]geom.Region{}
	for _, r := range w {
		byName[r.Name] = r.Region
	}
	for _, a := range w {
		for _, b := range w {
			if a.Name == b.Name {
				continue
			}
			got, err := s.Relation(a.Name, b.Name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ComputeCDR(byName[a.Name], byName[b.Name])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s vs %s: store %v, ComputeCDR %v", a.Name, b.Name, got, want)
			}
			m, err := s.Percent(a.Name, b.Name)
			if err != nil {
				t.Fatal(err)
			}
			wantM, _, err := ComputeCDRPct(byName[a.Name], byName[b.Name])
			if err != nil {
				t.Fatal(err)
			}
			if !m.ApproxEqual(wantM, 1e-9) {
				t.Fatalf("%s vs %s: store matrix diverged from ComputeCDRPct", a.Name, b.Name)
			}
			areas, err := s.Areas(a.Name, b.Name)
			if err != nil {
				t.Fatal(err)
			}
			if !m.ApproxEqual(areas.Percent(), 1e-9) {
				t.Fatalf("%s vs %s: Areas and Percent inconsistent", a.Name, b.Name)
			}
		}
	}
	names := s.Names()
	if len(names) != len(w) {
		t.Fatalf("Names() = %d entries, want %d", len(names), len(w))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() not sorted")
		}
	}
	if p, ok := s.Prepared(w[0].Name); !ok || p.Name != w[0].Name {
		t.Error("Prepared lookup failed")
	}
	if _, ok := s.Prepared("nope"); ok {
		t.Error("Prepared should miss unknown names")
	}
}

// TestRelationStoreWorkerCounts: delta recomputation is deterministic across
// pool sizes (run with -race this also exercises the delta pool for races).
func TestRelationStoreWorkerCounts(t *testing.T) {
	w := batchWorkload(17, 20)
	alt := geom.Rgn(workload.Box(3, 3, 40, 30))
	var want []PairRelation
	for _, workers := range []int{1, 2, 4, 16} {
		s, err := NewRelationStore(w, StoreOptions{Workers: workers, Pct: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetGeometry(w[4].Name, alt); err != nil {
			t.Fatal(err)
		}
		got := s.Pairs()
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: delta output differs", workers)
		}
	}
}

// TestRelationStoreTiny: stores with zero or one region are legal and empty.
func TestRelationStoreTiny(t *testing.T) {
	s, err := NewRelationStore(nil, StoreOptions{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Pairs() != nil {
		t.Fatal("empty store should hold nothing")
	}
	if err := s.Add("a", geom.Rgn(workload.Box(0, 0, 4, 4))); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DeltaPairs; got != 0 {
		t.Errorf("single-region add DeltaPairs = %d, want 0", got)
	}
	if err := s.Add("b", geom.Rgn(workload.Box(10, 0, 14, 4))); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Relation("b", "a")
	if err != nil {
		t.Fatal(err)
	}
	if rel != E {
		t.Errorf("b vs a = %v, want %v", rel, E)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("store should be empty again")
	}
}
