package core

import (
	"fmt"
	"math"
	"strings"
)

// TileAreas holds the area of the primary region falling into each tile of
// the reference region, indexed by Tile.
type TileAreas [NumTiles]float64

// Total returns the summed area over all tiles — the area of the primary
// region.
func (a TileAreas) Total() float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// Relation derives the qualitative relation: the set of tiles holding more
// than the fraction eps of the total area. Pass eps = 0 for "any positive
// area"; small positive eps absorbs floating-point residue.
func (a TileAreas) Relation(eps float64) Relation {
	total := a.Total()
	if total <= 0 {
		return 0
	}
	var r Relation
	for t, v := range a {
		if v > eps*total {
			r = r.With(Tile(t))
		}
	}
	return r
}

// Percent converts the areas into the paper's cardinal direction matrix with
// percentages.
func (a TileAreas) Percent() PercentMatrix {
	var m PercentMatrix
	total := a.Total()
	if total <= 0 {
		return m
	}
	inv := 100 / total // one division, nine multiplies — this is a hot path
	for t, v := range a {
		m.Set(Tile(t), v*inv)
	}
	return m
}

// PercentMatrix is a cardinal direction relation matrix with percentages
// (Goyal & Egenhofer, adopted in §2 of the paper): cell (row, col) holds the
// percentage of the primary region's area lying in the corresponding tile.
// Row 0 is the north row, matching the paper's printed layout.
type PercentMatrix [3][3]float64

// Get returns the percentage for tile t.
func (m PercentMatrix) Get(t Tile) float64 { return m[2-t.Row()][t.Col()] }

// Set stores the percentage for tile t.
func (m *PercentMatrix) Set(t Tile, pct float64) { m[2-t.Row()][t.Col()] = pct }

// Sum returns the sum of all cells; a well-formed matrix sums to 100 (or 0
// for the zero matrix).
func (m PercentMatrix) Sum() float64 {
	var s float64
	for i := range m {
		for j := range m[i] {
			s += m[i][j]
		}
	}
	return s
}

// Relation derives the qualitative relation from the matrix: tiles whose
// percentage exceeds eps (in percentage points).
func (m PercentMatrix) Relation(eps float64) Relation {
	var r Relation
	for _, t := range Tiles() {
		if m.Get(t) > eps {
			r = r.With(t)
		}
	}
	return r
}

// ApproxEqual reports whether every cell of m and u differ by at most tol
// percentage points.
func (m PercentMatrix) ApproxEqual(u PercentMatrix, tol float64) bool {
	for i := range m {
		for j := range m[i] {
			if math.Abs(m[i][j]-u[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix in the paper's bracketed style with one decimal,
// e.g.
//
//	[  0.0%  0.0% 50.0% ]
//	[  0.0%  0.0% 50.0% ]
//	[  0.0%  0.0%  0.0% ]
func (m PercentMatrix) String() string {
	var sb strings.Builder
	for i := 0; i < 3; i++ {
		sb.WriteString("[ ")
		for j := 0; j < 3; j++ {
			fmt.Fprintf(&sb, "%5.1f%%", m[i][j])
			if j < 2 {
				sb.WriteByte(' ')
			}
		}
		sb.WriteString(" ]")
		if i < 2 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
