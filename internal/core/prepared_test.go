package core

import (
	"errors"
	"testing"

	"cardirect/internal/geom"
)

func preparedBox(t *testing.T, name string, minX, minY, maxX, maxY float64) *Prepared {
	t.Helper()
	p, err := Prepare(name, geom.Rgn(geom.Poly(
		geom.Pt(minX, maxY), geom.Pt(maxX, maxY), geom.Pt(maxX, minY), geom.Pt(minX, minY),
	)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPrepareValidates(t *testing.T) {
	if _, err := Prepare("x", geom.Region{}); !errors.Is(err, ErrDegenerateRegion) {
		t.Errorf("empty region: err = %v, want ErrDegenerateRegion", err)
	}
	if _, err := Prepare("x", geom.Region{geom.Polygon{}}); !errors.Is(err, ErrDegenerateRegion) {
		t.Errorf("edgeless region: err = %v, want ErrDegenerateRegion", err)
	}
	// A line region prepares fine (usable as primary) but has no grid.
	line, err := Prepare("line", geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0))))
	if err != nil {
		t.Fatalf("line region should prepare: %v", err)
	}
	if _, err := line.Grid(); err == nil {
		t.Error("line region should have no reference grid")
	}
	ref := preparedBox(t, "ref", 0, 0, 10, 6)
	if _, err := ref.Grid(); err != nil {
		t.Errorf("box region grid: %v", err)
	}
	if _, err := Relate(line, ref, nil); err != nil {
		t.Errorf("line as primary should relate: %v", err)
	}
	if _, err := Relate(ref, line, nil); err == nil {
		t.Error("line as reference should fail")
	}
}

func TestPreparedFlattensEdges(t *testing.T) {
	r := geom.Rgn(
		geom.Poly(geom.Pt(0, 1), geom.Pt(1, 1), geom.Pt(1, 0), geom.Pt(0, 0)),
		geom.Poly(geom.Pt(3, 1), geom.Pt(4, 1), geom.Pt(4, 0), geom.Pt(3, 0)),
	)
	p, err := Prepare("r", r)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() != 8 || len(p.Edges()) != 8 {
		t.Errorf("edges = %d, want 8", p.NumEdges())
	}
	if p.Box != r.BoundingBox() {
		t.Errorf("Box = %v, want %v", p.Box, r.BoundingBox())
	}
	// Counter-clockwise input must be normalised.
	ccw := geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1))
	q, err := Prepare("q", geom.Rgn(ccw))
	if err != nil {
		t.Fatal(err)
	}
	if !q.Region[0].IsClockwise() {
		t.Error("prepared region not clockwise-normalised")
	}
}

// TestRelateMatchesComputeCDR checks Relate against the reference
// implementation on the package's canonical fixtures, including
// boundary-touching inputs where the tie-break rule matters.
func TestRelateMatchesComputeCDR(t *testing.T) {
	ref := geom.Rgn(geom.Poly(geom.Pt(0, 6), geom.Pt(10, 6), geom.Pt(10, 0), geom.Pt(0, 0)))
	cases := []geom.Region{
		geom.Rgn(geom.Poly(geom.Pt(12, 10), geom.Pt(14, 10), geom.Pt(14, 2), geom.Pt(12, 2))),   // NE:E
		geom.Rgn(geom.Poly(geom.Pt(2, -1), geom.Pt(8, -1), geom.Pt(8, -5), geom.Pt(2, -5))),     // S
		geom.Rgn(geom.Poly(geom.Pt(-3, 5), geom.Pt(0, 5), geom.Pt(0, 1), geom.Pt(-3, 1))),       // W (shares x = 0)
		geom.Rgn(geom.Poly(geom.Pt(2, 5), geom.Pt(8, 5), geom.Pt(8, 1), geom.Pt(2, 1))),         // B
		geom.Rgn(geom.Poly(geom.Pt(-2, 8), geom.Pt(12, 8), geom.Pt(12, -2), geom.Pt(-2, -2))),   // all nine
		geom.Rgn(geom.Poly(geom.Pt(-4, 12), geom.Pt(-1, 12), geom.Pt(-1, -4), geom.Pt(-4, -4))), // SW:W:NW column
		geom.Rgn( // disconnected: one component S, one NE
			geom.Poly(geom.Pt(2, -2), geom.Pt(4, -2), geom.Pt(4, -4), geom.Pt(2, -4)),
			geom.Poly(geom.Pt(12, 8), geom.Pt(14, 8), geom.Pt(14, 7), geom.Pt(12, 7)),
		),
	}
	refP, err := Prepare("ref", ref)
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scratch{}
	for i, a := range cases {
		want, err := ComputeCDR(a, ref)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Prepare("a", a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Relate(p, refP, sc)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("case %d: Relate = %v, ComputeCDR = %v", i, got, want)
		}
		if gg := p.RelateGrid(refP.grid, sc); gg != want {
			t.Errorf("case %d: RelateGrid = %v, want %v", i, gg, want)
		}
	}
}

// TestFastPathHits pins down which inputs the two prune tiers answer and
// that their answers match the full algorithm.
func TestFastPathHits(t *testing.T) {
	ref := preparedBox(t, "ref", 0, 0, 10, 6)
	cases := []struct {
		name       string
		a          *Prepared
		wantRel    string
		singleTile bool
		band       bool
	}{
		{"strictly NE", preparedBox(t, "a", 12, 8, 14, 10), "NE", true, false},
		{"strictly inside B", preparedBox(t, "a", 2, 2, 8, 4), "B", true, false},
		{"west column spanning rows", preparedBox(t, "a", -4, -2, -1, 8), "SW:W:NW", false, true},
		{"middle column through B", preparedBox(t, "a", 2, -4, 8, 10), "B:S:N", false, true},
		{"south row spanning cols", preparedBox(t, "a", -4, -5, 14, -1), "S:SW:SE", false, true},
		// Touches x = 0 but sits strictly inside the middle row: the band
		// path's strict per-polygon inequalities resolve the on-line contact
		// to W exactly, agreeing with the interior-side tie-break.
		{"touching x = 0 (band)", preparedBox(t, "a", -3, 1, 0, 5), "W", false, true},
		{"overlapping corner (no fast path)", preparedBox(t, "a", 8, 4, 12, 8), "B:N:NE:E", false, false},
	}
	for _, c := range cases {
		var st Stats
		rel, ok := c.a.relateFast(ref.grid, &st)
		if c.singleTile || c.band {
			if !ok {
				t.Errorf("%s: fast path did not fire", c.name)
				continue
			}
			if (st.PruneSingleTile == 1) != c.singleTile || (st.PruneBand == 1) != c.band {
				t.Errorf("%s: prune counters single=%d band=%d", c.name, st.PruneSingleTile, st.PruneBand)
			}
			if rel.String() != c.wantRel {
				t.Errorf("%s: fast = %v, want %s", c.name, rel, c.wantRel)
			}
		} else if ok {
			t.Errorf("%s: fast path fired unexpectedly with %v", c.name, rel)
		}
		// Whatever the path, the public answer must match ComputeCDR.
		want, err := ComputeCDR(c.a.Region, ref.Region)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Relate(c.a, ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: Relate = %v, ComputeCDR = %v", c.name, got, want)
		}
		if want.String() != c.wantRel {
			t.Errorf("%s: fixture relation = %v, expected %s", c.name, want, c.wantRel)
		}
	}
}

// TestFastPathDegenerateGuard: regions with zero-area rings or zero-length
// edges must skip the band path (the orientation argument breaks) but may
// still use the single-tile path.
func TestFastPathDegenerateGuard(t *testing.T) {
	ref := preparedBox(t, "ref", 0, 0, 10, 6)
	// A region whose second component is a horizontal line exactly on y = 0,
	// strictly west of the box: box spans only column 0.
	r := geom.Region{
		geom.Poly(geom.Pt(-4, 5), geom.Pt(-2, 5), geom.Pt(-2, 3), geom.Pt(-4, 3)),
		geom.Poly(geom.Pt(-4, 0), geom.Pt(-2, 0), geom.Pt(-3, 0)),
	}
	p, err := Prepare("r", r)
	if err != nil {
		t.Fatal(err)
	}
	if p.fastOK {
		t.Error("degenerate ring should clear fastOK")
	}
	if _, ok := p.relateFast(ref.grid, nil); ok {
		t.Error("band path must not fire for degenerate rings")
	}
	want, err := ComputeCDR(r, ref.Region)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Relate(p, ref, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Relate = %v, ComputeCDR = %v", got, want)
	}
	// Strictly inside a single tile the O(1) path is still safe.
	far := geom.Region{
		geom.Poly(geom.Pt(20, 20), geom.Pt(22, 20), geom.Pt(21, 20)), // zero-area ring
		geom.Poly(geom.Pt(20, 22), geom.Pt(22, 22), geom.Pt(22, 21), geom.Pt(20, 21)),
	}
	fp, err := Prepare("far", far)
	if err != nil {
		t.Fatal(err)
	}
	rel, ok := fp.relateFast(ref.grid, nil)
	if !ok || rel != NE {
		t.Errorf("single-tile path = %v (fired %v), want NE", rel, ok)
	}
}
