package core

import (
	"fmt"

	"cardirect/internal/geom"
)

// Grid is the 3×3 tiling of the plane induced by a reference region's
// minimum bounding box: the four lines x = m1, x = m2, y = l1, y = l2 of the
// paper. Tiles are closed — each includes the parts of the lines forming it
// — so points on a line belong to the tiles on both sides; classification
// methods therefore come in two flavours: ClassifyPoint for points known to
// be strictly inside a tile, and ClassifySegment which resolves on-line
// segments by the side the region's interior lies on.
type Grid struct {
	// M1, M2 are the west and east vertical lines (x = inf_x(b), x = sup_x(b));
	// L1, L2 are the south and north horizontal lines (y = inf_y(b), y = sup_y(b)).
	M1, M2, L1, L2 float64
}

// NewGrid builds the tile grid for a reference region's bounding box. An
// error is returned for an empty or degenerate box, for which the nine-tile
// model is not defined (regions in REG* always have boxes of positive area).
func NewGrid(box geom.Rect) (Grid, error) {
	if box.IsEmpty() {
		return Grid{}, fmt.Errorf("core: reference bounding box is empty")
	}
	if box.Width() <= 0 || box.Height() <= 0 {
		return Grid{}, fmt.Errorf("core: reference bounding box %v is degenerate", box)
	}
	return Grid{M1: box.MinX, M2: box.MaxX, L1: box.MinY, L2: box.MaxY}, nil
}

// Box returns the central (B) tile as a rectangle — mbb(b) itself.
func (g Grid) Box() geom.Rect {
	return geom.Rect{MinX: g.M1, MinY: g.L1, MaxX: g.M2, MaxY: g.L2}
}

// Col classifies an x-coordinate into grid columns 0 (west), 1 (middle) or
// 2 (east). Coordinates exactly on a line are assigned to the middle column;
// use ClassifySegment when the ambiguity matters.
func (g Grid) Col(x float64) int {
	switch {
	case x < g.M1:
		return 0
	case x > g.M2:
		return 2
	default:
		return 1
	}
}

// Row classifies a y-coordinate into grid rows 0 (south), 1 (middle) or
// 2 (north), assigning on-line coordinates to the middle row.
func (g Grid) Row(y float64) int {
	switch {
	case y < g.L1:
		return 0
	case y > g.L2:
		return 2
	default:
		return 1
	}
}

// ClassifyPoint returns the tile containing p, resolving on-line points
// toward the middle column/row. It is exact for points strictly inside a
// tile, which is the common case for split-segment midpoints.
func (g Grid) ClassifyPoint(p geom.Point) Tile {
	return TileAt(g.Col(p.X), g.Row(p.Y))
}

// ClassifySegment returns the tile of a segment that is known not to cross
// any grid line (the invariant Compute-CDR establishes by splitting edges at
// line crossings). The midpoint decides the tile; when the segment lies
// exactly on a grid line — where the closed tiles overlap — the tile on the
// side of the polygon's interior is chosen. With the package's canonical
// clockwise (y-up) orientation the interior lies to the right of the
// directed segment, i.e. in direction (dy, −dx).
//
// This tie-break is what keeps the qualitative algorithm exact for regions
// that touch mbb(b) lines: a region lying entirely west of b and sharing the
// line x = m1 is W of b, not B:W.
func (g Grid) ClassifySegment(s geom.Segment) Tile {
	mid := s.Mid()
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y

	col := g.Col(mid.X)
	if mid.X == g.M1 && dy != 0 {
		// Segment lies on the west line. Interior x-direction is sign(dy):
		// dy > 0 (northbound) puts the interior east of the line.
		if dy > 0 {
			col = 1
		} else {
			col = 0
		}
	} else if mid.X == g.M2 && dy != 0 {
		if dy > 0 {
			col = 2
		} else {
			col = 1
		}
	}

	row := g.Row(mid.Y)
	if mid.Y == g.L1 && dx != 0 {
		// Segment lies on the south line. Interior y-direction is sign(−dx):
		// dx > 0 (eastbound) puts the interior south of the line.
		if dx > 0 {
			row = 0
		} else {
			row = 1
		}
	} else if mid.Y == g.L2 && dx != 0 {
		if dx > 0 {
			row = 1
		} else {
			row = 2
		}
	}

	return TileAt(col, row)
}

// SplitEdge cuts the edge AB at its proper crossings with the four grid
// lines (Definition 3 of the paper: touching at an endpoint or lying on a
// line is not a crossing) and appends the resulting sub-segments to dst,
// returning the extended slice. Every appended segment lies in exactly one
// tile; their union is AB; crossing coordinates are snapped exactly onto the
// crossed line. At most four cuts can occur, so at most five segments are
// appended.
func (g Grid) SplitEdge(e geom.Segment, dst []geom.Segment) []geom.Segment {
	type cut struct {
		t    float64
		vert bool    // crossed line is vertical
		c    float64 // line coordinate
	}
	var cuts [4]cut
	n := 0
	add := func(t float64, vert bool, c float64) {
		cuts[n] = cut{t, vert, c}
		n++
	}
	if t, ok := e.CrossVertical(g.M1); ok {
		add(t, true, g.M1)
	}
	if t, ok := e.CrossVertical(g.M2); ok {
		add(t, true, g.M2)
	}
	if t, ok := e.CrossHorizontal(g.L1); ok {
		add(t, false, g.L1)
	}
	if t, ok := e.CrossHorizontal(g.L2); ok {
		add(t, false, g.L2)
	}
	if n == 0 {
		return append(dst, e)
	}
	// Insertion sort of up to four cuts by parameter.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && cuts[j].t < cuts[j-1].t; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	// Materialise cut points, coalescing a vertical/horizontal cut pair with
	// (nearly) equal parameters: that is an edge passing exactly through a
	// grid corner, whose two float parameters can disagree in the last ulp.
	// Without coalescing the sliver between the two snap points would be
	// classified into a diagonal tile the edge only touches at a point.
	const cornerEps = 1e-12
	pts := make([]geom.Point, 0, 4)
	for i := 0; i < n; i++ {
		if i+1 < n && cuts[i].vert != cuts[i+1].vert && cuts[i+1].t-cuts[i].t <= cornerEps {
			// Exact grid corner: both coordinates snap to their lines.
			x, y := cuts[i].c, cuts[i+1].c
			if !cuts[i].vert {
				x, y = y, x
			}
			pts = append(pts, geom.Point{X: x, Y: y})
			i++
			continue
		}
		if cuts[i].vert {
			pts = append(pts, e.AtOnVertical(cuts[i].t, cuts[i].c))
		} else {
			pts = append(pts, e.AtOnHorizontal(cuts[i].t, cuts[i].c))
		}
	}
	prev := e.A
	for _, p := range pts {
		if !p.Eq(prev) {
			dst = append(dst, geom.Segment{A: prev, B: p})
			prev = p
		}
	}
	if !prev.Eq(e.B) {
		dst = append(dst, geom.Segment{A: prev, B: e.B})
	}
	return dst
}
