package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cardirect/internal/geom"
)

// NamedRegion pairs a region with an identifier for batch computation.
type NamedRegion struct {
	Name   string
	Region geom.Region
}

// PairRelation is one entry of a batch result: primary Name1 related to
// reference Name2.
type PairRelation struct {
	Primary   string
	Reference string
	Relation  Relation
}

// BatchOptions configures the all-pairs batch engines (BatchCDR, BatchPct).
type BatchOptions struct {
	// Workers is the worker-pool size; values ≤ 0 mean GOMAXPROCS. One
	// worker runs the whole batch on the calling goroutine.
	Workers int
	// NoPrune disables the MBB tile-pruning fast path, forcing full
	// edge-splitting for every pair. Used by benchmarks and ablations.
	NoPrune bool
	// NoSoA routes the full kernels through the per-edge reference
	// implementation instead of the struct-of-arrays kernels. Used by
	// differential tests and benchmark ablations; results are bit-identical
	// either way.
	NoSoA bool
	// Prepared, when non-nil, supplies already-prepared regions: the engine
	// skips preparation and ignores the regions argument, letting callers
	// that hold Prepared values (indexes, configuration stores) pay the
	// normalise/flatten/bbox cost once.
	Prepared []*Prepared
}

// BatchResult is the output of one qualitative all-pairs batch: the sorted
// (primary, reference) pair relations plus the aggregated instrumentation
// (edge counts, MBB prune hits) of the run.
type BatchResult struct {
	Pairs []PairRelation
	Stats Stats
}

// BatchCDR computes the cardinal direction relation for every ordered pair
// of distinct regions — the bulk operation CARDIRECT performs when a
// configuration is (re)annotated. It is the single qualitative batch entry
// point: regions are prepared (normalised, flattened, bounding-boxed) once
// each unless opt.Prepared supplies them, the MBB fast path answers
// box-separable pairs without splitting a single edge, and the work fans
// out over opt.Workers goroutines. The context is checked once per claimed
// primary row, so a server timeout or cancellation aborts the batch within
// one row's worth of work; the context's error is returned verbatim for
// errors.Is. Results come back sorted by (primary, reference). A nil opt
// means defaults (GOMAXPROCS workers, pruning on).
func BatchCDR(ctx context.Context, regions []NamedRegion, opt *BatchOptions) (*BatchResult, error) {
	var o BatchOptions
	if opt != nil {
		o = *opt
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ps := o.Prepared
	if ps == nil {
		if len(regions) < 2 {
			return &BatchResult{}, nil
		}
		var err error
		ps, err = PrepareAll(regions)
		if err != nil {
			return nil, err
		}
	}
	pairs, st, err := batchPrepared(ctx, ps, o)
	if err != nil {
		return nil, err
	}
	return &BatchResult{Pairs: pairs, Stats: st}, nil
}

// batchPrepared is the qualitative batch engine proper, over prepared
// regions: name-sorted iteration makes out[] land directly in the canonical
// (primary, reference) order with no final sort, and makes each worker's
// write range a function of the claimed row alone.
func batchPrepared(ctx context.Context, ps []*Prepared, opt BatchOptions) ([]PairRelation, Stats, error) {
	n := len(ps)
	if n < 2 {
		return nil, Stats{}, nil
	}
	for _, p := range ps {
		if p.gridErr != nil {
			return nil, Stats{}, fmt.Errorf("core: region %q: %w", p.Name, p.gridErr)
		}
	}
	order := make([]*Prepared, n)
	copy(order, ps)
	sort.Slice(order, func(i, j int) bool { return order[i].Name < order[j].Name })

	out := make([]PairRelation, n*(n-1))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var next atomic.Int64
	var mu sync.Mutex
	var total Stats
	runPool(workers, func() {
		sc := getScratch()
		defer putScratch(sc)
		var st Stats
		for {
			pi := int(next.Add(1) - 1)
			if pi >= n {
				break
			}
			// One context check per claimed row bounds the cancellation
			// latency to a single primary's sweep without taxing the
			// per-pair hot loop.
			if ctx.Err() != nil {
				break
			}
			a := order[pi]
			row := out[pi*(n-1) : (pi+1)*(n-1)]
			k := 0
			for ri := 0; ri < n; ri++ {
				if ri == pi {
					continue
				}
				b := order[ri]
				rel := a.relate(b.grid, b.center, opt.NoPrune, opt.NoSoA, sc, &st)
				st.Passes++
				row[k] = PairRelation{Primary: a.Name, Reference: b.Name, Relation: rel}
				k++
			}
		}
		mu.Lock()
		total.Merge(st)
		mu.Unlock()
	})
	if err := ctx.Err(); err != nil {
		return nil, total, err
	}
	return out, total, nil
}

// ComputeAllPairs computes every ordered pair's relation sequentially.
//
// Deprecated: use BatchCDR with BatchOptions{Workers: 1}.
func ComputeAllPairs(regions []NamedRegion) ([]PairRelation, error) {
	out, _, err := ComputeAllPairsOpt(regions, BatchOptions{Workers: 1})
	return out, err
}

// ComputeAllPairsParallel is ComputeAllPairs over a GOMAXPROCS-sized worker
// pool.
//
// Deprecated: use BatchCDR.
func ComputeAllPairsParallel(regions []NamedRegion) ([]PairRelation, error) {
	out, _, err := ComputeAllPairsOpt(regions, BatchOptions{})
	return out, err
}

// ComputeAllPairsOpt is the configurable batch engine with instrumentation.
//
// Deprecated: use BatchCDR, which also reports Stats.
func ComputeAllPairsOpt(regions []NamedRegion, opt BatchOptions) ([]PairRelation, Stats, error) {
	res, err := BatchCDR(context.Background(), regions, &opt)
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Pairs, res.Stats, nil
}

// ComputeAllPairsPrepared runs the batch over already-prepared regions.
//
// Deprecated: use BatchCDR with BatchOptions.Prepared.
func ComputeAllPairsPrepared(ps []*Prepared, opt BatchOptions) ([]PairRelation, Stats, error) {
	opt.Prepared = ps
	res, err := BatchCDR(context.Background(), nil, &opt)
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Pairs, res.Stats, nil
}

// FindRelated returns the names of the candidate regions whose relation to
// the reference region is a member of the allowed set — the primitive
// behind "retrieve combinations of interesting regions" queries when only
// one side varies. A candidate with no usable geometry yields an error
// wrapping ErrDegenerateRegion rather than a silent non-match.
func FindRelated(candidates []NamedRegion, reference geom.Region, allowed RelationSet) ([]string, error) {
	return findRelated(context.Background(), candidates, reference, allowed, 1)
}

// FindRelatedParallel is FindRelated over a GOMAXPROCS-sized worker pool,
// with identical (sorted, deterministic) output.
func FindRelatedParallel(candidates []NamedRegion, reference geom.Region, allowed RelationSet) ([]string, error) {
	return findRelated(context.Background(), candidates, reference, allowed, 0)
}

// FindRelatedCtx is FindRelatedParallel honoring a context: cancellation is
// observed once per claimed candidate and returned as the context's error.
func FindRelatedCtx(ctx context.Context, candidates []NamedRegion, reference geom.Region, allowed RelationSet) ([]string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return findRelated(ctx, candidates, reference, allowed, 0)
}

func findRelated(ctx context.Context, candidates []NamedRegion, reference geom.Region, allowed RelationSet, workers int) ([]string, error) {
	if allowed.IsEmpty() {
		return nil, fmt.Errorf("core: empty allowed relation set")
	}
	if len(reference) == 0 {
		return nil, fmt.Errorf("core: reference region is empty")
	}
	grid, err := NewGrid(reference.BoundingBox())
	if err != nil {
		return nil, err
	}
	center := grid.Box().Center()

	n := len(candidates)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	matched := make([]bool, n)
	errs := make([]error, n)
	var next atomic.Int64
	runPool(workers, func() {
		sc := getScratch()
		defer putScratch(sc)
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				break
			}
			if ctx.Err() != nil {
				break
			}
			c := candidates[i]
			p, err := Prepare(c.Name, c.Region)
			if err != nil {
				errs[i] = err
				continue
			}
			matched[i] = allowed.Contains(p.relate(grid, center, false, false, sc, nil))
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []string
	for i := range candidates {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if matched[i] {
			out = append(out, candidates[i].Name)
		}
	}
	sort.Strings(out)
	return out, nil
}
