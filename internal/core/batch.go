package core

import (
	"fmt"
	"sort"

	"cardirect/internal/geom"
)

// NamedRegion pairs a region with an identifier for batch computation.
type NamedRegion struct {
	Name   string
	Region geom.Region
}

// PairRelation is one entry of a batch result: primary Name1 related to
// reference Name2.
type PairRelation struct {
	Primary   string
	Reference string
	Relation  Relation
}

// ComputeAllPairs computes the cardinal direction relation for every
// ordered pair of distinct regions — the bulk operation CARDIRECT performs
// when a configuration is (re)annotated. Polygons are normalised and
// bounding boxes computed once per region rather than once per pair, and
// results come back sorted by (primary, reference).
func ComputeAllPairs(regions []NamedRegion) ([]PairRelation, error) {
	n := len(regions)
	if n < 2 {
		return nil, nil
	}
	names := make([]string, n)
	seen := make(map[string]bool, n)
	norm := make([]geom.Region, n)
	grids := make([]Grid, n)
	for i, r := range regions {
		if r.Name == "" {
			return nil, fmt.Errorf("core: region %d has empty name", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("core: duplicate region name %q", r.Name)
		}
		seen[r.Name] = true
		names[i] = r.Name
		if len(r.Region) == 0 {
			return nil, fmt.Errorf("core: region %q is empty", r.Name)
		}
		norm[i] = r.Region.Clockwise()
		g, err := NewGrid(r.Region.BoundingBox())
		if err != nil {
			return nil, fmt.Errorf("core: region %q: %w", r.Name, err)
		}
		grids[i] = g
	}
	out := make([]PairRelation, 0, n*(n-1))
	buf := make([]geom.Segment, 0, 8)
	for pi := 0; pi < n; pi++ {
		for ri := 0; ri < n; ri++ {
			if pi == ri {
				continue
			}
			grid := grids[ri]
			center := grid.Box().Center()
			var rel Relation
			for _, p := range norm[pi] {
				for i := 0; i < p.NumEdges(); i++ {
					buf = grid.SplitEdge(p.Edge(i), buf[:0])
					for _, s := range buf {
						rel = rel.With(grid.ClassifySegment(s))
					}
				}
				if p.Contains(center) {
					rel = rel.With(TileB)
				}
			}
			if !rel.IsValid() {
				return nil, fmt.Errorf("core: %q vs %q produced no tiles", names[pi], names[ri])
			}
			out = append(out, PairRelation{Primary: names[pi], Reference: names[ri], Relation: rel})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Primary != out[j].Primary {
			return out[i].Primary < out[j].Primary
		}
		return out[i].Reference < out[j].Reference
	})
	return out, nil
}

// FindRelated returns the names of the candidate regions whose relation to
// the reference region is a member of the allowed set — the primitive
// behind "retrieve combinations of interesting regions" queries when only
// one side varies.
func FindRelated(candidates []NamedRegion, reference geom.Region, allowed RelationSet) ([]string, error) {
	if allowed.IsEmpty() {
		return nil, fmt.Errorf("core: empty allowed relation set")
	}
	grid, err := NewGrid(reference.BoundingBox())
	if err != nil {
		return nil, err
	}
	center := grid.Box().Center()
	buf := make([]geom.Segment, 0, 8)
	var out []string
	for _, c := range candidates {
		var rel Relation
		for _, p := range c.Region.Clockwise() {
			for i := 0; i < p.NumEdges(); i++ {
				buf = grid.SplitEdge(p.Edge(i), buf[:0])
				for _, s := range buf {
					rel = rel.With(grid.ClassifySegment(s))
				}
			}
			if p.Contains(center) {
				rel = rel.With(TileB)
			}
		}
		if allowed.Contains(rel) {
			out = append(out, c.Name)
		}
	}
	sort.Strings(out)
	return out, nil
}
