package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"cardirect/internal/geom"
)

// Level-of-detail tier: answer relations from error-bounded simplified
// geometry whenever a proved certain/possible tile bracket makes the
// simplified answer bit-identical to the exact kernel's, from a
// strip-localised subset of the exact edges otherwise, and from the full
// exact kernel as the last resort. The tier exists for huge worlds (10^5+
// regions with zipfian edge counts) where the handful of giant regions
// dominate all-pairs cost: their kernels run over tens of simplified
// edges — or a handful of exact edges near the grid lines — instead of
// thousands of exact ones.
//
// Soundness rests on these facts, each established where it is used:
//
//  1. geom.SimplifyRegion anchors the Douglas–Peucker pass at each
//     polygon's extreme vertices, so every per-polygon bounding box — and
//     hence the region box, the reference grid, and the grid center — is
//     EXACTLY the original's. Everything derived from boxes alone
//     (reference grids, the MBB fast paths, the coarse index) is
//     therefore exact by construction, and a LoD region is a perfect
//     reference for any pair.
//
//  2. The simplified boundary S is within Hausdorff distance eps of the
//     original boundary O in both directions (geom/simplify.go). The
//     bracket in relateSimplified computes two tile masks from S alone:
//
//       - certain: cells where some split sub-segment holds a point at
//         per-axis depth > eps inside the cell (found by clipping the
//         sub-segment against the cell shrunk by eps and verifying a
//         witness strictly). S ⊆ N_eps(O), so an original boundary point
//         lies within eps of the witness, hence strictly inside the open
//         cell; and an original boundary point strictly inside an open
//         cell always marks it: its crossing-free sub-segment stays in
//         the closed cell, and that sub-segment's midpoint is strictly
//         inside (a segment touching a grid line only at an interior
//         point would have to lie along the line, contradicting strict
//         interiority), where classifyCol/Row need no tie-break. Hence
//         certain ⊆ marks(O).
//
//       - possible: cells whose eps-expansion the sub-segment meets,
//         found by the same clipping against the cell expanded by eps
//         per axis (the Minkowski sum with the eps-square, a superset of
//         the Euclidean eps-neighbourhood). Every original boundary
//         point is within eps of some sub-segment point (O ⊆ N_eps(S)),
//         so whatever cell ANY tie-break assigns it to, that cell's
//         expansion meets the sub-segment. Hence marks(O) ⊆ possible.
//
//     certain == possible therefore pins the boundary marks of the exact
//     kernel regardless of interior-side tie-breaking, without ever
//     looking at the original edges.
//
//  3. Tile B's center-containment test agrees when the grid center keeps
//     distance > 2·eps from every simplified segment: the original
//     boundary is then > eps away too, and the straight-line homotopy
//     from the original ring to its simplified chords moves no point by
//     more than eps, so the loop never sweeps over the center and the
//     even-odd parity — hence Polygon.Contains — is identical for both
//     rings. The per-polygon bounding-box gate of addCenterTile is
//     box-exact by fact 1.
//
//  4. A pair the bracket cannot certify (a tiny reference deep inside a
//     giant's error band always defeats it: middle cells need grid spans
//     > 2·eps) is answered by the strip stage (lod_strip.go) over the
//     ORIGINAL edges — exact classification of just the edges whose
//     coordinate intervals meet [m1,m2] or [l1,l2], plus vertex-dominance
//     staircases for the corner cells and a bucketed parity query for
//     tile B. No epsilon reasoning is involved; see the lod_strip.go
//     comment for the exactness argument.
//
// A pair failing every stage falls through to the exact kernel via
// LoD.Exact, a lazily-built exact Prepared of the primary; Stats counts
// the outcomes (LoDSimplified / LoDStrip / LoDExact).

// DefaultEpsFrac is the default simplification tolerance as a fraction of
// the region's smaller bounding-box dimension.
const DefaultEpsFrac = 0.05

// DefaultLoDMinEdges is the edge count below which a region is not worth
// simplifying: the exact kernel over a handful of edges is cheaper than
// any clearance bookkeeping.
const DefaultLoDMinEdges = 16

// LoDOptions configures level-of-detail preparation.
type LoDOptions struct {
	// EpsFrac sets each region's simplification tolerance to
	// EpsFrac × min(box width, box height); 0 means DefaultEpsFrac.
	// Negative disables simplification (the tier degrades to exact).
	EpsFrac float64
	// MinEdges skips simplification for regions below this edge count;
	// 0 means DefaultLoDMinEdges.
	MinEdges int
	// Grid is the coarse-index resolution per axis for PrepareLoDWorld;
	// 0 means DefaultCoarseGrid.
	Grid int
	// Workers sizes the worker pool of LoDWorld batch sweeps; ≤0 means
	// GOMAXPROCS.
	Workers int
}

func (o LoDOptions) epsFrac() float64 {
	if o.EpsFrac == 0 {
		return DefaultEpsFrac
	}
	if o.EpsFrac < 0 {
		return 0
	}
	return o.EpsFrac
}

func (o LoDOptions) minEdges() int {
	if o.MinEdges <= 0 {
		return DefaultLoDMinEdges
	}
	return o.MinEdges
}

// LoD is one region of the level-of-detail tier: the simplified geometry
// prepared for the kernels, the error band it was simplified under, the
// original-geometry facts the fast paths must use (areas and the band-path
// gate — boxes are shared exactly, see the file comment), and a lazily
// prepared exact Prepared for pairs the simplified tier cannot decide.
// Immutable after construction except for the exact cache, which is safe
// for concurrent use.
type LoD struct {
	// Name identifies the region in results and errors.
	Name string
	// Eps is the simplification tolerance; 0 means Simp IS the exact
	// preparation and every pair takes the exact path directly.
	Eps float64

	simp       *Prepared   // simplified geometry (== exact when Eps == 0)
	region     geom.Region // original, clockwise-normalised (for lazy exact prep)
	origFastOK bool        // ORIGINAL region's band-path soundness
	origAreas  []float64   // ORIGINAL per-polygon areas, prepareIn order
	origTotal  float64     // ORIGINAL summed area, prepareIn accumulation order
	origEdges  int         // ORIGINAL edge count (the strip-stage gate)
	exact      atomic.Pointer[Prepared]
	strip      atomic.Pointer[stripIndex]
}

// Simplified returns the prepared simplified geometry (the exact
// preparation when Eps is 0). Its Box, Grid and per-polygon boxes equal
// the exact region's.
func (l *LoD) Simplified() *Prepared { return l.simp }

// SimplifiedEdges returns the simplified edge count — the cost unit of the
// LoD kernel path.
func (l *LoD) SimplifiedEdges() int { return len(l.simp.ax) }

// Exact returns the exact Prepared of the region, building it on first
// use. Concurrent first calls may prepare twice; one result wins and both
// are correct.
func (l *LoD) Exact() *Prepared {
	if p := l.exact.Load(); p != nil {
		return p
	}
	p, err := Prepare(l.Name, l.region)
	if err != nil {
		// Unreachable: PrepareLoD already prepared the same region once.
		panic(fmt.Sprintf("core: exact re-preparation of %q failed: %v", l.Name, err))
	}
	if l.exact.CompareAndSwap(nil, p) {
		return p
	}
	return l.exact.Load()
}

// PrepareLoD builds the level-of-detail form of one region. The simplified
// geometry is prepared into ar (nil means individual allocations); the
// exact geometry is only prepared if a pair later needs it.
func PrepareLoD(ar *Arena, name string, r geom.Region, opt LoDOptions) (*LoD, error) {
	if len(r) == 0 {
		return nil, fmt.Errorf("core: region %q is empty: %w", name, ErrDegenerateRegion)
	}
	norm := r.Clockwise()
	l := &LoD{Name: name, region: norm, origFastOK: true, origEdges: norm.NumEdges()}

	// Original-geometry facts, replicating prepareIn's loop so the values
	// are bit-identical to what the exact Prepared would hold: the pct fast
	// paths answer from these and must match the exact kernel exactly.
	l.origAreas = make([]float64, len(norm))
	for pi, poly := range norm {
		area := poly.Area()
		l.origAreas[pi] = area
		l.origTotal += area
		if area == 0 {
			l.origFastOK = false
		}
		n := len(poly)
		for i := 0; i < n; i++ {
			j := i + 1
			if j == n {
				j = 0
			}
			if poly[i].Eq(poly[j]) {
				l.origFastOK = false
			}
		}
	}

	eps := 0.0
	box := norm.BoundingBox()
	if w, h := box.Width(), box.Height(); w > 0 && h > 0 && norm.NumEdges() >= opt.minEdges() {
		d := w
		if h < d {
			d = h
		}
		eps = opt.epsFrac() * d
	}
	simplified := norm
	if eps > 0 {
		simplified = geom.SimplifyRegion(norm, eps)
		if simplified.NumEdges() == norm.NumEdges() {
			eps = 0 // nothing dropped: the tier degrades to exact for free
			simplified = norm
		}
	}
	simp, err := prepareIn(ar, name, simplified)
	if err != nil {
		return nil, err
	}
	// Defensive: the anchored simplifier guarantees exact per-polygon box
	// preservation; if that ever broke, every box-derived answer would be
	// silently wrong, so degrade to exact instead.
	if eps > 0 {
		for i := range simp.polys {
			if simp.polys[i].box != norm[i].BoundingBox() {
				simp, err = prepareIn(ar, name, norm)
				if err != nil {
					return nil, err
				}
				eps = 0
				break
			}
		}
	}
	l.simp = simp
	l.Eps = eps
	if eps == 0 {
		// The preparation was built from norm itself: it IS the exact
		// Prepared, so seed the lazy cache.
		l.exact.Store(simp)
	}
	return l, nil
}

// relateSimplified attempts to answer the pair from the simplified boundary
// alone via the certain/possible bracket of the file comment (fact 2): one
// pass over the simplified edges, splitting each on the grid lines exactly
// as the kernel would, accumulating the cells its sub-segments certainly
// mark (midpoint at per-axis depth > eps) and possibly mark (eps-expanded
// span touches the cell). Equal masks pin the exact kernel's boundary
// marks; tile B's center test is then replayed on the simplified rings
// under the 2·eps clearance of fact 3. ok is false when the masks differ,
// the center clearance fails, or the reference grid is too narrow for
// middle cells to ever certify.
func (l *LoD) relateSimplified(g Grid, center geom.Point) (Relation, bool) {
	eps := l.Eps
	m1, m2, l1, l2 := g.M1, g.M2, g.L1, g.L2
	if m2-m1 <= 2*eps || l2-l1 <= 2*eps {
		return 0, false // middle cells can never reach depth > eps
	}
	var certain, possible Relation
	centerClear := true
	marginSq := 4 * eps * eps
	cx, cy := center.X, center.Y
	ax, ay, bx, by := l.simp.ax, l.simp.ay, l.simp.bx, l.simp.by
	var qx, qy [6]float64
	inf := math.Inf(1)
	colLo := [3]float64{-inf, m1, m2}
	colHi := [3]float64{m1, m2, inf}
	rowLo := [3]float64{-inf, l1, l2}
	rowHi := [3]float64{l1, l2, inf}
	for i := range ax {
		x0, y0, x1, y1 := ax[i], ay[i], bx[i], by[i]
		if centerClear && distSqPointSeg(cx, cy, x0, y0, x1, y1) <= marginSq {
			centerClear = false
		}
		lox, hix := x0, x1
		if lox > hix {
			lox, hix = hix, lox
		}
		loy, hiy := y0, y1
		if loy > hiy {
			loy, hiy = hiy, loy
		}
		cnt := 1
		if (hix <= m1 || lox >= m1) && (hix <= m2 || lox >= m2) &&
			(hiy <= l1 || loy >= l1) && (hiy <= l2 || loy >= l2) {
			qx[0], qy[0], qx[1], qy[1] = x0, y0, x1, y1
		} else {
			cnt = splitEdgeInto(m1, m2, l1, l2, x0, y0, x1, y1, &qx, &qy)
		}
		for k := 0; k < cnt; k++ {
			sx, sy := qx[k], qy[k]
			dx, dy := qx[k+1]-sx, qy[k+1]-sy
			// Parametric slab clipping of the sub-segment against each
			// cell: possible uses the cell expanded by eps per axis (the
			// Minkowski sum with the eps-square covers every point within
			// Euclidean eps), certain the cell shrunk by eps, verified
			// strictly at a witness point so boundary ties never slip in.
			for c := 0; c < 3; c++ {
				pxa, pxb, ok := axisT(sx, dx, colLo[c]-eps, colHi[c]+eps)
				if !ok {
					continue
				}
				cxa, cxb, cxok := axisT(sx, dx, colLo[c]+eps, colHi[c]-eps)
				for r := 0; r < 3; r++ {
					pya, pyb, ok := axisT(sy, dy, rowLo[r]-eps, rowHi[r]+eps)
					if !ok || pxa > pyb || pya > pxb {
						continue
					}
					possible |= 1 << tileGrid[r][c]
					if !cxok {
						continue
					}
					cya, cyb, ok := axisT(sy, dy, rowLo[r]+eps, rowHi[r]-eps)
					if !ok || cxa > cyb || cya > cxb {
						continue
					}
					tm := (max(cxa, cya) + min(cxb, cyb)) / 2
					wx, wy := sx+tm*dx, sy+tm*dy
					if wx > colLo[c]+eps && wx < colHi[c]-eps &&
						wy > rowLo[r]+eps && wy < rowHi[r]-eps {
						certain |= 1 << tileGrid[r][c]
					}
				}
			}
		}
	}
	if certain != possible {
		return 0, false
	}
	rel := certain
	if !rel.Has(TileB) {
		if !centerClear {
			return 0, false
		}
		// addCenterTile's rule over the simplified rings: sound under the
		// 2·eps center clearance (fact 3), box gate exact (fact 1).
		for i := range l.simp.polys {
			pp := &l.simp.polys[i]
			if pp.box.Contains(center) && pp.ring.Contains(center) {
				rel = rel.With(TileB)
				break
			}
		}
	}
	return rel, true
}

// axisT returns the closed sub-range [t0, t1] ⊆ [0, 1] of the parametric
// point p0 + t·d lying inside [lo, hi] on one axis; ok is false when the
// range is empty. Infinite bounds are welcome.
func axisT(p0, d, lo, hi float64) (float64, float64, bool) {
	if d == 0 {
		if p0 < lo || p0 > hi {
			return 0, 0, false
		}
		return 0, 1, true
	}
	t0 := (lo - p0) / d
	t1 := (hi - p0) / d
	if t0 > t1 {
		t0, t1 = t1, t0
	}
	if t0 < 0 {
		t0 = 0
	}
	if t1 > 1 {
		t1 = 1
	}
	if t0 > t1 {
		return 0, 0, false
	}
	return t0, t1, true
}

// distSqPointSeg returns the squared distance from (px,py) to the segment
// (x0,y0)→(x1,y1).
func distSqPointSeg(px, py, x0, y0, x1, y1 float64) float64 {
	dx, dy := x1-x0, y1-y0
	l2 := dx*dx + dy*dy
	if l2 > 0 {
		t := ((px-x0)*dx + (py-y0)*dy) / l2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		x0 += t * dx
		y0 += t * dy
	}
	ex, ey := px-x0, py-y0
	return ex*ex + ey*ey
}

// RelateLoD computes the relation of the primary a against the reference b
// through the level-of-detail tier. The result is bit-identical to
// Relate(a.Exact(), b.Exact(), sc) for every pair — the tier only changes
// which geometry pays for it:
//
//   - the MBB fast path answers from boxes shared exactly with the
//     original (gated on the original's band soundness);
//   - when the certain/possible bracket pins the answer, the simplified
//     edges decide the pair (Stats.LoDSimplified);
//   - otherwise the strip stage classifies just the exact edges near the
//     grid lines (Stats.LoDStrip);
//   - otherwise the exact geometry is prepared (once, cached) and the
//     full exact kernel runs (Stats.LoDExact).
//
// The reference side needs only its grid and center, which the simplified
// preparation carries exactly. sc may be nil.
func RelateLoD(a, b *LoD, sc *Scratch, st *Stats) (Relation, error) {
	if b.simp.gridErr != nil {
		return 0, b.simp.gridErr
	}
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	return a.relateLoD(b.simp.grid, b.simp.center, sc, st), nil
}

// relateLoD is RelateLoD against a raw grid (LoDWorld's per-pair path).
func (a *LoD) relateLoD(g Grid, center geom.Point, sc *Scratch, st *Stats) Relation {
	if rel, ok := a.simp.relateFastWith(g, a.origFastOK, st); ok {
		return rel
	}
	// Strip first: for the dominant ambiguous pair — a huge primary over a
	// small reference — it classifies a handful of edges and is exact, so
	// trying the bracket first would cost a simplified-kernel pass that
	// rarely concludes there. The bracket earns its keep on the pairs the
	// strip declines: comparable-size references whose band meets most of
	// the primary's edges.
	if a.origEdges >= stripMinEdges {
		if rel, ok := a.relateStrip(g, center, sc); ok {
			if st != nil {
				st.LoDStrip++
			}
			return rel
		}
	}
	if a.Eps > 0 {
		if rel, ok := a.relateSimplified(g, center); ok {
			if st != nil {
				st.LoDSimplified++
			}
			return rel
		}
	}
	if st != nil {
		st.LoDExact++
	}
	return a.Exact().relate(g, center, false, false, sc, st)
}

// RelatePctLoD computes the percent matrix of the primary a against the
// reference b through the level-of-detail tier, bit-identical to
// RelatePct(a.Exact(), b.Exact(), sc). Simplified geometry cannot answer a
// quantitative query (its areas differ), so the tier is the box/area fast
// path — evaluated over the shared-exact boxes and the ORIGINAL areas — or
// the exact kernel; the win is skipping the exact preparation for the
// overwhelming fast-path majority. sc may be nil.
func RelatePctLoD(a, b *LoD, sc *Scratch, st *Stats) (PercentMatrix, TileAreas, error) {
	if b.simp.gridErr != nil {
		return PercentMatrix{}, TileAreas{}, b.simp.gridErr
	}
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	var areas TileAreas
	total, err := a.relatePctLoDInto(&areas, b.simp.grid, sc, st)
	if err != nil {
		return PercentMatrix{}, areas, err
	}
	var m PercentMatrix
	percentInto(&m, &areas, total)
	return m, areas, nil
}

// relatePctLoDInto mirrors relatePctAreasInto's pruned half over the
// original areas, falling through to the exact kernel.
func (a *LoD) relatePctLoDInto(dst *TileAreas, g Grid, sc *Scratch, st *Stats) (float64, error) {
	if a.origTotal > 0 {
		if col, row := strictCol(a.simp.Box, g), strictRow(a.simp.Box, g); col >= 0 && row >= 0 {
			*dst = TileAreas{}
			dst[TileAt(col, row)] = a.origTotal
			if st != nil {
				st.PrunePctTile++
			}
			return a.origTotal, nil
		}
		*dst = TileAreas{}
		ok := true
		for i := range a.simp.polys {
			b := a.simp.polys[i].box
			col := strictCol(b, g)
			if col < 0 {
				ok = false
				break
			}
			row := strictRow(b, g)
			if row < 0 {
				ok = false
				break
			}
			dst[TileAt(col, row)] += a.origAreas[i]
		}
		if ok {
			if st != nil {
				st.PrunePctPoly++
			}
			return a.origTotal, nil
		}
	}
	if st != nil {
		st.LoDExact++
	}
	return a.Exact().relatePctAreasInto(dst, g, true, false, sc, st)
}
