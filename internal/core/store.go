package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cardirect/internal/geom"
)

// ErrUnknownRegion is returned (wrapped, with the region's name) by
// RelationStore operations addressing a region the store does not hold.
// Callers can test for it with errors.Is.
var ErrUnknownRegion = errors.New("core: unknown region")

// StoreOptions configures a RelationStore.
type StoreOptions struct {
	// Workers is the worker-pool size used for the initial build and for
	// every delta recomputation; values ≤ 0 mean GOMAXPROCS.
	Workers int
	// Pct additionally maintains the quantitative results (percent matrix
	// and per-tile areas) for every ordered pair. It requires every region
	// to have positive area, like the quantitative batch engine.
	Pct bool
}

// pctCell is one quantitative slot of the store's pair matrix.
type pctCell struct {
	matrix PercentMatrix
	areas  TileAreas
}

// RelationStore is the stateful heart of an interactive CARDIRECT session:
// it owns the Prepared form of a set of named regions together with the
// cached cardinal direction relation — and, with StoreOptions.Pct, the
// percent matrix — of every ordered pair. Where the batch engines answer
// "annotate this configuration once", the store answers "keep the all-pairs
// network fresh while regions are added, moved, renamed and deleted": each
// edit re-prepares only the touched region and recomputes only its row and
// column (2(n−1) pairs, counted in Stats.DeltaPairs) through the same
// MBB-pruned worker pool, instead of the O(n²) full sweep.
//
// A store is safe for concurrent use: an RWMutex lets any number of readers
// (Relation, Percent, Pairs, Names, ...) overlap, while the edit methods
// (Add, Remove, SetGeometry, Rename) take the write side, so readers never
// observe a half-applied delta. All query results are deterministic and
// identical to a from-scratch batch recompute over the current regions.
type RelationStore struct {
	opt StoreOptions

	// mu guards every field below: read methods take the read side, edits
	// (and their delta recomputations) the write side. The delta worker
	// pool runs entirely under the write lock, so its internal data races
	// are impossible by construction.
	mu sync.RWMutex

	ps   []*Prepared    // slot order: insertion order, compacted on Remove
	idx  map[string]int // region name → slot
	rels [][]Relation   // rels[i][j] = relation of ps[i] against ps[j]; diagonal unused
	pcts [][]pctCell    // parallel quantitative matrix; nil unless opt.Pct

	// gen counts successful edits (Add, Remove, SetGeometry, Rename). It is
	// atomic so readers can poll it without taking mu: the query planner's
	// plan cache re-plans when it moves, and the HTTP layer serves it as an
	// ETag so repeat readers short-circuit to 304.
	gen atomic.Uint64

	stats Stats
}

// Generation returns the store's monotonic edit counter: 0 for a freshly
// built store, +1 after every successful Add, Remove, SetGeometry or Rename.
// Two reads returning the same value bracket a window with no edits, which
// is what makes it usable as a cache validator (ETag, plan cache).
func (s *RelationStore) Generation() uint64 { return s.gen.Load() }

// SetGeneration overwrites the edit counter. Replication uses it to align a
// replica's generation with the primary's: a replica seeds its store from a
// snapshot (generation 0 locally, G on the primary) and adopts G so ETags
// agree byte-for-byte at the same logical state. Outside replication the
// counter should only ever move via edits.
func (s *RelationStore) SetGeneration(v uint64) { s.gen.Store(v) }

// NewRelationStore builds a store over the given regions, computing the full
// all-pairs network once through the batch engines (MBB pruning, worker
// pool). Region names must be unique and non-empty; every region must be
// usable as a reference (non-degenerate bounding box), and with opt.Pct as a
// quantitative primary (positive area).
func NewRelationStore(regions []NamedRegion, opt StoreOptions) (*RelationStore, error) {
	ps, err := PrepareAll(regions)
	if err != nil {
		return nil, err
	}
	s := &RelationStore{opt: opt, idx: make(map[string]int, len(ps))}
	// Name-sorted initial layout: the batch engines emit row-major
	// (primary, reference) results over the sorted names, so their output
	// scatters into the matrix with plain index arithmetic.
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	for i, p := range ps {
		if err := s.usable(p); err != nil {
			return nil, err
		}
		s.idx[p.Name] = i
	}
	s.ps = ps
	n := len(ps)
	s.rels = make([][]Relation, n)
	for i := range s.rels {
		s.rels[i] = make([]Relation, n)
	}
	if opt.Pct {
		s.pcts = make([][]pctCell, n)
		for i := range s.pcts {
			s.pcts[i] = make([]pctCell, n)
		}
	}
	if n < 2 {
		return s, nil
	}
	pairs, st, err := ComputeAllPairsPrepared(ps, BatchOptions{Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	s.stats.Merge(st)
	k := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s.rels[i][j] = pairs[k].Relation
			k++
		}
	}
	if opt.Pct {
		pcts, st, err := ComputeAllPairsPctPrepared(ps, BatchOptions{Workers: opt.Workers})
		if err != nil {
			return nil, err
		}
		s.stats.Merge(st)
		k = 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				s.pcts[i][j] = pctCell{matrix: pcts[k].Matrix, areas: pcts[k].Areas}
				k++
			}
		}
	}
	return s, nil
}

// usable rejects regions the store cannot hold: degenerate bounding boxes
// (unusable as a reference) always, zero total area when the store maintains
// percentages.
func (s *RelationStore) usable(p *Prepared) error {
	if p.gridErr != nil {
		return fmt.Errorf("core: region %q: %w", p.Name, p.gridErr)
	}
	if s.opt.Pct && p.totalArea <= 0 {
		return fmt.Errorf("core: region %q has zero area: %w", p.Name, ErrDegenerateRegion)
	}
	return nil
}

// workers resolves the pool size for a delta touching n regions.
func (s *RelationStore) workers(n int) int {
	w := s.opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// recompute refreshes slot i's row (i as primary) and column (i as
// reference) against every other region — the store's delta unit, 2(n−1)
// pairs on the worker pool. Pairs not involving slot i are untouched.
func (s *RelationStore) recompute(i int) error {
	n := len(s.ps)
	if n < 2 {
		return nil
	}
	a := s.ps[i]
	var next atomic.Int64
	var mu sync.Mutex
	var total Stats
	errs := make([]error, n)
	work := func() {
		sc := getScratch()
		defer putScratch(sc)
		var st Stats
		for {
			j := int(next.Add(1) - 1)
			if j >= n {
				break
			}
			if j == i {
				continue
			}
			b := s.ps[j]
			// Each worker writes only the cells of its claimed j — row cell
			// (i, j) and column cell (j, i) — so no two workers race.
			s.rels[i][j] = a.relate(b.grid, b.center, false, false, sc, &st)
			s.rels[j][i] = b.relate(a.grid, a.center, false, false, sc, &st)
			st.Passes += 2
			st.DeltaPairs += 2
			if s.pcts != nil {
				cij := &s.pcts[i][j]
				tot, err := a.relatePctAreasInto(&cij.areas, b.grid, false, false, sc, &st)
				if err != nil {
					errs[j] = err
					continue
				}
				percentInto(&cij.matrix, &cij.areas, tot)
				cji := &s.pcts[j][i]
				tot, err = b.relatePctAreasInto(&cji.areas, a.grid, false, false, sc, &st)
				if err != nil {
					errs[j] = err
					continue
				}
				percentInto(&cji.matrix, &cji.areas, tot)
			}
		}
		mu.Lock()
		total.Merge(st)
		mu.Unlock()
	}
	runPool(s.workers(n), work)
	s.stats.Merge(total)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Add inserts a new region and computes its relations against every held
// region — one Prepare plus 2(n−1) pair computations, not a full sweep. The
// name must be unique and non-empty.
func (s *RelationStore) Add(name string, r geom.Region) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		return fmt.Errorf("core: empty region name")
	}
	if _, ok := s.idx[name]; ok {
		return fmt.Errorf("core: duplicate region name %q", name)
	}
	p, err := Prepare(name, r)
	if err != nil {
		return err
	}
	if err := s.usable(p); err != nil {
		return err
	}
	i := len(s.ps)
	s.ps = append(s.ps, p)
	s.idx[name] = i
	for j := range s.rels {
		s.rels[j] = append(s.rels[j], 0)
	}
	s.rels = append(s.rels, make([]Relation, i+1))
	if s.pcts != nil {
		for j := range s.pcts {
			s.pcts[j] = append(s.pcts[j], pctCell{})
		}
		s.pcts = append(s.pcts, make([]pctCell, i+1))
	}
	s.gen.Add(1)
	return s.recompute(i)
}

// AddBulk inserts many regions in one edit: every region is validated and
// prepared up front (on failure the store is unchanged), the matrix grows
// once, and the pairs touching new slots are recomputed in ONE batched
// worker-pool sweep — counted as a single Stats.BulkBatches increment and
// zero DeltaPairs, where the per-region Add path would have paid k
// separate 2(n−1)-pair deltas. One generation bump for the whole batch.
func (s *RelationStore) AddBulk(regions []NamedRegion) error {
	if len(regions) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	added := make([]*Prepared, 0, len(regions))
	batch := make(map[string]bool, len(regions))
	for _, r := range regions {
		if r.Name == "" {
			return fmt.Errorf("core: empty region name")
		}
		if _, ok := s.idx[r.Name]; ok {
			return fmt.Errorf("core: duplicate region name %q", r.Name)
		}
		if batch[r.Name] {
			return fmt.Errorf("core: duplicate region name %q", r.Name)
		}
		batch[r.Name] = true
		p, err := Prepare(r.Name, r.Region)
		if err != nil {
			return err
		}
		if err := s.usable(p); err != nil {
			return err
		}
		added = append(added, p)
	}
	n0 := len(s.ps)
	n := n0 + len(added)
	for i, p := range added {
		s.idx[p.Name] = n0 + i
	}
	s.ps = append(s.ps, added...)
	for j := range s.rels {
		s.rels[j] = append(s.rels[j], make([]Relation, len(added))...)
	}
	for i := n0; i < n; i++ {
		s.rels = append(s.rels, make([]Relation, n))
	}
	if s.pcts != nil {
		for j := range s.pcts {
			s.pcts[j] = append(s.pcts[j], make([]pctCell, len(added))...)
		}
		for i := n0; i < n; i++ {
			s.pcts = append(s.pcts, make([]pctCell, n))
		}
	}
	s.gen.Add(1)
	if n < 2 {
		s.stats.BulkBatches++
		return nil
	}

	// One sweep over the pairs a new slot participates in: each worker
	// claims a new slot i and fills row i (i as primary against everyone,
	// old and new) plus the old-region column cells (j, i) for j < n0; the
	// (new j, i) column cells are row j's work, so no two workers race.
	var next atomic.Int64
	var mu sync.Mutex
	var total Stats
	errs := make([]error, len(added))
	work := func() {
		sc := getScratch()
		defer putScratch(sc)
		var st Stats
		for {
			k := int(next.Add(1) - 1)
			if k >= len(added) {
				break
			}
			i := n0 + k
			a := s.ps[i]
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				b := s.ps[j]
				s.rels[i][j] = a.relate(b.grid, b.center, false, false, sc, &st)
				st.Passes++
				if j < n0 {
					s.rels[j][i] = b.relate(a.grid, a.center, false, false, sc, &st)
					st.Passes++
				}
				if s.pcts != nil {
					cij := &s.pcts[i][j]
					tot, err := a.relatePctAreasInto(&cij.areas, b.grid, false, false, sc, &st)
					if err != nil {
						errs[k] = err
						continue
					}
					percentInto(&cij.matrix, &cij.areas, tot)
					if j < n0 {
						cji := &s.pcts[j][i]
						tot, err = b.relatePctAreasInto(&cji.areas, a.grid, false, false, sc, &st)
						if err != nil {
							errs[k] = err
							continue
						}
						percentInto(&cji.matrix, &cji.areas, tot)
					}
				}
			}
		}
		mu.Lock()
		total.Merge(st)
		mu.Unlock()
	}
	runPool(s.workers(len(added)), work)
	total.BulkBatches++
	s.stats.Merge(total)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes a region and every cached pair mentioning it, shrinking the
// matrix in O(n) with no recomputation: the surviving pairs are unaffected
// by the deletion.
func (s *RelationStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[name]
	if !ok {
		return fmt.Errorf("core: region %q: %w", name, ErrUnknownRegion)
	}
	n := len(s.ps)
	last := n - 1
	if i != last {
		// Compact: move the last slot into the vacated one.
		s.ps[i] = s.ps[last]
		s.idx[s.ps[i].Name] = i
		s.rels[i] = s.rels[last]
		if s.pcts != nil {
			s.pcts[i] = s.pcts[last]
		}
	}
	s.ps[last] = nil
	s.ps = s.ps[:last]
	s.rels[last] = nil
	s.rels = s.rels[:last]
	for j := range s.rels {
		if i != last {
			s.rels[j][i] = s.rels[j][last]
		}
		s.rels[j] = s.rels[j][:last]
	}
	if s.pcts != nil {
		s.pcts[last] = nil
		s.pcts = s.pcts[:last]
		for j := range s.pcts {
			if i != last {
				s.pcts[j][i] = s.pcts[j][last]
			}
			s.pcts[j] = s.pcts[j][:last]
		}
	}
	delete(s.idx, name)
	s.gen.Add(1)
	return nil
}

// SetGeometry replaces a region's geometry, re-preparing it and recomputing
// exactly its row and column — the edit CARDIRECT's interactive move/resize
// operations map to. On error (degenerate replacement) the store is
// unchanged.
func (s *RelationStore) SetGeometry(name string, r geom.Region) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[name]
	if !ok {
		return fmt.Errorf("core: region %q: %w", name, ErrUnknownRegion)
	}
	p, err := Prepare(name, r)
	if err != nil {
		return err
	}
	if err := s.usable(p); err != nil {
		return err
	}
	s.ps[i] = p
	s.gen.Add(1)
	return s.recompute(i)
}

// Rename changes a region's name without touching geometry: every cached
// relation survives, and Stats.DeltaPairs does not move. The new name must
// be unique and non-empty.
func (s *RelationStore) Rename(oldName, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if newName == "" {
		return fmt.Errorf("core: empty region name")
	}
	i, ok := s.idx[oldName]
	if !ok {
		return fmt.Errorf("core: region %q: %w", oldName, ErrUnknownRegion)
	}
	if oldName == newName {
		return nil
	}
	if _, ok := s.idx[newName]; ok {
		return fmt.Errorf("core: duplicate region name %q", newName)
	}
	// Prepared values are immutable; renaming installs a shallow copy that
	// shares the (immutable) geometry buffers.
	np := *s.ps[i]
	np.Name = newName
	s.ps[i] = &np
	delete(s.idx, oldName)
	s.idx[newName] = i
	s.gen.Add(1)
	return nil
}

// Len returns the number of held regions.
func (s *RelationStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ps)
}

// Has reports whether the store holds a region with the given name.
func (s *RelationStore) Has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.idx[name]
	return ok
}

// Names returns the held region names, sorted.
func (s *RelationStore) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.ps))
	for _, p := range s.ps {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

// Prepared returns the held Prepared form of a region, or false. The value
// is shared and must not be mutated.
func (s *RelationStore) Prepared(name string) (*Prepared, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.idx[name]
	if !ok {
		return nil, false
	}
	return s.ps[i], true
}

// pair resolves an ordered pair's slots.
func (s *RelationStore) pair(primary, reference string) (int, int, error) {
	i, ok := s.idx[primary]
	if !ok {
		return 0, 0, fmt.Errorf("core: region %q: %w", primary, ErrUnknownRegion)
	}
	j, ok := s.idx[reference]
	if !ok {
		return 0, 0, fmt.Errorf("core: region %q: %w", reference, ErrUnknownRegion)
	}
	if i == j {
		return 0, 0, fmt.Errorf("core: relation of region %q against itself is not stored", primary)
	}
	return i, j, nil
}

// Relation returns the cached cardinal direction relation of primary against
// reference — an O(1) lookup, never a recomputation.
func (s *RelationStore) Relation(primary, reference string) (Relation, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, j, err := s.pair(primary, reference)
	if err != nil {
		return 0, err
	}
	return s.rels[i][j], nil
}

// Percent returns the cached percent matrix of primary against reference.
// The store must have been built with StoreOptions.Pct.
func (s *RelationStore) Percent(primary, reference string) (PercentMatrix, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.pcts == nil {
		return PercentMatrix{}, fmt.Errorf("core: store does not maintain percentages (StoreOptions.Pct)")
	}
	i, j, err := s.pair(primary, reference)
	if err != nil {
		return PercentMatrix{}, err
	}
	return s.pcts[i][j].matrix, nil
}

// CountRelated counts, over every held region other than pinned, how many
// have a cached relation in the allowed set against pinned — the region read
// as primary and pinned as reference when pinnedIsRef, the transpose
// otherwise. One row (or column) scan under the read lock, no geometry: the
// query planner uses the (matched, total) pair as an exact selectivity for a
// relation condition with one side pinned.
func (s *RelationStore) CountRelated(pinned string, allowed RelationSet, pinnedIsRef bool) (matched, total int, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.idx[pinned]
	if !ok {
		return 0, 0, fmt.Errorf("core: region %q: %w", pinned, ErrUnknownRegion)
	}
	for j := range s.ps {
		if j == i {
			continue
		}
		total++
		var rel Relation
		if pinnedIsRef {
			rel = s.rels[j][i]
		} else {
			rel = s.rels[i][j]
		}
		if allowed.Contains(rel) {
			matched++
		}
	}
	return matched, total, nil
}

// Areas returns the cached per-tile areas of primary against reference. The
// store must have been built with StoreOptions.Pct.
func (s *RelationStore) Areas(primary, reference string) (TileAreas, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.pcts == nil {
		return TileAreas{}, fmt.Errorf("core: store does not maintain percentages (StoreOptions.Pct)")
	}
	i, j, err := s.pair(primary, reference)
	if err != nil {
		return TileAreas{}, err
	}
	return s.pcts[i][j].areas, nil
}

// sorted returns the slot indices in name order — the canonical output
// order shared with the batch engines.
func (s *RelationStore) sorted() []int {
	ord := make([]int, len(s.ps))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return s.ps[ord[a]].Name < s.ps[ord[b]].Name })
	return ord
}

// Pairs returns every cached qualitative pair sorted by (primary,
// reference) — byte-for-byte the slice ComputeAllPairsParallel would produce
// over the current regions.
func (s *RelationStore) Pairs() []PairRelation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ord := s.sorted()
	n := len(ord)
	if n < 2 {
		return nil
	}
	out := make([]PairRelation, 0, n*(n-1))
	for _, i := range ord {
		for _, j := range ord {
			if i == j {
				continue
			}
			out = append(out, PairRelation{
				Primary:   s.ps[i].Name,
				Reference: s.ps[j].Name,
				Relation:  s.rels[i][j],
			})
		}
	}
	return out
}

// PctPairs returns every cached quantitative pair sorted by (primary,
// reference), matching ComputeAllPairsPctParallel over the current regions.
// The store must have been built with StoreOptions.Pct.
func (s *RelationStore) PctPairs() ([]PairPercent, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.pcts == nil {
		return nil, fmt.Errorf("core: store does not maintain percentages (StoreOptions.Pct)")
	}
	ord := s.sorted()
	n := len(ord)
	if n < 2 {
		return nil, nil
	}
	out := make([]PairPercent, 0, n*(n-1))
	for _, i := range ord {
		for _, j := range ord {
			if i == j {
				continue
			}
			c := &s.pcts[i][j]
			out = append(out, PairPercent{
				Primary:   s.ps[i].Name,
				Reference: s.ps[j].Name,
				Matrix:    c.matrix,
				Areas:     c.areas,
			})
		}
	}
	return out, nil
}

// Stats returns the cumulative instrumentation of the initial build and
// every delta since: DeltaPairs counts the pair computations performed by
// Add/SetGeometry edits (2(n−1) each), the prune counters aggregate across
// all recomputations.
func (s *RelationStore) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}
