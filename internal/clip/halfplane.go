// Package clip implements the polygon-clipping approach to computing
// cardinal direction relations — the comparison method discussed in §3 of
// Skiadopoulos et al. (EDBT 2004) and the subject of the paper's first
// future-work item ("evaluate experimentally our algorithm against polygon
// clipping methods").
//
// The package provides Sutherland–Hodgman half-plane clipping (which handles
// the unbounded tiles directly), Liang–Barsky line clipping against
// rectangles (the paper's reference [7]), and clipping-based equivalents of
// Compute-CDR and Compute-CDR% that segment the primary region into one
// piece set per tile — scanning the edge list once per tile, nine times in
// total, exactly the cost profile the paper attributes to this method.
package clip

import (
	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// HalfPlane is the closed set of points p with Eval(p) ≥ 0. Axis-aligned
// half-planes suffice for tile clipping, but the representation is general
// (a·x + b·y ≥ c).
type HalfPlane struct {
	A, B, C float64
}

// Eval returns a·x + b·y − c; non-negative means inside.
func (h HalfPlane) Eval(p geom.Point) float64 { return h.A*p.X + h.B*p.Y - h.C }

// Contains reports whether p lies in the closed half-plane.
func (h HalfPlane) Contains(p geom.Point) bool { return h.Eval(p) >= 0 }

// XGE returns the half-plane x ≥ c.
func XGE(c float64) HalfPlane { return HalfPlane{A: 1, C: c} }

// XLE returns the half-plane x ≤ c.
func XLE(c float64) HalfPlane { return HalfPlane{A: -1, C: -c} }

// YGE returns the half-plane y ≥ c.
func YGE(c float64) HalfPlane { return HalfPlane{B: 1, C: c} }

// YLE returns the half-plane y ≤ c.
func YLE(c float64) HalfPlane { return HalfPlane{B: -1, C: -c} }

// intersect returns the point where segment ab crosses the half-plane's
// boundary line, assuming Eval(a) and Eval(b) have opposite signs. For the
// axis-aligned half-planes used in tile clipping the crossed coordinate is
// snapped exactly onto the line.
func (h HalfPlane) intersect(a, b geom.Point) geom.Point {
	ea, eb := h.Eval(a), h.Eval(b)
	t := ea / (ea - eb)
	p := geom.Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}
	switch {
	case h.B == 0 && h.A != 0: // vertical boundary x = C/A
		p.X = h.C / h.A
	case h.A == 0 && h.B != 0: // horizontal boundary y = C/B
		p.Y = h.C / h.B
	}
	return p
}

// ClipPolygon clips a simple polygon to the closed half-plane with the
// Sutherland–Hodgman rule, returning the clipped ring (possibly empty).
// For concave subjects the single output ring may contain coincident
// "bridge" vertices where the clip line cuts the subject into several
// pieces; the ring's signed area is still exact, which is all the
// clipping-based relation computation needs.
func (h HalfPlane) ClipPolygon(p geom.Polygon) geom.Polygon {
	return h.clipPolygonCounting(p, nil)
}

// clipPolygonCounting is ClipPolygon with an optional counter of
// intersection-point computations (each costs a division), used by the
// experiment instrumentation.
func (h HalfPlane) clipPolygonCounting(p geom.Polygon, nIntersect *int) geom.Polygon {
	if len(p) == 0 {
		return nil
	}
	out := make(geom.Polygon, 0, len(p)+4)
	prev := p[len(p)-1]
	prevIn := h.Contains(prev)
	for _, cur := range p {
		curIn := h.Contains(cur)
		switch {
		case prevIn && curIn:
			out = append(out, cur)
		case prevIn && !curIn:
			out = append(out, h.intersect(prev, cur))
			if nIntersect != nil {
				*nIntersect++
			}
		case !prevIn && curIn:
			out = append(out, h.intersect(prev, cur), cur)
			if nIntersect != nil {
				*nIntersect++
			}
		}
		prev, prevIn = cur, curIn
	}
	return dedupeRing(out)
}

// ClipPolygonAll clips p to the intersection of the given half-planes.
func ClipPolygonAll(p geom.Polygon, hs ...HalfPlane) geom.Polygon {
	return clipPolygonAllCounting(p, hs, nil)
}

func clipPolygonAllCounting(p geom.Polygon, hs []HalfPlane, nIntersect *int) geom.Polygon {
	out := p
	for _, h := range hs {
		out = h.clipPolygonCounting(out, nIntersect)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// dedupeRing removes consecutive duplicate vertices (including the
// wrap-around pair) that half-plane clipping can introduce.
func dedupeRing(p geom.Polygon) geom.Polygon {
	if len(p) == 0 {
		return nil
	}
	out := p[:0]
	for _, v := range p {
		if len(out) == 0 || !out[len(out)-1].Eq(v) {
			out = append(out, v)
		}
	}
	for len(out) > 1 && out[0].Eq(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	if len(out) < 3 {
		return nil
	}
	return out
}

// TileHalfPlanes returns the (at most four) half-planes whose intersection
// is the given closed tile of the grid.
func TileHalfPlanes(g core.Grid, t core.Tile) []HalfPlane {
	hs := make([]HalfPlane, 0, 4)
	switch t.Col() {
	case 0:
		hs = append(hs, XLE(g.M1))
	case 1:
		hs = append(hs, XGE(g.M1), XLE(g.M2))
	case 2:
		hs = append(hs, XGE(g.M2))
	}
	switch t.Row() {
	case 0:
		hs = append(hs, YLE(g.L1))
	case 1:
		hs = append(hs, YGE(g.L1), YLE(g.L2))
	case 2:
		hs = append(hs, YGE(g.L2))
	}
	return hs
}

// ClipToTile clips a polygon to one tile of the grid.
func ClipToTile(g core.Grid, t core.Tile, p geom.Polygon) geom.Polygon {
	return ClipPolygonAll(p, TileHalfPlanes(g, t)...)
}
