package clip

import (
	"math"

	"cardirect/internal/geom"
)

// Outcode is the Cohen–Sutherland region code of a point relative to a
// clipping rectangle: bits for left/right/bottom/top of the window. The
// code of a point inside the window is zero. Notice the correspondence with
// the paper's tiles: each non-zero outcode combination names one of the
// eight peripheral tiles of the window's grid.
type Outcode uint8

// Outcode bits.
const (
	OutLeft Outcode = 1 << iota
	OutRight
	OutBottom
	OutTop
)

// OutcodeOf computes the region code of p relative to r. Boundary points
// code as inside (the window is closed), matching the closed tiles of the
// relation model.
func OutcodeOf(p geom.Point, r geom.Rect) Outcode {
	var c Outcode
	if p.X < r.MinX {
		c |= OutLeft
	} else if p.X > r.MaxX {
		c |= OutRight
	}
	if p.Y < r.MinY {
		c |= OutBottom
	} else if p.Y > r.MaxY {
		c |= OutTop
	}
	return c
}

// CohenSutherland clips the segment to the closed rectangle with the
// Cohen–Sutherland algorithm. Results agree with LiangBarsky on every input
// (property-tested); the two are kept side by side because the paper's §3
// grounds its cost argument in "polygon clipping algorithms" generally —
// the benchmark compares both classics. Bounds may be ±Inf.
func CohenSutherland(s geom.Segment, r geom.Rect) (geom.Segment, bool) {
	a, b := s.A, s.B
	ca, cb := OutcodeOf(a, r), OutcodeOf(b, r)
	for {
		switch {
		case ca|cb == 0:
			return geom.Segment{A: snapToRect(a, r), B: snapToRect(b, r)}, true
		case ca&cb != 0:
			return geom.Segment{}, false
		default:
			// Pick an endpoint outside the window and move it to the
			// window boundary it violates.
			c := ca
			if c == 0 {
				c = cb
			}
			var p geom.Point
			switch {
			case c&OutTop != 0:
				p = geom.Point{X: a.X + (b.X-a.X)*(r.MaxY-a.Y)/(b.Y-a.Y), Y: r.MaxY}
			case c&OutBottom != 0:
				p = geom.Point{X: a.X + (b.X-a.X)*(r.MinY-a.Y)/(b.Y-a.Y), Y: r.MinY}
			case c&OutRight != 0:
				p = geom.Point{X: r.MaxX, Y: a.Y + (b.Y-a.Y)*(r.MaxX-a.X)/(b.X-a.X)}
			default: // OutLeft
				p = geom.Point{X: r.MinX, Y: a.Y + (b.Y-a.Y)*(r.MinX-a.X)/(b.X-a.X)}
			}
			if !p.IsFinite() {
				// Degenerate geometry against an infinite bound.
				return geom.Segment{}, false
			}
			if c == ca {
				a, ca = p, OutcodeOf(p, r)
			} else {
				b, cb = p, OutcodeOf(p, r)
			}
		}
	}
}

// ClipSegmentsToRect clips a batch of segments against a rectangle with the
// requested algorithm, returning the surviving parts. It backs the
// line-clipping benchmark comparing the two classics the paper cites.
func ClipSegmentsToRect(segs []geom.Segment, r geom.Rect, useCohenSutherland bool) []geom.Segment {
	out := make([]geom.Segment, 0, len(segs))
	for _, s := range segs {
		var c geom.Segment
		var ok bool
		if useCohenSutherland {
			c, ok = CohenSutherland(s, r)
		} else {
			c, ok = LiangBarsky(s, r)
		}
		if ok && !(c.IsDegenerate() && math.IsInf(r.MaxX, 0)) {
			out = append(out, c)
		}
	}
	return out
}
