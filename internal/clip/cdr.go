package clip

import (
	"fmt"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// Segmentation is the output of clipping the primary region against all
// nine tiles of the reference grid: the clipped pieces per tile, as used by
// the clipping-based relation computation. The paper's §3 discussion of this
// method's drawbacks (edge inflation, nine scans) is measured from the
// Stats.
type Segmentation struct {
	Pieces [core.NumTiles][]geom.Polygon
	Stats  core.Stats
}

// Segment clips every polygon of the primary region a against each of the
// nine tiles induced by mbb(b). This is the "naive" segmentation the paper
// contrasts Compute-CDR with: the edge list of a is scanned once per tile.
func Segment(a, b geom.Region) (*Segmentation, error) {
	if len(a) == 0 {
		return nil, fmt.Errorf("clip: primary region is empty")
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("clip: reference region is empty")
	}
	g, err := core.NewGrid(b.BoundingBox())
	if err != nil {
		return nil, err
	}
	seg := &Segmentation{}
	edgesIn := a.NumEdges()
	seg.Stats.EdgesIn = edgesIn
	for _, t := range core.Tiles() {
		hs := TileHalfPlanes(g, t)
		for _, p := range a {
			seg.Stats.EdgeVisits += p.NumEdges()
			piece := clipPolygonAllCounting(p.Clockwise(), hs, &seg.Stats.Intersections)
			if len(piece) >= 3 && piece.Area() > 0 {
				seg.Pieces[t] = append(seg.Pieces[t], piece)
				seg.Stats.EdgesOut += piece.NumEdges()
			}
		}
		seg.Stats.Passes++
	}
	return seg, nil
}

// Areas returns the total clipped area per tile.
func (s *Segmentation) Areas() core.TileAreas {
	var areas core.TileAreas
	for t, pieces := range s.Pieces {
		for _, p := range pieces {
			areas[t] += p.Area()
		}
	}
	return areas
}

// ComputeCDR computes the qualitative cardinal direction relation by
// clipping: a tile belongs to the relation iff the primary region's clipped
// area in it is positive (beyond float residue). It is the baseline against
// which the paper's single-pass Compute-CDR is evaluated.
func ComputeCDR(a, b geom.Region) (core.Relation, error) {
	r, _, err := ComputeCDRStats(a, b)
	return r, err
}

// ComputeCDRStats is ComputeCDR with instrumentation.
func ComputeCDRStats(a, b geom.Region) (core.Relation, core.Stats, error) {
	seg, err := Segment(a, b)
	if err != nil {
		return 0, core.Stats{}, err
	}
	areas := seg.Areas()
	rel := areas.Relation(1e-12)
	if !rel.IsValid() {
		return 0, seg.Stats, fmt.Errorf("clip: primary region produced no tiles (degenerate input)")
	}
	return rel, seg.Stats, nil
}

// ComputeCDRPct computes the cardinal direction relation with percentages by
// clipping each polygon to each tile and measuring the pieces — the naive
// method §3.2 of the paper replaces with reference-line area accumulation.
func ComputeCDRPct(a, b geom.Region) (core.PercentMatrix, core.TileAreas, error) {
	m, ta, _, err := ComputeCDRPctStats(a, b)
	return m, ta, err
}

// ComputeCDRPctStats is ComputeCDRPct with instrumentation.
func ComputeCDRPctStats(a, b geom.Region) (core.PercentMatrix, core.TileAreas, core.Stats, error) {
	seg, err := Segment(a, b)
	if err != nil {
		return core.PercentMatrix{}, core.TileAreas{}, core.Stats{}, err
	}
	areas := seg.Areas()
	if areas.Total() <= 0 {
		return core.PercentMatrix{}, areas, seg.Stats, fmt.Errorf("clip: primary region has zero area")
	}
	return areas.Percent(), areas, seg.Stats, nil
}
