package clip

import (
	"math"
	"testing"
	"testing/quick"

	"cardirect/internal/geom"
)

func TestLiangBarskyInside(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	s := geom.Seg(geom.Pt(1, 1), geom.Pt(9, 9))
	got, ok := LiangBarsky(s, r)
	if !ok || got != s {
		t.Errorf("fully-inside segment changed: %v, %v", got, ok)
	}
}

func TestLiangBarskyOutside(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	for _, s := range []geom.Segment{
		geom.Seg(geom.Pt(-5, -5), geom.Pt(-1, -1)),
		geom.Seg(geom.Pt(11, 0), geom.Pt(20, 10)),
		geom.Seg(geom.Pt(0, 11), geom.Pt(10, 12)),
		geom.Seg(geom.Pt(-5, 5), geom.Pt(5, 25)), // passes above the corner
	} {
		if _, ok := LiangBarsky(s, r); ok {
			t.Errorf("outside segment %v accepted", s)
		}
	}
}

func TestLiangBarskyCrossing(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	s := geom.Seg(geom.Pt(-5, 5), geom.Pt(15, 5))
	got, ok := LiangBarsky(s, r)
	if !ok {
		t.Fatal("crossing segment rejected")
	}
	if !got.A.Eq(geom.Pt(0, 5)) || !got.B.Eq(geom.Pt(10, 5)) {
		t.Errorf("clip = %v", got)
	}
	// Diagonal entering through a corner.
	d := geom.Seg(geom.Pt(-2, -2), geom.Pt(5, 5))
	gd, ok := LiangBarsky(d, r)
	if !ok {
		t.Fatal("diagonal rejected")
	}
	if !gd.A.Eq(geom.Pt(0, 0)) || !gd.B.Eq(geom.Pt(5, 5)) {
		t.Errorf("diagonal clip = %v", gd)
	}
}

func TestLiangBarskyTangent(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	// Segment sliding along the top boundary: inside (closed rect).
	s := geom.Seg(geom.Pt(2, 10), geom.Pt(8, 10))
	got, ok := LiangBarsky(s, r)
	if !ok || got != s {
		t.Errorf("tangent segment: %v, %v", got, ok)
	}
	// Parallel but outside.
	if _, ok := LiangBarsky(geom.Seg(geom.Pt(2, 10.5), geom.Pt(8, 10.5)), r); ok {
		t.Error("parallel outside segment accepted")
	}
}

func TestLiangBarskyUnboundedTile(t *testing.T) {
	// The NE tile of a grid: x ≥ 10, y ≥ 6, unbounded above/right.
	tile := geom.Rect{MinX: 10, MinY: 6, MaxX: math.Inf(1), MaxY: math.Inf(1)}
	s := geom.Seg(geom.Pt(0, 0), geom.Pt(20, 12))
	got, ok := LiangBarsky(s, tile)
	if !ok {
		t.Fatal("segment into unbounded tile rejected")
	}
	if got.A.X != 10 || math.Abs(got.A.Y-6) > 1e-12 {
		t.Errorf("entry point = %v, want (10,6)", got.A)
	}
	if !got.B.Eq(geom.Pt(20, 12)) {
		t.Errorf("exit point = %v", got.B)
	}
}

// Property: the clipped segment lies within the rectangle and within the
// original segment's bounding box; clipping is idempotent.
func TestLiangBarskyInvariantProperty(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 6}
	f := func(ax, ay, bx, by int16) bool {
		a := geom.Pt(float64(ax%30), float64(ay%30))
		b := geom.Pt(float64(bx%30), float64(by%30))
		if a.Eq(b) {
			return true
		}
		s := geom.Seg(a, b)
		c, ok := LiangBarsky(s, r)
		if !ok {
			return true
		}
		const eps = 1e-9
		within := func(p geom.Point) bool {
			return p.X >= r.MinX-eps && p.X <= r.MaxX+eps && p.Y >= r.MinY-eps && p.Y <= r.MaxY+eps
		}
		if !within(c.A) || !within(c.B) {
			return false
		}
		c2, ok2 := LiangBarsky(c, r)
		return ok2 && c2.A.Dist(c.A) < eps && c2.B.Dist(c.B) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
