package clip

import (
	"math"
	"testing"
	"testing/quick"

	"cardirect/internal/geom"
)

func TestOutcodeOf(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 6}
	cases := []struct {
		p    geom.Point
		want Outcode
	}{
		{geom.Pt(5, 3), 0},
		{geom.Pt(0, 0), 0},  // boundary is inside (closed window)
		{geom.Pt(10, 6), 0}, // corner
		{geom.Pt(-1, 3), OutLeft},
		{geom.Pt(11, 3), OutRight},
		{geom.Pt(5, -1), OutBottom},
		{geom.Pt(5, 7), OutTop},
		{geom.Pt(-1, -1), OutLeft | OutBottom},
		{geom.Pt(11, 7), OutRight | OutTop},
	}
	for _, c := range cases {
		if got := OutcodeOf(c.p, r); got != c.want {
			t.Errorf("OutcodeOf(%v) = %b, want %b", c.p, got, c.want)
		}
	}
}

func TestCohenSutherlandBasics(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	// Inside: unchanged.
	in := geom.Seg(geom.Pt(1, 1), geom.Pt(9, 9))
	got, ok := CohenSutherland(in, r)
	if !ok || got != in {
		t.Errorf("inside segment: %v, %v", got, ok)
	}
	// Trivially rejected.
	if _, ok := CohenSutherland(geom.Seg(geom.Pt(-5, -5), geom.Pt(-1, -1)), r); ok {
		t.Error("outside segment accepted")
	}
	// Horizontal crossing.
	c, ok := CohenSutherland(geom.Seg(geom.Pt(-5, 5), geom.Pt(15, 5)), r)
	if !ok || !c.A.Eq(geom.Pt(0, 5)) || !c.B.Eq(geom.Pt(10, 5)) {
		t.Errorf("crossing clip = %v, %v", c, ok)
	}
	// Non-trivial rejection: both outcodes non-zero but disjoint, segment
	// passes outside a corner.
	if _, ok := CohenSutherland(geom.Seg(geom.Pt(-5, 5), geom.Pt(5, 25)), r); ok {
		t.Error("corner-passing segment accepted")
	}
}

// Property: Cohen–Sutherland and Liang–Barsky agree (acceptance and, within
// tolerance, clipped endpoints) on random segments.
func TestCohenSutherlandAgreesWithLiangBarsky(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 6}
	f := func(ax, ay, bx, by int16) bool {
		a := geom.Pt(float64(ax%30), float64(ay%30))
		b := geom.Pt(float64(bx%30), float64(by%30))
		if a.Eq(b) {
			return true
		}
		s := geom.Seg(a, b)
		cs, okCS := CohenSutherland(s, r)
		lb, okLB := LiangBarsky(s, r)
		if okCS != okLB {
			// Benign divergence: a segment grazing the window in a single
			// point (zero-length clip) may be kept by one algorithm and
			// rejected by the other. Anything longer must agree.
			if okLB && lb.IsDegenerate() {
				return true
			}
			if okCS && cs.IsDegenerate() {
				return true
			}
			return false
		}
		if !okCS {
			return true
		}
		const eps = 1e-9
		return cs.A.Dist(lb.A) < eps && cs.B.Dist(lb.B) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestCohenSutherlandUnboundedTile(t *testing.T) {
	tile := geom.Rect{MinX: 10, MinY: 6, MaxX: math.Inf(1), MaxY: math.Inf(1)}
	s := geom.Seg(geom.Pt(0, 0), geom.Pt(20, 12))
	got, ok := CohenSutherland(s, tile)
	if !ok {
		t.Fatal("segment into unbounded tile rejected")
	}
	if got.A.X != 10 || math.Abs(got.A.Y-6) > 1e-12 {
		t.Errorf("entry = %v, want (10,6)", got.A)
	}
}

func TestClipSegmentsToRect(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	segs := []geom.Segment{
		geom.Seg(geom.Pt(1, 1), geom.Pt(2, 2)),     // inside
		geom.Seg(geom.Pt(-5, 5), geom.Pt(15, 5)),   // crossing
		geom.Seg(geom.Pt(20, 20), geom.Pt(30, 30)), // outside
	}
	for _, cs := range []bool{true, false} {
		got := ClipSegmentsToRect(segs, r, cs)
		if len(got) != 2 {
			t.Errorf("cs=%v: clipped %d segments, want 2", cs, len(got))
		}
	}
}

func BenchmarkLineClipping(b *testing.B) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 6}
	segs := make([]geom.Segment, 256)
	for i := range segs {
		segs[i] = geom.Seg(
			geom.Pt(float64((i*7)%30)-10, float64((i*13)%20)-7),
			geom.Pt(float64((i*11)%30)-10, float64((i*17)%20)-7),
		)
	}
	b.Run("CohenSutherland", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range segs {
				CohenSutherland(s, r)
			}
		}
	})
	b.Run("LiangBarsky", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range segs {
				LiangBarsky(s, r)
			}
		}
	})
}
