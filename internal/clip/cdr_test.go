package clip

import (
	"math"
	"math/rand"
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

func boxRegion(minX, minY, maxX, maxY float64) geom.Region {
	return geom.Rgn(sq(minX, minY, maxX, maxY))
}

// starPolygon builds a random simple polygon: vertices at strictly
// increasing jittered angles around a centre with random radii (star-shaped,
// hence simple), normalised clockwise.
func starPolygon(rng *rand.Rand, cx, cy, rMin, rMax float64, n int) geom.Polygon {
	p := make(geom.Polygon, n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * (float64(i) + 0.1 + 0.8*rng.Float64()) / float64(n)
		r := rMin + rng.Float64()*(rMax-rMin)
		p[i] = geom.Pt(cx+r*math.Cos(th), cy+r*math.Sin(th))
	}
	return p.Clockwise()
}

func TestSegmentStats(t *testing.T) {
	b := boxRegion(0, 0, 10, 6)
	a := boxRegion(-2, 4, 2, 8) // the Fig. 3b square over B,W,NW,N
	seg, err := Segment(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Stats.Passes != 9 {
		t.Errorf("Passes = %d, want 9 (one scan per tile)", seg.Stats.Passes)
	}
	if seg.Stats.EdgesIn != 4 {
		t.Errorf("EdgesIn = %d", seg.Stats.EdgesIn)
	}
	if seg.Stats.EdgeVisits != 9*4 {
		t.Errorf("EdgeVisits = %d, want 36", seg.Stats.EdgeVisits)
	}
	if seg.Stats.EdgesOut != 16 {
		t.Errorf("EdgesOut = %d, want 16 (Fig. 3b)", seg.Stats.EdgesOut)
	}
}

func TestClipComputeCDRMatchesCore(t *testing.T) {
	b := boxRegion(0, 0, 10, 6)
	fixtures := []geom.Region{
		boxRegion(2, 2, 8, 4),       // B
		boxRegion(-3, 1, 0, 5),      // W, shared boundary
		boxRegion(-4, -4, 0, 0),     // SW corner touch
		boxRegion(-10, -10, 20, 16), // contains mbb(b)
		append(boxRegion(-5, -5, -2, -2), boxRegion(12, 8, 15, 11)...), // SW:NE
	}
	for i, a := range fixtures {
		want, err := core.ComputeCDR(a, b)
		if err != nil {
			t.Fatalf("fixture %d: core: %v", i, err)
		}
		got, err := ComputeCDR(a, b)
		if err != nil {
			t.Fatalf("fixture %d: clip: %v", i, err)
		}
		if got != want {
			t.Errorf("fixture %d: clip %v != core %v", i, got, want)
		}
	}
}

// TestMonteCarloCrossValidation is the machine-checked substitute for the
// paper's correctness proofs (TR [19], not available): the single-pass
// algorithms and the independent nine-tile clipping implementation must
// agree on relation and per-tile areas across randomized workloads.
func TestMonteCarloCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(20040329)) // EDBT 2004
	b := boxRegion(0, 0, 10, 6)
	for trial := 0; trial < 300; trial++ {
		nPolys := 1 + rng.Intn(3)
		var a geom.Region
		for i := 0; i < nPolys; i++ {
			cx := -8 + rng.Float64()*26
			cy := -6 + rng.Float64()*18
			n := 3 + rng.Intn(9)
			a = append(a, starPolygon(rng, cx, cy, 0.5, 3.5, n))
		}
		coreRel, err := core.ComputeCDR(a, b)
		if err != nil {
			t.Fatalf("trial %d: core CDR: %v", trial, err)
		}
		clipRel, err := ComputeCDR(a, b)
		if err != nil {
			t.Fatalf("trial %d: clip CDR: %v", trial, err)
		}
		if coreRel != clipRel {
			t.Fatalf("trial %d: qualitative mismatch: core %v vs clip %v (region %v)",
				trial, coreRel, clipRel, a)
		}
		_, coreAreas, err := core.ComputeCDRPct(a, b)
		if err != nil {
			t.Fatalf("trial %d: core pct: %v", trial, err)
		}
		_, clipAreas, err := ComputeCDRPct(a, b)
		if err != nil {
			t.Fatalf("trial %d: clip pct: %v", trial, err)
		}
		tol := 1e-6 * math.Max(1, coreAreas.Total())
		for _, tile := range core.Tiles() {
			if math.Abs(coreAreas[tile]-clipAreas[tile]) > tol {
				t.Fatalf("trial %d: tile %v area: core %v vs clip %v",
					trial, tile, coreAreas[tile], clipAreas[tile])
			}
		}
	}
}

// TestEdgeInflationAdvantage verifies §3's claim that Compute-CDR introduces
// significantly fewer edges than clipping on randomized multi-tile shapes.
func TestEdgeInflationAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := boxRegion(0, 0, 10, 6)
	var coreTotal, clipTotal int
	for trial := 0; trial < 100; trial++ {
		a := geom.Rgn(starPolygon(rng, 5, 3, 4, 9, 6+rng.Intn(10)))
		_, coreStats, err := core.ComputeCDRStats(a, b)
		if err != nil {
			t.Fatal(err)
		}
		_, clipStats, err := ComputeCDRStats(a, b)
		if err != nil {
			t.Fatal(err)
		}
		coreTotal += coreStats.EdgesOut
		clipTotal += clipStats.EdgesOut
	}
	if coreTotal >= clipTotal {
		t.Errorf("Compute-CDR edges %d not fewer than clipping edges %d", coreTotal, clipTotal)
	}
}

func TestClipErrors(t *testing.T) {
	b := boxRegion(0, 0, 10, 6)
	if _, err := Segment(geom.Region{}, b); err == nil {
		t.Error("empty primary should error")
	}
	if _, err := Segment(b, geom.Region{}); err == nil {
		t.Error("empty reference should error")
	}
	if _, err := ComputeCDR(geom.Region{}, b); err == nil {
		t.Error("ComputeCDR empty primary should error")
	}
	if _, _, err := ComputeCDRPct(geom.Region{}, b); err == nil {
		t.Error("ComputeCDRPct empty primary should error")
	}
	line := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)))
	if _, err := ComputeCDR(b, line); err == nil {
		t.Error("degenerate reference should error")
	}
}
