package clip

import (
	"math"

	"cardirect/internal/geom"
)

// LiangBarsky clips the segment to the closed axis-aligned rectangle with
// the Liang–Barsky parametric algorithm (the paper's reference [7]). It
// returns the clipped segment and whether any part of the segment lies in
// the rectangle. Rectangle bounds may be ±Inf, which lets the same routine
// clip against the unbounded tiles of a reference grid.
func LiangBarsky(s geom.Segment, r geom.Rect) (geom.Segment, bool) {
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y
	t0, t1 := 0.0, 1.0

	// clipTest updates [t0, t1] for one boundary: p is the direction
	// component against the boundary, q the signed distance to it.
	clipTest := func(p, q float64) bool {
		if p == 0 {
			return q >= 0 // parallel: inside iff on the right side
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}

	ok := clipBound(clipTest, -dx, s.A.X-r.MinX) && // left:  x ≥ MinX
		clipBound(clipTest, dx, r.MaxX-s.A.X) && // right: x ≤ MaxX
		clipBound(clipTest, -dy, s.A.Y-r.MinY) && // bottom
		clipBound(clipTest, dy, r.MaxY-s.A.Y) // top
	if !ok || t0 > t1 {
		return geom.Segment{}, false
	}
	a := geom.Point{X: s.A.X + t0*dx, Y: s.A.Y + t0*dy}
	b := geom.Point{X: s.A.X + t1*dx, Y: s.A.Y + t1*dy}
	// Snap the clipped endpoints onto finite boundaries they were clipped to.
	a = snapToRect(a, r)
	b = snapToRect(b, r)
	return geom.Segment{A: a, B: b}, true
}

// clipBound skips boundaries at ±Inf (always satisfied) and otherwise
// delegates to the parametric test.
func clipBound(test func(p, q float64) bool, p, q float64) bool {
	if math.IsInf(q, 1) {
		return true
	}
	if math.IsInf(q, -1) {
		return false
	}
	return test(p, q)
}

// snapToRect snaps coordinates that landed within one ulp-ish of a finite
// boundary exactly onto it, so repeated clipping does not drift.
func snapToRect(p geom.Point, r geom.Rect) geom.Point {
	const eps = 1e-12
	snap := func(v, bound float64) float64 {
		if !math.IsInf(bound, 0) && math.Abs(v-bound) <= eps*math.Max(1, math.Abs(bound)) {
			return bound
		}
		return v
	}
	p.X = snap(snap(p.X, r.MinX), r.MaxX)
	p.Y = snap(snap(p.Y, r.MinY), r.MaxY)
	return p
}
