package clip

import (
	"math"
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

func sq(minX, minY, maxX, maxY float64) geom.Polygon {
	return geom.Poly(
		geom.Pt(minX, maxY), geom.Pt(maxX, maxY), geom.Pt(maxX, minY), geom.Pt(minX, minY),
	)
}

func TestHalfPlaneContains(t *testing.T) {
	cases := []struct {
		h    HalfPlane
		in   geom.Point
		out  geom.Point
		edge geom.Point
	}{
		{XGE(2), geom.Pt(3, 0), geom.Pt(1, 0), geom.Pt(2, 5)},
		{XLE(2), geom.Pt(1, 0), geom.Pt(3, 0), geom.Pt(2, -5)},
		{YGE(1), geom.Pt(0, 2), geom.Pt(0, 0), geom.Pt(9, 1)},
		{YLE(1), geom.Pt(0, 0), geom.Pt(0, 2), geom.Pt(-9, 1)},
	}
	for i, c := range cases {
		if !c.h.Contains(c.in) {
			t.Errorf("case %d: inside point rejected", i)
		}
		if c.h.Contains(c.out) {
			t.Errorf("case %d: outside point accepted", i)
		}
		if !c.h.Contains(c.edge) {
			t.Errorf("case %d: boundary point rejected (half-planes are closed)", i)
		}
	}
}

func TestClipPolygonSquare(t *testing.T) {
	s := sq(0, 0, 4, 4)
	// Clip to x ≥ 2: right half.
	right := XGE(2).ClipPolygon(s)
	if got := right.Area(); got != 8 {
		t.Errorf("right half area = %v, want 8", got)
	}
	for _, v := range right {
		if v.X < 2 {
			t.Errorf("vertex %v outside clip", v)
		}
	}
	// Clip away entirely.
	if got := XGE(10).ClipPolygon(s); got != nil {
		t.Errorf("fully-outside clip = %v, want nil", got)
	}
	// Clip that keeps everything returns the full area.
	if got := XGE(-10).ClipPolygon(s); got.Area() != 16 {
		t.Errorf("no-op clip area = %v", got.Area())
	}
	// Clip exactly on an edge keeps the polygon.
	if got := XGE(0).ClipPolygon(s); got.Area() != 16 {
		t.Errorf("edge clip area = %v", got.Area())
	}
}

func TestClipPolygonTriangleSnap(t *testing.T) {
	tri := geom.Poly(geom.Pt(0, 0), geom.Pt(2, 4), geom.Pt(4, 0))
	half := XLE(2).ClipPolygon(tri.Clockwise())
	if math.Abs(half.Area()-4) > 1e-12 {
		t.Errorf("half triangle area = %v, want 4", half.Area())
	}
	// Crossing points must sit exactly on x = 2 (snapping).
	onLine := 0
	for _, v := range half {
		if v.X == 2 {
			onLine++
		}
	}
	if onLine < 2 {
		t.Errorf("expected ≥2 vertices exactly on the clip line, got %d", onLine)
	}
}

func TestClipPolygonAll(t *testing.T) {
	s := sq(0, 0, 10, 10)
	piece := ClipPolygonAll(s, XGE(2), XLE(6), YGE(1), YLE(9))
	if math.Abs(piece.Area()-32) > 1e-12 {
		t.Errorf("boxed clip area = %v, want 32", piece.Area())
	}
	if got := ClipPolygonAll(s, XGE(4), XLE(2)); got != nil {
		t.Errorf("empty intersection = %v", got)
	}
}

func TestTileHalfPlanes(t *testing.T) {
	g := core.Grid{M1: 0, M2: 10, L1: 0, L2: 6}
	counts := map[core.Tile]int{
		core.TileB: 4, core.TileS: 3, core.TileN: 3, core.TileW: 3, core.TileE: 3,
		core.TileSW: 2, core.TileSE: 2, core.TileNW: 2, core.TileNE: 2,
	}
	for tile, want := range counts {
		if got := len(TileHalfPlanes(g, tile)); got != want {
			t.Errorf("tile %v: %d half-planes, want %d", tile, got, want)
		}
	}
	// Tile membership of witness points.
	witness := map[core.Tile]geom.Point{
		core.TileB: geom.Pt(5, 3), core.TileS: geom.Pt(5, -1), core.TileSW: geom.Pt(-1, -1),
		core.TileW: geom.Pt(-1, 3), core.TileNW: geom.Pt(-1, 7), core.TileN: geom.Pt(5, 7),
		core.TileNE: geom.Pt(11, 7), core.TileE: geom.Pt(11, 3), core.TileSE: geom.Pt(11, -1),
	}
	for tile, p := range witness {
		for _, h := range TileHalfPlanes(g, tile) {
			if !h.Contains(p) {
				t.Errorf("tile %v: witness %v rejected", tile, p)
			}
		}
		// The witness must be rejected by at least one half-plane of every
		// other tile.
		for _, other := range core.Tiles() {
			if other == tile {
				continue
			}
			in := true
			for _, h := range TileHalfPlanes(g, other) {
				if !h.Contains(p) {
					in = false
					break
				}
			}
			if in {
				t.Errorf("witness of %v also inside tile %v", tile, other)
			}
		}
	}
}

func TestClipToTilePartition(t *testing.T) {
	g := core.Grid{M1: 0, M2: 10, L1: 0, L2: 6}
	// A polygon spanning many tiles: its clipped areas must sum to the
	// original area (tiles partition the plane up to measure zero).
	p := geom.Poly(geom.Pt(-5, 9), geom.Pt(14, 11), geom.Pt(12, -3), geom.Pt(-3, -4)).Clockwise()
	var sum float64
	for _, tile := range core.Tiles() {
		piece := ClipToTile(g, tile, p)
		sum += piece.Area()
	}
	if math.Abs(sum-p.Area()) > 1e-9 {
		t.Errorf("clipped areas sum %v != polygon area %v", sum, p.Area())
	}
}

func TestFig3bEdgeInflation(t *testing.T) {
	// Fig. 3 of the paper: a quadrangle over the four tiles B, W, NW, N is
	// segmented by clipping into 4 quadrangles — 16 edges from the original 4.
	g := core.Grid{M1: 0, M2: 10, L1: 0, L2: 6}
	// Square centred on the NW corner (0,6) of the box, spanning the tiles
	// B, W, NW and N.
	quad := sq(-2, 4, 2, 8)
	edges := 0
	pieces := 0
	for _, tile := range core.Tiles() {
		piece := ClipToTile(g, tile, quad.Clockwise())
		if piece.Area() > 0 {
			pieces++
			edges += piece.NumEdges()
		}
	}
	if pieces != 4 {
		t.Errorf("pieces = %d, want 4", pieces)
	}
	if edges != 16 {
		t.Errorf("clipped edges = %d, want 16 (paper's Fig. 3b count)", edges)
	}
}
