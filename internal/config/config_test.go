package config

import (
	"math"
	"strings"
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// tinyImage builds a two-region configuration for roundtrip tests.
func tinyImage() *Image {
	img := &Image{Name: "test", File: "map.png"}
	a := Region{ID: "a", Name: "Alpha", Color: "blue"}
	a.SetGeometry(geom.Rgn(geom.Poly(
		geom.Pt(0, 1), geom.Pt(1, 1), geom.Pt(1, 0), geom.Pt(0, 0),
	)))
	b := Region{ID: "b", Name: "Beta", Color: "red"}
	b.SetGeometry(geom.Rgn(geom.Poly(
		geom.Pt(3, 4), geom.Pt(5, 4), geom.Pt(5, 2), geom.Pt(3, 2),
	)))
	img.Regions = append(img.Regions, a, b)
	return img
}

func TestXMLRoundtrip(t *testing.T) {
	img := tinyImage()
	if err := img.ComputeRelations(true); err != nil {
		t.Fatal(err)
	}
	data, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<?xml") {
		t.Error("missing XML header")
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "test" || got.File != "map.png" {
		t.Errorf("image attrs lost: %+v", got)
	}
	if len(got.Regions) != 2 || len(got.Relations) != 2 {
		t.Fatalf("regions/relations = %d/%d", len(got.Regions), len(got.Relations))
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("roundtripped image invalid: %v", err)
	}
	// Geometry survives bit-exact for these coordinates.
	ga := got.FindRegion("a").Geometry()
	if ga.Area() != 1 {
		t.Errorf("region a area = %v", ga.Area())
	}
	rel, ok := got.RelationBetween("a", "b")
	if !ok {
		t.Fatal("relation a→b missing")
	}
	if rel.Type != "SW" {
		t.Errorf("a vs b = %q, want SW", rel.Type)
	}
	m, err := ParsePct(rel.Pct)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Get(core.TileSW)-100) > 1e-9 {
		t.Errorf("pct SW = %v, want 100", m.Get(core.TileSW))
	}
}

func TestComputeRelationsQualitativeOnly(t *testing.T) {
	img := tinyImage()
	if err := img.ComputeRelations(false); err != nil {
		t.Fatal(err)
	}
	for _, r := range img.Relations {
		if r.Pct != "" {
			t.Errorf("unexpected pct attribute: %q", r.Pct)
		}
		if _, err := core.ParseRelation(r.Type); err != nil {
			t.Errorf("unparsable relation %q", r.Type)
		}
	}
	// n regions produce n(n−1) ordered pairs.
	if len(img.Relations) != 2 {
		t.Errorf("relations = %d, want 2", len(img.Relations))
	}
}

func TestValidateRules(t *testing.T) {
	// Empty image.
	if err := (&Image{}).Validate(); err == nil {
		t.Error("image without regions should fail (DTD: Region+)")
	}
	// Duplicate ids.
	img := tinyImage()
	img.Regions[1].ID = "a"
	if err := img.Validate(); err == nil {
		t.Error("duplicate region ids should fail")
	}
	// Too few edges.
	img2 := tinyImage()
	img2.Regions[0].Polygons[0].Edges = img2.Regions[0].Polygons[0].Edges[:2]
	if err := img2.Validate(); err == nil {
		t.Error("2-edge polygon should fail (DTD: Edge,Edge,Edge,Edge*)")
	}
	// Dangling relation reference.
	img3 := tinyImage()
	img3.Relations = []Relation{{Type: "S", Primary: "a", Reference: "nope"}}
	if err := img3.Validate(); err == nil {
		t.Error("dangling IDREF should fail")
	}
	// Bad relation type.
	img4 := tinyImage()
	img4.Relations = []Relation{{Type: "S:X", Primary: "a", Reference: "b"}}
	if err := img4.Validate(); err == nil {
		t.Error("bad relation type should fail")
	}
	// Self-intersecting polygon.
	img5 := tinyImage()
	img5.Regions[0].Polygons[0].Edges = []Edge{{0, 0}, {2, 2}, {2, 0}, {0, 2}}
	if err := img5.Validate(); err == nil {
		t.Error("bowtie polygon should fail")
	}
	// Region without polygons.
	img6 := tinyImage()
	img6.Regions[0].Polygons = nil
	if err := img6.Validate(); err == nil {
		t.Error("region without polygons should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not xml at all <<<")); err == nil {
		t.Error("garbage input should fail to parse")
	}
}

func TestParsePctErrors(t *testing.T) {
	if _, err := ParsePct("1;2;3"); err == nil {
		t.Error("short pct should fail")
	}
	if _, err := ParsePct("a;0;0;0;0;0;0;0;0"); err == nil {
		t.Error("non-numeric pct should fail")
	}
}

func TestLoadHandwrittenDocument(t *testing.T) {
	doc := `<?xml version="1.0" encoding="UTF-8"?>
<Image name="demo" file="demo.png">
  <Region id="r1" name="One" color="blue">
    <Polygon id="p1">
      <Edge x="0" y="2"/><Edge x="2" y="2"/><Edge x="2" y="0"/><Edge x="0" y="0"/>
    </Polygon>
  </Region>
  <Region id="r2" color="red">
    <Polygon id="p2">
      <Edge x="5" y="1"/><Edge x="6" y="1"/><Edge x="6" y="0"/>
    </Polygon>
  </Region>
  <Relation type="E" primary="r2" reference="r1"/>
</Image>`
	img, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Validate(); err != nil {
		t.Fatalf("handwritten doc invalid: %v", err)
	}
	// The materialised relation matches a fresh computation.
	r2 := img.FindRegion("r2").Geometry()
	r1 := img.FindRegion("r1").Geometry()
	got, err := core.ComputeCDR(r2, r1)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "E" {
		t.Errorf("r2 vs r1 = %v, want E", got)
	}
}

func TestFindRegion(t *testing.T) {
	img := tinyImage()
	if img.FindRegion("a") == nil || img.FindRegion("b") == nil {
		t.Error("FindRegion misses declared regions")
	}
	if img.FindRegion("zzz") != nil {
		t.Error("FindRegion invents regions")
	}
	ids := img.RegionIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("RegionIDs = %v", ids)
	}
}
