package config

import (
	"reflect"
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// TestTrackedFollowsEdits drives a tracked image through every edit method
// and asserts, after each one, that the maintained store and index agree
// with a from-scratch ComputeRelations / Track over the same document.
func TestTrackedFollowsEdits(t *testing.T) {
	img := Greece()
	tr, err := Track(img, core.StoreOptions{Workers: 2, Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	check := func(stage string) {
		t.Helper()
		if err := tr.Err(); err != nil {
			t.Fatalf("%s: tracked error: %v", stage, err)
		}
		if tr.Store().Len() != len(img.Regions) || tr.Index().Len() != len(img.Regions) {
			t.Fatalf("%s: store %d / index %d regions, image has %d",
				stage, tr.Store().Len(), tr.Index().Len(), len(img.Regions))
		}
		// Materialize from the store must equal a full batch recompute.
		if err := tr.Materialize(true); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		got := append([]Relation(nil), img.Relations...)
		if err := img.ComputeRelations(true); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if !reflect.DeepEqual(got, img.Relations) {
			t.Fatalf("%s: store materialisation differs from batch recompute", stage)
		}
		// The maintained index answers like a freshly tracked one.
		ref := img.Regions[0].Geometry()
		allowed := core.NewRelationSet(core.N, core.NE, core.NW, core.W, core.E)
		live, err := tr.Index().Select(ref, allowed)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		fresh, err := Track(img, core.StoreOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		defer fresh.Close()
		want, err := fresh.Index().Select(ref, allowed)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if !reflect.DeepEqual(live, want) {
			t.Fatalf("%s: live index select %v != fresh %v", stage, live, want)
		}
	}
	check("initial")

	if err := img.AddRegion("delos", "Delos", "gold", sqRegion(25.2, 37.3, 25.35, 37.45)); err != nil {
		t.Fatal(err)
	}
	check("add")

	if err := img.SetRegionGeometry("delos", sqRegion(20.0, 39.0, 20.3, 39.3)); err != nil {
		t.Fatal(err)
	}
	check("setgeometry")

	if err := img.RenameRegion("delos", "corcyra"); err != nil {
		t.Fatal(err)
	}
	check("rename")

	if err := img.RemoveRegion("corcyra"); err != nil {
		t.Fatal(err)
	}
	check("remove")

	// Rejected edits must not reach the store or index.
	before := tr.Store().Len()
	if err := img.AddRegion("attica", "", "", sqRegion(0, 0, 1, 1)); err == nil {
		t.Fatal("duplicate AddRegion should fail")
	}
	bad := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 1)))
	if err := img.SetRegionGeometry("attica", bad); err == nil {
		t.Fatal("invalid SetRegionGeometry should fail")
	}
	if tr.Store().Len() != before || tr.Err() != nil {
		t.Fatalf("rejected edits leaked into the store: len=%d err=%v", tr.Store().Len(), tr.Err())
	}
}

// TestTrackedDeltaGranularity: the edits arriving through the image drive
// the store's delta path, not full recomputes.
func TestTrackedDeltaGranularity(t *testing.T) {
	img := Greece()
	n := len(img.Regions)
	tr, err := Track(img, core.StoreOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if got := tr.Store().Stats().DeltaPairs; got != 0 {
		t.Fatalf("initial DeltaPairs = %d, want 0", got)
	}
	if err := img.SetRegionGeometry("attica", sqRegion(24.5, 38.5, 25.0, 39.0)); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Store().Stats().DeltaPairs, 2*(n-1); got != want {
		t.Errorf("geometry edit DeltaPairs = %d, want %d", got, want)
	}
	before := tr.Store().Stats().DeltaPairs
	if err := img.RenameRegion("attica", "akte"); err != nil {
		t.Fatal(err)
	}
	if got := tr.Store().Stats().DeltaPairs; got != before {
		t.Errorf("rename recomputed pairs: DeltaPairs %d -> %d", before, got)
	}
}

// TestTrackedLatchesErrors: an out-of-band notification that cannot be
// applied latches Err and freezes further deltas instead of corrupting the
// maintained state.
func TestTrackedLatchesErrors(t *testing.T) {
	img := tinyImage()
	tr, err := Track(img, core.StoreOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.RegionRemoved("ghost") // simulates store/image divergence
	if tr.Err() == nil {
		t.Fatal("unappliable delta should latch an error")
	}
	lenBefore := tr.Store().Len()
	if err := img.AddRegion("c", "", "", sqRegion(8, 8, 9, 9)); err != nil {
		t.Fatal(err) // the document edit itself still succeeds
	}
	if tr.Store().Len() != lenBefore {
		t.Error("latched tracker kept applying deltas")
	}
	if err := tr.Materialize(false); err == nil {
		t.Error("Materialize on a latched tracker should fail")
	}
}

// TestTrackedCloseUnsubscribes: after Close, image edits no longer reach
// the store.
func TestTrackedCloseUnsubscribes(t *testing.T) {
	img := tinyImage()
	tr, err := Track(img, core.StoreOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if err := img.AddRegion("c", "", "", sqRegion(8, 8, 9, 9)); err != nil {
		t.Fatal(err)
	}
	if tr.Store().Len() != 2 {
		t.Errorf("closed tracker still receives edits: len = %d", tr.Store().Len())
	}
	// Tracking an invalid document fails up front.
	if _, err := Track(&Image{}, core.StoreOptions{}); err == nil {
		t.Error("Track of an invalid image should fail")
	}
}
