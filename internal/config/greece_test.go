package config

import (
	"testing"

	"cardirect/internal/core"
)

func TestGreeceValidates(t *testing.T) {
	img := Greece()
	if err := img.Validate(); err != nil {
		t.Fatalf("Greece fixture invalid: %v", err)
	}
	if len(img.Regions) != 11 {
		t.Errorf("regions = %d, want 11", len(img.Regions))
	}
	// Every region's geometry passes strict validation (disjoint interiors,
	// shared boundaries allowed for the Peloponnesos ring).
	for i := range img.Regions {
		if err := img.Regions[i].Geometry().ValidateStrict(); err != nil {
			t.Errorf("region %q: %v", img.Regions[i].ID, err)
		}
	}
}

func TestGreeceFig12Relation(t *testing.T) {
	img := Greece()
	pelop := img.FindRegion("peloponnesos").Geometry()
	attica := img.FindRegion("attica").Geometry()
	rel, err := core.ComputeCDR(pelop, attica)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := core.ParseRelation("B:S:SW:W")
	if rel != want {
		t.Errorf("Peloponnesos vs Attica = %v, want %v (Fig. 12)", rel, want)
	}
	// The paper's right-hand matrix: Attica w.r.t. Peloponnesos occupies
	// B, N, NE and E, with the NE/E share dominating.
	back, err := core.ComputeCDR(attica, pelop)
	if err != nil {
		t.Fatal(err)
	}
	wantBack, _ := core.ParseRelation("B:N:NE:E")
	if back != wantBack {
		t.Errorf("Attica vs Peloponnesos = %v, want %v", back, wantBack)
	}
	m, _, err := core.ComputeCDRPct(attica, pelop)
	if err != nil {
		t.Fatal(err)
	}
	if m.Get(core.TileNE)+m.Get(core.TileE) < 70 {
		t.Errorf("NE+E share = %v%%, expected the dominant share (>70%%)", m.Get(core.TileNE)+m.Get(core.TileE))
	}
	if m.Get(core.TileB) > 15 {
		t.Errorf("B share = %v%%, expected a small overlap (<15%%)", m.Get(core.TileB))
	}
}

func TestGreecePylosSurrounded(t *testing.T) {
	img := Greece()
	pelop := img.FindRegion("peloponnesos").Geometry()
	pylos := img.FindRegion("pylos").Geometry()
	rel, err := core.ComputeCDR(pelop, pylos)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := core.ParseRelation("S:SW:W:NW:N:NE:E:SE")
	if rel != want {
		t.Errorf("Peloponnesos vs Pylos = %v, want %v (surrounded)", rel, want)
	}
}

func TestGreeceComputeAllRelations(t *testing.T) {
	img := Greece()
	if err := img.ComputeRelations(true); err != nil {
		t.Fatal(err)
	}
	n := len(img.Regions)
	if len(img.Relations) != n*(n-1) {
		t.Errorf("relations = %d, want %d", len(img.Relations), n*(n-1))
	}
	// Roundtrip the full annotated configuration.
	data, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("roundtripped Greece invalid: %v", err)
	}
	if len(got.Relations) != n*(n-1) {
		t.Errorf("roundtripped relations = %d", len(got.Relations))
	}
	// Alliances: Macedonia stays north of Attica.
	rel, ok := got.RelationBetween("macedonia", "attica")
	if !ok {
		t.Fatal("macedonia→attica missing")
	}
	r, err := core.ParseRelation(rel.Type)
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range r.Tiles() {
		if tile.Row() != 2 {
			t.Errorf("Macedonia vs Attica includes non-north tile %v (%v)", tile, r)
		}
	}
}
