package config

import (
	"errors"
	"fmt"
	"sort"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

// ErrUnknownRegion is returned (wrapped, with the offending id) by the edit
// methods when the addressed region does not exist, so callers maintaining
// derived state — relation stores, spatial indexes — can branch on
// errors.Is instead of parsing messages. It wraps core.ErrUnknownRegion, so
// a single errors.Is(err, core.ErrUnknownRegion) test covers both the
// configuration layer and the relation store beneath it.
var ErrUnknownRegion = fmt.Errorf("config: unknown region: %w", core.ErrUnknownRegion)

// ErrDuplicateRegion is returned (wrapped, with the offending id) by
// AddRegion and RenameRegion when the requested id is already taken —
// the conflict case HTTP servers map to 409.
var ErrDuplicateRegion = errors.New("config: duplicate region id")

// AddRegion appends a new region with the given geometry. The id must be
// unique and non-empty; the geometry must validate. Materialised relations
// are left untouched (they no longer cover all pairs — call
// ComputeRelations to refresh); watchers are notified.
func (img *Image) AddRegion(id, name, color string, g geom.Region) error {
	if id == "" {
		return fmt.Errorf("config: empty region id")
	}
	if img.FindRegion(id) != nil {
		return fmt.Errorf("config: region %q: %w", id, ErrDuplicateRegion)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("config: region %q: %w", id, err)
	}
	r := Region{ID: id, Name: name, Color: color}
	r.SetGeometry(g)
	img.Regions = append(img.Regions, r)
	for _, w := range img.watchers {
		w.RegionAdded(id, g)
	}
	return nil
}

// RemoveRegion deletes the region with the given id and every materialised
// relation mentioning it, notifying watchers. A missing region yields a
// wrapped ErrUnknownRegion.
func (img *Image) RemoveRegion(id string) error {
	idx := -1
	for i := range img.Regions {
		if img.Regions[i].ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("config: region %q: %w", id, ErrUnknownRegion)
	}
	img.Regions = append(img.Regions[:idx], img.Regions[idx+1:]...)
	kept := img.Relations[:0]
	for _, rel := range img.Relations {
		if rel.Primary != id && rel.Reference != id {
			kept = append(kept, rel)
		}
	}
	img.Relations = kept
	for _, w := range img.watchers {
		w.RegionRemoved(id)
	}
	return nil
}

// RenameRegion changes a region's id, updating materialised relations and
// notifying watchers. The new id must be unique and non-empty; a missing
// region yields a wrapped ErrUnknownRegion.
func (img *Image) RenameRegion(oldID, newID string) error {
	if newID == "" {
		return fmt.Errorf("config: empty new region id")
	}
	if oldID == newID {
		return nil
	}
	if img.FindRegion(newID) != nil {
		return fmt.Errorf("config: region %q: %w", newID, ErrDuplicateRegion)
	}
	r := img.FindRegion(oldID)
	if r == nil {
		return fmt.Errorf("config: region %q: %w", oldID, ErrUnknownRegion)
	}
	r.ID = newID
	for i := range r.Polygons {
		r.Polygons[i].ID = fmt.Sprintf("%s-p%d", newID, i)
	}
	for i := range img.Relations {
		if img.Relations[i].Primary == oldID {
			img.Relations[i].Primary = newID
		}
		if img.Relations[i].Reference == oldID {
			img.Relations[i].Reference = newID
		}
	}
	for _, w := range img.watchers {
		w.RegionRenamed(oldID, newID)
	}
	return nil
}

// SetRegionGeometry replaces a region's polygons and drops the materialised
// relations that mention it (they are stale now), notifying watchers. A
// missing region yields a wrapped ErrUnknownRegion.
func (img *Image) SetRegionGeometry(id string, g geom.Region) error {
	r := img.FindRegion(id)
	if r == nil {
		return fmt.Errorf("config: region %q: %w", id, ErrUnknownRegion)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("config: region %q: %w", id, err)
	}
	r.SetGeometry(g)
	kept := img.Relations[:0]
	for _, rel := range img.Relations {
		if rel.Primary != id && rel.Reference != id {
			kept = append(kept, rel)
		}
	}
	img.Relations = kept
	for _, w := range img.watchers {
		w.RegionGeometryChanged(id, g)
	}
	return nil
}

// Summary aggregates document statistics for describe-style output.
type Summary struct {
	Regions      int
	Polygons     int
	Edges        int
	Relations    int
	Colors       []string // distinct colors, sorted
	TotalArea    float64
	BoundingBox  geom.Rect
	MultiPolygon int // regions with more than one polygon (REG* composites)
}

// Summarize computes the document statistics.
func (img *Image) Summarize() Summary {
	s := Summary{Relations: len(img.Relations), BoundingBox: geom.EmptyRect()}
	colors := map[string]bool{}
	for i := range img.Regions {
		r := &img.Regions[i]
		g := r.Geometry()
		s.Regions++
		s.Polygons += len(r.Polygons)
		s.Edges += g.NumEdges()
		s.TotalArea += g.Area()
		s.BoundingBox = s.BoundingBox.Union(g.BoundingBox())
		if len(r.Polygons) > 1 {
			s.MultiPolygon++
		}
		if r.Color != "" {
			colors[r.Color] = true
		}
	}
	for c := range colors {
		s.Colors = append(s.Colors, c)
	}
	sort.Strings(s.Colors)
	return s
}
