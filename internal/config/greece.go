package config

import "cardirect/internal/geom"

// Greece rebuilds the paper's Fig. 11 configuration: a map of Hellas at the
// time of the Peloponnesian war, annotated with the areas of the Athenean
// Alliance (blue), the Spartan Alliance (red) and the Pro-Spartan side
// (black). Coordinates are in map units (x grows east, y grows north),
// digitised so that the relations the paper reports hold — in particular
// Peloponnesos is B:S:SW:W of Attica (Fig. 12) — and so that the paper's
// example query ("regions of the Athenean Alliance surrounded by a region
// of the Spartan Alliance") has an answer: Pylos, the Athenian enclave in
// Messenia, sits in a hole of the Peloponnesos region.
func Greece() *Image {
	img := &Image{
		Name: "Hellas, Peloponnesian war",
		File: "hellas.png",
	}
	add := func(id, name, color string, g geom.Region) {
		r := Region{ID: id, Name: name, Color: color}
		r.SetGeometry(g.Clockwise())
		img.Regions = append(img.Regions, r)
	}

	// Attica (blue): an L-shaped peninsula north-east of the Peloponnesos.
	// Its west arm ([23.5,23.7]×[37.9,38.3]) reaches into the Peloponnesian
	// bounding box above the coastal notch cut into the Peloponnesos below,
	// so the two regions interleave — each has material inside the other's
	// mbb (giving the B tiles of Fig. 12 in both directions) while their
	// interiors stay disjoint; they touch along the isthmus at x = 23.7.
	add("attica", "Attica", "blue", geom.Rgn(geom.Poly(
		geom.Pt(23.5, 38.30),
		geom.Pt(24.2, 38.30),
		geom.Pt(24.2, 37.70),
		geom.Pt(23.7, 37.70),
		geom.Pt(23.7, 37.90),
		geom.Pt(23.5, 37.90),
	)))

	// Peloponnesos (red): mainland ring with the Pylos enclave hole,
	// decomposed into two simple polygons sharing boundary segments
	// (Fig. 2-style hole representation). The hole spans
	// [21.8,22.2]×[36.6,37.0]; the north-east coast has a notch
	// ([23.4,23.7]×[37.85,38.0]) that Attica's west arm sits above.
	left := geom.Poly(
		geom.Pt(21.5, 38.0), geom.Pt(22.0, 38.0), geom.Pt(22.0, 37.0),
		geom.Pt(21.8, 37.0), geom.Pt(21.8, 36.6), geom.Pt(22.0, 36.6),
		geom.Pt(22.0, 36.3), geom.Pt(21.5, 36.3),
	)
	right := geom.Poly(
		geom.Pt(22.0, 38.0), geom.Pt(23.4, 38.0), geom.Pt(23.4, 37.85),
		geom.Pt(23.7, 37.85), geom.Pt(23.7, 36.3),
		geom.Pt(22.0, 36.3), geom.Pt(22.0, 36.6), geom.Pt(22.2, 36.6),
		geom.Pt(22.2, 37.0), geom.Pt(22.0, 37.0),
	)
	add("peloponnesos", "Peloponnesos", "red", geom.Rgn(left, right))

	// Pylos (blue): the Athenian enclave strictly inside the hole.
	add("pylos", "Pylos", "blue", geom.Rgn(geom.Poly(
		geom.Pt(21.9, 36.85), geom.Pt(22.05, 36.85),
		geom.Pt(22.05, 36.70), geom.Pt(21.9, 36.70),
	)))

	// Beotia (red): north-west of Attica.
	add("beotia", "Beotia", "red", geom.Rgn(geom.Poly(
		geom.Pt(23.0, 38.70), geom.Pt(23.7, 38.70),
		geom.Pt(23.7, 38.30), geom.Pt(23.0, 38.30),
	)))

	// The Islands (blue): three Aegean islands — one disconnected region.
	add("islands", "Islands", "blue", geom.Rgn(
		geom.Poly(geom.Pt(24.5, 37.5), geom.Pt(24.9, 37.5), geom.Pt(24.9, 37.2), geom.Pt(24.5, 37.2)),
		geom.Poly(geom.Pt(25.2, 37.0), geom.Pt(25.5, 37.0), geom.Pt(25.5, 36.7), geom.Pt(25.2, 36.7)),
		geom.Poly(geom.Pt(25.0, 36.5), geom.Pt(25.3, 36.5), geom.Pt(25.3, 36.3), geom.Pt(25.0, 36.3)),
	))

	// The regions in the East / Ionia (blue).
	add("ionia", "Ionia", "blue", geom.Rgn(geom.Poly(
		geom.Pt(26.5, 38.5), geom.Pt(27.2, 38.5), geom.Pt(27.2, 37.0), geom.Pt(26.5, 37.0),
	)))

	// Corfu (blue).
	add("corfu", "Corfu", "blue", geom.Rgn(geom.Poly(
		geom.Pt(19.5, 39.8), geom.Pt(20.0, 39.8), geom.Pt(20.0, 39.3), geom.Pt(19.5, 39.3),
	)))

	// South Italy (blue).
	add("south-italy", "South Italy", "blue", geom.Rgn(geom.Poly(
		geom.Pt(16.0, 40.0), geom.Pt(17.5, 40.0), geom.Pt(17.5, 38.5), geom.Pt(16.0, 38.5),
	)))

	// Crete (red).
	add("crete", "Crete", "red", geom.Rgn(geom.Poly(
		geom.Pt(23.3, 35.4), geom.Pt(26.3, 35.4), geom.Pt(26.3, 34.8), geom.Pt(23.3, 34.8),
	)))

	// Sicily (red).
	add("sicily", "Sicily", "red", geom.Rgn(geom.Poly(
		geom.Pt(12.5, 38.2), geom.Pt(15.0, 38.2), geom.Pt(15.0, 36.5), geom.Pt(12.5, 36.5),
	)))

	// Macedonia (black, Pro-Spartan).
	add("macedonia", "Macedonia", "black", geom.Rgn(geom.Poly(
		geom.Pt(21.5, 41.0), geom.Pt(24.0, 41.0), geom.Pt(24.0, 40.0), geom.Pt(21.5, 40.0),
	)))

	return img
}
