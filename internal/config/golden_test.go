package config

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cardirect/internal/core"
	"cardirect/internal/geom"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenImage is a small fixture with deliberately unsorted region ids and
// a quantitative annotation, exercising every element the DTD emits.
func goldenImage(t *testing.T) *Image {
	t.Helper()
	img := &Image{Name: "golden", File: "golden.png"}
	box := func(x0, y0, x1, y1 float64) geom.Region {
		return geom.Region{geom.Poly(geom.Pt(x0, y0), geom.Pt(x0, y1), geom.Pt(x1, y1), geom.Pt(x1, y0))}
	}
	for _, r := range []struct {
		id, name, color string
		g               geom.Region
	}{
		{"zeta", "Zeta", "#00ff00", box(10, 0, 14, 4)},
		{"alpha", "Alpha", "#ff0000", box(0, 0, 4, 4)},
		{"mu", "Mu", "", box(2, 6, 8, 11)},
	} {
		if err := img.AddRegion(r.id, r.name, r.color, r.g); err != nil {
			t.Fatal(err)
		}
	}
	if err := img.ComputeRelations(true); err != nil {
		t.Fatal(err)
	}
	return img
}

// TestSaveGolden pins the exact bytes Save produces for the fixture, so any
// unintended change to ordering, indentation or number formatting shows up
// as a readable diff. Regenerate with: go test ./internal/config -run
// TestSaveGolden -update
func TestSaveGolden(t *testing.T) {
	img := goldenImage(t)
	data, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "save.golden.xml")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("Save output diverged from %s:\n got: %s\nwant: %s", golden, data, want)
	}
}

// TestSaveDeterministicOrder shuffles the in-memory document and checks the
// saved bytes do not move: snapshots of the same logical configuration are
// byte-stable regardless of edit history.
func TestSaveDeterministicOrder(t *testing.T) {
	img := goldenImage(t)
	base, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 10; round++ {
		rng.Shuffle(len(img.Regions), func(i, j int) {
			img.Regions[i], img.Regions[j] = img.Regions[j], img.Regions[i]
		})
		rng.Shuffle(len(img.Relations), func(i, j int) {
			img.Relations[i], img.Relations[j] = img.Relations[j], img.Relations[i]
		})
		got, err := img.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatalf("round %d: shuffled document saved differently", round)
		}
	}
	// Save must not reorder the in-memory document as a side effect.
	if img.Regions[0].ID == "alpha" && img.Regions[1].ID == "mu" && img.Regions[2].ID == "zeta" {
		t.Log("note: shuffle landed on sorted order; side-effect check inconclusive this round")
	}
}

// TestTrackSeededMatchesTrack checks the seeded fast path builds the same
// store as the computing path, and that stale or incomplete relation lists
// fall back to computing.
func TestTrackSeededMatchesTrack(t *testing.T) {
	opt := core.StoreOptions{Pct: true}

	materialised := goldenImage(t)
	trSeeded, seeded, err := TrackSeeded(materialised, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !seeded {
		t.Fatal("fully materialised document did not seed")
	}
	reference, err := Track(goldenImage(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trSeeded.Store().Pairs(), reference.Store().Pairs()) {
		t.Fatal("seeded tracked store differs from computed")
	}
	sp, err := trSeeded.Store().PctPairs()
	if err != nil {
		t.Fatal(err)
	}
	rp, err := reference.Store().PctPairs()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sp {
		if sp[i].Primary != rp[i].Primary || sp[i].Reference != rp[i].Reference || sp[i].Matrix != rp[i].Matrix {
			t.Fatalf("pct pair %d differs: %+v vs %+v", i, sp[i], rp[i])
		}
	}

	// Incomplete relation list: falls back to computing, same answers.
	partial := goldenImage(t)
	partial.Relations = partial.Relations[:2]
	trPartial, seeded, err := TrackSeeded(partial, opt)
	if err != nil {
		t.Fatal(err)
	}
	if seeded {
		t.Fatal("partial relation list claimed the seeded path")
	}
	if !reflect.DeepEqual(trPartial.Store().Pairs(), reference.Store().Pairs()) {
		t.Fatal("fallback tracked store differs from computed")
	}

	// Unparseable pct: also falls back.
	broken := goldenImage(t)
	broken.Relations[0].Pct = "not;a;matrix"
	_, seeded, err = TrackSeeded(broken, opt)
	if err != nil {
		t.Fatal(err)
	}
	if seeded {
		t.Fatal("broken pct attribute claimed the seeded path")
	}
}
