package config

import (
	"errors"
	"testing"

	"cardirect/internal/geom"
)

func sqRegion(minX, minY, maxX, maxY float64) geom.Region {
	return geom.Rgn(geom.Poly(
		geom.Pt(minX, maxY), geom.Pt(maxX, maxY), geom.Pt(maxX, minY), geom.Pt(minX, minY),
	))
}

func TestAddRegion(t *testing.T) {
	img := tinyImage()
	if err := img.AddRegion("c", "Gamma", "green", sqRegion(10, 10, 12, 12)); err != nil {
		t.Fatal(err)
	}
	if img.FindRegion("c") == nil {
		t.Fatal("added region not found")
	}
	if err := img.Validate(); err != nil {
		t.Fatalf("image invalid after add: %v", err)
	}
	// Duplicate id.
	if err := img.AddRegion("c", "", "", sqRegion(0, 0, 1, 1)); err == nil {
		t.Error("duplicate id should fail")
	}
	// Empty id.
	if err := img.AddRegion("", "", "", sqRegion(0, 0, 1, 1)); err == nil {
		t.Error("empty id should fail")
	}
	// Invalid geometry.
	bowtie := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(2, 0), geom.Pt(0, 2)))
	if err := img.AddRegion("d", "", "", bowtie); err == nil {
		t.Error("invalid geometry should fail")
	}
}

func TestRemoveRegion(t *testing.T) {
	img := tinyImage()
	if err := img.ComputeRelations(false); err != nil {
		t.Fatal(err)
	}
	if len(img.Relations) != 2 {
		t.Fatalf("relations = %d", len(img.Relations))
	}
	if err := img.RemoveRegion("a"); err != nil {
		t.Fatalf("RemoveRegion failed for existing region: %v", err)
	}
	if img.FindRegion("a") != nil {
		t.Error("region still present after removal")
	}
	if len(img.Relations) != 0 {
		t.Errorf("stale relations kept: %v", img.Relations)
	}
	if err := img.RemoveRegion("a"); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("second removal err = %v, want ErrUnknownRegion", err)
	}
}

// TestEditUnknownRegionSentinel pins the error contract: every edit method
// addressing a missing region reports the wrapped sentinel.
func TestEditUnknownRegionSentinel(t *testing.T) {
	img := tinyImage()
	for _, err := range []error{
		img.RemoveRegion("ghost"),
		img.RenameRegion("ghost", "x"),
		img.SetRegionGeometry("ghost", sqRegion(0, 0, 1, 1)),
	} {
		if !errors.Is(err, ErrUnknownRegion) {
			t.Errorf("err = %v, want ErrUnknownRegion", err)
		}
	}
	// Non-"unknown region" failures must NOT wear the sentinel.
	if err := img.RenameRegion("a", "b"); errors.Is(err, ErrUnknownRegion) {
		t.Errorf("collision err should not wrap ErrUnknownRegion: %v", err)
	}
	bad := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 1)))
	if err := img.SetRegionGeometry("a", bad); errors.Is(err, ErrUnknownRegion) {
		t.Errorf("bad-geometry err should not wrap ErrUnknownRegion: %v", err)
	}
}

func TestRenameRegion(t *testing.T) {
	img := tinyImage()
	if err := img.ComputeRelations(false); err != nil {
		t.Fatal(err)
	}
	if err := img.RenameRegion("a", "alpha"); err != nil {
		t.Fatal(err)
	}
	if img.FindRegion("a") != nil || img.FindRegion("alpha") == nil {
		t.Error("rename did not take")
	}
	for _, rel := range img.Relations {
		if rel.Primary == "a" || rel.Reference == "a" {
			t.Errorf("stale relation id: %+v", rel)
		}
	}
	if err := img.Validate(); err != nil {
		t.Fatalf("image invalid after rename: %v", err)
	}
	// No-op rename.
	if err := img.RenameRegion("alpha", "alpha"); err != nil {
		t.Errorf("self-rename should be a no-op: %v", err)
	}
	// Collision and missing source.
	if err := img.RenameRegion("alpha", "b"); err == nil {
		t.Error("rename onto existing id should fail")
	}
	if err := img.RenameRegion("ghost", "x"); err == nil {
		t.Error("renaming a missing region should fail")
	}
	if err := img.RenameRegion("alpha", ""); err == nil {
		t.Error("empty new id should fail")
	}
}

func TestSetRegionGeometry(t *testing.T) {
	img := tinyImage()
	if err := img.ComputeRelations(false); err != nil {
		t.Fatal(err)
	}
	if err := img.SetRegionGeometry("a", sqRegion(100, 100, 101, 101)); err != nil {
		t.Fatal(err)
	}
	if len(img.Relations) != 0 {
		t.Errorf("stale relations survive geometry change: %v", img.Relations)
	}
	g := img.FindRegion("a").Geometry()
	if g.BoundingBox() != (geom.Rect{MinX: 100, MinY: 100, MaxX: 101, MaxY: 101}) {
		t.Errorf("geometry not replaced: %v", g.BoundingBox())
	}
	if err := img.SetRegionGeometry("ghost", sqRegion(0, 0, 1, 1)); err == nil {
		t.Error("missing region should fail")
	}
	bad := geom.Rgn(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 1)))
	if err := img.SetRegionGeometry("a", bad); err == nil {
		t.Error("invalid geometry should fail")
	}
}

func TestSummarize(t *testing.T) {
	img := Greece()
	if err := img.ComputeRelations(false); err != nil {
		t.Fatal(err)
	}
	s := img.Summarize()
	if s.Regions != 11 {
		t.Errorf("Regions = %d", s.Regions)
	}
	if s.Relations != 11*10 {
		t.Errorf("Relations = %d", s.Relations)
	}
	if s.MultiPolygon != 2 { // peloponnesos (2 halves) and islands (3)
		t.Errorf("MultiPolygon = %d, want 2", s.MultiPolygon)
	}
	if len(s.Colors) != 3 {
		t.Errorf("Colors = %v", s.Colors)
	}
	if s.TotalArea <= 0 || s.Edges == 0 || s.Polygons < s.Regions {
		t.Errorf("degenerate summary: %+v", s)
	}
	if s.BoundingBox.IsEmpty() {
		t.Error("empty bounding box")
	}
}
