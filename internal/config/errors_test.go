package config

import (
	"errors"
	"sync"
	"testing"

	"cardirect/internal/core"
)

// TestErrUnknownRegionWrapsCore: the config sentinel chains to the core
// sentinel, so one errors.Is check (and one HTTP status mapping) covers
// both layers.
func TestErrUnknownRegionWrapsCore(t *testing.T) {
	if !errors.Is(ErrUnknownRegion, core.ErrUnknownRegion) {
		t.Fatal("config.ErrUnknownRegion does not wrap core.ErrUnknownRegion")
	}
	img := tinyImage()
	err := img.RemoveRegion("no-such")
	if !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("RemoveRegion err = %v, want config.ErrUnknownRegion", err)
	}
	if !errors.Is(err, core.ErrUnknownRegion) {
		t.Fatalf("RemoveRegion err = %v, should chain to core.ErrUnknownRegion", err)
	}
	// Store-layer misses chain the same way.
	tr, err := Track(Greece(), core.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Store().Relation("attica", "no-such"); !errors.Is(err, core.ErrUnknownRegion) {
		t.Fatalf("store miss err = %v, want core.ErrUnknownRegion", err)
	}
	// Duplicate ids are distinguishable from unknown ones.
	err = img.AddRegion(img.Regions[0].ID, "", "", sqRegion(0, 0, 1, 1))
	if !errors.Is(err, ErrDuplicateRegion) {
		t.Fatalf("duplicate add err = %v, want ErrDuplicateRegion", err)
	}
	if errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("duplicate add err must not match ErrUnknownRegion: %v", err)
	}
}

// TestTrackedConcurrentViewAndEdit hammers Tracked.View readers against the
// write-locked edit methods. Under -race this proves the Tracked RWMutex
// contract that cardirectd relies on: concurrent HTTP reads (store lookups,
// index selections, document walks) stay consistent while PUT/DELETE edits
// land.
func TestTrackedConcurrentViewAndEdit(t *testing.T) {
	tr, err := Track(Greece(), core.StoreOptions{Pct: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := tr.View(func(img *Image) error {
					ref := img.FindRegion("attica")
					if ref == nil {
						t.Error("attica vanished mid-view")
						return nil
					}
					if _, err := tr.Store().Relation("attica", "peloponnesos"); err != nil {
						return err
					}
					_, _, err := tr.Index().SelectStats(ref.Geometry(), core.NewRelationSet(core.N, core.NE))
					return err
				})
				if err != nil {
					t.Errorf("View: %v", err)
					return
				}
			}
		}()
	}

	// Editor: bounce crete's geometry and churn a scratch region.
	crete := Greece().FindRegion("crete").Geometry()
	for i := 0; i < 60; i++ {
		if err := tr.SetRegionGeometry("crete", crete); err != nil {
			t.Fatalf("SetRegionGeometry: %v", err)
		}
		id := "scratch"
		if err := tr.AddRegion(id, "Scratch", "gray", sqRegion(500, 500, 520, 520)); err != nil {
			t.Fatalf("AddRegion: %v", err)
		}
		if err := tr.RenameRegion(id, id+"2"); err != nil {
			t.Fatalf("RenameRegion: %v", err)
		}
		if err := tr.RemoveRegion(id + "2"); err != nil {
			t.Fatalf("RemoveRegion: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	if err := tr.Err(); err != nil {
		t.Fatalf("tracked latched error: %v", err)
	}
	if got := tr.Store().Len(); got != len(Greece().Regions) {
		t.Fatalf("store Len = %d, want %d", got, len(Greece().Regions))
	}
}
