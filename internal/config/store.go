package config

import (
	"fmt"

	"cardirect/internal/core"
	"cardirect/internal/geom"
	"cardirect/internal/index"
)

// Tracked couples an Image with a core.RelationStore and a maintained
// index.Live R-tree, kept in sync with the image's edit methods through the
// Watcher hooks: an AddRegion/RemoveRegion/RenameRegion/SetRegionGeometry
// call updates the document, delta-updates the relation store (only the
// touched row and column recompute) and moves the R-tree entry — no O(n²)
// resweep, no index rebuild. This is the paper's interactive annotation
// loop (§4) with an O(n) edit path.
//
// The watcher callbacks cannot reject an edit, so a failure while applying
// a delta (it cannot arise from geometry the edit methods accept, since
// they validate first — but a store fed out-of-band could diverge) is
// latched into Err and every later edit is ignored until the caller
// re-syncs. Like the structures it owns, Tracked is single-writer.
type Tracked struct {
	img   *Image
	store *core.RelationStore
	idx   *index.Live
	err   error
}

// Track validates the image and builds the coupled relation store and live
// index over its current regions (region ids are the store names), then
// subscribes to the image's edits. Call Close to unsubscribe.
func Track(img *Image, opt core.StoreOptions) (*Tracked, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	regions := make([]core.NamedRegion, len(img.Regions))
	for i := range img.Regions {
		regions[i] = core.NamedRegion{Name: img.Regions[i].ID, Region: img.Regions[i].Geometry()}
	}
	store, err := core.NewRelationStore(regions, opt)
	if err != nil {
		return nil, err
	}
	idx, err := index.NewLive(regions)
	if err != nil {
		return nil, err
	}
	tr := &Tracked{img: img, store: store, idx: idx}
	img.Watch(tr)
	return tr, nil
}

// Store returns the maintained relation store.
func (tr *Tracked) Store() *core.RelationStore { return tr.store }

// Index returns the maintained live R-tree index.
func (tr *Tracked) Index() *index.Live { return tr.idx }

// Image returns the tracked document.
func (tr *Tracked) Image() *Image { return tr.img }

// Err returns the first delta-application failure, or nil. A non-nil value
// means the store and index no longer reflect the image and must be rebuilt
// with a fresh Track.
func (tr *Tracked) Err() error { return tr.err }

// Close unsubscribes from the image's edits; the store and index stay
// readable at their final state.
func (tr *Tracked) Close() { tr.img.Unwatch(tr) }

// fail latches the first delta failure.
func (tr *Tracked) fail(err error) {
	if tr.err == nil && err != nil {
		tr.err = err
	}
}

// RegionAdded implements Watcher.
func (tr *Tracked) RegionAdded(id string, g geom.Region) {
	if tr.err != nil {
		return
	}
	if err := tr.store.Add(id, g); err != nil {
		tr.fail(fmt.Errorf("config: tracking add %q: %w", id, err))
		return
	}
	tr.fail(tr.idx.Add(id, g))
}

// RegionRemoved implements Watcher.
func (tr *Tracked) RegionRemoved(id string) {
	if tr.err != nil {
		return
	}
	if err := tr.store.Remove(id); err != nil {
		tr.fail(fmt.Errorf("config: tracking remove %q: %w", id, err))
		return
	}
	tr.fail(tr.idx.Remove(id))
}

// RegionRenamed implements Watcher.
func (tr *Tracked) RegionRenamed(oldID, newID string) {
	if tr.err != nil {
		return
	}
	if err := tr.store.Rename(oldID, newID); err != nil {
		tr.fail(fmt.Errorf("config: tracking rename %q: %w", oldID, err))
		return
	}
	tr.fail(tr.idx.Rename(oldID, newID))
}

// RegionGeometryChanged implements Watcher.
func (tr *Tracked) RegionGeometryChanged(id string, g geom.Region) {
	if tr.err != nil {
		return
	}
	if err := tr.store.SetGeometry(id, g); err != nil {
		tr.fail(fmt.Errorf("config: tracking geometry %q: %w", id, err))
		return
	}
	tr.fail(tr.idx.SetGeometry(id, g))
}

// Materialize writes the store's cached relations into the image's Relation
// list — the store-backed replacement for ComputeRelations after an edit
// sequence, costing a copy instead of an O(n²) recompute.
func (tr *Tracked) Materialize(withPct bool) error {
	if tr.err != nil {
		return tr.err
	}
	pairs := tr.store.Pairs()
	var pcts []core.PairPercent
	if withPct {
		var err error
		pcts, err = tr.store.PctPairs()
		if err != nil {
			return err
		}
	}
	tr.img.Relations = tr.img.Relations[:0]
	for i, pr := range pairs {
		entry := Relation{Type: pr.Relation.String(), Primary: pr.Primary, Reference: pr.Reference}
		if withPct {
			entry.Pct = encodePct(pcts[i].Matrix)
		}
		tr.img.Relations = append(tr.img.Relations, entry)
	}
	return nil
}
